//===- Suites.cpp - Benchmark suite factories -----------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

#include "ir/IRBuilder.h"
#include "ssa/SSAConstruction.h"
#include "ssa/Transforms.h"
#include "support/Rng.h"
#include "workloads/Generator.h"
#include "workloads/PaperExamples.h"

using namespace lao;

void lao::normalizeToOptimizedSSA(Function &F) {
  buildSSA(F);
  propagateCopies(F);
  valueNumber(F);
  propagateCopies(F);
  eliminateDeadCode(F);
}

namespace {

/// Deterministic input vectors for a function with \p NumParams params.
std::vector<std::vector<uint64_t>> makeInputs(uint64_t Seed,
                                              unsigned NumParams) {
  Rng R(Seed * 0x51eed + 17);
  std::vector<std::vector<uint64_t>> Sets;
  for (unsigned S = 0; S < 3; ++S) {
    std::vector<uint64_t> In;
    for (unsigned K = 0; K < NumParams; ++K)
      In.push_back(R.below(1000));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

Workload finishWorkload(std::string Name, std::unique_ptr<Function> F,
                        uint64_t Seed) {
  normalizeToOptimizedSSA(*F);
  unsigned NumParams = F->numParams();
  Workload W;
  W.Name = std::move(Name);
  W.F = std::move(F);
  W.Inputs = makeInputs(Seed, NumParams);
  return W;
}

/// Hand-written DSP-style kernels (dot product, saturated MAC loop,
/// FIR-ish pointer walk, branchy max-search), in the spirit of the
/// paper's "basic digital signal processing kernels".
std::unique_ptr<Function> makeDotProduct() {
  auto F = std::make_unique<Function>("dotprod");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Entry);
  auto Params = B.input({"pa", "pb", "len"});
  RegId Acc = F->makeVirtual("acc");
  B.makeTo(Acc, 0);
  RegId I = F->makeVirtual("i");
  B.makeTo(I, 0);
  RegId Pa = F->makeVirtual("cpa");
  B.movTo(Pa, Params[0]);
  RegId Pb = F->makeVirtual("cpb");
  B.movTo(Pb, Params[1]);
  RegId Bound = F->makeVirtual("n");
  B.makeTo(Bound, 4);

  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jump(Header);

  B.setBlock(Header);
  RegId C = F->makeVirtual("c");
  B.binaryTo(C, Opcode::CmpLT, I, Bound);
  B.branch(C, Body, Exit);

  B.setBlock(Body);
  RegId Va = B.load(Pa, "va");
  RegId Vb = B.load(Pb, "vb");
  RegId Prod = B.mul(Va, Vb, "prod");
  B.binaryTo(Acc, Opcode::Add, Acc, Prod);
  // Post-modified pointer walk (2-operand constrained).
  B.immOpTo(Pa, Opcode::AutoAdd, Pa, 4);
  B.immOpTo(Pb, Opcode::AutoAdd, Pb, 4);
  B.immOpTo(I, Opcode::AddI, I, 1);
  B.jump(Header);

  B.setBlock(Exit);
  B.output(Acc);
  B.ret(Acc);
  return F;
}

std::unique_ptr<Function> makeSatMac() {
  auto F = std::make_unique<Function>("satmac");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Entry);
  auto Params = B.input({"x", "ylen"});
  RegId Acc = F->makeVirtual("acc");
  B.movTo(Acc, Params[0]);
  RegId I = F->makeVirtual("i");
  B.makeTo(I, 0);
  RegId N = F->makeVirtual("n");
  B.makeTo(N, 5);
  RegId Limit = F->makeVirtual("lim");
  B.makeTo(Limit, 1 << 20);

  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Sat = F->createBlock("sat");
  BasicBlock *Cont = F->createBlock("cont");
  BasicBlock *Exit = F->createBlock("exit");
  B.jump(Header);

  B.setBlock(Header);
  RegId C = F->makeVirtual("c");
  B.binaryTo(C, Opcode::CmpLT, I, N);
  B.branch(C, Body, Exit);

  B.setBlock(Body);
  RegId M = B.call("mul16", {Acc, Params[1]}, "m");
  B.binaryTo(Acc, Opcode::Add, Acc, M);
  RegId Over = F->makeVirtual("over");
  B.binaryTo(Over, Opcode::CmpLT, Limit, Acc);
  B.branch(Over, Sat, Cont);

  B.setBlock(Sat);
  B.movTo(Acc, Limit); // Saturate.
  B.jump(Cont);

  B.setBlock(Cont);
  B.immOpTo(I, Opcode::AddI, I, 1);
  B.jump(Header);

  B.setBlock(Exit);
  B.output(Acc);
  B.ret(Acc);
  return F;
}

std::unique_ptr<Function> makeFirWalk() {
  auto F = std::make_unique<Function>("firwalk");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Entry);
  auto Params = B.input({"base", "coef"});
  RegId Sp = F->makeVirtual("sp");
  B.immOpTo(Sp, Opcode::SpAdjust, Target::SP, -32);
  RegId P = F->makeVirtual("p");
  B.movTo(P, Params[0]);
  RegId Sum = F->makeVirtual("sum");
  B.makeTo(Sum, 0);
  RegId I = F->makeVirtual("i");
  B.makeTo(I, 0);
  RegId N = F->makeVirtual("n");
  B.makeTo(N, 3);

  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jump(Header);

  B.setBlock(Header);
  RegId C = F->makeVirtual("c");
  B.binaryTo(C, Opcode::CmpLT, I, N);
  B.branch(C, Body, Exit);

  B.setBlock(Body);
  RegId V = B.load(P, "v");
  RegId Scaled = B.mul(V, Params[1], "sc");
  RegId K = F->makeVirtual("k");
  B.immOpTo(K, Opcode::More, Scaled, 0x2BFA);
  B.binaryTo(Sum, Opcode::Add, Sum, K);
  B.store(Sp, Sum);
  B.immOpTo(P, Opcode::AutoAdd, P, 4);
  B.immOpTo(I, Opcode::AddI, I, 1);
  B.jump(Header);

  B.setBlock(Exit);
  RegId SpOut = F->makeVirtual("spout");
  B.immOpTo(SpOut, Opcode::SpAdjust, Sp, 32);
  B.output(Sum);
  B.ret(Sum);
  return F;
}

std::unique_ptr<Function> makeMaxSearch() {
  auto F = std::make_unique<Function>("maxsearch");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Entry);
  auto Params = B.input({"p0", "seed"});
  RegId Best = F->makeVirtual("best");
  B.movTo(Best, Params[1]);
  RegId P = F->makeVirtual("p");
  B.movTo(P, Params[0]);
  RegId I = F->makeVirtual("i");
  B.makeTo(I, 0);
  RegId N = F->makeVirtual("n");
  B.makeTo(N, 6);

  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Better = F->createBlock("better");
  BasicBlock *Next = F->createBlock("next");
  BasicBlock *Exit = F->createBlock("exit");
  B.jump(Header);

  B.setBlock(Header);
  RegId C = F->makeVirtual("c");
  B.binaryTo(C, Opcode::CmpLT, I, N);
  B.branch(C, Body, Exit);

  B.setBlock(Body);
  RegId V = B.load(P, "v");
  RegId Gt = F->makeVirtual("gt");
  B.binaryTo(Gt, Opcode::CmpLT, Best, V);
  B.branch(Gt, Better, Next);

  B.setBlock(Better);
  B.movTo(Best, V);
  B.jump(Next);

  B.setBlock(Next);
  B.immOpTo(P, Opcode::AutoAdd, P, 4);
  B.immOpTo(I, Opcode::AddI, I, 1);
  B.jump(Header);

  B.setBlock(Exit);
  B.output(Best);
  B.ret(Best);
  return F;
}

std::vector<Workload> generatedSuite(const char *Prefix, unsigned Count,
                                     uint64_t BaseSeed,
                                     GeneratorParams Template) {
  std::vector<Workload> Suite;
  for (unsigned K = 0; K < Count; ++K) {
    GeneratorParams P = Template;
    P.Seed = BaseSeed + K * 7919;
    // Mix the shapes a little across the suite.
    P.NumParams = 1 + K % 4;
    P.UseSP = K % 3 == 0;
    P.UsePsi = K % 4 == 1;
    std::string Name = std::string(Prefix) + std::to_string(K);
    Suite.push_back(
        finishWorkload(Name, generateProgram(P, Name), P.Seed));
  }
  return Suite;
}

} // namespace

std::vector<Workload> lao::makeValccSuite(int Variant) {
  GeneratorParams P;
  P.NumStatements = 18;
  P.MaxNesting = 2;
  // DSP kernels are loop-heavy and call-light (the paper's VALcc set is
  // "basic digital signal processing kernels, integer DCT, sorting,
  // searching"); keep ABI pressure to the function boundary.
  P.CallPercent = 5;
  P.MutatePercent = 55;
  P.ExtraCopies = Variant == 2;
  std::vector<Workload> Suite = generatedSuite(
      Variant == 2 ? "valcc2_" : "valcc1_", 36,
      /*BaseSeed=*/Variant == 2 ? 90001 : 40001, P);

  // Hand-written DSP kernels complete the suite (both compilers see the
  // same sources; variant 2's extra-copy style only applies to the
  // generated members).
  for (auto Make : {makeDotProduct, makeSatMac, makeFirWalk, makeMaxSearch})
    Suite.push_back(finishWorkload(std::string("valcc") +
                                       (Variant == 2 ? "2_" : "1_"),
                                   Make(), 1234));
  for (size_t K = Suite.size() - 4; K < Suite.size(); ++K)
    Suite[K].Name += Suite[K].F->name();
  return Suite;
}

std::vector<Workload> lao::makeExamplesSuite() {
  std::vector<Workload> Suite;
  struct Entry {
    const char *Name;
    std::unique_ptr<Function> (*Make)();
  };
  const Entry Entries[] = {
      {"example1_fig1", makeFigure1},   {"example2_fig3", makeFigure3},
      {"example3_fig5", makeFigure5},   {"example4_fig7", makeFigure7},
      {"example5_fig8", makeFigure8},   {"example6_fig9", makeFigure9},
      {"example7_fig10", makeFigure10}, {"example8_fig11", makeFigure11},
  };
  uint64_t Seed = 777;
  for (const Entry &E : Entries) {
    Workload W;
    W.Name = E.Name;
    W.F = E.Make(); // Already SSA with the figure's pins.
    W.Inputs = makeInputs(Seed++, W.F->numParams());
    Suite.push_back(std::move(W));
  }
  return Suite;
}

std::vector<Workload> lao::makeLargeSuite() {
  GeneratorParams P;
  P.NumStatements = 140;
  P.MaxNesting = 4;
  P.CallPercent = 6; // Vocoder-style: big loop nests, few calls.
  P.MutatePercent = 60;
  return generatedSuite("large_", 10, 70001, P);
}

std::vector<Workload> lao::makeSpecLikeSuite() {
  GeneratorParams P;
  P.NumStatements = 60;
  P.MaxNesting = 3;
  P.CallPercent = 25;
  P.MutatePercent = 50;
  return generatedSuite("spec_", 48, 110001, P);
}

const std::vector<SuiteSpec> &lao::allSuites() {
  static const std::vector<SuiteSpec> Suites = {
      {"VALcc1", [] { return makeValccSuite(1); }},
      {"VALcc2", [] { return makeValccSuite(2); }},
      {"example1-8", makeExamplesSuite},
      {"LAI_Large", makeLargeSuite},
      {"SPECint-like", makeSpecLikeSuite},
  };
  return Suites;
}
