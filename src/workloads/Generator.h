//===- Generator.h - Structured random program generator --------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic structured-program generator standing in for the paper's
/// benchmark sources (C DSP kernels, the efr vocoder, SPEC CINT2000).
/// It emits *non-SSA* mini-LAI: mutable variables, nested bounded loops,
/// if/else diamonds, calls (ABI pressure), 2-operand and pointer
/// (autoadd) instructions, optional SP frame chains and psi predication.
/// Suites convert the output to pruned SSA and optimize it before the
/// out-of-SSA experiments, exactly as the LAO pipeline would.
///
/// Every variable is initialized at its declaration point, so SSA
/// renaming never sees an undefined use, and all loops have constant
/// trip counts, so interpretation terminates.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_WORKLOADS_GENERATOR_H
#define LAO_WORKLOADS_GENERATOR_H

#include "ir/Function.h"

#include <memory>
#include <string>

namespace lao {

struct GeneratorParams {
  uint64_t Seed = 1;
  unsigned NumStatements = 20; ///< Statement budget at the top level.
  unsigned MaxNesting = 2;     ///< Max loop/if nesting depth.
  unsigned NumParams = 2;      ///< Function parameters (<= 4 in registers).
  unsigned CallPercent = 15;   ///< Probability a statement is a call.
  unsigned MutatePercent = 45; ///< Probability an assignment mutates an
                               ///< existing variable (drives phi webs).
  bool UseSP = false;          ///< Emit an SP frame adjust chain.
  bool UsePointers = true;     ///< autoadd/load/store pointer chains.
  bool UsePsi = false;         ///< Predicated psi statements.
  bool ExtraCopies = false;    ///< "Second compiler" style: route values
                               ///< through redundant temporaries (VALcc2).
};

/// Generates a non-SSA function named \p Name.
std::unique_ptr<Function> generateProgram(const GeneratorParams &Params,
                                          const std::string &Name);

} // namespace lao

#endif // LAO_WORKLOADS_GENERATOR_H
