//===- PaperExamples.h - The paper's worked figures -------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-built mini-LAI encodings of the paper's worked examples. Each
/// returns a function in pinned or unpinned SSA form as the figure shows
/// it (modulo small completions needed to make the excerpts executable:
/// explicit entries, terminators, and deterministic outputs).
///
/// Figure 1  — ABI parameter/result constraints, autoadd and more.
/// Figure 2  — the SP over-pinning that yields incorrect parallel copies
///             (two same-block phis pinned to SP).
/// Figure 3  — Leung & George repair + redundant-copy elision.
/// Figure 5  — the phi coalescing gain/interference trade-off.
/// Figure 7  — the two-block worked example of Program_pinning.
/// Figure 8  — partial coalescing beyond Chaitin ([CC1]).
/// Figure 9  — whole-block phi optimization vs Sreedhar ([CS1]).
/// Figure 10 — parallel-copy placement vs Sreedhar ([CS2]).
/// Figure 11 — ABI-aware choice vs Sreedhar ([CS3]).
/// Figure 12 — repair-variable limitation of Leung & George ([LIM2]).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_WORKLOADS_PAPEREXAMPLES_H
#define LAO_WORKLOADS_PAPEREXAMPLES_H

#include "ir/Function.h"

#include <memory>

namespace lao {

std::unique_ptr<Function> makeFigure1();
std::unique_ptr<Function> makeFigure2();
std::unique_ptr<Function> makeFigure3();
std::unique_ptr<Function> makeFigure5();
std::unique_ptr<Function> makeFigure7();
std::unique_ptr<Function> makeFigure8();
std::unique_ptr<Function> makeFigure9();
std::unique_ptr<Function> makeFigure10();
std::unique_ptr<Function> makeFigure11();
std::unique_ptr<Function> makeFigure12();

} // namespace lao

#endif // LAO_WORKLOADS_PAPEREXAMPLES_H
