//===- Suites.h - Benchmark suite factories ---------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the benchmark suites standing in for the paper's
/// Section 5 benchmarks:
///
///   VALcc1 / VALcc2 : ~40 small DSP-ish kernels; variant 2 re-expands
///                     the same programs with a sloppier lowering style
///                     (extra copy chains), mimicking the two ST120 C
///                     compilers.
///   example1-8      : the paper's hand-written figures (see
///                     PaperExamples.h).
///   LAI_Large       : fewer, larger functions with deep loop nests
///                     (efr vocoder stand-in).
///   SPECint-like    : many medium/large functions with heavy call/ABI
///                     density (SPEC CINT2000 stand-in).
///
/// Every suite function is returned in *optimized pruned SSA* (built with
/// buildSSA, then copy propagation, value numbering and DCE — the same
/// shape the LAO pipeline hands to its out-of-SSA phase), together with
/// deterministic input vectors for interpreter-based equivalence checks.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_WORKLOADS_SUITES_H
#define LAO_WORKLOADS_SUITES_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lao {

/// One suite member: an SSA function plus input vectors for equivalence
/// testing.
struct Workload {
  std::string Name;
  std::unique_ptr<Function> F;
  std::vector<std::vector<uint64_t>> Inputs;
};

/// The five suites of the paper's results section.
std::vector<Workload> makeValccSuite(int Variant); ///< Variant 1 or 2.
std::vector<Workload> makeExamplesSuite();         ///< example1-8.
std::vector<Workload> makeLargeSuite();
std::vector<Workload> makeSpecLikeSuite();

/// Names and factories of all suites, in the paper's table order.
struct SuiteSpec {
  const char *Name;
  std::vector<Workload> (*Make)();
};
const std::vector<SuiteSpec> &allSuites();

/// Converts a freshly generated non-SSA function into the optimized SSA
/// form the suites ship (buildSSA + copy propagation + value numbering +
/// DCE). Exposed for tests.
void normalizeToOptimizedSSA(Function &F);

} // namespace lao

#endif // LAO_WORKLOADS_SUITES_H
