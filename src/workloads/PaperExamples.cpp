//===- PaperExamples.cpp - The paper's worked figures ---------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Each figure is written in textual mini-LAI and parsed; the paper's
// excerpts are completed into runnable functions (explicit entry,
// terminators, outputs) without changing the phenomena they illustrate.
//
//===----------------------------------------------------------------------===//

#include "workloads/PaperExamples.h"

#include "ir/IRParser.h"

#include <cassert>

using namespace lao;

namespace {

std::unique_ptr<Function> parseOrDie(const char *Text) {
  std::string Error;
  auto F = parseFunction(Text, &Error);
  assert(F && "paper example failed to parse");
  (void)Error;
  return F;
}

} // namespace

std::unique_ptr<Function> lao::makeFigure1() {
  // ABI parameter passing (C in R0, P in P0, result of f in R0, return
  // value in R0) plus the autoadd and more 2-operand constraints.
  return parseOrDie(R"(
func @figure1 {
entry:
  input %C^R0, %P^P0
  %A = load %P
  %Q = autoadd %P^Q, 1
  %B = load %Q
  %D^R0 = call @f(%A^R0, %B^R1)
  %E = add %C, %D
  %L = make 161            ; 0x00A1
  %K = more %L^K, 11258    ; 0x2BFA
  %F = sub %E, %K
  output %F
  ret %F^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure2() {
  // Over-constrained SP pinning: two phis of one block pinned to SP, the
  // strong interference (Case 3) that makes Figure 2's code incorrect.
  return parseOrDie(R"(
func @figure2 {
entry:
  input %a^R0
  %c = cmpeq %a, %a
  branch %c, left, right
left:
  %sp1^SP = spadjust %SP, -8
  %x1 = addi %a, 2
  jump join
right:
  %sp2^SP = spadjust %SP, -16
  %y1 = addi %a, 1
  jump join
join:
  %sp3^SP = phi [%sp1, left], [%y1, right]
  %sp4^SP = phi [%x1, left], [%sp2, right]
  %u = add %sp3, %sp4
  output %u
  ret %u^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure3() {
  // Leung & George repair: x2 is pinned to R0 but killed by the call
  // result x4 (also pinned to R0); its use after the loop needs a repair
  // copy, while its use *at* the call is already in R0 and must not cost
  // a move (redundant-copy elision).
  return parseOrDie(R"(
func @figure3 {
entry:
  input %x0^R0, %y0^R1
  %K = make 3
  jump loop
loop:
  %x1^R0 = phi [%x0, entry], [%x4, latch]
  %y1^R1 = phi [%y0, entry], [%y2, latch]
  %x2^R0 = addi %x1^R0, 1
  %y2 = add %y1, %K
  %x4^R0 = call @g(%x2^R0, %y2^R1)
  %c = cmplt %x4, %K
  branch %c, latch, exit
latch:
  jump loop
exit:
  output %x2
  ret %x2^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure5() {
  // x1 and x2 interfere (defined in the same block, each flowing into
  // the phi along its own edge); coalescing both with x repairs, while
  // coalescing only x2 costs a single move.
  return parseOrDie(R"(
func @figure5 {
entry:
  input %a^R0, %b^R1
  %x1 = add %a, %b
  %x2 = mul %a, %b
  %c = cmplt %a, %b
  branch %c, left, right
left:
  jump join
right:
  jump join
join:
  %x = phi [%x1, left], [%x2, right]
  output %x
  ret %x
}
)");
}

std::unique_ptr<Function> lao::makeFigure7() {
  // Program_pinning worked example: an inner confluence with two phis
  // sharing an argument (x2 feeds both X1 and X3, whose definitions
  // strongly interfere), plus an outer confluence reusing the same
  // variables.
  return parseOrDie(R"(
func @figure7 {
entry:
  input %a^R0
  %x1 = addi %a, 1
  %x2 = addi %a, 2
  %x3 = addi %a, 3
  jump L2
L2:
  %X1 = phi [%x2, entry], [%x1, L2latch]
  %X3 = phi [%x2, entry], [%x3, L2latch]
  %s = add %X1, %X3
  %c1 = cmplt %s, %a
  branch %c1, L2latch, L1pre
L2latch:
  jump L2
L1pre:
  jump L1
L1:
  %X2 = phi [%X1, L1pre], [%x2q, L1latch]
  %x2q = addi %X2, 4
  %c2 = cmplt %x2q, %a
  branch %c2, L1latch, exit
L1latch:
  jump L1
exit:
  output %X2
  ret %X2^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure8() {
  // Partial coalescing [CC1]: z merges the values of two calls already
  // in R0, but a later call clobbers R0 while z lives. Chaitin-style
  // coalescing on the final code can never merge z with R0; pinning can,
  // partially, at the cost of one repair.
  return parseOrDie(R"(
func @figure8 {
entry:
  input %a^R0
  %c = cmplt %a, %a
  branch %c, left, right
left:
  %z1^R0 = call @f1(%a^R0)
  jump join
right:
  %z2^R0 = call @f2(%a^R0)
  jump join
join:
  %z = phi [%z1, left], [%z2, right]
  %r3^R0 = call @f3(%z^R0)
  %w = add %z, %r3
  output %w
  ret %w^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure9() {
  // [CS1]: both phis of the block must be optimized together; treating
  // S1 then S2 in sequence (Sreedhar et al.) can insert two moves where
  // one suffices.
  return parseOrDie(R"(
func @figure9 {
entry:
  input %a^R0
  %c = cmplt %a, %a
  branch %c, pred1, pred2
pred1:
  %x = addi %a, 1
  %z = addi %a, 2
  jump join
pred2:
  %y = addi %a, 3
  jump join
join:
  %X = phi [%x, pred1], [%y, pred2]
  %Y = phi [%z, pred1], [%y, pred2]
  %s = add %X, %Y
  output %s
  ret %s^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure10() {
  // [CS2]: the swap. The parallel-copy placement lets our translation
  // express the exchange with a cyclic parallel copy; Sreedhar et al.
  // split variables instead.
  return parseOrDie(R"(
func @figure10 {
entry:
  input %x1^R0, %y1^R1
  %n = make 3
  %i0 = make 0
  jump loop
loop:
  %i = phi [%i0, entry], [%i2, latch]
  %x2 = phi [%x1, entry], [%y2, latch]
  %y2 = phi [%y1, entry], [%x2, latch]
  %r = call @f(%x2^R0, %y2^R1)
  output %r
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  branch %c, latch, exit
latch:
  jump loop
exit:
  ret %r^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure11() {
  // [CS3]: the phi B = phi(a, b2) should be coalesced with b2 because
  // the autoadd ties b2 to b1 (and b1's phi ties back to B); ignoring
  // the ABI constraint can pick the other side and cost an extra move.
  return parseOrDie(R"(
func @figure11 {
entry:
  input %s^R0
  %b0^R0 = call @f1(%s^R0)
  %n = make 4
  %i0 = make 0
  jump L
L:
  %i = phi [%i0, entry], [%i2, latch]
  %b1 = phi [%b0, entry], [%B, latch]
  %b2 = autoadd %b1^b2, 1
  %a = add %b2, %s
  %c = cmpeq %i, %n
  branch %c, L1, L2
L1:
  jump M
L2:
  jump M
M:
  %B = phi [%b2, L1], [%a, L2]
  output %B
  %i2 = addi %i, 1
  %c2 = cmplt %i2, %n
  branch %c2, latch, exit
latch:
  jump L
exit:
  ret %B^R0
}
)");
}

std::unique_ptr<Function> lao::makeFigure12() {
  // [LIM2]: the call argument is pinned to R0 every iteration. Leung &
  // George as published repairs through a fresh variable that is never
  // re-coalesced; our reconstruction reads the value from its own
  // resource and meets the figure's "optimal" column here.
  return parseOrDie(R"(
func @figure12 {
entry:
  input %a^R0
  %x0 = addi %a, 0
  %n = make 4
  %i0 = make 0
  jump L
L:
  %i = phi [%i0, entry], [%i2, latch]
  %x = phi [%x0, entry], [%x1, latch]
  %r^R0 = call @f(%x^R0)
  %x1 = addi %x, 1
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  branch %c, latch, exit
latch:
  jump L
exit:
  ret %r^R0
}
)");
}
