//===- Generator.cpp - Structured random program generator ---------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Generator.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <vector>

using namespace lao;

namespace {

/// Statement-level generator keeping the set of initialized variables.
class ProgramGen {
public:
  ProgramGen(const GeneratorParams &P, const std::string &Name)
      : P(P), Rng(P.Seed), F(std::make_unique<Function>(Name)),
        B(F->createBlock("entry")), Builder(B) {}

  std::unique_ptr<Function> run() {
    // Parameters.
    Instruction Input(Opcode::Input);
    for (unsigned K = 0; K < P.NumParams; ++K) {
      RegId V = F->makeVirtual("p" + std::to_string(K));
      Input.addDef(V);
      IntVars.push_back(V);
    }
    B->append(std::move(Input));

    if (P.UseSP) {
      SpVar = F->makeVirtual("sp");
      Builder.immOpTo(SpVar, Opcode::SpAdjust, Target::SP, -16);
      PtrVars.push_back(SpVar);
    }
    if (IntVars.empty()) {
      RegId Z = F->makeVirtual("z");
      Builder.makeTo(Z, 7);
      IntVars.push_back(Z);
    }
    if (P.UsePointers && PtrVars.empty()) {
      RegId Ptr = F->makeVirtual("ptr");
      Builder.makeTo(Ptr, 0x2000);
      PtrVars.push_back(Ptr);
    }

    genStatements(P.NumStatements, 0);

    // Epilogue: observable trace + return.
    if (P.UseSP) {
      RegId SpOut = F->makeVirtual("spout");
      Builder.immOpTo(SpOut, Opcode::SpAdjust, SpVar, 16);
    }
    Builder.output(pickInt());
    Builder.ret(pickInt());
    return std::move(F);
  }

private:
  const GeneratorParams &P;
  lao::Rng Rng;
  std::unique_ptr<Function> F;
  BasicBlock *B;
  IRBuilder Builder;
  std::vector<RegId> IntVars;
  std::vector<RegId> PtrVars;
  std::vector<RegId> ProtectedVars; ///< Live loop inductions: never mutated
                                    ///< by random statements, or loop trip
                                    ///< counts would become unbounded.
  RegId SpVar = InvalidReg;
  unsigned LoopCount = 0;

  RegId pickInt() { return IntVars[Rng.below(IntVars.size())]; }
  RegId pickPtr() { return PtrVars[Rng.below(PtrVars.size())]; }

  bool isProtected(RegId V) const {
    for (RegId Pv : ProtectedVars)
      if (Pv == V)
        return true;
    return false;
  }

  /// Destination for an assignment: an existing variable (mutation) or a
  /// fresh one.
  RegId pickDest() {
    if (Rng.chance(P.MutatePercent, 100)) {
      for (unsigned Try = 0; Try < 4; ++Try) {
        RegId V = pickInt();
        if (!isProtected(V))
          return V;
      }
    }
    RegId V = F->makeVirtual("x");
    IntVars.push_back(V);
    return V;
  }

  /// Possibly wraps \p V through a redundant temporary (VALcc2 style).
  RegId maybeCopy(RegId V) {
    if (!P.ExtraCopies || !Rng.chance(35, 100))
      return V;
    RegId T = F->makeVirtual("t");
    Builder.movTo(T, V);
    IntVars.push_back(T);
    return T;
  }

  void switchTo(BasicBlock *NewBB) {
    B = NewBB;
    Builder.setBlock(NewBB);
  }

  void genStatements(unsigned Budget, unsigned Nesting) {
    for (unsigned S = 0; S < Budget; ++S)
      genStatement(Nesting);
  }

  void genStatement(unsigned Nesting) {
    unsigned Kind = static_cast<unsigned>(Rng.below(100));

    // Control-flow statements only below the nesting cap, with a budget
    // so programs stay bounded.
    if (Nesting < P.MaxNesting && Kind < 14 && LoopCount < 24) {
      genLoop(Nesting);
      return;
    }
    if (Nesting < P.MaxNesting && Kind < 30) {
      genIf(Nesting);
      return;
    }
    if (Kind < 30 + P.CallPercent) {
      genCall();
      return;
    }
    if (P.UsePointers && Kind < 52 + P.CallPercent) {
      genPointerOp();
      return;
    }
    if (P.UsePsi && Kind < 60 + P.CallPercent) {
      RegId Pred = F->makeVirtual("pr");
      Builder.binaryTo(Pred, Opcode::CmpLT, maybeCopy(pickInt()),
                       maybeCopy(pickInt()));
      RegId A = pickInt();
      RegId B = pickInt();
      Builder.psiTo(pickDest(), Pred, A, B);
      return;
    }
    genArith();
  }

  void genArith() {
    static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::And, Opcode::Or,  Opcode::Xor};
    unsigned Which = static_cast<unsigned>(Rng.below(9));
    // Sources are chosen before the destination: pickDest may create a
    // fresh (still undefined) variable that must not be readable yet.
    if (Which < 6) {
      RegId A = maybeCopy(pickInt());
      RegId B = maybeCopy(pickInt());
      Builder.binaryTo(pickDest(), Ops[Which], A, B);
    } else if (Which == 6) {
      Builder.makeTo(pickDest(), Rng.range(-100, 100));
    } else if (Which == 7) {
      RegId A = maybeCopy(pickInt());
      Builder.immOpTo(pickDest(), Opcode::AddI, A, Rng.range(-8, 8));
    } else {
      // 2-operand constrained instruction (More).
      RegId A = maybeCopy(pickInt());
      Builder.immOpTo(pickDest(), Opcode::More, A, Rng.range(0, 0xFFFF));
    }
  }

  void genCall() {
    unsigned NumArgs = static_cast<unsigned>(Rng.range(1, 4));
    std::vector<RegId> Args;
    for (unsigned K = 0; K < NumArgs; ++K)
      Args.push_back(maybeCopy(pickInt()));
    static const char *const Callees[] = {"f", "g", "h", "mac", "sat"};
    Builder.callTo(pickDest(), Callees[Rng.below(5)], Args);
  }

  void genPointerOp() {
    unsigned Which = static_cast<unsigned>(Rng.below(4));
    if (Which == 0) {
      // Post-modified address: 2-operand constraint on a pointer.
      RegId NewPtr = F->makeVirtual("q");
      Builder.immOpTo(NewPtr, Opcode::AutoAdd, pickPtr(),
                      Rng.range(1, 8) * 4);
      PtrVars.push_back(NewPtr);
    } else if (Which == 1) {
      Builder.loadTo(pickDest(), pickPtr());
    } else if (Which == 2) {
      Builder.store(pickPtr(), maybeCopy(pickInt()));
    } else {
      // Load-modify chain, the DSP access idiom of the paper's Figure 1.
      RegId Ptr = pickPtr();
      Builder.loadTo(pickDest(), Ptr);
      RegId NewPtr = F->makeVirtual("q");
      Builder.immOpTo(NewPtr, Opcode::AutoAdd, Ptr, 4);
      PtrVars.push_back(NewPtr);
    }
  }

  void genIf(unsigned Nesting) {
    RegId Cond = F->makeVirtual("c");
    Builder.binaryTo(Cond, Rng.chance(1, 2) ? Opcode::CmpLT : Opcode::CmpEQ,
                     pickInt(), pickInt());
    BasicBlock *Then = F->createBlock();
    BasicBlock *Else = F->createBlock();
    BasicBlock *Join = F->createBlock();
    Builder.branch(Cond, Then, Else);

    // Variables created inside a branch must not escape (they would be
    // uninitialized on the other path), so snapshot and restore.
    size_t IntMark = IntVars.size(), PtrMark = PtrVars.size();
    unsigned SubBudget = 1 + static_cast<unsigned>(Rng.below(4));

    switchTo(Then);
    genStatements(SubBudget, Nesting + 1);
    Builder.jump(Join);
    IntVars.resize(IntMark);
    PtrVars.resize(PtrMark);

    switchTo(Else);
    if (Rng.chance(3, 4))
      genStatements(1 + static_cast<unsigned>(Rng.below(3)), Nesting + 1);
    Builder.jump(Join);
    IntVars.resize(IntMark);
    PtrVars.resize(PtrMark);

    switchTo(Join);
  }

  void genLoop(unsigned Nesting) {
    ++LoopCount;
    RegId Induction = F->makeVirtual("i");
    Builder.makeTo(Induction, 0);
    RegId Bound = F->makeVirtual("n");
    Builder.makeTo(Bound, Rng.range(2, 5));
    IntVars.push_back(Induction);

    BasicBlock *Header = F->createBlock();
    BasicBlock *Body = F->createBlock();
    BasicBlock *Exit = F->createBlock();
    Builder.jump(Header);

    switchTo(Header);
    RegId Cond = F->makeVirtual("c");
    Builder.binaryTo(Cond, Opcode::CmpLT, Induction, Bound);
    Builder.branch(Cond, Body, Exit);

    size_t IntMark = IntVars.size(), PtrMark = PtrVars.size();
    ProtectedVars.push_back(Induction);
    switchTo(Body);
    genStatements(1 + static_cast<unsigned>(Rng.below(4)), Nesting + 1);
    Builder.immOpTo(Induction, Opcode::AddI, Induction, 1);
    Builder.jump(Header);
    IntVars.resize(IntMark);
    PtrVars.resize(PtrMark);
    ProtectedVars.pop_back();

    switchTo(Exit);
  }
};

} // namespace

std::unique_ptr<Function> lao::generateProgram(const GeneratorParams &Params,
                                               const std::string &Name) {
  ProgramGen Gen(Params, Name);
  return Gen.run();
}
