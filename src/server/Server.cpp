//===- Server.cpp - Sharded compile service over the pipeline ------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "analysis/AnalysisManager.h"
#include "exec/Interpreter.h"
#include "exec/VM.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "outofssa/Pipeline.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "workloads/Suites.h"

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

using namespace lao;
using Clock = std::chrono::steady_clock;

const char *lao::outcomeName(RequestOutcome O) {
  switch (O) {
  case RequestOutcome::Ok:
    return "ok";
  case RequestOutcome::ParseError:
    return "parse_error";
  case RequestOutcome::UnknownPreset:
    return "unknown_preset";
  case RequestOutcome::Timeout:
    return "timeout";
  case RequestOutcome::PipelineError:
    return "pipeline_error";
  case RequestOutcome::Oversized:
    return "oversized";
  case RequestOutcome::BatchError:
    return "batch_error";
  case RequestOutcome::Protocol:
    return "protocol_error";
  }
  return "unknown";
}

std::string lao::requestRecordJson(const RequestRecord &Rec) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Rec.Id);
  // "ok" must directly follow "id": readResponse probes for the
  // substring "\"ok\":true" instead of parsing JSON.
  W.key("ok").value(Rec.ok());
  W.key("outcome").value(outcomeName(Rec.Outcome));
  if (Rec.Item >= 0)
    W.key("item").value(static_cast<uint64_t>(Rec.Item));
  W.key("error").value(Rec.Error);
  W.key("pipeline").value(Rec.Pipeline);
  W.key("moves").value(Rec.Moves);
  W.key("weighted_moves").value(Rec.WeightedMoves);
  W.key("seconds").value(Rec.Seconds);
  if (Rec.HasRegAlloc) {
    W.key("allocator").value(Rec.Allocator);
    W.key("spill_mode").value(Rec.SpillMode);
    W.key("spills").value(Rec.Spills);
    W.key("spill_accesses").value(Rec.SpillAccesses);
    W.key("regs_used").value(Rec.RegsUsed);
    W.key("frame_bytes").value(Rec.FrameBytes);
  }
  if (Rec.HasExec) {
    W.key("exec_engine").value(Rec.ExecEngine);
    W.key("exec_status").value(Rec.ExecStatus);
    if (!Rec.ExecError.empty())
      W.key("exec_error").value(Rec.ExecError);
    W.key("dyn_instrs").value(Rec.DynInstrs);
    W.key("dyn_moves").value(Rec.DynMoves);
    W.key("exec_outputs").beginArray();
    for (uint64_t V : Rec.ExecOutputs)
      W.value(V);
    W.endArray();
    W.key("exec_ret").value(Rec.ExecRet);
  }
  W.key("counters").beginObject();
  for (const auto &[Key, Value] : Rec.Counters)
    W.key(Key).value(Value);
  W.endObject();
  W.endObject();
  return W.take();
}

namespace {

/// The one-line summary record heading a RSB body. Summary "ok" means
/// the batch frame was well-formed and every item was answered; item
/// failures stay per-item and are only counted here (error_count).
std::string batchSummaryJson(uint64_t Id, RequestOutcome O,
                             const std::string &Error, size_t NumFunctions,
                             size_t OkCount, double Seconds) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Id);
  // Same contract as the request record: "ok" directly follows "id"
  // for the substring probe in readResponseFrame.
  W.key("ok").value(O == RequestOutcome::Ok);
  W.key("outcome").value(outcomeName(O));
  W.key("error").value(Error);
  W.key("functions").value(static_cast<uint64_t>(NumFunctions));
  W.key("ok_count").value(static_cast<uint64_t>(OkCount));
  W.key("error_count").value(static_cast<uint64_t>(NumFunctions - OkCount));
  W.key("seconds").value(Seconds);
  W.endObject();
  return W.take();
}

/// The step budget of a server-side execution request. Fixed (not a
/// request option) so dyn counters stay comparable across clients; it is
/// the engines' own default and comfortably covers every suite function.
constexpr uint64_t ExecMaxSteps = 1u << 22;

/// The record's wire name for how an execution ended.
const char *execStatusName(const ExecResult &R) {
  return R.ok() ? "ok" : R.timedOut() ? "timeout" : "error";
}

/// Drains the worker's recycler hit count into the global counter.
/// Called after compileRequest returned, i.e. after its StatsScope
/// died: warm-path volume depends on scheduling (which worker got the
/// request), so it must never leak into per-request counter deltas —
/// those are test-enforced to be identical serial vs sharded.
void flushRecyclerStats(WorkerContext &Ctx) {
  if (uint64_t B = Ctx.Recycler.takeReuseBytes())
    LAO_STAT(server, arena_reuse_bytes) += B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-request compile path
//===----------------------------------------------------------------------===//

RequestRecord Server::compileRequest(const Request &Req, WorkerContext &Ctx,
                                     Clock::time_point Arrival,
                                     const ServerOptions &Opts,
                                     bool PerRequestCounters) {
  RequestRecord Rec;
  Rec.Id = Req.Id;
  Rec.Pipeline = Req.Pipeline;
  auto Start = Clock::now();
  auto Fail = [&](RequestOutcome O, std::string Error) -> RequestRecord & {
    Rec.Outcome = O;
    Rec.Error = std::move(Error);
    Rec.IR.clear();
    return Rec;
  };

  uint64_t DeadlineMs = Req.DeadlineMs ? Req.DeadlineMs
                                       : Opts.DefaultDeadlineMs;
  Clock::time_point Deadline =
      Arrival + std::chrono::milliseconds(DeadlineMs);
  auto Expired = [&] { return DeadlineMs && Clock::now() >= Deadline; };

  // Everything below attributes its counter bumps to this request alone,
  // however many sibling workers are running. Batch items skip the
  // scope — that is the lean path batching exists for — and report an
  // empty counters object instead.
  std::optional<StatsScope> Scope;
  if (PerRequestCounters)
    Scope.emplace();
  ++LAO_STAT(server, requests);
  auto Finish = [&]() -> RequestRecord & {
    if (Scope)
      Rec.Counters = Scope->takeAndReset();
    Rec.Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    return Rec;
  };

  if (Expired()) {
    ++LAO_STAT(server, timeouts);
    return Finish(),
           Fail(RequestOutcome::Timeout,
                "deadline exceeded before compilation started");
  }

  // Diagnostic idle, in slices so a deadline interrupts it promptly.
  for (Clock::time_point SleepEnd =
           Start + std::chrono::milliseconds(Req.SleepMs);
       Clock::now() < SleepEnd;) {
    if (Expired()) {
      ++LAO_STAT(server, timeouts);
      return Finish(), Fail(RequestOutcome::Timeout,
                            "deadline exceeded during requested sleep");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::string ParseError;
  std::unique_ptr<Function> F = parseFunction(Req.Text, &ParseError);
  if (!F) {
    ++LAO_STAT(server, parse_errors);
    return Finish(),
           Fail(RequestOutcome::ParseError, "parse error: " + ParseError);
  }
  std::optional<PipelineConfig> Config = pipelinePresetOpt(Req.Pipeline);
  if (!Config) {
    ++LAO_STAT(server, preset_errors);
    return Finish(), Fail(RequestOutcome::UnknownPreset,
                          formatStr("unknown pipeline preset '%s'",
                                    Req.Pipeline.c_str()));
  }
  Config->CancelCheck = Expired;
  const std::string &RegAllocName =
      Req.RegAlloc.empty() ? Opts.DefaultRegAlloc : Req.RegAlloc;
  if (!RegAllocName.empty()) {
    std::optional<RegAllocOptions> RA = regAllocPresetOpt(RegAllocName);
    if (!RA) {
      ++LAO_STAT(server, preset_errors);
      return Finish(), Fail(RequestOutcome::UnknownPreset,
                            formatStr("unknown regalloc preset '%s'",
                                      RegAllocName.c_str()));
    }
    if (Req.RegAllocRegs)
      RA->NumRegs = static_cast<unsigned>(Req.RegAllocRegs);
    Config->RegAlloc = *RA;
  }
  if (!Req.Exec.empty() && Req.Exec != "interp" && Req.Exec != "vm" &&
      Req.Exec != "both") {
    ++LAO_STAT(server, preset_errors);
    return Finish(), Fail(RequestOutcome::UnknownPreset,
                          formatStr("unknown exec engine '%s' (want interp, "
                                    "vm or both)",
                                    Req.Exec.c_str()));
  }

  // Swap the request's function into the worker context: the reused
  // manager is rebound to it inside runPipeline, and the previous
  // request's function (which the manager may still reference through
  // dropped-on-reset caches) dies only after this one is in place.
  // When the slot's recycler is bound to this thread, the dying
  // function's arena chunks park there and the *next* request's parse
  // bump-allocates straight into them.
  Ctx.F = std::move(F);
  if (!Ctx.AM)
    Ctx.AM = std::make_unique<AnalysisManager>(*Ctx.F);

  try {
    if (Req.BuildSSA)
      normalizeToOptimizedSSA(*Ctx.F);
    PipelineResult R = runPipeline(*Ctx.F, *Config, *Ctx.AM);
    if (R.Cancelled) {
      ++LAO_STAT(server, timeouts);
      return Finish(), Fail(RequestOutcome::Timeout,
                            "deadline exceeded during compilation");
    }
    Rec.Moves = R.NumMoves;
    Rec.WeightedMoves = R.WeightedMoves;
    if (R.RegAlloc) {
      if (!R.RegAlloc->Ok) {
        ++LAO_STAT(server, pipeline_errors);
        return Finish(), Fail(RequestOutcome::PipelineError,
                              "regalloc error: " + R.RegAlloc->Error);
      }
      Rec.HasRegAlloc = true;
      Rec.Allocator = allocatorName(Config->RegAlloc->Allocator);
      Rec.SpillMode = spillModelName(Config->RegAlloc->SpillMode);
      Rec.Spills = R.RegAlloc->NumSpilled;
      Rec.SpillAccesses = R.RegAlloc->NumSpillLoads + R.RegAlloc->NumSpillStores;
      Rec.RegsUsed = R.RegAlloc->NumRegsUsed;
      Rec.FrameBytes = R.RegAlloc->FrameBytes;
    }
    Rec.IR = printFunction(*Ctx.F);
    if (!Req.Exec.empty()) {
      // Execute the transformed function the client just compiled. The
      // VM is the reporting engine for "vm" and "both" (its dyn counters
      // are the results axis the bench gates); "both" additionally runs
      // the interpreter and holds the two to the sameOutcome contract —
      // an in-process differential on live traffic.
      ExecResult ER = Req.Exec == "interp"
                          ? interpret(*Ctx.F, Req.ExecArgs, ExecMaxSteps)
                          : executeVM(*Ctx.F, Req.ExecArgs, ExecMaxSteps);
      if (Req.Exec == "both") {
        ExecResult IRes = interpret(*Ctx.F, Req.ExecArgs, ExecMaxSteps);
        if (!ER.sameOutcome(IRes)) {
          ++LAO_STAT(server, exec_divergences);
          return Finish(),
                 Fail(RequestOutcome::PipelineError,
                      formatStr("exec divergence: vm %s (%s), interp %s (%s)",
                                execStatusName(ER), ER.Error.c_str(),
                                execStatusName(IRes), IRes.Error.c_str()));
        }
      }
      Rec.HasExec = true;
      Rec.ExecEngine = Req.Exec;
      Rec.ExecStatus = execStatusName(ER);
      Rec.ExecError = ER.Error;
      Rec.DynInstrs = ER.Steps;
      Rec.DynMoves = ER.DynMoves;
      Rec.ExecOutputs = std::move(ER.Outputs);
      Rec.ExecRet = ER.ok() ? ER.RetValue : 0;
    }
  } catch (const std::exception &E) {
    ++LAO_STAT(server, pipeline_errors);
    return Finish(), Fail(RequestOutcome::PipelineError,
                          formatStr("pipeline error: %s", E.what()));
  } catch (...) {
    ++LAO_STAT(server, pipeline_errors);
    return Finish(),
           Fail(RequestOutcome::PipelineError, "pipeline error: unknown");
  }
  ++LAO_STAT(server, requests_ok);
  return Finish();
}

//===----------------------------------------------------------------------===//
// Connection plumbing
//===----------------------------------------------------------------------===//

/// Per-serve()-call state: one connection's reorder buffer, in-flight
/// window, and (under CollectRecords) its record blocks keyed by frame
/// sequence. All shared fields are guarded by M.
struct Server::Connection {
  std::mutex M;
  std::condition_variable Cv; ///< Wakes the writer and stalled readers.
  std::map<uint64_t, std::string> PendingOut; ///< seq -> encoded frame.
  std::map<uint64_t, std::vector<RequestRecord>> Collected;
  uint64_t NextFlush = 0;
  uint64_t SeqCount = 0;
  bool ReaderDone = false;
  unsigned InFlight = 0; ///< Frames dispatched but not yet flushed.
  unsigned MaxSeen = 0;
};

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  Pool = std::make_unique<ThreadPool>(Opts.NumWorkers ? Opts.NumWorkers : 1);
  Opts.NumWorkers = Pool->numThreads();
  // Worker contexts are handed out through a free-slot stack: at most
  // NumWorkers tasks run at once, so a popping task always finds one,
  // and a context is reused serially even though tasks hop threads and
  // connections.
  Contexts = std::vector<WorkerContext>(Opts.NumWorkers);
  for (unsigned K = 0; K < Opts.NumWorkers; ++K)
    FreeSlots.push_back(K);
}

Server::~Server() = default;

unsigned Server::acquireSlot() {
  std::lock_guard<std::mutex> G(SlotM);
  unsigned Slot = FreeSlots.back();
  FreeSlots.pop_back();
  return Slot;
}

void Server::releaseSlot(unsigned Slot) {
  std::lock_guard<std::mutex> G(SlotM);
  FreeSlots.push_back(Slot);
}

/// Accounts \p Recs in the shared report and hands \p Frame to the
/// connection's writer under its sequence number.
void Server::complete(Connection &C, uint64_t Seq, std::string Frame,
                      std::vector<RequestRecord> Recs) {
  {
    std::lock_guard<std::mutex> G(ReportM);
    for (const RequestRecord &Rec : Recs) {
      ++Report.NumRequests;
      switch (Rec.Outcome) {
      case RequestOutcome::Ok:
        ++Report.NumOk;
        break;
      case RequestOutcome::Timeout:
        ++Report.NumTimeouts;
        break;
      case RequestOutcome::ParseError:
      case RequestOutcome::UnknownPreset:
        ++Report.NumParseErrors;
        break;
      case RequestOutcome::Oversized:
        ++Report.NumOversized;
        break;
      case RequestOutcome::PipelineError:
        ++Report.NumPipelineErrors;
        break;
      case RequestOutcome::BatchError:
        ++Report.NumBatchErrors;
        break;
      case RequestOutcome::Protocol:
        break;
      }
      if (Rec.Outcome != RequestOutcome::Ok)
        ++Report.NumErrors;
      mergeSnapshot(Report.MergedCounters, Rec.Counters);
    }
  }
  std::lock_guard<std::mutex> G(C.M);
  if (Opts.CollectRecords)
    C.Collected[Seq] = std::move(Recs);
  C.PendingOut[Seq] = std::move(Frame);
  C.Cv.notify_all();
}

void Server::dispatchSingle(Connection &C, Request Req,
                            Clock::time_point Arrival, uint64_t Seq) {
  Pool->async([this, &C, Seq, Arrival, Req = std::move(Req)] {
    unsigned Slot = acquireSlot();
    WorkerContext &Ctx = Contexts[Slot];
    RequestRecord Rec;
    try {
      ArenaRecycler::Bind Bind(Ctx.Recycler);
      Rec = compileRequest(Req, Ctx, Arrival, Opts);
    } catch (...) {
      // compileRequest catches compile-path exceptions itself; this is
      // the belt-and-braces backstop that keeps the connection's
      // sequence space gap-free even on a server plumbing bug.
      Rec = RequestRecord();
      Rec.Id = Req.Id;
      Rec.Pipeline = Req.Pipeline;
      Rec.Outcome = RequestOutcome::PipelineError;
      Rec.Error = "pipeline error: exception escaped the worker";
    }
    flushRecyclerStats(Ctx);
    releaseSlot(Slot);
    Response Rsp;
    Rsp.Id = Rec.Id;
    Rsp.RecordJson = requestRecordJson(Rec);
    Rsp.IR = Opts.CollectRecords ? Rec.IR : std::move(Rec.IR);
    std::vector<RequestRecord> Recs;
    Recs.push_back(std::move(Rec));
    complete(C, Seq, encodeResponse(Rsp), std::move(Recs));
  });
}

void Server::dispatchBatch(Connection &C, BatchRequest Bat,
                           Clock::time_point Arrival, uint64_t Seq) {
  struct BatchState {
    BatchRequest Req;
    Clock::time_point Arrival;
    uint64_t Seq = 0;
    std::vector<RequestRecord> Items;
    std::atomic<size_t> Remaining{0};
  };
  auto St = std::make_shared<BatchState>();
  St->Req = std::move(Bat);
  St->Arrival = Arrival;
  St->Seq = Seq;
  size_t N = St->Req.Texts.size();
  St->Items.resize(N);
  St->Remaining.store(N, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> G(ReportM);
    ++Report.NumBatches;
  }
  ++LAO_STAT(server, batches);
  LAO_STAT(server, batch_items) += N;

  auto Assemble = [this, &C, St] {
    BatchResponse Rsp;
    Rsp.Id = St->Req.Id;
    size_t OkCount = 0;
    for (RequestRecord &Rec : St->Items) {
      OkCount += Rec.ok();
      Response Item;
      Item.Id = Rec.Id;
      Item.RecordJson = requestRecordJson(Rec);
      Item.IR = Opts.CollectRecords ? Rec.IR : std::move(Rec.IR);
      Rsp.Items.push_back(std::move(Item));
    }
    double Seconds =
        std::chrono::duration<double>(Clock::now() - St->Arrival).count();
    Rsp.SummaryJson = batchSummaryJson(St->Req.Id, RequestOutcome::Ok, "",
                                       St->Items.size(), OkCount, Seconds);
    complete(C, St->Seq, encodeBatchResponse(Rsp), std::move(St->Items));
  };
  if (N == 0)
    return Assemble();

  for (size_t K = 0; K < N; ++K)
    Pool->async([this, St, K, Assemble] {
      unsigned Slot = acquireSlot();
      WorkerContext &Ctx = Contexts[Slot];
      Request R;
      R.Id = St->Req.Id;
      R.Pipeline = St->Req.Pipeline;
      R.BuildSSA = St->Req.BuildSSA;
      R.DeadlineMs = St->Req.DeadlineMs;
      R.SleepMs = St->Req.SleepMs;
      R.RegAlloc = St->Req.RegAlloc;
      R.RegAllocRegs = St->Req.RegAllocRegs;
      R.Exec = St->Req.Exec;
      R.ExecArgs = St->Req.ExecArgs;
      R.Text = std::move(St->Req.Texts[K]); // Each item read exactly once.
      RequestRecord Rec;
      try {
        ArenaRecycler::Bind Bind(Ctx.Recycler);
        Rec = compileRequest(R, Ctx, St->Arrival, Opts,
                             /*PerRequestCounters=*/false);
      } catch (...) {
        Rec = RequestRecord();
        Rec.Id = R.Id;
        Rec.Pipeline = R.Pipeline;
        Rec.Outcome = RequestOutcome::PipelineError;
        Rec.Error = "pipeline error: exception escaped the worker";
      }
      Rec.Item = static_cast<int64_t>(K);
      flushRecyclerStats(Ctx);
      releaseSlot(Slot);
      St->Items[K] = std::move(Rec);
      // Last finisher assembles the single response frame: one write
      // wakeup per batch, not per function.
      if (St->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        Assemble();
    });
}

//===----------------------------------------------------------------------===//
// The serve loop
//===----------------------------------------------------------------------===//

int Server::serve(std::istream &In, std::ostream &Out) {
  Connection C;

  // Responses are written strictly in arrival order by a dedicated
  // writer thread, whatever order the workers finish in.
  std::thread Writer([&] {
    std::unique_lock<std::mutex> L(C.M);
    for (;;) {
      C.Cv.wait(L, [&] {
        return C.PendingOut.count(C.NextFlush) != 0 ||
               (C.ReaderDone && C.NextFlush == C.SeqCount);
      });
      for (auto It = C.PendingOut.find(C.NextFlush); It != C.PendingOut.end();
           It = C.PendingOut.find(C.NextFlush)) {
        std::string Frame = std::move(It->second);
        C.PendingOut.erase(It);
        ++C.NextFlush;
        L.unlock();
        Out << Frame;
        Out.flush();
        L.lock();
        // The flush frees one window slot; wake a stalled reader.
        --C.InFlight;
        C.Cv.notify_all();
      }
      if (C.ReaderDone && C.NextFlush == C.SeqCount)
        return;
    }
  });

  uint64_t Seq = 0;
  int Rc = 0;
  for (;;) {
    // Bounded in-flight window: a client pipelining faster than the
    // pool drains stalls here (its own connection only) instead of
    // ballooning the reorder buffer.
    if (Opts.MaxInFlightFrames) {
      std::unique_lock<std::mutex> L(C.M);
      while (C.InFlight >= Opts.MaxInFlightFrames && !shutdownRequested())
        C.Cv.wait_for(L, std::chrono::milliseconds(50));
    }
    if (shutdownRequested())
      break;

    FrameKind Kind;
    Request Req;
    BatchRequest Bat;
    std::string Error;
    FrameStatus S = readRequestFrame(In, Opts.Limits, Kind, Req, Bat, Error);
    if (S == FrameStatus::Eof)
      break;
    Clock::time_point Arrival = Clock::now();
    {
      std::lock_guard<std::mutex> G(C.M);
      ++C.InFlight;
      if (C.InFlight > C.MaxSeen)
        C.MaxSeen = C.InFlight;
    }
    if (S == FrameStatus::Malformed) {
      // The stream cannot be resynchronized: answer with a final id-0
      // protocol record and stop reading. Everything already dispatched
      // still completes and flushes in order below.
      RequestRecord Rec;
      Rec.Outcome = RequestOutcome::Protocol;
      Rec.Error = "protocol error: " + Error;
      Response Rsp;
      Rsp.RecordJson = requestRecordJson(Rec);
      std::vector<RequestRecord> Recs;
      Recs.push_back(std::move(Rec));
      complete(C, Seq++, encodeResponse(Rsp), std::move(Recs));
      Rc = 1;
      break;
    }
    ++LAO_STAT(server, frames);
    if (S == FrameStatus::Oversized || !Error.empty()) {
      // Body-level failure: answer an error record in the frame's own
      // shape (RSP or RSB) and keep serving.
      RequestRecord Rec;
      Rec.Id = Kind == FrameKind::Batch ? Bat.Id : Req.Id;
      Rec.Pipeline = Kind == FrameKind::Batch ? Bat.Pipeline : Req.Pipeline;
      if (S == FrameStatus::Oversized) {
        Rec.Outcome = RequestOutcome::Oversized;
        ++LAO_STAT(server, oversized);
      } else if (Kind == FrameKind::Batch) {
        Rec.Outcome = RequestOutcome::BatchError;
        ++LAO_STAT(server, batch_errors);
      } else {
        Rec.Outcome = RequestOutcome::ParseError;
        ++LAO_STAT(server, parse_errors);
      }
      Rec.Error = Error;
      ++LAO_STAT(server, requests);
      std::string Frame;
      if (Kind == FrameKind::Batch) {
        BatchResponse Rsp;
        Rsp.Id = Rec.Id;
        Rsp.SummaryJson =
            batchSummaryJson(Rec.Id, Rec.Outcome, Rec.Error, 0, 0, 0.0);
        Frame = encodeBatchResponse(Rsp);
      } else {
        Response Rsp;
        Rsp.Id = Rec.Id;
        Rsp.RecordJson = requestRecordJson(Rec);
        Frame = encodeResponse(Rsp);
      }
      std::vector<RequestRecord> Recs;
      Recs.push_back(std::move(Rec));
      complete(C, Seq++, std::move(Frame), std::move(Recs));
      continue;
    }
    if (Kind == FrameKind::Batch)
      dispatchBatch(C, std::move(Bat), Arrival, Seq++);
    else
      dispatchSingle(C, std::move(Req), Arrival, Seq++);
  }

  // Drain: every dispatched frame still completes and flushes in order;
  // the writer exits once the last sequence number went out.
  {
    std::lock_guard<std::mutex> G(C.M);
    C.ReaderDone = true;
    C.SeqCount = Seq;
  }
  C.Cv.notify_all();
  Writer.join();

  std::lock_guard<std::mutex> G(ReportM);
  if (C.MaxSeen > Report.MaxInFlight)
    Report.MaxInFlight = C.MaxSeen;
  if (Opts.CollectRecords)
    for (auto &[CollectedSeq, Recs] : C.Collected) {
      (void)CollectedSeq;
      for (RequestRecord &Rec : Recs)
        Records.push_back(std::move(Rec));
    }
  return Rc;
}
