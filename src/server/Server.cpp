//===- Server.cpp - Sharded compile service over the pipeline ------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "analysis/AnalysisManager.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "outofssa/Pipeline.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "workloads/Suites.h"

#include <condition_variable>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>

using namespace lao;
using Clock = std::chrono::steady_clock;

const char *lao::outcomeName(RequestOutcome O) {
  switch (O) {
  case RequestOutcome::Ok:
    return "ok";
  case RequestOutcome::ParseError:
    return "parse_error";
  case RequestOutcome::UnknownPreset:
    return "unknown_preset";
  case RequestOutcome::Timeout:
    return "timeout";
  case RequestOutcome::PipelineError:
    return "pipeline_error";
  case RequestOutcome::Oversized:
    return "oversized";
  case RequestOutcome::Protocol:
    return "protocol_error";
  }
  return "unknown";
}

std::string lao::requestRecordJson(const RequestRecord &Rec) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Rec.Id);
  // "ok" must directly follow "id": readResponse probes for the
  // substring "\"ok\":true" instead of parsing JSON.
  W.key("ok").value(Rec.ok());
  W.key("outcome").value(outcomeName(Rec.Outcome));
  W.key("error").value(Rec.Error);
  W.key("pipeline").value(Rec.Pipeline);
  W.key("moves").value(Rec.Moves);
  W.key("weighted_moves").value(Rec.WeightedMoves);
  W.key("seconds").value(Rec.Seconds);
  W.key("counters").beginObject();
  for (const auto &[Key, Value] : Rec.Counters)
    W.key(Key).value(Value);
  W.endObject();
  W.endObject();
  return W.take();
}

RequestRecord Server::compileRequest(const Request &Req, WorkerContext &Ctx,
                                     Clock::time_point Arrival,
                                     const ServerOptions &Opts) {
  RequestRecord Rec;
  Rec.Id = Req.Id;
  Rec.Pipeline = Req.Pipeline;
  auto Start = Clock::now();
  auto Fail = [&](RequestOutcome O, std::string Error) -> RequestRecord & {
    Rec.Outcome = O;
    Rec.Error = std::move(Error);
    Rec.IR.clear();
    return Rec;
  };

  uint64_t DeadlineMs = Req.DeadlineMs ? Req.DeadlineMs
                                       : Opts.DefaultDeadlineMs;
  Clock::time_point Deadline =
      Arrival + std::chrono::milliseconds(DeadlineMs);
  auto Expired = [&] { return DeadlineMs && Clock::now() >= Deadline; };

  // Everything below attributes its counter bumps to this request alone,
  // however many sibling workers are running.
  StatsScope Scope;
  ++LAO_STAT(server, requests);
  auto Finish = [&]() -> RequestRecord & {
    Rec.Counters = Scope.takeAndReset();
    Rec.Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    return Rec;
  };

  if (Expired()) {
    ++LAO_STAT(server, timeouts);
    return Finish(),
           Fail(RequestOutcome::Timeout,
                "deadline exceeded before compilation started");
  }

  // Diagnostic idle, in slices so a deadline interrupts it promptly.
  for (Clock::time_point SleepEnd =
           Start + std::chrono::milliseconds(Req.SleepMs);
       Clock::now() < SleepEnd;) {
    if (Expired()) {
      ++LAO_STAT(server, timeouts);
      return Finish(), Fail(RequestOutcome::Timeout,
                            "deadline exceeded during requested sleep");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::string ParseError;
  std::unique_ptr<Function> F = parseFunction(Req.Text, &ParseError);
  if (!F) {
    ++LAO_STAT(server, parse_errors);
    return Finish(),
           Fail(RequestOutcome::ParseError, "parse error: " + ParseError);
  }
  std::optional<PipelineConfig> Config = pipelinePresetOpt(Req.Pipeline);
  if (!Config) {
    ++LAO_STAT(server, preset_errors);
    return Finish(), Fail(RequestOutcome::UnknownPreset,
                          formatStr("unknown pipeline preset '%s'",
                                    Req.Pipeline.c_str()));
  }
  Config->CancelCheck = Expired;

  // Swap the request's function into the worker context: the reused
  // manager is rebound to it inside runPipeline, and the previous
  // request's function (which the manager may still reference through
  // dropped-on-reset caches) dies only after this one is in place.
  Ctx.F = std::move(F);
  if (!Ctx.AM)
    Ctx.AM = std::make_unique<AnalysisManager>(*Ctx.F);

  try {
    if (Req.BuildSSA)
      normalizeToOptimizedSSA(*Ctx.F);
    PipelineResult R = runPipeline(*Ctx.F, *Config, *Ctx.AM);
    if (R.Cancelled) {
      ++LAO_STAT(server, timeouts);
      return Finish(), Fail(RequestOutcome::Timeout,
                            "deadline exceeded during compilation");
    }
    Rec.Moves = R.NumMoves;
    Rec.WeightedMoves = R.WeightedMoves;
    Rec.IR = printFunction(*Ctx.F);
  } catch (const std::exception &E) {
    ++LAO_STAT(server, pipeline_errors);
    return Finish(), Fail(RequestOutcome::PipelineError,
                          formatStr("pipeline error: %s", E.what()));
  } catch (...) {
    ++LAO_STAT(server, pipeline_errors);
    return Finish(),
           Fail(RequestOutcome::PipelineError, "pipeline error: unknown");
  }
  ++LAO_STAT(server, requests_ok);
  return Finish();
}

int Server::serve(std::istream &In, std::ostream &Out) {
  ThreadPool Pool(Opts.NumWorkers ? Opts.NumWorkers : 1);
  unsigned NumWorkers = Pool.numThreads();

  // Worker contexts are handed out through a free-slot stack: at most
  // NumWorkers tasks run at once, so a popping task always finds one,
  // and a context is reused serially even though tasks hop threads.
  std::vector<WorkerContext> Contexts(NumWorkers);
  std::vector<unsigned> FreeSlots;
  std::mutex SlotM;
  for (unsigned K = 0; K < NumWorkers; ++K)
    FreeSlots.push_back(K);

  // Reorder buffer: responses are written strictly in arrival order by
  // a dedicated writer thread, whatever order the workers finish in.
  std::mutex OutM;
  std::condition_variable OutCv;
  std::map<uint64_t, std::string> PendingOut; // seq -> encoded frame
  uint64_t NextFlush = 0;
  uint64_t SeqCount = 0;
  bool ReaderDone = false;

  std::thread Writer([&] {
    std::unique_lock<std::mutex> L(OutM);
    for (;;) {
      OutCv.wait(L, [&] {
        return PendingOut.count(NextFlush) != 0 ||
               (ReaderDone && NextFlush == SeqCount);
      });
      for (auto It = PendingOut.find(NextFlush); It != PendingOut.end();
           It = PendingOut.find(NextFlush)) {
        std::string Frame = std::move(It->second);
        PendingOut.erase(It);
        ++NextFlush;
        L.unlock();
        Out << Frame;
        Out.flush();
        L.lock();
      }
      if (ReaderDone && NextFlush == SeqCount)
        return;
    }
  });

  auto Complete = [&](uint64_t Seq, RequestRecord Rec) {
    Response Rsp;
    Rsp.Id = Rec.Id;
    Rsp.RecordJson = requestRecordJson(Rec);
    Rsp.IR = Rec.IR;
    std::string Frame = encodeResponse(Rsp);
    std::lock_guard<std::mutex> G(OutM);
    ++Report.NumRequests;
    switch (Rec.Outcome) {
    case RequestOutcome::Ok:
      ++Report.NumOk;
      break;
    case RequestOutcome::Timeout:
      ++Report.NumTimeouts;
      break;
    case RequestOutcome::ParseError:
    case RequestOutcome::UnknownPreset:
      ++Report.NumParseErrors;
      break;
    case RequestOutcome::Oversized:
      ++Report.NumOversized;
      break;
    case RequestOutcome::PipelineError:
      ++Report.NumPipelineErrors;
      break;
    case RequestOutcome::Protocol:
      break;
    }
    if (Rec.Outcome != RequestOutcome::Ok)
      ++Report.NumErrors;
    mergeSnapshot(Report.MergedCounters, Rec.Counters);
    if (Opts.CollectRecords) {
      if (Records.size() <= Seq)
        Records.resize(Seq + 1);
      Records[Seq] = std::move(Rec);
    }
    PendingOut[Seq] = std::move(Frame);
    OutCv.notify_all();
  };

  uint64_t Seq = 0;
  int Rc = 0;
  for (;;) {
    Request Req;
    std::string Error;
    FrameStatus S = readRequest(In, Opts.Limits, Req, Error);
    if (S == FrameStatus::Eof)
      break;
    if (S == FrameStatus::Malformed) {
      // The stream cannot be resynchronized: answer with a final id-0
      // protocol record and stop reading. Everything already dispatched
      // still completes and flushes in order below.
      RequestRecord Rec;
      Rec.Outcome = RequestOutcome::Protocol;
      Rec.Error = "protocol error: " + Error;
      Complete(Seq++, std::move(Rec));
      Rc = 1;
      break;
    }
    Clock::time_point Arrival = Clock::now();
    if (S == FrameStatus::Oversized || !Error.empty()) {
      RequestRecord Rec;
      Rec.Id = Req.Id;
      Rec.Pipeline = Req.Pipeline;
      Rec.Outcome = S == FrameStatus::Oversized ? RequestOutcome::Oversized
                                                : RequestOutcome::ParseError;
      Rec.Error = Error;
      ++LAO_STAT(server, requests);
      if (S == FrameStatus::Oversized)
        ++LAO_STAT(server, oversized);
      else
        ++LAO_STAT(server, parse_errors);
      Complete(Seq++, std::move(Rec));
      continue;
    }
    uint64_t MySeq = Seq++;
    Pool.async([&, MySeq, Arrival, Req = std::move(Req)] {
      unsigned Slot;
      {
        std::lock_guard<std::mutex> G(SlotM);
        Slot = FreeSlots.back();
        FreeSlots.pop_back();
      }
      RequestRecord Rec = compileRequest(Req, Contexts[Slot], Arrival, Opts);
      {
        std::lock_guard<std::mutex> G(SlotM);
        FreeSlots.push_back(Slot);
      }
      Complete(MySeq, std::move(Rec));
    });
  }

  // compileRequest never lets an exception escape, so this wait can only
  // rethrow on a bug in the server plumbing itself — let that be loud.
  Pool.wait();
  {
    std::lock_guard<std::mutex> G(OutM);
    ReaderDone = true;
    SeqCount = Seq;
  }
  OutCv.notify_all();
  Writer.join();
  return Rc;
}
