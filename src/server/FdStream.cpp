//===- FdStream.cpp - iostream adapters over POSIX fds -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/FdStream.h"

#include <cerrno>
#include <poll.h>
#include <unistd.h>

using namespace lao;

/// Stop-aware reads re-check the flag at this granularity.
static constexpr int PollTickMs = 200;

FdStreamBuf::FdStreamBuf(int Fd, const std::atomic<bool> *Stop,
                         size_t BufBytes)
    : Fd(Fd), Stop(Stop), InBuf(BufBytes), OutBuf(BufBytes) {
  setg(InBuf.data(), InBuf.data(), InBuf.data());
  setp(OutBuf.data(), OutBuf.data() + OutBuf.size());
}

FdStreamBuf::~FdStreamBuf() { flushOut(); }

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr())
    return traits_type::to_int_type(*gptr());
  for (;;) {
    if (Stop) {
      // Short poll ticks instead of a blocking read: a stop request is
      // honored within one tick, but only once the fd goes quiet — data
      // already on the wire (a frame mid-flight) is still consumed.
      pollfd P{Fd, POLLIN, 0};
      int R = ::poll(&P, 1, PollTickMs);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return traits_type::eof();
      }
      if (R == 0) {
        if (Stop->load(std::memory_order_acquire))
          return traits_type::eof();
        continue;
      }
    }
    ssize_t N = ::read(Fd, InBuf.data(), InBuf.size());
    if (N > 0) {
      setg(InBuf.data(), InBuf.data(), InBuf.data() + N);
      return traits_type::to_int_type(*gptr());
    }
    if (N == 0)
      return traits_type::eof();
    if (errno == EINTR)
      continue;
    return traits_type::eof();
  }
}

bool FdStreamBuf::writeAll(const char *P, size_t N) {
  while (N) {
    ssize_t W = ::write(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += static_cast<size_t>(W);
    N -= static_cast<size_t>(W);
  }
  return true;
}

bool FdStreamBuf::flushOut() {
  size_t N = static_cast<size_t>(pptr() - pbase());
  if (N && !writeAll(pbase(), N))
    return false;
  setp(OutBuf.data(), OutBuf.data() + OutBuf.size());
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type Ch) {
  if (!flushOut())
    return traits_type::eof();
  if (!traits_type::eq_int_type(Ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(Ch);
    pbump(1);
  }
  return traits_type::not_eof(Ch);
}

std::streamsize FdStreamBuf::xsputn(const char *S, std::streamsize N) {
  // Large payloads (response IR) skip the staging buffer entirely.
  if (static_cast<size_t>(N) >= OutBuf.size()) {
    if (!flushOut() || !writeAll(S, static_cast<size_t>(N)))
      return 0;
    return N;
  }
  if (static_cast<size_t>(N) > static_cast<size_t>(epptr() - pptr()) &&
      !flushOut())
    return 0;
  std::char_traits<char>::copy(pptr(), S, static_cast<size_t>(N));
  pbump(static_cast<int>(N));
  return N;
}

int FdStreamBuf::sync() { return flushOut() ? 0 : -1; }
