//===- SocketTransport.cpp - Unix/TCP listeners for the service ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/SocketTransport.h"

#include "server/FdStream.h"
#include "server/Server.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <cstring>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lao;

namespace {

/// Splits "host:port" / "port" into its parts; bare ports bind/connect
/// loopback so an unqualified lao-server is never internet-reachable.
void splitHostPort(const std::string &Spec, std::string &Host,
                   std::string &Port) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos) {
    Host = "127.0.0.1";
    Port = Spec;
  } else {
    Host = Spec.substr(0, Colon);
    Port = Spec.substr(Colon + 1);
  }
}

/// getaddrinfo-based socket setup shared by listen and connect.
int tcpSocket(const std::string &Spec, bool Listen, std::string &ErrorOut) {
  std::string Host, Port;
  splitHostPort(Spec, Host, Port);
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  if (Listen)
    Hints.ai_flags = AI_PASSIVE;
  addrinfo *Res = nullptr;
  int Err = getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (Err != 0) {
    ErrorOut = formatStr("cannot resolve '%s': %s", Spec.c_str(),
                         gai_strerror(Err));
    return -1;
  }
  int Fd = -1;
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (Listen) {
      int One = 1;
      setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
      if (::bind(Fd, A->ai_addr, A->ai_addrlen) == 0 && ::listen(Fd, 64) == 0)
        break;
    } else if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0) {
      break;
    }
    ::close(Fd);
    Fd = -1;
  }
  freeaddrinfo(Res);
  if (Fd < 0)
    ErrorOut = formatStr("cannot %s '%s': %s",
                         Listen ? "listen on" : "connect to", Spec.c_str(),
                         std::strerror(errno));
  return Fd;
}

bool fillUnixAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &ErrorOut) {
  Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ErrorOut = formatStr("unix socket path too long (%zu bytes, max %zu)",
                         Path.size(), sizeof(Addr.sun_path) - 1);
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

int lao::listenUnixSocket(const std::string &Path, std::string &ErrorOut) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, ErrorOut))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    ErrorOut = formatStr("socket: %s", std::strerror(errno));
    return -1;
  }
  ::unlink(Path.c_str()); // A stale socket from a killed server.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    ErrorOut = formatStr("cannot listen on '%s': %s", Path.c_str(),
                         std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int lao::listenTcpSocket(const std::string &Spec, std::string &ErrorOut) {
  return tcpSocket(Spec, /*Listen=*/true, ErrorOut);
}

int lao::connectUnixSocket(const std::string &Path, std::string &ErrorOut) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, ErrorOut))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    ErrorOut = formatStr("socket: %s", std::strerror(errno));
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ErrorOut = formatStr("cannot connect to '%s': %s", Path.c_str(),
                         std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int lao::connectTcpSocket(const std::string &Spec, std::string &ErrorOut) {
  return tcpSocket(Spec, /*Listen=*/false, ErrorOut);
}

int lao::runSocketServer(Server &S, int ListenFd,
                         const std::atomic<bool> &Stop) {
  struct Conn {
    int Fd = -1;
    std::thread T;
    std::atomic<bool> Finished{false};
  };
  std::vector<std::unique_ptr<Conn>> Conns;

  auto Reap = [&](bool All) {
    for (auto It = Conns.begin(); It != Conns.end();) {
      Conn &C = **It;
      if (!All && !C.Finished.load(std::memory_order_acquire)) {
        ++It;
        continue;
      }
      C.T.join();
      ::close(C.Fd);
      It = Conns.erase(It);
    }
  };

  while (!Stop.load(std::memory_order_acquire)) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Reap(/*All=*/false);
    if (R == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto C = std::make_unique<Conn>();
    Conn *CP = C.get();
    CP->Fd = Fd;
    CP->T = std::thread([&S, &Stop, CP] {
      FdStreamBuf InBuf(CP->Fd, &Stop);
      FdStreamBuf OutBuf(CP->Fd);
      std::istream In(&InBuf);
      std::ostream Out(&OutBuf);
      // Per-connection protocol errors are answered in-band (the id-0
      // record) and tallied in the shared report; they never take the
      // daemon down, so serve's return code is deliberately dropped.
      S.serve(In, Out);
      Out.flush();
      ::shutdown(CP->Fd, SHUT_WR);
      CP->Finished.store(true, std::memory_order_release);
    });
    Conns.push_back(std::move(C));
  }

  // Drain: stop feeding the serve loops (half-close their read sides —
  // frames already buffered in the kernel are still consumed by the
  // stop-aware streambuf before it reports EOF), let each flush its
  // reorder buffer, then reclaim the fds.
  for (auto &C : Conns)
    ::shutdown(C->Fd, SHUT_RD);
  Reap(/*All=*/true);
  return 0;
}
