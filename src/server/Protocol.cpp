//===- Protocol.cpp - lao-server wire protocol ---------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>
#include <istream>

using namespace lao;

namespace {

/// Parses a full decimal uint64 out of \p S. Returns false on empty,
/// non-digit or overflowing input.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno == ERANGE || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

/// Reads the declared body plus its trailing frame newline. Returns
/// false on a truncated stream.
bool readBody(std::istream &In, size_t N, std::string &Body) {
  Body.resize(N);
  if (N && !In.read(Body.data(), static_cast<std::streamsize>(N)))
    return false;
  if (In.peek() == '\n')
    In.get();
  return true;
}

/// Skips the declared body of an oversized frame without buffering it.
bool skipBody(std::istream &In, size_t N) {
  In.ignore(static_cast<std::streamsize>(N));
  if (static_cast<size_t>(In.gcount()) != N)
    return false;
  if (In.peek() == '\n')
    In.get();
  return true;
}

/// Reads and parses a "LAO1 <kind> <id> <bytes>" header line, skipping
/// blank lines before it. \p KindA / \p KindB are the kinds acceptable
/// at this point of the stream (request side: REQ/BAT; response side:
/// RSP/RSB); \p KindOut reports which matched. Returns Eof/Malformed/Ok.
FrameStatus readHeaderOf(std::istream &In, const char *KindA,
                         const char *KindB, FrameKind &KindOut, uint64_t &Id,
                         uint64_t &Bytes, std::string &ErrorOut) {
  std::string Line;
  for (;;) {
    if (!std::getline(In, Line))
      return FrameStatus::Eof;
    if (!trimString(Line).empty())
      break;
  }
  std::vector<std::string> Parts = splitString(Line, ' ');
  if (Parts.size() == 4 && Parts[0] == "LAO1" &&
      (Parts[1] == KindA || (KindB && Parts[1] == KindB)) &&
      parseU64(Parts[2], Id) && parseU64(Parts[3], Bytes)) {
    KindOut = (KindB && Parts[1] == KindB) ? FrameKind::Batch
                                           : FrameKind::Single;
    return FrameStatus::Ok;
  }
  ErrorOut = formatStr("bad %s frame header: '%s'", KindA, Line.c_str());
  return FrameStatus::Malformed;
}

/// Splits a frame body into its header block and payload at the first
/// blank line. Returns false when the separator is missing.
bool splitBody(const std::string &Body, std::string &Headers,
               std::string &Payload) {
  size_t Sep;
  if (Body.rfind("\n", 0) == 0)
    Sep = 0; // No header lines at all.
  else if ((Sep = Body.find("\n\n")) != std::string::npos)
    Sep += 1;
  else
    return false;
  Headers = Body.substr(0, Sep);
  Payload = Body.substr(Sep + 1);
  return true;
}

/// Parses the "key: value" option block shared by REQ and BAT bodies.
/// "count" is only legal when \p CountOut is non-null (batch frames);
/// \p SawCount reports whether it appeared. Returns false with
/// \p ErrorOut set on the first bad line — a body-level error.
bool parseOptions(const std::string &Headers, std::string &Pipeline,
                  bool &BuildSSA, uint64_t &DeadlineMs, uint64_t &SleepMs,
                  std::string &RegAlloc, uint64_t &RegAllocRegs,
                  std::string &Exec, std::vector<uint64_t> &ExecArgs,
                  uint64_t *CountOut, bool *SawCount, std::string &ErrorOut) {
  for (const std::string &Line : splitString(Headers, '\n')) {
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos) {
      ErrorOut = formatStr("bad option line '%s'", Line.c_str());
      return false;
    }
    std::string Key = trimString(Line.substr(0, Colon));
    std::string Value = trimString(Line.substr(Colon + 1));
    if (Key == "pipeline") {
      Pipeline = Value;
    } else if (Key == "regalloc") {
      // Preset validity is a semantic (server-side) concern, like
      // pipeline's: parsing only records the string.
      RegAlloc = Value;
    } else if (Key == "exec") {
      // Engine-name validity is semantic too; parsing records the string.
      Exec = Value;
    } else if (Key == "exec_args") {
      ExecArgs.clear();
      if (!Value.empty())
        for (const std::string &Tok : splitString(Value, ',')) {
          uint64_t V = 0;
          if (!parseU64(trimString(Tok), V)) {
            ErrorOut = formatStr("exec_args wants comma-separated numbers, "
                                 "got '%s'",
                                 Tok.c_str());
            return false;
          }
          ExecArgs.push_back(V);
        }
    } else if (Key == "ssa") {
      BuildSSA = Value == "1" || Value == "true";
    } else if (Key == "deadline_ms" || Key == "sleep_ms" ||
               Key == "regalloc_regs" || (CountOut && Key == "count")) {
      uint64_t V = 0;
      if (!parseU64(Value, V)) {
        ErrorOut = formatStr("option %s wants a number, got '%s'",
                             Key.c_str(), Value.c_str());
        return false;
      }
      if (Key == "deadline_ms")
        DeadlineMs = V;
      else if (Key == "sleep_ms")
        SleepMs = V;
      else if (Key == "regalloc_regs")
        RegAllocRegs = V;
      else {
        *CountOut = V;
        *SawCount = true;
      }
    } else {
      ErrorOut = formatStr("unknown request option '%s'", Key.c_str());
      return false;
    }
  }
  return true;
}

/// Walks a payload of "<bytes>\n<blob>\n" items (the BAT/RSB item
/// sub-framing) and appends each blob to \p Items. Returns false with
/// \p ErrorOut set when the sub-framing is inconsistent with the
/// enclosing frame body.
bool parseItems(const std::string &Payload, std::vector<std::string> &Items,
                std::string &ErrorOut) {
  size_t Pos = 0;
  while (Pos < Payload.size()) {
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos) {
      ErrorOut = "batch item length line is not newline-terminated";
      return false;
    }
    uint64_t Len = 0;
    if (!parseU64(Payload.substr(Pos, Nl - Pos), Len)) {
      ErrorOut = formatStr("bad batch item length line '%s'",
                           Payload.substr(Pos, Nl - Pos).c_str());
      return false;
    }
    if (Nl + 1 + Len > Payload.size()) {
      ErrorOut = "batch item overruns the enclosing frame body";
      return false;
    }
    Items.push_back(Payload.substr(Nl + 1, Len));
    Pos = Nl + 1 + Len;
    if (Pos < Payload.size()) {
      if (Payload[Pos] != '\n') {
        ErrorOut = "batch item is not newline-terminated";
        return false;
      }
      ++Pos;
    }
  }
  return true;
}

/// Renders the shared option block of a request frame body.
std::string encodeOptions(const std::string &Pipeline, bool BuildSSA,
                          uint64_t DeadlineMs, uint64_t SleepMs,
                          const std::string &RegAlloc, uint64_t RegAllocRegs,
                          const std::string &Exec,
                          const std::vector<uint64_t> &ExecArgs) {
  std::string Body;
  Body += "pipeline: " + Pipeline + "\n";
  if (BuildSSA)
    Body += "ssa: 1\n";
  if (DeadlineMs)
    Body += formatStr("deadline_ms: %llu\n",
                      static_cast<unsigned long long>(DeadlineMs));
  if (SleepMs)
    Body += formatStr("sleep_ms: %llu\n",
                      static_cast<unsigned long long>(SleepMs));
  if (!RegAlloc.empty())
    Body += "regalloc: " + RegAlloc + "\n";
  if (RegAllocRegs)
    Body += formatStr("regalloc_regs: %llu\n",
                      static_cast<unsigned long long>(RegAllocRegs));
  if (!Exec.empty())
    Body += "exec: " + Exec + "\n";
  if (!ExecArgs.empty()) {
    Body += "exec_args: ";
    for (size_t K = 0; K < ExecArgs.size(); ++K)
      Body += formatStr(K ? ",%llu" : "%llu",
                        static_cast<unsigned long long>(ExecArgs[K]));
    Body += "\n";
  }
  return Body;
}

/// Wraps \p Body in a "LAO1 <kind> <id> <bytes>" frame.
std::string frame(const char *Kind, uint64_t Id, const std::string &Body) {
  return formatStr("LAO1 %s %llu %zu\n", Kind,
                   static_cast<unsigned long long>(Id), Body.size()) +
         Body + "\n";
}

/// Reads the framed body after a header, handling the oversized and
/// truncated cases uniformly. On Ok, \p Body holds the payload.
FrameStatus readFramedBody(std::istream &In, const FrameLimits &Limits,
                           uint64_t Bytes, const char *What,
                           std::string &Body, std::string &ErrorOut) {
  if (Bytes > Limits.MaxBodyBytes) {
    if (!skipBody(In, Bytes)) {
      ErrorOut = formatStr("truncated stream inside an oversized %s body",
                           What);
      return FrameStatus::Malformed;
    }
    ErrorOut = formatStr("%s body of %llu bytes exceeds the %zu-byte "
                         "frame limit",
                         What, static_cast<unsigned long long>(Bytes),
                         Limits.MaxBodyBytes);
    return FrameStatus::Oversized;
  }
  if (!readBody(In, Bytes, Body)) {
    ErrorOut = formatStr("truncated stream inside a %s body", What);
    return FrameStatus::Malformed;
  }
  return FrameStatus::Ok;
}

/// Parses a RSP-shaped body (record, blank line, IR) into \p Out.
bool parseResponseBody(const std::string &Body, Response &Out,
                       std::string &ErrorOut) {
  std::string Record, IR;
  if (!splitBody(Body, Record, IR)) {
    ErrorOut = "response body has no record/IR separator";
    return false;
  }
  // The record is machine-readable JSON, but this project is
  // deliberately writer-only on JSON: clients that need structure keep
  // the line as-is, and Ok is mirrored textually right after "id" so a
  // substring probe is exact.
  Out.RecordJson = trimString(Record);
  Out.IR = std::move(IR);
  Out.Ok = Out.RecordJson.find("\"ok\":true") != std::string::npos;
  return true;
}

} // namespace

std::string lao::encodeRequest(const Request &R) {
  std::string Body =
      encodeOptions(R.Pipeline, R.BuildSSA, R.DeadlineMs, R.SleepMs,
                    R.RegAlloc, R.RegAllocRegs, R.Exec, R.ExecArgs);
  Body += "\n";
  Body += R.Text;
  return frame("REQ", R.Id, Body);
}

std::string lao::encodeResponse(const Response &R) {
  return frame("RSP", R.Id, R.RecordJson + "\n\n" + R.IR);
}

std::string lao::encodeBatchRequest(const BatchRequest &R) {
  std::string Body =
      encodeOptions(R.Pipeline, R.BuildSSA, R.DeadlineMs, R.SleepMs,
                    R.RegAlloc, R.RegAllocRegs, R.Exec, R.ExecArgs);
  Body += formatStr("count: %zu\n", R.Texts.size());
  Body += "\n";
  for (const std::string &Text : R.Texts) {
    Body += formatStr("%zu\n", Text.size());
    Body += Text;
    Body += "\n";
  }
  return frame("BAT", R.Id, Body);
}

std::string lao::encodeBatchResponse(const BatchResponse &R) {
  std::string Body = R.SummaryJson;
  Body += "\n\n";
  for (const Response &Item : R.Items) {
    std::string ItemBody = Item.RecordJson + "\n\n" + Item.IR;
    Body += formatStr("%zu\n", ItemBody.size());
    Body += ItemBody;
    Body += "\n";
  }
  return frame("RSB", R.Id, Body);
}

FrameStatus lao::readRequest(std::istream &In, const FrameLimits &Limits,
                             Request &Out, std::string &ErrorOut) {
  ErrorOut.clear();
  Out = Request();
  uint64_t Bytes = 0;
  FrameKind Kind;
  FrameStatus S =
      readHeaderOf(In, "REQ", nullptr, Kind, Out.Id, Bytes, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  std::string Body;
  S = readFramedBody(In, Limits, Bytes, "request", Body, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;

  std::string Headers, Payload;
  if (!splitBody(Body, Headers, Payload)) {
    ErrorOut = "request body has no blank line separating options from "
               "the function text";
    return FrameStatus::Ok;
  }
  Out.Text = std::move(Payload);
  parseOptions(Headers, Out.Pipeline, Out.BuildSSA, Out.DeadlineMs,
               Out.SleepMs, Out.RegAlloc, Out.RegAllocRegs, Out.Exec,
               Out.ExecArgs, nullptr, nullptr, ErrorOut);
  return FrameStatus::Ok;
}

FrameStatus lao::readRequestFrame(std::istream &In, const FrameLimits &Limits,
                                  FrameKind &KindOut, Request &ReqOut,
                                  BatchRequest &BatchOut,
                                  std::string &ErrorOut) {
  ErrorOut.clear();
  ReqOut = Request();
  BatchOut = BatchRequest();
  KindOut = FrameKind::Single;
  uint64_t Id = 0, Bytes = 0;
  FrameStatus S = readHeaderOf(In, "REQ", "BAT", KindOut, Id, Bytes, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  (KindOut == FrameKind::Batch ? BatchOut.Id : ReqOut.Id) = Id;
  std::string Body;
  S = readFramedBody(In, Limits, Bytes,
                     KindOut == FrameKind::Batch ? "batch request" : "request",
                     Body, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;

  std::string Headers, Payload;
  if (!splitBody(Body, Headers, Payload)) {
    ErrorOut = "request body has no blank line separating options from "
               "the function text";
    return FrameStatus::Ok;
  }
  if (KindOut == FrameKind::Single) {
    ReqOut.Text = std::move(Payload);
    parseOptions(Headers, ReqOut.Pipeline, ReqOut.BuildSSA, ReqOut.DeadlineMs,
                 ReqOut.SleepMs, ReqOut.RegAlloc, ReqOut.RegAllocRegs,
                 ReqOut.Exec, ReqOut.ExecArgs, nullptr, nullptr, ErrorOut);
    return FrameStatus::Ok;
  }
  uint64_t Count = 0;
  bool SawCount = false;
  if (!parseOptions(Headers, BatchOut.Pipeline, BatchOut.BuildSSA,
                    BatchOut.DeadlineMs, BatchOut.SleepMs, BatchOut.RegAlloc,
                    BatchOut.RegAllocRegs, BatchOut.Exec, BatchOut.ExecArgs,
                    &Count, &SawCount, ErrorOut))
    return FrameStatus::Ok;
  if (!SawCount) {
    ErrorOut = "batch body is missing the required count option";
    return FrameStatus::Ok;
  }
  if (!parseItems(Payload, BatchOut.Texts, ErrorOut)) {
    BatchOut.Texts.clear();
    return FrameStatus::Ok;
  }
  if (Count != BatchOut.Texts.size()) {
    ErrorOut = formatStr("batch declares %llu functions but carries %zu",
                         static_cast<unsigned long long>(Count),
                         BatchOut.Texts.size());
    BatchOut.Texts.clear();
  }
  return FrameStatus::Ok;
}

FrameStatus lao::readResponse(std::istream &In, const FrameLimits &Limits,
                              Response &Out, std::string &ErrorOut) {
  ErrorOut.clear();
  Out = Response();
  uint64_t Bytes = 0;
  FrameKind Kind;
  FrameStatus S =
      readHeaderOf(In, "RSP", nullptr, Kind, Out.Id, Bytes, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  std::string Body;
  S = readFramedBody(In, Limits, Bytes, "response", Body, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  if (!parseResponseBody(Body, Out, ErrorOut))
    return FrameStatus::Malformed;
  return FrameStatus::Ok;
}

FrameStatus lao::readResponseFrame(std::istream &In, const FrameLimits &Limits,
                                   FrameKind &KindOut, Response &RspOut,
                                   BatchResponse &BatchOut,
                                   std::string &ErrorOut) {
  ErrorOut.clear();
  RspOut = Response();
  BatchOut = BatchResponse();
  KindOut = FrameKind::Single;
  uint64_t Id = 0, Bytes = 0;
  FrameStatus S = readHeaderOf(In, "RSP", "RSB", KindOut, Id, Bytes, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  (KindOut == FrameKind::Batch ? BatchOut.Id : RspOut.Id) = Id;
  std::string Body;
  S = readFramedBody(In, Limits, Bytes,
                     KindOut == FrameKind::Batch ? "batch response"
                                                 : "response",
                     Body, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  if (KindOut == FrameKind::Single) {
    if (!parseResponseBody(Body, RspOut, ErrorOut))
      return FrameStatus::Malformed;
    return FrameStatus::Ok;
  }
  std::string Summary, Payload;
  if (!splitBody(Body, Summary, Payload)) {
    ErrorOut = "batch response body has no summary/items separator";
    return FrameStatus::Malformed;
  }
  BatchOut.SummaryJson = trimString(Summary);
  BatchOut.Ok =
      BatchOut.SummaryJson.find("\"ok\":true") != std::string::npos;
  std::vector<std::string> ItemBodies;
  if (!parseItems(Payload, ItemBodies, ErrorOut))
    return FrameStatus::Malformed;
  for (const std::string &ItemBody : ItemBodies) {
    Response Item;
    Item.Id = Id;
    if (!parseResponseBody(ItemBody, Item, ErrorOut))
      return FrameStatus::Malformed;
    BatchOut.Items.push_back(std::move(Item));
  }
  return FrameStatus::Ok;
}
