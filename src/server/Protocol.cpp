//===- Protocol.cpp - lao-server wire protocol ---------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>
#include <istream>

using namespace lao;

namespace {

/// Parses a full decimal uint64 out of \p S. Returns false on empty,
/// non-digit or overflowing input.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno == ERANGE || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

/// Reads the declared body plus its trailing frame newline. Returns
/// false on a truncated stream.
bool readBody(std::istream &In, size_t N, std::string &Body) {
  Body.resize(N);
  if (N && !In.read(Body.data(), static_cast<std::streamsize>(N)))
    return false;
  if (In.peek() == '\n')
    In.get();
  return true;
}

/// Skips the declared body of an oversized frame without buffering it.
bool skipBody(std::istream &In, size_t N) {
  In.ignore(static_cast<std::streamsize>(N));
  if (static_cast<size_t>(In.gcount()) != N)
    return false;
  if (In.peek() == '\n')
    In.get();
  return true;
}

/// Reads and parses a "LAO1 <kind> <id> <bytes>" header line, skipping
/// blank lines before it. Returns Eof/Malformed/Ok.
FrameStatus readHeader(std::istream &In, const char *Kind, uint64_t &Id,
                       uint64_t &Bytes, std::string &ErrorOut) {
  std::string Line;
  for (;;) {
    if (!std::getline(In, Line))
      return FrameStatus::Eof;
    if (!trimString(Line).empty())
      break;
  }
  std::vector<std::string> Parts = splitString(Line, ' ');
  if (Parts.size() != 4 || Parts[0] != "LAO1" || Parts[1] != Kind ||
      !parseU64(Parts[2], Id) || !parseU64(Parts[3], Bytes)) {
    ErrorOut = formatStr("bad %s frame header: '%s'", Kind, Line.c_str());
    return FrameStatus::Malformed;
  }
  return FrameStatus::Ok;
}

/// Splits a frame body into its header block and payload at the first
/// blank line. Returns false when the separator is missing.
bool splitBody(const std::string &Body, std::string &Headers,
               std::string &Payload) {
  size_t Sep;
  if (Body.rfind("\n", 0) == 0)
    Sep = 0; // No header lines at all.
  else if ((Sep = Body.find("\n\n")) != std::string::npos)
    Sep += 1;
  else
    return false;
  Headers = Body.substr(0, Sep);
  Payload = Body.substr(Sep + 1);
  return true;
}

} // namespace

std::string lao::encodeRequest(const Request &R) {
  std::string Body;
  Body += "pipeline: " + R.Pipeline + "\n";
  if (R.BuildSSA)
    Body += "ssa: 1\n";
  if (R.DeadlineMs)
    Body += formatStr("deadline_ms: %llu\n",
                      static_cast<unsigned long long>(R.DeadlineMs));
  if (R.SleepMs)
    Body += formatStr("sleep_ms: %llu\n",
                      static_cast<unsigned long long>(R.SleepMs));
  Body += "\n";
  Body += R.Text;
  return formatStr("LAO1 REQ %llu %zu\n",
                   static_cast<unsigned long long>(R.Id), Body.size()) +
         Body + "\n";
}

std::string lao::encodeResponse(const Response &R) {
  std::string Body = R.RecordJson + "\n\n" + R.IR;
  return formatStr("LAO1 RSP %llu %zu\n",
                   static_cast<unsigned long long>(R.Id), Body.size()) +
         Body + "\n";
}

FrameStatus lao::readRequest(std::istream &In, const FrameLimits &Limits,
                             Request &Out, std::string &ErrorOut) {
  ErrorOut.clear();
  Out = Request();
  uint64_t Bytes = 0;
  FrameStatus S = readHeader(In, "REQ", Out.Id, Bytes, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  if (Bytes > Limits.MaxBodyBytes) {
    if (!skipBody(In, Bytes)) {
      ErrorOut = "truncated stream inside an oversized request body";
      return FrameStatus::Malformed;
    }
    ErrorOut = formatStr("request body of %llu bytes exceeds the %zu-byte "
                         "frame limit",
                         static_cast<unsigned long long>(Bytes),
                         Limits.MaxBodyBytes);
    return FrameStatus::Oversized;
  }
  std::string Body;
  if (!readBody(In, Bytes, Body)) {
    ErrorOut = "truncated stream inside a request body";
    return FrameStatus::Malformed;
  }

  std::string Headers, Payload;
  if (!splitBody(Body, Headers, Payload)) {
    ErrorOut = "request body has no blank line separating options from "
               "the function text";
    return FrameStatus::Ok;
  }
  Out.Text = std::move(Payload);
  for (const std::string &Line : splitString(Headers, '\n')) {
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos) {
      ErrorOut = formatStr("bad option line '%s'", Line.c_str());
      return FrameStatus::Ok;
    }
    std::string Key = trimString(Line.substr(0, Colon));
    std::string Value = trimString(Line.substr(Colon + 1));
    if (Key == "pipeline") {
      Out.Pipeline = Value;
    } else if (Key == "ssa") {
      Out.BuildSSA = Value == "1" || Value == "true";
    } else if (Key == "deadline_ms" || Key == "sleep_ms") {
      uint64_t V = 0;
      if (!parseU64(Value, V)) {
        ErrorOut = formatStr("option %s wants a number, got '%s'",
                             Key.c_str(), Value.c_str());
        return FrameStatus::Ok;
      }
      (Key == "deadline_ms" ? Out.DeadlineMs : Out.SleepMs) = V;
    } else {
      ErrorOut = formatStr("unknown request option '%s'", Key.c_str());
      return FrameStatus::Ok;
    }
  }
  return FrameStatus::Ok;
}

FrameStatus lao::readResponse(std::istream &In, const FrameLimits &Limits,
                              Response &Out, std::string &ErrorOut) {
  ErrorOut.clear();
  Out = Response();
  uint64_t Bytes = 0;
  FrameStatus S = readHeader(In, "RSP", Out.Id, Bytes, ErrorOut);
  if (S != FrameStatus::Ok)
    return S;
  if (Bytes > Limits.MaxBodyBytes) {
    if (!skipBody(In, Bytes)) {
      ErrorOut = "truncated stream inside an oversized response body";
      return FrameStatus::Malformed;
    }
    ErrorOut = formatStr("response body of %llu bytes exceeds the "
                         "%zu-byte frame limit",
                         static_cast<unsigned long long>(Bytes),
                         Limits.MaxBodyBytes);
    return FrameStatus::Oversized;
  }
  std::string Body;
  if (!readBody(In, Bytes, Body)) {
    ErrorOut = "truncated stream inside a response body";
    return FrameStatus::Malformed;
  }
  std::string Record, IR;
  if (!splitBody(Body, Record, IR)) {
    ErrorOut = "response body has no record/IR separator";
    return FrameStatus::Malformed;
  }
  // The record is machine-readable JSON, but this project is
  // deliberately writer-only on JSON: clients that need structure keep
  // the line as-is, and Ok is mirrored textually right after "id" so a
  // substring probe is exact.
  Out.RecordJson = trimString(Record);
  Out.IR = std::move(IR);
  Out.Ok = Out.RecordJson.find("\"ok\":true") != std::string::npos;
  return FrameStatus::Ok;
}
