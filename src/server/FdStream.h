//===- FdStream.h - iostream adapters over POSIX fds ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A std::streambuf over a file descriptor, so the LAO1 protocol (which
/// only speaks std::istream/std::ostream) runs unchanged over pipes,
/// stdin/stdout, and sockets. One buffer direction per instance: the
/// server layers an input and an output FdStreamBuf over each
/// connection fd (a streambuf may serve both, but the server's reader
/// and writer run on different threads, so they get separate buffers).
///
/// The input side is stop-aware: given a stop flag, underflow() polls
/// the fd in short ticks and reports EOF once the flag is set *and* no
/// bytes are pending — a signal handler's plain atomic store is enough
/// to make a blocked server drain gracefully (see lao-server's
/// SIGINT/SIGTERM handling), and a frame already in flight is never cut
/// in half. EINTR is always retried, so handled signals without
/// SA_RESTART do not surface as spurious stream errors.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SERVER_FDSTREAM_H
#define LAO_SERVER_FDSTREAM_H

#include <atomic>
#include <streambuf>
#include <vector>

namespace lao {

class FdStreamBuf : public std::streambuf {
public:
  /// Wraps \p Fd without taking ownership (the creator closes it).
  /// \p Stop, when non-null, makes reads give up — as a clean EOF —
  /// once the flag is set and the fd has nothing buffered or pending.
  explicit FdStreamBuf(int Fd, const std::atomic<bool> *Stop = nullptr,
                       size_t BufBytes = 1u << 16);

  FdStreamBuf(const FdStreamBuf &) = delete;
  FdStreamBuf &operator=(const FdStreamBuf &) = delete;
  ~FdStreamBuf() override;

  int fd() const { return Fd; }

protected:
  int_type underflow() override;
  int_type overflow(int_type Ch) override;
  std::streamsize xsputn(const char *S, std::streamsize N) override;
  int sync() override;

private:
  bool flushOut();
  bool writeAll(const char *P, size_t N);

  int Fd;
  const std::atomic<bool> *Stop;
  std::vector<char> InBuf;
  std::vector<char> OutBuf;
};

} // namespace lao

#endif // LAO_SERVER_FDSTREAM_H
