//===- Protocol.h - lao-server wire protocol --------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol of the lao compile service. The
/// transport is any byte stream (the server reads stdin/writes stdout, a
/// socket streambuf layers on unchanged); every message is one frame:
///
///   LAO1 REQ <id> <body-bytes>\n        request header
///   <body-bytes bytes of body>\n        (trailing newline not counted)
///
///   LAO1 RSP <id> <body-bytes>\n        response header
///   <body-bytes bytes of body>\n
///
/// A request body is a block of "key: value" option lines, a blank line,
/// then the mini-LAI function text:
///
///   pipeline: Lphi,ABI+C
///   ssa: 1
///   deadline_ms: 250
///
///   func @f { ... }
///
/// Recognized keys: pipeline (a Table 1 preset name), ssa (run
/// normalizeToOptimizedSSA first; 0/1), deadline_ms (cooperative
/// deadline from frame arrival; 0 = none), sleep_ms (diagnostic: the
/// worker idles this long before compiling, in deadline-checked slices —
/// used by the timeout tests and load drills), regalloc (an allocator
/// preset "<allocator>[/<spill-model>]", see regalloc/RegAlloc.h; runs
/// register allocation after the pipeline), regalloc_regs (overrides
/// the allocator's register-pool size; 0 = preset default; only
/// meaningful with regalloc), exec (execute the transformed function and
/// report dynamic counters: "interp", "vm", or "both" — "both" runs both
/// engines and fails the request if their observables diverge, see
/// docs/EXEC.md), exec_args (comma-separated decimal arguments for the
/// entry `input`; only meaningful with exec). Unknown keys are a
/// per-request error, not a protocol error.
///
/// A response body is a one-line JSON stats/error record, a blank line,
/// then the transformed function text (empty when the request failed).
/// The record always carries "id", "ok" and "outcome"; see docs/SERVER.md
/// for the full schema and the failure taxonomy.
///
/// Batching amortizes the per-frame cost for many-tiny-functions
/// workloads: a "LAO1 BAT <id> <body-bytes>" frame carries one shared
/// option block (which must include "count: N") and N length-prefixed
/// function texts; the server fans the items across its workers and
/// answers a single "LAO1 RSB <id> <body-bytes>" frame holding a batch
/// summary record plus N length-prefixed per-item bodies (each shaped
/// like a RSP body: record, blank line, IR). Items are answered in
/// submission order inside the frame. The exact wire layout is spelled
/// out in docs/SERVER.md.
///
/// Error recovery is by construction: the only unrecoverable condition is
/// a header line that does not parse (or a body shorter than its declared
/// length, i.e. a truncated stream) — everything inside a well-framed
/// body, including an oversized declared length and malformed batch
/// sub-framing, yields an error response for that id while the stream
/// stays in sync.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SERVER_PROTOCOL_H
#define LAO_SERVER_PROTOCOL_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lao {

/// Transport-level bounds enforced while reading frames.
struct FrameLimits {
  /// Upper bound on a frame body (one BAT frame counts as one body). A
  /// request declaring more is answered with an error record and its
  /// body skipped — the declared length keeps the stream
  /// resynchronizable without trusting the payload. Configurable via
  /// lao-server --max-body-bytes.
  size_t MaxBodyBytes = 4u << 20;
};

/// One compile request, as parsed from a request frame.
struct Request {
  uint64_t Id = 0;
  std::string Pipeline = "Lphi,ABI+C";
  bool BuildSSA = false;
  uint64_t DeadlineMs = 0; ///< 0 = none (the server default may apply).
  uint64_t SleepMs = 0;    ///< Diagnostic pre-compile idle (see above).
  std::string RegAlloc;    ///< Allocator preset; empty = server default
                           ///< (which is usually "no allocation").
  uint64_t RegAllocRegs = 0; ///< Pool-size override; 0 = preset default.
  std::string Exec;        ///< Execution engine ("interp"/"vm"/"both");
                           ///< empty = do not execute.
  std::vector<uint64_t> ExecArgs; ///< Arguments for the entry `input`.
  std::string Text;        ///< The mini-LAI function.
};

/// One response frame, as seen by a client.
struct Response {
  uint64_t Id = 0;
  bool Ok = false;         ///< Parsed from the record's "ok" field.
  std::string RecordJson;  ///< The one-line stats/error record.
  std::string IR;          ///< Transformed function; empty on error.
};

/// One batch request: shared options, N function texts.
struct BatchRequest {
  uint64_t Id = 0;
  std::string Pipeline = "Lphi,ABI+C";
  bool BuildSSA = false;
  uint64_t DeadlineMs = 0; ///< Shared by every item, from frame arrival.
  uint64_t SleepMs = 0;
  std::string RegAlloc;    ///< Shared allocator preset (see Request).
  uint64_t RegAllocRegs = 0;
  std::string Exec;        ///< Shared execution engine (see Request).
  std::vector<uint64_t> ExecArgs; ///< Shared arguments, every item.
  std::vector<std::string> Texts; ///< The mini-LAI functions, in order.
};

/// One batch response frame: a summary record plus the per-item
/// responses in submission order. Item Response::Id repeats the batch
/// id; items are matched to requests by position.
struct BatchResponse {
  uint64_t Id = 0;
  bool Ok = false;         ///< Summary "ok": every item compiled.
  std::string SummaryJson; ///< One-line batch summary record.
  std::vector<Response> Items;
};

/// Which frame kind a generalized read returned.
enum class FrameKind {
  Single, ///< LAO1 REQ / LAO1 RSP
  Batch,  ///< LAO1 BAT / LAO1 RSB
};

/// Outcome of reading one frame from a stream.
enum class FrameStatus {
  Ok,        ///< Frame parsed; for requests, ErrorOut may still name a
             ///< body-level problem the server must answer as an error.
  Eof,       ///< Clean end of stream before a header.
  Malformed, ///< Unrecoverable: bad header line or truncated body.
  Oversized, ///< Declared body over the limit; body skipped; Id valid.
};

/// Renders \p R as a request frame (header + body + newline).
std::string encodeRequest(const Request &R);

/// Renders \p R as a response frame. The body is
/// RecordJson + "\n\n" + IR.
std::string encodeResponse(const Response &R);

/// Reads one request frame. On Ok, \p Out holds the parsed request; a
/// non-empty \p ErrorOut reports a body-level problem (unknown key, bad
/// number, missing blank line) that the caller should answer as an error
/// record for Out.Id. On Oversized, Out.Id is valid and the body was
/// skipped. On Malformed, \p ErrorOut describes the framing failure and
/// the stream must be abandoned.
FrameStatus readRequest(std::istream &In, const FrameLimits &Limits,
                        Request &Out, std::string &ErrorOut);

/// Reads one response frame (the client side). Same contract as
/// readRequest; a body without the record/IR separator is Malformed.
FrameStatus readResponse(std::istream &In, const FrameLimits &Limits,
                         Response &Out, std::string &ErrorOut);

/// Renders \p R as a batch request frame: the shared option block
/// (always including "count: N"), a blank line, then each function text
/// as "<bytes>\n<text>\n".
std::string encodeBatchRequest(const BatchRequest &R);

/// Renders \p R as a batch response frame: SummaryJson, a blank line,
/// then each item's "record\n\nIR" body as "<bytes>\n<body>\n".
std::string encodeBatchResponse(const BatchResponse &R);

/// Reads one request frame of either kind; \p KindOut says which of
/// \p ReqOut / \p BatchOut was filled. Contract matches readRequest: on
/// Ok a non-empty \p ErrorOut is a body-level problem (unknown key, bad
/// count, malformed item sub-framing) the server answers as an error
/// record for the frame's id; Oversized leaves the id (and kind) valid
/// with the body skipped; Malformed means the stream is unframeable.
FrameStatus readRequestFrame(std::istream &In, const FrameLimits &Limits,
                             FrameKind &KindOut, Request &ReqOut,
                             BatchRequest &BatchOut, std::string &ErrorOut);

/// Reads one response frame of either kind (the client side). Malformed
/// sub-framing inside a RSB body is Malformed, like a RSP body without
/// its record/IR separator.
FrameStatus readResponseFrame(std::istream &In, const FrameLimits &Limits,
                              FrameKind &KindOut, Response &RspOut,
                              BatchResponse &BatchOut, std::string &ErrorOut);

} // namespace lao

#endif // LAO_SERVER_PROTOCOL_H
