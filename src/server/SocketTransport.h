//===- SocketTransport.h - Unix/TCP listeners for the service ---*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Socket plumbing for the compile service. The protocol and Server are
/// stream-agnostic; this layer only creates fds and runs the accept
/// loop: every accepted connection gets its own serving thread (an
/// input/output FdStreamBuf pair over the fd feeding Server::serve),
/// and all connections share the Server's single worker pool — N
/// clients contend for the same workers instead of oversubscribing the
/// machine.
///
/// Shutdown is cooperative: runSocketServer polls \p Stop between
/// accepts; once set it stops accepting, half-closes the read side of
/// every live connection (so each serve loop sees EOF after the frames
/// already in flight), drains them, and returns. Paired with
/// lao-server's signal handlers this is the SIGINT/SIGTERM →
/// drain-and-exit-0 path.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SERVER_SOCKETTRANSPORT_H
#define LAO_SERVER_SOCKETTRANSPORT_H

#include <atomic>
#include <string>

namespace lao {

class Server;

/// Creates a listening Unix-domain socket at \p Path (unlinking a stale
/// one first). Returns the fd, or -1 with \p ErrorOut set.
int listenUnixSocket(const std::string &Path, std::string &ErrorOut);

/// Creates a listening TCP socket. \p Spec is "port" or "host:port";
/// a bare port binds the loopback interface only.
int listenTcpSocket(const std::string &Spec, std::string &ErrorOut);

/// Connects to a Unix-domain socket. Returns the fd, or -1.
int connectUnixSocket(const std::string &Path, std::string &ErrorOut);

/// Connects to a TCP endpoint ("port" or "host:port"; a bare port
/// means loopback). Returns the fd, or -1.
int connectTcpSocket(const std::string &Spec, std::string &ErrorOut);

/// Accepts connections on \p ListenFd until \p Stop is set, serving
/// each over \p S (shared worker pool, per-connection response
/// ordering). Per-connection protocol errors are answered and counted
/// in the server report but never bring the daemon down. Returns 0 on
/// a clean stop; closes every connection fd but not \p ListenFd.
int runSocketServer(Server &S, int ListenFd, const std::atomic<bool> &Stop);

} // namespace lao

#endif // LAO_SERVER_SOCKETTRANSPORT_H
