//===- Server.h - Sharded compile service over the pipeline -----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lao compile service: a persistent process that reads framed
/// requests (Protocol.h) from a byte stream, shards them across a
/// ThreadPool, and writes responses back **in arrival order**. Per the
/// "millions of users" architecture step in ROADMAP.md, every piece of
/// request-scoped state is explicit:
///
///  * one WorkerContext per pool thread, holding a reused
///    AnalysisManager (reset per request) and keeping the request's
///    Function alive exactly as long as the manager is bound to it;
///  * one StatsScope per request, so the per-request counter deltas in
///    the response record are exact no matter how many workers run
///    concurrently (the process-global registry stays monotonic);
///  * cooperative deadlines: measured from frame arrival, enforced
///    before compilation, during diagnostic sleeps, and between pipeline
///    phases via PipelineConfig::CancelCheck;
///  * graceful degradation: a request that fails to parse, names an
///    unknown preset, oversteps the frame limit, times out, or throws
///    yields a structured error record — the daemon keeps serving. The
///    only fatal condition is an unframeable input stream, answered
///    with a final id-0 protocol error record.
///
/// Response *order* is deterministic (arrival order, via a reorder
/// buffer) and response *content* is byte-identical to the one-shot
/// lao-opt pipeline on the same input: the worker runs the exact same
/// parse -> [normalizeToOptimizedSSA] -> runPipeline -> printFunction
/// path. Timing fields in the JSON record are the only nondeterminism.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SERVER_SERVER_H
#define LAO_SERVER_SERVER_H

#include "server/Protocol.h"
#include "support/Stats.h"

#include <chrono>
#include <iosfwd>
#include <memory>
#include <vector>

namespace lao {

class AnalysisManager;
class Function;

struct ServerOptions {
  unsigned NumWorkers = 4;
  FrameLimits Limits;
  /// Deadline applied to requests that do not carry one; 0 = none.
  uint64_t DefaultDeadlineMs = 0;
  /// Keep every per-request record (including the IR) in memory for
  /// records(). Tests and the exit report use this; a production serve
  /// loop leaves it off and only aggregates.
  bool CollectRecords = false;
};

/// How one request ended. Mirrored textually in the record's "outcome".
enum class RequestOutcome {
  Ok,
  ParseError,    ///< Function text or option block did not parse.
  UnknownPreset, ///< Pipeline name is not a Table 1 preset.
  Timeout,       ///< Deadline expired (queued, sleeping, or mid-phase).
  PipelineError, ///< An exception escaped the compile path.
  Oversized,     ///< Declared body length over the frame limit.
  Protocol,      ///< Framing failure (the final, fatal record).
};

/// Returns the wire name of \p O ("ok", "parse_error", ...).
const char *outcomeName(RequestOutcome O);

/// Everything the server knows about one finished request. The response
/// frame is rendered from this and nothing else.
struct RequestRecord {
  uint64_t Id = 0;
  RequestOutcome Outcome = RequestOutcome::Ok;
  bool ok() const { return Outcome == RequestOutcome::Ok; }
  std::string Error;       ///< Human-readable; empty when ok.
  std::string Pipeline;
  unsigned Moves = 0;      ///< PipelineResult::NumMoves.
  uint64_t WeightedMoves = 0;
  double Seconds = 0;      ///< Wall time inside the worker.
  StatsSnapshot Counters;  ///< Exact per-request deltas (StatsScope).
  std::string IR;          ///< Transformed function; empty on error.
};

/// Renders the one-line JSON record of a response body.
std::string requestRecordJson(const RequestRecord &Rec);

/// Service-lifetime aggregate, merged from the per-request records.
struct ServerReport {
  uint64_t NumRequests = 0;
  uint64_t NumOk = 0;
  uint64_t NumErrors = 0;   ///< Every non-Ok outcome, timeouts included.
  uint64_t NumTimeouts = 0;
  uint64_t NumParseErrors = 0;
  uint64_t NumOversized = 0;
  uint64_t NumPipelineErrors = 0;
  StatsSnapshot MergedCounters; ///< Sum of per-request deltas.
};

/// Per-worker reusable state: the long-lived AnalysisManager and the
/// Function it is currently bound to. The function must outlive the
/// manager's binding, so both live here and are replaced together on
/// the next request.
struct WorkerContext {
  std::unique_ptr<Function> F;
  std::unique_ptr<AnalysisManager> AM;
};

class Server {
public:
  explicit Server(ServerOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Compiles one request through \p Ctx's reused manager. \p Arrival
  /// anchors the deadline. This is the whole per-request path — serve()
  /// calls it from pool workers, tests call it directly.
  static RequestRecord compileRequest(const Request &Req, WorkerContext &Ctx,
                                      std::chrono::steady_clock::time_point
                                          Arrival,
                                      const ServerOptions &Opts);

  /// Serves framed requests from \p In until EOF, writing responses to
  /// \p Out in arrival order. Returns 0 on clean EOF, 1 after an
  /// unrecoverable framing error (a final id-0 error response is still
  /// emitted). Callable once per Server instance.
  int serve(std::istream &In, std::ostream &Out);

  const ServerReport &report() const { return Report; }

  /// Arrival-ordered per-request records; only filled when
  /// ServerOptions::CollectRecords is set.
  const std::vector<RequestRecord> &records() const { return Records; }

private:
  ServerOptions Opts;
  ServerReport Report;
  std::vector<RequestRecord> Records;
};

} // namespace lao

#endif // LAO_SERVER_SERVER_H
