//===- Server.h - Sharded compile service over the pipeline -----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lao compile service: a persistent process that reads framed
/// requests (Protocol.h) from a byte stream, shards them across a
/// ThreadPool, and writes responses back **in arrival order**. Per the
/// "millions of users" architecture step in ROADMAP.md, every piece of
/// request-scoped state is explicit:
///
///  * one WorkerContext per pool slot, holding a reused
///    AnalysisManager (reset per request), the request's Function (kept
///    alive exactly as long as the manager is bound to it), and an
///    ArenaRecycler so the next request on the slot bump-allocates into
///    the chunks the previous one just released;
///  * one StatsScope per single request, so the per-request counter
///    deltas in the response record are exact no matter how many
///    workers run concurrently (the process-global registry stays
///    monotonic). Batch items skip the scope — the lean path — and
///    their records carry no counters object entries;
///  * cooperative deadlines: measured from frame arrival, enforced
///    before compilation, during diagnostic sleeps, and between pipeline
///    phases via PipelineConfig::CancelCheck;
///  * graceful degradation: a request that fails to parse, names an
///    unknown preset, oversteps the frame limit, times out, carries
///    malformed batch sub-framing, or throws yields a structured error
///    record — the daemon keeps serving. The only fatal condition is an
///    unframeable input stream, answered with a final id-0 protocol
///    error record.
///
/// The worker pool is constructed once per Server and **shared by every
/// serve() call**: serve() may run concurrently on N threads (the
/// socket accept loop starts one per connection, see
/// SocketTransport.h), each with its own reorder buffer, writer thread,
/// sequence space, and bounded in-flight window
/// (ServerOptions::MaxInFlightFrames) that stalls the connection's
/// reader — not the pool — when the client races too far ahead.
///
/// Response *order* is deterministic per connection (arrival order, via
/// the reorder buffer) and response *content* is byte-identical to the
/// one-shot lao-opt pipeline on the same input: the worker runs the
/// exact same parse -> [normalizeToOptimizedSSA] -> runPipeline ->
/// printFunction path. Timing fields in the JSON record are the only
/// nondeterminism.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SERVER_SERVER_H
#define LAO_SERVER_SERVER_H

#include "server/Protocol.h"
#include "support/Arena.h"
#include "support/Stats.h"

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace lao {

class AnalysisManager;
class Function;
class ThreadPool;

struct ServerOptions {
  unsigned NumWorkers = 4;
  FrameLimits Limits;
  /// Deadline applied to requests that do not carry one; 0 = none.
  uint64_t DefaultDeadlineMs = 0;
  /// Per-connection backpressure: at most this many frames may be
  /// dispatched but not yet flushed before the connection's reader
  /// stalls (a BAT frame counts once). 0 = unbounded.
  unsigned MaxInFlightFrames = 64;
  /// Keep every per-request record (including the IR) in memory for
  /// records(). Tests and the exit report use this; a production serve
  /// loop leaves it off and only aggregates.
  bool CollectRecords = false;
  /// Allocator preset applied to requests that carry no "regalloc" key;
  /// empty = requests without the key skip register allocation
  /// (lao-server --default-regalloc; validated at startup).
  std::string DefaultRegAlloc;
};

/// How one request ended. Mirrored textually in the record's "outcome".
enum class RequestOutcome {
  Ok,
  ParseError,    ///< Function text or option block did not parse.
  UnknownPreset, ///< Pipeline name is not a Table 1 preset.
  Timeout,       ///< Deadline expired (queued, sleeping, or mid-phase).
  PipelineError, ///< An exception escaped the compile path.
  Oversized,     ///< Declared body length over the frame limit.
  BatchError,    ///< Malformed batch sub-framing inside a framed body.
  Protocol,      ///< Framing failure (the final, fatal record).
};

/// Returns the wire name of \p O ("ok", "parse_error", ...).
const char *outcomeName(RequestOutcome O);

/// Everything the server knows about one finished request. The response
/// frame is rendered from this and nothing else.
struct RequestRecord {
  uint64_t Id = 0;
  RequestOutcome Outcome = RequestOutcome::Ok;
  bool ok() const { return Outcome == RequestOutcome::Ok; }
  std::string Error;       ///< Human-readable; empty when ok.
  std::string Pipeline;
  int64_t Item = -1;       ///< Position inside a batch; -1 = not batched.
  unsigned Moves = 0;      ///< PipelineResult::NumMoves.
  uint64_t WeightedMoves = 0;
  double Seconds = 0;      ///< Wall time inside the worker.
  /// Register-allocation outcome, when the request asked for it. The
  /// record then carries allocator/spill_mode/spills/spill_accesses/
  /// regs_used/frame_bytes keys; a failed allocation is reported as a
  /// PipelineError outcome with the allocator's message.
  bool HasRegAlloc = false;
  std::string Allocator;   ///< allocatorName() of the applied preset.
  std::string SpillMode;   ///< spillModelName() of the applied preset.
  unsigned Spills = 0;         ///< RegAllocResult::NumSpilled.
  unsigned SpillAccesses = 0;  ///< NumSpillLoads + NumSpillStores.
  unsigned RegsUsed = 0;       ///< RegAllocResult::NumRegsUsed.
  unsigned FrameBytes = 0;     ///< RegAllocResult::FrameBytes.
  /// Execution-tier outcome, when the request carried an "exec" key. The
  /// record then reports exec_engine/exec_status/dyn_instrs/dyn_moves/
  /// exec_outputs/exec_ret (plus exec_error when the run failed). A
  /// program-level failure (undefined read, step limit) is a valid
  /// result, not a request error; only a "both" divergence fails the
  /// request. dyn counters come from the engine that ran — the VM for
  /// "vm" and "both", the interpreter for "interp".
  bool HasExec = false;
  std::string ExecEngine;      ///< "interp", "vm" or "both", as requested.
  std::string ExecStatus;      ///< "ok", "error" or "timeout".
  std::string ExecError;       ///< Program-level diagnostic; empty on ok.
  uint64_t DynInstrs = 0;      ///< ExecResult::Steps.
  uint64_t DynMoves = 0;       ///< ExecResult::DynMoves.
  std::vector<uint64_t> ExecOutputs; ///< The `output` trace.
  uint64_t ExecRet = 0;        ///< The `ret` value; 0 unless ok.
  StatsSnapshot Counters;  ///< Exact per-request deltas (StatsScope);
                           ///< empty on the lean batch-item path.
  std::string IR;          ///< Transformed function; empty on error.
};

/// Renders the one-line JSON record of a response body.
std::string requestRecordJson(const RequestRecord &Rec);

/// Service-lifetime aggregate, merged from the per-request records.
struct ServerReport {
  uint64_t NumRequests = 0; ///< Single requests + batch items.
  uint64_t NumOk = 0;
  uint64_t NumErrors = 0;   ///< Every non-Ok outcome, timeouts included.
  uint64_t NumTimeouts = 0;
  uint64_t NumParseErrors = 0;
  uint64_t NumOversized = 0;
  uint64_t NumPipelineErrors = 0;
  uint64_t NumBatchErrors = 0; ///< Malformed BAT bodies (whole frame).
  uint64_t NumBatches = 0;     ///< Well-formed BAT frames dispatched.
  uint64_t MaxInFlight = 0;    ///< High-water of any connection's window.
  StatsSnapshot MergedCounters; ///< Sum of per-request deltas.
};

/// Per-worker reusable state: the long-lived AnalysisManager, the
/// Function it is currently bound to, and the slot's chunk recycler.
/// The function must outlive the manager's binding, so both live here
/// and are replaced together on the next request.
struct WorkerContext {
  std::unique_ptr<Function> F;
  std::unique_ptr<AnalysisManager> AM;
  ArenaRecycler Recycler;
};

class Server {
public:
  explicit Server(ServerOptions Opts = {});
  ~Server();

  /// Compiles one request through \p Ctx's reused manager. \p Arrival
  /// anchors the deadline. This is the whole per-request path — serve()
  /// calls it from pool workers, tests call it directly. With
  /// \p PerRequestCounters off (the lean batch-item path) no StatsScope
  /// is opened and the record's Counters stay empty.
  static RequestRecord compileRequest(const Request &Req, WorkerContext &Ctx,
                                      std::chrono::steady_clock::time_point
                                          Arrival,
                                      const ServerOptions &Opts,
                                      bool PerRequestCounters = true);

  /// Serves framed requests from \p In until EOF (or requestShutdown),
  /// writing responses to \p Out in arrival order. Returns 0 on clean
  /// EOF, 1 after an unrecoverable framing error (a final id-0 error
  /// response is still emitted). Callable concurrently — one call per
  /// connection, all sharing the worker pool.
  int serve(std::istream &In, std::ostream &Out);

  /// Asks every serve() loop to wind down: in-flight requests complete,
  /// reorder buffers flush, then serve returns as if on EOF. Safe from
  /// any thread; a signal handler may instead set the stop flag of the
  /// stream's FdStreamBuf, which drains identically.
  void requestShutdown() { Stop.store(true, std::memory_order_release); }
  bool shutdownRequested() const {
    return Stop.load(std::memory_order_acquire);
  }

  /// Aggregate over all connections. Read it only while no serve() call
  /// is running (after the accept loop drained, or between tests).
  const ServerReport &report() const { return Report; }

  /// Arrival-ordered per-request records; only filled when
  /// ServerOptions::CollectRecords is set. Multi-connection runs append
  /// each connection's records as one contiguous block at connection
  /// end. Same read discipline as report().
  const std::vector<RequestRecord> &records() const { return Records; }

private:
  struct Connection;
  void complete(Connection &C, uint64_t Seq, std::string Frame,
                std::vector<RequestRecord> Recs);
  void dispatchSingle(Connection &C, Request Req,
                      std::chrono::steady_clock::time_point Arrival,
                      uint64_t Seq);
  void dispatchBatch(Connection &C, BatchRequest Req,
                     std::chrono::steady_clock::time_point Arrival,
                     uint64_t Seq);
  unsigned acquireSlot();
  void releaseSlot(unsigned Slot);

  ServerOptions Opts;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<WorkerContext> Contexts;
  std::vector<unsigned> FreeSlots;
  std::mutex SlotM;
  std::atomic<bool> Stop{false};
  std::mutex ReportM;
  ServerReport Report;
  std::vector<RequestRecord> Records;
};

} // namespace lao

#endif // LAO_SERVER_SERVER_H
