//===- DefUseIndex.h - Per-variable def/use occurrence index ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-pass index of every variable's occurrences, built once per
/// function and shared by the liveness machinery:
///
///  * ordered (block, ordinal, use/def) events, so "is V used or defined
///    after position P?" is a binary search instead of an instruction-list
///    rescan (the hot leaves of Liveness::isLiveAfter/isLiveBefore);
///  * per-variable block summaries (upward-exposed-use blocks, def
///    blocks, phi-argument predecessor blocks) that seed LivenessQuery's
///    per-variable backward solves.
///
/// Phi semantics follow the paper (Section 3.2, Class 2): a phi argument
/// occurs at the end of the corresponding predecessor (recorded in
/// phiOutBlocks, never as a use event of the phi's block), and a phi
/// result is defined at its block's entry (a def event at the phi's
/// textual position, which precedes every non-phi).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_DEFUSEINDEX_H
#define LAO_ANALYSIS_DEFUSEINDEX_H

#include "ir/Function.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace lao {

/// Immutable occurrence index over one function. Any mutation of the
/// function's instructions invalidates it.
class DefUseIndex {
public:
  explicit DefUseIndex(const Function &F);

  enum EventKind : uint32_t { UseEvent = 0, DefEvent = 1 };

  /// Textual position of \p I within its block (phis included).
  uint32_t ordinalOf(const Instruction *I) const {
    assert(I->selfRef() < Ordinals.size() &&
           Ordinals[I->selfRef()] != ~0u &&
           "instruction not in the indexed function");
    return Ordinals[I->selfRef()];
  }

  /// Kind of the first occurrence of \p V in \p Block at an ordinal
  /// greater than \p Ord (or greater-or-equal when \p Inclusive), or -1
  /// when the variable has no further occurrence in the block. A use and
  /// a def at one ordinal report the use (operands are read before the
  /// results are written). Phi uses are not events (see file comment).
  int firstEventFrom(RegId V, uint32_t Block, uint32_t Ord,
                     bool Inclusive) const {
    const std::vector<uint64_t> &E = Vars[V].Events;
    uint64_t Lo = (static_cast<uint64_t>(Block) << 32) |
                  ((static_cast<uint64_t>(Ord) + (Inclusive ? 0 : 1)) << 1);
    auto It = std::lower_bound(E.begin(), E.end(), Lo);
    if (It == E.end() || (*It >> 32) != Block)
      return -1;
    return static_cast<int>(*It & 1);
  }

  /// Blocks (by id, ascending) with an upward-exposed use of \p V.
  const std::vector<uint32_t> &ueBlocks(RegId V) const {
    return Vars[V].UE;
  }
  /// Blocks (by id, ascending) containing a def of \p V (phi defs count).
  const std::vector<uint32_t> &defBlocks(RegId V) const {
    return Vars[V].DefB;
  }
  /// Predecessor blocks into whose live-out \p V flows as a phi argument.
  const std::vector<uint32_t> &phiOutBlocks(RegId V) const {
    return Vars[V].PhiOut;
  }

  bool definedIn(RegId V, uint32_t Block) const {
    const auto &D = Vars[V].DefB;
    return std::binary_search(D.begin(), D.end(), Block);
  }

  /// Number of def events of \p V (2+ means non-SSA or a physical reg).
  uint32_t numDefs(RegId V) const { return Vars[V].NumDefEvents; }

  /// Block of the unique def; only meaningful when numDefs(V) == 1.
  uint32_t soleDefBlock(RegId V) const {
    assert(Vars[V].NumDefEvents == 1 && "not a single-def variable");
    return Vars[V].DefB.front();
  }

private:
  struct VarOcc {
    /// Packed (block << 32 | ordinal << 1 | kind), sorted ascending.
    std::vector<uint64_t> Events;
    std::vector<uint32_t> UE;
    std::vector<uint32_t> DefB;
    std::vector<uint32_t> PhiOut;
    uint32_t NumDefEvents = 0;
  };

  std::vector<VarOcc> Vars;
  /// Ordinal per instruction, indexed by InstrRef (dense; ~0u = unused
  /// slot). Replaces a pointer-keyed hash map: construction is a stores-
  /// only sweep and ordinalOf is a single indexed load.
  std::vector<uint32_t> Ordinals;
};

} // namespace lao

#endif // LAO_ANALYSIS_DEFUSEINDEX_H
