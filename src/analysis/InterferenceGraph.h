//===- InterferenceGraph.h - Post-SSA interference graph --------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin-style interference graph for non-SSA code, used by the
/// aggressive "repeated register coalescing" baseline (the paper's [C]
/// configurations). Two registers interfere when one is defined at a point
/// where the other is live, except that the destination of a move does not
/// interfere with its source at that move (Chaitin's refinement).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_INTERFERENCEGRAPH_H
#define LAO_ANALYSIS_INTERFERENCEGRAPH_H

#include "analysis/Liveness.h"
#include "ir/Function.h"

#include <unordered_set>
#include <vector>

namespace lao {

/// Undirected interference graph over register ids.
class InterferenceGraph {
public:
  /// Builds the graph for non-SSA code (no phis; parallel copies allowed).
  InterferenceGraph(const Function &F, const Liveness &LV);

  bool interfere(RegId A, RegId B) const {
    if (A == B)
      return false;
    const auto &Set = Adj[A];
    return Set.find(B) != Set.end();
  }

  /// Merges \p B into \p A: A acquires all of B's edges. Used after
  /// coalescing a move (a simple vertex-merge, as Section 3.5 notes).
  void mergeInto(RegId A, RegId B);

  size_t numNodes() const { return Adj.size(); }
  const std::unordered_set<RegId> &neighbors(RegId A) const { return Adj[A]; }

  void addEdge(RegId A, RegId B) {
    if (A == B)
      return;
    Adj[A].insert(B);
    Adj[B].insert(A);
  }

private:
  std::vector<std::unordered_set<RegId>> Adj;
};

} // namespace lao

#endif // LAO_ANALYSIS_INTERFERENCEGRAPH_H
