//===- InterferenceGraph.h - Post-SSA interference graph --------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin-style interference graph for non-SSA code, used by the
/// aggressive "repeated register coalescing" baseline (the paper's [C]
/// configurations). Two registers interfere when one is defined at a point
/// where the other is live, except that the destination of a move does not
/// interfere with its source at that move (Chaitin's refinement).
///
/// Hybrid representation (the classic Chaitin trade-off): a lower-
/// triangular bit matrix answers `interfere(A, B)` in O(1), while sorted
/// per-node adjacency vectors give cache-friendly, *deterministic*
/// neighbor iteration — `neighbors()` always enumerates in ascending
/// RegId order, so every order-sensitive client (coalescer merge loops,
/// allocator color scans) behaves identically run to run.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_INTERFERENCEGRAPH_H
#define LAO_ANALYSIS_INTERFERENCEGRAPH_H

#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "support/BitVector.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lao {

/// Undirected interference graph over register ids.
class InterferenceGraph {
public:
  /// Builds the graph for non-SSA code (no phis; parallel copies allowed).
  InterferenceGraph(const Function &F, const Liveness &LV);

  bool interfere(RegId A, RegId B) const {
    if (A == B)
      return false;
    return Matrix.test(triIndex(A, B));
  }

  /// Merges \p Dead into \p Rep in place: Rep's neighborhood becomes the
  /// union of both, Dead's row empties, and every third node's adjacency
  /// list is patched. O(deg(Rep) + deg(Dead)) — the new Rep row is one
  /// merge-join of two sorted lists, and each of Dead's neighbors gets a
  /// single in-place shift (no per-edge binary-search insert). The
  /// `neighbors()` sortedness invariant is preserved throughout, so
  /// order-sensitive clients see the same deterministic iteration they
  /// would after a rebuild.
  void mergeNodes(RegId Rep, RegId Dead);

  /// Merges \p B into \p A: A acquires all of B's edges. Used after
  /// coalescing a move (a simple vertex-merge, as Section 3.5 notes).
  /// Synonym for mergeNodes, kept for the historical call sites.
  void mergeInto(RegId A, RegId B) { mergeNodes(A, B); }

  /// Removes the edge {A, B}. The incremental coalescer uses this when
  /// its round-boundary repair scan proves a unioned edge is not present
  /// in the exact graph of the rewritten program.
  void removeEdge(RegId A, RegId B) {
    assert(A != B && "no self-edges");
    size_t Idx = triIndex(A, B);
    if (!Matrix.test(Idx))
      return;
    Matrix.reset(Idx);
    sortedErase(Adj[A], B);
    sortedErase(Adj[B], A);
  }

  size_t numNodes() const { return Adj.size(); }

  /// B's neighbors in ascending RegId order (deterministic).
  const std::vector<RegId> &neighbors(RegId A) const { return Adj[A]; }

  void addEdge(RegId A, RegId B) {
    if (A == B)
      return;
    size_t Idx = triIndex(A, B);
    if (Matrix.test(Idx))
      return;
    Matrix.set(Idx);
    sortedInsert(Adj[A], B);
    sortedInsert(Adj[B], A);
  }

private:
  /// Index of the unordered pair {A, B} in the lower-triangular matrix.
  static size_t triIndex(RegId A, RegId B) {
    assert(A != B && "no self-edges");
    if (A < B)
      std::swap(A, B);
    return static_cast<size_t>(A) * (A - 1) / 2 + B;
  }

  static void sortedInsert(std::vector<RegId> &Vec, RegId V) {
    Vec.insert(std::lower_bound(Vec.begin(), Vec.end(), V), V);
  }

  static void sortedErase(std::vector<RegId> &Vec, RegId V) {
    auto It = std::lower_bound(Vec.begin(), Vec.end(), V);
    assert(It != Vec.end() && *It == V && "erasing a missing neighbor");
    Vec.erase(It);
  }

  BitVector Matrix; ///< Lower-triangular adjacency bits.
  std::vector<std::vector<RegId>> Adj;
};

} // namespace lao

#endif // LAO_ANALYSIS_INTERFERENCEGRAPH_H
