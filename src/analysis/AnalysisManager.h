//===- AnalysisManager.h - Caching per-function analysis manager *- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A caching analysis manager in the spirit of LLVM's new pass manager,
/// sized for this project's fixed analysis menagerie. Passes request
/// analyses lazily through the manager — each is computed at most once
/// until invalidated — and report what they kept intact through a
/// PreservedAnalyses token; the manager then drops only the stale
/// entries, honoring the dependency cascade:
///
///   CFG dropped        -> everything dropped
///   DomTree dropped    -> LoopInfo, LivenessQuery dropped
///   Liveness dropped   -> InterferenceGraph dropped
///
/// A debug verifier (`verify()`, optionally run on every invalidation via
/// setVerifyOnInvalidate) recomputes the retained analyses from scratch
/// and diffs them against the cache, catching passes that lie about what
/// they preserve. See docs/ANALYSIS.md for the full contract.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_ANALYSISMANAGER_H
#define LAO_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/Dominators.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "analysis/LivenessQuery.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "ir/Function.h"

#include <memory>
#include <string>

namespace lao {

/// The analyses the manager knows about, as bitmask positions.
enum class AnalysisKind : unsigned {
  CFG = 1u << 0,
  DomTree = 1u << 1,
  LoopInfo = 1u << 2,
  Liveness = 1u << 3,
  LivenessQuery = 1u << 4,
  Interference = 1u << 5,
};

/// What a pass left intact. Passes construct one of these and hand it to
/// AnalysisManager::invalidate when they finish mutating the function.
class PreservedAnalyses {
public:
  /// Nothing survives (the default for an unknown transformation).
  static PreservedAnalyses none() { return PreservedAnalyses(0); }

  /// Everything survives (an analysis-only pass).
  static PreservedAnalyses all() { return PreservedAnalyses(~0u); }

  /// The common case for passes that rewrite instructions inside existing
  /// blocks without touching edges: block structure and dominance remain
  /// valid, but anything derived from instructions does not.
  static PreservedAnalyses cfgOnly() {
    return PreservedAnalyses(bit(AnalysisKind::CFG) |
                             bit(AnalysisKind::DomTree) |
                             bit(AnalysisKind::LoopInfo));
  }

  PreservedAnalyses &preserve(AnalysisKind K) {
    Mask |= bit(K);
    return *this;
  }

  bool isPreserved(AnalysisKind K) const { return (Mask & bit(K)) != 0; }

private:
  explicit PreservedAnalyses(unsigned Mask) : Mask(Mask) {}
  static unsigned bit(AnalysisKind K) { return static_cast<unsigned>(K); }
  unsigned Mask;
};

/// Lazily computes and caches the standard analyses over one function.
/// References returned by the getters stay valid until the corresponding
/// analysis is invalidated — passes must not hold them across an
/// invalidate() of that analysis.
class AnalysisManager {
public:
  explicit AnalysisManager(Function &F) : F(&F) {}

  Function &function() { return *F; }

  /// Rebinds the manager to \p NewF, dropping every cached analysis (the
  /// epoch bumps if anything was cached). The manager object itself
  /// survives — a compile-service worker keeps one manager alive and
  /// resets it for each incoming function, so the reuse pattern is
  /// construct-once, reset-per-request. Rebinding to the same function
  /// is a full invalidation.
  void reset(Function &NewF);

  const CFG &cfg();
  const DominatorTree &domTree();
  const LoopInfo &loopInfo();
  Liveness &liveness();
  const LivenessQuery &livenessQuery();
  InterferenceGraph &interference();

  bool isCached(AnalysisKind K) const;

  /// Monotonic counter bumped whenever an invalidate() actually drops a
  /// cached analysis. A holder of analysis references (e.g. the
  /// PinningContext + its class-interference cache, which stay exact
  /// only while the liveness they were built from is current) can record
  /// the epoch at construction and assert it unchanged at use.
  uint64_t epoch() const { return Epoch; }

  /// Drops every cached analysis the pass did not preserve, plus the
  /// dependency closure. When the verify-on-invalidate debug flag is on,
  /// first cross-checks the surviving entries against fresh recomputation
  /// and aborts on a mismatch (a pass lied about preservation).
  void invalidate(const PreservedAnalyses &PA);

  /// Recomputes each cached analysis from the function's current state
  /// and diffs it against the cache. Returns an empty string when
  /// everything matches, else a human-readable description of the first
  /// inconsistency found.
  std::string verify() const;

  /// When set, invalidate() calls verify() on the survivors and aborts on
  /// any mismatch. Meant for tests and debug builds; global because it is
  /// a process-level debugging mode.
  static void setVerifyOnInvalidate(bool On) { VerifyOnInvalidate = On; }

private:
  Function *F;
  std::unique_ptr<CFG> TheCFG;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<Liveness> LV;
  std::unique_ptr<LivenessQuery> LQ;
  std::unique_ptr<InterferenceGraph> IG;
  uint64_t Epoch = 0;

  static bool VerifyOnInvalidate;
};

} // namespace lao

#endif // LAO_ANALYSIS_ANALYSISMANAGER_H
