//===- DefUseIndex.cpp - Per-variable def/use occurrence index ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DefUseIndex.h"

using namespace lao;

DefUseIndex::DefUseIndex(const Function &F) {
  size_t NV = F.numValues();
  Vars.resize(NV);

  Ordinals.assign(F.instrRefLimit(), ~0u);

  // Block-epoch markers (block id + 1; 0 = never) for one-pass dedup of
  // the per-block summaries. LastDef doubles as the upward-exposure
  // test: a use is upward-exposed iff no def of it precedes it in the
  // block (ParCopy reads all sources before writing any destination, and
  // the loops below visit uses first).
  std::vector<uint32_t> LastDef(NV, 0), LastUE(NV, 0), LastDefBlock(NV, 0);

  [[maybe_unused]] uint32_t PrevId = 0;
  for (const auto &BB : F.blocks()) {
    uint32_t B = BB->id();
    assert((B == 0 || B > PrevId) && "blocks must iterate in id order");
    PrevId = B;
    uint32_t Mark = B + 1;
    uint32_t Ord = 0;
    auto Pack = [B](uint32_t Ord, EventKind K) {
      return (static_cast<uint64_t>(B) << 32) |
             (static_cast<uint64_t>(Ord) << 1) | K;
    };
    auto NoteDef = [&](RegId D, uint32_t Ord) {
      Vars[D].Events.push_back(Pack(Ord, DefEvent));
      ++Vars[D].NumDefEvents;
      LastDef[D] = Mark;
      if (LastDefBlock[D] != Mark) {
        LastDefBlock[D] = Mark;
        Vars[D].DefB.push_back(B);
      }
    };
    for (const Instruction &I : BB->instructions()) {
      Ordinals[I.selfRef()] = Ord;
      if (I.isPhi()) {
        // Result defined at block entry; arguments live at the end of
        // the matching predecessor, not here.
        NoteDef(I.def(0), Ord);
        for (unsigned K = 0; K < I.numUses(); ++K)
          Vars[I.use(K)].PhiOut.push_back(I.incomingBlock(K)->id());
        ++Ord;
        continue;
      }
      for (RegId U : I.uses()) {
        Vars[U].Events.push_back(Pack(Ord, UseEvent));
        if (LastDef[U] != Mark && LastUE[U] != Mark) {
          LastUE[U] = Mark;
          Vars[U].UE.push_back(B);
        }
      }
      for (RegId D : I.defs())
        NoteDef(D, Ord);
      ++Ord;
    }
  }
  // Events were appended in (block id, ordinal, uses-before-defs) order,
  // which is exactly the packed sort order — no per-variable sort needed.
}
