//===- Liveness.h - Block-level liveness with phi semantics -----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative backward liveness over the mini-LAI IR. Phi semantics follow
/// the paper (Section 3.2, Class 2): "a phi instruction does not occur
/// where it textually appears, but at the end of each predecessor basic
/// block instead". So a phi argument is live-out of the corresponding
/// predecessor and *not* live-in of the phi's block, and a phi result is
/// defined at its block's entry.
///
/// The same solver handles non-SSA (post-translation) code: it simply has
/// no phis, and ParCopy instructions read all sources before writing all
/// destinations.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_LIVENESS_H
#define LAO_ANALYSIS_LIVENESS_H

#include "ir/CFG.h"
#include "ir/Function.h"
#include "support/BitVector.h"

#include <memory>
#include <vector>

namespace lao {

class DefUseIndex;

/// Liveness sets for every block of a function.
class Liveness {
public:
  explicit Liveness(const CFG &Cfg);
  ~Liveness();

  const BitVector &liveIn(const BasicBlock *BB) const {
    return LiveIn[BB->id()];
  }
  const BitVector &liveOut(const BasicBlock *BB) const {
    return LiveOut[BB->id()];
  }

  bool isLiveIn(RegId V, const BasicBlock *BB) const {
    return LiveIn[BB->id()].test(V);
  }
  bool isLiveOut(RegId V, const BasicBlock *BB) const {
    return LiveOut[BB->id()].test(V);
  }

  /// Returns true if \p V is live immediately *after* instruction \p Pos
  /// of block \p BB (i.e. at the program point following it). Phi uses
  /// count as uses at the end of the predecessor block, and are therefore
  /// covered by the liveOut component. O(log uses-of-V) via a lazily
  /// built per-block position index (DefUseIndex), instead of rescanning
  /// the instruction list.
  bool isLiveAfter(RegId V, const BasicBlock *BB,
                   BasicBlock::InstList::const_iterator Pos) const;

  /// Returns true if \p V is live immediately *before* instruction \p Pos.
  bool isLiveBefore(RegId V, const BasicBlock *BB,
                    BasicBlock::InstList::const_iterator Pos) const;

  const CFG &cfg() const { return Cfg; }

  /// Incremental maintenance for the coalescer: projects a victim ->
  /// survivor rename map (`RenameTo[v] != InvalidReg` marks a victim;
  /// chains are chased) onto the block-level sets. Victim bits are
  /// cleared and OR-ed into their survivor — exact for the rename itself;
  /// callers that also *delete* instructions (identity copies) must
  /// follow up with recomputeValues on the affected survivors.
  void applyRenames(const std::vector<RegId> &RenameTo);

  /// Recomputes the block-level sets of \p Vars exactly, from the
  /// function's current instructions, leaving every other variable's
  /// bits untouched. A restricted |Vars|-bit fixpoint: one scan of the
  /// function plus a small iteration, instead of a full dense analysis.
  void recomputeValues(const std::vector<RegId> &Vars);

private:
  const CFG &Cfg;
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
  /// Lazily built occurrence index backing isLiveAfter/isLiveBefore;
  /// dropped whenever the sets are incrementally updated (the underlying
  /// instructions changed).
  mutable std::unique_ptr<DefUseIndex> Index;

  const DefUseIndex &index() const;
};

} // namespace lao

#endif // LAO_ANALYSIS_LIVENESS_H
