//===- InterferenceGraph.cpp - Post-SSA interference graph -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include "support/Stats.h"

#include <cassert>

using namespace lao;

InterferenceGraph::InterferenceGraph(const Function &F, const Liveness &LV) {
  ++LAO_STAT(interference, graphs_built);
  Adj.resize(F.numValues());

  for (const auto &BB : F.blocks()) {
    BitVector Live = LV.liveOut(BB.get());
    // Backward scan: at each def, the def interferes with everything live
    // across it.
    auto &Insts = BB->instructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      const Instruction &I = *It;
      assert(!I.isPhi() && "interference graph expects non-SSA code");
      if (I.isCopy()) {
        // Move d = s: d does not interfere with s through this move.
        RegId D = I.def(0), S = I.use(0);
        Live.reset(S);
        Live.forEach([&](size_t L) { addEdge(D, static_cast<RegId>(L)); });
        Live.reset(D);
        Live.set(S);
        continue;
      }
      if (I.isParCopy()) {
        // All sources read in parallel; each dest interferes with what is
        // live across the copy minus its own source.
        for (unsigned K = 0; K < I.numDefs(); ++K) {
          RegId D = I.def(K), S = I.use(K);
          Live.forEach([&](size_t L) {
            if (static_cast<RegId>(L) != S && static_cast<RegId>(L) != D)
              addEdge(D, static_cast<RegId>(L));
          });
        }
        // Destinations also interfere pairwise (written in parallel).
        for (unsigned A = 0; A < I.numDefs(); ++A)
          for (unsigned B = A + 1; B < I.numDefs(); ++B)
            addEdge(I.def(A), I.def(B));
        for (RegId D : I.defs())
          Live.reset(D);
        for (RegId U : I.uses())
          Live.set(U);
        continue;
      }
      for (RegId D : I.defs())
        Live.forEach([&](size_t L) {
          if (static_cast<RegId>(L) != D)
            addEdge(D, static_cast<RegId>(L));
        });
      // Multiple defs of one instruction are written together.
      for (unsigned A = 0; A < I.numDefs(); ++A)
        for (unsigned B = A + 1; B < I.numDefs(); ++B)
          addEdge(I.def(A), I.def(B));
      for (RegId D : I.defs())
        Live.reset(D);
      for (RegId U : I.uses())
        Live.set(U);
    }
  }
}

void InterferenceGraph::mergeInto(RegId A, RegId B) {
  assert(A != B && "merging a node into itself");
  for (RegId N : Adj[B]) {
    Adj[N].erase(B);
    if (N != A) {
      Adj[N].insert(A);
      Adj[A].insert(N);
    }
  }
  Adj[B].clear();
  Adj[A].erase(B);
}
