//===- InterferenceGraph.cpp - Post-SSA interference graph -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include "support/Stats.h"

#include <cassert>

using namespace lao;

InterferenceGraph::InterferenceGraph(const Function &F, const Liveness &LV) {
  ++LAO_STAT(interference, graphs_built);
  size_t NV = F.numValues();
  Adj.resize(NV);
  Matrix.resize(NV < 2 ? 0 : NV * (NV - 1) / 2);

  // During construction, append edges unsorted (the bit matrix already
  // dedups); one sort per node at the end beats a binary-search insert
  // per edge.
  auto AddRaw = [&](RegId A, RegId B) {
    if (A == B)
      return;
    size_t Idx = triIndex(A, B);
    if (Matrix.test(Idx))
      return;
    Matrix.set(Idx);
    Adj[A].push_back(B);
    Adj[B].push_back(A);
  };

  for (const auto &BB : F.blocks()) {
    BitVector Live = LV.liveOut(BB.get());
    // Backward scan: at each def, the def interferes with everything live
    // across it.
    auto &Insts = BB->instructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      const Instruction &I = *It;
      assert(!I.isPhi() && "interference graph expects non-SSA code");
      if (I.isCopy()) {
        // Move d = s: d does not interfere with s through this move.
        RegId D = I.def(0), S = I.use(0);
        Live.reset(S);
        Live.forEach([&](size_t L) { AddRaw(D, static_cast<RegId>(L)); });
        Live.reset(D);
        Live.set(S);
        continue;
      }
      if (I.isParCopy()) {
        // All sources read in parallel; each dest interferes with what is
        // live across the copy minus its own source.
        for (unsigned K = 0; K < I.numDefs(); ++K) {
          RegId D = I.def(K), S = I.use(K);
          Live.forEach([&](size_t L) {
            if (static_cast<RegId>(L) != S && static_cast<RegId>(L) != D)
              AddRaw(D, static_cast<RegId>(L));
          });
        }
        // Destinations also interfere pairwise (written in parallel).
        for (unsigned A = 0; A < I.numDefs(); ++A)
          for (unsigned B = A + 1; B < I.numDefs(); ++B)
            AddRaw(I.def(A), I.def(B));
        for (RegId D : I.defs())
          Live.reset(D);
        for (RegId U : I.uses())
          Live.set(U);
        continue;
      }
      for (RegId D : I.defs())
        Live.forEach([&](size_t L) {
          if (static_cast<RegId>(L) != D)
            AddRaw(D, static_cast<RegId>(L));
        });
      // Multiple defs of one instruction are written together.
      for (unsigned A = 0; A < I.numDefs(); ++A)
        for (unsigned B = A + 1; B < I.numDefs(); ++B)
          AddRaw(I.def(A), I.def(B));
      for (RegId D : I.defs())
        Live.reset(D);
      for (RegId U : I.uses())
        Live.set(U);
    }
  }

  for (auto &List : Adj)
    std::sort(List.begin(), List.end());
}

namespace {

/// Replaces \p Old by \p New in the sorted vector \p Vec with a single
/// element shift, instead of an erase followed by a binary-search insert.
/// \p New must not already be present.
void replaceSorted(std::vector<RegId> &Vec, RegId Old, RegId New) {
  auto OldIt = std::lower_bound(Vec.begin(), Vec.end(), Old);
  assert(OldIt != Vec.end() && *OldIt == Old && "replacing a missing entry");
  if (New > Old) {
    auto Pos = std::lower_bound(OldIt + 1, Vec.end(), New);
    std::move(OldIt + 1, Pos, OldIt);
    *(Pos - 1) = New;
  } else {
    auto Pos = std::lower_bound(Vec.begin(), OldIt, New);
    std::move_backward(Pos, OldIt, OldIt + 1);
    *Pos = New;
  }
}

} // namespace

void InterferenceGraph::mergeNodes(RegId Rep, RegId Dead) {
  assert(Rep != Dead && "merging a node into itself");

  // New Rep row first, while both old rows are intact: one merge-join of
  // the two sorted lists, dropping the endpoints themselves (a Rep-Dead
  // edge dies with the merge, and there are no self-edges).
  std::vector<RegId> Merged;
  Merged.reserve(Adj[Rep].size() + Adj[Dead].size());
  {
    auto A = Adj[Rep].begin(), AE = Adj[Rep].end();
    auto B = Adj[Dead].begin(), BE = Adj[Dead].end();
    while (A != AE || B != BE) {
      RegId V;
      if (B == BE || (A != AE && *A <= *B)) {
        V = *A;
        if (B != BE && *B == V)
          ++B;
        ++A;
      } else {
        V = *B++;
      }
      if (V != Dead && V != Rep)
        Merged.push_back(V);
    }
  }

  // Retire Dead's edges in the matrix and patch its neighbors' lists.
  std::vector<RegId> DeadNbrs = std::move(Adj[Dead]);
  Adj[Dead].clear();
  for (RegId N : DeadNbrs) {
    Matrix.reset(triIndex(Dead, N));
    if (N == Rep)
      continue;
    size_t RepN = triIndex(Rep, N);
    if (Matrix.test(RepN))
      sortedErase(Adj[N], Dead); // Rep already present in Adj[N].
    else {
      Matrix.set(RepN);
      replaceSorted(Adj[N], Dead, Rep);
    }
  }
  Adj[Rep] = std::move(Merged);
}
