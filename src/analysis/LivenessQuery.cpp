//===- LivenessQuery.cpp - Fast per-variable liveness queries -----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LivenessQuery.h"

#include "support/Stats.h"

using namespace lao;

LivenessQuery::LivenessQuery(const CFG &Cfg, const DominatorTree &DT)
    : Cfg(Cfg), DT(DT), Idx(Cfg.func()) {
  Sets.resize(Cfg.func().numValues());
  ++LAO_STAT(liveness, query_engines);
}

/// Per-variable backward walk solving, for one variable v, the same
/// equations the dense solver iterates globally:
///
///   out(B) = [v is a phi arg flowing out of B] or (exists S in succ(B):
///            in(S))
///   in(B)  = [v has an upward-exposed use in B] or (out(B) and v not
///            defined in B)
///
/// Each block enters the worklist at most once (when in(B) first becomes
/// true), so the walk is O(blocks + edges touched by v's live range).
const LivenessQuery::VarSets &LivenessQuery::solved(RegId V) const {
  VarSets &S = Sets[V];
  if (S.Solved)
    return S;
  S.Solved = true;
  ++LAO_STAT(liveness, var_solves);
  size_t NB = Cfg.func().numBlocks();
  S.In.resize(NB);
  S.Out.resize(NB);

  // The dense solver's fixpoint runs over the full rpo() order, which
  // includes unreachable blocks (appended after the reachable ones), so
  // this walk deliberately does NOT filter on reachability — both solve
  // the same least fixpoint and agree bit for bit.
  std::vector<uint32_t> Worklist;
  auto MarkIn = [&](uint32_t B) {
    if (!S.In.test(B)) {
      S.In.set(B);
      Worklist.push_back(B);
    }
  };
  for (uint32_t B : Idx.ueBlocks(V))
    MarkIn(B);
  for (uint32_t P : Idx.phiOutBlocks(V)) {
    S.Out.set(P);
    if (!Idx.definedIn(V, P))
      MarkIn(P);
  }
  const auto &Blocks = Cfg.func().blocks();
  while (!Worklist.empty()) {
    uint32_t B = Worklist.back();
    Worklist.pop_back();
    for (const BasicBlock *P : Cfg.preds(Blocks[B].get())) {
      S.Out.set(P->id());
      if (!Idx.definedIn(V, P->id()))
        MarkIn(P->id());
    }
  }
  return S;
}

bool LivenessQuery::ruledOutByDominance(RegId V, const BasicBlock *BB,
                                        bool Strict) const {
  // Sound only for single-def variables in reachable code: a strict-SSA
  // value is live only within the dominance region of its definition.
  // Unreachable blocks carry liveness the dominator tree knows nothing
  // about, so they always take the walk.
  if (Idx.numDefs(V) != 1 || !Cfg.isReachable(BB))
    return false;
  const BasicBlock *DefBB = Cfg.func().blocks()[Idx.soleDefBlock(V)].get();
  if (!Cfg.isReachable(DefBB))
    return false;
  return Strict ? !DT.strictlyDominates(DefBB, BB) : !DT.dominates(DefBB, BB);
}

bool LivenessQuery::isLiveIn(RegId V, const BasicBlock *BB) const {
  if (ruledOutByDominance(V, BB, /*Strict=*/true))
    return false;
  return solved(V).In.test(BB->id());
}

bool LivenessQuery::isLiveOut(RegId V, const BasicBlock *BB) const {
  if (ruledOutByDominance(V, BB, /*Strict=*/false))
    return false;
  return solved(V).Out.test(BB->id());
}

bool LivenessQuery::isLiveAfter(RegId V, const BasicBlock *BB,
                                BasicBlock::InstList::const_iterator Pos)
    const {
  int K = Idx.firstEventFrom(V, BB->id(), Idx.ordinalOf(&*Pos),
                             /*Inclusive=*/false);
  if (K >= 0)
    return K == DefUseIndex::UseEvent;
  return isLiveOut(V, BB);
}

bool LivenessQuery::isLiveBefore(RegId V, const BasicBlock *BB,
                                 BasicBlock::InstList::const_iterator Pos)
    const {
  int K = Idx.firstEventFrom(V, BB->id(), Idx.ordinalOf(&*Pos),
                             /*Inclusive=*/true);
  if (K >= 0)
    return K == DefUseIndex::UseEvent;
  return isLiveOut(V, BB);
}
