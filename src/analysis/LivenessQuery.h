//===- LivenessQuery.h - Fast per-variable liveness queries -----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness queries without a global dense fixpoint, after Boissinot et
/// al., "Revisiting Out-of-SSA Translation for Correctness, Code Quality,
/// and Efficiency" (RR2007-42, see PAPERS.md): instead of iterating
/// bitsets over all (variable, block) pairs up front, answer each query
/// from per-variable def/use data precomputed in one pass (DefUseIndex)
/// plus the dominator tree.
///
///  * isLiveIn/isLiveOut first apply the SSA dominance filter — a value
///    cannot be live at a block its definition does not (strictly)
///    dominate — and only then run a memoized per-variable backward
///    reachability walk from the variable's use blocks.
///  * isLiveAfter/isLiveBefore binary-search the variable's in-block
///    occurrence events and fall back to isLiveOut.
///
/// The walk solves the same per-variable dataflow equations as the dense
/// `Liveness` (including the paper's Class 2 phi semantics), so answers
/// are identical — LivenessQueryTests cross-checks every suite. Multi-def
/// variables (physical registers, pre-SSA code) skip the dominance
/// filter and remain exact.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_LIVENESSQUERY_H
#define LAO_ANALYSIS_LIVENESSQUERY_H

#include "analysis/DefUseIndex.h"
#include "analysis/Dominators.h"
#include "ir/CFG.h"
#include "support/BitVector.h"

#include <vector>

namespace lao {

/// Lazily-solved per-variable liveness over one function. Queries are
/// O(log uses) after an O(edges) first touch per variable; nothing is
/// computed for variables never asked about.
class LivenessQuery {
public:
  LivenessQuery(const CFG &Cfg, const DominatorTree &DT);

  bool isLiveIn(RegId V, const BasicBlock *BB) const;
  bool isLiveOut(RegId V, const BasicBlock *BB) const;

  /// Same contract as Liveness::isLiveAfter: true if \p V is live at the
  /// program point following \p Pos.
  bool isLiveAfter(RegId V, const BasicBlock *BB,
                   BasicBlock::InstList::const_iterator Pos) const;

  /// Same contract as Liveness::isLiveBefore.
  bool isLiveBefore(RegId V, const BasicBlock *BB,
                    BasicBlock::InstList::const_iterator Pos) const;

  const CFG &cfg() const { return Cfg; }
  const DefUseIndex &index() const { return Idx; }

private:
  struct VarSets {
    BitVector In, Out; ///< Block-indexed live-in / live-out of one var.
    bool Solved = false;
  };

  const CFG &Cfg;
  const DominatorTree &DT;
  DefUseIndex Idx;
  mutable std::vector<VarSets> Sets;

  const VarSets &solved(RegId V) const;

  /// SSA dominance filter: definitely-not-live when the unique reachable
  /// def does not (strictly, for live-in) dominate \p BB.
  bool ruledOutByDominance(RegId V, const BasicBlock *BB, bool Strict) const;
};

} // namespace lao

#endif // LAO_ANALYSIS_LIVENESSQUERY_H
