//===- Liveness.cpp - Block-level liveness with phi semantics ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/DefUseIndex.h"
#include "support/Stats.h"

using namespace lao;

Liveness::~Liveness() = default;

Liveness::Liveness(const CFG &Cfg) : Cfg(Cfg) {
  const Function &F = Cfg.func();
  size_t NB = F.numBlocks();
  size_t NV = F.numValues();
  LiveIn.assign(NB, BitVector(NV));
  LiveOut.assign(NB, BitVector(NV));

  // Per-block upward-exposed uses and defs. Phi results count as defs of
  // their block (they are defined at entry); phi arguments are not uses of
  // the phi's block.
  std::vector<BitVector> UeUses(NB, BitVector(NV));
  std::vector<BitVector> Defs(NB, BitVector(NV));
  for (const auto &BB : F.blocks()) {
    BitVector &UE = UeUses[BB->id()];
    BitVector &DF = Defs[BB->id()];
    for (const Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        DF.set(I.def(0));
        continue;
      }
      if (I.isParCopy()) {
        // All sources read before any destination is written.
        for (RegId U : I.uses())
          if (!DF.test(U))
            UE.set(U);
        for (RegId D : I.defs())
          DF.set(D);
        continue;
      }
      for (RegId U : I.uses())
        if (!DF.test(U))
          UE.set(U);
      for (RegId D : I.defs())
        DF.set(D);
    }
  }

  // Phi argument contribution to predecessor live-out.
  std::vector<BitVector> PhiOut(NB, BitVector(NV));
  for (const auto &BB : F.blocks()) {
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      for (unsigned K = 0; K < I.numUses(); ++K)
        PhiOut[I.incomingBlock(K)->id()].set(I.use(K));
    }
  }

  // Iterate to fixpoint in post-order (reverse RPO) for fast convergence.
  ++LAO_STAT(liveness, analyses);
  const auto &Rpo = Cfg.rpo();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++LAO_STAT(liveness, fixpoint_iterations);
    for (auto It = Rpo.rbegin(); It != Rpo.rend(); ++It) {
      BasicBlock *BB = *It;
      BitVector Out = PhiOut[BB->id()];
      for (BasicBlock *S : Cfg.succs(BB))
        Out.orWith(LiveIn[S->id()]);
      BitVector In = Out;
      In.subtract(Defs[BB->id()]);
      In.orWith(UeUses[BB->id()]);
      if (!(Out == LiveOut[BB->id()])) {
        LiveOut[BB->id()] = std::move(Out);
        Changed = true;
      }
      if (!(In == LiveIn[BB->id()])) {
        LiveIn[BB->id()] = std::move(In);
        Changed = true;
      }
    }
  }
}

const DefUseIndex &Liveness::index() const {
  if (!Index)
    Index = std::make_unique<DefUseIndex>(Cfg.func());
  return *Index;
}

bool Liveness::isLiveAfter(RegId V, const BasicBlock *BB,
                           BasicBlock::InstList::const_iterator Pos) const {
  // V is live after Pos iff its next occurrence in the block is a use
  // (before being fully redefined), or there is no further occurrence and
  // it survives to the block end.
  const DefUseIndex &Idx = index();
  int K = Idx.firstEventFrom(V, BB->id(), Idx.ordinalOf(&*Pos),
                             /*Inclusive=*/false);
  if (K >= 0)
    return K == DefUseIndex::UseEvent;
  return isLiveOut(V, BB);
}

bool Liveness::isLiveBefore(RegId V, const BasicBlock *BB,
                            BasicBlock::InstList::const_iterator Pos) const {
  // Phi uses are not events of the phi's own block (they flow out of the
  // predecessor), but phi defs are — so the indexed answer matches the
  // old scan even when Pos sits at or before a phi group.
  const DefUseIndex &Idx = index();
  int K = Idx.firstEventFrom(V, BB->id(), Idx.ordinalOf(&*Pos),
                             /*Inclusive=*/true);
  if (K >= 0)
    return K == DefUseIndex::UseEvent;
  return isLiveOut(V, BB);
}

void Liveness::applyRenames(const std::vector<RegId> &RenameTo) {
  ++LAO_STAT(liveness, incremental_renames);
  size_t NV = Cfg.func().numValues();
  // Resolve chains (a -> b -> c) so every victim maps to its final
  // survivor.
  auto Resolve = [&](RegId V) {
    while (V < RenameTo.size() && RenameTo[V] != InvalidReg)
      V = RenameTo[V];
    return V;
  };
  // Victim list once, then O(blocks x victims) instead of scanning every
  // value id per block — merge rounds rename a handful of victims out of
  // hundreds of values.
  std::vector<std::pair<RegId, RegId>> Victims; // (victim, final survivor)
  for (RegId V = 0; V < RenameTo.size() && V < NV; ++V)
    if (RenameTo[V] != InvalidReg)
      Victims.emplace_back(V, Resolve(V));
  if (Victims.empty())
    return;
  for (size_t B = 0, NB = LiveIn.size(); B < NB; ++B) {
    for (auto [V, S] : Victims) {
      if (LiveIn[B].test(V)) {
        LiveIn[B].reset(V);
        LiveIn[B].set(S);
      }
      if (LiveOut[B].test(V)) {
        LiveOut[B].reset(V);
        LiveOut[B].set(S);
      }
    }
  }
  Index.reset(); // Underlying instructions are about to change / changed.
}

void Liveness::recomputeValues(const std::vector<RegId> &Vars) {
  if (Vars.empty())
    return;
  ++LAO_STAT(liveness, partial_recomputes);
  const Function &F = Cfg.func();
  size_t NB = F.numBlocks();
  size_t K = Vars.size();

  // Dense slot assignment for just the requested variables.
  std::vector<uint32_t> Slot(F.numValues(), UINT32_MAX);
  for (size_t I = 0; I < K; ++I)
    Slot[Vars[I]] = static_cast<uint32_t>(I);

  // Restricted K-bit per-block summaries, mirroring the constructor.
  std::vector<BitVector> UeUses(NB, BitVector(K));
  std::vector<BitVector> Defs(NB, BitVector(K));
  std::vector<BitVector> PhiOut(NB, BitVector(K));
  for (const auto &BB : F.blocks()) {
    BitVector &UE = UeUses[BB->id()];
    BitVector &DF = Defs[BB->id()];
    for (const Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        if (uint32_t S = Slot[I.def(0)]; S != UINT32_MAX)
          DF.set(S);
        for (unsigned U = 0; U < I.numUses(); ++U)
          if (uint32_t S = Slot[I.use(U)]; S != UINT32_MAX)
            PhiOut[I.incomingBlock(U)->id()].set(S);
        continue;
      }
      // ParCopy and plain instructions both read all uses before writing
      // any def for the purposes of upward exposure.
      for (RegId U : I.uses())
        if (uint32_t S = Slot[U]; S != UINT32_MAX && !DF.test(S))
          UE.set(S);
      for (RegId D : I.defs())
        if (uint32_t S = Slot[D]; S != UINT32_MAX)
          DF.set(S);
    }
  }

  std::vector<BitVector> In(NB, BitVector(K)), Out(NB, BitVector(K));
  const auto &Rpo = Cfg.rpo();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Rpo.rbegin(); It != Rpo.rend(); ++It) {
      BasicBlock *BB = *It;
      BitVector NewOut = PhiOut[BB->id()];
      for (BasicBlock *S : Cfg.succs(BB))
        NewOut.orWith(In[S->id()]);
      BitVector NewIn = NewOut;
      NewIn.subtract(Defs[BB->id()]);
      NewIn.orWith(UeUses[BB->id()]);
      if (!(NewOut == Out[BB->id()])) {
        Out[BB->id()] = std::move(NewOut);
        Changed = true;
      }
      if (!(NewIn == In[BB->id()])) {
        In[BB->id()] = std::move(NewIn);
        Changed = true;
      }
    }
  }

  // Write the restricted solution back into the full-width sets.
  for (size_t B = 0; B < NB; ++B) {
    for (size_t I = 0; I < K; ++I) {
      RegId V = Vars[I];
      if (In[B].test(I))
        LiveIn[B].set(V);
      else
        LiveIn[B].reset(V);
      if (Out[B].test(I))
        LiveOut[B].set(V);
      else
        LiveOut[B].reset(V);
    }
  }
  Index.reset();
}
