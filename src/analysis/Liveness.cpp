//===- Liveness.cpp - Block-level liveness with phi semantics ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "support/Stats.h"

using namespace lao;

Liveness::Liveness(const CFG &Cfg) : Cfg(Cfg) {
  const Function &F = Cfg.func();
  size_t NB = F.numBlocks();
  size_t NV = F.numValues();
  LiveIn.assign(NB, BitVector(NV));
  LiveOut.assign(NB, BitVector(NV));

  // Per-block upward-exposed uses and defs. Phi results count as defs of
  // their block (they are defined at entry); phi arguments are not uses of
  // the phi's block.
  std::vector<BitVector> UeUses(NB, BitVector(NV));
  std::vector<BitVector> Defs(NB, BitVector(NV));
  for (const auto &BB : F.blocks()) {
    BitVector &UE = UeUses[BB->id()];
    BitVector &DF = Defs[BB->id()];
    for (const Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        DF.set(I.def(0));
        continue;
      }
      if (I.isParCopy()) {
        // All sources read before any destination is written.
        for (RegId U : I.uses())
          if (!DF.test(U))
            UE.set(U);
        for (RegId D : I.defs())
          DF.set(D);
        continue;
      }
      for (RegId U : I.uses())
        if (!DF.test(U))
          UE.set(U);
      for (RegId D : I.defs())
        DF.set(D);
    }
  }

  // Phi argument contribution to predecessor live-out.
  std::vector<BitVector> PhiOut(NB, BitVector(NV));
  for (const auto &BB : F.blocks()) {
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      for (unsigned K = 0; K < I.numUses(); ++K)
        PhiOut[I.incomingBlock(K)->id()].set(I.use(K));
    }
  }

  // Iterate to fixpoint in post-order (reverse RPO) for fast convergence.
  ++LAO_STAT(liveness, analyses);
  const auto &Rpo = Cfg.rpo();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++LAO_STAT(liveness, fixpoint_iterations);
    for (auto It = Rpo.rbegin(); It != Rpo.rend(); ++It) {
      BasicBlock *BB = *It;
      BitVector Out = PhiOut[BB->id()];
      for (BasicBlock *S : Cfg.succs(BB))
        Out.orWith(LiveIn[S->id()]);
      BitVector In = Out;
      In.subtract(Defs[BB->id()]);
      In.orWith(UeUses[BB->id()]);
      if (!(Out == LiveOut[BB->id()])) {
        LiveOut[BB->id()] = std::move(Out);
        Changed = true;
      }
      if (!(In == LiveIn[BB->id()])) {
        LiveIn[BB->id()] = std::move(In);
        Changed = true;
      }
    }
  }
}

bool Liveness::isLiveAfter(RegId V, const BasicBlock *BB,
                           BasicBlock::InstList::const_iterator Pos) const {
  // Scan forward from the instruction after Pos: V is live iff it is used
  // before being fully redefined, or it survives to the block end.
  auto It = Pos;
  ++It;
  for (auto End = BB->instructions().end(); It != End; ++It) {
    const Instruction &I = *It;
    assert(!I.isPhi() && "phi after non-phi position");
    for (RegId U : I.uses())
      if (U == V)
        return true;
    for (RegId D : I.defs())
      if (D == V)
        return false; // Redefined before any use.
  }
  return isLiveOut(V, BB);
}

bool Liveness::isLiveBefore(RegId V, const BasicBlock *BB,
                            BasicBlock::InstList::const_iterator Pos) const {
  for (auto It = Pos, End = BB->instructions().end(); It != End; ++It) {
    const Instruction &I = *It;
    for (RegId U : I.uses())
      if (U == V && !I.isPhi())
        return true;
    for (RegId D : I.defs())
      if (D == V)
        return false;
  }
  return isLiveOut(V, BB);
}
