//===- AnalysisManager.cpp - Caching per-function analysis manager -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"

#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace lao;

bool AnalysisManager::VerifyOnInvalidate = false;

const CFG &AnalysisManager::cfg() {
  if (!TheCFG) {
    ++LAO_STAT(analysis, cfg_builds);
    TheCFG = std::make_unique<CFG>(*F);
  }
  return *TheCFG;
}

const DominatorTree &AnalysisManager::domTree() {
  if (!DT) {
    ++LAO_STAT(analysis, domtree_builds);
    DT = std::make_unique<DominatorTree>(cfg());
  }
  return *DT;
}

const LoopInfo &AnalysisManager::loopInfo() {
  if (!LI) {
    ++LAO_STAT(analysis, loopinfo_builds);
    LI = std::make_unique<LoopInfo>(cfg(), domTree());
  }
  return *LI;
}

Liveness &AnalysisManager::liveness() {
  if (!LV)
    LV = std::make_unique<Liveness>(cfg());
  return *LV;
}

const LivenessQuery &AnalysisManager::livenessQuery() {
  if (!LQ)
    LQ = std::make_unique<LivenessQuery>(cfg(), domTree());
  return *LQ;
}

InterferenceGraph &AnalysisManager::interference() {
  if (!IG)
    IG = std::make_unique<InterferenceGraph>(*F, liveness());
  return *IG;
}

void AnalysisManager::reset(Function &NewF) {
  ++LAO_STAT(analysis, manager_resets);
  bool Dropped = TheCFG || DT || LI || LV || LQ || IG;
  if (Dropped)
    ++Epoch;
  IG.reset();
  LQ.reset();
  LV.reset();
  LI.reset();
  DT.reset();
  TheCFG.reset();
  F = &NewF;
}

bool AnalysisManager::isCached(AnalysisKind K) const {
  switch (K) {
  case AnalysisKind::CFG:
    return TheCFG != nullptr;
  case AnalysisKind::DomTree:
    return DT != nullptr;
  case AnalysisKind::LoopInfo:
    return LI != nullptr;
  case AnalysisKind::Liveness:
    return LV != nullptr;
  case AnalysisKind::LivenessQuery:
    return LQ != nullptr;
  case AnalysisKind::Interference:
    return IG != nullptr;
  }
  return false;
}

void AnalysisManager::invalidate(const PreservedAnalyses &PA) {
  ++LAO_STAT(analysis, invalidations);
  // Dependency closure. CFG is the root: Liveness and DomTree hold
  // references into the CFG object, LivenessQuery into the DomTree, the
  // InterferenceGraph is derived from Liveness, and LoopInfo from the
  // DomTree.
  bool DropCFG = !PA.isPreserved(AnalysisKind::CFG);
  bool DropDT = DropCFG || !PA.isPreserved(AnalysisKind::DomTree);
  bool DropLI = DropDT || !PA.isPreserved(AnalysisKind::LoopInfo);
  bool DropLV = DropCFG || !PA.isPreserved(AnalysisKind::Liveness);
  bool DropLQ = DropDT || !PA.isPreserved(AnalysisKind::LivenessQuery);
  bool DropIG = DropLV || !PA.isPreserved(AnalysisKind::Interference);

  bool Dropped = (DropIG && IG) || (DropLQ && LQ) || (DropLV && LV) ||
                 (DropLI && LI) || (DropDT && DT) || (DropCFG && TheCFG);
  if (Dropped)
    ++Epoch;

  if (DropIG)
    IG.reset();
  if (DropLQ)
    LQ.reset();
  if (DropLV)
    LV.reset();
  if (DropLI)
    LI.reset();
  if (DropDT)
    DT.reset();
  if (DropCFG)
    TheCFG.reset();

  if (VerifyOnInvalidate) {
    std::string Diag = verify();
    if (!Diag.empty()) {
      std::fprintf(stderr,
                   "AnalysisManager: pass lied about preserved analyses:\n%s\n",
                   Diag.c_str());
      std::abort();
    }
  }
}

std::string AnalysisManager::verify() const {
  std::ostringstream Diag;
  size_t NB = F->numBlocks();

  if (TheCFG) {
    if (TheCFG->rpo().size() != NB)
      return "CFG stale: block count changed since it was built";
    CFG Fresh(*F);
    for (const auto &BB : F->blocks()) {
      const auto &CachedSuccs = TheCFG->succs(BB.get());
      const auto &FreshSuccs = Fresh.succs(BB.get());
      if (CachedSuccs.size() != FreshSuccs.size()) {
        Diag << "CFG stale: block b" << BB->id() << " successor count "
             << CachedSuccs.size() << " != " << FreshSuccs.size();
        return Diag.str();
      }
      for (size_t I = 0; I < CachedSuccs.size(); ++I)
        if (CachedSuccs[I] != FreshSuccs[I]) {
          Diag << "CFG stale: block b" << BB->id() << " successor " << I
               << " differs";
          return Diag.str();
        }
      if (TheCFG->isReachable(BB.get()) != Fresh.isReachable(BB.get())) {
        Diag << "CFG stale: block b" << BB->id() << " reachability differs";
        return Diag.str();
      }
    }
  }
  if (DT) {
    DominatorTree FreshDT(*TheCFG);
    for (const auto &BB : F->blocks())
      if (DT->idom(BB.get()) != FreshDT.idom(BB.get())) {
        Diag << "DominatorTree stale: idom(b" << BB->id() << ") differs";
        return Diag.str();
      }
  }
  if (LI) {
    LoopInfo FreshLI(*TheCFG, *DT);
    for (const auto &BB : F->blocks())
      if (LI->depth(BB.get()) != FreshLI.depth(BB.get()) ||
          LI->isHeader(BB.get()) != FreshLI.isHeader(BB.get())) {
        Diag << "LoopInfo stale: loop data of b" << BB->id() << " differs";
        return Diag.str();
      }
  }
  if (LV) {
    Liveness FreshLV(*TheCFG);
    for (const auto &BB : F->blocks())
      if (!(LV->liveIn(BB.get()) == FreshLV.liveIn(BB.get())) ||
          !(LV->liveOut(BB.get()) == FreshLV.liveOut(BB.get()))) {
        Diag << "Liveness stale: live sets of b" << BB->id() << " differ";
        return Diag.str();
      }
  }
  if (LQ) {
    Liveness FreshLV(*TheCFG);
    for (const auto &BB : F->blocks())
      for (RegId V = 0; V < F->numValues(); ++V)
        if (LQ->isLiveIn(V, BB.get()) != FreshLV.isLiveIn(V, BB.get()) ||
            LQ->isLiveOut(V, BB.get()) != FreshLV.isLiveOut(V, BB.get())) {
          Diag << "LivenessQuery stale: v" << V << " at b" << BB->id()
               << " differs from dense liveness";
          return Diag.str();
        }
  }
  if (IG) {
    // A merged-into graph legitimately differs from a fresh build (the
    // coalescer mutates it), so only check it when it has not been merged
    // since construction: every fresh edge must be present. Missing
    // cached edges are the dangerous direction (unsound coalescing).
    Liveness FreshLV(*TheCFG);
    InterferenceGraph FreshIG(*F, FreshLV);
    for (RegId A = 0; A < F->numValues(); ++A)
      for (RegId B : FreshIG.neighbors(A))
        if (B > A && !IG->interfere(A, B)) {
          Diag << "InterferenceGraph stale: missing edge v" << A << " -- v"
               << B;
          return Diag.str();
        }
  }
  return std::string();
}
