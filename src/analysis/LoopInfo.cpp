//===- LoopInfo.cpp - Natural loop nesting -----------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <map>
#include <set>

using namespace lao;

LoopInfo::LoopInfo(const CFG &Cfg, const DominatorTree &DT) {
  const Function &F = Cfg.func();
  size_t N = F.numBlocks();
  Depths.assign(N, 0);
  Header.assign(N, false);

  // Collect natural loop bodies, merged per header.
  std::map<BasicBlock *, std::set<BasicBlock *>> Loops;
  for (const auto &BB : F.blocks()) {
    if (!Cfg.isReachable(BB.get()))
      continue;
    for (BasicBlock *S : Cfg.succs(BB.get())) {
      if (!DT.dominates(S, BB.get()))
        continue;
      // Back edge BB -> S: natural loop = S plus all blocks that reach BB
      // without passing through S.
      std::set<BasicBlock *> &Body = Loops[S];
      Body.insert(S);
      std::vector<BasicBlock *> Work;
      if (!Body.count(BB.get())) {
        Body.insert(BB.get());
        Work.push_back(BB.get());
      }
      while (!Work.empty()) {
        BasicBlock *Cur = Work.back();
        Work.pop_back();
        if (Cur == S)
          continue;
        for (BasicBlock *P : Cfg.preds(Cur))
          if (Cfg.isReachable(P) && Body.insert(P).second)
            Work.push_back(P);
      }
    }
  }

  NumLoops = static_cast<unsigned>(Loops.size());
  for (auto &[Head, Body] : Loops) {
    Header[Head->id()] = true;
    for (BasicBlock *Member : Body)
      ++Depths[Member->id()];
  }
}
