//===- Dominators.h - Dominator tree and dominance frontiers ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree built with the Cooper-Harvey-Kennedy "simple, fast
/// dominance" algorithm, plus dominance frontiers (Cytron et al.) used by
/// SSA construction. Instruction-level dominance queries (needed by the
/// interference tests of the paper's Variable_kills) are provided through
/// dominatesAt.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_DOMINATORS_H
#define LAO_ANALYSIS_DOMINATORS_H

#include "ir/CFG.h"
#include "ir/Function.h"

#include <vector>

namespace lao {

/// Dominator tree over the reachable blocks of a function.
class DominatorTree {
public:
  explicit DominatorTree(const CFG &Cfg);

  /// Immediate dominator of \p BB (nullptr for the entry and for
  /// unreachable blocks).
  BasicBlock *idom(const BasicBlock *BB) const { return Idom[BB->id()]; }

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Returns true if \p A strictly dominates \p B.
  bool strictlyDominates(const BasicBlock *A, const BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  /// Depth of \p BB in the dominator tree (entry = 0; unreachable = 0).
  unsigned depth(const BasicBlock *BB) const { return Depth[BB->id()]; }

  /// DFS preorder number of \p BB in the dominator tree (1-based; 0 for
  /// unreachable blocks). Unique per reachable block, and ordered so that
  /// a dominator always numbers lower than everything it dominates —
  /// sorting defs by this key is the backbone of the dominance-order
  /// class-interference sweep (outofssa/ClassInterference.h).
  unsigned preorderNumber(const BasicBlock *BB) const {
    return DfsIn[BB->id()];
  }

  /// Closing DFS clock of \p BB's dominator subtree: together with
  /// preorderNumber it bounds the half-open preorder interval of the
  /// blocks \p BB dominates (0 for unreachable blocks).
  unsigned preorderLimit(const BasicBlock *BB) const {
    return DfsOut[BB->id()];
  }

  /// O(1) tree-ancestor query: true when \p A is \p BB itself or a
  /// dominator-tree ancestor of it. Identical to dominates(); the name
  /// documents call sites that reason about tree shape, not dominance.
  bool isAncestor(const BasicBlock *A, const BasicBlock *B) const {
    return dominates(A, B);
  }

  /// Children of \p BB in the dominator tree.
  const std::vector<BasicBlock *> &children(const BasicBlock *BB) const {
    return Children[BB->id()];
  }

  /// The reachable blocks in dominator-tree DFS preorder — the sequence
  /// behind preorderNumber, materialized: every dominator appears before
  /// all blocks it dominates. Walking defs in this order yields a
  /// perfect elimination order of the (chordal) SSA interference graph;
  /// the chordal register allocator seeds its maximum cardinality search
  /// with it (regalloc/Chordal.cpp, docs/REGALLOC.md).
  const std::vector<BasicBlock *> &preorderBlocks() const { return Preorder; }

  const CFG &cfg() const { return Cfg; }

private:
  const CFG &Cfg;
  std::vector<BasicBlock *> Idom;
  std::vector<unsigned> Depth;
  std::vector<std::vector<BasicBlock *>> Children;
  // Dominance via DFS-in/out interval on the dominator tree.
  std::vector<unsigned> DfsIn;
  std::vector<unsigned> DfsOut;
  std::vector<BasicBlock *> Preorder;
};

/// Dominance frontiers (per block) for SSA construction.
class DominanceFrontier {
public:
  DominanceFrontier(const CFG &Cfg, const DominatorTree &DT);

  const std::vector<BasicBlock *> &frontier(const BasicBlock *BB) const {
    return Frontier[BB->id()];
  }

private:
  std::vector<std::vector<BasicBlock *>> Frontier;
};

} // namespace lao

#endif // LAO_ANALYSIS_DOMINATORS_H
