//===- Dominators.cpp - Dominator tree and dominance frontiers --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace lao;

DominatorTree::DominatorTree(const CFG &Cfg) : Cfg(Cfg) {
  const Function &F = Cfg.func();
  size_t N = F.numBlocks();
  Idom.assign(N, nullptr);
  Depth.assign(N, 0);
  Children.resize(N);
  DfsIn.assign(N, 0);
  DfsOut.assign(N, 0);
  if (N == 0)
    return;

  // Cooper-Harvey-Kennedy iteration over reverse post-order.
  const std::vector<BasicBlock *> &Rpo = Cfg.rpo();
  BasicBlock *Entry = &Cfg.func().entry();
  Idom[Entry->id()] = Entry;

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (Cfg.rpoIndex(A) > Cfg.rpoIndex(B))
        A = Idom[A->id()];
      while (Cfg.rpoIndex(B) > Cfg.rpoIndex(A))
        B = Idom[B->id()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      if (BB == Entry || !Cfg.isReachable(BB))
        continue;
      BasicBlock *NewIdom = nullptr;
      for (BasicBlock *P : Cfg.preds(BB)) {
        if (!Idom[P->id()])
          continue; // Not yet processed or unreachable.
        NewIdom = NewIdom ? Intersect(P, NewIdom) : P;
      }
      if (NewIdom && Idom[BB->id()] != NewIdom) {
        Idom[BB->id()] = NewIdom;
        Changed = true;
      }
    }
  }

  // Entry's idom is conventionally null for tree purposes.
  Idom[Entry->id()] = nullptr;

  // Build children lists and DFS numbering for O(1) dominance queries.
  for (const auto &BB : F.blocks())
    if (Idom[BB->id()])
      Children[Idom[BB->id()]->id()].push_back(BB.get());

  unsigned Clock = 0;
  Preorder.reserve(N);
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  Stack.push_back({Entry, 0});
  DfsIn[Entry->id()] = ++Clock;
  Preorder.push_back(Entry);
  while (!Stack.empty()) {
    auto &[BB, NextChild] = Stack.back();
    auto &Kids = Children[BB->id()];
    if (NextChild < Kids.size()) {
      BasicBlock *Child = Kids[NextChild++];
      DfsIn[Child->id()] = ++Clock;
      Preorder.push_back(Child);
      Depth[Child->id()] = Depth[BB->id()] + 1;
      Stack.push_back({Child, 0});
      continue;
    }
    DfsOut[BB->id()] = ++Clock;
    Stack.pop_back();
  }
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (A == B)
    return true;
  // Unreachable blocks dominate nothing and are dominated by nothing.
  if (DfsIn[A->id()] == 0 || DfsIn[B->id()] == 0)
    return false;
  return DfsIn[A->id()] <= DfsIn[B->id()] &&
         DfsOut[B->id()] <= DfsOut[A->id()];
}

DominanceFrontier::DominanceFrontier(const CFG &Cfg,
                                     const DominatorTree &DT) {
  const Function &F = Cfg.func();
  Frontier.resize(F.numBlocks());
  for (const auto &BB : F.blocks()) {
    const auto &Preds = Cfg.preds(BB.get());
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *P : Preds) {
      if (!Cfg.isReachable(P))
        continue;
      BasicBlock *Runner = P;
      while (Runner && Runner != DT.idom(BB.get())) {
        auto &Fr = Frontier[Runner->id()];
        if (std::find(Fr.begin(), Fr.end(), BB.get()) == Fr.end())
          Fr.push_back(BB.get());
        Runner = DT.idom(Runner);
      }
    }
  }
}
