//===- LoopInfo.h - Natural loop nesting ------------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and per-block nesting depth. The paper's
/// algorithm visits confluence points "based on an inner to outer loop
/// traversal" (Section 3) and Table 5 weighs each move instruction by
/// 5^depth; both consume this analysis.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_ANALYSIS_LOOPINFO_H
#define LAO_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <vector>

namespace lao {

/// Per-block natural loop nesting information.
class LoopInfo {
public:
  LoopInfo(const CFG &Cfg, const DominatorTree &DT);

  /// Loop nesting depth of \p BB (0 = not in any loop).
  unsigned depth(const BasicBlock *BB) const { return Depths[BB->id()]; }

  /// Returns true if \p BB is a natural loop header.
  bool isHeader(const BasicBlock *BB) const { return Header[BB->id()]; }

  /// Number of distinct loop headers found.
  unsigned numLoops() const { return NumLoops; }

private:
  std::vector<unsigned> Depths;
  std::vector<bool> Header;
  unsigned NumLoops = 0;
};

} // namespace lao

#endif // LAO_ANALYSIS_LOOPINFO_H
