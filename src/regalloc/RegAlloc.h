//===- RegAlloc.h - Chaitin-Briggs register allocation ----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chaitin-Briggs graph-coloring register allocator for the non-SSA
/// machine code produced by the out-of-SSA pipelines. This implements the
/// paper's *downstream consumer*: its [LIM4] remark observes that under
/// register pressure, coalescing decisions change the colorability of the
/// interference graph — this allocator makes that effect measurable
/// (bench_regpressure).
///
/// Design:
///  * allocatable classes: general-purpose registers R0..R7 for all
///    virtuals except SP (dedicated, never allocated); P0..P3 join the
///    pool as general registers (the mini-LAI ISA does not restrict
///    pointer operands);
///  * physical operands are precolored nodes;
///  * Briggs-style optimistic simplify/select; potential spill choice by
///    lowest (use count weighted by 5^depth) / degree;
///  * spilling rewrites the function with a store after each definition
///    and a load before each use, through frame slots addressed relative
///    to SP, then the allocator retries (spill temps have tiny ranges);
///  * the result is verified structurally (no virtual registers remain)
///    and behaviourally (the interpreter oracle, in tests).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_REGALLOC_REGALLOC_H
#define LAO_REGALLOC_REGALLOC_H

#include "ir/Function.h"

namespace lao {

struct RegAllocOptions {
  /// Number of general-purpose registers available (taken from
  /// R0..R7, P0..P3 in that order). Lowering this creates the "strong
  /// register pressure" regime of the paper's [LIM4].
  unsigned NumRegs = 12;
  /// Hard cap on build/simplify/select rounds. Each round spills at
  /// least one value, so convergence is the norm within a handful of
  /// rounds; the cap turns any pathological pressure setting (or a
  /// future spill-choice bug) into a structured
  /// `RegAllocResult{Ok=false}` instead of an unbounded retry loop —
  /// mandatory now that the allocator can run inside a long-lived
  /// compile service. 0 is normalized to 1.
  unsigned MaxRounds = 32;
};

struct RegAllocResult {
  bool Ok = false;           ///< False if allocation failed (see Error).
  std::string Error;
  unsigned NumRounds = 0;    ///< Build/simplify/select iterations.
  unsigned NumSpilled = 0;   ///< Distinct values spilled to the stack.
  unsigned NumSpillLoads = 0;
  unsigned NumSpillStores = 0;
  unsigned NumRegsUsed = 0;  ///< Distinct physical registers assigned.
  unsigned FrameBytes = 0;   ///< Spill frame size.
};

/// Allocates every virtual register of non-SSA \p F (no phis, no
/// parallel copies) to a physical register, inserting spill code as
/// needed. Mutates F; afterwards all operands are physical.
RegAllocResult allocateRegisters(Function &F,
                                 const RegAllocOptions &Opts = {});

/// Returns the virtual registers still referenced by \p F (empty after
/// a successful allocation).
std::vector<RegId> collectVirtualRegs(const Function &F);

} // namespace lao

#endif // LAO_REGALLOC_REGALLOC_H
