//===- RegAlloc.h - Register allocation strategy tier -----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation for the non-SSA machine code produced by the
/// out-of-SSA pipelines. This implements the paper's *downstream
/// consumer*: its [LIM4] remark observes that under register pressure,
/// coalescing decisions change the colorability of the interference
/// graph — the allocators make that effect measurable (bench_regpressure).
///
/// The tier is two orthogonal axes, selected through RegAllocOptions:
///
///  * **Allocator** (AllocatorStrategy.h) — how a round colors the
///    interference graph:
///      - `chaitin-briggs`: Briggs-style optimistic simplify/select;
///        potential spill choice by lowest (occurrences weighted
///        5^loopdepth) / degree;
///      - `chordal`: SSA-flavoured greedy coloring in a maximum
///        cardinality search (MCS) order seeded by dominance
///        (DominatorTree::preorderBlocks), with biased coloring that
///        prefers the colors of residual move partners — the affinities
///        the coalescer could not merge.
///  * **Spill model** (SpillModel.h) — how a failed round rewrites the
///    function:
///      - `spill-everywhere`: a store after each definition, a load
///        before each use;
///      - `load-store-opt`: per-block load reuse (a reload or the def's
///        store temp forwards to later uses), redundant-store
///        elimination, and dropping stores of values never reloaded.
///
/// Shared by every combination: allocatable classes are the
/// general-purpose registers R0..R7 for all virtuals except SP
/// (dedicated, never allocated); P0..P3 join the pool as general
/// registers (the mini-LAI ISA does not restrict pointer operands);
/// physical operands are precolored nodes; spill slots are absolute
/// addresses assigned deterministically (ascending RegId per round);
/// the result is verified structurally (no virtual registers remain)
/// and behaviourally (the interpreter oracle, in tests).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_REGALLOC_REGALLOC_H
#define LAO_REGALLOC_REGALLOC_H

#include "ir/Function.h"

#include <optional>

namespace lao {

/// Which coloring strategy a round uses (see file comment).
enum class AllocatorKind {
  ChaitinBriggs,
  Chordal,
};

/// How spill decisions are materialized as loads/stores (see file
/// comment).
enum class SpillModelKind {
  SpillEverywhere,
  LoadStoreOpt,
};

struct RegAllocOptions {
  AllocatorKind Allocator = AllocatorKind::ChaitinBriggs;
  SpillModelKind SpillMode = SpillModelKind::SpillEverywhere;
  /// Number of general-purpose registers available (taken from
  /// R0..R7, P0..P3 in that order). Lowering this creates the "strong
  /// register pressure" regime of the paper's [LIM4].
  unsigned NumRegs = 12;
  /// Hard cap on build/simplify/select rounds. Each round spills at
  /// least one value, so convergence is the norm within a handful of
  /// rounds; the cap turns any pathological pressure setting (or a
  /// future spill-choice bug) into a structured
  /// `RegAllocResult{Ok=false}` instead of an unbounded retry loop —
  /// mandatory now that the allocator can run inside a long-lived
  /// compile service. 0 is normalized to 1.
  unsigned MaxRounds = 32;
};

/// Wire/CLI name of \p K ("chaitin-briggs", "chordal").
const char *allocatorName(AllocatorKind K);

/// Wire/CLI name of \p K ("spill-everywhere", "load-store-opt").
const char *spillModelName(SpillModelKind K);

/// Parses an allocator preset "<allocator>[/<spill-model>]" — e.g.
/// "chordal", "chaitin-briggs/load-store-opt" — into options carrying
/// the default NumRegs/MaxRounds. Returns std::nullopt for an unknown
/// name; use this from anything that parses user input (mirrors
/// pipelinePresetOpt).
std::optional<RegAllocOptions> regAllocPresetOpt(const std::string &Name);

/// Same, but unknown names are a fatal error in every build type
/// (message to stderr, then abort) — callers pass compile-time
/// constants; user-facing code goes through regAllocPresetOpt
/// (mirrors pipelinePreset).
RegAllocOptions regAllocPreset(const std::string &Name);

struct RegAllocResult {
  bool Ok = false;           ///< False if allocation failed (see Error).
  std::string Error;
  unsigned NumRounds = 0;    ///< Build/simplify/select iterations.
  unsigned NumSpilled = 0;   ///< Distinct values spilled to the stack.
  unsigned NumSpillLoads = 0;
  unsigned NumSpillStores = 0;
  unsigned NumRegsUsed = 0;  ///< Distinct physical registers assigned.
  unsigned FrameBytes = 0;   ///< Spill frame size (8 bytes per slot).
};

/// Allocates every virtual register of non-SSA \p F (no phis, no
/// parallel copies) to a physical register, inserting spill code as
/// needed. Mutates F; afterwards all operands are physical. A thin
/// driver over the AllocatorStrategy / SpillModel selected by \p Opts.
RegAllocResult allocateRegisters(Function &F,
                                 const RegAllocOptions &Opts = {});

/// Returns the virtual registers still referenced by \p F (empty after
/// a successful allocation), in ascending RegId order.
std::vector<RegId> collectVirtualRegs(const Function &F);

} // namespace lao

#endif // LAO_REGALLOC_REGALLOC_H
