//===- AllocatorStrategy.h - Coloring strategy interface --------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The internal seam between the allocateRegisters driver and the
/// concrete coloring strategies. One strategy call is one
/// build/.../select round over *fresh* analyses of the (possibly
/// spill-rewritten) function; the driver owns the retry loop, the spill
/// model, and the final color rewrite, so a strategy only decides which
/// virtual gets which physical register — or which virtuals to spill.
///
/// Contract for tryColor:
///  * analyses (CFG, Liveness, InterferenceGraph, spill costs) are
///    built from scratch inside the call — the function changed since
///    the previous round;
///  * on success (return true) ColorOut maps every virtual register of
///    F to a member of Pool;
///  * on failure (return false) SpillOut names the virtuals to spill
///    this round. If any of them is in NoSpill (a temp the spill model
///    already created, which must not recursively spill under the
///    spill-everywhere discipline), the driver reports the
///    "instruction needs more registers" failure;
///  * both containers are cleared by the callee; determinism is part
///    of the contract (no hash-map iteration may leak into decisions).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_REGALLOC_ALLOCATORSTRATEGY_H
#define LAO_REGALLOC_ALLOCATORSTRATEGY_H

#include "regalloc/RegAlloc.h"

#include <map>
#include <memory>
#include <set>

namespace lao {

class CFG;

class AllocatorStrategy {
public:
  virtual ~AllocatorStrategy() = default;

  /// One coloring round (see file comment).
  virtual bool tryColor(Function &F, const std::vector<RegId> &Pool,
                        const std::set<RegId> &NoSpill,
                        std::map<RegId, RegId> &ColorOut,
                        std::vector<RegId> &SpillOut) = 0;
};

std::unique_ptr<AllocatorStrategy> makeChaitinBriggsStrategy();
std::unique_ptr<AllocatorStrategy> makeChordalStrategy();
std::unique_ptr<AllocatorStrategy> makeAllocatorStrategy(AllocatorKind K);

/// Shared build infrastructure (RegAlloc.cpp).
///
/// The allocatable register pool, in assignment preference order:
/// R0..R7 then P0..P3, truncated to \p NumRegs (at most 12).
std::vector<RegId> allocatablePool(unsigned NumRegs);

/// Spill-cost weights: occurrences weighted 5^loopdepth (the same
/// static frequency model as the paper's Table 5).
std::map<RegId, double> spillCosts(const Function &F, const CFG &Cfg);

} // namespace lao

#endif // LAO_REGALLOC_ALLOCATORSTRATEGY_H
