//===- ChaitinBriggs.cpp - Briggs optimistic graph coloring --------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The classic build/simplify/select strategy, unchanged from the
// original single-allocator implementation: its decisions (and hence
// every committed spills/spill_accesses measurement taken with it) are
// bit-identical across the strategy-tier refactor, which
// scripts/check_bench_regression.py enforces against the committed
// BENCH_regpressure.json.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocatorStrategy.h"

#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"

using namespace lao;

namespace {

class ChaitinBriggsStrategy : public AllocatorStrategy {
public:
  bool tryColor(Function &F, const std::vector<RegId> &Pool,
                const std::set<RegId> &NoSpill,
                std::map<RegId, RegId> &ColorOut,
                std::vector<RegId> &SpillOut) override {
    CFG Cfg(F);
    Liveness LV(Cfg);
    InterferenceGraph IG(F, LV);
    std::map<RegId, double> Cost = spillCosts(F, Cfg);

    std::set<RegId> PoolSet(Pool.begin(), Pool.end());
    std::vector<RegId> Nodes = collectVirtualRegs(F);
    unsigned K = static_cast<unsigned>(Pool.size());

    // Current degree counting both virtual neighbours and allocatable
    // physical neighbours (precolored).
    std::map<RegId, unsigned> Degree;
    std::set<RegId> Remaining(Nodes.begin(), Nodes.end());
    for (RegId V : Nodes) {
      unsigned D = 0;
      for (RegId N : IG.neighbors(V))
        if (Remaining.count(N) || PoolSet.count(N))
          ++D;
      Degree[V] = D;
    }

    // Simplify with optimistic (Briggs) spill candidates.
    std::vector<std::pair<RegId, bool>> Stack; // (node, isSpillCandidate)
    while (!Remaining.empty()) {
      RegId Pick = InvalidReg;
      for (RegId V : Remaining)
        if (Degree[V] < K && (Pick == InvalidReg ||
                              Degree[V] > Degree[Pick])) // Heuristic: push
          Pick = V; // high-degree-but-colorable first, color it late.
      bool Candidate = false;
      if (Pick == InvalidReg) {
        // All remaining are high degree: choose the cheapest to spill,
        // push optimistically.
        double Best = 0;
        for (RegId V : Remaining) {
          if (NoSpill.count(V))
            continue;
          double Ratio = Cost[V] / (1.0 + Degree[V]);
          if (Pick == InvalidReg || Ratio < Best) {
            Pick = V;
            Best = Ratio;
          }
        }
        if (Pick == InvalidReg)
          Pick = *Remaining.begin(); // Only no-spill temps left: force one.
        Candidate = true;
      }
      Stack.push_back({Pick, Candidate});
      Remaining.erase(Pick);
      for (RegId N : IG.neighbors(Pick)) {
        auto It = Degree.find(N);
        if (It != Degree.end() && It->second > 0)
          --It->second;
      }
    }

    // Select.
    ColorOut.clear();
    SpillOut.clear();
    while (!Stack.empty()) {
      auto [V, WasCandidate] = Stack.back();
      Stack.pop_back();
      std::set<RegId> Forbidden;
      for (RegId N : IG.neighbors(V)) {
        if (PoolSet.count(N))
          Forbidden.insert(N);
        auto It = ColorOut.find(N);
        if (It != ColorOut.end())
          Forbidden.insert(It->second);
      }
      RegId Color = InvalidReg;
      for (RegId R : Pool)
        if (!Forbidden.count(R)) {
          Color = R;
          break;
        }
      if (Color == InvalidReg) {
        (void)WasCandidate;
        SpillOut.push_back(V);
        continue;
      }
      ColorOut[V] = Color;
    }
    return SpillOut.empty();
  }
};

} // namespace

std::unique_ptr<AllocatorStrategy> lao::makeChaitinBriggsStrategy() {
  return std::make_unique<ChaitinBriggsStrategy>();
}
