//===- SpillModel.cpp - Pluggable spill code insertion -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillModel.h"

#include "support/Stats.h"

#include <algorithm>

using namespace lao;

void SpillModel::assignSlots(const std::vector<RegId> &Spilled,
                             RegAllocResult &Result) {
  // New values get slots in ascending RegId order, whatever order the
  // strategy produced them in: the frame layout (and FrameBytes) must
  // not depend on select-stack pops or set iteration.
  std::vector<RegId> Fresh;
  for (RegId V : Spilled)
    if (!SlotOf.count(V))
      Fresh.push_back(V);
  std::sort(Fresh.begin(), Fresh.end());
  Fresh.erase(std::unique(Fresh.begin(), Fresh.end()), Fresh.end());
  for (RegId V : Fresh) {
    SlotOf[V] = 0x80000 + 8 * static_cast<int64_t>(NextSlot++);
    ++Result.NumSpilled;
    ++LAO_STAT(regalloc, spilled_values);
  }
}

namespace {

//===----------------------------------------------------------------------===//
// SpillEverywhere
//===----------------------------------------------------------------------===//

/// The classic model: rewrites \p F to keep each spilled register in a
/// stack slot with a store after every def and a load before every use,
/// through fresh short-lived temporaries (all NoSpill — their ranges
/// are already minimal).
class SpillEverywhere : public SpillModel {
public:
  void insertSpillCode(Function &F, const std::vector<RegId> &Spilled,
                       std::set<RegId> &NoSpill,
                       RegAllocResult &Result) override {
    std::set<RegId> SpillSet(Spilled.begin(), Spilled.end());
    assignSlots(Spilled, Result);

    auto AddrOf = [&](RegId V, BasicBlock::InstList &List,
                      BasicBlock::InstList::iterator Pos) {
      RegId Addr = F.makeVirtual("sl.addr");
      NoSpill.insert(Addr);
      Instruction Lea(Opcode::Make);
      Lea.addDef(Addr);
      Lea.setImm(SlotOf[V]);
      List.insert(Pos, std::move(Lea));
      return Addr;
    };

    for (const auto &BB : F.blocks()) {
      auto &List = BB->instructions();
      for (auto It = List.begin(); It != List.end(); ++It) {
        Instruction &I = *It;
        // Loads before uses: one reload temp per instruction per value.
        std::map<RegId, RegId> ReloadedAs;
        for (unsigned K = 0; K < I.numUses(); ++K) {
          RegId V = I.use(K);
          if (!SpillSet.count(V))
            continue;
          auto Found = ReloadedAs.find(V);
          if (Found == ReloadedAs.end()) {
            // The reload register doubles as the address register
            // (tmp = make slot; tmp = load tmp) to halve the register
            // pressure of spill code.
            RegId Tmp = F.makeVirtual(F.valueName(V) + ".ld");
            NoSpill.insert(Tmp);
            Instruction Lea(Opcode::Make);
            Lea.addDef(Tmp);
            Lea.setImm(SlotOf[V]);
            List.insert(It, std::move(Lea));
            Instruction Ld(Opcode::Load);
            Ld.addDef(Tmp);
            Ld.addUse(Tmp);
            List.insert(It, std::move(Ld));
            ++Result.NumSpillLoads;
            Found = ReloadedAs.emplace(V, Tmp).first;
          }
          I.setUse(K, Found->second);
        }
        // Stores after defs.
        for (unsigned K = 0; K < I.numDefs(); ++K) {
          RegId V = I.def(K);
          if (!SpillSet.count(V))
            continue;
          RegId Tmp = F.makeVirtual(F.valueName(V) + ".st");
          NoSpill.insert(Tmp);
          I.setDef(K, Tmp);
          auto After = std::next(It);
          RegId Addr = AddrOf(V, List, After);
          Instruction St(Opcode::Store);
          St.addUse(Addr);
          St.addUse(Tmp);
          List.insert(After, std::move(St));
          ++Result.NumSpillStores;
          // Skip over the inserted address+store so they are not
          // re-processed as spill sites.
          ++It;
          ++It;
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// LoadStoreOpt
//===----------------------------------------------------------------------===//

/// SpillEverywhere plus three access-removing optimizations, all
/// justified by one invariant: inside a block, once a temp holds a
/// spilled value (from a reload or from the def feeding a store), the
/// model never emits another load of that value in the block — so the
/// slot is provably unread between any two same-block stores, and a
/// value reloaded nowhere in the whole round has a write-only slot.
///
/// Forwarding can defeat a spill: when every use of a value sits in its
/// def block, the def temp forwards to all of them, the (dead) store is
/// dropped, and the value was merely *renamed* — same live range, no
/// pressure relief. Two rules keep the round loop convergent anyway:
/// such a rename stays spillable (it is not a minimal-range temp), and
/// when a temp this model itself created is selected for spilling in a
/// later round it is rewritten with classic spill-everywhere code (no
/// forwarding), whose fresh temps all have single-instruction ranges.
class LoadStoreOpt : public SpillModel {
  /// Every spillable temp created by an earlier round's rewrite; a
  /// member showing up in \p Spilled again takes the no-forwarding
  /// path above.
  std::set<RegId> OwnTemps;

public:
  void insertSpillCode(Function &F, const std::vector<RegId> &Spilled,
                       std::set<RegId> &NoSpill,
                       RegAllocResult &Result) override {
    std::set<RegId> SpillSet(Spilled.begin(), Spilled.end());
    assignSlots(Spilled, Result);

    using InstIter = BasicBlock::InstList::iterator;
    /// One emitted store (its address Make and the Store itself),
    /// kept so the post-scan passes can delete it.
    struct StoreSite {
      RegId V;
      RegId Tmp; ///< The .st temp the store reads.
      InstIter Lea, St;
      bool Redundant = false; ///< Overwritten by a later same-block store.
    };
    std::vector<StoreSite> Stores;
    std::map<RegId, unsigned> LoadsOf;  ///< V -> reloads emitted.
    std::map<RegId, unsigned> TempUses; ///< temp -> uses outside its own
                                        ///< lea/load pair (store + forwards).
    std::vector<RegId> Fresh;           ///< every temp made this round.

    for (const auto &BB : F.blocks()) {
      auto &List = BB->instructions();
      // V -> temp currently holding V's value in this block (a reload
      // temp, or the def temp whose store just wrote the slot). Never
      // invalidated within the block: spill temps have a single def.
      std::map<RegId, RegId> Avail;
      // V -> index into Stores of the last store in this block.
      std::map<RegId, size_t> LastStore;
      for (auto It = List.begin(); It != List.end(); ++It) {
        Instruction &I = *It;
        // Re-spilled own temps reload classically: one minimal-range
        // temp per instruction per value, never forwarded.
        std::map<RegId, RegId> ClassicReload;
        for (unsigned K = 0; K < I.numUses(); ++K) {
          RegId V = I.use(K);
          if (!SpillSet.count(V))
            continue;
          if (OwnTemps.count(V)) {
            auto Found = ClassicReload.find(V);
            if (Found == ClassicReload.end()) {
              RegId Tmp = F.makeVirtual(F.valueName(V) + ".ld");
              NoSpill.insert(Tmp);
              Fresh.push_back(Tmp);
              Instruction Lea(Opcode::Make);
              Lea.addDef(Tmp);
              Lea.setImm(SlotOf[V]);
              List.insert(It, std::move(Lea));
              Instruction Ld(Opcode::Load);
              Ld.addDef(Tmp);
              Ld.addUse(Tmp);
              List.insert(It, std::move(Ld));
              ++Result.NumSpillLoads;
              ++LoadsOf[V];
              Found = ClassicReload.emplace(V, Tmp).first;
            }
            I.setUse(K, Found->second);
            continue;
          }
          auto Found = Avail.find(V);
          if (Found == Avail.end()) {
            RegId Tmp = F.makeVirtual(F.valueName(V) + ".ld");
            Fresh.push_back(Tmp);
            Instruction Lea(Opcode::Make);
            Lea.addDef(Tmp);
            Lea.setImm(SlotOf[V]);
            List.insert(It, std::move(Lea));
            Instruction Ld(Opcode::Load);
            Ld.addDef(Tmp);
            Ld.addUse(Tmp);
            List.insert(It, std::move(Ld));
            ++Result.NumSpillLoads;
            ++LoadsOf[V];
            Found = Avail.emplace(V, Tmp).first;
          } else {
            ++LAO_STAT(regalloc, forwarded_uses);
          }
          I.setUse(K, Found->second);
          ++TempUses[Found->second];
        }
        for (unsigned K = 0; K < I.numDefs(); ++K) {
          RegId V = I.def(K);
          if (!SpillSet.count(V))
            continue;
          if (OwnTemps.count(V)) {
            // Classic store for a re-spilled own temp: the def temp's
            // range is one instruction, and the store stays (its slot
            // is read by the classic reloads above).
            RegId Tmp = F.makeVirtual(F.valueName(V) + ".st");
            NoSpill.insert(Tmp);
            Fresh.push_back(Tmp);
            I.setDef(K, Tmp);
            auto After = std::next(It);
            RegId Addr = F.makeVirtual("sl.addr");
            NoSpill.insert(Addr);
            Fresh.push_back(Addr);
            Instruction Lea(Opcode::Make);
            Lea.addDef(Addr);
            Lea.setImm(SlotOf[V]);
            List.insert(After, std::move(Lea));
            Instruction St(Opcode::Store);
            St.addUse(Addr);
            St.addUse(Tmp);
            List.insert(After, std::move(St));
            ++Result.NumSpillStores;
            ++It;
            ++It;
            continue;
          }
          // This store overwrites the block's previous store of V, and
          // no load of V can have been emitted in between (Avail held
          // V for the whole gap) — the earlier one is dead.
          auto Last = LastStore.find(V);
          if (Last != LastStore.end())
            Stores[Last->second].Redundant = true;
          RegId Tmp = F.makeVirtual(F.valueName(V) + ".st");
          Fresh.push_back(Tmp);
          I.setDef(K, Tmp);
          auto After = std::next(It);
          RegId Addr = F.makeVirtual("sl.addr");
          NoSpill.insert(Addr);
          Fresh.push_back(Addr);
          Instruction Lea(Opcode::Make);
          Lea.addDef(Addr);
          Lea.setImm(SlotOf[V]);
          auto LeaIt = List.insert(After, std::move(Lea));
          Instruction St(Opcode::Store);
          St.addUse(Addr);
          St.addUse(Tmp);
          auto StIt = List.insert(After, std::move(St));
          ++Result.NumSpillStores;
          ++TempUses[Tmp]; // The store's own read of the def temp.
          LastStore[V] = Stores.size();
          Stores.push_back({V, Tmp, LeaIt, StIt, false});
          Avail[V] = Tmp; // Later same-block uses read the def temp.
          ++It;
          ++It;
        }
      }
    }

    // Delete overwritten stores, then the stores of values this round
    // never reloaded (their slots are write-only; nothing later can
    // read them — the value's old name no longer occurs in F). The
    // iterators stay valid: InstList::erase invalidates only the
    // erased position, and they carry their owning list.
    std::set<RegId> Lengthened;
    for (StoreSite &S : Stores) {
      if (!S.Redundant && LoadsOf.find(S.V) != LoadsOf.end())
        continue;
      S.Lea.list()->erase(S.Lea);
      S.St.list()->erase(S.St);
      --Result.NumSpillStores;
      --TempUses[S.Tmp];
      ++LAO_STAT(regalloc, dead_stores_removed);
      // Without its store, the def temp's range runs to its last
      // forwarded use: the value was renamed, not shortened, and must
      // stay eligible for a real (classic) spill in a later round.
      Lengthened.insert(S.Tmp);
    }

    // NoSpill discipline: temps serving exactly one instruction keep
    // the minimal ranges of the spill-everywhere model and must never
    // re-spill. Forwarded temps (several uses) and store-less renames
    // stay spillable — their ranges are real, and re-spilling one takes
    // the classic no-forwarding path, so the rewrite cannot cycle.
    for (const auto &[Tmp, Uses] : TempUses)
      if (Uses <= 1 && !Lengthened.count(Tmp))
        NoSpill.insert(Tmp);
    OwnTemps.insert(Fresh.begin(), Fresh.end());
  }
};

} // namespace

std::unique_ptr<SpillModel> lao::makeSpillModel(SpillModelKind K) {
  switch (K) {
  case SpillModelKind::SpillEverywhere:
    return std::make_unique<SpillEverywhere>();
  case SpillModelKind::LoadStoreOpt:
    return std::make_unique<LoadStoreOpt>();
  }
  return std::make_unique<SpillEverywhere>();
}
