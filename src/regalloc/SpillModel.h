//===- SpillModel.h - Pluggable spill code insertion ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spill-model seam of the allocator tier: given the virtuals a
/// coloring round decided to spill, rewrite the function so their live
/// ranges shatter into tiny temp ranges around memory accesses. Two
/// models, selected by RegAllocOptions::SpillMode (see
/// docs/REGALLOC.md):
///
///  * SpillEverywhere — a store after every definition and a load
///    before every use (one reload temp per instruction per value).
///    This is the classic model the Bouchez–Darte–Rastello complexity
///    results are phrased against, and the repo's historical behaviour.
///  * LoadStoreOpt — the same skeleton, plus three in-block
///    optimizations that only ever remove accesses: a use after a
///    reload (or after the def whose store temp still holds the value)
///    forwards to that temp instead of reloading; a store made
///    redundant by a later same-block store with no possible
///    intervening read is deleted; and when a round reloads a spilled
///    value nowhere at all, its stores are dead and dropped.
///
/// A model instance is stateful across the driver's rounds: it owns
/// the value→slot map and the slot high-water mark, so re-spilling the
/// same value in a later round reuses its slot. Slots are assigned to
/// *new* spill values in ascending RegId order — deterministic no
/// matter which container the strategy collected them in (the
/// FrameBytes accounting contract, regression-tested).
///
/// Spill temps and NoSpill: every temp a model creates with exactly one
/// use is registered in the driver's NoSpill set (spilling it could
/// recurse forever — its live range is already minimal). LoadStoreOpt's
/// *forwarded* temps (a reload serving several uses) stay spillable:
/// their ranges are real again, and if a later round spills one, its
/// replacement temps are single-use and NoSpill, so the process
/// terminates.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_REGALLOC_SPILLMODEL_H
#define LAO_REGALLOC_SPILLMODEL_H

#include "regalloc/RegAlloc.h"

#include <map>
#include <memory>
#include <set>

namespace lao {

class SpillModel {
public:
  virtual ~SpillModel() = default;

  /// Rewrites \p F so every register in \p Spilled lives in its stack
  /// slot: the model inserts loads/stores through fresh temporaries,
  /// updates \p Result's spill counters, and adds the single-use temps
  /// to \p NoSpill.
  virtual void insertSpillCode(Function &F, const std::vector<RegId> &Spilled,
                               std::set<RegId> &NoSpill,
                               RegAllocResult &Result) = 0;

  /// Frame slots assigned so far (8 bytes each).
  unsigned frameSlots() const { return NextSlot; }

protected:
  /// Assigns slots to the not-yet-slotted members of \p Spilled in
  /// ascending RegId order, bumping Result.NumSpilled per new value.
  void assignSlots(const std::vector<RegId> &Spilled, RegAllocResult &Result);

  /// Value -> absolute slot address (a dedicated region far from both
  /// the heap the workloads use and the SP frame: the mini-LAI SP is a
  /// *moving* dedicated register, so SP-relative slots would alias
  /// differently before and after spadjust chains).
  std::map<RegId, int64_t> SlotOf;
  unsigned NextSlot = 0;
};

std::unique_ptr<SpillModel> makeSpillModel(SpillModelKind K);

} // namespace lao

#endif // LAO_REGALLOC_SPILLMODEL_H
