//===- Chordal.cpp - MCS/greedy coloring in dominance order --------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The SSA-flavoured allocator: interference graphs of programs in SSA
// form are chordal, and chordal graphs are colored optimally by a
// greedy pass over a perfect elimination order. The code this allocator
// sees is *post*-out-of-SSA (coalescing deliberately merged ranges), so
// the graph is only near-chordal — maximum cardinality search (MCS)
// still recovers a near-perfect order, and we seed its tie-breaking
// with dominance (the first-def order over
// DominatorTree::preorderBlocks) so that on the chordal subgraphs the
// order is exactly the simplicial elimination order dominance induces.
//
// Two refinements over plain greedy:
//  * biased coloring — when a node has residual move affinities (Mov /
//    ParCopy partners the coalescer could not merge), prefer a legal
//    color already held by a partner, turning the move into a
//    same-register no-op candidate;
//  * NoSpill eviction — a spill temp that greedy cannot color evicts
//    its cheapest spillable colored neighbor instead of failing the
//    round outright (the Chaitin select stack gets this for free by
//    re-picking; greedy needs it explicitly).
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocatorStrategy.h"

#include "analysis/Dominators.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "support/Stats.h"

#include <algorithm>

using namespace lao;

namespace {

class ChordalStrategy : public AllocatorStrategy {
public:
  bool tryColor(Function &F, const std::vector<RegId> &Pool,
                const std::set<RegId> &NoSpill,
                std::map<RegId, RegId> &ColorOut,
                std::vector<RegId> &SpillOut) override {
    CFG Cfg(F);
    Liveness LV(Cfg);
    InterferenceGraph IG(F, LV);
    std::map<RegId, double> Cost = spillCosts(F, Cfg);
    DominatorTree DT(Cfg);

    std::set<RegId> PoolSet(Pool.begin(), Pool.end());
    std::vector<RegId> Nodes = collectVirtualRegs(F);

    // Dominance key: virtuals ordered by the instruction position of
    // their first definition, blocks walked in dominator-tree preorder.
    // On SSA-shaped (single-def) subgraphs this is the simplicial
    // elimination order; values with no def (use-only, possible in
    // hand-written input) sort last by RegId.
    std::map<RegId, uint64_t> DefOrder;
    uint64_t Ord = 0;
    for (BasicBlock *BB : DT.preorderBlocks())
      for (const Instruction &I : BB->instructions()) {
        ++Ord;
        for (RegId D : I.defs())
          if (!F.isPhysical(D) && !DefOrder.count(D))
            DefOrder[D] = Ord;
      }
    for (RegId V : Nodes) // Ascending RegId (Nodes is sorted).
      if (!DefOrder.count(V))
        DefOrder[V] = ++Ord;

    // Residual move affinities — the merge hints the coalescer left
    // behind as actual Mov/ParCopy instructions. Weighted by occurrence
    // count; partners are tried hottest-first during biased coloring.
    std::map<RegId, std::map<RegId, double>> AffinityW;
    for (const auto &BB : F.blocks())
      for (const Instruction &I : BB->instructions()) {
        auto Pair = [&](RegId D, RegId U) {
          if (D == U)
            return;
          if (!F.isPhysical(D))
            AffinityW[D][U] += 1;
          if (!F.isPhysical(U))
            AffinityW[U][D] += 1;
        };
        if (I.isCopy() && I.numDefs() == 1 && I.numUses() == 1)
          Pair(I.def(0), I.use(0));
        else if (I.isParCopy())
          for (unsigned K = 0; K < I.numDefs() && K < I.numUses(); ++K)
            Pair(I.def(K), I.use(K));
      }

    // Maximum cardinality search over the virtual nodes, with
    // allocatable physical neighbours counted as already numbered
    // (they are precolored). Ties break toward the dominance key.
    std::map<RegId, unsigned> Weight;
    std::set<RegId> Unnumbered(Nodes.begin(), Nodes.end());
    for (RegId V : Nodes) {
      unsigned W = 0;
      for (RegId N : IG.neighbors(V))
        if (PoolSet.count(N))
          ++W;
      Weight[V] = W;
    }
    std::vector<RegId> Order;
    Order.reserve(Nodes.size());
    while (!Unnumbered.empty()) {
      RegId Pick = InvalidReg;
      for (RegId V : Unnumbered) {
        if (Pick == InvalidReg || Weight[V] > Weight[Pick] ||
            (Weight[V] == Weight[Pick] &&
             (DefOrder[V] < DefOrder[Pick] ||
              (DefOrder[V] == DefOrder[Pick] && V < Pick))))
          Pick = V;
      }
      Order.push_back(Pick);
      Unnumbered.erase(Pick);
      for (RegId N : IG.neighbors(Pick))
        if (Unnumbered.count(N))
          ++Weight[N];
    }

    // Greedy coloring in MCS order with biased color choice.
    ColorOut.clear();
    SpillOut.clear();
    auto ForbiddenOf = [&](RegId V) {
      std::set<RegId> Forbidden;
      for (RegId N : IG.neighbors(V)) {
        if (PoolSet.count(N))
          Forbidden.insert(N);
        auto It = ColorOut.find(N);
        if (It != ColorOut.end())
          Forbidden.insert(It->second);
      }
      return Forbidden;
    };
    auto PickColor = [&](RegId V, const std::set<RegId> &Forbidden) {
      // Biased: a legal color already held by the strongest affinity
      // partner makes the residual move coalesceable by assignment.
      auto AffIt = AffinityW.find(V);
      if (AffIt != AffinityW.end()) {
        std::vector<std::pair<RegId, double>> Partners(AffIt->second.begin(),
                                                       AffIt->second.end());
        std::stable_sort(Partners.begin(), Partners.end(),
                         [](const auto &A, const auto &B) {
                           return A.second > B.second;
                         });
        for (const auto &[P, W] : Partners) {
          (void)W;
          RegId Want = InvalidReg;
          if (PoolSet.count(P))
            Want = P; // Physical partner in the pool.
          else {
            auto It = ColorOut.find(P);
            if (It != ColorOut.end())
              Want = It->second;
          }
          if (Want != InvalidReg && !Forbidden.count(Want)) {
            ++LAO_STAT(regalloc, biased_hits);
            return Want;
          }
        }
      }
      for (RegId R : Pool)
        if (!Forbidden.count(R))
          return R;
      return InvalidReg;
    };

    for (RegId V : Order) {
      std::set<RegId> Forbidden = ForbiddenOf(V);
      RegId Color = PickColor(V, Forbidden);
      if (Color != InvalidReg) {
        ColorOut[V] = Color;
        continue;
      }
      // Uncolorable: decide who pays, by spill cost (greedy's local
      // version of Chaitin's cost-driven spill choice). A color is
      // freeable by evicting every spillable colored neighbor holding
      // it — unless a precolored or NoSpill neighbor pins it. V spills
      // itself only when it is no costlier than the cheapest freeable
      // color's total eviction bill (NoSpill temps never self-spill; if
      // nothing is freeable for one, the pool is genuinely too small
      // for one instruction and V is reported so the driver turns that
      // into the structured failure).
      std::map<RegId, double> EvictCost;
      std::set<RegId> Pinned;
      for (RegId N : IG.neighbors(V)) {
        if (PoolSet.count(N)) {
          Pinned.insert(N);
          continue;
        }
        auto It = ColorOut.find(N);
        if (It == ColorOut.end())
          continue;
        if (NoSpill.count(N))
          Pinned.insert(It->second);
        else
          EvictCost[It->second] +=
              Cost[N] / (1.0 + IG.neighbors(N).size());
      }
      RegId BestColor = InvalidReg;
      double Bill = 0;
      for (const auto &[C, W] : EvictCost) {
        if (Pinned.count(C))
          continue;
        if (BestColor == InvalidReg || W < Bill ||
            (W == Bill && C < BestColor)) {
          BestColor = C;
          Bill = W;
        }
      }
      if (!NoSpill.count(V) &&
          (BestColor == InvalidReg ||
           Cost[V] / (1.0 + IG.neighbors(V).size()) <= Bill)) {
        SpillOut.push_back(V);
        continue;
      }
      if (BestColor == InvalidReg) {
        SpillOut.push_back(V); // NoSpill: the driver reports failure.
        continue;
      }
      for (RegId N : IG.neighbors(V)) {
        auto It = ColorOut.find(N);
        if (It == ColorOut.end() || It->second != BestColor)
          continue;
        ColorOut.erase(It);
        SpillOut.push_back(N);
        ++LAO_STAT(regalloc, evictions);
      }
      ColorOut[V] = BestColor;
    }
    return SpillOut.empty();
  }
};

} // namespace

std::unique_ptr<AllocatorStrategy> lao::makeChordalStrategy() {
  return std::make_unique<ChordalStrategy>();
}
