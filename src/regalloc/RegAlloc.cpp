//===- RegAlloc.cpp - Register allocation driver --------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The strategy-independent half of the allocator tier: preset parsing,
// the shared build infrastructure (pool, spill costs, virtual-register
// collection), and the round loop that alternates a coloring strategy
// (AllocatorStrategy.h) with a spill model (SpillModel.h) until the
// function colors or the round budget runs out.
//
//===----------------------------------------------------------------------===//

#include "regalloc/RegAlloc.h"

#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "regalloc/AllocatorStrategy.h"
#include "regalloc/SpillModel.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace lao;

std::vector<RegId> lao::collectVirtualRegs(const Function &F) {
  std::set<RegId> Seen;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      for (RegId D : I.defs())
        if (!F.isPhysical(D))
          Seen.insert(D);
      for (RegId U : I.uses())
        if (!F.isPhysical(U))
          Seen.insert(U);
    }
  return std::vector<RegId>(Seen.begin(), Seen.end());
}

std::vector<RegId> lao::allocatablePool(unsigned NumRegs) {
  static const RegId Pool[] = {Target::R0, Target::R1, Target::R2,
                               Target::R3, Target::R4, Target::R5,
                               Target::R6, Target::R7, Target::P0,
                               Target::P1, Target::P2, Target::P3};
  unsigned N = std::min<unsigned>(NumRegs, 12);
  return std::vector<RegId>(Pool, Pool + N);
}

std::map<RegId, double> lao::spillCosts(const Function &F, const CFG &Cfg) {
  DominatorTree DT(Cfg);
  LoopInfo LI(Cfg, DT);
  std::map<RegId, double> Cost;
  for (const auto &BB : F.blocks()) {
    double W = 1;
    for (unsigned D = 0; D < LI.depth(BB.get()); ++D)
      W *= 5;
    for (const Instruction &I : BB->instructions()) {
      for (RegId D : I.defs())
        if (!F.isPhysical(D))
          Cost[D] += W;
      for (RegId U : I.uses())
        if (!F.isPhysical(U))
          Cost[U] += W;
    }
  }
  return Cost;
}

//===----------------------------------------------------------------------===//
// Preset names
//===----------------------------------------------------------------------===//

const char *lao::allocatorName(AllocatorKind K) {
  switch (K) {
  case AllocatorKind::ChaitinBriggs:
    return "chaitin-briggs";
  case AllocatorKind::Chordal:
    return "chordal";
  }
  return "unknown";
}

const char *lao::spillModelName(SpillModelKind K) {
  switch (K) {
  case SpillModelKind::SpillEverywhere:
    return "spill-everywhere";
  case SpillModelKind::LoadStoreOpt:
    return "load-store-opt";
  }
  return "unknown";
}

std::optional<RegAllocOptions>
lao::regAllocPresetOpt(const std::string &Name) {
  RegAllocOptions Opts;
  std::string Alloc = Name, Spill;
  size_t Slash = Name.find('/');
  if (Slash != std::string::npos) {
    Alloc = Name.substr(0, Slash);
    Spill = Name.substr(Slash + 1);
  }
  if (Alloc == "chaitin-briggs")
    Opts.Allocator = AllocatorKind::ChaitinBriggs;
  else if (Alloc == "chordal")
    Opts.Allocator = AllocatorKind::Chordal;
  else
    return std::nullopt;
  if (!Spill.empty() || Slash != std::string::npos) {
    if (Spill == "spill-everywhere")
      Opts.SpillMode = SpillModelKind::SpillEverywhere;
    else if (Spill == "load-store-opt")
      Opts.SpillMode = SpillModelKind::LoadStoreOpt;
    else
      return std::nullopt;
  }
  return Opts;
}

RegAllocOptions lao::regAllocPreset(const std::string &Name) {
  if (std::optional<RegAllocOptions> O = regAllocPresetOpt(Name))
    return *O;
  // Same fatal discipline as pipelinePreset: an assert compiles out of
  // NDEBUG builds and a silently-default allocator corrupts every
  // downstream measurement.
  std::fprintf(stderr,
               "lao: fatal: unknown regalloc preset '%s' "
               "(want <allocator>[/<spill-model>], see regalloc/RegAlloc.h)\n",
               Name.c_str());
  std::abort();
}

std::unique_ptr<AllocatorStrategy> lao::makeAllocatorStrategy(AllocatorKind K) {
  switch (K) {
  case AllocatorKind::ChaitinBriggs:
    return makeChaitinBriggsStrategy();
  case AllocatorKind::Chordal:
    return makeChordalStrategy();
  }
  return makeChaitinBriggsStrategy();
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

RegAllocResult lao::allocateRegisters(Function &F,
                                      const RegAllocOptions &Opts) {
  RegAllocResult Result;
  ++LAO_STAT(regalloc, runs);
  if (Opts.NumRegs < 2) {
    Result.Error = "need at least two allocatable registers";
    ++LAO_STAT(regalloc, failures);
    return Result;
  }
  std::vector<RegId> Pool = allocatablePool(Opts.NumRegs);
  std::unique_ptr<AllocatorStrategy> Strategy =
      makeAllocatorStrategy(Opts.Allocator);
  std::unique_ptr<SpillModel> Model = makeSpillModel(Opts.SpillMode);
  std::set<RegId> NoSpill;

  unsigned MaxRounds = std::max(Opts.MaxRounds, 1u);
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ++Result.NumRounds;
    ++LAO_STAT(regalloc, rounds);
    std::map<RegId, RegId> Color;
    std::vector<RegId> Spills;
    if (Strategy->tryColor(F, Pool, NoSpill, Color, Spills)) {
      // Rewrite operands to their colors.
      std::set<RegId> Used;
      for (const auto &BB : F.blocks())
        for (Instruction &I : BB->instructions()) {
          for (unsigned K = 0; K < I.numDefs(); ++K)
            if (!F.isPhysical(I.def(K))) {
              I.setDef(K, Color.at(I.def(K)));
              Used.insert(I.def(K));
            }
          for (unsigned K = 0; K < I.numUses(); ++K)
            if (!F.isPhysical(I.use(K))) {
              I.setUse(K, Color.at(I.use(K)));
              Used.insert(I.use(K));
            }
        }
      Result.NumRegsUsed = static_cast<unsigned>(Used.size());
      Result.FrameBytes = 8 * Model->frameSlots();
      Result.Ok = true;
      LAO_STAT(regalloc, spill_loads) += Result.NumSpillLoads;
      LAO_STAT(regalloc, spill_stores) += Result.NumSpillStores;
      return Result;
    }
    // Spill and retry. A spilled no-spill temp means the pool is too
    // small for a single instruction's operands.
    for (RegId V : Spills)
      if (NoSpill.count(V)) {
        Result.Error = formatStr(
            "cannot allocate: instruction needs more than %zu registers",
            Pool.size());
        ++LAO_STAT(regalloc, failures);
        return Result;
      }
    Model->insertSpillCode(F, Spills, NoSpill, Result);
  }
  Result.Error = formatStr(
      "register allocation did not converge after %u spill rounds",
      MaxRounds);
  ++LAO_STAT(regalloc, failures);
  return Result;
}
