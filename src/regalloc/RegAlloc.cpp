//===- RegAlloc.cpp - Chaitin-Briggs register allocation -----------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/RegAlloc.h"

#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace lao;

std::vector<RegId> lao::collectVirtualRegs(const Function &F) {
  std::set<RegId> Seen;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      for (RegId D : I.defs())
        if (!F.isPhysical(D))
          Seen.insert(D);
      for (RegId U : I.uses())
        if (!F.isPhysical(U))
          Seen.insert(U);
    }
  return std::vector<RegId>(Seen.begin(), Seen.end());
}

namespace {

/// The allocatable register pool, in assignment preference order.
std::vector<RegId> allocatablePool(unsigned NumRegs) {
  static const RegId Pool[] = {Target::R0, Target::R1, Target::R2,
                               Target::R3, Target::R4, Target::R5,
                               Target::R6, Target::R7, Target::P0,
                               Target::P1, Target::P2, Target::P3};
  unsigned N = std::min<unsigned>(NumRegs, 12);
  return std::vector<RegId>(Pool, Pool + N);
}

/// Spill-cost weights: occurrences weighted 5^loopdepth (the same static
/// frequency model as the paper's Table 5).
std::map<RegId, double> spillCosts(const Function &F, const CFG &Cfg) {
  DominatorTree DT(Cfg);
  LoopInfo LI(Cfg, DT);
  std::map<RegId, double> Cost;
  for (const auto &BB : F.blocks()) {
    double W = 1;
    for (unsigned D = 0; D < LI.depth(BB.get()); ++D)
      W *= 5;
    for (const Instruction &I : BB->instructions()) {
      for (RegId D : I.defs())
        if (!F.isPhysical(D))
          Cost[D] += W;
      for (RegId U : I.uses())
        if (!F.isPhysical(U))
          Cost[U] += W;
    }
  }
  return Cost;
}

/// One build/simplify/select round. Returns true if a full coloring was
/// found (assignments in \p ColorOut); otherwise fills \p SpillOut.
bool tryColor(Function &F, const std::vector<RegId> &Pool,
              const std::set<RegId> &NoSpill,
              std::map<RegId, RegId> &ColorOut,
              std::vector<RegId> &SpillOut) {
  CFG Cfg(F);
  Liveness LV(Cfg);
  InterferenceGraph IG(F, LV);
  std::map<RegId, double> Cost = spillCosts(F, Cfg);

  std::set<RegId> PoolSet(Pool.begin(), Pool.end());
  std::vector<RegId> Nodes = collectVirtualRegs(F);
  unsigned K = static_cast<unsigned>(Pool.size());

  // Current degree counting both virtual neighbours and allocatable
  // physical neighbours (precolored).
  std::map<RegId, unsigned> Degree;
  std::set<RegId> Remaining(Nodes.begin(), Nodes.end());
  for (RegId V : Nodes) {
    unsigned D = 0;
    for (RegId N : IG.neighbors(V))
      if (Remaining.count(N) || PoolSet.count(N))
        ++D;
    Degree[V] = D;
  }

  // Simplify with optimistic (Briggs) spill candidates.
  std::vector<std::pair<RegId, bool>> Stack; // (node, isSpillCandidate)
  while (!Remaining.empty()) {
    RegId Pick = InvalidReg;
    for (RegId V : Remaining)
      if (Degree[V] < K && (Pick == InvalidReg ||
                            Degree[V] > Degree[Pick])) // Heuristic: push
        Pick = V; // high-degree-but-colorable first, color it late.
    bool Candidate = false;
    if (Pick == InvalidReg) {
      // All remaining are high degree: choose the cheapest to spill,
      // push optimistically.
      double Best = 0;
      for (RegId V : Remaining) {
        if (NoSpill.count(V))
          continue;
        double Ratio = Cost[V] / (1.0 + Degree[V]);
        if (Pick == InvalidReg || Ratio < Best) {
          Pick = V;
          Best = Ratio;
        }
      }
      if (Pick == InvalidReg)
        Pick = *Remaining.begin(); // Only no-spill temps left: force one.
      Candidate = true;
    }
    Stack.push_back({Pick, Candidate});
    Remaining.erase(Pick);
    for (RegId N : IG.neighbors(Pick)) {
      auto It = Degree.find(N);
      if (It != Degree.end() && It->second > 0)
        --It->second;
    }
  }

  // Select.
  ColorOut.clear();
  SpillOut.clear();
  while (!Stack.empty()) {
    auto [V, WasCandidate] = Stack.back();
    Stack.pop_back();
    std::set<RegId> Forbidden;
    for (RegId N : IG.neighbors(V)) {
      if (PoolSet.count(N))
        Forbidden.insert(N);
      auto It = ColorOut.find(N);
      if (It != ColorOut.end())
        Forbidden.insert(It->second);
    }
    RegId Color = InvalidReg;
    for (RegId R : Pool)
      if (!Forbidden.count(R)) {
        Color = R;
        break;
      }
    if (Color == InvalidReg) {
      (void)WasCandidate;
      SpillOut.push_back(V);
      continue;
    }
    ColorOut[V] = Color;
  }
  return SpillOut.empty();
}

/// Rewrites \p F to keep each register of \p Spilled in a stack slot:
/// loads before uses, stores after defs, through fresh short-lived
/// temporaries. Slot addresses are absolute (a dedicated region far from
/// both the heap the workloads use and the SP frame): the mini-LAI SP is
/// a *moving* dedicated register (spadjust chains), so SP-relative slots
/// would alias differently before and after frame adjustments.
void insertSpillCode(Function &F, const std::vector<RegId> &Spilled,
                     std::map<RegId, int64_t> &SlotOf, unsigned &NextSlot,
                     std::set<RegId> &NoSpill, RegAllocResult &Result) {
  std::set<RegId> SpillSet(Spilled.begin(), Spilled.end());
  for (RegId V : Spilled)
    if (!SlotOf.count(V)) {
      SlotOf[V] = 0x80000 + 8 * static_cast<int64_t>(NextSlot++);
      ++Result.NumSpilled;
    }

  auto AddrOf = [&](RegId V, BasicBlock::InstList &List,
                    BasicBlock::InstList::iterator Pos) {
    RegId Addr = F.makeVirtual("sl.addr");
    NoSpill.insert(Addr);
    Instruction Lea(Opcode::Make);
    Lea.addDef(Addr);
    Lea.setImm(SlotOf[V]);
    List.insert(Pos, std::move(Lea));
    return Addr;
  };

  for (const auto &BB : F.blocks()) {
    auto &List = BB->instructions();
    for (auto It = List.begin(); It != List.end(); ++It) {
      Instruction &I = *It;
      // Loads before uses: one reload temp per instruction per value.
      std::map<RegId, RegId> ReloadedAs;
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId V = I.use(K);
        if (!SpillSet.count(V))
          continue;
        auto Found = ReloadedAs.find(V);
        if (Found == ReloadedAs.end()) {
          // The reload register doubles as the address register
          // (tmp = make slot; tmp = load tmp) to halve the register
          // pressure of spill code.
          RegId Tmp = F.makeVirtual(F.valueName(V) + ".ld");
          NoSpill.insert(Tmp);
          Instruction Lea(Opcode::Make);
          Lea.addDef(Tmp);
          Lea.setImm(SlotOf[V]);
          List.insert(It, std::move(Lea));
          Instruction Ld(Opcode::Load);
          Ld.addDef(Tmp);
          Ld.addUse(Tmp);
          List.insert(It, std::move(Ld));
          ++Result.NumSpillLoads;
          Found = ReloadedAs.emplace(V, Tmp).first;
        }
        I.setUse(K, Found->second);
      }
      // Stores after defs.
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        RegId V = I.def(K);
        if (!SpillSet.count(V))
          continue;
        RegId Tmp = F.makeVirtual(F.valueName(V) + ".st");
        NoSpill.insert(Tmp);
        I.setDef(K, Tmp);
        auto After = std::next(It);
        RegId Addr = AddrOf(V, List, After);
        Instruction St(Opcode::Store);
        St.addUse(Addr);
        St.addUse(Tmp);
        List.insert(After, std::move(St));
        ++Result.NumSpillStores;
        // Skip over the inserted address+store so they are not
        // re-processed as spill sites.
        ++It;
        ++It;
      }
    }
  }
}

} // namespace

RegAllocResult lao::allocateRegisters(Function &F,
                                      const RegAllocOptions &Opts) {
  RegAllocResult Result;
  if (Opts.NumRegs < 2) {
    Result.Error = "need at least two allocatable registers";
    return Result;
  }
  std::vector<RegId> Pool = allocatablePool(Opts.NumRegs);
  std::set<RegId> NoSpill;
  std::map<RegId, int64_t> SlotOf;
  unsigned NextSlot = 0;

  unsigned MaxRounds = std::max(Opts.MaxRounds, 1u);
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ++Result.NumRounds;
    std::map<RegId, RegId> Color;
    std::vector<RegId> Spills;
    if (tryColor(F, Pool, NoSpill, Color, Spills)) {
      // Rewrite operands to their colors.
      std::set<RegId> Used;
      for (const auto &BB : F.blocks())
        for (Instruction &I : BB->instructions()) {
          for (unsigned K = 0; K < I.numDefs(); ++K)
            if (!F.isPhysical(I.def(K))) {
              I.setDef(K, Color.at(I.def(K)));
              Used.insert(I.def(K));
            }
          for (unsigned K = 0; K < I.numUses(); ++K)
            if (!F.isPhysical(I.use(K))) {
              I.setUse(K, Color.at(I.use(K)));
              Used.insert(I.use(K));
            }
        }
      Result.NumRegsUsed = static_cast<unsigned>(Used.size());
      Result.FrameBytes = 8 * NextSlot;
      Result.Ok = true;
      return Result;
    }
    // Spill and retry. A spilled no-spill temp means the pool is too
    // small for a single instruction's operands.
    for (RegId V : Spills)
      if (NoSpill.count(V)) {
        Result.Error = formatStr(
            "cannot allocate: instruction needs more than %zu registers",
            Pool.size());
        return Result;
      }
    insertSpillCode(F, Spills, SlotOf, NextSlot, NoSpill, Result);
  }
  Result.Error = formatStr(
      "register allocation did not converge after %u spill rounds",
      MaxRounds);
  return Result;
}
