//===- Instruction.h - Mini-LAI instructions --------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction representation for the mini-LAI IR. Instructions carry
/// explicit def/use operand lists plus, for each operand slot, an optional
/// *pin* to a resource (a physical register or a virtual register id).
/// Pinning is the paper's mechanism for expressing renaming constraints
/// (Section 2.1) and, later, coalescing decisions (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_INSTRUCTION_H
#define LAO_IR_INSTRUCTION_H

#include "ir/Target.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace lao {

class BasicBlock;

/// Opcodes of the mini-LAI instruction set. Each renaming-constraint class
/// of the paper is represented: ABI registers (Call/Ret/Input/Output),
/// 2-operand instructions (More/AutoAdd), the dedicated SP register
/// (SpAdjust), and predication (Psi).
enum class Opcode {
  // Data movement.
  Mov,      ///< d = s
  Make,     ///< d = imm
  ParCopy,  ///< (d1, d2, ...) = (s1, s2, ...) executed in parallel

  // Three-address arithmetic.
  Add,      ///< d = a + b
  Sub,      ///< d = a - b
  Mul,      ///< d = a * b
  And,      ///< d = a & b
  Or,       ///< d = a | b
  Xor,      ///< d = a ^ b
  Shl,      ///< d = a << (b & 63)
  Shr,      ///< d = a >> (b & 63)
  AddI,     ///< d = a + imm
  CmpLT,    ///< d = (a < b) ? 1 : 0  (signed)
  CmpEQ,    ///< d = (a == b) ? 1 : 0

  // 2-operand ISA constraints: the def must be assigned the same resource
  // as the first use (paper Figure 1, statements S1 and S6).
  More,     ///< d = s | (imm << 16); constraint res(d) == res(s)
  AutoAdd,  ///< d = s + imm (post-modified address); res(d) == res(s)

  // Dedicated-register constraint: SP-relative adjustment. Both operands
  // must live in SP (paper Figure 2).
  SpAdjust, ///< d = s + imm; res(d) == res(s) == SP

  // Memory.
  Load,     ///< d = mem[a]
  Store,    ///< mem[a] = s ; uses = {a, s}

  // Calls and function boundary (ABI constraints).
  Call,     ///< d = call @callee(args...); args in R0..R3, result in R0
  Input,    ///< defs = function parameters (entry block only)
  Output,   ///< emit value to the observable output trace
  Ret,      ///< return value in R0

  // Control flow.
  Jump,     ///< unconditional branch
  Branch,   ///< if (cond != 0) goto Targets[0] else Targets[1]

  // SSA-only instructions.
  Phi,      ///< d = phi([v, pred]...) ; parallel at block entry
  Psi,      ///< d = psi(p, a, b): p != 0 ? a : b (predicated, psi-SSA)
};

/// Returns a stable lower-case mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op ends a basic block.
inline bool isTerminatorOpcode(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::Branch || Op == Opcode::Ret;
}

/// A mini-LAI instruction.
///
/// Operand pins express renaming constraints: DefPins[I] (resp. UsePins[I])
/// is the resource the I-th def (resp. use) is pinned to, or InvalidReg.
/// Following the paper, *variable pinning* is the pinning of a variable's
/// unique definition; phi arguments are implicitly pinned to the resource
/// of the phi result and carry no explicit UsePins entries.
class Instruction {
public:
  explicit Instruction(Opcode Op) : Op(Op) {}

  Opcode op() const { return Op; }

  bool isTerminator() const { return isTerminatorOpcode(Op); }
  bool isPhi() const { return Op == Opcode::Phi; }
  bool isCopy() const { return Op == Opcode::Mov; }
  bool isParCopy() const { return Op == Opcode::ParCopy; }

  /// Returns true for 2-operand-constrained opcodes (def tied to use 0).
  bool isTwoOperand() const {
    return Op == Opcode::More || Op == Opcode::AutoAdd ||
           Op == Opcode::SpAdjust;
  }

  unsigned numDefs() const { return Defs.size(); }
  unsigned numUses() const { return Uses.size(); }

  RegId def(unsigned I) const {
    assert(I < Defs.size() && "def index out of range");
    return Defs[I];
  }
  RegId use(unsigned I) const {
    assert(I < Uses.size() && "use index out of range");
    return Uses[I];
  }

  void setDef(unsigned I, RegId R) {
    assert(I < Defs.size() && "def index out of range");
    Defs[I] = R;
  }
  void setUse(unsigned I, RegId R) {
    assert(I < Uses.size() && "use index out of range");
    Uses[I] = R;
  }

  void addDef(RegId R) {
    Defs.push_back(R);
    DefPins.push_back(InvalidReg);
  }
  void addUse(RegId R) {
    Uses.push_back(R);
    UsePins.push_back(InvalidReg);
  }

  RegId defPin(unsigned I) const {
    assert(I < DefPins.size() && "def index out of range");
    return DefPins[I];
  }
  RegId usePin(unsigned I) const {
    assert(I < UsePins.size() && "use index out of range");
    return UsePins[I];
  }
  void pinDef(unsigned I, RegId Res) {
    assert(I < DefPins.size() && "def index out of range");
    DefPins[I] = Res;
  }
  void pinUse(unsigned I, RegId Res) {
    assert(I < UsePins.size() && "use index out of range");
    UsePins[I] = Res;
  }

  const std::vector<RegId> &defs() const { return Defs; }
  const std::vector<RegId> &uses() const { return Uses; }

  /// Immediate operand (Make/AddI/More/AutoAdd/SpAdjust).
  int64_t imm() const { return Imm; }
  void setImm(int64_t V) { Imm = V; }

  /// Callee name (Call only).
  const std::string &callee() const { return Callee; }
  void setCallee(std::string Name) { Callee = std::move(Name); }

  /// Phi incoming blocks, aligned with uses(). Phi only.
  const std::vector<BasicBlock *> &incomingBlocks() const {
    assert(isPhi() && "not a phi");
    return Incoming;
  }
  BasicBlock *incomingBlock(unsigned I) const {
    assert(isPhi() && I < Incoming.size() && "bad phi incoming index");
    return Incoming[I];
  }
  void addIncoming(RegId V, BasicBlock *Pred) {
    assert(isPhi() && "not a phi");
    addUse(V);
    Incoming.push_back(Pred);
  }
  void setIncomingBlock(unsigned I, BasicBlock *Pred) {
    assert(isPhi() && I < Incoming.size() && "bad phi incoming index");
    Incoming[I] = Pred;
  }
  /// Removes the \p I-th (value, pred) pair of a phi.
  void removeIncoming(unsigned I) {
    assert(isPhi() && I < Incoming.size() && "bad phi incoming index");
    Uses.erase(Uses.begin() + I);
    UsePins.erase(UsePins.begin() + I);
    Incoming.erase(Incoming.begin() + I);
  }

  /// Branch/Jump targets: Jump uses Targets[0]; Branch uses both.
  BasicBlock *target(unsigned I) const {
    assert(I < 2 && "bad target index");
    return Targets[I];
  }
  void setTarget(unsigned I, BasicBlock *BB) {
    assert(I < 2 && "bad target index");
    Targets[I] = BB;
  }

private:
  Opcode Op;
  std::vector<RegId> Defs;
  std::vector<RegId> Uses;
  std::vector<RegId> DefPins;
  std::vector<RegId> UsePins;
  std::vector<BasicBlock *> Incoming;
  BasicBlock *Targets[2] = {nullptr, nullptr};
  int64_t Imm = 0;
  std::string Callee;
};

} // namespace lao

#endif // LAO_IR_INSTRUCTION_H
