//===- Instruction.h - Mini-LAI instructions --------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction representation for the mini-LAI IR. Instructions carry
/// explicit def/use operand lists plus, for each operand slot, an optional
/// *pin* to a resource (a physical register or a virtual register id).
/// Pinning is the paper's mechanism for expressing renaming constraints
/// (Section 2.1) and, later, coalescing decisions (Section 3).
///
/// Storage model (the arena/SoA core, see docs/IR.md): an Instruction is a
/// fixed-size record. Operands and pins live in one slot run laid out as
/// [defs | defpins | uses | usepins]; the common case (<= 2 defs, <= 3
/// uses) fits the record's inline slots and never allocates. Larger
/// instructions (parcopies, calls, inputs) spill the run to the owning
/// Function's bump arena — or, while the instruction is still *detached*
/// (built by value, not yet appended to a block), to a heap slab that
/// InstrList::insert migrates into the arena. Instructions inside a
/// function are addressed by stable 32-bit InstrRef indices into the
/// function's chunked instruction table; Prev/Next links thread them into
/// per-block sequences, replacing the former std::list<Instruction>.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_INSTRUCTION_H
#define LAO_IR_INSTRUCTION_H

#include "ir/Target.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace lao {

class BasicBlock;
class Function;
class InstrList;

/// Stable index of an instruction within its Function's table.
using InstrRef = uint32_t;
constexpr InstrRef InvalidInstrRef = ~0u;

/// Opcodes of the mini-LAI instruction set. Each renaming-constraint class
/// of the paper is represented: ABI registers (Call/Ret/Input/Output),
/// 2-operand instructions (More/AutoAdd), the dedicated SP register
/// (SpAdjust), and predication (Psi).
enum class Opcode : uint8_t {
  // Data movement.
  Mov,      ///< d = s
  Make,     ///< d = imm
  ParCopy,  ///< (d1, d2, ...) = (s1, s2, ...) executed in parallel

  // Three-address arithmetic.
  Add,      ///< d = a + b
  Sub,      ///< d = a - b
  Mul,      ///< d = a * b
  And,      ///< d = a & b
  Or,       ///< d = a | b
  Xor,      ///< d = a ^ b
  Shl,      ///< d = a << (b & 63)
  Shr,      ///< d = a >> (b & 63)
  AddI,     ///< d = a + imm
  CmpLT,    ///< d = (a < b) ? 1 : 0  (signed)
  CmpEQ,    ///< d = (a == b) ? 1 : 0

  // 2-operand ISA constraints: the def must be assigned the same resource
  // as the first use (paper Figure 1, statements S1 and S6).
  More,     ///< d = s | (imm << 16); constraint res(d) == res(s)
  AutoAdd,  ///< d = s + imm (post-modified address); res(d) == res(s)

  // Dedicated-register constraint: SP-relative adjustment. Both operands
  // must live in SP (paper Figure 2).
  SpAdjust, ///< d = s + imm; res(d) == res(s) == SP

  // Memory.
  Load,     ///< d = mem[a]
  Store,    ///< mem[a] = s ; uses = {a, s}

  // Calls and function boundary (ABI constraints).
  Call,     ///< d = call @callee(args...); args in R0..R3, result in R0
  Input,    ///< defs = function parameters (entry block only)
  Output,   ///< emit value to the observable output trace
  Ret,      ///< return value in R0

  // Control flow.
  Jump,     ///< unconditional branch
  Branch,   ///< if (cond != 0) goto Targets[0] else Targets[1]

  // SSA-only instructions.
  Phi,      ///< d = phi([v, pred]...) ; parallel at block entry
  Psi,      ///< d = psi(p, a, b): p != 0 ? a : b (predicated, psi-SSA)
};

/// Returns a stable lower-case mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op ends a basic block.
inline bool isTerminatorOpcode(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::Branch || Op == Opcode::Ret;
}

/// Lightweight read-only view of an instruction's def or use ids.
/// Replaces the former const std::vector<RegId>& accessors; iteration and
/// indexing are unchanged, but the data lives in the instruction's slot
/// run (inline or arena), not in a per-instruction heap vector.
class OperandSpan {
public:
  OperandSpan(const RegId *Data, uint32_t N) : Data(Data), N(N) {}
  const RegId *begin() const { return Data; }
  const RegId *end() const { return Data + N; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  RegId operator[](size_t I) const {
    assert(I < N && "operand index out of range");
    return Data[I];
  }

private:
  const RegId *Data;
  uint32_t N;
};

/// A mini-LAI instruction.
///
/// Operand pins express renaming constraints: defPin(I) (resp. usePin(I))
/// is the resource the I-th def (resp. use) is pinned to, or InvalidReg.
/// Following the paper, *variable pinning* is the pinning of a variable's
/// unique definition; phi arguments are implicitly pinned to the resource
/// of the phi result and carry no explicit use-pin entries.
///
/// References and pointers to instructions that live inside a Function
/// are stable: the chunked table never moves records, so passes may hold
/// Instruction* across inserts and erases of *other* instructions.
class Instruction {
  /// Inline slot-run capacity: 2 defs + 3 uses (with their pins) covers
  /// every fixed-arity opcode, so the common case allocates nothing.
  static constexpr uint32_t InlineDefCap = 2;
  static constexpr uint32_t InlineUseCap = 3;
  static constexpr uint32_t NumInlineSlots =
      2 * InlineDefCap + 2 * InlineUseCap;

  /// Flags bits. Heap* mark detached-owned heap slabs that the record
  /// destructor must free; instructions inside a function never carry
  /// them (interning migrates slabs into the arena).
  enum : uint8_t { HeapSlots = 1, HeapIncoming = 2 };

public:
  explicit Instruction(Opcode Op)
      : Op(Op), DefCap(InlineDefCap), UseCap(InlineUseCap) {}

  ~Instruction() {
    if (Flags & HeapSlots)
      delete[] Ext;
    if (Flags & HeapIncoming)
      delete[] Inc;
  }

  /// Copying deep-copies into a *detached* instruction (no parent, heap
  /// slabs if the operands overflow the inline run).
  Instruction(const Instruction &O) : Instruction(O.Op) { copyPayload(O); }
  Instruction &operator=(const Instruction &) = delete;

  /// Moving steals detached slabs; moving from an attached instruction
  /// deep-copies (its slabs belong to the function's arena).
  Instruction(Instruction &&O) noexcept : Instruction(static_cast<Opcode>(O.Op)) {
    if (O.Parent) {
      copyPayload(O);
      return;
    }
    std::memcpy(InlineSlots, O.InlineSlots, sizeof(InlineSlots));
    Ext = O.Ext;
    Inc = O.Inc;
    Targets[0] = O.Targets[0];
    Targets[1] = O.Targets[1];
    CalleeStr = O.CalleeStr;
    Imm = O.Imm;
    Flags = O.Flags;
    NDefs = O.NDefs;
    NUses = O.NUses;
    DefCap = O.DefCap;
    UseCap = O.UseCap;
    IncCap = O.IncCap;
    O.Ext = nullptr;
    O.Inc = nullptr;
    O.Flags = 0;
    O.NDefs = O.NUses = 0;
    O.DefCap = InlineDefCap;
    O.UseCap = InlineUseCap;
    O.IncCap = 0;
  }

  Opcode op() const { return Op; }

  bool isTerminator() const { return isTerminatorOpcode(Op); }
  bool isPhi() const { return Op == Opcode::Phi; }
  bool isCopy() const { return Op == Opcode::Mov; }
  bool isParCopy() const { return Op == Opcode::ParCopy; }

  /// Returns true for 2-operand-constrained opcodes (def tied to use 0).
  bool isTwoOperand() const {
    return Op == Opcode::More || Op == Opcode::AutoAdd ||
           Op == Opcode::SpAdjust;
  }

  unsigned numDefs() const { return NDefs; }
  unsigned numUses() const { return NUses; }

  RegId def(unsigned I) const {
    assert(I < NDefs && "def index out of range");
    return slots()[I];
  }
  RegId use(unsigned I) const {
    assert(I < NUses && "use index out of range");
    return slots()[2 * DefCap + I];
  }

  void setDef(unsigned I, RegId R) {
    assert(I < NDefs && "def index out of range");
    slots()[I] = R;
  }
  void setUse(unsigned I, RegId R) {
    assert(I < NUses && "use index out of range");
    slots()[2 * DefCap + I] = R;
  }

  void addDef(RegId R) {
    if (NDefs == DefCap)
      growSlots(DefCap * 2, UseCap);
    RegId *S = slots();
    S[NDefs] = R;
    S[DefCap + NDefs] = InvalidReg;
    ++NDefs;
  }
  void addUse(RegId R) {
    if (NUses == UseCap)
      growSlots(DefCap, UseCap * 2);
    RegId *S = slots() + 2 * DefCap;
    S[NUses] = R;
    S[UseCap + NUses] = InvalidReg;
    ++NUses;
  }

  RegId defPin(unsigned I) const {
    assert(I < NDefs && "def index out of range");
    return slots()[DefCap + I];
  }
  RegId usePin(unsigned I) const {
    assert(I < NUses && "use index out of range");
    return slots()[2 * DefCap + UseCap + I];
  }
  void pinDef(unsigned I, RegId Res) {
    assert(I < NDefs && "def index out of range");
    slots()[DefCap + I] = Res;
  }
  void pinUse(unsigned I, RegId Res) {
    assert(I < NUses && "use index out of range");
    slots()[2 * DefCap + UseCap + I] = Res;
  }

  OperandSpan defs() const { return OperandSpan(slots(), NDefs); }
  OperandSpan uses() const { return OperandSpan(slots() + 2 * DefCap, NUses); }

  /// Immediate operand (Make/AddI/More/AutoAdd/SpAdjust).
  int64_t imm() const { return Imm; }
  void setImm(int64_t V) { Imm = V; }

  /// Callee name (Call only). Names are interned process-wide so the
  /// record stays fixed-size.
  const std::string &callee() const;
  void setCallee(const std::string &Name);

  /// Phi incoming block for the I-th use. Phi only.
  BasicBlock *incomingBlock(unsigned I) const {
    assert(isPhi() && I < NUses && I < IncCap && "bad phi incoming index");
    return Inc[I];
  }
  void addIncoming(RegId V, BasicBlock *Pred) {
    assert(isPhi() && "not a phi");
    addUse(V);
    if (NUses > IncCap)
      growIncoming(IncCap ? IncCap * 2 : 2);
    Inc[NUses - 1] = Pred;
  }
  void setIncomingBlock(unsigned I, BasicBlock *Pred) {
    assert(isPhi() && I < NUses && "bad phi incoming index");
    Inc[I] = Pred;
  }
  /// Removes the \p I-th (value, pred) pair of a phi.
  void removeIncoming(unsigned I) {
    assert(isPhi() && I < NUses && "bad phi incoming index");
    RegId *U = slots() + 2 * DefCap;
    for (unsigned K = I + 1; K < NUses; ++K) {
      U[K - 1] = U[K];
      U[UseCap + K - 1] = U[UseCap + K];
      Inc[K - 1] = Inc[K];
    }
    --NUses;
  }

  /// Branch/Jump targets: Jump uses Targets[0]; Branch uses both.
  BasicBlock *target(unsigned I) const {
    assert(I < 2 && "bad target index");
    return Targets[I];
  }
  void setTarget(unsigned I, BasicBlock *BB) {
    assert(I < 2 && "bad target index");
    Targets[I] = BB;
  }

  /// The function whose table holds this instruction, or nullptr while
  /// detached.
  Function *parent() const { return Parent; }

  /// This instruction's stable table index (attached instructions only).
  InstrRef selfRef() const {
    assert(Parent && "detached instruction has no ref");
    return Self;
  }

private:
  friend class Function;
  friend class InstrList;

  RegId *slots() { return Ext ? Ext : InlineSlots; }
  const RegId *slots() const { return Ext ? Ext : InlineSlots; }

  /// Number of RegId slots a run with the given capacities occupies.
  static uint32_t runSize(uint32_t DCap, uint32_t UCap) {
    return 2 * DCap + 2 * UCap;
  }

  /// Re-lays the slot run with the given (larger) capacities; defined in
  /// IRCore.cpp (arena when attached, heap when detached).
  void growSlots(uint32_t NewDefCap, uint32_t NewUseCap);
  void growIncoming(uint32_t NewCap);

  /// Deep copy of everything but Op (already set) from \p O.
  void copyPayload(const Instruction &O);

  // --- Storage. The record is fixed-size; all variable-length state
  // --- lives behind Ext / Inc (or in InlineSlots).
  RegId InlineSlots[NumInlineSlots] = {};
  RegId *Ext = nullptr;       ///< Overflow slot run, layout as inline.
  BasicBlock **Inc = nullptr; ///< Phi incoming blocks (aligned with uses).
  Function *Parent = nullptr;
  BasicBlock *Targets[2] = {nullptr, nullptr};
  const std::string *CalleeStr = nullptr; ///< Interned; null = "".
  int64_t Imm = 0;
  InstrRef Self = InvalidInstrRef;
  InstrRef PrevRef = InvalidInstrRef; ///< Chain link within the block.
  InstrRef NextRef = InvalidInstrRef; ///< Chain link within the block.
  Opcode Op;
  uint8_t Flags = 0;
  uint16_t NDefs = 0, NUses = 0;
  uint16_t DefCap, UseCap;
  uint16_t IncCap = 0;
};

} // namespace lao

#endif // LAO_IR_INSTRUCTION_H
