//===- IRCore.cpp - Arena-backed instruction storage ----------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line pieces of the arena/SoA IR core: operand-slab growth and
/// migration (heap while an instruction is detached, the owning
/// Function's arena once interned), the chunked instruction table, and
/// the process-wide callee-name interner that keeps Instruction records
/// fixed-size.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "support/Stats.h"

#include <algorithm>
#include <mutex>
#include <new>
#include <unordered_set>

using namespace lao;

//===----------------------------------------------------------------------===//
// Callee-name interning
//===----------------------------------------------------------------------===//

namespace {

std::mutex CalleeMutex;

/// Interned callee names. Node-based, so the strings never move.
/// Leaked holder: interned names live until process exit.
std::unordered_set<std::string> &calleePool() {
  static auto *Pool = new std::unordered_set<std::string>();
  return *Pool;
}

} // namespace

const std::string &Instruction::callee() const {
  static const std::string Empty;
  return CalleeStr ? *CalleeStr : Empty;
}

void Instruction::setCallee(const std::string &Name) {
  if (Name.empty()) {
    CalleeStr = nullptr;
    return;
  }
  std::lock_guard<std::mutex> G(CalleeMutex);
  CalleeStr = &*calleePool().insert(Name).first;
}

//===----------------------------------------------------------------------===//
// Operand slab growth
//===----------------------------------------------------------------------===//

void Instruction::growSlots(uint32_t NewDefCap, uint32_t NewUseCap) {
  assert(NewDefCap >= NDefs && NewUseCap >= NUses && "shrinking slot run");
  const uint32_t NewSize = runSize(NewDefCap, NewUseCap);
  RegId *NewRun;
  bool OnHeap = false;
  if (Parent) {
    NewRun = Parent->IRArena.allocArray<RegId>(NewSize);
    Parent->SlabBytes += NewSize * sizeof(RegId);
  } else {
    NewRun = new RegId[NewSize];
    OnHeap = true;
  }
  const RegId *Old = slots();
  std::memcpy(NewRun, Old, NDefs * sizeof(RegId));
  std::memcpy(NewRun + NewDefCap, Old + DefCap, NDefs * sizeof(RegId));
  std::memcpy(NewRun + 2 * NewDefCap, Old + 2 * DefCap, NUses * sizeof(RegId));
  std::memcpy(NewRun + 2 * NewDefCap + NewUseCap, Old + 2 * DefCap + UseCap,
              NUses * sizeof(RegId));
  if (Flags & HeapSlots)
    delete[] Ext;
  Ext = NewRun;
  Flags = static_cast<uint8_t>((Flags & ~HeapSlots) | (OnHeap ? HeapSlots : 0));
  DefCap = static_cast<uint16_t>(NewDefCap);
  UseCap = static_cast<uint16_t>(NewUseCap);
}

void Instruction::growIncoming(uint32_t NewCap) {
  assert(NewCap > IncCap && "shrinking incoming array");
  BasicBlock **NewInc;
  bool OnHeap = false;
  if (Parent) {
    NewInc = Parent->IRArena.allocArray<BasicBlock *>(NewCap);
    Parent->SlabBytes += NewCap * sizeof(BasicBlock *);
  } else {
    NewInc = new BasicBlock *[NewCap];
    OnHeap = true;
  }
  for (uint32_t I = 0; I < IncCap; ++I)
    NewInc[I] = Inc[I];
  if (Flags & HeapIncoming)
    delete[] Inc;
  Inc = NewInc;
  Flags = static_cast<uint8_t>((Flags & ~HeapIncoming) |
                               (OnHeap ? HeapIncoming : 0));
  IncCap = static_cast<uint16_t>(NewCap);
}

void Instruction::copyPayload(const Instruction &O) {
  // `this` is freshly constructed: inline caps, no slabs, Flags == 0.
  NDefs = O.NDefs;
  NUses = O.NUses;
  Imm = O.Imm;
  CalleeStr = O.CalleeStr;
  Targets[0] = O.Targets[0];
  Targets[1] = O.Targets[1];
  if (O.NDefs > InlineDefCap || O.NUses > InlineUseCap) {
    DefCap = static_cast<uint16_t>(std::max<uint32_t>(O.NDefs, InlineDefCap));
    UseCap = static_cast<uint16_t>(std::max<uint32_t>(O.NUses, InlineUseCap));
    Ext = new RegId[runSize(DefCap, UseCap)];
    Flags |= HeapSlots;
  }
  RegId *Dst = slots();
  const RegId *Src = O.slots();
  std::memcpy(Dst, Src, NDefs * sizeof(RegId));
  std::memcpy(Dst + DefCap, Src + O.DefCap, NDefs * sizeof(RegId));
  std::memcpy(Dst + 2 * DefCap, Src + 2 * O.DefCap, NUses * sizeof(RegId));
  std::memcpy(Dst + 2 * DefCap + UseCap, Src + 2 * O.DefCap + O.UseCap,
              NUses * sizeof(RegId));
  if (O.Inc && O.IncCap && NUses) {
    IncCap = static_cast<uint16_t>(NUses);
    Inc = new BasicBlock *[IncCap];
    for (uint32_t I = 0; I < NUses; ++I)
      Inc[I] = O.Inc[I];
    Flags |= HeapIncoming;
  }
}

//===----------------------------------------------------------------------===//
// Function instruction table
//===----------------------------------------------------------------------===//

InstrRef Function::allocSlot() {
  if (!FreeRefs.empty()) {
    InstrRef R = FreeRefs.back();
    FreeRefs.pop_back();
    return R;
  }
  if (NumSlots == TableChunks.size() * ChunkSize) {
    TableChunks.push_back(static_cast<Instruction *>(
        IRArena.alloc(ChunkSize * sizeof(Instruction), alignof(Instruction))));
  }
  LAO_STAT(ir, instr_slots) += 1;
  return NumSlots++;
}

InstrRef Function::cloneInstr(const Instruction &Src) {
  InstrRef R = allocSlot();
  Instruction *Rec = new (&instr(R)) Instruction(Src.Op);
  Rec->Parent = this;
  Rec->Self = R;
  Rec->NDefs = Src.NDefs;
  Rec->NUses = Src.NUses;
  Rec->Imm = Src.Imm;
  Rec->CalleeStr = Src.CalleeStr; // Interned process-wide; shared as-is.
  Rec->Targets[0] = Src.Targets[0];
  Rec->Targets[1] = Src.Targets[1];
  if (Src.Ext) {
    const uint32_t Size = Instruction::runSize(Src.DefCap, Src.UseCap);
    Rec->Ext = IRArena.allocArray<RegId>(Size);
    std::memcpy(Rec->Ext, Src.Ext, Size * sizeof(RegId));
    Rec->DefCap = Src.DefCap;
    Rec->UseCap = Src.UseCap;
    SlabBytes += Size * sizeof(RegId);
  } else {
    std::memcpy(Rec->InlineSlots, Src.InlineSlots, sizeof(Rec->InlineSlots));
  }
  if (Src.Inc) {
    Rec->Inc = IRArena.allocArray<BasicBlock *>(Src.IncCap);
    std::memcpy(Rec->Inc, Src.Inc, Src.IncCap * sizeof(BasicBlock *));
    Rec->IncCap = Src.IncCap;
    SlabBytes += Src.IncCap * sizeof(BasicBlock *);
  }
  return R;
}

InstrRef Function::internInstr(Instruction &&I) {
  assert(!I.Parent && "interning an attached instruction");
  InstrRef R = allocSlot();
  // Records in the attached state are trivially destructible (no heap
  // slabs), so recycled slots can be re-constructed in place.
  Instruction *Rec = new (&instr(R)) Instruction(std::move(I));
  Rec->Parent = this;
  Rec->Self = R;
  // Migrate detached heap slabs into the arena so the record needs no
  // destructor while attached.
  if (Rec->Flags & Instruction::HeapSlots) {
    const uint32_t Size = Instruction::runSize(Rec->DefCap, Rec->UseCap);
    RegId *Run = IRArena.allocArray<RegId>(Size);
    std::memcpy(Run, Rec->Ext, Size * sizeof(RegId));
    delete[] Rec->Ext;
    Rec->Ext = Run;
    SlabBytes += Size * sizeof(RegId);
  }
  if (Rec->Flags & Instruction::HeapIncoming) {
    BasicBlock **NewInc = IRArena.allocArray<BasicBlock *>(Rec->IncCap);
    std::memcpy(NewInc, Rec->Inc, Rec->IncCap * sizeof(BasicBlock *));
    delete[] Rec->Inc;
    Rec->Inc = NewInc;
    SlabBytes += Rec->IncCap * sizeof(BasicBlock *);
  }
  Rec->Flags = 0;
  return R;
}
