//===- IRPrinter.h - Textual mini-LAI output --------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a Function in the textual mini-LAI format accepted by IRParser.
/// Operand pins are rendered with the paper's up-arrow notation spelled
/// as a caret, e.g. \c %a^R0 for an operand pinned to R0.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_IRPRINTER_H
#define LAO_IR_IRPRINTER_H

#include "ir/Function.h"

#include <string>

namespace lao {

/// Renders \p I as a single line of mini-LAI assembly (no newline).
std::string printInstruction(const Function &F, const Instruction &I);

/// Renders the whole function.
std::string printFunction(const Function &F);

} // namespace lao

#endif // LAO_IR_IRPRINTER_H
