//===- Clone.h - Deep copy of functions -------------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep clone of a Function. The benches run several out-of-SSA
/// configurations over the same input programs; each run mutates its own
/// clone while the original stays available for interpretation-based
/// equivalence checks.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_CLONE_H
#define LAO_IR_CLONE_H

#include "ir/Function.h"

#include <memory>

namespace lao {

/// Returns a structurally identical copy of \p F (same block names and
/// ids, same value ids and names, same pins).
std::unique_ptr<Function> cloneFunction(const Function &F);

} // namespace lao

#endif // LAO_IR_CLONE_H
