//===- IRBuilder.h - Convenience instruction builder ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only builder for mini-LAI instructions. Used by tests, examples
/// and the workload generators; the out-of-SSA passes mutate instruction
/// lists directly.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_IRBUILDER_H
#define LAO_IR_IRBUILDER_H

#include "ir/Function.h"

#include <initializer_list>

namespace lao {

/// Builds instructions at the end of a basic block.
class IRBuilder {
public:
  explicit IRBuilder(BasicBlock *BB) : BB(BB) {}

  void setBlock(BasicBlock *NewBB) { BB = NewBB; }
  BasicBlock *block() const { return BB; }
  Function &func() const { return *BB->parent(); }

  /// d = imm
  RegId make(int64_t Imm, const std::string &Hint = "c") {
    Instruction I(Opcode::Make);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.setImm(Imm);
    BB->append(std::move(I));
    return D;
  }

  /// Generic three-address binary operation.
  RegId binary(Opcode Op, RegId A, RegId B, const std::string &Hint = "t") {
    Instruction I(Op);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(A);
    I.addUse(B);
    BB->append(std::move(I));
    return D;
  }

  RegId add(RegId A, RegId B, const std::string &Hint = "t") {
    return binary(Opcode::Add, A, B, Hint);
  }
  RegId sub(RegId A, RegId B, const std::string &Hint = "t") {
    return binary(Opcode::Sub, A, B, Hint);
  }
  RegId mul(RegId A, RegId B, const std::string &Hint = "t") {
    return binary(Opcode::Mul, A, B, Hint);
  }
  RegId cmpLT(RegId A, RegId B, const std::string &Hint = "p") {
    return binary(Opcode::CmpLT, A, B, Hint);
  }
  RegId cmpEQ(RegId A, RegId B, const std::string &Hint = "p") {
    return binary(Opcode::CmpEQ, A, B, Hint);
  }

  /// d = a + imm
  RegId addI(RegId A, int64_t Imm, const std::string &Hint = "t") {
    Instruction I(Opcode::AddI);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(A);
    I.setImm(Imm);
    BB->append(std::move(I));
    return D;
  }

  /// d = s (plain move)
  RegId mov(RegId S, const std::string &Hint = "t") {
    Instruction I(Opcode::Mov);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(S);
    BB->append(std::move(I));
    return D;
  }

  /// Move into an existing register (non-SSA code).
  void movTo(RegId D, RegId S) {
    Instruction I(Opcode::Mov);
    I.addDef(D);
    I.addUse(S);
    BB->append(std::move(I));
  }

  // --- Destination-targeting variants for building non-SSA (pre-SSA)
  // --- code, used by the workload generators.

  void binaryTo(RegId D, Opcode Op, RegId A, RegId B) {
    Instruction I(Op);
    I.addDef(D);
    I.addUse(A);
    I.addUse(B);
    BB->append(std::move(I));
  }

  void makeTo(RegId D, int64_t Imm) {
    Instruction I(Opcode::Make);
    I.addDef(D);
    I.setImm(Imm);
    BB->append(std::move(I));
  }

  void immOpTo(RegId D, Opcode Op, RegId S, int64_t Imm) {
    Instruction I(Op);
    I.addDef(D);
    I.addUse(S);
    I.setImm(Imm);
    BB->append(std::move(I));
  }

  void loadTo(RegId D, RegId Addr) {
    Instruction I(Opcode::Load);
    I.addDef(D);
    I.addUse(Addr);
    BB->append(std::move(I));
  }

  void callTo(RegId D, const std::string &Callee,
              const std::vector<RegId> &Args) {
    Instruction I(Opcode::Call);
    I.addDef(D);
    for (RegId A : Args)
      I.addUse(A);
    I.setCallee(Callee);
    BB->append(std::move(I));
  }

  void psiTo(RegId D, RegId P, RegId A, RegId B) {
    Instruction I(Opcode::Psi);
    I.addDef(D);
    I.addUse(P);
    I.addUse(A);
    I.addUse(B);
    BB->append(std::move(I));
  }

  /// 2-operand constrained: d = s | (imm << 16).
  RegId more(RegId S, int64_t Imm, const std::string &Hint = "k") {
    Instruction I(Opcode::More);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(S);
    I.setImm(Imm);
    BB->append(std::move(I));
    return D;
  }

  /// 2-operand constrained: d = s + imm (post-modified addressing).
  RegId autoAdd(RegId S, int64_t Imm, const std::string &Hint = "q") {
    Instruction I(Opcode::AutoAdd);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(S);
    I.setImm(Imm);
    BB->append(std::move(I));
    return D;
  }

  /// SP-constrained: d = s + imm where s is SP-derived.
  RegId spAdjust(RegId S, int64_t Imm, const std::string &Hint = "sp") {
    Instruction I(Opcode::SpAdjust);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(S);
    I.setImm(Imm);
    BB->append(std::move(I));
    return D;
  }

  RegId load(RegId Addr, const std::string &Hint = "l") {
    Instruction I(Opcode::Load);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(Addr);
    BB->append(std::move(I));
    return D;
  }

  void store(RegId Addr, RegId Val) {
    Instruction I(Opcode::Store);
    I.addUse(Addr);
    I.addUse(Val);
    BB->append(std::move(I));
  }

  RegId call(const std::string &Callee, std::initializer_list<RegId> Args,
             const std::string &Hint = "r") {
    Instruction I(Opcode::Call);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    for (RegId A : Args)
      I.addUse(A);
    I.setCallee(Callee);
    BB->append(std::move(I));
    return D;
  }

  RegId callV(const std::string &Callee, const std::vector<RegId> &Args,
              const std::string &Hint = "r") {
    Instruction I(Opcode::Call);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    for (RegId A : Args)
      I.addUse(A);
    I.setCallee(Callee);
    BB->append(std::move(I));
    return D;
  }

  /// Declares the function parameters (entry block, first instruction).
  std::vector<RegId> input(std::initializer_list<std::string> Names) {
    Instruction I(Opcode::Input);
    std::vector<RegId> Params;
    for (const std::string &N : Names) {
      RegId R = func().makeVirtual(N);
      I.addDef(R);
      Params.push_back(R);
    }
    BB->append(std::move(I));
    return Params;
  }

  void output(RegId V) {
    Instruction I(Opcode::Output);
    I.addUse(V);
    BB->append(std::move(I));
  }

  void ret(RegId V) {
    Instruction I(Opcode::Ret);
    I.addUse(V);
    BB->append(std::move(I));
  }

  void jump(BasicBlock *Target) {
    Instruction I(Opcode::Jump);
    I.setTarget(0, Target);
    BB->append(std::move(I));
  }

  void branch(RegId Cond, BasicBlock *Then, BasicBlock *Else) {
    Instruction I(Opcode::Branch);
    I.addUse(Cond);
    I.setTarget(0, Then);
    I.setTarget(1, Else);
    BB->append(std::move(I));
  }

  /// Appends an (empty) phi; fill with addIncoming on the returned ref.
  /// Phis must precede all non-phi instructions.
  Instruction &phi(RegId D) {
    Instruction I(Opcode::Phi);
    I.addDef(D);
    assert((BB->empty() || BB->instructions().back().isPhi()) &&
           "phis must be grouped at block entry");
    return BB->append(std::move(I));
  }

  /// d = psi(p, a, b) — predicated select (psi-SSA stand-in).
  RegId psi(RegId P, RegId A, RegId B, const std::string &Hint = "ps") {
    Instruction I(Opcode::Psi);
    RegId D = func().makeVirtual(Hint);
    I.addDef(D);
    I.addUse(P);
    I.addUse(A);
    I.addUse(B);
    BB->append(std::move(I));
    return D;
  }

private:
  BasicBlock *BB;
};

} // namespace lao

#endif // LAO_IR_IRBUILDER_H
