//===- Target.h - Mini-LAI target description -------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical register file of the mini-LAI target, an abstraction of the
/// ST120 DSP register set used by the paper: general-purpose registers
/// R0..R7 (R0..R3 carry call arguments and R0 the result, per the ABI),
/// pointer registers P0..P3 (P0 carries a pointer argument), and the
/// dedicated stack pointer SP.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_TARGET_H
#define LAO_IR_TARGET_H

#include <cassert>
#include <cstdint>

namespace lao {

/// Identifier of a register (physical or virtual). Physical registers
/// occupy ids [0, Target::NumPhysRegs); virtual registers follow.
using RegId = uint32_t;

/// Sentinel for "no register" / "unpinned operand".
constexpr RegId InvalidReg = ~0u;

/// Static description of the mini-LAI target machine.
namespace Target {

enum : RegId {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  P0,
  P1,
  P2,
  P3,
  SP,
  NumPhysRegs
};

/// Number of general-purpose registers used for argument passing.
constexpr unsigned NumArgRegs = 4;

/// Returns the textual name of physical register \p R.
inline const char *physRegName(RegId R) {
  static const char *const Names[NumPhysRegs] = {
      "R0", "R1", "R2", "R3", "R4", "R5", "R6",
      "R7", "P0", "P1", "P2", "P3", "SP"};
  assert(R < NumPhysRegs && "not a physical register");
  return Names[R];
}

/// Returns the argument register carrying call/function argument \p Index,
/// or InvalidReg if the index is beyond the register-passed arguments.
inline RegId argReg(unsigned Index) {
  return Index < NumArgRegs ? R0 + Index : InvalidReg;
}

/// Register carrying call results and the function return value.
inline RegId retReg() { return R0; }

} // namespace Target

} // namespace lao

#endif // LAO_IR_TARGET_H
