//===- DotExport.h - Graphviz rendering of CFGs and graphs ------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) export of a function's control-flow graph, with the
/// instructions in each block. Exposed through `lao-opt --dot` for
/// inspecting pinned SSA, translated and allocated code.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_DOTEXPORT_H
#define LAO_IR_DOTEXPORT_H

#include "ir/Function.h"

#include <string>

namespace lao {

/// Renders \p F as a DOT digraph (one record node per block, edges per
/// terminator target, phi-incoming edges dashed).
std::string exportDot(const Function &F);

} // namespace lao

#endif // LAO_IR_DOTEXPORT_H
