//===- Clone.cpp - Deep copy of functions --------------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"

#include <cassert>

using namespace lao;

std::unique_ptr<Function> lao::cloneFunction(const Function &F) {
  auto Clone = std::make_unique<Function>(F.name());

  // Recreate the value table: ids must match, so create virtuals in
  // order with identical names.
  for (RegId V = Target::NumPhysRegs; V < F.numValues(); ++V) {
    RegId NewId = Clone->makeVirtual(F.valueName(V));
    assert(NewId == V && "value id mismatch while cloning");
    (void)NewId;
  }

  // Recreate blocks (ids are assigned in creation order).
  std::vector<BasicBlock *> NewBlocks;
  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = Clone->createBlock(BB->name());
    assert(NB->id() == BB->id() && "block id mismatch while cloning");
    NewBlocks.push_back(NB);
  }

  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = NewBlocks[BB->id()];
    for (const Instruction &I : BB->instructions()) {
      Instruction NI(I.op());
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        NI.addDef(I.def(K));
        NI.pinDef(K, I.defPin(K));
      }
      if (I.isPhi()) {
        for (unsigned K = 0; K < I.numUses(); ++K) {
          NI.addIncoming(I.use(K), NewBlocks[I.incomingBlock(K)->id()]);
          NI.pinUse(K, I.usePin(K));
        }
      } else {
        for (unsigned K = 0; K < I.numUses(); ++K) {
          NI.addUse(I.use(K));
          NI.pinUse(K, I.usePin(K));
        }
      }
      NI.setImm(I.imm());
      if (I.op() == Opcode::Call)
        NI.setCallee(I.callee());
      if (I.op() == Opcode::Jump || I.op() == Opcode::Branch) {
        NI.setTarget(0, NewBlocks[I.target(0)->id()]);
        if (I.op() == Opcode::Branch)
          NI.setTarget(1, NewBlocks[I.target(1)->id()]);
      }
      NB->append(std::move(NI));
    }
  }
  return Clone;
}
