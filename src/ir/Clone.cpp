//===- Clone.cpp - Deep copy of functions --------------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"

#include <cassert>

using namespace lao;

std::unique_ptr<Function> lao::cloneFunction(const Function &F) {
  auto Clone = std::make_unique<Function>(F.name());

  // The value table is copied verbatim (ids, names, physical flags).
  Clone->copyValueTableFrom(F);

  // Recreate blocks (ids are assigned in creation order).
  std::vector<BasicBlock *> NewBlocks;
  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = Clone->createBlock(BB->name());
    assert(NB->id() == BB->id() && "block id mismatch while cloning");
    NewBlocks.push_back(NB);
  }

  // Instructions are record copies — one fixed-size record memcpy plus a
  // slab memcpy per instruction — with the block pointers (branch targets
  // and phi incoming) remapped into the clone.
  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = NewBlocks[BB->id()];
    for (const Instruction &I : BB->instructions()) {
      InstrRef R = Clone->cloneInstr(I);
      Instruction &NI = Clone->instr(R);
      if (NI.target(0))
        NI.setTarget(0, NewBlocks[NI.target(0)->id()]);
      if (NI.target(1))
        NI.setTarget(1, NewBlocks[NI.target(1)->id()]);
      if (NI.isPhi())
        for (unsigned K = 0; K < NI.numUses(); ++K)
          NI.setIncomingBlock(K, NewBlocks[NI.incomingBlock(K)->id()]);
      NB->instructions().appendRef(R);
    }
  }
  return Clone;
}
