//===- IRParser.h - Textual mini-LAI input ----------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual mini-LAI format produced by IRPrinter. Intended for
/// tests and examples; errors are reported through an out-parameter rather
/// than exceptions (LLVM-style).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_IRPARSER_H
#define LAO_IR_IRPARSER_H

#include "ir/Function.h"

#include <memory>
#include <string>

namespace lao {

/// Parses \p Text into a Function. On failure returns nullptr and, if
/// \p ErrorOut is non-null, stores a "line N: message" diagnostic into it.
///
/// Grammar (one instruction per line, '#' or ';' start comments):
/// \code
///   func @name {
///   label:
///     input %a, %b
///     %d^R0 = add %a^R0, %b
///     %x = phi [%a, bb0], [%y, bb1]
///     parcopy %a = %b, %c = %d
///     branch %p, bb1, bb2
///     ...
///   }
/// \endcode
std::unique_ptr<Function> parseFunction(const std::string &Text,
                                        std::string *ErrorOut = nullptr);

} // namespace lao

#endif // LAO_IR_IRPARSER_H
