//===- Verifier.cpp - Structural and pinning checks -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace lao;

namespace {

/// Expected operand arity per opcode; ~0u means "variable".
struct Arity {
  unsigned Defs;
  unsigned Uses;
};

Arity arityOf(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return {1, 1};
  case Opcode::Make:
    return {1, 0};
  case Opcode::ParCopy:
    return {~0u, ~0u};
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpLT:
  case Opcode::CmpEQ:
    return {1, 2};
  case Opcode::AddI:
  case Opcode::More:
  case Opcode::AutoAdd:
  case Opcode::SpAdjust:
    return {1, 1};
  case Opcode::Load:
    return {1, 1};
  case Opcode::Store:
    return {0, 2};
  case Opcode::Call:
    return {1, ~0u};
  case Opcode::Input:
    return {~0u, 0};
  case Opcode::Output:
    return {0, 1};
  case Opcode::Ret:
    return {0, 1};
  case Opcode::Jump:
    return {0, 0};
  case Opcode::Branch:
    return {0, 1};
  case Opcode::Phi:
    return {1, ~0u};
  case Opcode::Psi:
    return {1, 3};
  }
  return {0, 0};
}

} // namespace

std::vector<std::string> lao::verifyStructure(const Function &F) {
  std::vector<std::string> Diags;
  auto Report = [&](const std::string &Msg) { Diags.push_back(Msg); };

  if (F.numBlocks() == 0) {
    Report("function has no blocks");
    return Diags;
  }

  // Per-block structure.
  for (const auto &BB : F.blocks()) {
    if (!BB->hasTerminator()) {
      Report(formatStr("block %s lacks a terminator", BB->name().c_str()));
      continue;
    }
    bool SeenNonPhi = false;
    unsigned Index = 0;
    for (const Instruction &I : BB->instructions()) {
      ++Index;
      if (I.isPhi() && SeenNonPhi)
        Report(formatStr("block %s: phi after non-phi instruction",
                         BB->name().c_str()));
      if (!I.isPhi())
        SeenNonPhi = true;
      if (I.isTerminator() && &I != &BB->back())
        Report(formatStr("block %s: terminator not last", BB->name().c_str()));

      Arity A = arityOf(I.op());
      if (A.Defs != ~0u && I.numDefs() != A.Defs)
        Report(formatStr("block %s: %s has %u defs, expected %u",
                         BB->name().c_str(), opcodeName(I.op()), I.numDefs(),
                         A.Defs));
      if (A.Uses != ~0u && I.numUses() != A.Uses)
        Report(formatStr("block %s: %s has %u uses, expected %u",
                         BB->name().c_str(), opcodeName(I.op()), I.numUses(),
                         A.Uses));
      if (I.isParCopy() && I.numDefs() != I.numUses())
        Report(formatStr("block %s: parcopy def/use count mismatch",
                         BB->name().c_str()));
      if (I.op() == Opcode::Input &&
          (BB.get() != &F.entry() || Index != 1))
        Report("input instruction must be the first instruction of the entry");
      for (RegId D : I.defs())
        if (D >= F.numValues())
          Report("def operand id out of range");
      for (RegId U : I.uses())
        if (U >= F.numValues())
          Report("use operand id out of range");
    }
  }
  if (!Diags.empty())
    return Diags; // CFG-based checks below assume basic structure.

  // Phi incoming lists must match CFG predecessors exactly.
  CFG Cfg(const_cast<Function &>(F));
  for (const auto &BB : F.blocks()) {
    const auto &Preds = Cfg.preds(BB.get());
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      if (I.numUses() != Preds.size()) {
        Report(formatStr("block %s: phi has %u incoming, block has %zu preds",
                         BB->name().c_str(), I.numUses(), Preds.size()));
        continue;
      }
      std::set<const BasicBlock *> Seen;
      for (unsigned K = 0; K < I.numUses(); ++K) {
        const BasicBlock *In = I.incomingBlock(K);
        if (!Seen.insert(In).second)
          Report(formatStr("block %s: phi lists pred %s twice",
                           BB->name().c_str(), In->name().c_str()));
        if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
          Report(formatStr("block %s: phi incoming %s is not a predecessor",
                           BB->name().c_str(), In->name().c_str()));
      }
    }
    if (BB.get() == &F.entry() && !BB->empty() && BB->front().isPhi())
      Report("entry block must not contain phis");
  }
  return Diags;
}

std::vector<std::string> lao::verifyPinning(const Function &F) {
  std::vector<std::string> Diags;
  auto Report = [&](const std::string &Msg) { Diags.push_back(Msg); };

  for (const auto &BB : F.blocks()) {
    // Case 3: distinct phi defs of one block pinned to a common resource.
    std::map<RegId, RegId> PhiDefPinOwner; // resource -> phi result
    for (const Instruction &I : BB->instructions()) {
      // Case 1: two defs pinned to the same resource.
      for (unsigned A = 0; A < I.numDefs(); ++A) {
        if (I.defPin(A) == InvalidReg)
          continue;
        for (unsigned B = A + 1; B < I.numDefs(); ++B)
          if (I.defPin(B) == I.defPin(A) && I.def(A) != I.def(B))
            Report(formatStr(
                "case 1: defs %%%s and %%%s of one %s pinned to %s",
                F.valueName(I.def(A)).c_str(), F.valueName(I.def(B)).c_str(),
                opcodeName(I.op()), F.valueName(I.defPin(A)).c_str()));
      }
      // Case 2: two uses pinned to the same resource.
      for (unsigned A = 0; A < I.numUses(); ++A) {
        if (I.usePin(A) == InvalidReg)
          continue;
        for (unsigned B = A + 1; B < I.numUses(); ++B)
          if (I.usePin(B) == I.usePin(A) && I.use(A) != I.use(B))
            Report(formatStr(
                "case 2: uses %%%s and %%%s of one %s pinned to %s",
                F.valueName(I.use(A)).c_str(), F.valueName(I.use(B)).c_str(),
                opcodeName(I.op()), F.valueName(I.usePin(A)).c_str()));
      }
      if (I.isPhi()) {
        RegId DP = I.defPin(0);
        if (DP != InvalidReg) {
          auto [It, Inserted] = PhiDefPinOwner.emplace(DP, I.def(0));
          if (!Inserted && It->second != I.def(0))
            Report(formatStr(
                "case 3: phi defs %%%s and %%%s of block %s pinned to %s",
                F.valueName(It->second).c_str(),
                F.valueName(I.def(0)).c_str(), BB->name().c_str(),
                F.valueName(DP).c_str()));
        }
        // Case 5: phi arguments are implicitly pinned to the resource of
        // the result; an explicit different pin is illegal.
        for (unsigned K = 0; K < I.numUses(); ++K)
          if (I.usePin(K) != InvalidReg && I.usePin(K) != DP)
            Report(formatStr(
                "case 5: phi arg %%%s pinned to %s, result pinned to %s",
                F.valueName(I.use(K)).c_str(),
                F.valueName(I.usePin(K)).c_str(),
                DP == InvalidReg ? "<none>" : F.valueName(DP).c_str()));
      }
    }
  }
  return Diags;
}
