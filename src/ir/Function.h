//===- Function.h - Mini-LAI functions and basic blocks ---------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock and Function containers for the mini-LAI IR. A Function owns
/// a bump arena holding a chunked, dense table of fixed-size Instruction
/// records (addressed by stable 32-bit InstrRef indices) plus every
/// overflow operand slab, and the table of register values (physical
/// registers first, then virtual registers created on demand).
///
/// Per-block instruction sequences are InstrList chains of table indices
/// (Prev/Next links inside the records) instead of std::list nodes. The
/// InstrList API mirrors the std::list surface the passes were written
/// against — begin/end, insert/erase/splice, push_back/pop_back — so
/// iterator-shaped pass code keeps working, while the records themselves
/// sit densely in arena chunks in allocation (≈ program) order, which is
/// what makes whole-function walks cache-linear. See docs/IR.md for the
/// layout and the InstrRef stability contract.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_FUNCTION_H
#define LAO_IR_FUNCTION_H

#include "ir/Instruction.h"
#include "ir/Target.h"
#include "support/Arena.h"

#include <cassert>
#include <cstddef>
#include <iterator>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace lao {

class Function;

/// A doubly-linked sequence of instructions threaded through a Function's
/// instruction table. BasicBlock holds one; passes that stage replacement
/// sequences (translate's replay) build detached lists bound to the same
/// function and install them with move-assignment.
class InstrList {
public:
  template <bool IsConst> class IterImpl;
  using iterator = IterImpl<false>;
  using const_iterator = IterImpl<true>;

  InstrList() = default;
  explicit InstrList(Function *F) : F(F) {}

  InstrList(const InstrList &) = delete;
  InstrList &operator=(const InstrList &) = delete;

  InstrList(InstrList &&O) noexcept
      : F(O.F), First(O.First), Last(O.Last), N(O.N) {
    O.First = O.Last = InvalidInstrRef;
    O.N = 0;
  }

  /// Destroys the current chain (slots return to the function's free
  /// list) and takes over \p O's chain. Both lists must belong to the
  /// same function.
  InstrList &operator=(InstrList &&O) noexcept;

  ~InstrList() { clear(); }

  Function *function() const { return F; }

  bool empty() const { return N == 0; }
  size_t size() const { return N; }

  inline iterator begin();
  inline iterator end();
  inline const_iterator begin() const;
  inline const_iterator end() const;

  inline auto rbegin();
  inline auto rend();
  inline auto rbegin() const;
  inline auto rend() const;

  inline Instruction &front();
  inline Instruction &back();
  inline const Instruction &front() const;
  inline const Instruction &back() const;

  /// Interns \p I into the function's table and appends it.
  inline Instruction &push_back(Instruction I);
  inline void pop_back();

  /// Interns \p I and links it before \p Pos; returns an iterator to it.
  inline iterator insert(iterator Pos, Instruction I);

  /// Unlinks and frees the instruction at \p Pos; returns the next
  /// position. Iterators and references to other instructions stay valid.
  inline iterator erase(iterator Pos);

  /// Moves the instruction at \p It (an element of \p Src) before \p Pos
  /// of this list without copying the record: a pure relink, as with
  /// std::list::splice. Both lists must belong to the same function.
  inline void splice(iterator Pos, InstrList &Src, iterator It);

  /// Links an already-interned, unlinked record at the end. The clone
  /// fast path: Function::cloneInstr + appendRef skips the detached
  /// Instruction round-trip of push_back.
  inline void appendRef(InstrRef R);

  /// Frees every instruction of the chain.
  inline void clear();

private:
  friend class BasicBlock;
  friend class Function;
  template <bool IsConst> friend class IterImpl;

  /// Links table slot \p R before \p PosRef (InvalidInstrRef = at end).
  inline void linkBefore(InstrRef R, InstrRef PosRef);
  /// Unlinks \p R from the chain; returns the ref that followed it.
  inline InstrRef unlink(InstrRef R);

  Function *F = nullptr;
  InstrRef First = InvalidInstrRef;
  InstrRef Last = InvalidInstrRef;
  uint32_t N = 0;
};

/// Bidirectional iterator over an InstrList chain. Holds a direct record
/// pointer (records never move), so dereferencing is one load; the list
/// pointer supports end() decrement and erase/splice.
template <bool IsConst> class InstrList::IterImpl {
  using ListT = std::conditional_t<IsConst, const InstrList, InstrList>;
  using InstT = std::conditional_t<IsConst, const Instruction, Instruction>;

public:
  using iterator_category = std::bidirectional_iterator_tag;
  using value_type = Instruction;
  using difference_type = std::ptrdiff_t;
  using pointer = InstT *;
  using reference = InstT &;

  IterImpl() = default;
  IterImpl(ListT *L, InstT *P) : L(L), P(P) {}

  /// iterator -> const_iterator conversion.
  template <bool WasConst, typename = std::enable_if_t<IsConst && !WasConst>>
  IterImpl(const IterImpl<WasConst> &O) : L(O.list()), P(O.ptr()) {}

  reference operator*() const {
    assert(P && "dereferencing end()");
    return *P;
  }
  pointer operator->() const {
    assert(P && "dereferencing end()");
    return P;
  }

  inline IterImpl &operator++();
  IterImpl operator++(int) {
    IterImpl T = *this;
    ++*this;
    return T;
  }
  inline IterImpl &operator--();
  IterImpl operator--(int) {
    IterImpl T = *this;
    --*this;
    return T;
  }

  bool operator==(const IterImpl &O) const { return P == O.P && L == O.L; }
  bool operator!=(const IterImpl &O) const { return !(*this == O); }

  ListT *list() const { return L; }
  InstT *ptr() const { return P; }

private:
  ListT *L = nullptr;
  InstT *P = nullptr; ///< nullptr encodes end().
};

/// A basic block: a straight-line chain of instructions ending in a
/// terminator, with phis (if any) grouped at the front.
class BasicBlock {
public:
  BasicBlock(Function *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)), Insts(Parent) {}

  Function *parent() const { return Parent; }

  /// Dense, stable index of the block within its function.
  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  using InstList = InstrList;
  InstList &instructions() { return Insts; }
  const InstList &instructions() const { return Insts; }

  bool empty() const { return Insts.empty(); }

  Instruction &front() {
    assert(!Insts.empty() && "empty block");
    return Insts.front();
  }
  Instruction &back() {
    assert(!Insts.empty() && "empty block");
    return Insts.back();
  }
  const Instruction &back() const {
    assert(!Insts.empty() && "empty block");
    return Insts.back();
  }

  /// Appends \p I; asserts that no instruction follows a terminator.
  Instruction &append(Instruction I) {
    assert((Insts.empty() || !Insts.back().isTerminator()) &&
           "appending past terminator");
    return Insts.push_back(std::move(I));
  }

  /// Inserts \p I before iterator \p Pos and returns an iterator to it.
  InstList::iterator insert(InstList::iterator Pos, Instruction I) {
    return Insts.insert(Pos, std::move(I));
  }

  /// Returns an iterator to the first non-phi instruction.
  InstList::iterator firstNonPhi() {
    auto It = Insts.begin();
    while (It != Insts.end() && It->isPhi())
      ++It;
    return It;
  }

  /// Returns the terminator, which must exist.
  Instruction &terminator() {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block lacks a terminator");
    return Insts.back();
  }
  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block lacks a terminator");
    return Insts.back();
  }

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Returns the successor blocks in terminator order.
  std::vector<BasicBlock *> successors() const {
    std::vector<BasicBlock *> Succs;
    if (!hasTerminator())
      return Succs;
    const Instruction &T = terminator();
    if (T.op() == Opcode::Jump)
      Succs.push_back(T.target(0));
    else if (T.op() == Opcode::Branch) {
      Succs.push_back(T.target(0));
      if (T.target(1) != T.target(0))
        Succs.push_back(T.target(1));
    }
    return Succs;
  }

private:
  Function *Parent;
  unsigned Id;
  std::string Name;
  InstList Insts;
};

/// A mini-LAI function: blocks plus the register value table, backed by
/// one bump arena holding the chunked instruction table and all operand
/// overflow slabs.
class Function {
  /// Instruction records per table chunk. 256 records of ~136 bytes fit
  /// a few per 64 KiB arena chunk without oversize allocations.
  static constexpr uint32_t ChunkShift = 8;
  static constexpr uint32_t ChunkSize = 1u << ChunkShift;
  static constexpr uint32_t ChunkMask = ChunkSize - 1;

public:
  explicit Function(std::string Name) : Name(std::move(Name)) {
    Values.reserve(Target::NumPhysRegs + 16);
    for (RegId R = 0; R < Target::NumPhysRegs; ++R) {
      Values.push_back({Target::physRegName(R), /*IsPhysical=*/true});
      NameIndex.emplace(Values.back().Name, R);
    }
  }

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  /// Creates and appends a new block. The first created block is the entry.
  BasicBlock *createBlock(std::string BlockName = std::string()) {
    unsigned Id = static_cast<unsigned>(Blocks.size());
    if (BlockName.empty())
      BlockName = "bb" + std::to_string(Id);
    Blocks.push_back(std::make_unique<BasicBlock>(this, Id, BlockName));
    return Blocks.back().get();
  }

  BasicBlock &entry() {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }
  const BasicBlock &entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t numBlocks() const { return Blocks.size(); }

  BasicBlock *blockByName(const std::string &BlockName) const {
    for (const auto &BB : Blocks)
      if (BB->name() == BlockName)
        return BB.get();
    return nullptr;
  }

  /// Creates a fresh virtual register. \p Hint names the register; a
  /// numeric suffix is appended if the hint is taken or empty.
  RegId makeVirtual(const std::string &Hint = std::string()) {
    RegId Id = static_cast<RegId>(Values.size());
    std::string N = Hint;
    if (N.empty() || findValue(N) != InvalidReg)
      N = (N.empty() ? "v" : N + ".") + std::to_string(Id);
    NameIndex.emplace(N, Id);
    Values.push_back({std::move(N), /*IsPhysical=*/false});
    return Id;
  }

  size_t numValues() const { return Values.size(); }

  bool isPhysical(RegId R) const {
    assert(R < Values.size() && "value id out of range");
    return Values[R].IsPhysical;
  }

  const std::string &valueName(RegId R) const {
    assert(R < Values.size() && "value id out of range");
    return Values[R].Name;
  }

  /// Finds a value by name, or InvalidReg.
  RegId findValue(const std::string &ValueName) const {
    auto It = NameIndex.find(ValueName);
    return It == NameIndex.end() ? InvalidReg : It->second;
  }

  /// Number of parameters, defined by the entry Input instruction (0 if
  /// the function has none).
  unsigned numParams() const {
    if (Blocks.empty() || Blocks.front()->empty())
      return 0;
    const Instruction &First = Blocks.front()->instructions().front();
    return First.op() == Opcode::Input ? First.numDefs() : 0;
  }

  // --- Instruction table ------------------------------------------------

  /// The record for table slot \p R. References are stable for the
  /// lifetime of the slot (chunks never move or shrink).
  Instruction &instr(InstrRef R) {
    assert((R >> ChunkShift) < TableChunks.size() && "bad instruction ref");
    return TableChunks[R >> ChunkShift][R & ChunkMask];
  }
  const Instruction &instr(InstrRef R) const {
    assert((R >> ChunkShift) < TableChunks.size() && "bad instruction ref");
    return TableChunks[R >> ChunkShift][R & ChunkMask];
  }

  Instruction *instrPtr(InstrRef R) {
    return R == InvalidInstrRef ? nullptr : &instr(R);
  }
  const Instruction *instrPtr(InstrRef R) const {
    return R == InvalidInstrRef ? nullptr : &instr(R);
  }

  /// One past the largest InstrRef ever handed out: the size for dense
  /// side tables indexed by ref (DefUseIndex ordinals etc.).
  uint32_t instrRefLimit() const { return NumSlots; }

  /// Moves \p I into a fresh table slot (recycling freed slots) and
  /// migrates any detached heap slabs into the arena. Returns the slot.
  InstrRef internInstr(Instruction &&I);

  /// Copies \p Src (an instruction of any function) into a fresh slot of
  /// this function's table: a record memcpy plus a slab memcpy, no
  /// per-operand rebuild. Block pointers (targets, phi incoming) still
  /// reference \p Src's function; the caller remaps them. The record is
  /// returned unlinked — attach it with InstrList::appendRef.
  InstrRef cloneInstr(const Instruction &Src);

  /// Returns \p R's slot to the free list. The record must already be
  /// unlinked from every chain.
  void freeInstr(InstrRef R) {
    assert(instr(R).Parent == this && "freeing a foreign instruction");
    instr(R).Parent = nullptr;
    FreeRefs.push_back(R);
  }

  // --- Arena and layout statistics --------------------------------------

  Arena &arena() { return IRArena; }
  const Arena &arena() const { return IRArena; }

  /// Bytes of operand/incoming overflow slabs drawn from the arena —
  /// stays 0 while every instruction fits its inline slots.
  size_t operandSlabBytes() const { return SlabBytes; }

  /// Live instruction count (allocated slots minus freed).
  size_t numInstrs() const { return NumSlots - FreeRefs.size(); }

  /// Copies \p O's value table verbatim (ids, names, physical flags).
  /// Clone-only: requires this function's table to still be pristine.
  void copyValueTableFrom(const Function &O) {
    assert(Values.size() == Target::NumPhysRegs && "value table not pristine");
    Values = O.Values;
    NameIndex = O.NameIndex;
  }

private:
  friend class Instruction;
  friend class InstrList;

  struct ValueInfo {
    std::string Name;
    bool IsPhysical;
  };

  /// Allocates a raw table slot (no construction).
  InstrRef allocSlot();

  std::string Name;
  Arena IRArena;
  std::vector<Instruction *> TableChunks; ///< Arena-resident record chunks.
  uint32_t NumSlots = 0;                  ///< Slots handed out (bump).
  std::vector<InstrRef> FreeRefs;         ///< Recyclable slots.
  size_t SlabBytes = 0;                   ///< Operand/incoming slab bytes.
  // Blocks are declared after the table state: block (and InstrList)
  // destructors run first and may touch the free list.
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<ValueInfo> Values;
  std::unordered_map<std::string, RegId> NameIndex;
};

//===----------------------------------------------------------------------===//
// Inline definitions (need the complete Function type)
//===----------------------------------------------------------------------===//

template <bool IsConst>
inline InstrList::IterImpl<IsConst> &InstrList::IterImpl<IsConst>::
operator++() {
  assert(P && "advancing end()");
  P = L->F->instrPtr(P->NextRef);
  return *this;
}

template <bool IsConst>
inline InstrList::IterImpl<IsConst> &InstrList::IterImpl<IsConst>::
operator--() {
  if (!P)
    P = L->F->instrPtr(L->Last);
  else
    P = L->F->instrPtr(P->PrevRef);
  assert(P && "decrementing begin()");
  return *this;
}

inline InstrList::iterator InstrList::begin() {
  return iterator(this, F ? F->instrPtr(First) : nullptr);
}
inline InstrList::iterator InstrList::end() { return iterator(this, nullptr); }
inline InstrList::const_iterator InstrList::begin() const {
  return const_iterator(this, F ? F->instrPtr(First) : nullptr);
}
inline InstrList::const_iterator InstrList::end() const {
  return const_iterator(this, nullptr);
}

inline auto InstrList::rbegin() { return std::reverse_iterator<iterator>(end()); }
inline auto InstrList::rend() { return std::reverse_iterator<iterator>(begin()); }
inline auto InstrList::rbegin() const {
  return std::reverse_iterator<const_iterator>(end());
}
inline auto InstrList::rend() const {
  return std::reverse_iterator<const_iterator>(begin());
}

inline Instruction &InstrList::front() {
  assert(N && "front() on empty list");
  return F->instr(First);
}
inline Instruction &InstrList::back() {
  assert(N && "back() on empty list");
  return F->instr(Last);
}
inline const Instruction &InstrList::front() const {
  assert(N && "front() on empty list");
  return F->instr(First);
}
inline const Instruction &InstrList::back() const {
  assert(N && "back() on empty list");
  return F->instr(Last);
}

inline void InstrList::linkBefore(InstrRef R, InstrRef PosRef) {
  Instruction &I = F->instr(R);
  if (PosRef == InvalidInstrRef) { // Append.
    I.PrevRef = Last;
    I.NextRef = InvalidInstrRef;
    if (Last != InvalidInstrRef)
      F->instr(Last).NextRef = R;
    else
      First = R;
    Last = R;
  } else {
    Instruction &Pos = F->instr(PosRef);
    I.PrevRef = Pos.PrevRef;
    I.NextRef = PosRef;
    if (Pos.PrevRef != InvalidInstrRef)
      F->instr(Pos.PrevRef).NextRef = R;
    else
      First = R;
    Pos.PrevRef = R;
  }
  ++N;
}

inline InstrRef InstrList::unlink(InstrRef R) {
  Instruction &I = F->instr(R);
  InstrRef Next = I.NextRef;
  if (I.PrevRef != InvalidInstrRef)
    F->instr(I.PrevRef).NextRef = I.NextRef;
  else
    First = I.NextRef;
  if (I.NextRef != InvalidInstrRef)
    F->instr(I.NextRef).PrevRef = I.PrevRef;
  else
    Last = I.PrevRef;
  I.PrevRef = I.NextRef = InvalidInstrRef;
  --N;
  return Next;
}

inline Instruction &InstrList::push_back(Instruction I) {
  assert(F && "list not bound to a function");
  InstrRef R = F->internInstr(std::move(I));
  linkBefore(R, InvalidInstrRef);
  return F->instr(R);
}

inline void InstrList::pop_back() {
  assert(N && "pop_back() on empty list");
  InstrRef R = Last;
  unlink(R);
  F->freeInstr(R);
}

inline InstrList::iterator InstrList::insert(iterator Pos, Instruction I) {
  assert(F && "list not bound to a function");
  InstrRef R = F->internInstr(std::move(I));
  linkBefore(R, Pos.ptr() ? Pos.ptr()->Self : InvalidInstrRef);
  return iterator(this, &F->instr(R));
}

inline InstrList::iterator InstrList::erase(iterator Pos) {
  assert(Pos.ptr() && "erasing end()");
  InstrRef R = Pos.ptr()->Self;
  InstrRef Next = unlink(R);
  F->freeInstr(R);
  return iterator(this, F->instrPtr(Next));
}

inline void InstrList::splice(iterator Pos, InstrList &Src, iterator It) {
  assert(F == Src.F && "splice across functions");
  assert(It.ptr() && "splicing end()");
  InstrRef R = It.ptr()->Self;
  Src.unlink(R);
  linkBefore(R, Pos.ptr() ? Pos.ptr()->Self : InvalidInstrRef);
}

inline void InstrList::appendRef(InstrRef R) {
  assert(F && "list not bound to a function");
  assert(F->instr(R).Parent == F && "appending a foreign record");
  assert(F->instr(R).PrevRef == InvalidInstrRef &&
         F->instr(R).NextRef == InvalidInstrRef && "record already linked");
  linkBefore(R, InvalidInstrRef);
}

inline void InstrList::clear() {
  for (InstrRef R = First; R != InvalidInstrRef;) {
    InstrRef Next = F->instr(R).NextRef;
    F->instr(R).PrevRef = F->instr(R).NextRef = InvalidInstrRef;
    F->freeInstr(R);
    R = Next;
  }
  First = Last = InvalidInstrRef;
  N = 0;
}

inline InstrList &InstrList::operator=(InstrList &&O) noexcept {
  if (this == &O)
    return *this;
  assert((!F || !O.F || F == O.F) && "list assignment across functions");
  clear();
  if (!F)
    F = O.F;
  First = O.First;
  Last = O.Last;
  N = O.N;
  O.First = O.Last = InvalidInstrRef;
  O.N = 0;
  return *this;
}

} // namespace lao

#endif // LAO_IR_FUNCTION_H
