//===- Function.h - Mini-LAI functions and basic blocks ---------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock and Function containers for the mini-LAI IR. A Function owns
/// its blocks and the table of register values (physical registers first,
/// then virtual registers created on demand).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_FUNCTION_H
#define LAO_IR_FUNCTION_H

#include "ir/Instruction.h"
#include "ir/Target.h"

#include <cassert>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lao {

class Function;

/// A basic block: a straight-line list of instructions ending in a
/// terminator, with phis (if any) grouped at the front.
class BasicBlock {
public:
  BasicBlock(Function *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  Function *parent() const { return Parent; }

  /// Dense, stable index of the block within its function.
  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  using InstList = std::list<Instruction>;
  InstList &instructions() { return Insts; }
  const InstList &instructions() const { return Insts; }

  bool empty() const { return Insts.empty(); }

  Instruction &front() {
    assert(!Insts.empty() && "empty block");
    return Insts.front();
  }
  Instruction &back() {
    assert(!Insts.empty() && "empty block");
    return Insts.back();
  }
  const Instruction &back() const {
    assert(!Insts.empty() && "empty block");
    return Insts.back();
  }

  /// Appends \p I; asserts that no instruction follows a terminator.
  Instruction &append(Instruction I) {
    assert((Insts.empty() || !Insts.back().isTerminator()) &&
           "appending past terminator");
    Insts.push_back(std::move(I));
    return Insts.back();
  }

  /// Inserts \p I before iterator \p Pos and returns an iterator to it.
  InstList::iterator insert(InstList::iterator Pos, Instruction I) {
    return Insts.insert(Pos, std::move(I));
  }

  /// Returns an iterator to the first non-phi instruction.
  InstList::iterator firstNonPhi() {
    auto It = Insts.begin();
    while (It != Insts.end() && It->isPhi())
      ++It;
    return It;
  }

  /// Returns the terminator, which must exist.
  Instruction &terminator() {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block lacks a terminator");
    return Insts.back();
  }
  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block lacks a terminator");
    return Insts.back();
  }

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Returns the successor blocks in terminator order.
  std::vector<BasicBlock *> successors() const {
    std::vector<BasicBlock *> Succs;
    if (!hasTerminator())
      return Succs;
    const Instruction &T = terminator();
    if (T.op() == Opcode::Jump)
      Succs.push_back(T.target(0));
    else if (T.op() == Opcode::Branch) {
      Succs.push_back(T.target(0));
      if (T.target(1) != T.target(0))
        Succs.push_back(T.target(1));
    }
    return Succs;
  }

private:
  Function *Parent;
  unsigned Id;
  std::string Name;
  InstList Insts;
};

/// A mini-LAI function: blocks plus the register value table.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {
    for (RegId R = 0; R < Target::NumPhysRegs; ++R) {
      Values.push_back({Target::physRegName(R), /*IsPhysical=*/true});
      NameIndex.emplace(Values.back().Name, R);
    }
  }

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  /// Creates and appends a new block. The first created block is the entry.
  BasicBlock *createBlock(std::string BlockName = std::string()) {
    unsigned Id = static_cast<unsigned>(Blocks.size());
    if (BlockName.empty())
      BlockName = "bb" + std::to_string(Id);
    Blocks.push_back(std::make_unique<BasicBlock>(this, Id, BlockName));
    return Blocks.back().get();
  }

  BasicBlock &entry() {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }
  const BasicBlock &entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t numBlocks() const { return Blocks.size(); }

  BasicBlock *blockByName(const std::string &BlockName) const {
    for (const auto &BB : Blocks)
      if (BB->name() == BlockName)
        return BB.get();
    return nullptr;
  }

  /// Creates a fresh virtual register. \p Hint names the register; a
  /// numeric suffix is appended if the hint is taken or empty.
  RegId makeVirtual(const std::string &Hint = std::string()) {
    RegId Id = static_cast<RegId>(Values.size());
    std::string N = Hint;
    if (N.empty() || findValue(N) != InvalidReg)
      N = (N.empty() ? "v" : N + ".") + std::to_string(Id);
    NameIndex.emplace(N, Id);
    Values.push_back({std::move(N), /*IsPhysical=*/false});
    return Id;
  }

  size_t numValues() const { return Values.size(); }

  bool isPhysical(RegId R) const {
    assert(R < Values.size() && "value id out of range");
    return Values[R].IsPhysical;
  }

  const std::string &valueName(RegId R) const {
    assert(R < Values.size() && "value id out of range");
    return Values[R].Name;
  }

  /// Finds a value by name, or InvalidReg.
  RegId findValue(const std::string &ValueName) const {
    auto It = NameIndex.find(ValueName);
    return It == NameIndex.end() ? InvalidReg : It->second;
  }

  /// Number of parameters, defined by the entry Input instruction (0 if
  /// the function has none).
  unsigned numParams() const {
    if (Blocks.empty() || Blocks.front()->empty())
      return 0;
    const Instruction &First = Blocks.front()->instructions().front();
    return First.op() == Opcode::Input ? First.numDefs() : 0;
  }

private:
  struct ValueInfo {
    std::string Name;
    bool IsPhysical;
  };

  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<ValueInfo> Values;
  std::unordered_map<std::string, RegId> NameIndex;
};

} // namespace lao

#endif // LAO_IR_FUNCTION_H
