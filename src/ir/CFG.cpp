//===- CFG.cpp - Control-flow graph view and edge utilities ---------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include <algorithm>
#include <cassert>

using namespace lao;

CFG::CFG(Function &F) : F(F) {
  size_t N = F.numBlocks();
  Preds.resize(N);
  Succs.resize(N);
  RpoIndex.assign(N, ~0u);
  Reachable.assign(N, false);

  for (const auto &BB : F.blocks()) {
    Succs[BB->id()] = BB->successors();
    for (BasicBlock *S : Succs[BB->id()])
      Preds[S->id()].push_back(BB.get());
  }

  // Iterative post-order DFS from the entry.
  std::vector<BasicBlock *> PostOrder;
  PostOrder.reserve(N);
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  std::vector<bool> Visited(N, false);
  if (N != 0) {
    BasicBlock *Entry = &F.entry();
    Visited[Entry->id()] = true;
    Stack.push_back({Entry, 0});
    while (!Stack.empty()) {
      auto &[BB, NextSucc] = Stack.back();
      const auto &S = Succs[BB->id()];
      if (NextSucc < S.size()) {
        BasicBlock *Child = S[NextSucc++];
        if (!Visited[Child->id()]) {
          Visited[Child->id()] = true;
          Stack.push_back({Child, 0});
        }
        continue;
      }
      PostOrder.push_back(BB);
      Stack.pop_back();
    }
  }

  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  for (BasicBlock *BB : Rpo)
    Reachable[BB->id()] = true;
  // Append unreachable blocks so analyses still see every block.
  for (const auto &BB : F.blocks())
    if (!Reachable[BB->id()])
      Rpo.push_back(BB.get());
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]->id()] = I;
}

unsigned lao::splitCriticalEdges(Function &F) {
  // Snapshot predecessor counts before mutating.
  std::vector<unsigned> NumPreds(F.numBlocks(), 0);
  std::vector<BasicBlock *> Original;
  for (const auto &BB : F.blocks()) {
    Original.push_back(BB.get());
    for (BasicBlock *S : BB->successors())
      ++NumPreds[S->id()];
  }

  unsigned NumSplit = 0;
  for (BasicBlock *BB : Original) {
    // Normalize degenerate branches (both targets equal) into jumps so a
    // block never has two parallel edges to the same successor.
    if (BB->hasTerminator()) {
      Instruction &T = BB->terminator();
      if (T.op() == Opcode::Branch && T.target(0) == T.target(1)) {
        BasicBlock *Tgt = T.target(0);
        Instruction J(Opcode::Jump);
        J.setTarget(0, Tgt);
        BB->instructions().pop_back();
        BB->append(std::move(J));
      }
    }
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Succs.size() < 2)
      continue;
    Instruction &Term = BB->terminator();
    assert(Term.op() == Opcode::Branch && "multi-successor non-branch");
    for (unsigned TI = 0; TI < 2; ++TI) {
      BasicBlock *S = Term.target(TI);
      // Split if the edge is critical, or if the successor has phis at
      // all: phi-related parallel copies are placed at the end of the
      // predecessor and must not execute on the path to a sibling
      // successor.
      bool SuccHasPhis = !S->empty() && S->front().isPhi();
      if (NumPreds[S->id()] < 2 && !SuccHasPhis)
        continue;
      // Critical edge BB -> S: insert an edge block.
      BasicBlock *Edge =
          F.createBlock(BB->name() + "." + S->name() + ".edge");
      {
        Instruction J(Opcode::Jump);
        J.setTarget(0, S);
        Edge->append(std::move(J));
      }
      Term.setTarget(TI, Edge);
      // Redirect phi incoming entries in S. If both branch targets pointed
      // at S, the first rewrite handles the (single) phi entry; subsequent
      // iterations find no BB entry left, which is fine.
      for (Instruction &I : S->instructions()) {
        if (!I.isPhi())
          break;
        for (unsigned UI = 0; UI < I.numUses(); ++UI)
          if (I.incomingBlock(UI) == BB)
            I.setIncomingBlock(UI, Edge);
      }
      ++NumSplit;
    }
  }
  return NumSplit;
}
