//===- IRParser.cpp - Textual mini-LAI input --------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace lao;

namespace {

/// Per-line token cursor.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Text(Line) {}

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  /// Reads an identifier ([A-Za-z0-9_.]+).
  std::string ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.')
        ++Pos;
      else
        break;
    }
    return Text.substr(Start, Pos - Start);
  }

  /// Reads a signed integer (decimal or 0x-hex).
  bool integer(int64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           std::isalnum(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    std::string Tok = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    Out = std::strtoll(Tok.c_str(), &End, 0);
    return End != nullptr && *End == '\0';
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

/// Stateful single-function parser.
class Parser {
public:
  std::unique_ptr<Function> run(const std::string &Text, std::string *Err);

private:
  std::unique_ptr<Function> F;
  std::map<std::string, BasicBlock *> BlocksByName;
  std::string Error;
  unsigned LineNo = 0;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatStr("line %u: %s", LineNo, Msg.c_str());
    return false;
  }

  RegId valueFor(const std::string &Name) {
    RegId R = F->findValue(Name);
    if (R != InvalidReg)
      return R;
    return F->makeVirtual(Name);
  }

  BasicBlock *blockFor(const std::string &Label) {
    auto It = BlocksByName.find(Label);
    return It == BlocksByName.end() ? nullptr : It->second;
  }

  /// Parses "%name" with optional "^res" pin; stores pin or InvalidReg.
  bool operand(LineCursor &C, RegId &Reg, RegId &Pin) {
    Pin = InvalidReg;
    if (!C.consume('%'))
      return fail("expected '%' operand");
    std::string Name = C.ident();
    if (Name.empty())
      return fail("expected value name");
    Reg = valueFor(Name);
    if (C.consume('^')) {
      std::string PinName = C.ident();
      if (PinName.empty())
        return fail("expected pin resource name");
      Pin = valueFor(PinName);
    }
    return true;
  }

  /// Appends one use operand parsed from \p C to \p I.
  bool parseUse(LineCursor &C, Instruction &I) {
    RegId R, Pin;
    if (!operand(C, R, Pin))
      return false;
    I.addUse(R);
    if (Pin != InvalidReg)
      I.pinUse(I.numUses() - 1, Pin);
    return true;
  }

  bool parseInstruction(LineCursor &C, BasicBlock *BB);
};

bool Parser::parseInstruction(LineCursor &C, BasicBlock *BB) {
  bool HasDef = false;
  RegId Def = InvalidReg, DefPin = InvalidReg;
  std::string OpName;
  if (C.peek() == '%') {
    if (!operand(C, Def, DefPin))
      return false;
    if (!C.consume('='))
      return fail("expected '=' after def operand");
    HasDef = true;
    OpName = C.ident();
  } else {
    OpName = C.ident();
  }
  if (OpName.empty())
    return fail("expected opcode");

  auto finishDef = [&](Instruction &I) {
    I.addDef(Def);
    if (DefPin != InvalidReg)
      I.pinDef(0, DefPin);
  };

  static const std::map<std::string, Opcode> BinaryOps = {
      {"add", Opcode::Add},     {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},     {"and", Opcode::And},
      {"or", Opcode::Or},       {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},     {"shr", Opcode::Shr},
      {"cmplt", Opcode::CmpLT}, {"cmpeq", Opcode::CmpEQ}};
  static const std::map<std::string, Opcode> ImmOps = {
      {"addi", Opcode::AddI},
      {"more", Opcode::More},
      {"autoadd", Opcode::AutoAdd},
      {"spadjust", Opcode::SpAdjust}};

  if (auto It = BinaryOps.find(OpName); It != BinaryOps.end()) {
    if (!HasDef)
      return fail(OpName + " needs a def operand");
    Instruction I(It->second);
    finishDef(I);
    if (!parseUse(C, I) || !C.consume(',') || !parseUse(C, I))
      return Error.empty() ? fail("expected two use operands") : false;
    BB->append(std::move(I));
    return true;
  }

  if (auto It = ImmOps.find(OpName); It != ImmOps.end()) {
    if (!HasDef)
      return fail(OpName + " needs a def operand");
    Instruction I(It->second);
    finishDef(I);
    int64_t Imm;
    if (!parseUse(C, I) || !C.consume(',') || !C.integer(Imm))
      return Error.empty() ? fail("expected use operand and immediate")
                           : false;
    I.setImm(Imm);
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "make") {
    if (!HasDef)
      return fail("make needs a def operand");
    Instruction I(Opcode::Make);
    finishDef(I);
    int64_t Imm;
    if (!C.integer(Imm))
      return fail("expected immediate");
    I.setImm(Imm);
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "mov") {
    if (!HasDef)
      return fail("mov needs a def operand");
    Instruction I(Opcode::Mov);
    finishDef(I);
    if (!parseUse(C, I))
      return false;
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "load") {
    if (!HasDef)
      return fail("load needs a def operand");
    Instruction I(Opcode::Load);
    finishDef(I);
    if (!parseUse(C, I))
      return false;
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "psi") {
    if (!HasDef)
      return fail("psi needs a def operand");
    Instruction I(Opcode::Psi);
    finishDef(I);
    if (!parseUse(C, I) || !C.consume(',') || !parseUse(C, I) ||
        !C.consume(',') || !parseUse(C, I))
      return Error.empty() ? fail("expected three use operands") : false;
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "store") {
    Instruction I(Opcode::Store);
    if (!parseUse(C, I) || !C.consume(',') || !parseUse(C, I))
      return Error.empty() ? fail("expected address and value") : false;
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "call") {
    if (!HasDef)
      return fail("call needs a def operand");
    Instruction I(Opcode::Call);
    finishDef(I);
    if (!C.consume('@'))
      return fail("expected '@callee'");
    std::string Callee = C.ident();
    if (Callee.empty())
      return fail("expected callee name");
    I.setCallee(Callee);
    if (!C.consume('('))
      return fail("expected '('");
    if (!C.consume(')')) {
      do {
        if (!parseUse(C, I))
          return false;
      } while (C.consume(','));
      if (!C.consume(')'))
        return fail("expected ')'");
    }
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "input") {
    Instruction I(Opcode::Input);
    do {
      RegId R, Pin;
      if (!operand(C, R, Pin))
        return false;
      I.addDef(R);
      if (Pin != InvalidReg)
        I.pinDef(I.numDefs() - 1, Pin);
    } while (C.consume(','));
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "output" || OpName == "ret") {
    Instruction I(OpName == "output" ? Opcode::Output : Opcode::Ret);
    if (!parseUse(C, I))
      return false;
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "jump") {
    std::string Label = C.ident();
    BasicBlock *T = blockFor(Label);
    if (!T)
      return fail("unknown block '" + Label + "'");
    Instruction I(Opcode::Jump);
    I.setTarget(0, T);
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "branch") {
    Instruction I(Opcode::Branch);
    if (!parseUse(C, I) || !C.consume(','))
      return Error.empty() ? fail("expected condition operand") : false;
    for (unsigned K = 0; K < 2; ++K) {
      std::string Label = C.ident();
      BasicBlock *T = blockFor(Label);
      if (!T)
        return fail("unknown block '" + Label + "'");
      I.setTarget(K, T);
      if (K == 0 && !C.consume(','))
        return fail("expected ',' between branch targets");
    }
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "phi") {
    if (!HasDef)
      return fail("phi needs a def operand");
    Instruction I(Opcode::Phi);
    finishDef(I);
    do {
      if (!C.consume('['))
        return fail("expected '[' in phi");
      RegId R, Pin;
      if (!operand(C, R, Pin))
        return false;
      if (!C.consume(','))
        return fail("expected ',' in phi entry");
      std::string Label = C.ident();
      BasicBlock *Pred = blockFor(Label);
      if (!Pred)
        return fail("unknown block '" + Label + "'");
      if (!C.consume(']'))
        return fail("expected ']' in phi entry");
      I.addIncoming(R, Pred);
      if (Pin != InvalidReg)
        I.pinUse(I.numUses() - 1, Pin);
    } while (C.consume(','));
    BB->append(std::move(I));
    return true;
  }

  if (OpName == "parcopy") {
    Instruction I(Opcode::ParCopy);
    do {
      RegId D, DPin;
      if (!operand(C, D, DPin))
        return false;
      if (!C.consume('='))
        return fail("expected '=' in parcopy");
      RegId S, SPin;
      if (!operand(C, S, SPin))
        return false;
      I.addDef(D);
      if (DPin != InvalidReg)
        I.pinDef(I.numDefs() - 1, DPin);
      I.addUse(S);
      if (SPin != InvalidReg)
        I.pinUse(I.numUses() - 1, SPin);
    } while (C.consume(','));
    BB->append(std::move(I));
    return true;
  }

  return fail("unknown opcode '" + OpName + "'");
}

std::unique_ptr<Function> Parser::run(const std::string &Text,
                                      std::string *Err) {
  std::vector<std::string> Lines;
  {
    std::string Cur;
    for (char Ch : Text) {
      if (Ch == '\n') {
        Lines.push_back(Cur);
        Cur.clear();
      } else {
        Cur.push_back(Ch);
      }
    }
    Lines.push_back(Cur);
  }

  // Strip comments and trim.
  for (std::string &L : Lines) {
    size_t Hash = L.find_first_of("#;");
    if (Hash != std::string::npos)
      L = L.substr(0, Hash);
    L = trimString(L);
  }

  // First pass: function header and block labels (so forward references
  // to blocks resolve during instruction parsing).
  unsigned HeaderLine = ~0u;
  for (unsigned I = 0; I < Lines.size() && Error.empty(); ++I) {
    const std::string &L = Lines[I];
    if (L.empty())
      continue;
    if (!F && L.rfind("func", 0) == 0) {
      LineNo = I + 1;
      LineCursor C(L);
      C.ident(); // "func"
      if (!C.consume('@')) {
        fail("expected '@' after 'func'");
        break;
      }
      std::string Name = C.ident();
      if (!C.consume('{')) {
        fail("expected '{' after function name");
        break;
      }
      F = std::make_unique<Function>(Name);
      HeaderLine = I;
      continue;
    }
    if (F && L.back() == ':') {
      std::string Label = trimString(L.substr(0, L.size() - 1));
      if (BlocksByName.count(Label)) {
        LineNo = I + 1;
        fail("duplicate block label '" + Label + "'");
        break;
      }
      BlocksByName[Label] = F->createBlock(Label);
    }
  }
  if (!F && Error.empty())
    Error = "no 'func @name {' header found";

  // Second pass: instructions.
  BasicBlock *BB = nullptr;
  for (unsigned I = HeaderLine + 1; I < Lines.size() && Error.empty(); ++I) {
    LineNo = I + 1;
    const std::string &L = Lines[I];
    if (L.empty())
      continue;
    if (L == "}")
      break;
    if (L.back() == ':') {
      BB = BlocksByName[trimString(L.substr(0, L.size() - 1))];
      continue;
    }
    if (!BB) {
      fail("instruction before first block label");
      break;
    }
    LineCursor C(L);
    if (!parseInstruction(C, BB))
      break;
    if (!C.atEnd())
      fail("trailing characters after instruction");
  }

  if (!Error.empty()) {
    if (Err)
      *Err = Error;
    return nullptr;
  }
  if (Err)
    Err->clear();
  return std::move(F);
}

} // namespace

std::unique_ptr<Function> lao::parseFunction(const std::string &Text,
                                             std::string *ErrorOut) {
  Parser P;
  return P.run(Text, ErrorOut);
}
