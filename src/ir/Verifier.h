//===- Verifier.h - Structural and pinning checks ---------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural IR checks (terminators, phi placement, operand arity, phi
/// incoming lists vs CFG) plus the *local* pinning legality rules of the
/// paper's Figure 4:
///
///   Case 1: two defs of one instruction pinned to one resource (x != y)
///   Case 2: two uses of one instruction pinned to one resource (x != y)
///   Case 3: two phi defs of one block pinned to one resource
///   Case 4: def and use of one instruction pinned together — legal
///   Case 5: phi argument pinned to a different resource than the result
///   Case 6: flow-sensitive; checked by PinningContext::resourceInterfere,
///           not here.
///
/// SSA-specific checks (single assignment, dominance of uses) live in
/// ssa/SSAVerifier.h since they need the dominator tree.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_VERIFIER_H
#define LAO_IR_VERIFIER_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace lao {

/// Runs structural checks on \p F. Returns human-readable diagnostics;
/// empty means the function is well-formed.
std::vector<std::string> verifyStructure(const Function &F);

/// Runs the Figure 4 local pinning legality checks. Returns diagnostics.
std::vector<std::string> verifyPinning(const Function &F);

} // namespace lao

#endif // LAO_IR_VERIFIER_H
