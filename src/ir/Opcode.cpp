//===- Opcode.cpp - Opcode names -------------------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

using namespace lao;

const char *lao::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Make:
    return "make";
  case Opcode::ParCopy:
    return "parcopy";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddI:
    return "addi";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::More:
    return "more";
  case Opcode::AutoAdd:
    return "autoadd";
  case Opcode::SpAdjust:
    return "spadjust";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Input:
    return "input";
  case Opcode::Output:
    return "output";
  case Opcode::Ret:
    return "ret";
  case Opcode::Jump:
    return "jump";
  case Opcode::Branch:
    return "branch";
  case Opcode::Phi:
    return "phi";
  case Opcode::Psi:
    return "psi";
  }
  return "<bad-opcode>";
}
