//===- DotExport.cpp - Graphviz rendering of CFGs and graphs -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/DotExport.h"

#include "ir/IRPrinter.h"

using namespace lao;

namespace {

/// Escapes a label line for a DOT record node.
std::string escapeDot(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    switch (C) {
    case '<':
    case '>':
    case '{':
    case '}':
    case '|':
    case '"':
    case '\\':
      Out.push_back('\\');
      Out.push_back(C);
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

} // namespace

std::string lao::exportDot(const Function &F) {
  std::string S = "digraph \"" + F.name() + "\" {\n";
  S += "  node [shape=record, fontname=\"monospace\", fontsize=9];\n";
  for (const auto &BB : F.blocks()) {
    S += "  b" + std::to_string(BB->id()) + " [label=\"{" +
         escapeDot(BB->name()) + ":";
    for (const Instruction &I : BB->instructions())
      S += "\\l  " + escapeDot(printInstruction(F, I));
    S += "\\l}\"];\n";
  }
  for (const auto &BB : F.blocks()) {
    for (BasicBlock *Succ : BB->successors())
      S += "  b" + std::to_string(BB->id()) + " -> b" +
           std::to_string(Succ->id()) + ";\n";
    // Phi data-flow edges (dashed) from the incoming blocks.
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      for (unsigned K = 0; K < I.numUses(); ++K)
        S += "  b" + std::to_string(I.incomingBlock(K)->id()) + " -> b" +
             std::to_string(BB->id()) + " [style=dashed, color=gray, " +
             "label=\"" + escapeDot(F.valueName(I.use(K))) + "\"];\n";
    }
  }
  S += "}\n";
  return S;
}
