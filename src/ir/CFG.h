//===- CFG.h - Control-flow graph view and edge utilities -------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight, rebuildable view of a function's control-flow graph
/// (predecessor lists and reverse post-order), plus critical-edge
/// splitting. All out-of-SSA algorithms in this repository require split
/// critical edges so that phi-related parallel copies can be placed at the
/// end of predecessor blocks.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_IR_CFG_H
#define LAO_IR_CFG_H

#include "ir/Function.h"

#include <vector>

namespace lao {

/// Immutable snapshot of a function's CFG. Invalidated by any CFG edit;
/// rebuild after mutation.
class CFG {
public:
  explicit CFG(Function &F);

  Function &func() const { return F; }

  const std::vector<BasicBlock *> &preds(const BasicBlock *BB) const {
    return Preds[BB->id()];
  }
  const std::vector<BasicBlock *> &succs(const BasicBlock *BB) const {
    return Succs[BB->id()];
  }

  /// Blocks in reverse post-order from the entry. Unreachable blocks are
  /// appended after the reachable ones (in creation order) so analyses
  /// still cover them.
  const std::vector<BasicBlock *> &rpo() const { return Rpo; }

  /// Position of \p BB in the reverse post-order.
  unsigned rpoIndex(const BasicBlock *BB) const {
    return RpoIndex[BB->id()];
  }

  bool isReachable(const BasicBlock *BB) const {
    return Reachable[BB->id()];
  }

private:
  Function &F;
  std::vector<std::vector<BasicBlock *>> Preds;
  std::vector<std::vector<BasicBlock *>> Succs;
  std::vector<BasicBlock *> Rpo;
  std::vector<unsigned> RpoIndex;
  std::vector<bool> Reachable;
};

/// Splits every critical edge (edge from a block with several successors
/// to a block with several predecessors) by inserting a fresh block holding
/// a single jump. Phi incoming blocks are redirected to the new blocks.
/// Returns the number of edges split.
unsigned splitCriticalEdges(Function &F);

} // namespace lao

#endif // LAO_IR_CFG_H
