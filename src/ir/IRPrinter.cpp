//===- IRPrinter.cpp - Textual mini-LAI output ------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "support/StringUtils.h"

using namespace lao;

namespace {

/// Renders operand \p R with optional pin \p Pin as "%name" or "%name^res".
std::string operandText(const Function &F, RegId R, RegId Pin) {
  std::string S = "%" + F.valueName(R);
  if (Pin != InvalidReg)
    S += "^" + F.valueName(Pin);
  return S;
}

std::string defText(const Function &F, const Instruction &I, unsigned Idx) {
  return operandText(F, I.def(Idx), I.defPin(Idx));
}

std::string useText(const Function &F, const Instruction &I, unsigned Idx) {
  return operandText(F, I.use(Idx), I.usePin(Idx));
}

} // namespace

std::string lao::printInstruction(const Function &F, const Instruction &I) {
  switch (I.op()) {
  case Opcode::Make:
    return formatStr("%s = make %lld", defText(F, I, 0).c_str(),
                     static_cast<long long>(I.imm()));
  case Opcode::Mov:
    return defText(F, I, 0) + " = mov " + useText(F, I, 0);
  case Opcode::ParCopy: {
    std::string S = "parcopy ";
    for (unsigned K = 0; K < I.numDefs(); ++K) {
      if (K != 0)
        S += ", ";
      S += defText(F, I, K) + " = " + useText(F, I, K);
    }
    return S;
  }
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpLT:
  case Opcode::CmpEQ:
    return defText(F, I, 0) + " = " + opcodeName(I.op()) + " " +
           useText(F, I, 0) + ", " + useText(F, I, 1);
  case Opcode::AddI:
  case Opcode::More:
  case Opcode::AutoAdd:
  case Opcode::SpAdjust:
    return formatStr("%s = %s %s, %lld", defText(F, I, 0).c_str(),
                     opcodeName(I.op()), useText(F, I, 0).c_str(),
                     static_cast<long long>(I.imm()));
  case Opcode::Load:
    return defText(F, I, 0) + " = load " + useText(F, I, 0);
  case Opcode::Store:
    return "store " + useText(F, I, 0) + ", " + useText(F, I, 1);
  case Opcode::Call: {
    std::string S = defText(F, I, 0) + " = call @" + I.callee() + "(";
    for (unsigned K = 0; K < I.numUses(); ++K) {
      if (K != 0)
        S += ", ";
      S += useText(F, I, K);
    }
    return S + ")";
  }
  case Opcode::Input: {
    std::string S = "input ";
    for (unsigned K = 0; K < I.numDefs(); ++K) {
      if (K != 0)
        S += ", ";
      S += defText(F, I, K);
    }
    return S;
  }
  case Opcode::Output:
    return "output " + useText(F, I, 0);
  case Opcode::Ret:
    return "ret " + useText(F, I, 0);
  case Opcode::Jump:
    return "jump " + I.target(0)->name();
  case Opcode::Branch:
    return "branch " + useText(F, I, 0) + ", " + I.target(0)->name() + ", " +
           I.target(1)->name();
  case Opcode::Phi: {
    std::string S = defText(F, I, 0) + " = phi ";
    for (unsigned K = 0; K < I.numUses(); ++K) {
      if (K != 0)
        S += ", ";
      S += "[" + useText(F, I, K) + ", " + I.incomingBlock(K)->name() + "]";
    }
    return S;
  }
  case Opcode::Psi:
    return defText(F, I, 0) + " = psi " + useText(F, I, 0) + ", " +
           useText(F, I, 1) + ", " + useText(F, I, 2);
  }
  return "<bad-instruction>";
}

std::string lao::printFunction(const Function &F) {
  std::string S = "func @" + F.name() + " {\n";
  for (const auto &BB : F.blocks()) {
    S += BB->name() + ":\n";
    for (const Instruction &I : BB->instructions())
      S += "  " + printInstruction(F, I) + "\n";
  }
  S += "}\n";
  return S;
}
