//===- SSAVerifier.cpp - SSA invariant checks --------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ssa/SSAVerifier.h"

#include "analysis/Dominators.h"
#include "ir/CFG.h"
#include "support/StringUtils.h"

#include <map>

using namespace lao;

std::vector<std::string> lao::verifySSA(const Function &F) {
  std::vector<std::string> Diags;
  CFG Cfg(const_cast<Function &>(F));
  DominatorTree DT(Cfg);

  // Locate the unique definition of every virtual register.
  struct DefSite {
    const BasicBlock *BB;
    const Instruction *I;
    unsigned Order; // Position of I within BB.
  };
  std::map<RegId, DefSite> Defs;
  for (const auto &BB : F.blocks()) {
    unsigned Order = 0;
    for (const Instruction &I : BB->instructions()) {
      for (RegId D : I.defs()) {
        if (F.isPhysical(D))
          continue;
        auto [It, Inserted] = Defs.emplace(D, DefSite{BB.get(), &I, Order});
        if (!Inserted)
          Diags.push_back(formatStr("%%%s defined more than once",
                                    F.valueName(D).c_str()));
      }
      ++Order;
    }
  }

  // Order of each instruction for same-block dominance checks.
  std::map<const Instruction *, unsigned> OrderOf;
  for (const auto &BB : F.blocks()) {
    unsigned Order = 0;
    for (const Instruction &I : BB->instructions())
      OrderOf[&I] = Order++;
  }

  auto CheckUse = [&](RegId V, const BasicBlock *UseBB,
                      const Instruction *UseI, bool AtBlockEnd) {
    if (F.isPhysical(V))
      return;
    auto It = Defs.find(V);
    if (It == Defs.end()) {
      Diags.push_back(formatStr("use of undefined %%%s in block %s",
                                F.valueName(V).c_str(),
                                UseBB->name().c_str()));
      return;
    }
    const DefSite &D = It->second;
    bool Ok;
    if (D.BB == UseBB) {
      // Same block: def must come before the use. Phi defs occur at block
      // entry and so dominate everything in the block; a phi *use* at the
      // end of the block is after everything.
      Ok = AtBlockEnd || D.I->isPhi() ||
           (!UseI->isPhi() && D.Order < OrderOf[UseI]);
    } else {
      Ok = DT.dominates(D.BB, UseBB);
    }
    if (!Ok)
      Diags.push_back(formatStr("def of %%%s does not dominate use in %s",
                                F.valueName(V).c_str(),
                                UseBB->name().c_str()));
  };

  for (const auto &BB : F.blocks()) {
    for (const Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        // Each argument is a use at the end of its incoming block.
        for (unsigned K = 0; K < I.numUses(); ++K)
          CheckUse(I.use(K), I.incomingBlock(K), &I, /*AtBlockEnd=*/true);
        continue;
      }
      for (RegId U : I.uses())
        CheckUse(U, BB.get(), &I, /*AtBlockEnd=*/false);
    }
  }
  return Diags;
}
