//===- IfConversion.h - Diamond if-conversion to psi ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// If-conversion for the mini-LAI's predication support. The paper's
/// target (ST120) is fully predicated and its compiler works on psi-SSA
/// [Stoutchinin & de Ferriere, MICRO 2001]; this pass creates such code:
/// small, side-effect-free diamonds and triangles are flattened, their
/// join phis becoming psi instructions guarded by the branch predicate.
///
/// A converted psi carries the 2-operand-like renaming constraint the
/// paper describes ("psi instructions introduce constraints similar to
/// 2-operands constraints"): collectABIConstraints pins its else-operand
/// to the destination, and the out-of-SSA machinery handles the rest.
///
/// Runs on SSA. Only converts when both arms are speculation-safe (pure
/// arithmetic, no calls/stores/loads) and short.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SSA_IFCONVERSION_H
#define LAO_SSA_IFCONVERSION_H

#include "ir/Function.h"

namespace lao {

struct IfConversionStats {
  unsigned NumDiamondsConverted = 0;
  unsigned NumTrianglesConverted = 0;
  unsigned NumPsisCreated = 0;
};

/// Converts eligible diamonds/triangles of SSA \p F into straight-line
/// predicated code. \p MaxArmInsts bounds the speculated instruction
/// count per arm.
IfConversionStats convertIfsToPsi(Function &F, unsigned MaxArmInsts = 4);

} // namespace lao

#endif // LAO_SSA_IFCONVERSION_H
