//===- SSAConstruction.h - Pruned SSA construction --------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pruned SSA construction after Cytron et al. (TOPLAS 1991), the flavour
/// the paper uses. Phi instructions are placed at the iterated dominance
/// frontier of each variable's definition blocks, restricted to blocks
/// where the variable is live-in (pruning), then definitions are renamed
/// along a dominator-tree walk.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SSA_SSACONSTRUCTION_H
#define LAO_SSA_SSACONSTRUCTION_H

#include "ir/Function.h"

namespace lao {

/// Statistics returned by buildSSA.
struct SSAStats {
  unsigned NumPhisInserted = 0;
  unsigned NumVarsRenamed = 0;
};

/// Converts \p F (non-SSA, virtual registers possibly multiply defined,
/// no phis) into pruned SSA form, in place. Every use must have a
/// definition on every path from the entry (the workload generators and
/// parser-based tests guarantee this).
SSAStats buildSSA(Function &F);

} // namespace lao

#endif // LAO_SSA_SSACONSTRUCTION_H
