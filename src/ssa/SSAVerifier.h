//===- SSAVerifier.h - SSA invariant checks ---------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA-specific invariant checks: single assignment of every virtual
/// register and dominance of uses by definitions (phi arguments checked at
/// the end of the incoming block, matching the paper's liveness model).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SSA_SSAVERIFIER_H
#define LAO_SSA_SSAVERIFIER_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace lao {

/// Returns diagnostics for violated SSA invariants (empty = valid SSA).
/// Physical registers are exempt from the single-assignment rule.
std::vector<std::string> verifySSA(const Function &F);

} // namespace lao

#endif // LAO_SSA_SSAVERIFIER_H
