//===- IfConversion.cpp - Diamond if-conversion to psi --------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ssa/IfConversion.h"

#include "ir/CFG.h"

#include <cassert>

using namespace lao;

namespace {

bool isSpeculationSafe(const Instruction &I) {
  switch (I.op()) {
  case Opcode::Mov:
  case Opcode::Make:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::AddI:
  case Opcode::CmpLT:
  case Opcode::CmpEQ:
  case Opcode::More:
  case Opcode::Psi:
    return true;
  default:
    return false;
  }
}

/// True if \p Arm is convertible: only safe instructions (at most
/// \p MaxArmInsts) followed by a jump.
bool armConvertible(const BasicBlock *Arm, unsigned MaxArmInsts) {
  unsigned Count = 0;
  for (const Instruction &I : Arm->instructions()) {
    if (I.isTerminator())
      return I.op() == Opcode::Jump;
    if (I.isPhi() || !isSpeculationSafe(I) || ++Count > MaxArmInsts)
      return false;
  }
  return false; // No terminator: malformed.
}

/// Moves all non-terminator instructions of \p Arm before \p Pos in
/// \p Dst.
void hoistArm(BasicBlock *Arm, BasicBlock *Dst,
              BasicBlock::InstList::iterator Pos) {
  auto &Src = Arm->instructions();
  for (auto It = Src.begin(); It != Src.end();) {
    if (It->isTerminator())
      break;
    auto Next = std::next(It);
    Dst->instructions().splice(Pos, Src, It);
    It = Next;
  }
}

/// Threads single-predecessor, jump-only blocks (the husks inner
/// conversions leave as joins): the predecessor branches directly to the
/// final target, making outer diamonds visible. Returns true on change.
bool threadTrivialJumps(Function &F, const CFG &Cfg) {
  bool Changed = false;
  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *B = BBPtr.get();
    if (!Cfg.isReachable(B) || B == &F.entry())
      continue;
    if (B->instructions().size() != 1 ||
        B->front().op() != Opcode::Jump)
      continue;
    BasicBlock *T = B->front().target(0);
    if (T == B || Cfg.preds(B).size() != 1)
      continue;
    BasicBlock *P = Cfg.preds(B)[0];
    // Avoid creating parallel edges (phi incoming lists would need
    // duplicate entries).
    bool AlreadyPred = false;
    for (BasicBlock *Q : Cfg.preds(T))
      AlreadyPred |= Q == P;
    if (AlreadyPred)
      continue;
    Instruction &PTerm = P->terminator();
    for (unsigned K = 0; K < 2; ++K)
      if ((PTerm.op() == Opcode::Jump && K == 0) ||
          PTerm.op() == Opcode::Branch)
        if (PTerm.target(K) == B)
          PTerm.setTarget(K, T);
    for (Instruction &I : T->instructions()) {
      if (!I.isPhi())
        break;
      for (unsigned K = 0; K < I.numUses(); ++K)
        if (I.incomingBlock(K) == B)
          I.setIncomingBlock(K, P);
    }
    // Neuter the threaded block: it must not keep its edge into T.
    B->instructions().clear();
    RegId Zero = F.makeVirtual("husk");
    Instruction Mk(Opcode::Make);
    Mk.addDef(Zero);
    Mk.setImm(0);
    B->append(std::move(Mk));
    Instruction Rt(Opcode::Ret);
    Rt.addUse(Zero);
    B->append(std::move(Rt));
    Changed = true;
    return true; // CFG snapshot is stale; caller restarts.
  }
  return Changed;
}

} // namespace

IfConversionStats lao::convertIfsToPsi(Function &F, unsigned MaxArmInsts) {
  IfConversionStats Stats;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    CFG Cfg(F);
    if (threadTrivialJumps(F, Cfg)) {
      Changed = true;
      continue;
    }
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *H = BBPtr.get();
      if (!Cfg.isReachable(H) || !H->hasTerminator())
        continue;
      Instruction &Term = H->terminator();
      if (Term.op() != Opcode::Branch || Term.target(0) == Term.target(1))
        continue;
      RegId Cond = Term.use(0);
      BasicBlock *T = Term.target(0);
      BasicBlock *E = Term.target(1);

      // Diamond: H -> {T, E} -> J.
      bool Diamond = Cfg.preds(T).size() == 1 && Cfg.preds(E).size() == 1 &&
                     armConvertible(T, MaxArmInsts) &&
                     armConvertible(E, MaxArmInsts) &&
                     T->terminator().target(0) ==
                         E->terminator().target(0) &&
                     T->terminator().target(0) != H;
      // Triangle: H -> T -> J and H -> J (or the mirrored form).
      bool TriangleThen = !Diamond && Cfg.preds(T).size() == 1 &&
                          armConvertible(T, MaxArmInsts) &&
                          T->terminator().target(0) == E && E != H;
      bool TriangleElse = !Diamond && !TriangleThen &&
                          Cfg.preds(E).size() == 1 &&
                          armConvertible(E, MaxArmInsts) &&
                          E->terminator().target(0) == T && T != H;

      BasicBlock *Join = nullptr;
      if (Diamond)
        Join = T->terminator().target(0);
      else if (TriangleThen)
        Join = E;
      else if (TriangleElse)
        Join = T;
      else
        continue;

      // The join must merge exactly the converted paths.
      if (Cfg.preds(Join).size() != 2)
        continue;

      // Every phi of the join must have an entry for each converted
      // path; convert them into psi instructions at the end of H.
      auto BranchPos = std::prev(H->instructions().end());
      if (Diamond) {
        hoistArm(T, H, BranchPos);
        hoistArm(E, H, BranchPos);
      } else {
        hoistArm(TriangleThen ? T : E, H, BranchPos);
      }

      for (auto It = Join->instructions().begin();
           It != Join->instructions().end();) {
        if (!It->isPhi())
          break;
        RegId FromThen = InvalidReg, FromElse = InvalidReg;
        for (unsigned K = 0; K < It->numUses(); ++K) {
          const BasicBlock *In = It->incomingBlock(K);
          if (Diamond) {
            if (In == T)
              FromThen = It->use(K);
            else if (In == E)
              FromElse = It->use(K);
          } else if (TriangleThen) {
            if (In == T)
              FromThen = It->use(K);
            else if (In == H)
              FromElse = It->use(K);
          } else {
            if (In == E)
              FromElse = It->use(K);
            else if (In == H)
              FromThen = It->use(K);
          }
        }
        assert(FromThen != InvalidReg && FromElse != InvalidReg &&
               "join phi lacks an entry for a converted path");
        Instruction Psi(Opcode::Psi);
        Psi.addDef(It->def(0));
        Psi.addUse(Cond);
        Psi.addUse(FromThen);
        Psi.addUse(FromElse);
        H->insert(BranchPos, std::move(Psi));
        ++Stats.NumPsisCreated;
        It = Join->instructions().erase(It);
      }

      // Replace the branch with a direct jump. The converted arms stay
      // as unreachable husks (block ids are stable), but they must not
      // keep edges into the join — rewrite each into a self-contained
      // return so no spurious predecessors survive.
      Instruction Jump(Opcode::Jump);
      Jump.setTarget(0, Join);
      H->instructions().pop_back();
      H->append(std::move(Jump));
      auto NeuterArm = [&](BasicBlock *Arm) {
        Arm->instructions().clear();
        RegId Zero = F.makeVirtual("husk");
        Instruction Mk(Opcode::Make);
        Mk.addDef(Zero);
        Mk.setImm(0);
        Arm->append(std::move(Mk));
        Instruction Rt(Opcode::Ret);
        Rt.addUse(Zero);
        Arm->append(std::move(Rt));
      };
      if (Diamond) {
        NeuterArm(T);
        NeuterArm(E);
      } else {
        NeuterArm(TriangleThen ? T : E);
      }

      if (Diamond)
        ++Stats.NumDiamondsConverted;
      else
        ++Stats.NumTrianglesConverted;
      Changed = true;
      break; // CFG snapshot is stale; restart the scan.
    }
  }
  return Stats;
}
