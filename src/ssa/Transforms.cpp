//===- Transforms.cpp - SSA-level optimizations -------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ssa/Transforms.h"

#include "analysis/Dominators.h"
#include "ir/CFG.h"

#include <cassert>
#include <map>
#include <tuple>
#include <vector>

using namespace lao;

namespace {

/// Applies \p Replacement (old id -> new id) to every operand of \p F.
void replaceAllUses(Function &F, const std::vector<RegId> &Replacement) {
  auto Resolve = [&](RegId V) {
    // Chase chains: a -> b -> c collapses to c.
    while (Replacement[V] != InvalidReg)
      V = Replacement[V];
    return V;
  };
  for (const auto &BB : F.blocks())
    for (Instruction &I : BB->instructions())
      for (unsigned K = 0; K < I.numUses(); ++K)
        I.setUse(K, Resolve(I.use(K)));
}

} // namespace

unsigned lao::propagateCopies(Function &F) {
  unsigned NumRemoved = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<RegId> Replacement(F.numValues(), InvalidReg);
    // Collect replacements, then erase the producing instructions.
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        bool Erase = false;
        if (It->isCopy() && !F.isPhysical(It->def(0)) &&
            It->defPin(0) == InvalidReg && It->usePin(0) == InvalidReg) {
          Replacement[It->def(0)] = It->use(0);
          Erase = true;
        } else if (It->isPhi() && It->defPin(0) == InvalidReg) {
          bool AllSame = true;
          for (unsigned K = 1; K < It->numUses(); ++K)
            AllSame &= It->use(K) == It->use(0);
          // A phi of identical arguments (and not of itself) is a copy.
          if (AllSame && It->numUses() >= 1 && It->use(0) != It->def(0)) {
            Replacement[It->def(0)] = It->use(0);
            Erase = true;
          }
        }
        if (Erase) {
          It = Insts.erase(It);
          ++NumRemoved;
          Changed = true;
        } else {
          ++It;
        }
      }
    }
    if (Changed)
      replaceAllUses(F, Replacement);
  }
  return NumRemoved;
}

unsigned lao::valueNumber(Function &F) {
  CFG Cfg(F);
  DominatorTree DT(Cfg);
  unsigned NumRemoved = 0;

  // Key: opcode, operands, immediate. Scoped map along the dominator tree
  // walk: entries added in a block are removed when the walk leaves it.
  using Key = std::tuple<Opcode, std::vector<RegId>, int64_t>;
  std::map<Key, RegId> Table;
  std::vector<RegId> Replacement(F.numValues(), InvalidReg);

  auto IsPure = [](Opcode Op) {
    switch (Op) {
    case Opcode::Make:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::AddI:
    case Opcode::CmpLT:
    case Opcode::CmpEQ:
    case Opcode::More:
      return true;
    default:
      return false;
    }
  };

  auto Resolve = [&](RegId V) {
    while (Replacement[V] != InvalidReg)
      V = Replacement[V];
    return V;
  };

  // Recursive dominator-tree walk with scope cleanup.
  struct Walker {
    Function &F;
    const DominatorTree &DT;
    std::map<Key, RegId> &Table;
    std::vector<RegId> &Replacement;
    unsigned &NumRemoved;
    decltype(IsPure) &Pure;
    decltype(Resolve) &Res;

    void visit(BasicBlock *BB) {
      std::vector<Key> Added;
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        Instruction &I = *It;
        for (unsigned K = 0; K < I.numUses(); ++K)
          I.setUse(K, Res(I.use(K)));
        if (!Pure(I.op()) || I.numDefs() != 1 ||
            I.defPin(0) != InvalidReg) {
          ++It;
          continue;
        }
        Key K{I.op(), std::vector<RegId>(I.uses().begin(), I.uses().end()),
              I.imm()};
        auto Found = Table.find(K);
        if (Found != Table.end()) {
          Replacement[I.def(0)] = Found->second;
          It = Insts.erase(It);
          ++NumRemoved;
          continue;
        }
        Table.emplace(K, I.def(0));
        Added.push_back(std::move(K));
        ++It;
      }
      for (BasicBlock *Child : DT.children(BB))
        visit(Child);
      for (const Key &K : Added)
        Table.erase(K);
    }
  };

  Walker W{F, DT, Table, Replacement, NumRemoved, IsPure, Resolve};
  W.visit(&F.entry());
  // Resolve any uses reached before their replacement was recorded
  // (back edges / phi arguments filled from dominated blocks).
  replaceAllUses(F, Replacement);
  return NumRemoved;
}

unsigned lao::eliminateDeadCode(Function &F) {
  unsigned NumRemoved = 0;
  bool Changed = true;
  auto HasSideEffects = [](const Instruction &I) {
    switch (I.op()) {
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Output:
    case Opcode::Ret:
    case Opcode::Jump:
    case Opcode::Branch:
    case Opcode::Input:
      return true;
    default:
      return false;
    }
  };
  while (Changed) {
    Changed = false;
    std::vector<unsigned> NumUses(F.numValues(), 0);
    for (const auto &BB : F.blocks())
      for (const Instruction &I : BB->instructions())
        for (RegId U : I.uses())
          ++NumUses[U];
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        bool Dead = !HasSideEffects(*It) && It->numDefs() > 0;
        for (RegId D : It->defs())
          Dead &= NumUses[D] == 0 && !F.isPhysical(D);
        for (unsigned K = 0; Dead && K < It->numDefs(); ++K)
          Dead &= It->defPin(K) == InvalidReg;
        if (Dead) {
          It = Insts.erase(It);
          ++NumRemoved;
          Changed = true;
        } else {
          ++It;
        }
      }
    }
  }
  return NumRemoved;
}
