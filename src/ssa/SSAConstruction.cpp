//===- SSAConstruction.cpp - Pruned SSA construction --------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ssa/SSAConstruction.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"

#include <cassert>
#include <map>
#include <set>
#include <vector>

using namespace lao;

namespace {

/// Renaming state: one definition stack per original variable.
class Renamer {
public:
  Renamer(Function &F, const DominatorTree &DT, const CFG &Cfg,
          const std::map<const Instruction *, RegId> &PhiOriginal,
          SSAStats &Stats)
      : F(F), DT(DT), Cfg(Cfg), PhiOriginal(PhiOriginal), Stats(Stats) {
    Stacks.resize(F.numValues());
  }

  void run() { renameBlock(&F.entry()); }

private:
  Function &F;
  const DominatorTree &DT;
  const CFG &Cfg;
  const std::map<const Instruction *, RegId> &PhiOriginal;
  SSAStats &Stats;
  std::vector<std::vector<RegId>> Stacks;

  RegId top(RegId Orig) const {
    assert(!Stacks[Orig].empty() && "use of undefined variable");
    return Stacks[Orig].back();
  }

  RegId fresh(RegId Orig) {
    RegId New = F.makeVirtual(F.valueName(Orig));
    Stacks[Orig].push_back(New);
    ++Stats.NumVarsRenamed;
    return New;
  }

  void renameBlock(BasicBlock *BB) {
    // Record how many pushes this block makes per variable so they can be
    // popped on exit.
    std::vector<std::pair<RegId, size_t>> Pushed;

    auto pushDef = [&](Instruction &I, unsigned DefIdx) {
      RegId Orig = I.def(DefIdx);
      if (F.isPhysical(Orig))
        return;
      RegId New = F.makeVirtual(F.valueName(Orig));
      Stacks[Orig].push_back(New);
      Pushed.push_back({Orig, 1});
      ++Stats.NumVarsRenamed;
      I.setDef(DefIdx, New);
    };

    for (Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        // Phi defs are renamed here; args are filled from predecessors.
        pushDef(I, 0);
        continue;
      }
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId Orig = I.use(K);
        if (!F.isPhysical(Orig))
          I.setUse(K, top(Orig));
      }
      for (unsigned K = 0; K < I.numDefs(); ++K)
        pushDef(I, K);
    }

    // Fill phi arguments of successors with the current reaching names.
    for (BasicBlock *S : Cfg.succs(BB)) {
      for (Instruction &I : S->instructions()) {
        if (!I.isPhi())
          break;
        auto It = PhiOriginal.find(&I);
        assert(It != PhiOriginal.end() && "phi without original variable");
        RegId Orig = It->second;
        for (unsigned K = 0; K < I.numUses(); ++K)
          if (I.incomingBlock(K) == BB && I.use(K) == Orig)
            I.setUse(K, top(Orig));
      }
    }

    for (BasicBlock *Child : DT.children(BB))
      renameBlock(Child);

    for (auto &[Orig, Count] : Pushed)
      for (size_t K = 0; K < Count; ++K)
        Stacks[Orig].pop_back();
  }
};

} // namespace

SSAStats lao::buildSSA(Function &F) {
  SSAStats Stats;
  CFG Cfg(F);
  DominatorTree DT(Cfg);
  DominanceFrontier DF(Cfg, DT);
  Liveness LV(Cfg);

  // Definition sites per virtual variable.
  size_t NumOrigValues = F.numValues();
  std::vector<std::set<BasicBlock *>> DefBlocks(NumOrigValues);
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (RegId D : I.defs())
        if (!F.isPhysical(D))
          DefBlocks[D].insert(BB.get());

  // Place phis at the iterated dominance frontier, pruned by liveness.
  // Remember each phi's original variable for argument filling.
  std::map<const Instruction *, RegId> PhiOriginal;
  for (RegId V = Target::NumPhysRegs; V < NumOrigValues; ++V) {
    if (DefBlocks[V].empty())
      continue;
    std::vector<BasicBlock *> Work(DefBlocks[V].begin(), DefBlocks[V].end());
    std::set<BasicBlock *> HasPhi;
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *Join : DF.frontier(BB)) {
        if (HasPhi.count(Join))
          continue;
        if (!LV.isLiveIn(V, Join))
          continue; // Pruned SSA: dead at the join point.
        HasPhi.insert(Join);
        Instruction Phi(Opcode::Phi);
        Phi.addDef(V);
        for (BasicBlock *P : Cfg.preds(Join))
          Phi.addIncoming(V, P);
        auto Pos = Join->instructions().begin();
        auto Inserted = Join->insert(Pos, std::move(Phi));
        PhiOriginal[&*Inserted] = V;
        ++Stats.NumPhisInserted;
        if (!DefBlocks[V].count(Join)) {
          DefBlocks[V].insert(Join);
          Work.push_back(Join);
        }
      }
    }
  }

  Renamer(F, DT, Cfg, PhiOriginal, Stats).run();
  return Stats;
}
