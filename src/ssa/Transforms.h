//===- Transforms.h - SSA-level optimizations -------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSA-level optimizations the paper's compiler (LAO) performs before
/// translating out of SSA: copy propagation, dominator-scoped value
/// numbering and dead-code elimination. These passes are what make the
/// out-of-SSA coalescing problem non-trivial: they rewrite phi webs so
/// that a naive phi replacement would introduce many move instructions.
///
/// All passes run on unpinned SSA code (before constraint collection).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SSA_TRANSFORMS_H
#define LAO_SSA_TRANSFORMS_H

#include "ir/Function.h"

namespace lao {

/// Replaces every use of d with s for each SSA copy "d = mov s" and each
/// trivial phi "d = phi(s, s, ...)" whose arguments are all equal, then
/// deletes the instruction. Iterates to a fixpoint. Returns the number of
/// copies/phis removed.
unsigned propagateCopies(Function &F);

/// Dominator-scoped value numbering over the pure opcodes (arithmetic,
/// make, more, autoadd). Redundant instructions are replaced by the
/// dominating equivalent and removed. Returns the number of instructions
/// removed.
unsigned valueNumber(Function &F);

/// Removes side-effect-free instructions whose results are unused,
/// including dead phis, to a fixpoint. Returns the number removed.
unsigned eliminateDeadCode(Function &F);

} // namespace lao

#endif // LAO_SSA_TRANSFORMS_H
