//===- PinningContext.cpp - Resource classes and interference -----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/PinningContext.h"

#include "outofssa/ClassInterference.h"
#include "support/Stats.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace lao;

bool PinningContext::SweepEngine = true;
bool PinningContext::CrossCheckOracle = [] {
  const char *E = std::getenv("LAO_CLASSINTERF_ORACLE");
  return E && E[0] != '\0' && E[0] != '0';
}();

PinningContext::PinningContext(const Function &F, const CFG &Cfg,
                               const DominatorTree &DT, const LivenessQuery &LV,
                               InterferenceMode Mode)
    : F(F), Cfg(Cfg), DT(DT), LV(LV), Mode(Mode) {
  size_t N = F.numValues();
  Classes.grow(N);
  Members.resize(N);
  KilledMask.resize(N);
  PinSites.resize(N);
  Defs.resize(N);

  for (RegId V = 0; V < N; ++V)
    Members[V].push_back(V);

  // Record use-pin copy sites (pin copies clobber the target resource).
  for (const auto &BB : F.blocks())
    for (auto It = BB->instructions().begin(),
              End = BB->instructions().end();
         It != End; ++It) {
      if (It->isPhi())
        continue; // Phi argument copies are modeled by Class 2.
      for (unsigned K = 0; K < It->numUses(); ++K)
        if (It->usePin(K) != InvalidReg)
          PinSites[It->usePin(K)].push_back(
              PinSite{BB.get(), It, It->use(K)});
    }

  // Record SSA definition sites.
  for (const auto &BB : F.blocks()) {
    unsigned Order = 0;
    for (auto It = BB->instructions().begin(),
              End = BB->instructions().end();
         It != End; ++It, ++Order) {
      for (RegId D : It->defs()) {
        if (F.isPhysical(D))
          continue;
        assert(!Defs[D].Valid && "PinningContext requires SSA input");
        Defs[D] = DefSite{BB.get(), &*It, It, Order, true};
      }
    }
  }

  // Seed the killed mask with self-kills (the lost-copy situation: a phi
  // result live out of a predecessor it does not flow through).
  for (RegId V = 0; V < N; ++V)
    if (Defs[V].Valid && variableKills(V, V))
      KilledMask.set(V);

  // Build initial classes from def-operand pins (variable pinning given
  // by ABI/SP constraint collection).
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (unsigned K = 0; K < I.numDefs(); ++K)
        if (I.defPin(K) != InvalidReg)
          pinTogether(I.def(K), I.defPin(K));
}

PinningContext::~PinningContext() = default;

RegId PinningContext::pinTogether(RegId A, RegId B) {
  RegId RA = Classes.find(A), RB = Classes.find(B);
  if (RA == RB)
    return RA;
  assert(!(F.isPhysical(RA) && F.isPhysical(RB)) &&
         "cannot merge two physical resources");

  // Update the killed mask: a member becomes killed if some member of
  // the other side kills it (mandatory pinnings may introduce such
  // kills; checked merges by construction only add kills of
  // already-killed members, which is idempotent). Setting bits as we go
  // is safe: neither variableKills nor pinSiteKills reads the mask.
  for (RegId X : Members[RA])
    for (RegId Y : Members[RB]) {
      if (variableKills(X, Y))
        KilledMask.set(Y);
      if (variableKills(Y, X))
        KilledMask.set(X);
    }
  // Pin-copy kills across the merge.
  for (const PinSite &S : PinSites[RA])
    for (RegId Y : Members[RB])
      if (pinSiteKills(S, Y))
        KilledMask.set(Y);
  for (const PinSite &S : PinSites[RB])
    for (RegId X : Members[RA])
      if (pinSiteKills(S, X))
        KilledMask.set(X);

  // Keep the physical register (if any) as the representative.
  RegId Keep = F.isPhysical(RB) ? RB : RA;
  RegId Other = Keep == RA ? RB : RA;
  RegId Rep = Classes.merge(Keep, Other, /*PreferA=*/true);
  assert(Rep == Keep && "representative preference violated");

  auto &Dst = Members[Keep];
  auto &Src = Members[Other];
  Dst.insert(Dst.end(), Src.begin(), Src.end());
  Src.clear();
  auto &DstSites = PinSites[Keep];
  auto &SrcSites = PinSites[Other];
  DstSites.insert(DstSites.end(), SrcSites.begin(), SrcSites.end());
  SrcSites.clear();
  if (Engine)
    Engine->onMerge(RA, RB);
  return Rep;
}

bool PinningContext::pinSiteKills(const PinSite &S, RegId X) const {
  if (S.UsedVar == X || !Defs[X].Valid)
    return false;
  // The copy executes immediately before S's instruction; X dies there
  // only if nothing reads it at or after that point.
  return LV.isLiveBefore(X, S.BB, S.Pos);
}

bool PinningContext::defDominates(RegId A, RegId B) const {
  const DefSite &DA = Defs[A], &DB = Defs[B];
  if (!DA.Valid || !DB.Valid)
    return false;
  if (DA.I == DB.I)
    return false; // Parallel defs of one instruction.
  if (DA.BB != DB.BB)
    return DT.strictlyDominates(DA.BB, DB.BB);
  // Same block: phis define at block entry, before all non-phis; two
  // phis of one block are parallel.
  if (DA.I->isPhi())
    return !DB.I->isPhi();
  if (DB.I->isPhi())
    return false;
  return DA.Order < DB.Order;
}

bool PinningContext::liveAtDef(RegId V, const DefSite &D) const {
  if (D.I->isPhi())
    return LV.isLiveIn(V, D.BB);
  return LV.isLiveAfter(V, D.BB, D.Pos);
}

bool PinningContext::variableKills(RegId A, RegId B) const {
  const DefSite &DA = Defs[A];
  if (!DA.Valid || !Defs[B].Valid)
    return false;

  // Class 1: B defined first, still live when A's definition writes the
  // shared resource.
  if (A != B && defDominates(B, A)) {
    switch (Mode) {
    case InterferenceMode::Precise:
      if (liveAtDef(B, DA))
        return true;
      break;
    case InterferenceMode::Optimistic:
      if (LV.isLiveOut(B, DA.BB))
        return true;
      break;
    case InterferenceMode::Pessimistic:
      if (LV.isLiveIn(B, DA.BB) || DA.BB == Defs[B].BB)
        return true;
      break;
    }
  }

  // Class 2: A is a phi; the parallel copy writing A's resource at the
  // end of predecessor Bi clobbers B if B lives through that copy and is
  // not the value flowing into it.
  if (DA.I->isPhi()) {
    const Instruction &Phi = *DA.I;
    for (unsigned K = 0; K < Phi.numUses(); ++K) {
      const BasicBlock *Bi = Phi.incomingBlock(K);
      if (Phi.use(K) != B && LV.isLiveOut(B, Bi))
        return true;
    }
  }
  return false;
}

bool PinningContext::stronglyInterfere(RegId A, RegId B) const {
  if (A == B)
    return false;
  const DefSite &DA = Defs[A], &DB = Defs[B];
  if (!DA.Valid || !DB.Valid)
    return false;

  if (DA.I->isPhi() && DB.I->isPhi()) {
    // Case 4 (and same-block Case 3 degenerate): parallel phis of one
    // block can never share a resource.
    if (DA.BB == DB.BB)
      return true;
    // Case 3: a common predecessor would carry two parallel copies into
    // one resource; legal only if the flowing values coincide.
    const Instruction &PA = *DA.I, &PB = *DB.I;
    for (unsigned I = 0; I < PA.numUses(); ++I) {
      const BasicBlock *Shared = PA.incomingBlock(I);
      for (unsigned J = 0; J < PB.numUses(); ++J)
        if (PB.incomingBlock(J) == Shared && PA.use(I) != PB.use(J))
          return true;
    }
    return false;
  }

  // Two results of one instruction are written in parallel.
  return DA.I == DB.I;
}

bool PinningContext::pairwiseResourceInterfere(RegId RA, RegId RB) const {
  ++NumPairwiseQueries;
  for (RegId X : Members[RA]) {
    if (!Defs[X].Valid)
      continue;
    for (RegId Y : Members[RB]) {
      if (!Defs[Y].Valid)
        continue;
      if (!KilledMask.test(X) && variableKills(Y, X))
        return true;
      if (!KilledMask.test(Y) && variableKills(X, Y))
        return true;
      if (stronglyInterfere(X, Y))
        return true;
    }
  }
  return false;
}

bool PinningContext::resourceInterfere(RegId A, RegId B) const {
  RegId RA = Classes.find(A), RB = Classes.find(B);
  if (RA == RB)
    return false;
  if (F.isPhysical(RA) && F.isPhysical(RB))
    return true;

  if (!SweepEngine)
    return pairwiseResourceInterfere(RA, RB);
  if (!Engine)
    Engine = std::make_unique<ClassInterference>(*this, Cfg, DT, LV);
  if (!Engine->usable())
    return pairwiseResourceInterfere(RA, RB);

  bool Verdict = Engine->interfere(RA, RB);
  if (CrossCheckOracle) {
    bool Reference = pairwiseResourceInterfere(RA, RB);
    if (Reference != Verdict) {
      std::fprintf(stderr,
                   "lao: fatal: class-interference oracle mismatch in "
                   "'%s': classes %u / %u, engine=%d pairwise=%d\n",
                   F.name().c_str(), RA, RB, int(Verdict), int(Reference));
      std::abort();
    }
  }
  return Verdict;
}

PinningContext::InterferenceReport PinningContext::interferenceReport() const {
  InterferenceReport R;
  size_t N = F.numValues();
  for (RegId V = 0; V < N; ++V) {
    if (Classes.find(V) != V || Members[V].empty())
      continue;
    size_t Size = Members[V].size();
    // Size-1 classes only matter when the sole member is a real
    // definition or a machine register; skip never-defined value slots.
    if (Size == 1 && !Defs[V].Valid && !F.isPhysical(V))
      continue;
    ++R.NumClasses;
    unsigned Bucket = Size <= 2   ? static_cast<unsigned>(Size - 1)
                      : Size <= 4 ? 2u
                      : Size <= 8 ? 3u
                      : Size <= 16 ? 4u
                                   : 5u;
    ++R.SizeHist[Bucket];
  }
  R.PairwiseQueries = NumPairwiseQueries;
  if (Engine && Engine->usable()) {
    const ClassInterference::Counters &C = Engine->counters();
    R.EngineUsed = true;
    R.Queries = C.Queries;
    R.CacheHits = C.CacheHits;
    R.CacheEvictions = C.CacheEvictions;
    R.Probes = C.Probes;
    R.PairCost = C.PairCost;
  }
  return R;
}
