//===- Constraints.h - Renaming constraint collection -----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "collect" phase of Leung & George, split as the paper's Section 5
/// splits it: pinningSP (dedicated stack pointer — must always run, see
/// the paper's discussion of Figure 2) and pinningABI (argument/result
/// registers, 2-operand ISA constraints, psi predication constraints).
/// Both phases only *record* pins on operands; classes are formed later
/// by PinningContext.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_CONSTRAINTS_H
#define LAO_OUTOFSSA_CONSTRAINTS_H

#include "ir/Function.h"

namespace lao {

/// Pins SP-derived variables (SpAdjust defs and uses) to the physical SP.
/// Returns the number of operands pinned.
unsigned collectSPConstraints(Function &F);

/// Pins ABI-constrained operands:
///  * `input` parameter k (k < NumArgRegs) defs to R0..R3
///  * `call` argument k (k < NumArgRegs) uses to R0..R3, result def to R0
///  * `ret` use to R0
///  * 2-operand instructions (`more`, `autoadd`): first use pinned to the
///    destination variable's resource
///  * `psi`: the else-operand pinned to the destination (the
///    psi-conventional conversion; predicated code overwrites its else
///    value in place)
/// Returns the number of operands pinned.
unsigned collectABIConstraints(Function &F);

} // namespace lao

#endif // LAO_OUTOFSSA_CONSTRAINTS_H
