//===- LeungGeorge.cpp - Out-of-pinned-SSA translation -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/LeungGeorge.h"

#include "support/Stats.h"

#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace lao;

namespace {

/// Abstract state of the mark phase: for each *written* resource-class
/// slot (compactly renumbered, see SlotOf), the SSA variable whose value
/// the resource currently holds. Two sentinels: BottomHolder
/// (== InvalidReg, "conflicting values") and AbsentHolder ("never
/// written on some path"). They are distinct lattice points —
/// absent-meet-absent stays absent while any disagreement bottoms out —
/// but both mean "not holding anything" to queries.
using HolderState = std::vector<RegId>;

constexpr RegId BottomHolder = InvalidReg;
constexpr RegId AbsentHolder = InvalidReg - 1;
constexpr uint32_t NoSlot = ~0u;

class Translator {
public:
  Translator(Function &F, PinningContext &Ctx, const CFG &Cfg)
      : F(F), Ctx(Ctx), Cfg(Cfg), NumOrigValues(F.numValues()) {}

  OutOfSSAStats run() {
    solve();
    replay(/*Rewrite=*/false);
    for (RegId V : RepairNeeded) {
      RepairVar[V] = F.makeVirtual(F.valueName(V) + ".r");
      ++Stats.NumRepairs;
    }
    replay(/*Rewrite=*/true);
    return Stats;
  }

private:
  Function &F;
  PinningContext &Ctx;
  const CFG &Cfg;
  size_t NumOrigValues;
  OutOfSSAStats Stats;

  /// Compact renumbering of written resource slots: SlotOf[Res] is the
  /// dense state index of resource representative Res, or NoSlot if no
  /// instruction ever writes it. Dataflow states only carry written
  /// slots — every query resolves through a definition, a use pin or a
  /// phi, all of which write their slot, so unwritten slots are Absent
  /// everywhere and need no storage.
  std::vector<uint32_t> SlotOf;
  uint32_t NumSlots = 0;

  /// Per-block transfer effects. The writes a block performs are
  /// state-independent (slot, value) pairs, so the transfer function is
  /// "apply this delta list in order" — no instruction walk per
  /// dataflow iteration.
  std::vector<std::vector<std::pair<uint32_t, RegId>>> Deltas;

  std::vector<HolderState> In, Out;
  std::vector<bool> Visited;
  std::set<RegId> RepairNeeded;
  std::map<RegId, RegId> RepairVar;

  RegId repOf(RegId V) const {
    assert(V < NumOrigValues && "querying a synthesized variable");
    return Ctx.resourceOf(V);
  }

  uint32_t slotOf(RegId Res) const {
    assert(Res < SlotOf.size() && SlotOf[Res] != NoSlot &&
           "query on a never-written resource slot");
    return SlotOf[Res];
  }

  static RegId holderOfSlot(const HolderState &S, uint32_t Slot) {
    RegId H = S[Slot];
    // BottomHolder already is InvalidReg; only Absent needs mapping.
    return H == AbsentHolder ? InvalidReg : H;
  }

  RegId holderOf(const HolderState &S, RegId Res) const {
    return holderOfSlot(S, slotOf(Res));
  }

  /// Location of \p V's value under \p S: its resource if the resource
  /// still holds it, otherwise its repair variable. In mark mode a miss
  /// records the repair requirement instead.
  RegId locOf(RegId V, const HolderState &S, bool Rewrite) {
    if (F.isPhysical(V))
      return V;
    RegId Res = repOf(V);
    if (holderOf(S, Res) == V)
      return Res;
    if (!Rewrite) {
      RepairNeeded.insert(V);
      return Res;
    }
    auto It = RepairVar.find(V);
    assert(It != RepairVar.end() && "repair variable missing");
    return It->second;
  }

  /// The parallel-copy state updates performed at the end of \p BB for
  /// the phis of its successors.
  void applyPhiCopyUpdates(const BasicBlock *BB, HolderState &S) {
    for (BasicBlock *Succ : BB->successors())
      for (const Instruction &I : Succ->instructions()) {
        if (!I.isPhi())
          break;
        S[slotOf(repOf(I.def(0)))] = I.def(0);
      }
  }

  uint32_t internSlot(RegId Res) {
    if (SlotOf[Res] == NoSlot)
      SlotOf[Res] = NumSlots++;
    return SlotOf[Res];
  }

  /// One pass over the function: assigns compact indices to every
  /// written slot (in first-write order, deterministic) and records each
  /// block's delta list, mirroring the replay state updates exactly.
  void buildSlotsAndDeltas() {
    SlotOf.assign(F.numValues(), NoSlot);
    NumSlots = 0;
    Deltas.assign(F.numBlocks(), {});
    for (const auto &BBPtr : F.blocks()) {
      auto &D = Deltas[BBPtr->id()];
      for (const Instruction &I : BBPtr->instructions()) {
        if (I.isPhi()) {
          D.push_back({internSlot(repOf(I.def(0))), I.def(0)});
          continue;
        }
        if (I.isTerminator()) // Phi-related parallel copies at block end.
          for (BasicBlock *Succ : BBPtr->successors())
            for (const Instruction &Phi : Succ->instructions()) {
              if (!Phi.isPhi())
                break;
              D.push_back({internSlot(repOf(Phi.def(0))), Phi.def(0)});
            }
        for (unsigned K = 0; K < I.numUses(); ++K)
          if (I.usePin(K) != InvalidReg)
            D.push_back({internSlot(repOf(I.usePin(K))), I.use(K)});
        for (RegId Dv : I.defs())
          D.push_back(
              {internSlot(F.isPhysical(Dv) ? Ctx.resourceOf(Dv) : repOf(Dv)),
               Dv});
      }
    }
  }

  /// Forward dataflow to the maximum fixpoint. The lattice is flat and
  /// the transfer functions are slot-wise constant-or-identity, so the
  /// fixpoint is unique — worklist order does not affect the result,
  /// only how fast it converges. Unvisited predecessors are ignored
  /// (optimistic start), exactly like the former round-robin solver; the
  /// entry block merges an extra "function start" path on which nothing
  /// holds a value, which bottoms out values flowing around a loop back
  /// to the entry.
  void solve() {
    buildSlotsAndDeltas();
    size_t NB = F.numBlocks();
    In.assign(NB, HolderState(NumSlots, AbsentHolder));
    Out.assign(NB, HolderState(NumSlots, AbsentHolder));
    Visited.assign(NB, false);

    std::vector<char> InList(NB, true);
    std::deque<BasicBlock *> Worklist;
    for (BasicBlock *BB : Cfg.rpo())
      Worklist.push_back(BB);

    HolderState NewIn;
    while (!Worklist.empty()) {
      BasicBlock *BB = Worklist.front();
      Worklist.pop_front();
      InList[BB->id()] = false;

      bool Merged = false;
      if (BB == &F.entry()) {
        NewIn.assign(NumSlots, AbsentHolder);
        Merged = true;
      }
      for (BasicBlock *P : Cfg.preds(BB)) {
        if (!Visited[P->id()])
          continue;
        const HolderState &PO = Out[P->id()];
        if (!Merged) {
          NewIn = PO;
          Merged = true;
        } else {
          for (size_t K = 0; K < NumSlots; ++K)
            if (NewIn[K] != PO[K])
              NewIn[K] = BottomHolder;
        }
      }
      if (!Merged) // Unreachable block: only the all-absent state.
        NewIn.assign(NumSlots, AbsentHolder);

      bool First = !Visited[BB->id()];
      Visited[BB->id()] = true;
      if (!First && NewIn == In[BB->id()])
        continue;
      In[BB->id()] = NewIn;

      for (const auto &[Slot, V] : Deltas[BB->id()])
        NewIn[Slot] = V; // NewIn now holds the block's Out.
      if (First || NewIn != Out[BB->id()]) {
        Out[BB->id()] = NewIn;
        for (BasicBlock *S : BB->successors())
          if (!InList[S->id()]) {
            Worklist.push_back(S);
            InList[S->id()] = true;
          }
      }
    }
  }

  /// Walks every block with the solved In state. In mark mode (Rewrite ==
  /// false) it records which variables need repairs; in rewrite mode it
  /// rebuilds each block's sequence by *relinking* retained instructions
  /// into a staging list (an O(1) splice per instruction — records never
  /// move or copy) and inserting the parallel copies and repairs. Phis
  /// and identity moves stay behind and are freed when the staged list
  /// is installed. Installation happens only after all blocks are
  /// processed: building a predecessor's parallel copy needs the
  /// successor's phis.
  void replay(bool Rewrite) {
    std::vector<BasicBlock::InstList> NewLists;
    NewLists.reserve(F.numBlocks());
    for (size_t I = 0; I < F.numBlocks(); ++I)
      NewLists.emplace_back(&F);
    for (const auto &BBPtr : F.blocks())
      replayBlock(BBPtr.get(), Rewrite, NewLists[BBPtr->id()]);
    if (Rewrite)
      for (const auto &BBPtr : F.blocks())
        BBPtr->instructions() = std::move(NewLists[BBPtr->id()]);
  }

  /// Emits (in rewrite mode) the repair copy for \p V right after its
  /// definition point.
  void emitRepair(RegId V, BasicBlock::InstList &NewList) {
    Instruction Copy(Opcode::Mov);
    Copy.addDef(RepairVar.at(V));
    Copy.addUse(repOf(V));
    NewList.push_back(std::move(Copy));
    ++Stats.NumInserts;
  }

  void replayBlock(BasicBlock *BB, bool Rewrite,
                   BasicBlock::InstList &NewList) {
    HolderState S = In[BB->id()];
    std::vector<RegId> PendingPhiRepairs;
    bool InPhiGroup = true;

    auto &Insts = BB->instructions();
    for (auto It = Insts.begin(); It != Insts.end();) {
      Instruction &I = *It;
      auto Next = std::next(It);
      if (I.isPhi()) {
        assert(InPhiGroup && "phi after non-phi");
        S[slotOf(repOf(I.def(0)))] = I.def(0);
        if (Rewrite) {
          if (RepairNeeded.count(I.def(0)))
            PendingPhiRepairs.push_back(I.def(0));
          ++Stats.NumPhisRemoved;
        }
        It = Next;
        continue;
      }
      if (InPhiGroup) {
        InPhiGroup = false;
        if (Rewrite)
          for (RegId V : PendingPhiRepairs)
            emitRepair(V, NewList);
      }

      // Phi-related parallel copy at block end (before the terminator).
      if (I.isTerminator()) {
        Instruction ParCopy(Opcode::ParCopy);
        for (BasicBlock *Succ : BB->successors()) {
          for (const Instruction &Phi : Succ->instructions()) {
            if (!Phi.isPhi())
              break;
            RegId X = Phi.def(0);
            RegId Dst = repOf(X);
            // Find the argument flowing along this edge.
            RegId Arg = InvalidReg;
            for (unsigned K = 0; K < Phi.numUses(); ++K)
              if (Phi.incomingBlock(K) == BB) {
                Arg = Phi.use(K);
                break;
              }
            assert(Arg != InvalidReg && "phi lacks entry for predecessor");
            if (holderOf(S, Dst) == Arg) {
              // The destination resource already carries the flowing
              // value: elide the copy (paper Section 2.3, second bullet).
              if (Rewrite)
                ++Stats.NumElidedCopies;
              continue;
            }
            RegId Src = locOf(Arg, S, Rewrite);
            if (Src == Dst) {
              if (Rewrite)
                ++Stats.NumElidedCopies;
              continue;
            }
            ParCopy.addDef(Dst);
            ParCopy.addUse(Src);
          }
        }
        applyPhiCopyUpdates(BB, S);
        if (Rewrite && ParCopy.numDefs() != 0) {
          Stats.NumPhiCopies += ParCopy.numDefs();
          NewList.push_back(std::move(ParCopy));
          ++Stats.NumInserts;
        }
      }

      // Uses. The pin copies execute (in parallel) immediately before
      // the instruction: build them against the pre-copy state, then
      // apply their effect, then resolve every operand against the
      // post-copy state — an unpinned use whose resource was just
      // clobbered by a sibling's pin copy must read its repair.
      const std::vector<RegId> OrigUses(I.uses().begin(), I.uses().end());
      Instruction PinCopy(Opcode::ParCopy);
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId V = OrigUses[K];
        RegId Pin = I.usePin(K);
        if (Pin == InvalidReg)
          continue;
        RegId PinRes = repOf(Pin);
        RegId Loc = F.isPhysical(V) ? V : locOf(V, S, Rewrite);
        if (holderOf(S, PinRes) == V || Loc == PinRes) {
          if (Rewrite)
            ++Stats.NumElidedCopies;
          continue;
        }
        // Copy the value into the pinned resource.
        bool Dup = false;
        for (unsigned D = 0; D < PinCopy.numDefs() && !Dup; ++D)
          Dup = PinCopy.def(D) == PinRes;
        if (!Dup) {
          PinCopy.addDef(PinRes);
          PinCopy.addUse(Loc);
        }
      }
      // Pin-copy state updates (value now also in the pinned resource).
      for (unsigned K = 0; K < I.numUses(); ++K)
        if (I.usePin(K) != InvalidReg)
          S[slotOf(repOf(I.usePin(K)))] = OrigUses[K];
      if (Rewrite && PinCopy.numDefs() != 0) {
        Stats.NumPinCopies += PinCopy.numDefs();
        NewList.push_back(std::move(PinCopy));
        ++Stats.NumInserts;
      }
      // Resolve operands under the post-copy state.
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId V = OrigUses[K];
        RegId Pin = I.usePin(K);
        if (Pin != InvalidReg) {
          if (Rewrite)
            I.setUse(K, repOf(Pin));
          continue;
        }
        RegId Loc = F.isPhysical(V) ? V : locOf(V, S, Rewrite);
        if (Rewrite)
          I.setUse(K, Loc);
      }

      // Defs: rename to the class representative.
      std::vector<RegId> RepairsAfter;
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        RegId D = I.def(K);
        RegId Res = repOf(D);
        S[slotOf(Res)] = D;
        if (Rewrite) {
          I.setDef(K, Res);
          if (RepairNeeded.count(D))
            RepairsAfter.push_back(D);
        }
      }

      if (Rewrite) {
        // Relink the (renamed-in-place) instruction into the staged
        // list; moves that became identities through renaming stay
        // behind and are freed when the staged list is installed.
        bool Identity = I.isCopy() && I.def(0) == I.use(0);
        if (!Identity)
          NewList.splice(NewList.end(), Insts, It);
        for (RegId V : RepairsAfter)
          emitRepair(V, NewList);
      }
      It = Next;
    }

    // Clear pins: the output is no longer pinned SSA. The new list is
    // installed by replay() once every block has been processed.
    if (Rewrite) {
      for (Instruction &I : NewList) {
        for (unsigned K = 0; K < I.numDefs(); ++K)
          I.pinDef(K, InvalidReg);
        for (unsigned K = 0; K < I.numUses(); ++K)
          I.pinUse(K, InvalidReg);
      }
    }
  }
};

} // namespace

OutOfSSAStats lao::translateOutOfSSA(Function &F, PinningContext &Ctx,
                                     const CFG &Cfg) {
  Translator T(F, Ctx, Cfg);
  OutOfSSAStats Stats = T.run();
  LAO_STAT(translate, runs) += 1;
  LAO_STAT(translate, repairs) += Stats.NumRepairs;
  LAO_STAT(translate, phi_copies) += Stats.NumPhiCopies;
  LAO_STAT(translate, pin_copies) += Stats.NumPinCopies;
  LAO_STAT(translate, elided_copies) += Stats.NumElidedCopies;
  LAO_STAT(translate, phis_removed) += Stats.NumPhisRemoved;
  LAO_STAT(translate, inserts) += Stats.NumInserts;
  return Stats;
}

void lao::sequentializeCopyPairs(std::vector<CopyPair> Entries,
                                 const std::function<RegId()> &MakeTemp,
                                 std::vector<CopyPair> &Out) {
  while (!Entries.empty()) {
    // Emit a copy whose destination is not needed as a source.
    bool Progress = false;
    for (size_t K = 0; K < Entries.size(); ++K) {
      RegId Dst = Entries[K].first;
      bool DstIsSource = false;
      for (auto &[D2, S2] : Entries)
        DstIsSource |= S2 == Dst;
      if (DstIsSource)
        continue;
      Out.push_back(Entries[K]);
      Entries.erase(Entries.begin() + K);
      Progress = true;
      break;
    }
    if (Progress)
      continue;
    // Pure cycle: break it with a temporary (the swap problem).
    RegId CycleSrc = Entries.front().second;
    RegId Tmp = MakeTemp();
    Out.push_back({Tmp, CycleSrc});
    for (auto &[D2, S2] : Entries)
      if (S2 == CycleSrc)
        S2 = Tmp;
  }
}

unsigned lao::sequentializeParallelCopies(Function &F) {
  unsigned NumMoves = 0;
  for (const auto &BB : F.blocks()) {
    auto &Insts = BB->instructions();
    for (auto It = Insts.begin(); It != Insts.end();) {
      if (!It->isParCopy()) {
        ++It;
        continue;
      }
      // Gather entries, dropping identities.
      std::vector<CopyPair> Entries; // (dst, src)
      for (unsigned K = 0; K < It->numDefs(); ++K)
        if (It->def(K) != It->use(K))
          Entries.push_back({It->def(K), It->use(K)});

      std::vector<CopyPair> Seq;
      sequentializeCopyPairs(std::move(Entries),
                             [&F] { return F.makeVirtual("swap"); }, Seq);

      NumMoves += Seq.size();
      for (auto &[Dst, Src] : Seq) {
        Instruction Mv(Opcode::Mov);
        Mv.addDef(Dst);
        Mv.addUse(Src);
        Insts.insert(It, std::move(Mv));
      }
      It = Insts.erase(It);
    }
  }
  LAO_STAT(sequentialize, moves_emitted) += NumMoves;
  return NumMoves;
}
