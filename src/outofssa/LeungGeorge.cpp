//===- LeungGeorge.cpp - Out-of-pinned-SSA translation -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/LeungGeorge.h"

#include "support/Stats.h"

#include <cassert>
#include <map>
#include <set>

using namespace lao;

namespace {

/// Abstract state of the mark phase: for each resource class
/// representative, the SSA variable whose value it currently holds,
/// stored densely (indexed by representative id). Two sentinels:
/// BottomHolder (== InvalidReg, "conflicting values") and AbsentHolder
/// ("never written on some path"). They are distinct lattice points —
/// absent-meet-absent stays absent while any disagreement bottoms out —
/// but both mean "not holding anything" to queries.
using HolderState = std::vector<RegId>;

constexpr RegId BottomHolder = InvalidReg;
constexpr RegId AbsentHolder = InvalidReg - 1;

/// Pointwise merge: slots must agree, otherwise bottom. (The dense
/// encoding makes the old map semantics uniform: a key missing from one
/// map and present in another — with any value — disagrees, hence
/// bottom; missing everywhere stays absent.)
HolderState mergeStates(const std::vector<const HolderState *> &Preds,
                        size_t NumSlots) {
  if (Preds.empty())
    return HolderState(NumSlots, AbsentHolder);
  HolderState Result = *Preds[0];
  for (size_t K = 1; K < Preds.size(); ++K) {
    const HolderState &P = *Preds[K];
    for (size_t I = 0; I < NumSlots; ++I)
      if (Result[I] != P[I])
        Result[I] = BottomHolder;
  }
  return Result;
}

class Translator {
public:
  Translator(Function &F, PinningContext &Ctx, const CFG &Cfg)
      : F(F), Ctx(Ctx), Cfg(Cfg), NumOrigValues(F.numValues()) {}

  OutOfSSAStats run() {
    solve();
    replay(/*Rewrite=*/false);
    for (RegId V : RepairNeeded) {
      RepairVar[V] = F.makeVirtual(F.valueName(V) + ".r");
      ++Stats.NumRepairs;
    }
    replay(/*Rewrite=*/true);
    return Stats;
  }

private:
  Function &F;
  PinningContext &Ctx;
  const CFG &Cfg;
  size_t NumOrigValues;
  OutOfSSAStats Stats;

  std::vector<HolderState> In, Out;
  std::vector<bool> Visited;
  std::set<RegId> RepairNeeded;
  std::map<RegId, RegId> RepairVar;

  RegId repOf(RegId V) const {
    assert(V < NumOrigValues && "querying a synthesized variable");
    return Ctx.resourceOf(V);
  }

  static RegId holderOf(const HolderState &S, RegId Res) {
    RegId H = S[Res];
    // BottomHolder already is InvalidReg; only Absent needs mapping.
    return H == AbsentHolder ? InvalidReg : H;
  }

  /// Location of \p V's value under \p S: its resource if the resource
  /// still holds it, otherwise its repair variable. In mark mode a miss
  /// records the repair requirement instead.
  RegId locOf(RegId V, const HolderState &S, bool Rewrite) {
    if (F.isPhysical(V))
      return V;
    RegId Res = repOf(V);
    if (holderOf(S, Res) == V)
      return Res;
    if (!Rewrite) {
      RepairNeeded.insert(V);
      return Res;
    }
    auto It = RepairVar.find(V);
    assert(It != RepairVar.end() && "repair variable missing");
    return It->second;
  }

  /// The parallel-copy state updates performed at the end of \p BB for
  /// the phis of its successors.
  void applyPhiCopyUpdates(const BasicBlock *BB, HolderState &S) {
    for (BasicBlock *Succ : BB->successors())
      for (const Instruction &I : Succ->instructions()) {
        if (!I.isPhi())
          break;
        S[repOf(I.def(0))] = I.def(0);
      }
  }

  /// Transfer function used by the dataflow solve (no queries, no
  /// rewriting — state effects only; must mirror replayBlock exactly).
  HolderState transfer(const BasicBlock *BB, HolderState S) {
    for (const Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        S[repOf(I.def(0))] = I.def(0);
        continue;
      }
      if (I.isTerminator())
        applyPhiCopyUpdates(BB, S);
      for (unsigned K = 0; K < I.numUses(); ++K)
        if (I.usePin(K) != InvalidReg)
          S[repOf(I.usePin(K))] = I.use(K);
      for (RegId D : I.defs())
        S[F.isPhysical(D) ? Ctx.resourceOf(D) : repOf(D)] = D;
    }
    return S;
  }

  void solve() {
    size_t NB = F.numBlocks();
    In.assign(NB, HolderState(NumOrigValues, AbsentHolder));
    Out.assign(NB, HolderState(NumOrigValues, AbsentHolder));
    Visited.assign(NB, false);

    // The entry has an implicit "function start" path on which no
    // resource holds anything; merging the empty state bottoms out
    // any values flowing around a loop back to the entry.
    const HolderState EmptyState(NumOrigValues, AbsentHolder);
    std::vector<const HolderState *> PredOuts;

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *BB : Cfg.rpo()) {
        PredOuts.clear();
        if (BB == &F.entry())
          PredOuts.push_back(&EmptyState);
        for (BasicBlock *P : Cfg.preds(BB))
          if (Visited[P->id()])
            PredOuts.push_back(&Out[P->id()]);
        HolderState NewIn = mergeStates(PredOuts, NumOrigValues);
        HolderState NewOut = transfer(BB, NewIn);
        if (!Visited[BB->id()] || NewIn != In[BB->id()] ||
            NewOut != Out[BB->id()]) {
          Changed = true;
          In[BB->id()] = std::move(NewIn);
          Out[BB->id()] = std::move(NewOut);
          Visited[BB->id()] = true;
        }
      }
    }
  }

  /// Walks every block with the solved In state. In mark mode (Rewrite ==
  /// false) it records which variables need repairs; in rewrite mode it
  /// rebuilds each block's instruction list with renamed operands,
  /// parallel copies and repairs. New lists are installed only after all
  /// blocks are processed: building a predecessor's parallel copy needs
  /// the successor's phis, which installation deletes.
  void replay(bool Rewrite) {
    std::vector<BasicBlock::InstList> NewLists(F.numBlocks());
    for (const auto &BBPtr : F.blocks())
      replayBlock(BBPtr.get(), Rewrite, NewLists[BBPtr->id()]);
    if (Rewrite)
      for (const auto &BBPtr : F.blocks())
        BBPtr->instructions() = std::move(NewLists[BBPtr->id()]);
  }

  /// Emits (in rewrite mode) the repair copy for \p V right after its
  /// definition point.
  void emitRepair(RegId V, BasicBlock::InstList &NewList) {
    Instruction Copy(Opcode::Mov);
    Copy.addDef(RepairVar.at(V));
    Copy.addUse(repOf(V));
    NewList.push_back(std::move(Copy));
  }

  void replayBlock(BasicBlock *BB, bool Rewrite,
                   BasicBlock::InstList &NewList) {
    HolderState S = In[BB->id()];
    std::vector<RegId> PendingPhiRepairs;
    bool InPhiGroup = true;

    for (Instruction &I : BB->instructions()) {
      if (I.isPhi()) {
        assert(InPhiGroup && "phi after non-phi");
        S[repOf(I.def(0))] = I.def(0);
        if (Rewrite) {
          if (RepairNeeded.count(I.def(0)))
            PendingPhiRepairs.push_back(I.def(0));
          ++Stats.NumPhisRemoved;
        }
        continue;
      }
      if (InPhiGroup) {
        InPhiGroup = false;
        if (Rewrite)
          for (RegId V : PendingPhiRepairs)
            emitRepair(V, NewList);
      }

      // Phi-related parallel copy at block end (before the terminator).
      if (I.isTerminator()) {
        Instruction ParCopy(Opcode::ParCopy);
        for (BasicBlock *Succ : BB->successors()) {
          for (const Instruction &Phi : Succ->instructions()) {
            if (!Phi.isPhi())
              break;
            RegId X = Phi.def(0);
            RegId Dst = repOf(X);
            // Find the argument flowing along this edge.
            RegId Arg = InvalidReg;
            for (unsigned K = 0; K < Phi.numUses(); ++K)
              if (Phi.incomingBlock(K) == BB) {
                Arg = Phi.use(K);
                break;
              }
            assert(Arg != InvalidReg && "phi lacks entry for predecessor");
            if (holderOf(S, Dst) == Arg) {
              // The destination resource already carries the flowing
              // value: elide the copy (paper Section 2.3, second bullet).
              if (Rewrite)
                ++Stats.NumElidedCopies;
              continue;
            }
            RegId Src = locOf(Arg, S, Rewrite);
            if (Src == Dst) {
              if (Rewrite)
                ++Stats.NumElidedCopies;
              continue;
            }
            ParCopy.addDef(Dst);
            ParCopy.addUse(Src);
          }
        }
        applyPhiCopyUpdates(BB, S);
        if (Rewrite && ParCopy.numDefs() != 0) {
          Stats.NumPhiCopies += ParCopy.numDefs();
          NewList.push_back(std::move(ParCopy));
        }
      }

      // Uses. The pin copies execute (in parallel) immediately before
      // the instruction: build them against the pre-copy state, then
      // apply their effect, then resolve every operand against the
      // post-copy state — an unpinned use whose resource was just
      // clobbered by a sibling's pin copy must read its repair.
      const std::vector<RegId> OrigUses = I.uses();
      Instruction PinCopy(Opcode::ParCopy);
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId V = OrigUses[K];
        RegId Pin = I.usePin(K);
        if (Pin == InvalidReg)
          continue;
        RegId PinRes = repOf(Pin);
        RegId Loc = F.isPhysical(V) ? V : locOf(V, S, Rewrite);
        if (holderOf(S, PinRes) == V || Loc == PinRes) {
          if (Rewrite)
            ++Stats.NumElidedCopies;
          continue;
        }
        // Copy the value into the pinned resource.
        bool Dup = false;
        for (unsigned D = 0; D < PinCopy.numDefs() && !Dup; ++D)
          Dup = PinCopy.def(D) == PinRes;
        if (!Dup) {
          PinCopy.addDef(PinRes);
          PinCopy.addUse(Loc);
        }
      }
      // Pin-copy state updates (value now also in the pinned resource).
      for (unsigned K = 0; K < I.numUses(); ++K)
        if (I.usePin(K) != InvalidReg)
          S[repOf(I.usePin(K))] = OrigUses[K];
      if (Rewrite && PinCopy.numDefs() != 0) {
        Stats.NumPinCopies += PinCopy.numDefs();
        NewList.push_back(std::move(PinCopy));
      }
      // Resolve operands under the post-copy state.
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId V = OrigUses[K];
        RegId Pin = I.usePin(K);
        if (Pin != InvalidReg) {
          if (Rewrite)
            I.setUse(K, repOf(Pin));
          continue;
        }
        RegId Loc = F.isPhysical(V) ? V : locOf(V, S, Rewrite);
        if (Rewrite)
          I.setUse(K, Loc);
      }

      // Defs: rename to the class representative.
      std::vector<RegId> RepairsAfter;
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        RegId D = I.def(K);
        RegId Res = repOf(D);
        S[Res] = D;
        if (Rewrite) {
          I.setDef(K, Res);
          if (RepairNeeded.count(D))
            RepairsAfter.push_back(D);
        }
      }

      if (Rewrite) {
        // Drop moves that became identities through renaming.
        bool Identity = I.isCopy() && I.def(0) == I.use(0);
        if (!Identity)
          NewList.push_back(std::move(I));
        for (RegId V : RepairsAfter)
          emitRepair(V, NewList);
      }
    }

    // Clear pins: the output is no longer pinned SSA. The new list is
    // installed by replay() once every block has been processed.
    if (Rewrite) {
      for (Instruction &I : NewList) {
        for (unsigned K = 0; K < I.numDefs(); ++K)
          I.pinDef(K, InvalidReg);
        for (unsigned K = 0; K < I.numUses(); ++K)
          I.pinUse(K, InvalidReg);
      }
    }
  }
};

} // namespace

OutOfSSAStats lao::translateOutOfSSA(Function &F, PinningContext &Ctx,
                                     const CFG &Cfg) {
  Translator T(F, Ctx, Cfg);
  OutOfSSAStats Stats = T.run();
  LAO_STAT(translate, runs) += 1;
  LAO_STAT(translate, repairs) += Stats.NumRepairs;
  LAO_STAT(translate, phi_copies) += Stats.NumPhiCopies;
  LAO_STAT(translate, pin_copies) += Stats.NumPinCopies;
  LAO_STAT(translate, elided_copies) += Stats.NumElidedCopies;
  LAO_STAT(translate, phis_removed) += Stats.NumPhisRemoved;
  return Stats;
}

unsigned lao::sequentializeParallelCopies(Function &F) {
  unsigned NumMoves = 0;
  for (const auto &BB : F.blocks()) {
    auto &Insts = BB->instructions();
    for (auto It = Insts.begin(); It != Insts.end();) {
      if (!It->isParCopy()) {
        ++It;
        continue;
      }
      // Gather entries, dropping identities.
      std::vector<std::pair<RegId, RegId>> Entries; // (dst, src)
      for (unsigned K = 0; K < It->numDefs(); ++K)
        if (It->def(K) != It->use(K))
          Entries.push_back({It->def(K), It->use(K)});

      std::vector<Instruction> Seq;
      while (!Entries.empty()) {
        // Emit a copy whose destination is not needed as a source.
        bool Progress = false;
        for (size_t K = 0; K < Entries.size(); ++K) {
          RegId Dst = Entries[K].first;
          bool DstIsSource = false;
          for (auto &[D2, S2] : Entries)
            DstIsSource |= S2 == Dst;
          if (DstIsSource)
            continue;
          Instruction Mv(Opcode::Mov);
          Mv.addDef(Dst);
          Mv.addUse(Entries[K].second);
          Seq.push_back(std::move(Mv));
          Entries.erase(Entries.begin() + K);
          Progress = true;
          break;
        }
        if (Progress)
          continue;
        // Pure cycle: break it with a temporary (the swap problem).
        RegId CycleSrc = Entries.front().second;
        RegId Tmp = F.makeVirtual("swap");
        Instruction Mv(Opcode::Mov);
        Mv.addDef(Tmp);
        Mv.addUse(CycleSrc);
        Seq.push_back(std::move(Mv));
        for (auto &[D2, S2] : Entries)
          if (S2 == CycleSrc)
            S2 = Tmp;
      }

      NumMoves += Seq.size();
      for (Instruction &Mv : Seq)
        Insts.insert(It, std::move(Mv));
      It = Insts.erase(It);
    }
  }
  LAO_STAT(sequentialize, moves_emitted) += NumMoves;
  return NumMoves;
}
