//===- ClassInterference.h - Dominance-ordered class interference *- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A class-vs-class interference engine that answers the paper's
/// Resource_interfere(A, B) with a single merged dominance-order sweep
/// over the two classes' definition sites instead of the O(|A|*|B|)
/// pairwise scan of Algorithm 2 — same verdicts, sublinear liveness
/// probes (see docs/ANALYSIS.md, "Class interference").
///
/// The exactness argument rests on two SSA facts:
///
///  1. *Dominance of live ranges.* In strict SSA over reachable blocks, a
///     value is live at a point only if its definition dominates that
///     point. Hence every class member that can be a Class 1 / Class 2
///     kill victim of a definition (or phi-copy slot) at point p has its
///     own definition on the dominator-tree path from the entry to p —
///     i.e. on the sweep's dominating-def stack when the sweep reaches p.
///
///  2. *Nearest-victim sufficiency.* Within one class the PinningContext
///     maintains the invariant "variableKills(X, Y) between same-class
///     members implies Y is in the killed set" (seeded with self-kills,
///     extended by every pinTogether). Consequently, if a *deeper* stack
///     entry W (non-killed, its def strictly dominating the nearest
///     non-killed entry W1 of the same class) were live at the probe
///     point, then W would also be live at W1's definition — the
///     dominator-tree path from def(W1) to the probe point can be chosen
///     through blocks dominated by def(W1).BB, which excludes def(W).BB,
///     so liveness extends def-free backwards — making variableKills(W1,
///     W) true and W killed: a contradiction. This holds in all three
///     InterferenceModes (for Optimistic/Pessimistic the same path
///     argument runs through isLiveOut/isLiveIn of def(W1).BB). So each
///     killer only probes the *topmost non-killed group* of the other
///     class's stack.
///
/// Definitions that execute in parallel (phis of one block; the several
/// results of one instruction) share one *group* keyed (preorder of the
/// defining block, intra-block key) with phis ordered before non-phis,
/// so parallel defs never pop — or probe — each other. Class 2 phi
/// copies are swept as *slot items* placed at the end of each phi's
/// predecessor block, probing the topmost other-class group for values
/// live out of the predecessor that are not the flowing value. Strong
/// interference (Cases 3/4, multi-result instructions) needs no liveness
/// at all and is answered from per-class digests merged on pinTogether:
/// phi-block id sets, multi-def instruction sets, and per-predecessor
/// incoming-value summaries.
///
/// Verdicts are memoized per representative pair; a pinTogether merge
/// evicts exactly the cached pairs touching either merged representative
/// (kills are only ever added to the merged class, so third-party
/// verdicts cannot change). Functions with non-empty unreachable blocks
/// void fact 1 above; the engine reports !usable() and PinningContext
/// falls back to the pairwise scan wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_CLASSINTERFERENCE_H
#define LAO_OUTOFSSA_CLASSINTERFERENCE_H

#include "analysis/Dominators.h"
#include "analysis/LivenessQuery.h"
#include "ir/CFG.h"
#include "ir/Function.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lao {

class PinningContext;

/// Dominance-ordered interference engine over one PinningContext. Built
/// lazily at the first resourceInterfere query; PinningContext keeps it
/// informed of class merges through onMerge.
class ClassInterference {
public:
  ClassInterference(const PinningContext &Ctx, const CFG &Cfg,
                    const DominatorTree &DT, const LivenessQuery &LV);
  ~ClassInterference(); ///< Flushes the local counters into LAO_STATs.

  /// False when the function has a non-empty unreachable block (liveness
  /// is then not confined to dominator subtrees and the sweep would be
  /// unsound); the caller must use the pairwise scan instead.
  bool usable() const { return Usable; }

  /// Resource_interfere over two *distinct current representatives*, not
  /// both physical. Memoized; bit-equal to the pairwise scan.
  bool interfere(RegId RA, RegId RB);

  /// Must be called after every effective PinningContext merge, with the
  /// two pre-merge representatives: evicts the cached verdicts touching
  /// either and merges the loser's summaries into the survivor's.
  void onMerge(RegId OldA, RegId OldB);

  /// Engine-local counters (process-wide totals go to the stats
  /// registry; these power lao-opt --interference-stats).
  struct Counters {
    uint64_t Queries = 0;      ///< Uncached interfere() computations.
    uint64_t CacheHits = 0;
    uint64_t CacheEvictions = 0;
    uint64_t Sweeps = 0;       ///< Queries that reached the sweep.
    uint64_t Probes = 0;       ///< Liveness probes issued by sweeps.
    uint64_t PairCost = 0;     ///< Sum of |A|*|B| over swept queries:
                               ///< the pairwise scan's probe bound.
  };
  const Counters &counters() const { return Stats; }

private:
  /// One member definition, keyed for the dominance-order walk. Key =
  /// (dom-tree preorder of the defining block) << 32 | intra-block key,
  /// where phis get intra-block key 0 (they define at block entry, in
  /// parallel) and a non-phi at instruction index i gets i + 1. Equal
  /// keys = parallel definitions = one group.
  struct DefItem {
    uint64_t Key;
    uint32_t PreOut; ///< preorderLimit of the defining block.
    RegId V;
  };

  /// One Class 2 phi-copy slot: the parallel copy writing the class's
  /// resource at the end of predecessor Pred. Keyed after every
  /// definition of that block (intra-block key 0xffffffff).
  struct SlotItem {
    uint64_t Key;
    uint32_t PreOut; ///< preorderLimit of Pred.
    const BasicBlock *Pred;
    RegId Incoming; ///< The value flowing through the copy (never a
                    ///< victim of this slot).
  };

  /// Per-predecessor-block digest of a class's phi incoming values, for
  /// the Case 3 strong check: either the single distinct value the
  /// class's phis read from Block, or Multi when they read two or more.
  struct PredArg {
    uint32_t Block;
    RegId Val;
    bool Multi;
  };

  /// Summaries of one class, indexed by current representative. All
  /// vectors sorted; onMerge merge-joins them in linear time.
  struct ClassData {
    std::vector<DefItem> Items;
    std::vector<SlotItem> Slots;
    std::vector<const Instruction *> MultiDefs; ///< Instrs with >= 2 results.
    std::vector<uint32_t> PhiBlocks;            ///< Blocks with a phi def.
    std::vector<PredArg> PredArgs;
  };

  /// The dominating-def stack of one class during a sweep: a dominance
  /// chain of non-killed member groups. Only the top group is ever
  /// probed (nearest-victim sufficiency).
  struct VictimStack {
    struct Group {
      uint64_t Key;
      uint32_t PreOut;
      uint32_t Begin; ///< First member index in Vals.
    };
    std::vector<Group> Groups;
    std::vector<RegId> Vals;

    void clear() {
      Groups.clear();
      Vals.clear();
    }
    /// Pops every group whose position does not dominate (PreIn, SubKey,
    /// PreOut) — after which the stack is exactly the dominator chain of
    /// the current sweep position.
    void popTo(uint32_t PreIn, uint32_t SubKey, uint32_t PreOut);
  };

  bool computeUncached(RegId RA, RegId RB);
  bool strongInterfere(const ClassData &A, const ClassData &B) const;
  bool sweep(RegId RA, RegId RB);
  bool class1Probe(RegId Victim, RegId Killer);
  void evict(RegId R);
  void buildSummaries();

  static uint64_t pairKey(RegId A, RegId B) {
    if (A < B)
      std::swap(A, B);
    return (uint64_t(A) << 32) | B;
  }

  const PinningContext &Ctx;
  const CFG &Cfg;
  const DominatorTree &DT;
  const LivenessQuery &LV;
  bool Usable = true;

  std::vector<ClassData> Data; ///< Indexed by representative.
  std::unordered_map<uint64_t, bool> Cache;
  std::vector<std::vector<RegId>> Partners; ///< Cached partners per rep.

  VictimStack StackA, StackB; ///< Reused across sweeps.
  Counters Stats;
};

} // namespace lao

#endif // LAO_OUTOFSSA_CLASSINTERFERENCE_H
