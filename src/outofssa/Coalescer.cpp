//===- Coalescer.cpp - Aggressive repeated register coalescing ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Coalescer.h"

#include "analysis/AnalysisManager.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "ir/Clone.h"
#include "ir/IRPrinter.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

using namespace lao;

namespace {

bool oracleFromEnv() {
  const char *E = std::getenv("LAO_COALESCE_ORACLE");
  return E && *E && *E != '0';
}

bool CrossCheckOracle = oracleFromEnv();

/// Packs an unordered RegId pair into one sortable/searchable key.
uint64_t pairKey(RegId A, RegId B) {
  if (A < B)
    std::swap(A, B);
  return (static_cast<uint64_t>(A) << 32) | B;
}

/// Graph-free fixpoint check: would a freshly built exact interference
/// graph let the sweep merge at least one remaining copy?
///
/// Replays the InterferenceGraph constructor's backward scan, but instead
/// of materializing edges it only *marks* the candidate pairs — the
/// (def, use) pairs of the remaining copies (identities and
/// physical/physical pairs excluded) — that would receive an edge. A
/// candidate left unmarked is exactly a copy the sweep would merge on a
/// fresh graph, so "any candidate unmarked" <=> "a rebuild would be
/// productive".
///
/// Both working sets are sorted flat vectors: candidates are collected,
/// sorted and uniqued once, then probed by binary search; marked pairs
/// are appended freely and deduplicated once at the end. No per-element
/// hashing or node allocation.
bool anyCoalescableCopy(const Function &F, const Liveness &LV) {
  ++LAO_STAT(coalesce, confirm_scans);

  // Candidate pairs and, per register, its candidate partners (tiny
  // lists: only registers appearing in copies have any).
  std::vector<uint64_t> Candidates;
  for (const auto &BB : F.blocks()) {
    for (const Instruction &I : BB->instructions()) {
      if (!I.isCopy())
        continue;
      RegId D = I.def(0), S = I.use(0);
      if (D == S)
        continue;
      if (F.isPhysical(D) && F.isPhysical(S))
        continue;
      Candidates.push_back(pairKey(D, S));
    }
  }
  if (Candidates.empty())
    return false;
  std::sort(Candidates.begin(), Candidates.end());
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());

  std::vector<std::vector<RegId>> Partners(F.numValues());
  for (uint64_t Key : Candidates) {
    RegId A = static_cast<RegId>(Key >> 32);
    RegId B = static_cast<RegId>(Key & 0xffffffffu);
    Partners[A].push_back(B);
    Partners[B].push_back(A);
  }

  // Mirror of the graph constructor's edge rules, restricted to a def's
  // candidate partners (everything else cannot affect the answer).
  std::vector<uint64_t> Interfering;
  auto MarkDef = [&](RegId D, const BitVector &Live, RegId ExemptSrc) {
    for (RegId P : Partners[D])
      if (P != D && P != ExemptSrc && Live.test(P))
        Interfering.push_back(pairKey(D, P));
  };
  auto MarkDefPair = [&](RegId A, RegId B) {
    if (A != B && std::binary_search(Candidates.begin(), Candidates.end(),
                                     pairKey(A, B)))
      Interfering.push_back(pairKey(A, B));
  };

  for (const auto &BB : F.blocks()) {
    BitVector Live = LV.liveOut(BB.get());
    auto &Insts = BB->instructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      const Instruction &I = *It;
      assert(!I.isPhi() && "coalescer expects non-SSA code");
      if (I.isCopy()) {
        RegId D = I.def(0), S = I.use(0);
        // The constructor resets S before scanning Live, then resets D
        // and re-adds S; exempting S from the partner test is the same
        // restriction.
        Live.reset(S);
        MarkDef(D, Live, /*ExemptSrc=*/S);
        Live.reset(D);
        Live.set(S);
        continue;
      }
      if (I.isParCopy()) {
        for (unsigned K = 0; K < I.numDefs(); ++K)
          MarkDef(I.def(K), Live, /*ExemptSrc=*/I.use(K));
        for (unsigned A = 0; A < I.numDefs(); ++A)
          for (unsigned B = A + 1; B < I.numDefs(); ++B)
            MarkDefPair(I.def(A), I.def(B));
        for (RegId D : I.defs())
          Live.reset(D);
        for (RegId U : I.uses())
          Live.set(U);
        continue;
      }
      for (RegId D : I.defs())
        MarkDef(D, Live, /*ExemptSrc=*/InvalidReg);
      for (unsigned A = 0; A < I.numDefs(); ++A)
        for (unsigned B = A + 1; B < I.numDefs(); ++B)
          MarkDefPair(I.def(A), I.def(B));
      for (RegId D : I.defs())
        Live.reset(D);
      for (RegId U : I.uses())
        Live.set(U);
    }
  }
  std::sort(Interfering.begin(), Interfering.end());
  Interfering.erase(std::unique(Interfering.begin(), Interfering.end()),
                    Interfering.end());
  return Interfering.size() < Candidates.size();
}

/// The pre-optimization schedule, kept verbatim as the reference for the
/// equivalence tests and the LAO_COALESCE_ORACLE cross-check: every
/// iteration rebuilds CFG + liveness + graph and runs exactly one sweep.
CoalescerStats
coalesceRebuildingEveryRound(Function &F,
                             std::vector<std::pair<RegId, RegId>> *TraceOut) {
  CoalescerStats Stats;
  for (;;) {
    ++Stats.NumRebuilds;
    CFG Cfg(F);
    Liveness LV(Cfg);
    InterferenceGraph IG(F, LV);

    std::vector<RegId> RenameTo(F.numValues(), InvalidReg);
    auto Resolve = [&](RegId V) {
      while (RenameTo[V] != InvalidReg)
        V = RenameTo[V];
      return V;
    };

    bool MergedOnThisGraph = false;
    ++Stats.NumRounds;
    for (const auto &BB : F.blocks()) {
      for (Instruction &I : BB->instructions()) {
        if (!I.isCopy())
          continue;
        RegId D = Resolve(I.def(0));
        RegId S = Resolve(I.use(0));
        if (D == S)
          continue;
        if (F.isPhysical(D) && F.isPhysical(S))
          continue;
        if (IG.interfere(D, S))
          continue;
        RegId Survivor = F.isPhysical(S) ? S : D;
        RegId Victim = Survivor == D ? S : D;
        IG.mergeNodes(Survivor, Victim);
        RenameTo[Victim] = Survivor;
        if (TraceOut)
          TraceOut->emplace_back(Survivor, Victim);
        ++Stats.NumMerges;
        MergedOnThisGraph = true;
      }
    }

    if (!MergedOnThisGraph)
      break;

    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        for (unsigned K = 0; K < It->numDefs(); ++K)
          It->setDef(K, Resolve(It->def(K)));
        for (unsigned K = 0; K < It->numUses(); ++K)
          It->setUse(K, Resolve(It->use(K)));
        if (It->isCopy() && It->def(0) == It->use(0)) {
          It = Insts.erase(It);
          ++Stats.NumMovesRemoved;
        } else {
          ++It;
        }
      }
    }
  }
  return Stats;
}

/// Round-boundary repair: recomputes the rows of the dirty nodes — the
/// survivors (and since-victimized survivors) of this round's merges —
/// exactly, from the already-maintained liveness of the rewritten
/// program. Staleness is confined to those rows (see the header's
/// confinement lemmas), so removing each dirty row's unconfirmed edges
/// restores the whole graph to exactness.
void repairDirtyRows(const Function &F, const Liveness &LV,
                     InterferenceGraph &IG, const BitVector &DirtyMask,
                     const std::vector<RegId> &DirtyList,
                     CoalescerStats &Stats) {
  ++Stats.NumRepairScans;
  size_t NV = F.numValues();
  size_t ND = DirtyList.size();
  std::vector<uint32_t> Slot(NV, UINT32_MAX);
  for (size_t I = 0; I < ND; ++I)
    Slot[DirtyList[I]] = static_cast<uint32_t>(I);
  // Confirmed exact neighbors per dirty node, as bit rows: marking is
  // idempotent, so the multi-def webs of out-of-SSA code (each def site
  // of a neighbor re-confirms the same edge) cost one bit-set each
  // instead of growing a duplicate-heavy list that needs sorting.
  std::vector<BitVector> Exact(ND, BitVector(NV));

  auto MarkPair = [&](RegId A, RegId B) {
    if (Slot[A] != UINT32_MAX)
      Exact[Slot[A]].set(B);
    if (Slot[B] != UINT32_MAX)
      Exact[Slot[B]].set(A);
  };
  // Def site: the constructor's edge rule, restricted to pairs with a
  // dirty endpoint. A dirty def (rare: a def of a merge survivor) scans
  // everything live across it. Clean defs — the overwhelming majority —
  // only need the *dirty* subset of the live set, which the scan below
  // maintains as a DirtyLive vector restricted to |dirty| slots: the
  // per-def cost is one scan of |dirty|/64 words plus the actual hits,
  // independent of the function's total value count.
  BitVector DirtyLive(ND);
  auto MarkDef = [&](RegId D, const BitVector &Live, RegId ExemptSrc) {
    if (Slot[D] != UINT32_MAX) {
      Live.forEach([&](size_t L) {
        RegId R = static_cast<RegId>(L);
        if (R != D && R != ExemptSrc)
          MarkPair(D, R);
      });
    } else {
      DirtyLive.forEach([&](size_t SlotIdx) {
        RegId R = DirtyList[SlotIdx];
        if (R != D && R != ExemptSrc)
          Exact[SlotIdx].set(D);
      });
    }
  };
  auto LiveReset = [&](BitVector &Live, RegId V) {
    Live.reset(V);
    if (Slot[V] != UINT32_MAX)
      DirtyLive.reset(Slot[V]);
  };
  auto LiveSet = [&](BitVector &Live, RegId V) {
    Live.set(V);
    if (Slot[V] != UINT32_MAX)
      DirtyLive.set(Slot[V]);
  };

  for (const auto &BB : F.blocks()) {
    BitVector Live = LV.liveOut(BB.get());
    DirtyLive.clear();
    for (size_t I = 0; I < ND; ++I)
      if (Live.test(DirtyList[I]))
        DirtyLive.set(I);
    auto &Insts = BB->instructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      const Instruction &I = *It;
      if (I.isCopy()) {
        RegId D = I.def(0), S = I.use(0);
        LiveReset(Live, S);
        MarkDef(D, Live, /*ExemptSrc=*/S);
        LiveReset(Live, D);
        LiveSet(Live, S);
        continue;
      }
      if (I.isParCopy()) {
        for (unsigned K = 0; K < I.numDefs(); ++K)
          MarkDef(I.def(K), Live, /*ExemptSrc=*/I.use(K));
        for (unsigned A = 0; A < I.numDefs(); ++A)
          for (unsigned B = A + 1; B < I.numDefs(); ++B)
            if (I.def(A) != I.def(B))
              MarkPair(I.def(A), I.def(B));
        for (RegId D : I.defs())
          LiveReset(Live, D);
        for (RegId U : I.uses())
          LiveSet(Live, U);
        continue;
      }
      for (RegId D : I.defs())
        MarkDef(D, Live, /*ExemptSrc=*/InvalidReg);
      for (unsigned A = 0; A < I.numDefs(); ++A)
        for (unsigned B = A + 1; B < I.numDefs(); ++B)
          if (I.def(A) != I.def(B))
            MarkPair(I.def(A), I.def(B));
      for (RegId D : I.defs())
        LiveReset(Live, D);
      for (RegId U : I.uses())
        LiveSet(Live, U);
    }
  }

  for (size_t I = 0; I < ND; ++I) {
    RegId R = DirtyList[I];
    // The maintained graph is conservative (exact edges are a subset of
    // the unioned ones), so repairing a row only ever *removes* edges.
    // Collect first: removeEdge mutates the row being walked.
    std::vector<RegId> Stale;
    const std::vector<RegId> &Row = IG.neighbors(R);
    for (RegId N : Row)
      if (!Exact[I].test(N))
        Stale.push_back(N);
    assert(Exact[I].count() == Row.size() - Stale.size() &&
           "repair found an exact edge the unioned graph was missing");
    for (RegId N : Stale)
      IG.removeEdge(R, N);
    Stats.NumStaleEdgesRemoved += static_cast<unsigned>(Stale.size());
  }
}

/// The zero-rebuild worklist schedule (see the header for the exactness
/// argument). \p ExpectTrace, when set, is the reference merge trace the
/// oracle compares against, aborting on the first divergence.
void coalesceWithWorklist(Function &F, AnalysisManager &AM,
                          CoalescerStats &Stats,
                          std::vector<std::pair<RegId, RegId>> *TraceOut,
                          const std::vector<std::pair<RegId, RegId>> *ExpectTrace) {
  Liveness &LV = AM.liveness();

  // Graph-free gate first: most calls after the phi-coalescing
  // configurations find nothing to merge and never build a graph.
  ++Stats.NumConfirmScans;
  if (!anyCoalescableCopy(F, LV))
    return;

  bool HadGraph = AM.isCached(AnalysisKind::Interference);
  InterferenceGraph &IG = AM.interference();
  if (!HadGraph)
    ++Stats.NumRebuilds; // The one and only build of this call.

  // The move worklist: every remaining candidate copy, in instruction
  // order (matching the reference sweep order). Entries index Moves so
  // deleted instructions can be retired without dangling pointers.
  struct MoveRec {
    Instruction *I;
    bool Alive = true;
  };
  std::vector<MoveRec> Moves;
  for (const auto &BB : F.blocks()) {
    for (Instruction &I : BB->instructions()) {
      if (!I.isCopy())
        continue;
      RegId D = I.def(0), S = I.use(0);
      if (D == S)
        continue;
      if (F.isPhysical(D) && F.isPhysical(S))
        continue;
      Moves.push_back({&I});
    }
  }

  std::vector<unsigned> Queue; // This round's pops, ascending move index.
  Queue.reserve(Moves.size());
  for (unsigned Idx = 0; Idx < Moves.size(); ++Idx)
    Queue.push_back(Idx);
  Stats.NumWorklistPushes += static_cast<unsigned>(Queue.size());

  std::vector<unsigned> Deferred; // Blocked moves, ascending move index.
  size_t NV = F.numValues();
  std::vector<RegId> RenameTo(NV, InvalidReg);
  auto Resolve = [&](RegId V) {
    while (RenameTo[V] != InvalidReg)
      V = RenameTo[V];
    return V;
  };
  BitVector DirtyMask(NV);
  std::vector<RegId> DirtyList;
  unsigned TraceIdx = 0;

  while (!Queue.empty()) {
    ++Stats.NumRounds;
    Stats.MaxWorklistDepth = std::max(
        Stats.MaxWorklistDepth, static_cast<unsigned>(Queue.size()));
    unsigned MergesThisRound = 0;

    for (unsigned Idx : Queue) {
      ++Stats.NumWorklistPops;
      const MoveRec &M = Moves[Idx];
      assert(M.Alive && "a dead move stayed enqueued");
      RegId D = Resolve(M.I->def(0));
      RegId S = Resolve(M.I->use(0));
      if (D == S)
        continue; // Became an identity; deleted at the boundary.
      if (F.isPhysical(D) && F.isPhysical(S))
        continue; // Cannot merge two machine registers; dropped for good.
      if (IG.interfere(D, S)) {
        Deferred.push_back(Idx);
        continue;
      }
      RegId Survivor = F.isPhysical(S) ? S : D;
      RegId Victim = Survivor == D ? S : D;
      IG.mergeNodes(Survivor, Victim);
      RenameTo[Victim] = Survivor;
      if (!DirtyMask.test(Survivor)) {
        DirtyMask.set(Survivor);
        DirtyList.push_back(Survivor);
      }
      if (TraceOut)
        TraceOut->emplace_back(Survivor, Victim);
      if (ExpectTrace) {
        if (TraceIdx >= ExpectTrace->size() ||
            (*ExpectTrace)[TraceIdx] != std::make_pair(Survivor, Victim)) {
          std::fprintf(
              stderr,
              "LAO_COALESCE_ORACLE: merge %u diverged: worklist merged "
              "(v%u <- v%u), rebuild-every-round merged %s\n",
              TraceIdx, Survivor, Victim,
              TraceIdx < ExpectTrace->size()
                  ? (std::string("(v") +
                     std::to_string((*ExpectTrace)[TraceIdx].first) + " <- v" +
                     std::to_string((*ExpectTrace)[TraceIdx].second) + ")")
                        .c_str()
                  : "nothing (trace exhausted)");
          std::abort();
        }
        ++TraceIdx;
      }
      ++Stats.NumMerges;
      ++MergesThisRound;
    }
    assert(MergesThisRound > 0 &&
           "every scheduled round must merge at least once");
    Stats.RoundMerges.push_back(MergesThisRound);

    // Round boundary: apply the renames, drop identity moves (retiring
    // their worklist entries), and maintain the dense liveness exactly.
    std::vector<RegId> Survivors;
    for (RegId V = 0; V < NV; ++V)
      if (RenameTo[V] != InvalidReg)
        Survivors.push_back(Resolve(V));
    std::sort(Survivors.begin(), Survivors.end());
    Survivors.erase(std::unique(Survivors.begin(), Survivors.end()),
                    Survivors.end());

    // Retire the records whose copies the rewrite below will erase as
    // identities BEFORE touching the instructions: resolving the recorded
    // operands needs no pointer map, and the erase loop then never has to
    // map an instruction back to its record.
    for (MoveRec &M : Moves)
      if (M.Alive && Resolve(M.I->def(0)) == Resolve(M.I->use(0)))
        M.Alive = false;
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        for (unsigned K = 0; K < It->numDefs(); ++K)
          It->setDef(K, Resolve(It->def(K)));
        for (unsigned K = 0; K < It->numUses(); ++K)
          It->setUse(K, Resolve(It->use(K)));
        if (It->isCopy() && It->def(0) == It->use(0)) {
          It = Insts.erase(It);
          ++Stats.NumMovesRemoved;
        } else {
          ++It;
        }
      }
    }

    LV.applyRenames(RenameTo);
    LV.recomputeValues(Survivors);

    // Restore G = exact graph of the rewritten program (dirty rows only).
    repairDirtyRows(F, LV, IG, DirtyMask, DirtyList, Stats);

    // Re-enqueue exactly the deferred moves whose operands alias a node
    // merged this round and whose pair no longer interferes; clean pairs
    // kept their (exact) edge, so they stay parked without a query.
    std::sort(Deferred.begin(), Deferred.end());
    Queue.clear();
    std::vector<unsigned> StillDeferred;
    for (unsigned Idx : Deferred) {
      const MoveRec &M = Moves[Idx];
      if (!M.Alive)
        continue; // Deleted as an identity above.
      RegId D = M.I->def(0), S = M.I->use(0); // Rewritten: already resolved.
      assert(D != S && "identity copies are deleted, not deferred");
      if (F.isPhysical(D) && F.isPhysical(S))
        continue; // Permanently unmergeable.
      if ((DirtyMask.test(D) || DirtyMask.test(S)) && !IG.interfere(D, S)) {
        Queue.push_back(Idx);
        ++Stats.NumRequeues;
        ++Stats.NumWorklistPushes;
      } else {
        StillDeferred.push_back(Idx);
      }
    }
    Deferred.swap(StillDeferred);

    std::fill(RenameTo.begin(), RenameTo.end(), InvalidReg);
    DirtyMask.clear();
    DirtyList.clear();
  }
  // Worklist dry: every surviving copy pair carries an exact interference
  // edge — the rebuild-every-round fixpoint condition.

  if (ExpectTrace && TraceIdx != ExpectTrace->size()) {
    std::fprintf(stderr,
                 "LAO_COALESCE_ORACLE: worklist stopped after %u merges, "
                 "rebuild-every-round performed %zu\n",
                 TraceIdx, ExpectTrace->size());
    std::abort();
  }
}

} // namespace

void lao::setCoalescerCrossCheckOracle(bool On) { CrossCheckOracle = On; }

CoalescerStats lao::coalesceAggressively(Function &F,
                                         const CoalescerOptions &Opts,
                                         AnalysisManager *AM) {
  CoalescerStats Stats;

  if (Opts.RebuildEveryRound) {
    Stats = coalesceRebuildingEveryRound(F, Opts.TraceOut);
  } else {
    std::optional<AnalysisManager> LocalAM;
    if (!AM) {
      LocalAM.emplace(F);
      AM = &*LocalAM;
    }

    std::optional<std::vector<std::pair<RegId, RegId>>> RefTrace;
    std::string RefPrinted;
    unsigned RefMovesRemoved = 0;
    if (CrossCheckOracle) {
      // Run the reference schedule on a clone first; the worklist run
      // below then replays against its trace in lockstep.
      auto Ref = cloneFunction(F);
      RefTrace.emplace();
      CoalescerStats RefStats = coalesceRebuildingEveryRound(*Ref, &*RefTrace);
      RefPrinted = printFunction(*Ref);
      RefMovesRemoved = RefStats.NumMovesRemoved;
    }

    coalesceWithWorklist(F, *AM, Stats, Opts.TraceOut,
                         RefTrace ? &*RefTrace : nullptr);

    if (Stats.NumMerges > 0) {
      // The maintained liveness is exact, and the repaired graph is the
      // exact graph of the final program; only the SSA-position query
      // engine is stale. With verify-on-invalidate enabled both survivors
      // are cross-checked against fresh recomputation here.
      AM->invalidate(PreservedAnalyses::cfgOnly()
                         .preserve(AnalysisKind::Liveness)
                         .preserve(AnalysisKind::Interference));
    }

    if (CrossCheckOracle) {
      if (Stats.NumMovesRemoved != RefMovesRemoved) {
        std::fprintf(stderr,
                     "LAO_COALESCE_ORACLE: moves removed mismatch: "
                     "worklist %u, rebuild-every-round %u\n",
                     Stats.NumMovesRemoved, RefMovesRemoved);
        std::abort();
      }
      if (printFunction(F) != RefPrinted) {
        std::fprintf(stderr,
                     "LAO_COALESCE_ORACLE: final IR mismatch\n"
                     "--- worklist ---\n%s--- rebuild-every-round ---\n%s",
                     printFunction(F).c_str(), RefPrinted.c_str());
        std::abort();
      }
      // A true fixpoint: no copy is mergeable under the exact liveness.
      if (anyCoalescableCopy(F, AM->liveness())) {
        std::fprintf(stderr,
                     "LAO_COALESCE_ORACLE: worklist stopped before the "
                     "fixpoint (a mergeable copy remains)\n");
        std::abort();
      }
    }
  }

  LAO_STAT(coalesce, runs) += 1;
  LAO_STAT(coalesce, rounds) += Stats.NumRounds;
  LAO_STAT(coalesce, rebuilds) += Stats.NumRebuilds;
  LAO_STAT(coalesce, merges) += Stats.NumMerges;
  LAO_STAT(coalesce, moves_removed) += Stats.NumMovesRemoved;
  LAO_STAT(coalesce, repair_scans) += Stats.NumRepairScans;
  LAO_STAT(coalesce, worklist_pushes) += Stats.NumWorklistPushes;
  LAO_STAT(coalesce, worklist_pops) += Stats.NumWorklistPops;
  LAO_STAT(coalesce, worklist_requeues) += Stats.NumRequeues;
  LAO_STAT(coalesce, stale_edges_removed) += Stats.NumStaleEdgesRemoved;
  return Stats;
}
