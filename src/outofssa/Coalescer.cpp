//===- Coalescer.cpp - Aggressive repeated register coalescing ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Coalescer.h"

#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"

#include <cassert>
#include <vector>

using namespace lao;

CoalescerStats lao::coalesceAggressively(Function &F) {
  CoalescerStats Stats;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Stats.NumRounds;

    CFG Cfg(F);
    Liveness LV(Cfg);
    InterferenceGraph IG(F, LV);

    // Lazily-applied rename map (victim -> survivor), chased on lookup.
    std::vector<RegId> RenameTo(F.numValues(), InvalidReg);
    auto Resolve = [&](RegId V) {
      while (RenameTo[V] != InvalidReg)
        V = RenameTo[V];
      return V;
    };

    bool AnyCoalesced = false;
    for (const auto &BB : F.blocks()) {
      for (Instruction &I : BB->instructions()) {
        if (!I.isCopy())
          continue;
        RegId D = Resolve(I.def(0));
        RegId S = Resolve(I.use(0));
        if (D == S)
          continue; // Already an identity; removed below.
        if (F.isPhysical(D) && F.isPhysical(S))
          continue; // Cannot merge two machine registers.
        if (IG.interfere(D, S))
          continue;
        RegId Survivor = F.isPhysical(S) ? S : D;
        RegId Victim = Survivor == D ? S : D;
        IG.mergeInto(Survivor, Victim);
        RenameTo[Victim] = Survivor;
        ++Stats.NumMerges;
        AnyCoalesced = true;
      }
    }

    if (!AnyCoalesced)
      break;

    // Apply the renames and drop the moves that became identities.
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        for (unsigned K = 0; K < It->numDefs(); ++K)
          It->setDef(K, Resolve(It->def(K)));
        for (unsigned K = 0; K < It->numUses(); ++K)
          It->setUse(K, Resolve(It->use(K)));
        if (It->isCopy() && It->def(0) == It->use(0)) {
          It = Insts.erase(It);
          ++Stats.NumMovesRemoved;
          Changed = true;
        } else {
          ++It;
        }
      }
    }
  }
  return Stats;
}
