//===- Coalescer.cpp - Aggressive repeated register coalescing ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Coalescer.h"

#include "analysis/AnalysisManager.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_set>
#include <vector>

using namespace lao;

namespace {

/// Packs an unordered RegId pair into one hash/set key.
uint64_t pairKey(RegId A, RegId B) {
  if (A < B)
    std::swap(A, B);
  return (static_cast<uint64_t>(A) << 32) | B;
}

/// Graph-free fixpoint check: would a freshly built exact interference
/// graph let the sweep merge at least one remaining copy?
///
/// Replays the InterferenceGraph constructor's backward scan, but instead
/// of materializing edges it only *marks* the candidate pairs — the
/// (def, use) pairs of the remaining copies (identities and
/// physical/physical pairs excluded) — that would receive an edge. A
/// candidate left unmarked is exactly a copy the sweep would merge on a
/// fresh graph, so "any candidate unmarked" <=> "a rebuild would be
/// productive".
bool anyCoalescableCopy(const Function &F, const Liveness &LV) {
  ++LAO_STAT(coalesce, confirm_scans);

  // Candidate pairs and, per register, its candidate partners (tiny
  // lists: only registers appearing in copies have any).
  std::unordered_set<uint64_t> Candidates;
  std::vector<std::vector<RegId>> Partners(F.numValues());
  for (const auto &BB : F.blocks()) {
    for (const Instruction &I : BB->instructions()) {
      if (!I.isCopy())
        continue;
      RegId D = I.def(0), S = I.use(0);
      if (D == S)
        continue;
      if (F.isPhysical(D) && F.isPhysical(S))
        continue;
      if (Candidates.insert(pairKey(D, S)).second) {
        Partners[D].push_back(S);
        Partners[S].push_back(D);
      }
    }
  }
  if (Candidates.empty())
    return false;

  // Mirror of the graph constructor's edge rules, restricted to a def's
  // candidate partners (everything else cannot affect the answer).
  std::unordered_set<uint64_t> Interfering;
  auto MarkDef = [&](RegId D, const BitVector &Live, RegId ExemptSrc) {
    for (RegId P : Partners[D])
      if (P != D && P != ExemptSrc && Live.test(P))
        Interfering.insert(pairKey(D, P));
  };
  auto MarkDefPair = [&](RegId A, RegId B) {
    if (A != B && Candidates.count(pairKey(A, B)))
      Interfering.insert(pairKey(A, B));
  };

  for (const auto &BB : F.blocks()) {
    BitVector Live = LV.liveOut(BB.get());
    auto &Insts = BB->instructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      const Instruction &I = *It;
      assert(!I.isPhi() && "coalescer expects non-SSA code");
      if (I.isCopy()) {
        RegId D = I.def(0), S = I.use(0);
        // The constructor resets S before scanning Live, then resets D
        // and re-adds S; exempting S from the partner test is the same
        // restriction.
        Live.reset(S);
        MarkDef(D, Live, /*ExemptSrc=*/S);
        Live.reset(D);
        Live.set(S);
        continue;
      }
      if (I.isParCopy()) {
        for (unsigned K = 0; K < I.numDefs(); ++K)
          MarkDef(I.def(K), Live, /*ExemptSrc=*/I.use(K));
        for (unsigned A = 0; A < I.numDefs(); ++A)
          for (unsigned B = A + 1; B < I.numDefs(); ++B)
            MarkDefPair(I.def(A), I.def(B));
        for (RegId D : I.defs())
          Live.reset(D);
        for (RegId U : I.uses())
          Live.set(U);
        continue;
      }
      for (RegId D : I.defs())
        MarkDef(D, Live, /*ExemptSrc=*/InvalidReg);
      for (unsigned A = 0; A < I.numDefs(); ++A)
        for (unsigned B = A + 1; B < I.numDefs(); ++B)
          MarkDefPair(I.def(A), I.def(B));
      for (RegId D : I.defs())
        Live.reset(D);
      for (RegId U : I.uses())
        Live.set(U);
    }
  }
  return Interfering.size() < Candidates.size();
}

/// The pre-optimization schedule, kept verbatim as the reference for the
/// equivalence tests: every iteration rebuilds CFG + liveness + graph and
/// runs exactly one sweep.
CoalescerStats coalesceRebuildingEveryRound(Function &F) {
  CoalescerStats Stats;
  for (;;) {
    ++Stats.NumRebuilds;
    CFG Cfg(F);
    Liveness LV(Cfg);
    InterferenceGraph IG(F, LV);

    std::vector<RegId> RenameTo(F.numValues(), InvalidReg);
    auto Resolve = [&](RegId V) {
      while (RenameTo[V] != InvalidReg)
        V = RenameTo[V];
      return V;
    };

    bool MergedOnThisGraph = false;
    ++Stats.NumRounds;
    for (const auto &BB : F.blocks()) {
      for (Instruction &I : BB->instructions()) {
        if (!I.isCopy())
          continue;
        RegId D = Resolve(I.def(0));
        RegId S = Resolve(I.use(0));
        if (D == S)
          continue;
        if (F.isPhysical(D) && F.isPhysical(S))
          continue;
        if (IG.interfere(D, S))
          continue;
        RegId Survivor = F.isPhysical(S) ? S : D;
        RegId Victim = Survivor == D ? S : D;
        IG.mergeInto(Survivor, Victim);
        RenameTo[Victim] = Survivor;
        ++Stats.NumMerges;
        MergedOnThisGraph = true;
      }
    }

    if (!MergedOnThisGraph)
      break;

    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        for (unsigned K = 0; K < It->numDefs(); ++K)
          It->setDef(K, Resolve(It->def(K)));
        for (unsigned K = 0; K < It->numUses(); ++K)
          It->setUse(K, Resolve(It->use(K)));
        if (It->isCopy() && It->def(0) == It->use(0)) {
          It = Insts.erase(It);
          ++Stats.NumMovesRemoved;
        } else {
          ++It;
        }
      }
    }
  }
  return Stats;
}

} // namespace

CoalescerStats lao::coalesceAggressively(Function &F,
                                         const CoalescerOptions &Opts,
                                         AnalysisManager *AM) {
  CoalescerStats Stats;

  if (Opts.RebuildEveryRound) {
    Stats = coalesceRebuildingEveryRound(F);
  } else {
    std::optional<AnalysisManager> LocalAM;
    if (!AM) {
      LocalAM.emplace(F);
      AM = &*LocalAM;
    }
    Liveness &LV = AM->liveness();

    // Graph-free check first: most calls after the phi-coalescing
    // configurations find nothing to merge and never build a graph.
    while (anyCoalescableCopy(F, LV)) {
      ++Stats.NumRebuilds;
      [[maybe_unused]] unsigned MergesBefore = Stats.NumMerges;
      InterferenceGraph &IG = AM->interference();

      // Lazily-applied rename map (victim -> survivor), chased on lookup.
      std::vector<RegId> RenameTo(F.numValues(), InvalidReg);
      auto Resolve = [&](RegId V) {
        while (RenameTo[V] != InvalidReg)
          V = RenameTo[V];
        return V;
      };

      // Sweep the copy list to a fixpoint on this graph. After a merge
      // the incrementally-maintained graph is conservative (neighborhoods
      // are unioned), so every merge it allows is safe; copies it
      // pessimistically blocks are retried after the next exact rebuild.
      bool SweepMerged = true;
      while (SweepMerged) {
        SweepMerged = false;
        ++Stats.NumRounds;
        for (const auto &BB : F.blocks()) {
          for (Instruction &I : BB->instructions()) {
            if (!I.isCopy())
              continue;
            RegId D = Resolve(I.def(0));
            RegId S = Resolve(I.use(0));
            if (D == S)
              continue; // Already an identity; removed below.
            if (F.isPhysical(D) && F.isPhysical(S))
              continue; // Cannot merge two machine registers.
            if (IG.interfere(D, S))
              continue;
            RegId Survivor = F.isPhysical(S) ? S : D;
            RegId Victim = Survivor == D ? S : D;
            IG.mergeInto(Survivor, Victim);
            RenameTo[Victim] = Survivor;
            ++Stats.NumMerges;
            SweepMerged = true;
          }
        }
      }
      assert(Stats.NumMerges > MergesBefore &&
             "confirm scan promised a mergeable copy");

      // Apply the renames and drop the moves that became identities.
      std::vector<RegId> Survivors;
      for (RegId V = 0; V < F.numValues(); ++V)
        if (RenameTo[V] != InvalidReg)
          Survivors.push_back(Resolve(V));
      std::sort(Survivors.begin(), Survivors.end());
      Survivors.erase(std::unique(Survivors.begin(), Survivors.end()),
                      Survivors.end());

      for (const auto &BB : F.blocks()) {
        auto &Insts = BB->instructions();
        for (auto It = Insts.begin(); It != Insts.end();) {
          for (unsigned K = 0; K < It->numDefs(); ++K)
            It->setDef(K, Resolve(It->def(K)));
          for (unsigned K = 0; K < It->numUses(); ++K)
            It->setUse(K, Resolve(It->use(K)));
          if (It->isCopy() && It->def(0) == It->use(0)) {
            It = Insts.erase(It);
            ++Stats.NumMovesRemoved;
          } else {
            ++It;
          }
        }
      }

      // Maintain the dense liveness exactly: project the renames onto the
      // sets, then recompute the survivors (the only variables whose
      // occurrences changed — victims now have none, and deleted
      // identity moves mentioned only their survivor).
      LV.applyRenames(RenameTo);
      LV.recomputeValues(Survivors);

      // The merged graph is both conservative and now stale; drop it (and
      // the SSA query engine) but keep the maintained liveness — with
      // verify-on-invalidate enabled this is cross-checked against a
      // fresh dense analysis.
      AM->invalidate(
          PreservedAnalyses::cfgOnly().preserve(AnalysisKind::Liveness));
    }
  }

  LAO_STAT(coalesce, runs) += 1;
  LAO_STAT(coalesce, rounds) += Stats.NumRounds;
  LAO_STAT(coalesce, rebuilds) += Stats.NumRebuilds;
  LAO_STAT(coalesce, merges) += Stats.NumMerges;
  LAO_STAT(coalesce, moves_removed) += Stats.NumMovesRemoved;
  return Stats;
}
