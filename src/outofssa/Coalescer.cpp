//===- Coalescer.cpp - Aggressive repeated register coalescing ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Coalescer.h"

#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "support/Stats.h"

#include <cassert>
#include <vector>

using namespace lao;

CoalescerStats lao::coalesceAggressively(Function &F,
                                         const CoalescerOptions &Opts) {
  CoalescerStats Stats;

  for (;;) {
    ++Stats.NumRebuilds;
    CFG Cfg(F);
    Liveness LV(Cfg);
    InterferenceGraph IG(F, LV);

    // Lazily-applied rename map (victim -> survivor), chased on lookup.
    std::vector<RegId> RenameTo(F.numValues(), InvalidReg);
    auto Resolve = [&](RegId V) {
      while (RenameTo[V] != InvalidReg)
        V = RenameTo[V];
      return V;
    };

    // Sweep the copy list to a fixpoint on this graph. After a merge the
    // incrementally-maintained graph is conservative (neighborhoods are
    // unioned), so every merge it allows is safe; copies it pessimistically
    // blocks are retried after the next exact rebuild.
    bool MergedOnThisGraph = false;
    bool SweepMerged = true;
    while (SweepMerged) {
      SweepMerged = false;
      ++Stats.NumRounds;
      for (const auto &BB : F.blocks()) {
        for (Instruction &I : BB->instructions()) {
          if (!I.isCopy())
            continue;
          RegId D = Resolve(I.def(0));
          RegId S = Resolve(I.use(0));
          if (D == S)
            continue; // Already an identity; removed below.
          if (F.isPhysical(D) && F.isPhysical(S))
            continue; // Cannot merge two machine registers.
          if (IG.interfere(D, S))
            continue;
          RegId Survivor = F.isPhysical(S) ? S : D;
          RegId Victim = Survivor == D ? S : D;
          IG.mergeInto(Survivor, Victim);
          RenameTo[Victim] = Survivor;
          ++Stats.NumMerges;
          SweepMerged = true;
        }
      }
      MergedOnThisGraph |= SweepMerged;
      if (Opts.RebuildEveryRound)
        break;
    }

    if (!MergedOnThisGraph)
      break; // Exact graph, nothing mergeable: global fixpoint.

    // Apply the renames and drop the moves that became identities.
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (auto It = Insts.begin(); It != Insts.end();) {
        for (unsigned K = 0; K < It->numDefs(); ++K)
          It->setDef(K, Resolve(It->def(K)));
        for (unsigned K = 0; K < It->numUses(); ++K)
          It->setUse(K, Resolve(It->use(K)));
        if (It->isCopy() && It->def(0) == It->use(0)) {
          It = Insts.erase(It);
          ++Stats.NumMovesRemoved;
        } else {
          ++It;
        }
      }
    }
    // Deleted moves shrink liveness, so an exact rebuild may expose more
    // merges; loop until a fresh graph yields none.
  }

  LAO_STAT(coalesce, runs) += 1;
  LAO_STAT(coalesce, rounds) += Stats.NumRounds;
  LAO_STAT(coalesce, rebuilds) += Stats.NumRebuilds;
  LAO_STAT(coalesce, merges) += Stats.NumMerges;
  LAO_STAT(coalesce, moves_removed) += Stats.NumMovesRemoved;
  return Stats;
}
