//===- OptimalCoalescing.h - Exact reference for the phi problem -*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper proves the phi coalescing problem NP-complete ([LIM3], with
/// the proof in the companion report) and therefore uses the greedy
/// weighted pruning of Algorithm 2. This module provides the exact
/// reference: per confluence block, an exponential search over edge
/// subsets finds the maximum total multiplicity of affinity edges that
/// can be kept such that no two resources in a connected component
/// interfere (the paper's Conditions 1 and 2).
///
/// It is usable only on small affinity graphs (the search is capped), but
/// the paper's own conclusion — "affinity and interference graphs are
/// usually quite simple" — means real blocks are almost always within
/// reach, so the heuristic's optimality gap can be measured directly
/// (see OptimalCoalescingTests and bench_ablation).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_OPTIMALCOALESCING_H
#define LAO_OUTOFSSA_OPTIMALCOALESCING_H

#include "analysis/LoopInfo.h"
#include "outofssa/PinningContext.h"

namespace lao {

struct OptimalGainResult {
  bool Exact = true;      ///< False if some block exceeded the search cap
                          ///< and fell back to the greedy bound.
  unsigned TotalGain = 0; ///< Sum over blocks of kept edge multiplicity.
  unsigned NumBlocks = 0; ///< Confluence blocks evaluated.
};

/// Computes the per-block optimal phi-coalescing gain for \p F under the
/// interference relation of \p Ctx, *without* mutating any pinning.
/// Blocks are evaluated against the initial classes, i.e. this bounds
/// what a single block-local decision could achieve — the quantity the
/// paper's heuristic approximates per block. \p MaxEdges caps the
/// exhaustive search per block.
OptimalGainResult optimalPhiGain(Function &F, PinningContext &Ctx,
                                 const CFG &Cfg, unsigned MaxEdges = 18);

} // namespace lao

#endif // LAO_OUTOFSSA_OPTIMALCOALESCING_H
