//===- MoveStats.h - Move instruction counting ------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counting of residual move instructions, plain (Tables 2-4) and
/// weighted by 5^depth (Table 5: "move instructions are given a weight
/// equal to 5^d, d being the nesting level of the loop the move belongs
/// to — a static approximation where each loop would contain 5
/// iterations").
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_MOVESTATS_H
#define LAO_OUTOFSSA_MOVESTATS_H

#include "ir/Function.h"

#include <cstdint>

namespace lao {

class AnalysisManager;

/// Number of Mov instructions plus ParCopy entries in \p F.
unsigned countMoves(const Function &F);

/// Sum over moves of 5^depth(block) (Table 5's weighting).
uint64_t weightedMoveCount(const Function &F);

/// Same, reusing \p AM's cached CFG / dominator tree / loop info instead
/// of rebuilding them.
uint64_t weightedMoveCount(const Function &F, AnalysisManager &AM);

} // namespace lao

#endif // LAO_OUTOFSSA_MOVESTATS_H
