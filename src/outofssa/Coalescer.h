//===- Coalescer.h - Aggressive repeated register coalescing ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's [Coalescing] baseline: a Chaitin-style aggressive
/// "repeated" register coalescer run on non-SSA code, outside any
/// register-allocation context (so it ignores colorability). It removes
/// every move whose operands do not interfere by merging them, and stops
/// at a fixpoint: no copy is mergeable under an exact interference graph.
///
/// The schedule avoids paying for a dense liveness + full interference
/// graph more than once per call:
///
///  1. a cheap *confirm scan* tests just the remaining copy pairs against
///     the current (exact) liveness, reproducing the graph constructor's
///     edge rules — no graph is materialized;
///  2. only when the scan proves a merge exists is a full graph built;
///     the sweep then merges to a local fixpoint on that graph
///     (mergeInto unions neighborhoods — conservative but safe);
///  3. after renames are applied and identity moves deleted, the dense
///     liveness is maintained *exactly* in place (Liveness::applyRenames
///     + recomputeValues on the survivors) instead of being recomputed,
///     and the loop returns to step 1.
///
/// The pre-optimization behavior — full rebuild after every sweep —
/// survives as CoalescerOptions::RebuildEveryRound; the equivalence tests
/// pin the optimized schedule to identical results.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_COALESCER_H
#define LAO_OUTOFSSA_COALESCER_H

#include "ir/Function.h"

namespace lao {

class AnalysisManager;

struct CoalescerOptions {
  /// Reference mode: rebuild the analyses after every merge sweep (the
  /// original, quadratic-ish schedule). Kept for the equivalence tests
  /// that pin the optimized schedule to identical results.
  bool RebuildEveryRound = false;
};

struct CoalescerStats {
  unsigned NumMovesRemoved = 0;
  /// Merge sweeps over the function's copy list.
  unsigned NumRounds = 0;
  /// Total interference-graph node merges (proportional to the cost the
  /// paper's compile-time discussion attributes to this phase).
  unsigned NumMerges = 0;
  /// Full interference-graph constructions — the expensive part the
  /// optimized schedule amortizes (and, when the confirm scan proves the
  /// fixpoint, skips entirely).
  unsigned NumRebuilds = 0;
  /// Graph-free fixpoint checks over the remaining copy pairs.
  unsigned NumConfirmScans = 0;
};

/// Runs aggressive repeated coalescing on non-SSA \p F (no phis; parallel
/// copies must have been sequentialized).
///
/// When \p AM is provided it supplies the CFG and dense liveness, and on
/// return its Liveness is still cached and *valid* (the coalescer
/// maintains it exactly through every rename/deletion); the interference
/// graph and liveness-query entries are invalidated. Passing nullptr uses
/// a private manager.
CoalescerStats coalesceAggressively(Function &F,
                                    const CoalescerOptions &Opts = {},
                                    AnalysisManager *AM = nullptr);

} // namespace lao

#endif // LAO_OUTOFSSA_COALESCER_H
