//===- Coalescer.h - Aggressive repeated register coalescing ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's [Coalescing] baseline: a Chaitin-style aggressive
/// "repeated" register coalescer run on non-SSA code, outside any
/// register-allocation context (so it ignores colorability). It removes
/// every move whose operands do not interfere by merging them, and stops
/// at a fixpoint: no copy is mergeable under an exact interference graph.
///
/// Zero-rebuild schedule
/// ---------------------
/// The interference graph is built exactly once per call. A graph-free
/// *confirm scan* first proves a merge exists (most post-phi-coalescing
/// calls find nothing and never build a graph); then a FIFO worklist of
/// the remaining copies drives merge *rounds*:
///
///  1. pop each copy, resolve its operands through this round's rename
///     map, and either merge it (InterferenceGraph::mergeNodes unions the
///     two neighborhoods in place, in O(degree)) or defer it when the
///     current graph carries an edge between the operands;
///  2. at the round boundary, apply the renames to the instructions,
///     delete the moves that became identities, maintain the dense
///     liveness exactly (Liveness::applyRenames + recomputeValues), and
///     run one *repair scan* that restores the graph to exactness (see
///     below); then re-enqueue exactly the deferred copies whose operands
///     alias a node merged this round and whose repaired pair no longer
///     interferes.
///
/// The sweep stops when nothing is re-enqueued: every surviving copy then
/// carries an exact interference edge, which is the fixpoint condition.
///
/// Exactness argument (why the merge trace equals rebuild-every-round)
/// -------------------------------------------------------------------
/// Let E(P) be the exact graph of program P and G the maintained graph.
/// Unioning neighborhoods on a merge is conservative: every exact edge of
/// the renamed program maps to some unioned edge, so E(P') is a subgraph
/// of G throughout a round — G never lets through a merge that an exact
/// graph would block. G can, however, hold *stale* edges (e.g. the copy
/// `x = s` contributes no (x, s) edge by Chaitin's source exemption, but
/// after s merges into d the same instruction reads `x = d` and a unioned
/// (x, d) edge may survive that the exemption would now suppress). Two
/// confinement lemmas bound the damage: (a) a merge changes the liveness
/// only of its own constituents (a merged range is contained in the union
/// of the old ranges), and (b) re-running the graph construction on the
/// rewritten program changes only edges incident to nodes touched by a
/// merge. Hence every stale edge lies on a row of a *dirty* node — a
/// merge survivor — and the round-boundary repair scan, which recomputes
/// exactly those rows from the maintained (exact) liveness, restores
/// G = E(P') at every round boundary. By induction each round therefore
/// starts from the same exact graph a full rebuild would produce, pops in
/// the same instruction order the rebuild path sweeps in, and mid-round
/// queries agree as well (unions only add edges, and rebuild-every-round
/// blocks on its own unions identically), so the (survivor, victim) merge
/// sequence is identical to the rebuild-every-round reference.
///
/// `LAO_COALESCE_ORACLE=1` (or setCoalescerCrossCheckOracle) checks that
/// claim at runtime: every production run first executes the reference
/// rebuild path on a clone, then replays the worklist schedule in
/// lockstep against the recorded trace and aborts on the first divergent
/// merge, on a final-IR mismatch, or on a residual mergeable copy.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_COALESCER_H
#define LAO_OUTOFSSA_COALESCER_H

#include "ir/Function.h"

#include <utility>
#include <vector>

namespace lao {

class AnalysisManager;

struct CoalescerOptions {
  /// Reference mode: rebuild the analyses after every merge sweep (the
  /// original, quadratic-ish schedule). Kept as the oracle for the
  /// equivalence tests and LAO_COALESCE_ORACLE, which pin the worklist
  /// schedule to an identical merge trace.
  bool RebuildEveryRound = false;
  /// When set, every merge appends its resolved (survivor, victim) pair —
  /// the exact trace the oracle compares across schedules.
  std::vector<std::pair<RegId, RegId>> *TraceOut = nullptr;
};

struct CoalescerStats {
  unsigned NumMovesRemoved = 0;
  /// Merge rounds (worklist passes, or sweeps in the reference mode).
  unsigned NumRounds = 0;
  /// Total interference-graph node merges (proportional to the cost the
  /// paper's compile-time discussion attributes to this phase).
  unsigned NumMerges = 0;
  /// Full interference-graph constructions. The zero-rebuild schedule
  /// performs at most one (the initial exact build; zero when the confirm
  /// scan proves there is nothing to merge).
  unsigned NumRebuilds = 0;
  /// Graph-free fixpoint checks over the remaining copy pairs. The
  /// worklist schedule runs exactly one, as the initial gate.
  unsigned NumConfirmScans = 0;
  /// Round-boundary dirty-row repair scans (one per productive round).
  unsigned NumRepairScans = 0;
  /// Worklist traffic: every enqueue (initial population + re-enqueues),
  /// every pop, and the re-enqueues alone — a measure of how much work
  /// cascading merges actually wake up.
  unsigned NumWorklistPushes = 0;
  unsigned NumWorklistPops = 0;
  unsigned NumRequeues = 0;
  /// Stale unioned edges the repair scans removed.
  unsigned NumStaleEdgesRemoved = 0;
  /// High-water mark of pending worklist entries.
  unsigned MaxWorklistDepth = 0;
  /// Merges performed in each round, in round order (lao-opt
  /// --coalesce-stats prints these).
  std::vector<unsigned> RoundMerges;
};

/// Runs aggressive repeated coalescing on non-SSA \p F (no phis; parallel
/// copies must have been sequentialized).
///
/// When \p AM is provided it supplies the CFG and dense liveness, and on
/// return its Liveness is still cached and *valid* (the coalescer
/// maintains it exactly through every rename/deletion). When merges
/// happened, the repaired interference graph — exact for the final
/// program — stays cached too; only the liveness-query engine is
/// invalidated. Passing nullptr uses a private manager.
CoalescerStats coalesceAggressively(Function &F,
                                    const CoalescerOptions &Opts = {},
                                    AnalysisManager *AM = nullptr);

/// Cross-check mode (also enabled by the LAO_COALESCE_ORACLE environment
/// variable): every worklist-scheduled call first runs the
/// rebuild-every-round reference on a clone, then compares merge-by-merge
/// and aborts on the first divergence, a final-IR mismatch, or a missed
/// fixpoint. Global because it is a process-level debugging mode.
void setCoalescerCrossCheckOracle(bool On);

} // namespace lao

#endif // LAO_OUTOFSSA_COALESCER_H
