//===- Coalescer.h - Aggressive repeated register coalescing ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's [Coalescing] baseline: a Chaitin-style aggressive
/// "repeated" register coalescer run on non-SSA code, outside any
/// register-allocation context (so it ignores colorability). It removes
/// every move whose operands do not interfere by merging them, and stops
/// at a fixpoint: no copy is mergeable under an exactly rebuilt
/// interference graph.
///
/// mergeInto maintains the interference graph incrementally (a vertex
/// merge unions the neighborhoods — conservative but safe), so the
/// coalescer sweeps the copy list to a local fixpoint on one graph and
/// only then pays for a CFG + liveness + interference rebuild, which is
/// needed for exactness once moves have been deleted (liveness shrinks).
/// The pre-optimization behavior — one sweep per rebuild — survives as
/// CoalescerOptions::RebuildEveryRound for A/B testing; both reach the
/// same fixpoint condition.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_COALESCER_H
#define LAO_OUTOFSSA_COALESCER_H

#include "ir/Function.h"

namespace lao {

struct CoalescerOptions {
  /// Reference mode: rebuild the analyses after every merge sweep (the
  /// original, quadratic-ish schedule). Kept for the equivalence tests
  /// that pin the optimized schedule to identical results.
  bool RebuildEveryRound = false;
};

struct CoalescerStats {
  unsigned NumMovesRemoved = 0;
  /// Merge sweeps over the function's copy list.
  unsigned NumRounds = 0;
  /// Total interference-graph node merges (proportional to the cost the
  /// paper's compile-time discussion attributes to this phase).
  unsigned NumMerges = 0;
  /// Full CFG/liveness/interference reconstructions — the expensive part
  /// the optimized schedule amortizes over many sweeps.
  unsigned NumRebuilds = 0;
};

/// Runs aggressive repeated coalescing on non-SSA \p F (no phis; parallel
/// copies must have been sequentialized).
CoalescerStats coalesceAggressively(Function &F,
                                    const CoalescerOptions &Opts = {});

} // namespace lao

#endif // LAO_OUTOFSSA_COALESCER_H
