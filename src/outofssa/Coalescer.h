//===- Coalescer.h - Aggressive repeated register coalescing ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's [Coalescing] baseline: a Chaitin-style aggressive
/// "repeated" register coalescer run on non-SSA code, outside any
/// register-allocation context (so it ignores colorability). It
/// repeatedly builds liveness and the interference graph, removes every
/// move whose operands do not interfere by merging them (the interference
/// graph is updated incrementally within a round, rebuilt between
/// rounds), and stops at a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_COALESCER_H
#define LAO_OUTOFSSA_COALESCER_H

#include "ir/Function.h"

namespace lao {

struct CoalescerStats {
  unsigned NumMovesRemoved = 0;
  unsigned NumRounds = 0;
  /// Total interference-graph node merges (proportional to the cost the
  /// paper's compile-time discussion attributes to this phase).
  unsigned NumMerges = 0;
};

/// Runs aggressive repeated coalescing on non-SSA \p F (no phis; parallel
/// copies must have been sequentialized).
CoalescerStats coalesceAggressively(Function &F);

} // namespace lao

#endif // LAO_OUTOFSSA_COALESCER_H
