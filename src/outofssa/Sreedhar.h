//===- Sreedhar.h - CSSA conversion (Sreedhar et al. method III) -*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The [Sreedhar] baseline (SAS 1999, method III): converts SSA to
/// Conventional SSA by inserting copies so that, for every phi, the
/// congruence classes of its result and arguments can be merged without
/// interference. Each phi is processed independently (the paper's point
/// [CS1]); interfering class pairs choose which side to copy using
/// liveness of the classes at the relevant copy points, deferring the
/// symmetric "neither is live across" case and resolving those greedily
/// ("process the unresolved resources").
///
/// pinCSSAWebs then expresses the resulting phi webs as variable pinning
/// so that the Leung & George translation acts as the out-of-CSSA phase
/// (the paper's pinningCSSA pass).
///
/// Caveat reproduced from the paper: combining this conversion with
/// dedicated-register (SP) constraints can split SP webs illegally; the
/// paper reports its Sreedhar+SP numbers as an "optimistic approximation"
/// and so do we (our reconstruction repairs what it can, and the
/// benches label the configuration accordingly).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_SREEDHAR_H
#define LAO_OUTOFSSA_SREEDHAR_H

#include "ir/Function.h"

#include <utility>
#include <vector>

namespace lao {

struct SreedharStats {
  unsigned NumCopiesInserted = 0;
  unsigned NumPhisProcessed = 0;
  unsigned NumUnresolvedPairs = 0;
};

/// Converts \p F (SSA, critical edges split) to CSSA by copy insertion.
SreedharStats convertToCSSA(Function &F);

/// Pins every phi web (result and arguments, transitively) to a common
/// resource via def pins, preferring a member already pinned to a
/// physical register. Returns the number of defs pinned.
unsigned pinCSSAWebs(Function &F);

/// Checks the defining property of Conventional SSA: within every phi
/// web (result and arguments, transitively across phis), no two members
/// interfere. Returns the interfering pairs found (empty = CSSA).
std::vector<std::pair<RegId, RegId>> findCSSAViolations(Function &F);

} // namespace lao

#endif // LAO_OUTOFSSA_SREEDHAR_H
