//===- NaiveABI.h - Post-translation ABI move insertion ---------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's [NaiveABI] baseline: when renaming constraints were NOT
/// handled during the out-of-SSA translation (pinningABI off), this pass
/// makes the non-SSA code ABI-correct by inserting move instructions
/// locally around every constrained instruction — parameters copied out
/// of R0..R3 after `input`, arguments copied into R0..R3 before `call`
/// (and the result out of R0 after it), the return value copied into R0,
/// and a destination-tying copy before each 2-operand instruction. A
/// subsequent aggressive coalescing pass is then expected to clean most
/// of these up (Tables 3 and 4).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_NAIVEABI_H
#define LAO_OUTOFSSA_NAIVEABI_H

#include "ir/Function.h"

namespace lao {

/// Inserts ABI moves on non-SSA code. Returns the number of moves
/// (parallel-copy entries count individually) inserted.
unsigned lowerABINaively(Function &F);

} // namespace lao

#endif // LAO_OUTOFSSA_NAIVEABI_H
