//===- Sreedhar.cpp - CSSA conversion (Sreedhar et al. method III) -------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Sreedhar.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "support/Stats.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>

using namespace lao;

namespace {

/// Congruence classes plus the analyses they are checked against.
/// Analyses are rebuilt lazily after copy insertion invalidates them.
class CSSAState {
public:
  explicit CSSAState(Function &F) : F(F) { Classes.grow(F.numValues()); }

  void invalidate() { Built = false; }

  void ensureBuilt() {
    if (Built)
      return;
    Cfg = std::make_unique<CFG>(F);
    DT = std::make_unique<DominatorTree>(*Cfg);
    LV = std::make_unique<Liveness>(*Cfg);
    rebuildDefSites();
    Built = true;
  }

  UnionFind &classes() { return Classes; }

  /// Precise SSA interference between two values.
  bool valuesInterfere(RegId A, RegId B) {
    ensureBuilt();
    if (A == B)
      return false;
    const Site &SA = Sites[A], &SB = Sites[B];
    if (!SA.Valid || !SB.Valid)
      return false;
    // Same-block phis coexist at block entry.
    if (SA.I->isPhi() && SB.I->isPhi() && SA.BB == SB.BB)
      return true;
    if (defDominates(SB, SA))
      return liveAtDef(B, SA);
    if (defDominates(SA, SB))
      return liveAtDef(A, SB);
    return false;
  }

  /// True if the classes of \p A and \p B interfere (some member pair
  /// does).
  bool classesInterfere(RegId A, RegId B) {
    RegId RA = Classes.find(A), RB = Classes.find(B);
    if (RA == RB)
      return false;
    for (RegId X : membersOf(RA))
      for (RegId Y : membersOf(RB))
        if (valuesInterfere(X, Y))
          return true;
    return false;
  }

  /// True if any member of \p A's class is live out of \p BB.
  bool classLiveOut(RegId A, const BasicBlock *BB) {
    ensureBuilt();
    for (RegId X : membersOf(Classes.find(A)))
      if (LV->isLiveOut(X, BB))
        return true;
    return false;
  }

  /// True if any member of \p A's class is live into \p BB.
  bool classLiveIn(RegId A, const BasicBlock *BB) {
    ensureBuilt();
    for (RegId X : membersOf(Classes.find(A)))
      if (LV->isLiveIn(X, BB))
        return true;
    return false;
  }

  void merge(RegId A, RegId B) {
    RegId RA = Classes.find(A), RB = Classes.find(B);
    if (RA == RB)
      return;
    RegId Rep = Classes.merge(RA, RB);
    RegId Other = Rep == RA ? RB : RA;
    auto &Dst = MembersMap[Rep];
    if (Dst.empty())
      Dst.push_back(Rep);
    auto &Src = MembersMap[Other];
    if (Src.empty())
      Dst.push_back(Other);
    else {
      Dst.insert(Dst.end(), Src.begin(), Src.end());
      Src.clear();
    }
  }

  /// Registers a freshly created value (after F.makeVirtual).
  void grow() { Classes.grow(F.numValues()); }

private:
  struct Site {
    const BasicBlock *BB = nullptr;
    const Instruction *I = nullptr;
    BasicBlock::InstList::const_iterator Pos;
    unsigned Order = 0;
    bool Valid = false;
  };

  Function &F;
  UnionFind Classes;
  std::map<RegId, std::vector<RegId>> MembersMap;
  std::unique_ptr<CFG> Cfg;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<Liveness> LV;
  std::vector<Site> Sites;
  bool Built = false;

  const std::vector<RegId> &membersOf(RegId Rep) {
    auto &V = MembersMap[Rep];
    if (V.empty())
      V.push_back(Rep);
    return V;
  }

  void rebuildDefSites() {
    Sites.assign(F.numValues(), Site());
    for (const auto &BB : F.blocks()) {
      unsigned Order = 0;
      for (auto It = BB->instructions().begin(),
                End = BB->instructions().end();
           It != End; ++It, ++Order)
        for (RegId D : It->defs())
          if (!F.isPhysical(D))
            Sites[D] = Site{BB.get(), &*It, It, Order, true};
    }
  }

  bool defDominates(const Site &A, const Site &B) const {
    if (A.I == B.I)
      return false;
    if (A.BB != B.BB)
      return DT->strictlyDominates(A.BB, B.BB);
    if (A.I->isPhi())
      return !B.I->isPhi();
    if (B.I->isPhi())
      return false;
    return A.Order < B.Order;
  }

  bool liveAtDef(RegId V, const Site &D) {
    if (D.I->isPhi())
      return LV->isLiveIn(V, D.BB);
    return LV->isLiveAfter(V, D.BB, D.Pos);
  }
};

} // namespace

namespace {

/// One pass of the per-phi conversion. Swap-shaped webs can need more
/// than one pass: an inserted copy resolves the pair that triggered it
/// but may itself interfere with another member merged later.
SreedharStats convertToCSSAOnce(Function &F) {
  SreedharStats Stats;
  CSSAState St(F);

  // Collect phis up front (in RPO-ish program order); copies never add
  // or remove phis.
  std::vector<Instruction *> Phis;
  std::vector<BasicBlock *> PhiBlock;
  for (const auto &BB : F.blocks())
    for (Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      Phis.push_back(&I);
      PhiBlock.push_back(BB.get());
    }

  for (size_t PI = 0; PI < Phis.size(); ++PI) {
    Instruction &Phi = *Phis[PI];
    BasicBlock *L0 = PhiBlock[PI];
    ++Stats.NumPhisProcessed;

    // Resources of this phi: operand index ~0u denotes the result.
    struct Res {
      RegId V;
      unsigned OperandIdx; // ~0u for the def.
      BasicBlock *Block;   // Copy point: end of Block, or entry of L0.
    };
    std::vector<Res> Resources;
    Resources.push_back({Phi.def(0), ~0u, L0});
    for (unsigned K = 0; K < Phi.numUses(); ++K)
      Resources.push_back({Phi.use(K), K, Phi.incomingBlock(K)});

    auto ClassNeededAcross = [&](const Res &A, const Res &B) {
      // Is A's congruence class live at B's copy point?
      if (B.OperandIdx == ~0u)
        return St.classLiveIn(A.V, B.Block);
      return St.classLiveOut(A.V, B.Block);
    };

    std::set<unsigned> Marked; // Indices into Resources needing a copy.
    std::vector<std::pair<unsigned, unsigned>> Unresolved;

    for (unsigned A = 0; A < Resources.size(); ++A)
      for (unsigned B = A + 1; B < Resources.size(); ++B) {
        if (Resources[A].V == Resources[B].V)
          continue;
        if (St.classes().sameSet(Resources[A].V, Resources[B].V))
          continue;
        if (!St.classesInterfere(Resources[A].V, Resources[B].V))
          continue;
        bool ALive = ClassNeededAcross(Resources[A], Resources[B]);
        bool BLive = ClassNeededAcross(Resources[B], Resources[A]);
        if (ALive && !BLive)
          Marked.insert(A);
        else if (BLive && !ALive)
          Marked.insert(B);
        else if (ALive && BLive) {
          Marked.insert(A);
          Marked.insert(B);
        } else {
          Unresolved.push_back({A, B});
          ++Stats.NumUnresolvedPairs;
        }
      }

    // Process the unresolved resources: repeatedly mark the resource
    // occurring in the most not-yet-resolved pairs.
    while (true) {
      std::map<unsigned, unsigned> Count;
      for (auto &[A, B] : Unresolved)
        if (!Marked.count(A) && !Marked.count(B)) {
          ++Count[A];
          ++Count[B];
        }
      if (Count.empty())
        break;
      unsigned Best = Count.begin()->first;
      for (auto &[R, C] : Count)
        if (C > Count[Best])
          Best = R;
      Marked.insert(Best);
    }

    // Insert the copies.
    for (unsigned Idx : Marked) {
      const Res &R = Resources[Idx];
      if (R.OperandIdx == ~0u) {
        // New phi result X'; X = X' placed at the top of L0.
        RegId NewDef = F.makeVirtual(F.valueName(R.V) + ".c");
        St.grow();
        Instruction Copy(Opcode::Mov);
        Copy.addDef(R.V);
        Copy.addUse(NewDef);
        L0->insert(L0->firstNonPhi(), std::move(Copy));
        Phi.setDef(0, NewDef);
      } else {
        // New argument xi'; xi' = xi at the end of the predecessor.
        RegId NewArg = F.makeVirtual(F.valueName(R.V) + ".c");
        St.grow();
        Instruction Copy(Opcode::Mov);
        Copy.addDef(NewArg);
        Copy.addUse(R.V);
        BasicBlock *Pred = R.Block;
        auto Pos = Pred->instructions().end();
        --Pos; // Before the terminator.
        Pred->insert(Pos, std::move(Copy));
        Phi.setUse(R.OperandIdx, NewArg);
      }
      ++Stats.NumCopiesInserted;
    }
    if (!Marked.empty())
      St.invalidate();

    // Merge the (now interference-free) phi congruence classes.
    for (unsigned K = 0; K < Phi.numUses(); ++K)
      St.merge(Phi.def(0), Phi.use(K));
  }
  return Stats;
}

} // namespace

SreedharStats lao::convertToCSSA(Function &F) {
  SreedharStats Total;
  for (unsigned Round = 0; Round < 5; ++Round) {
    SreedharStats Stats = convertToCSSAOnce(F);
    Total.NumPhisProcessed =
        std::max(Total.NumPhisProcessed, Stats.NumPhisProcessed);
    Total.NumCopiesInserted += Stats.NumCopiesInserted;
    Total.NumUnresolvedPairs += Stats.NumUnresolvedPairs;
    if (Stats.NumCopiesInserted == 0 || findCSSAViolations(F).empty())
      break;
  }
  LAO_STAT(sreedhar, runs) += 1;
  LAO_STAT(sreedhar, copies_inserted) += Total.NumCopiesInserted;
  LAO_STAT(sreedhar, phis_processed) += Total.NumPhisProcessed;
  LAO_STAT(sreedhar, unresolved_pairs) += Total.NumUnresolvedPairs;
  return Total;
}

std::vector<std::pair<RegId, RegId>> lao::findCSSAViolations(Function &F) {
  std::vector<std::pair<RegId, RegId>> Violations;
  CSSAState St(F);
  // Webs: transitive closure over all phi operand sets.
  UnionFind Webs(F.numValues());
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      for (RegId U : I.uses())
        if (!F.isPhysical(U))
          Webs.merge(I.def(0), U);
    }
  std::map<RegId, std::vector<RegId>> Members;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (RegId D : I.defs())
        if (!F.isPhysical(D))
          Members[Webs.find(D)].push_back(D);
  for (auto &[Root, List] : Members) {
    if (List.size() < 2)
      continue;
    // Only webs containing a phi matter.
    bool HasPhi = false;
    for (const auto &BB : F.blocks())
      for (const Instruction &I : BB->instructions()) {
        if (!I.isPhi())
          break;
        HasPhi |= Webs.find(I.def(0)) == Root;
      }
    if (!HasPhi)
      continue;
    for (size_t A = 0; A < List.size(); ++A)
      for (size_t B = A + 1; B < List.size(); ++B)
        if (St.valuesInterfere(List[A], List[B]))
          Violations.push_back({List[A], List[B]});
  }
  return Violations;
}

unsigned lao::pinCSSAWebs(Function &F) {
  UnionFind Webs(F.numValues());
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      for (RegId U : I.uses())
        Webs.merge(I.def(0), U);
    }

  // Web roots that actually contain a phi (only those need pinning).
  std::set<RegId> PhiRoots;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      PhiRoots.insert(Webs.find(I.def(0)));
    }

  // Representative per web: an existing physical def pin wins; otherwise
  // the web leader. A physical register may represent at most one web —
  // two phi webs pinned to one machine register would strongly interfere
  // (the failure mode the paper reports for its own Sreedhar+constraints
  // adaptation); later webs fall back to a virtual representative.
  std::map<RegId, RegId> RepFor; // web root -> resource
  std::set<RegId> ClaimedPhys;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        RegId Pin = I.defPin(K);
        if (Pin == InvalidReg || !F.isPhysical(Pin))
          continue;
        RegId Root = Webs.find(I.def(K));
        if (!PhiRoots.count(Root) || RepFor.count(Root))
          continue;
        if (ClaimedPhys.insert(Pin).second)
          RepFor.emplace(Root, Pin);
      }

  unsigned NumPinned = 0;
  for (const auto &BB : F.blocks())
    for (Instruction &I : BB->instructions()) {
      if (I.isParCopy())
        continue;
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        RegId D = I.def(K);
        if (F.isPhysical(D))
          continue;
        RegId Root = Webs.find(D);
        if (!PhiRoots.count(Root))
          continue;
        auto It = RepFor.find(Root);
        RegId Res = It != RepFor.end() ? It->second : Root;
        if (I.defPin(K) == InvalidReg || !F.isPhysical(I.defPin(K))) {
          I.pinDef(K, Res);
          ++NumPinned;
        }
      }
    }
  return NumPinned;
}
