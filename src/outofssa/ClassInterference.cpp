//===- ClassInterference.cpp - Dominance-ordered class interference -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/ClassInterference.h"

#include "outofssa/PinningContext.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>

using namespace lao;

namespace {
/// Intra-block sweep key of a slot item: after every definition key of
/// the block (phis are 0, a non-phi at index i is i + 1).
constexpr uint32_t SlotSubKey = 0xffffffffu;

bool sortedIntersect(const std::vector<const Instruction *> &A,
                     const std::vector<const Instruction *> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J])
      ++I;
    else if (B[J] < A[I])
      ++J;
    else
      return true;
  }
  return false;
}

bool sortedIntersect(const std::vector<uint32_t> &A,
                     const std::vector<uint32_t> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J])
      ++I;
    else if (B[J] < A[I])
      ++J;
    else
      return true;
  }
  return false;
}

template <typename T> void mergeSorted(std::vector<T> &Dst, std::vector<T> &Src,
                                       bool Dedup) {
  std::vector<T> Out;
  Out.reserve(Dst.size() + Src.size());
  std::merge(Dst.begin(), Dst.end(), Src.begin(), Src.end(),
             std::back_inserter(Out));
  if (Dedup)
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  Dst = std::move(Out);
  Src.clear();
  Src.shrink_to_fit();
}
} // namespace

ClassInterference::ClassInterference(const PinningContext &Ctx, const CFG &Cfg,
                                     const DominatorTree &DT,
                                     const LivenessQuery &LV)
    : Ctx(Ctx), Cfg(Cfg), DT(DT), LV(LV) {
  // Fact 1 of the header (liveness confined to the def's dominator
  // subtree) needs every instruction-bearing block to be reachable:
  // the pairwise Class 2 test has no dominance precondition, so values
  // reaching into or out of unreachable code can interfere without any
  // dominance relation.
  for (const BasicBlock *BB : Cfg.rpo())
    if (!Cfg.isReachable(BB) && !BB->instructions().empty()) {
      Usable = false;
      ++LAO_STAT(classinterf, fallback_functions);
      return;
    }
  buildSummaries();
}

ClassInterference::~ClassInterference() {
  LAO_STAT(classinterf, queries) += Stats.Queries;
  LAO_STAT(classinterf, cache_hits) += Stats.CacheHits;
  LAO_STAT(classinterf, cache_evictions) += Stats.CacheEvictions;
  LAO_STAT(classinterf, sweeps) += Stats.Sweeps;
  LAO_STAT(classinterf, probes) += Stats.Probes;
  LAO_STAT(classinterf, pair_cost) += Stats.PairCost;
}

void ClassInterference::buildSummaries() {
  const Function &F = Ctx.func();
  size_t N = F.numValues();
  Data.resize(N);
  Partners.resize(N);

  for (RegId V = 0; V < N; ++V) {
    const DefSite &DS = Ctx.defSite(V);
    if (!DS.Valid)
      continue;
    RegId Rep = Ctx.resourceOf(V);
    ClassData &D = Data[Rep];
    uint32_t PreIn = DT.preorderNumber(DS.BB);
    uint32_t PreOut = DT.preorderLimit(DS.BB);
    assert(PreIn != 0 && "def in unreachable block despite usable()");
    uint32_t SubKey = DS.I->isPhi() ? 0 : DS.Order + 1;
    D.Items.push_back(DefItem{(uint64_t(PreIn) << 32) | SubKey, PreOut, V});

    if (DS.I->numDefs() >= 2)
      D.MultiDefs.push_back(DS.I);
    if (DS.I->isPhi()) {
      D.PhiBlocks.push_back(DS.BB->id());
      const Instruction &Phi = *DS.I;
      for (unsigned K = 0; K < Phi.numUses(); ++K) {
        const BasicBlock *Bi = Phi.incomingBlock(K);
        D.Slots.push_back(
            SlotItem{(uint64_t(DT.preorderNumber(Bi)) << 32) | SlotSubKey,
                     DT.preorderLimit(Bi), Bi, Phi.use(K)});
        D.PredArgs.push_back(PredArg{Bi->id(), Phi.use(K), false});
      }
    }
  }

  for (ClassData &D : Data) {
    std::sort(D.Items.begin(), D.Items.end(),
              [](const DefItem &A, const DefItem &B) { return A.Key < B.Key; });
    std::sort(D.Slots.begin(), D.Slots.end(),
              [](const SlotItem &A, const SlotItem &B) {
                return A.Key != B.Key ? A.Key < B.Key
                                      : A.Incoming < B.Incoming;
              });
    D.Slots.erase(std::unique(D.Slots.begin(), D.Slots.end(),
                              [](const SlotItem &A, const SlotItem &B) {
                                return A.Key == B.Key &&
                                       A.Incoming == B.Incoming;
                              }),
                  D.Slots.end());
    std::sort(D.MultiDefs.begin(), D.MultiDefs.end());
    D.MultiDefs.erase(std::unique(D.MultiDefs.begin(), D.MultiDefs.end()),
                      D.MultiDefs.end());
    std::sort(D.PhiBlocks.begin(), D.PhiBlocks.end());
    D.PhiBlocks.erase(std::unique(D.PhiBlocks.begin(), D.PhiBlocks.end()),
                      D.PhiBlocks.end());
    // Compress the raw (block, value) pairs into one digest per block.
    std::sort(D.PredArgs.begin(), D.PredArgs.end(),
              [](const PredArg &A, const PredArg &B) {
                return A.Block != B.Block ? A.Block < B.Block : A.Val < B.Val;
              });
    std::vector<PredArg> Packed;
    for (const PredArg &P : D.PredArgs) {
      if (!Packed.empty() && Packed.back().Block == P.Block) {
        if (Packed.back().Val != P.Val)
          Packed.back().Multi = true;
        continue;
      }
      Packed.push_back(P);
    }
    D.PredArgs = std::move(Packed);
  }
}

void ClassInterference::VictimStack::popTo(uint32_t PreIn, uint32_t SubKey,
                                           uint32_t PreOut) {
  while (!Groups.empty()) {
    const Group &G = Groups.back();
    uint32_t GIn = static_cast<uint32_t>(G.Key >> 32);
    uint32_t GSub = static_cast<uint32_t>(G.Key);
    bool Dominates = GIn == PreIn ? GSub < SubKey
                                  : (GIn < PreIn && PreOut <= G.PreOut);
    if (Dominates)
      break;
    Vals.resize(G.Begin);
    Groups.pop_back();
  }
}

bool ClassInterference::class1Probe(RegId Victim, RegId Killer) {
  // The Class 1 probe of variableKills(Killer, Victim), with
  // defDominates(Victim, Killer) already guaranteed by the stack.
  const DefSite &DK = Ctx.defSite(Killer);
  ++Stats.Probes;
  switch (Ctx.mode()) {
  case InterferenceMode::Precise:
    return DK.I->isPhi() ? LV.isLiveIn(Victim, DK.BB)
                         : LV.isLiveAfter(Victim, DK.BB, DK.Pos);
  case InterferenceMode::Optimistic:
    return LV.isLiveOut(Victim, DK.BB);
  case InterferenceMode::Pessimistic:
    return LV.isLiveIn(Victim, DK.BB) || DK.BB == Ctx.defSite(Victim).BB;
  }
  return false;
}

bool ClassInterference::strongInterfere(const ClassData &A,
                                        const ClassData &B) const {
  // Same-instruction parallel results; phis sharing a block (Case 4).
  if (sortedIntersect(A.MultiDefs, B.MultiDefs))
    return true;
  if (sortedIntersect(A.PhiBlocks, B.PhiBlocks))
    return true;
  // Case 3: a shared predecessor carries parallel copies into the merged
  // resource; legal only when both sides move one and the same value.
  size_t I = 0, J = 0;
  while (I < A.PredArgs.size() && J < B.PredArgs.size()) {
    const PredArg &PA = A.PredArgs[I], &PB = B.PredArgs[J];
    if (PA.Block < PB.Block) {
      ++I;
    } else if (PB.Block < PA.Block) {
      ++J;
    } else {
      if (PA.Multi || PB.Multi || PA.Val != PB.Val)
        return true;
      ++I;
      ++J;
    }
  }
  return false;
}

bool ClassInterference::sweep(RegId RA, RegId RB) {
  const ClassData &A = Data[RA];
  const ClassData &B = Data[RB];
  ++Stats.Sweeps;
  Stats.PairCost += uint64_t(A.Items.size()) * B.Items.size();

  StackA.clear();
  StackB.clear();
  size_t IA = 0, IB = 0, SA = 0, SB = 0;

  auto ProbeGroup = [&](const VictimStack &Victims, RegId Killer) {
    if (Victims.Groups.empty())
      return false;
    for (size_t K = Victims.Groups.back().Begin; K < Victims.Vals.size(); ++K)
      if (class1Probe(Victims.Vals[K], Killer))
        return true;
    return false;
  };
  auto ProbeSlot = [&](const VictimStack &Victims, const SlotItem &S) {
    if (Victims.Groups.empty())
      return false;
    for (size_t K = Victims.Groups.back().Begin; K < Victims.Vals.size();
         ++K) {
      RegId X = Victims.Vals[K];
      if (X == S.Incoming)
        continue;
      ++Stats.Probes;
      if (LV.isLiveOut(X, S.Pred))
        return true;
    }
    return false;
  };

  while (IA < A.Items.size() || IB < B.Items.size() || SA < A.Slots.size() ||
         SB < B.Slots.size()) {
    uint64_t Key = UINT64_MAX;
    if (IA < A.Items.size())
      Key = std::min(Key, A.Items[IA].Key);
    if (IB < B.Items.size())
      Key = std::min(Key, B.Items[IB].Key);
    if (SA < A.Slots.size())
      Key = std::min(Key, A.Slots[SA].Key);
    if (SB < B.Slots.size())
      Key = std::min(Key, B.Slots[SB].Key);

    uint32_t PreIn = static_cast<uint32_t>(Key >> 32);
    uint32_t SubKey = static_cast<uint32_t>(Key);

    if (SubKey != SlotSubKey) {
      // A definition group: all parallel defs at this position, from
      // both classes. Probe each against the other class's nearest
      // non-killed group, then push the non-killed survivors — deferred
      // so parallel defs never see each other as victims.
      size_t BeginA = IA, BeginB = IB;
      uint32_t PreOut = 0;
      while (IA < A.Items.size() && A.Items[IA].Key == Key)
        PreOut = A.Items[IA++].PreOut;
      while (IB < B.Items.size() && B.Items[IB].Key == Key)
        PreOut = B.Items[IB++].PreOut;
      StackA.popTo(PreIn, SubKey, PreOut);
      StackB.popTo(PreIn, SubKey, PreOut);

      for (size_t K = BeginA; K < IA; ++K)
        if (ProbeGroup(StackB, A.Items[K].V))
          return true;
      for (size_t K = BeginB; K < IB; ++K)
        if (ProbeGroup(StackA, B.Items[K].V))
          return true;

      auto Push = [](VictimStack &S, const ClassData &D, size_t Begin,
                     size_t End, const PinningContext &Ctx) {
        uint32_t VBegin = static_cast<uint32_t>(S.Vals.size());
        for (size_t K = Begin; K < End; ++K)
          if (!Ctx.isKilled(D.Items[K].V))
            S.Vals.push_back(D.Items[K].V);
        if (S.Vals.size() != VBegin)
          S.Groups.push_back(VictimStack::Group{D.Items[Begin].Key,
                                                D.Items[Begin].PreOut,
                                                VBegin});
      };
      if (BeginA != IA)
        Push(StackA, A, BeginA, IA, Ctx);
      if (BeginB != IB)
        Push(StackB, B, BeginB, IB, Ctx);
    } else {
      // Class 2 slots at the end of one predecessor block: the parallel
      // copy clobbers every live-out value of the other class except the
      // one flowing through it.
      uint32_t PreOut = 0;
      size_t BeginSA = SA, BeginSB = SB;
      while (SA < A.Slots.size() && A.Slots[SA].Key == Key)
        PreOut = A.Slots[SA++].PreOut;
      while (SB < B.Slots.size() && B.Slots[SB].Key == Key)
        PreOut = B.Slots[SB++].PreOut;
      StackA.popTo(PreIn, SubKey, PreOut);
      StackB.popTo(PreIn, SubKey, PreOut);

      for (size_t K = BeginSA; K < SA; ++K)
        if (ProbeSlot(StackB, A.Slots[K]))
          return true;
      for (size_t K = BeginSB; K < SB; ++K)
        if (ProbeSlot(StackA, B.Slots[K]))
          return true;
    }
  }
  return false;
}

bool ClassInterference::computeUncached(RegId RA, RegId RB) {
  if (strongInterfere(Data[RA], Data[RB]))
    return true;
  return sweep(RA, RB);
}

bool ClassInterference::interfere(RegId RA, RegId RB) {
  assert(Usable && "caller must fall back to the pairwise scan");
  assert(RA != RB && Ctx.resourceOf(RA) == RA && Ctx.resourceOf(RB) == RB &&
         "interfere() takes two distinct current representatives");
  uint64_t Key = pairKey(RA, RB);
  auto It = Cache.find(Key);
  if (It != Cache.end()) {
    ++Stats.CacheHits;
    return It->second;
  }
  ++Stats.Queries;
  size_t QSize = Data[RA].Items.size() + Data[RB].Items.size();
  if (QSize <= 4)
    ++LAO_STAT(classinterf, qsize_le4);
  else if (QSize <= 16)
    ++LAO_STAT(classinterf, qsize_le16);
  else if (QSize <= 64)
    ++LAO_STAT(classinterf, qsize_le64);
  else
    ++LAO_STAT(classinterf, qsize_gt64);

  bool Verdict = computeUncached(RA, RB);
  Cache.emplace(Key, Verdict);
  Partners[RA].push_back(RB);
  Partners[RB].push_back(RA);
  return Verdict;
}

void ClassInterference::evict(RegId R) {
  for (RegId P : Partners[R]) {
    if (Cache.erase(pairKey(R, P)))
      ++Stats.CacheEvictions;
    // The back-reference in Partners[P] goes stale; a later evict(P)
    // erases the already-gone key, which is harmless.
  }
  Partners[R].clear();
}

void ClassInterference::onMerge(RegId OldA, RegId OldB) {
  if (!Usable)
    return;
  // Kills are only added to members of the merged class, and the merged
  // class's contents changed — every cached verdict touching either old
  // representative is stale; no other pair can have moved.
  evict(OldA);
  evict(OldB);

  RegId Keep = Ctx.resourceOf(OldA);
  assert((Keep == OldA || Keep == OldB) && Keep == Ctx.resourceOf(OldB) &&
         "onMerge expects the two pre-merge representatives");
  RegId Other = Keep == OldA ? OldB : OldA;
  ClassData &Dst = Data[Keep];
  ClassData &Src = Data[Other];

  {
    std::vector<DefItem> Out;
    Out.reserve(Dst.Items.size() + Src.Items.size());
    std::merge(Dst.Items.begin(), Dst.Items.end(), Src.Items.begin(),
               Src.Items.end(), std::back_inserter(Out),
               [](const DefItem &A, const DefItem &B) { return A.Key < B.Key; });
    Dst.Items = std::move(Out);
    Src.Items.clear();
    Src.Items.shrink_to_fit();
  }
  {
    std::vector<SlotItem> Out;
    Out.reserve(Dst.Slots.size() + Src.Slots.size());
    std::merge(Dst.Slots.begin(), Dst.Slots.end(), Src.Slots.begin(),
               Src.Slots.end(), std::back_inserter(Out),
               [](const SlotItem &A, const SlotItem &B) {
                 return A.Key != B.Key ? A.Key < B.Key
                                       : A.Incoming < B.Incoming;
               });
    Out.erase(std::unique(Out.begin(), Out.end(),
                          [](const SlotItem &A, const SlotItem &B) {
                            return A.Key == B.Key && A.Incoming == B.Incoming;
                          }),
              Out.end());
    Dst.Slots = std::move(Out);
    Src.Slots.clear();
    Src.Slots.shrink_to_fit();
  }
  mergeSorted(Dst.MultiDefs, Src.MultiDefs, /*Dedup=*/true);
  mergeSorted(Dst.PhiBlocks, Src.PhiBlocks, /*Dedup=*/true);
  {
    std::vector<PredArg> Out;
    Out.reserve(Dst.PredArgs.size() + Src.PredArgs.size());
    size_t I = 0, J = 0;
    while (I < Dst.PredArgs.size() || J < Src.PredArgs.size()) {
      if (J == Src.PredArgs.size() ||
          (I < Dst.PredArgs.size() &&
           Dst.PredArgs[I].Block < Src.PredArgs[J].Block)) {
        Out.push_back(Dst.PredArgs[I++]);
      } else if (I == Dst.PredArgs.size() ||
                 Src.PredArgs[J].Block < Dst.PredArgs[I].Block) {
        Out.push_back(Src.PredArgs[J++]);
      } else {
        PredArg P = Dst.PredArgs[I];
        const PredArg &Q = Src.PredArgs[J];
        P.Multi = P.Multi || Q.Multi || P.Val != Q.Val;
        Out.push_back(P);
        ++I;
        ++J;
      }
    }
    Dst.PredArgs = std::move(Out);
    Src.PredArgs.clear();
    Src.PredArgs.shrink_to_fit();
  }
}
