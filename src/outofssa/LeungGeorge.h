//===- LeungGeorge.h - Out-of-pinned-SSA translation ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mark and reconstruct phases of Leung & George's out-of-SSA
/// algorithm for machine-level SSA (PLDI 1999), as used and refined by
/// the paper (Section 2.3). Input is pinned SSA; output is non-SSA code
/// where:
///
///  * every variable is renamed to its resource-class representative
///    (physical register or class-leader virtual),
///  * each phi becomes entries of a parallel copy at the end of each
///    predecessor, *elided* when the destination resource already holds
///    the flowing value,
///  * each use pinned to a resource gets a copy into that resource before
///    the instruction, again elided when already in place,
///  * a variable whose resource is overwritten before a use ("killed") is
///    *repaired*: a copy into a fresh variable placed right after its
///    definition, with post-kill uses reading the repair (Figure 3).
///
/// The mark phase is a forward dataflow per resource class: "which SSA
/// variable's value does this resource hold here". The reconstruct phase
/// replays it, rewriting operands and materializing the copies. Parallel
/// copies are left as ParCopy instructions; run
/// sequentializeParallelCopies afterwards to lower them to moves (this
/// separation keeps the swap problem visible in tests).
///
/// Requires: SSA input, critical edges split (splitCriticalEdges), and a
/// PinningContext carrying all pins.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_LEUNGGEORGE_H
#define LAO_OUTOFSSA_LEUNGGEORGE_H

#include "outofssa/PinningContext.h"

#include <functional>
#include <utility>
#include <vector>

namespace lao {

struct OutOfSSAStats {
  unsigned NumRepairs = 0;        ///< Repair copies inserted.
  unsigned NumPhiCopies = 0;      ///< Parallel-copy entries for phis.
  unsigned NumPinCopies = 0;      ///< Copies satisfying use pins.
  unsigned NumElidedCopies = 0;   ///< Copies avoided (value in place).
  unsigned NumPhisRemoved = 0;
  unsigned NumInserts = 0;        ///< Instructions inserted (all kinds).
};

/// Translates \p F out of SSA under the pinning in \p Ctx. Mutates F.
OutOfSSAStats translateOutOfSSA(Function &F, PinningContext &Ctx,
                                const CFG &Cfg);

/// One parallel-copy entry: (destination, source).
using CopyPair = std::pair<RegId, RegId>;

/// Sequentializes the non-identity (dst, src) entries of one parallel
/// copy into an ordered move list appended to \p Out: a copy is emitted
/// as soon as its destination is no longer needed as a source, and pure
/// cycles are broken with a fresh temporary from \p MakeTemp (the swap
/// problem). Shared by the IR lowering below and the bytecode compiler
/// (src/exec/Bytecode.cpp) so both produce the same move sequence.
void sequentializeCopyPairs(std::vector<CopyPair> Entries,
                            const std::function<RegId()> &MakeTemp,
                            std::vector<CopyPair> &Out);

/// Lowers every ParCopy into a sequence of Mov instructions, inserting
/// fresh temporaries to break copy cycles (the swap problem). Identity
/// entries are dropped. Returns the number of moves emitted.
unsigned sequentializeParallelCopies(Function &F);

} // namespace lao

#endif // LAO_OUTOFSSA_LEUNGGEORGE_H
