//===- PhiCoalescing.h - Pinning-based phi coalescing -----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (Section 3): a coalescing phase that
/// runs *before* the out-of-SSA reconstruction and expresses its decisions
/// as variable pinning. Per confluence block, visited inner-to-outer
/// (most deeply nested loops first):
///
///   1. Create_affinity_graph: vertices are resources (pinning classes),
///      one affinity edge per (phi result, phi argument) pair, with
///      multiplicities (Algorithm 2; Algorithm 3 adds the depth filter of
///      the Table 5 "depth" variant).
///   2. Graph_InitialPruning: drop edges whose endpoint resources
///      interfere (Resource_interfere).
///   3. BipartiteGraph_pruning: weigh each remaining edge by how many
///      neighbour resources interfere across it, then greedily delete the
///      heaviest edges until no positive weight remains.
///   4. PrunedGraph_pinning: merge each connected component into a single
///      resource (the physical register if the component has one) and pin
///      all member definitions to it.
///
/// The resulting pinning makes Leung & George's reconstruction emit no
/// move for each phi argument sharing its result's resource.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_PHICOALESCING_H
#define LAO_OUTOFSSA_PHICOALESCING_H

#include "analysis/LoopInfo.h"
#include "outofssa/PinningContext.h"

namespace lao {

/// Edge-selection heuristic used by the pruning loop (ablation knob; the
/// paper uses Weighted).
enum class PruneHeuristic {
  Weighted,  ///< Paper: heaviest edge first.
  FirstFound ///< Ablation: arbitrary positive-weight edge.
};

struct PhiCoalescingOptions {
  /// Table 5 "depth" variant: build affinity graphs per definition depth,
  /// processed from the innermost depth outwards (Algorithm 3).
  bool DepthConstrained = false;
  PruneHeuristic Heuristic = PruneHeuristic::Weighted;
  /// Minimum phi-edge multiplicity required before a component joins a
  /// *physical* register class (Figure 8 partial coalescing). 1 merges
  /// on any affinity; large values never merge with machine registers,
  /// leaving them to the post coalescer. Default 2: measured best (see
  /// bench_ablation).
  unsigned PhysMergeMinMult = 2;
  /// Also pin each variable to the resource of its pinned uses when that
  /// creates no interference — the pre-pass the paper sketches against
  /// Leung & George's limitation [LIM2]. Off by default: measured on the
  /// suites it trades pin copies for phi copies and repairs at a net
  /// loss (see bench_ablation), which matches the paper leaving it as a
  /// remark rather than implementing it.
  bool UsePinAffinity = false;
};

struct PhiCoalescingStats {
  unsigned NumAffinityEdges = 0;   ///< Total edges created (by multiplicity).
  unsigned NumInitialPruned = 0;   ///< Removed by Graph_InitialPruning.
  unsigned NumWeightPruned = 0;    ///< Removed by BipartiteGraph_pruning.
  unsigned NumMerges = 0;          ///< Resource merges performed.
  unsigned NumUsePinMerges = 0;    ///< Merges from the [LIM2] pre-pass.
  unsigned NumPhysDeferred = 0;    ///< Weak-affinity physical merges left
                                   ///< to the post coalescer.
  unsigned NumSafetySkips = 0;     ///< Vertices skipped by the merge-time
                                   ///< interference re-check (see below).
  uint64_t NumPairQueries = 0;     ///< resourceInterfere class-pair
                                   ///< queries issued (all phases).
  unsigned TotalGain = 0;          ///< Phi args sharing their result's
                                   ///< resource after coalescing.
};

/// Runs the pinning-based phi coalescing over \p F, updating \p Ctx's
/// resource classes and the def-operand pins of coalesced variables.
///
/// One deliberate strengthening over the paper's pseudo-code: weight-0
/// pruning does not by itself guarantee that *transitively* connected
/// component members never interfere, so components are merged
/// incrementally and a vertex whose resource interferes with the
/// accumulated class is skipped (counted in NumSafetySkips). This keeps
/// the pinning free of strong interference in all cases.
PhiCoalescingStats coalescePhis(Function &F, PinningContext &Ctx,
                                const CFG &Cfg, const LoopInfo &LI,
                                const PhiCoalescingOptions &Opts = {});

} // namespace lao

#endif // LAO_OUTOFSSA_PHICOALESCING_H
