//===- PhiCoalescing.cpp - Pinning-based phi coalescing ------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/PhiCoalescing.h"

#include "support/Stats.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

using namespace lao;

namespace {

/// One affinity edge between a phi-result resource and an argument
/// resource (vertices are class representatives at graph-build time).
struct Edge {
  RegId DefRes;
  RegId ArgRes;
  unsigned Multiplicity = 0;
  int Weight = 0;
  /// Use-pin ties (2-operand / argument-register constraints) between the
  /// two endpoint classes: merging them additionally elides a pin copy,
  /// so among equally weighted edges the pruning removes tie-free edges
  /// first (the ABI-awareness of the paper's point [CS3]).
  unsigned TieBonus = 0;
  bool Deleted = false;
};

/// Affinity graph of one basic block (paper Section 3.1).
struct AffinityGraph {
  std::vector<Edge> Edges;
  std::set<RegId> Vertices;

  Edge *findEdge(RegId A, RegId B) {
    for (Edge &E : Edges)
      if (!E.Deleted && ((E.DefRes == A && E.ArgRes == B) ||
                         (E.DefRes == B && E.ArgRes == A)))
        return &E;
    return nullptr;
  }
};

/// Create_affinity_graph (Algorithm 2 / Algorithm 3 with depth filter).
/// \p DepthFilter of -1 disables the filter.
AffinityGraph createAffinityGraph(const BasicBlock &BB, PinningContext &Ctx,
                                  const LoopInfo &LI, int DepthFilter,
                                  PhiCoalescingStats &Stats) {
  AffinityGraph G;
  for (const Instruction &I : BB.instructions()) {
    if (!I.isPhi())
      break;
    RegId DefRes = Ctx.resourceOf(I.def(0));
    G.Vertices.insert(DefRes);
    for (unsigned K = 0; K < I.numUses(); ++K) {
      RegId Arg = I.use(K);
      if (DepthFilter >= 0) {
        const DefSite &DS = Ctx.defSite(Arg);
        if (!DS.Valid ||
            static_cast<int>(LI.depth(DS.BB)) != DepthFilter)
          continue;
      }
      RegId ArgRes = Ctx.resourceOf(Arg);
      if (ArgRes == DefRes)
        continue; // Already coalesced: the gain is already realized.
      G.Vertices.insert(ArgRes);
      ++Stats.NumAffinityEdges;
      if (Edge *E = G.findEdge(DefRes, ArgRes)) {
        ++E->Multiplicity;
        continue;
      }
      G.Edges.push_back(Edge{DefRes, ArgRes, 1, 0, false});
    }
  }
  return G;
}

/// Graph_InitialPruning: delete edges whose resources interfere.
void initialPruning(AffinityGraph &G, PinningContext &Ctx,
                    PhiCoalescingStats &Stats) {
  for (Edge &E : G.Edges) {
    if (E.Deleted)
      continue;
    ++Stats.NumPairQueries;
    if (Ctx.resourceInterfere(E.DefRes, E.ArgRes)) {
      E.Deleted = true;
      Stats.NumInitialPruned += E.Multiplicity;
    }
  }
}

/// BipartiteGraph_pruning: weight, then greedily delete heaviest edges.
void bipartitePruning(Function &F, AffinityGraph &G, PinningContext &Ctx,
                      PruneHeuristic Heuristic,
                      PhiCoalescingStats &Stats) {
  // Tie bonuses: a use pinned to a resource of one endpoint whose
  // variable lives in the other endpoint makes the edge more valuable.
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (unsigned K = 0; K < I.numUses(); ++K) {
        if (I.usePin(K) == InvalidReg || I.isPhi())
          continue;
        RegId RPin = Ctx.resourceOf(I.usePin(K));
        RegId RVar = Ctx.resourceOf(I.use(K));
        if (RPin == RVar)
          continue;
        for (Edge &E : G.Edges)
          if (!E.Deleted && ((E.DefRes == RPin && E.ArgRes == RVar) ||
                             (E.DefRes == RVar && E.ArgRes == RPin)))
            ++E.TieBonus;
      }

  // Weight each edge: for every pair of live edges sharing a vertex whose
  // far endpoints interfere, each edge gains the other's multiplicity.
  for (size_t A = 0; A < G.Edges.size(); ++A) {
    if (G.Edges[A].Deleted)
      continue;
    for (size_t B = A + 1; B < G.Edges.size(); ++B) {
      if (G.Edges[B].Deleted)
        continue;
      Edge &EA = G.Edges[A];
      Edge &EB = G.Edges[B];
      RegId FarA = InvalidReg, FarB = InvalidReg;
      if (EA.DefRes == EB.DefRes) {
        FarA = EA.ArgRes;
        FarB = EB.ArgRes;
      } else if (EA.ArgRes == EB.ArgRes) {
        FarA = EA.DefRes;
        FarB = EB.DefRes;
      } else if (EA.DefRes == EB.ArgRes) {
        FarA = EA.ArgRes;
        FarB = EB.DefRes;
      } else if (EA.ArgRes == EB.DefRes) {
        FarA = EA.DefRes;
        FarB = EB.ArgRes;
      } else {
        continue;
      }
      if (FarA == FarB)
        continue;
      ++Stats.NumPairQueries;
      if (!Ctx.resourceInterfere(FarA, FarB))
        continue;
      EA.Weight += static_cast<int>(EB.Multiplicity);
      EB.Weight += static_cast<int>(EA.Multiplicity);
    }
  }

  // Greedy deletion: heaviest first; ties prune the edge with the
  // fewest use-pin ties (keep the ABI-profitable edges).
  while (true) {
    Edge *Pick = nullptr;
    for (Edge &E : G.Edges) {
      if (E.Deleted || E.Weight <= 0)
        continue;
      if (!Pick || E.Weight > Pick->Weight ||
          (E.Weight == Pick->Weight && E.TieBonus < Pick->TieBonus))
        Pick = &E;
      if (Heuristic == PruneHeuristic::FirstFound && Pick)
        break;
    }
    if (!Pick)
      break;
    Pick->Deleted = true;
    Stats.NumWeightPruned += Pick->Multiplicity;
    for (Edge &E : G.Edges) {
      if (E.Deleted)
        continue;
      bool SharesVertex = E.DefRes == Pick->DefRes ||
                          E.ArgRes == Pick->ArgRes ||
                          E.DefRes == Pick->ArgRes ||
                          E.ArgRes == Pick->DefRes;
      if (SharesVertex)
        E.Weight -= static_cast<int>(Pick->Multiplicity);
    }
  }
}

/// PrunedGraph_pinning: merge the connected components of the remaining
/// graph. Members of each merged class get their definition pin updated
/// to the final representative, so the coalescing decision is visible in
/// the printed IR (as in the paper's Figure 7).
void mergeComponents(Function &F, AffinityGraph &G, PinningContext &Ctx,
                     unsigned PhysMergeMinMult, PhiCoalescingStats &Stats) {
  // Adjacency over live edges (neighbour, edge multiplicity).
  std::map<RegId, std::vector<std::pair<RegId, unsigned>>> Adj;
  for (const Edge &E : G.Edges) {
    if (E.Deleted)
      continue;
    Adj[E.DefRes].push_back({E.ArgRes, E.Multiplicity});
    Adj[E.ArgRes].push_back({E.DefRes, E.Multiplicity});
  }

  std::set<RegId> Merged;
  for (RegId Start : G.Vertices) {
    if (Merged.count(Start) || !Adj.count(Start))
      continue;
    // BFS, merging as we go; re-check interference against the class
    // accumulated so far (see header comment). A vertex skipped here
    // (interference or deferred physical merge) stays available as the
    // seed of its own component.
    std::vector<RegId> Work{Start};
    std::set<RegId> Tried{Start};
    Merged.insert(Start);
    RegId Acc = Start;
    while (!Work.empty()) {
      RegId V = Work.back();
      Work.pop_back();
      for (auto [N, Mult] : Adj[V]) {
        if (Tried.count(N) || Merged.count(N))
          continue;
        Tried.insert(N);
        ++Stats.NumPairQueries;
        if (Ctx.resourceInterfere(Acc, N)) {
          ++Stats.NumSafetySkips;
          continue;
        }
        // Joining a *physical* (dedicated-register) class commits a
        // scarce machine register to the whole web and usually blocks
        // the later aggressive coalescer more than it saves; do it only
        // on strong affinity (several phi operands already live there,
        // as in the paper's Figure 8 partial-coalescing example, or a
        // use-pin tie toward the physical class).
        bool PhysInvolved = Ctx.func().isPhysical(Ctx.resourceOf(N)) ||
                            Ctx.func().isPhysical(Ctx.resourceOf(Acc));
        if (PhysInvolved && Mult < PhysMergeMinMult) {
          ++Stats.NumPhysDeferred;
          continue;
        }
        Acc = Ctx.pinTogether(Acc, N);
        Merged.insert(N);
        ++Stats.NumMerges;
        Work.push_back(N);
      }
    }
    // Publish the merged pinning on every member's definition.
    RegId Rep = Ctx.resourceOf(Acc);
    for (RegId Member : Ctx.members(Rep)) {
      const DefSite &DS = Ctx.defSite(Member);
      if (!DS.Valid)
        continue;
      Instruction &I = const_cast<Instruction &>(*DS.I);
      for (unsigned K = 0; K < I.numDefs(); ++K)
        if (I.def(K) == Member)
          I.pinDef(K, Rep);
    }
  }
  (void)F;
}

} // namespace

PhiCoalescingStats lao::coalescePhis(Function &F, PinningContext &Ctx,
                                     const CFG &Cfg, const LoopInfo &LI,
                                     const PhiCoalescingOptions &Opts) {
  PhiCoalescingStats Stats;

  // Confluence blocks ordered inner-to-outer (deepest loop first; RPO
  // breaks ties deterministically).
  std::vector<BasicBlock *> Order;
  for (BasicBlock *BB : Cfg.rpo())
    if (!BB->empty() && BB->front().isPhi())
      Order.push_back(BB);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](BasicBlock *A, BasicBlock *B) {
                     return LI.depth(A) > LI.depth(B);
                   });

  // [LIM2] pre-pass, run BEFORE the phi affinities: a use pinned to a
  // resource wants its variable's definition there too; merge when
  // interference-free so the reconstruction elides the copy. Running it
  // first mirrors the program-order greedy of a Chaitin coalescer for
  // ABI copies (argument registers are scarce; the phi webs merged
  // second can still coalesce around them).
  if (Opts.UsePinAffinity) {
    std::vector<BasicBlock *> ByDepth(Cfg.rpo());
    std::stable_sort(ByDepth.begin(), ByDepth.end(),
                     [&](BasicBlock *A, BasicBlock *B) {
                       return LI.depth(A) > LI.depth(B);
                     });
    for (BasicBlock *BB : ByDepth)
      for (Instruction &I : BB->instructions()) {
        for (unsigned K = 0; K < I.numUses(); ++K) {
          RegId Pin = I.usePin(K);
          if (Pin == InvalidReg)
            continue;
          RegId V = I.use(K);
          if (F.isPhysical(V))
            continue;
          if (Ctx.resourceOf(V) == Ctx.resourceOf(Pin))
            continue;
          ++Stats.NumPairQueries;
          if (Ctx.resourceInterfere(V, Pin))
            continue;
          RegId Rep = Ctx.pinTogether(V, Pin);
          ++Stats.NumUsePinMerges;
          const DefSite &DS = Ctx.defSite(V);
          if (DS.Valid) {
            Instruction &DefI = const_cast<Instruction &>(*DS.I);
            for (unsigned D = 0; D < DefI.numDefs(); ++D)
              if (DefI.def(D) == V)
                DefI.pinDef(D, Rep);
          }
        }
      }
  }


  auto ProcessBlock = [&](BasicBlock *BB, int DepthFilter) {
    AffinityGraph G =
        createAffinityGraph(*BB, Ctx, LI, DepthFilter, Stats);
    initialPruning(G, Ctx, Stats);
    bipartitePruning(F, G, Ctx, Opts.Heuristic, Stats);
    mergeComponents(F, G, Ctx, Opts.PhysMergeMinMult, Stats);
  };

  if (Opts.DepthConstrained) {
    // Algorithm 3: process per definition depth, innermost first.
    unsigned MaxDepth = 0;
    for (const auto &BB : F.blocks())
      MaxDepth = std::max(MaxDepth, LI.depth(BB.get()));
    for (int D = static_cast<int>(MaxDepth); D >= 0; --D)
      for (BasicBlock *BB : Order)
        ProcessBlock(BB, D);
  } else {
    for (BasicBlock *BB : Order)
      ProcessBlock(BB, -1);
  }

  // Final gain: phi arguments that now share their result's resource.
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      RegId DefRes = Ctx.resourceOf(I.def(0));
      for (unsigned K = 0; K < I.numUses(); ++K)
        if (Ctx.resourceOf(I.use(K)) == DefRes)
          ++Stats.TotalGain;
    }
  LAO_STAT(phicoalesce, runs) += 1;
  LAO_STAT(phicoalesce, affinity_edges) += Stats.NumAffinityEdges;
  LAO_STAT(phicoalesce, initial_pruned) += Stats.NumInitialPruned;
  LAO_STAT(phicoalesce, weight_pruned) += Stats.NumWeightPruned;
  LAO_STAT(phicoalesce, merges) += Stats.NumMerges;
  LAO_STAT(phicoalesce, safety_skips) += Stats.NumSafetySkips;
  LAO_STAT(phicoalesce, pair_queries) += Stats.NumPairQueries;
  LAO_STAT(phicoalesce, gain) += Stats.TotalGain;
  return Stats;
}
