//===- MoveStats.cpp - Move instruction counting -------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/MoveStats.h"

#include "analysis/AnalysisManager.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"

using namespace lao;

namespace {

uint64_t weightedMoveCountWith(const Function &F, const LoopInfo &LI) {
  uint64_t Total = 0;
  for (const auto &BB : F.blocks()) {
    uint64_t Weight = 1;
    for (unsigned D = 0; D < LI.depth(BB.get()); ++D)
      Weight *= 5;
    for (const Instruction &I : BB->instructions()) {
      if (I.isCopy())
        Total += Weight;
      else if (I.isParCopy())
        Total += Weight * I.numDefs();
    }
  }
  return Total;
}

} // namespace

unsigned lao::countMoves(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions()) {
      if (I.isCopy())
        ++N;
      else if (I.isParCopy())
        N += I.numDefs();
    }
  return N;
}

uint64_t lao::weightedMoveCount(const Function &F) {
  CFG Cfg(const_cast<Function &>(F));
  DominatorTree DT(Cfg);
  LoopInfo LI(Cfg, DT);
  return weightedMoveCountWith(F, LI);
}

uint64_t lao::weightedMoveCount(const Function &F, AnalysisManager &AM) {
  return weightedMoveCountWith(F, AM.loopInfo());
}
