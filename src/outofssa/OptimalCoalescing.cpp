//===- OptimalCoalescing.cpp - Exact reference for the phi problem -------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/OptimalCoalescing.h"

#include <algorithm>
#include <map>
#include <set>

using namespace lao;

namespace {

struct LocalEdge {
  unsigned U, V; ///< Dense vertex indices.
  unsigned Mult;
};

/// Branch-and-bound over edge subsets: maximize kept multiplicity such
/// that every pair of vertices connected through kept edges is
/// compatible (pairwise non-interfering).
class BlockSolver {
public:
  BlockSolver(unsigned NumVertices, std::vector<LocalEdge> Edges,
              const std::vector<std::vector<bool>> &Interfere)
      : NumVertices(NumVertices), Edges(std::move(Edges)),
        Interfere(Interfere) {
    // Large multiplicities first tightens the bound early.
    std::sort(this->Edges.begin(), this->Edges.end(),
              [](const LocalEdge &A, const LocalEdge &B) {
                return A.Mult > B.Mult;
              });
    Suffix.assign(this->Edges.size() + 1, 0);
    for (size_t K = this->Edges.size(); K-- > 0;)
      Suffix[K] = Suffix[K + 1] + this->Edges[K].Mult;
  }

  unsigned solve() {
    std::vector<unsigned> Comp(NumVertices);
    for (unsigned K = 0; K < NumVertices; ++K)
      Comp[K] = K;
    Best = 0;
    recurse(0, 0, Comp);
    return Best;
  }

private:
  unsigned NumVertices;
  std::vector<LocalEdge> Edges;
  const std::vector<std::vector<bool>> &Interfere;
  std::vector<unsigned> Suffix;
  unsigned Best = 0;

  void recurse(size_t Idx, unsigned Gain, std::vector<unsigned> &Comp) {
    if (Gain > Best)
      Best = Gain;
    if (Idx == Edges.size() || Gain + Suffix[Idx] <= Best)
      return;

    const LocalEdge &E = Edges[Idx];
    unsigned CU = Comp[E.U], CV = Comp[E.V];
    bool CanKeep = true;
    if (CU != CV) {
      for (unsigned A = 0; A < NumVertices && CanKeep; ++A) {
        if (Comp[A] != CU)
          continue;
        for (unsigned B = 0; B < NumVertices && CanKeep; ++B)
          if (Comp[B] == CV && Interfere[A][B])
            CanKeep = false;
      }
    }
    if (CanKeep) {
      // Keep the edge: merge components.
      std::vector<unsigned> Saved = Comp;
      if (CU != CV)
        for (unsigned A = 0; A < NumVertices; ++A)
          if (Comp[A] == CV)
            Comp[A] = CU;
      recurse(Idx + 1, Gain + E.Mult, Comp);
      Comp = Saved;
    }
    // Drop the edge.
    recurse(Idx + 1, Gain, Comp);
  }
};

} // namespace

OptimalGainResult lao::optimalPhiGain(Function &F, PinningContext &Ctx,
                                      const CFG &Cfg, unsigned MaxEdges) {
  OptimalGainResult Result;
  for (BasicBlock *BB : Cfg.rpo()) {
    if (BB->empty() || !BB->front().isPhi())
      continue;
    ++Result.NumBlocks;

    // Build the block's affinity multigraph over current resources.
    std::map<RegId, unsigned> VertexIdx;
    std::vector<RegId> Vertices;
    auto IdxOf = [&](RegId R) {
      auto [It, Inserted] = VertexIdx.emplace(R, Vertices.size());
      if (Inserted)
        Vertices.push_back(R);
      return It->second;
    };
    std::map<std::pair<unsigned, unsigned>, unsigned> EdgeMult;
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      unsigned DefIdx = IdxOf(Ctx.resourceOf(I.def(0)));
      for (unsigned K = 0; K < I.numUses(); ++K) {
        RegId ArgRes = Ctx.resourceOf(I.use(K));
        if (ArgRes == Vertices[DefIdx])
          continue; // Already coalesced.
        unsigned ArgIdx = IdxOf(ArgRes);
        auto Key = std::minmax(DefIdx, ArgIdx);
        ++EdgeMult[{Key.first, Key.second}];
      }
    }

    // Pairwise interference among the block's vertices.
    unsigned N = static_cast<unsigned>(Vertices.size());
    std::vector<std::vector<bool>> Interfere(N, std::vector<bool>(N));
    for (unsigned A = 0; A < N; ++A)
      for (unsigned B = A + 1; B < N; ++B)
        Interfere[A][B] = Interfere[B][A] =
            Ctx.resourceInterfere(Vertices[A], Vertices[B]);

    std::vector<LocalEdge> Edges;
    unsigned Keepable = 0;
    for (const auto &[Key, Mult] : EdgeMult) {
      if (Interfere[Key.first][Key.second])
        continue; // Can never be kept (Condition 2).
      Edges.push_back(LocalEdge{Key.first, Key.second, Mult});
      Keepable += Mult;
    }

    if (Edges.size() > MaxEdges) {
      // Too big for exhaustive search: fall back to the trivially sound
      // upper bound (all non-interfering edges).
      Result.Exact = false;
      Result.TotalGain += Keepable;
      continue;
    }
    Result.TotalGain += BlockSolver(N, Edges, Interfere).solve();
  }
  return Result;
}
