//===- PinningContext.h - Resource classes and interference ----*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pinning machinery of the paper's Section 3: resources as sets of
/// variables pinned together (kept in a union-find), the Variable_kills /
/// Variable_stronglyInterfere / Resource_killed / Resource_interfere
/// procedures of Algorithm 2, and the optimistic / pessimistic kill
/// variants of Algorithm 4 used in the Table 5 experiments.
///
/// Terminology (paper Section 3.2):
///  * "a kills b": pinning a and b to one resource clobbers b's value at
///    a's definition (Class 1) or at a phi-related parallel copy
///    (Class 2). A kill is a *simple* interference: Leung & George's
///    reconstruction repairs it with extra moves.
///  * "a strongly interferes with b": pinning them together is incorrect
///    and cannot be repaired (Classes 3 and 4, same-instruction defs,
///    distinct physical registers).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_PINNINGCONTEXT_H
#define LAO_OUTOFSSA_PINNINGCONTEXT_H

#include "analysis/Dominators.h"
#include "analysis/LivenessQuery.h"
#include "ir/Function.h"
#include "support/BitVector.h"
#include "support/UnionFind.h"

#include <memory>
#include <vector>

namespace lao {

class ClassInterference;

/// How Class 1 kills are detected (paper Algorithm 4).
enum class InterferenceMode {
  Precise,    ///< Exact SSA liveness at the killing definition.
  Optimistic, ///< b in liveout(block of def(a)) — may miss kills.
  Pessimistic ///< b in livein(block of def(a)) or same block — may
              ///< report spurious kills.
};

/// Definition site of an SSA variable.
struct DefSite {
  const BasicBlock *BB = nullptr;
  const Instruction *I = nullptr;
  BasicBlock::InstList::const_iterator Pos; ///< Iterator to I within BB.
  unsigned Order = 0;                       ///< Index of I within BB.
  bool Valid = false;
};

/// Resource classes over the variables of one SSA function, built from
/// def-operand pins, with the paper's interference tests.
///
/// The function must be in SSA form with critical edges split. The
/// analyses passed in must be current; PinningContext never mutates the
/// function (pin updates are applied separately by the caller).
class PinningContext {
public:
  PinningContext(const Function &F, const CFG &Cfg, const DominatorTree &DT,
                 const LivenessQuery &LV,
                 InterferenceMode Mode = InterferenceMode::Precise);
  ~PinningContext();

  const Function &func() const { return F; }

  /// Resource of \p V: the representative of its pinning class
  /// (the paper's Resource_def, transitively resolved).
  RegId resourceOf(RegId V) const { return Classes.find(V); }

  /// Members of the class of \p R (variables pinned together, including
  /// the physical register if any).
  const std::vector<RegId> &members(RegId R) const {
    return Members[Classes.find(R)];
  }

  /// True if \p V is already killed within its class (the paper's
  /// Resource_killed, maintained incrementally across merges). Classes
  /// are disjoint and a kill never leaves its class, so "killed within
  /// its class" is a per-value property: one flat bit vector replaces
  /// the old per-class hashed sets on the resourceInterfere hot path.
  bool isKilled(RegId V) const { return KilledMask.test(V); }

  /// The flat killed mask over all values (bit V == isKilled(V)).
  const BitVector &killedMask() const { return KilledMask; }

  /// Merges the classes of \p A and \p B. The caller must have verified
  /// the merge (resourceInterfere(A, B) == false) unless the pinning is
  /// mandatory (ABI/SP), in which case new kills are absorbed into the
  /// killed set. Returns the new representative.
  RegId pinTogether(RegId A, RegId B);

  /// Paper: Variable_kills(a, b) — true if pinning a and b together
  /// clobbers b's value at a's definition point (Class 1) or at a
  /// phi-related copy of a (Class 2). Honors the interference mode.
  bool variableKills(RegId A, RegId B) const;

  /// Paper: Variable_stronglyInterfere(a, b) — unrepairable conflicts.
  bool stronglyInterfere(RegId A, RegId B) const;

  /// Paper: Resource_interfere(A, B) — true if merging the two classes
  /// would create a new simple interference or any strong interference.
  bool resourceInterfere(RegId A, RegId B) const;

  /// Definition site of \p V (Valid == false for physical registers and
  /// never-defined values).
  const DefSite &defSite(RegId V) const { return Defs[V]; }

  /// True if the class of \p R contains a physical register (which is
  /// then its representative).
  bool hasPhysical(RegId R) const { return F.isPhysical(Classes.find(R)); }

  InterferenceMode mode() const { return Mode; }

  /// Process-wide switch for the dominance-ordered sweep engine
  /// (outofssa/ClassInterference.h) behind resourceInterfere. On by
  /// default; off falls back to the paper-literal O(|A|*|B|) pairwise
  /// scan. Set before any parallel pipeline runs (plain flag, same
  /// pattern as AnalysisManager::setVerifyOnInvalidate).
  static void setSweepEngineEnabled(bool On) { SweepEngine = On; }
  static bool sweepEngineEnabled() { return SweepEngine; }

  /// When on, every engine verdict is cross-checked against the pairwise
  /// scan and a mismatch aborts the process — the debug oracle the CI
  /// Debug job runs on all suites. Also enabled by setting the
  /// LAO_CLASSINTERF_ORACLE environment variable to a non-zero value.
  static void setCrossCheckOracle(bool On) { CrossCheckOracle = On; }
  static bool crossCheckOracle() { return CrossCheckOracle; }

  /// Field-diagnosis summary for lao-opt --interference-stats: the
  /// class-size histogram of the current class partition plus the
  /// engine's cache/probe counters.
  struct InterferenceReport {
    uint64_t NumClasses = 0;  ///< Classes counted in SizeHist.
    uint64_t SizeHist[6] = {0, 0, 0, 0, 0, 0}; ///< Members: 1, 2, 3-4,
                                               ///< 5-8, 9-16, >= 17.
    uint64_t Queries = 0;       ///< Uncached engine computations.
    uint64_t CacheHits = 0;
    uint64_t CacheEvictions = 0;
    uint64_t Probes = 0;        ///< Sweep liveness probes.
    uint64_t PairCost = 0;      ///< Pairwise probe bound (sum |A|*|B|).
    uint64_t PairwiseQueries = 0; ///< Queries the pairwise scan served
                                  ///< (engine off or unusable).
    bool EngineUsed = false;
  };
  InterferenceReport interferenceReport() const;

private:
  /// A use operand pinned to (the class of) some resource: the
  /// reconstruction places a copy into that resource right before the
  /// instruction, which clobbers whatever the resource held. These
  /// "pin-copy kills" are part of the interference model, alongside the
  /// Class 1 / Class 2 kills of Variable_kills.
  struct PinSite {
    const BasicBlock *BB;
    BasicBlock::InstList::const_iterator Pos;
    RegId UsedVar;
  };

  const Function &F;
  const CFG &Cfg;
  const DominatorTree &DT;
  const LivenessQuery &LV;
  InterferenceMode Mode;

  mutable UnionFind Classes;
  std::vector<std::vector<RegId>> Members;    ///< Indexed by representative.
  BitVector KilledMask;                       ///< Flat, indexed by value.
  std::vector<std::vector<PinSite>> PinSites; ///< Indexed by representative.
  std::vector<DefSite> Defs;

  /// The dominance-ordered sweep engine, built lazily at the first
  /// resourceInterfere query (mutable: queries are const, memoization is
  /// not). Null until then, and never built when the engine is disabled.
  mutable std::unique_ptr<ClassInterference> Engine;
  mutable uint64_t NumPairwiseQueries = 0;

  static bool SweepEngine;
  static bool CrossCheckOracle;

  bool defDominates(RegId A, RegId B) const;
  bool liveAtDef(RegId V, const DefSite &D) const;

  /// True if the pin copy at \p S would clobber \p X's live value.
  bool pinSiteKills(const PinSite &S, RegId X) const;

  /// The paper-literal O(|A|*|B|) member-pair scan over two distinct
  /// representatives: the fallback for functions the engine cannot
  /// handle, and the cross-check oracle for those it can.
  bool pairwiseResourceInterfere(RegId RA, RegId RB) const;
};

} // namespace lao

#endif // LAO_OUTOFSSA_PINNINGCONTEXT_H
