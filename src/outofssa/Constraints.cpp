//===- Constraints.cpp - Renaming constraint collection ------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Constraints.h"

#include "support/Stats.h"

using namespace lao;

unsigned lao::collectSPConstraints(Function &F) {
  unsigned NumPinned = 0;
  for (const auto &BB : F.blocks())
    for (Instruction &I : BB->instructions()) {
      if (I.op() != Opcode::SpAdjust)
        continue;
      if (I.defPin(0) == InvalidReg) {
        I.pinDef(0, Target::SP);
        ++NumPinned;
      }
      if (I.usePin(0) == InvalidReg && !F.isPhysical(I.use(0))) {
        I.pinUse(0, Target::SP);
        ++NumPinned;
      }
    }
  LAO_STAT(constraints, sp_pins) += NumPinned;
  return NumPinned;
}

unsigned lao::collectABIConstraints(Function &F) {
  unsigned NumPinned = 0;
  auto PinDef = [&](Instruction &I, unsigned K, RegId Res) {
    if (Res != InvalidReg && I.defPin(K) == InvalidReg &&
        !F.isPhysical(I.def(K))) {
      I.pinDef(K, Res);
      ++NumPinned;
    }
  };
  auto PinUse = [&](Instruction &I, unsigned K, RegId Res) {
    if (Res != InvalidReg && I.usePin(K) == InvalidReg &&
        !F.isPhysical(I.use(K))) {
      I.pinUse(K, Res);
      ++NumPinned;
    }
  };

  for (const auto &BB : F.blocks())
    for (Instruction &I : BB->instructions()) {
      switch (I.op()) {
      case Opcode::Input:
        for (unsigned K = 0; K < I.numDefs(); ++K)
          PinDef(I, K, Target::argReg(K));
        break;
      case Opcode::Call:
        PinDef(I, 0, Target::retReg());
        for (unsigned K = 0; K < I.numUses(); ++K)
          PinUse(I, K, Target::argReg(K));
        break;
      case Opcode::Ret:
        PinUse(I, 0, Target::retReg());
        break;
      case Opcode::More:
      case Opcode::AutoAdd:
        // 2-operand ISA constraint: source and destination share a
        // resource (the destination variable's own).
        PinUse(I, 0, I.def(0));
        break;
      case Opcode::Psi:
        // Psi-conventional form: the else-value is overwritten in place
        // by the predicated definition (constraint "similar to
        // 2-operands", paper Section 5).
        PinUse(I, 2, I.def(0));
        break;
      default:
        break;
      }
    }
  LAO_STAT(constraints, abi_pins) += NumPinned;
  return NumPinned;
}
