//===- Pipeline.cpp - Out-of-SSA experiment pipelines --------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Pipeline.h"

#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/MoveStats.h"
#include "outofssa/NaiveABI.h"

#include <cassert>
#include <chrono>

using namespace lao;

PipelineConfig lao::pipelinePreset(const std::string &Name) {
  PipelineConfig C;
  C.Name = Name;
  if (Name == "Lphi+C") {
    C.PinPhi = C.Coalesce = true;
  } else if (Name == "C") {
    C.Coalesce = true;
  } else if (Name == "Sphi+C") {
    C.Sreedhar = C.Coalesce = true;
  } else if (Name == "Lphi,ABI+C") {
    C.PinABI = C.PinPhi = C.Coalesce = true;
  } else if (Name == "Sphi+LABI+C") {
    C.Sreedhar = C.PinABI = C.Coalesce = true;
  } else if (Name == "LABI+C") {
    C.PinABI = C.Coalesce = true;
  } else if (Name == "C,naiveABI+C") {
    C.NaiveABI = C.Coalesce = true;
  } else if (Name == "Lphi,ABI") {
    C.PinABI = C.PinPhi = true;
  } else if (Name == "Sphi") {
    C.Sreedhar = C.NaiveABI = true;
  } else if (Name == "LABI") {
    C.PinABI = true;
  } else {
    assert(false && "unknown pipeline preset");
  }
  return C;
}

PipelineResult lao::runPipeline(Function &F, const PipelineConfig &Config) {
  using Clock = std::chrono::steady_clock;
  PipelineResult R;
  auto Start = Clock::now();

  splitCriticalEdges(F);

  if (Config.PinSP)
    collectSPConstraints(F);
  if (Config.PinABI)
    collectABIConstraints(F);
  if (Config.Sreedhar) {
    R.SreedharInfo = convertToCSSA(F);
    pinCSSAWebs(F);
  }

  {
    CFG Cfg(F);
    DominatorTree DT(Cfg);
    Liveness LV(Cfg);
    PinningContext Ctx(F, Cfg, DT, LV, Config.Mode);
    if (Config.PinPhi) {
      LoopInfo LI(Cfg, DT);
      R.Phi = coalescePhis(F, Ctx, Cfg, LI, Config.PhiOpts);
    }
    R.Translate = translateOutOfSSA(F, Ctx, Cfg);
  }
  sequentializeParallelCopies(F);

  if (Config.NaiveABI) {
    lowerABINaively(F);
    sequentializeParallelCopies(F);
  }

  R.MovesBeforeCoalesce = countMoves(F);

  if (Config.Coalesce) {
    auto CoalStart = Clock::now();
    R.Coalescer = coalesceAggressively(F);
    R.CoalesceSeconds =
        std::chrono::duration<double>(Clock::now() - CoalStart).count();
  }

  R.NumMoves = countMoves(F);
  R.WeightedMoves = weightedMoveCount(F);
  R.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
  return R;
}
