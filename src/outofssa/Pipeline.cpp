//===- Pipeline.cpp - Out-of-SSA experiment pipelines --------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/Pipeline.h"

#include "analysis/AnalysisManager.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/MoveStats.h"
#include "outofssa/NaiveABI.h"
#include "support/Stats.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace lao;

std::optional<PipelineConfig> lao::pipelinePresetOpt(const std::string &Name) {
  PipelineConfig C;
  C.Name = Name;
  if (Name == "Lphi+C") {
    C.PinPhi = C.Coalesce = true;
  } else if (Name == "C") {
    C.Coalesce = true;
  } else if (Name == "Sphi+C") {
    C.Sreedhar = C.Coalesce = true;
  } else if (Name == "Lphi,ABI+C") {
    C.PinABI = C.PinPhi = C.Coalesce = true;
  } else if (Name == "Sphi+LABI+C") {
    C.Sreedhar = C.PinABI = C.Coalesce = true;
  } else if (Name == "LABI+C") {
    C.PinABI = C.Coalesce = true;
  } else if (Name == "C,naiveABI+C") {
    C.NaiveABI = C.Coalesce = true;
  } else if (Name == "Lphi,ABI") {
    C.PinABI = C.PinPhi = true;
  } else if (Name == "Sphi") {
    C.Sreedhar = C.NaiveABI = true;
  } else if (Name == "LABI") {
    C.PinABI = true;
  } else {
    return std::nullopt;
  }
  return C;
}

PipelineConfig lao::pipelinePreset(const std::string &Name) {
  if (std::optional<PipelineConfig> C = pipelinePresetOpt(Name))
    return *C;
  // Unconditionally fatal: an assert here compiles out of NDEBUG builds
  // and a silently-default config corrupts every downstream measurement.
  std::fprintf(stderr,
               "lao: fatal: unknown pipeline preset '%s' "
               "(see outofssa/Pipeline.h for the Table 1 names)\n",
               Name.c_str());
  std::abort();
}

PipelineResult lao::runPipeline(Function &F, const PipelineConfig &Config) {
  AnalysisManager AM(F);
  return runPipeline(F, Config, AM);
}

PipelineResult lao::runPipeline(Function &F, const PipelineConfig &Config,
                                AnalysisManager &AM) {
  using Clock = std::chrono::steady_clock;
  PipelineResult R;
  auto Start = Clock::now();
  ++LAO_STAT(pipeline, runs);
  auto CancelledAt = [&](const char *Phase) {
    if (!Config.CancelCheck || !Config.CancelCheck())
      return false;
    ++LAO_STAT(pipeline, cancellations);
    (void)Phase;
    R.Cancelled = true;
    R.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    return true;
  };
  if (CancelledAt("start"))
    return R;

  {
    ScopedTimer T(R.Timings, "split-critical-edges");
    splitCriticalEdges(F);
  }

  if (Config.PinSP || Config.PinABI) {
    ScopedTimer T(R.Timings, "constraints");
    if (Config.PinSP)
      collectSPConstraints(F);
    if (Config.PinABI)
      collectABIConstraints(F);
  }
  if (Config.Sreedhar) {
    ScopedTimer T(R.Timings, "sreedhar");
    R.SreedharInfo = convertToCSSA(F);
    pinCSSAWebs(F);
  }
  if (CancelledAt("front-phases"))
    return R;

  // One analysis manager for the rest of the pipeline: the passes above
  // add blocks and edges, everything below only rewrites instructions
  // inside existing blocks, so CFG / dominators / loop info are computed
  // once and every pass declares what else it preserved. The manager may
  // be a worker-owned one carrying caches from a previous request's
  // function — reset rebinds it to F and drops them all.
  AM.reset(F);

  {
    std::optional<ScopedTimer> Analysis(std::in_place, R.Timings,
                                        "pin-analysis");
    PinningContext Ctx(F, AM.cfg(), AM.domTree(), AM.livenessQuery(),
                       Config.Mode);
    // Ctx (and its class-interference verdict cache) holds references
    // into AM's CFG / dominators / liveness: they must stay cached for
    // Ctx's whole lifetime. The epoch pins that contract.
    uint64_t CtxEpoch = AM.epoch();
    Analysis.reset();
    if (Config.PinPhi) {
      ScopedTimer T(R.Timings, "phi-coalescing");
      R.Phi = coalescePhis(F, Ctx, AM.cfg(), AM.loopInfo(), Config.PhiOpts);
      // Phi-coalescing only merges pinning classes; nothing is stale.
      AM.invalidate(PreservedAnalyses::all());
      assert(AM.epoch() == CtxEpoch &&
             "phi-coalescing must preserve the analyses PinningContext and "
             "its interference cache were built from");
    }
    if (Config.CollectInterferenceStats)
      R.Interference = Ctx.interferenceReport();
    (void)CtxEpoch;
    {
      ScopedTimer T(R.Timings, "translate");
      R.Translate = translateOutOfSSA(F, Ctx, AM.cfg());
    }
  }
  // Translation replaced the instruction lists (blocks and branch targets
  // are untouched): anything instruction-derived is stale.
  AM.invalidate(PreservedAnalyses::cfgOnly());
  if (CancelledAt("translate"))
    return R;
  {
    ScopedTimer T(R.Timings, "sequentialize");
    sequentializeParallelCopies(F);
    AM.invalidate(PreservedAnalyses::cfgOnly());
  }

  if (Config.NaiveABI) {
    ScopedTimer T(R.Timings, "naive-abi");
    lowerABINaively(F);
    sequentializeParallelCopies(F);
    AM.invalidate(PreservedAnalyses::cfgOnly());
  }

  R.MovesBeforeCoalesce = countMoves(F);
  if (CancelledAt("sequentialize"))
    return R;

  if (Config.Coalesce) {
    ScopedTimer T(R.Timings, "coalesce");
    R.Coalescer = coalesceAggressively(F, {}, &AM);
    // The zero-rebuild coalescer maintains AM's dense liveness exactly
    // through every merge round (and, when it merged, leaves its repaired
    // interference graph cached and exact) — weightedMoveCount below and
    // any later consumer keep riding the same cache.
    assert(AM.isCached(AnalysisKind::Liveness) &&
           "coalesceAggressively must preserve the managed liveness");
    assert((R.Coalescer.NumMerges == 0 ||
            AM.isCached(AnalysisKind::Interference)) &&
           "coalesceAggressively must leave its repaired graph cached");
  }
  R.CoalesceSeconds = R.Timings.seconds("coalesce");

  R.NumMoves = countMoves(F);
  R.WeightedMoves = weightedMoveCount(F, AM);

  if (Config.RegAlloc) {
    if (CancelledAt("coalesce"))
      return R;
    ScopedTimer T(R.Timings, "regalloc");
    R.RegAlloc = allocateRegisters(F, *Config.RegAlloc);
    // Spill code rewrote instruction lists in place; blocks/edges are
    // untouched.
    AM.invalidate(PreservedAnalyses::cfgOnly());
  }

  R.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
  return R;
}
