//===- Pipeline.h - Out-of-SSA experiment pipelines -------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composition of the out-of-SSA passes into the experiment
/// configurations of the paper's Table 1. Each configuration is a preset
/// naming which passes run:
///
///   name            Sreedhar CSSA  SP  ABI  phi  NaiveABI  Coalesce
///   "Lphi+C"           -      -    x    -    x      -         x
///   "C"                -      -    x    -    -      -         x
///   "Sphi+C"           x      x    x    -    -      -         x
///   "Lphi,ABI+C"       -      -    x    x    x      -         x
///   "Sphi+LABI+C"      x      x    x    x    -      -         x
///   "LABI+C"           -      -    x    x    -      -         x
///   "C,naiveABI+C"     -      -    x    -    -      x         x
///   "Lphi,ABI"         -      -    x    x    x      -         -
///   "Sphi"             x      x    x    -    -      x         -
///   "LABI"             -      -    x    x    -      -         -
///
/// ("C,naiveABI+C" is the Table 3 column named C in the paper: naive phi
/// replacement and naive ABI lowering, followed by aggressive coalescing.)
/// The out-of-pinned-SSA translation itself runs in every configuration,
/// exactly as in Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_OUTOFSSA_PIPELINE_H
#define LAO_OUTOFSSA_PIPELINE_H

#include "outofssa/Coalescer.h"
#include "outofssa/LeungGeorge.h"
#include "outofssa/PhiCoalescing.h"
#include "outofssa/Sreedhar.h"
#include "regalloc/RegAlloc.h"
#include "support/Timer.h"

#include <functional>
#include <optional>
#include <string>

namespace lao {

class AnalysisManager;

/// Which passes a pipeline run executes (see the table above).
struct PipelineConfig {
  std::string Name = "Lphi,ABI+C";
  bool Sreedhar = false;  ///< convertToCSSA + pinCSSAWebs
  bool PinSP = true;      ///< Always on in the paper's experiments.
  bool PinABI = false;
  bool PinPhi = false;    ///< The paper's pinning-based coalescing.
  bool NaiveABI = false;
  bool Coalesce = false;
  InterferenceMode Mode = InterferenceMode::Precise;
  PhiCoalescingOptions PhiOpts;
  /// Capture PinningContext::interferenceReport() into
  /// PipelineResult::Interference after phi-coalescing (lao-opt
  /// --interference-stats). Off by default: the report walks all classes.
  bool CollectInterferenceStats = false;
  /// Cooperative cancellation hook, polled between phases. When it
  /// returns true the pipeline stops immediately and the result comes
  /// back with Cancelled set; the function is left half-transformed and
  /// must be discarded. The compile server's deadline enforcement plugs
  /// in here — an empty function (the default) is never polled.
  std::function<bool()> CancelCheck;
  /// Optional register-allocation stage after coalescing: when set, the
  /// pipeline hands the final non-SSA code to
  /// allocateRegisters(F, *RegAlloc) and reports the outcome in
  /// PipelineResult::RegAlloc. Move metrics (NumMoves, WeightedMoves)
  /// are still measured *before* allocation — they are the paper's
  /// coalescing metrics, not allocator artifacts.
  std::optional<RegAllocOptions> RegAlloc;
};

/// Returns the preset for \p Name (see header table), or std::nullopt
/// for an unknown name. Use this from anything that parses user input.
std::optional<PipelineConfig> pipelinePresetOpt(const std::string &Name);

/// Returns the preset for \p Name (see header table). Unknown names are
/// a fatal error in every build type (message to stderr, then abort) —
/// callers pass compile-time constants; user-facing code wanting a
/// recoverable failure goes through pipelinePresetOpt.
PipelineConfig pipelinePreset(const std::string &Name);

/// Phase names runPipeline reports in PipelineResult::Timings, in
/// execution order (phases a configuration skips are absent).
///
///   split-critical-edges, constraints, sreedhar, pin-analysis,
///   phi-coalescing, translate, sequentialize, naive-abi, coalesce,
///   regalloc
///
/// Outcome of one pipeline run over one function.
struct PipelineResult {
  bool Cancelled = false;       ///< CancelCheck fired; all else invalid.
  unsigned NumMoves = 0;        ///< Residual moves (Tables 2-4 metric).
  uint64_t WeightedMoves = 0;   ///< 5^depth-weighted (Table 5 metric).
  double Seconds = 0.0;         ///< Wall time of the whole pipeline.
  double CoalesceSeconds = 0.0; ///< Wall time of aggressive coalescing.
  TimerGroup Timings;           ///< Per-phase wall time (see above).
  OutOfSSAStats Translate;
  PhiCoalescingStats Phi;
  CoalescerStats Coalescer;
  SreedharStats SreedharInfo;
  unsigned MovesBeforeCoalesce = 0;
  /// Post-coalescing class-size histogram + interference-cache counters;
  /// only filled when PipelineConfig::CollectInterferenceStats is set.
  PinningContext::InterferenceReport Interference;
  /// Outcome of the optional register-allocation stage; engaged exactly
  /// when PipelineConfig::RegAlloc was set (check RegAlloc->Ok — an
  /// allocation failure is not a pipeline failure).
  std::optional<RegAllocResult> RegAlloc;
};

/// Runs the configured pipeline over \p F (mutating it from SSA to final
/// non-SSA code) and returns the measurements.
PipelineResult runPipeline(Function &F, const PipelineConfig &Config);

/// Same, but reusing the caller-owned \p AM instead of building a fresh
/// manager: the pipeline rebinds it to \p F (AnalysisManager::reset)
/// once the CFG-mutating front phases are done. This is the
/// compile-service entry point — one long-lived manager per worker,
/// reset per request, identical results to the one-shot overload.
PipelineResult runPipeline(Function &F, const PipelineConfig &Config,
                           AnalysisManager &AM);

} // namespace lao

#endif // LAO_OUTOFSSA_PIPELINE_H
