//===- NaiveABI.cpp - Post-translation ABI move insertion ---------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "outofssa/NaiveABI.h"

#include "support/Stats.h"

#include <cassert>

using namespace lao;

unsigned lao::lowerABINaively(Function &F) {
  unsigned NumMoves = 0;

  auto MovInst = [](RegId Dst, RegId Src) {
    Instruction Mv(Opcode::Mov);
    Mv.addDef(Dst);
    Mv.addUse(Src);
    return Mv;
  };

  for (const auto &BB : F.blocks()) {
    auto &Insts = BB->instructions();
    for (auto It = Insts.begin(); It != Insts.end(); ++It) {
      Instruction &I = *It;
      switch (I.op()) {
      case Opcode::Input: {
        // Parameters arrive in R0..R3; copy them into the variables the
        // body uses. Register-passed parameters only.
        auto After = std::next(It);
        for (unsigned K = 0; K < I.numDefs(); ++K) {
          RegId Arg = Target::argReg(K);
          if (Arg == InvalidReg)
            continue;
          RegId V = I.def(K);
          if (V == Arg)
            continue;
          Insts.insert(After, MovInst(V, Arg));
          ++NumMoves;
          I.setDef(K, Arg);
        }
        break;
      }
      case Opcode::Call: {
        // Arguments into R0..R3 (a parallel copy: sources may themselves
        // be argument registers of an enclosing sequence).
        Instruction Par(Opcode::ParCopy);
        for (unsigned K = 0; K < I.numUses(); ++K) {
          RegId Arg = Target::argReg(K);
          if (Arg == InvalidReg)
            continue;
          if (I.use(K) == Arg)
            continue;
          Par.addDef(Arg);
          Par.addUse(I.use(K));
          I.setUse(K, Arg);
        }
        if (Par.numDefs() != 0) {
          NumMoves += Par.numDefs();
          Insts.insert(It, std::move(Par));
        }
        // Result out of R0.
        RegId D = I.def(0);
        if (D != Target::retReg()) {
          I.setDef(0, Target::retReg());
          Insts.insert(std::next(It), MovInst(D, Target::retReg()));
          ++NumMoves;
        }
        break;
      }
      case Opcode::Ret: {
        if (I.use(0) != Target::retReg()) {
          Insts.insert(It, MovInst(Target::retReg(), I.use(0)));
          ++NumMoves;
          I.setUse(0, Target::retReg());
        }
        break;
      }
      case Opcode::More:
      case Opcode::AutoAdd:
      case Opcode::SpAdjust: {
        // 2-operand tie: destination and source must be one register.
        if (I.def(0) != I.use(0)) {
          Insts.insert(It, MovInst(I.def(0), I.use(0)));
          ++NumMoves;
          I.setUse(0, I.def(0));
        }
        break;
      }
      case Opcode::Psi: {
        // Predicated else-value overwritten in place.
        if (I.def(0) != I.use(2)) {
          Insts.insert(It, MovInst(I.def(0), I.use(2)));
          ++NumMoves;
          I.setUse(2, I.def(0));
        }
        break;
      }
      default:
        break;
      }
    }
  }
  LAO_STAT(naiveabi, moves_inserted) += NumMoves;
  return NumMoves;
}
