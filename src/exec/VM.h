//===- VM.h - Threaded-dispatch bytecode VM ---------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-machine executor for the bytecode in Bytecode.h. The dispatch
/// loop uses computed goto on GCC/Clang (define LAO_VM_FORCE_SWITCH to get
/// the portable `switch` fallback everywhere); both paths share the same
/// handler bodies, so semantics cannot drift between them.
///
/// The VM observes the same machine model as `interpret()` — dense
/// register frame with definedness tracking, SP preinitialized, sparse
/// memory with deterministic hashes for unwritten addresses, the pure
/// built-in for calls — and must satisfy `ExecResult::sameOutcome`
/// against it on every input (docs/EXEC.md). Each run tallies the
/// `exec.dyn_instrs` and `exec.dyn_moves` counters: executed bytecode
/// instructions and executed copies, the dynamic cost axis the static
/// move counts in the paper tables approximate.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_EXEC_VM_H
#define LAO_EXEC_VM_H

#include "exec/Bytecode.h"
#include "exec/Interpreter.h"

namespace lao {

/// Executes \p BF with \p Args bound to its Input instruction. \p
/// MaxSteps bounds executed bytecode instructions; note lowered copies
/// and edge stubs make the budget engine-specific relative to
/// `interpret()`.
ExecResult runBytecode(const BytecodeFunction &BF,
                       const std::vector<uint64_t> &Args,
                       uint64_t MaxSteps = 1u << 22);

/// Convenience wrapper: compile \p F and run it.
ExecResult executeVM(const Function &F, const std::vector<uint64_t> &Args,
                     uint64_t MaxSteps = 1u << 22);

} // namespace lao

#endif // LAO_EXEC_VM_H
