//===- Interpreter.h - Mini-LAI interpreter ---------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic interpreter for mini-LAI functions, in SSA form (phi and
/// psi supported, with parallel phi semantics) or after out-of-SSA
/// translation (parallel copies supported). Used as the correctness oracle:
/// every out-of-SSA algorithm must preserve the full observable trace
/// (output values, return value) for all inputs.
///
/// Calls are executed as a deterministic pure built-in (a hash of the
/// callee name and argument values), so traces are reproducible without a
/// callee body. Reads of never-written registers are reported as errors,
/// which catches translations that clobber a live value.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_EXEC_INTERPRETER_H
#define LAO_EXEC_INTERPRETER_H

#include "ir/Function.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lao {

/// How an execution ended. TimedOut (the step budget ran out) is kept
/// distinct from Error so callers can tell "translation clobbered a
/// value" from "workload too big for the budget".
enum class ExecStatus : uint8_t {
  Ok,       ///< Ran to `ret`.
  Error,    ///< Runtime error (see ExecResult::Error).
  TimedOut, ///< MaxSteps exhausted before `ret`.
};

/// Result of executing a function (tree-walk interpreter or bytecode VM).
struct ExecResult {
  ExecStatus Status = ExecStatus::Error; ///< How the run ended.
  std::string Error;          ///< Diagnostic when !ok().
  std::vector<uint64_t> Outputs; ///< Values emitted by `output`.
  uint64_t RetValue = 0;      ///< Value of `ret`.
  uint64_t Steps = 0;         ///< Instructions executed (engine-specific).
  uint64_t DynMoves = 0;      ///< Copies executed (engine-specific on
                              ///< code still containing parallel copies).

  bool ok() const { return Status == ExecStatus::Ok; }
  bool timedOut() const { return Status == ExecStatus::TimedOut; }

  bool sameObservable(const ExecResult &Other) const {
    return ok() && Other.ok() && Outputs == Other.Outputs &&
           RetValue == Other.RetValue;
  }

  /// Engine-equivalence contract (docs/EXEC.md): same status class, same
  /// output trace, same return value when both completed. A timed-out
  /// run's trace is an engine-dependent prefix (engines charge different
  /// step counts for lowered copies), so only the status is compared.
  bool sameOutcome(const ExecResult &Other) const {
    if (Status != Other.Status)
      return false;
    if (timedOut())
      return true;
    if (Outputs != Other.Outputs)
      return false;
    return !ok() || RetValue == Other.RetValue;
  }
};

/// Interprets \p F with the given arguments (bound to the entry `input`
/// instruction). \p MaxSteps bounds execution.
ExecResult interpret(const Function &F, const std::vector<uint64_t> &Args,
                     uint64_t MaxSteps = 1u << 22);

/// The deterministic built-in used for `call` instructions; exposed so
/// tests can predict call results.
uint64_t builtinCall(const std::string &Callee,
                     const std::vector<uint64_t> &Args);

/// The callee-name-dependent prefix of builtinCall's hash. It only
/// depends on the name, so the bytecode compiler caches one seed per
/// callee (BytecodeFunction::CalleeSeeds) and the VM skips the string
/// walk at call time.
uint64_t builtinCallSeed(const std::string &Callee);

/// Folds one argument into a builtinCall hash:
/// builtinCall(C, Args) == builtinCallSeed(C) mixed with each argument
/// in order. Shared by builtinCall and the VM's Call handler so the two
/// cannot drift.
inline uint64_t builtinCallMix(uint64_t H, uint64_t A) {
  H ^= A + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
  H *= 0x100000001B3ULL;
  return H;
}

} // namespace lao

#endif // LAO_EXEC_INTERPRETER_H
