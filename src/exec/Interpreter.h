//===- Interpreter.h - Mini-LAI interpreter ---------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic interpreter for mini-LAI functions, in SSA form (phi and
/// psi supported, with parallel phi semantics) or after out-of-SSA
/// translation (parallel copies supported). Used as the correctness oracle:
/// every out-of-SSA algorithm must preserve the full observable trace
/// (output values, return value) for all inputs.
///
/// Calls are executed as a deterministic pure built-in (a hash of the
/// callee name and argument values), so traces are reproducible without a
/// callee body. Reads of never-written registers are reported as errors,
/// which catches translations that clobber a live value.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_EXEC_INTERPRETER_H
#define LAO_EXEC_INTERPRETER_H

#include "ir/Function.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lao {

/// Result of interpreting a function.
struct ExecResult {
  bool Ok = false;            ///< False on runtime error (see Error).
  std::string Error;          ///< Diagnostic when !Ok.
  std::vector<uint64_t> Outputs; ///< Values emitted by `output`.
  uint64_t RetValue = 0;      ///< Value of `ret`.
  uint64_t Steps = 0;         ///< Instructions executed.

  bool sameObservable(const ExecResult &Other) const {
    return Ok && Other.Ok && Outputs == Other.Outputs &&
           RetValue == Other.RetValue;
  }
};

/// Interprets \p F with the given arguments (bound to the entry `input`
/// instruction). \p MaxSteps bounds execution.
ExecResult interpret(const Function &F, const std::vector<uint64_t> &Args,
                     uint64_t MaxSteps = 1u << 22);

/// The deterministic built-in used for `call` instructions; exposed so
/// tests can predict call results.
uint64_t builtinCall(const std::string &Callee,
                     const std::vector<uint64_t> &Args);

} // namespace lao

#endif // LAO_EXEC_INTERPRETER_H
