//===- Bytecode.h - Mini-LAI register-machine bytecode ----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat register-machine bytecode for mini-LAI functions and a
/// single-pass compiler producing it (docs/EXEC.md). The bytecode exists
/// so the VM (VM.h) can execute property-test workloads at dispatch-loop
/// speed instead of the tree-walk interpreter's pointer-chasing pace, and
/// so *dynamically executed* moves become a measurable quantity.
///
/// Compilation accepts any structurally well-formed function — SSA (phi
/// and psi), post-out-of-SSA (parallel copies), or fully lowered code:
///
///  * Virtual-register frames are dense, indexed by the function's
///    compact value numbering (`Function::numValues()` slots, plus fresh
///    temporaries appended for copy-cycle breaking).
///  * Phi groups are lowered per CFG edge: each predecessor edge gets a
///    stub that runs the phi moves as one sequentialized parallel copy
///    (reusing `sequentializeCopyPairs` from the out-of-SSA translator)
///    and jumps to the successor's first non-phi instruction. ParCopy
///    instructions are lowered in place the same way.
///  * Branch targets are resolved to instruction offsets; runtime errors
///    the interpreter discovers dynamically (entry-block phis, a missing
///    phi entry for an edge, falling off a block's end) compile to Error
///    instructions carrying the interpreter's exact message.
///
/// The equivalence contract with `interpret()` is `ExecResult::sameOutcome`:
/// identical status class, output trace, and return value on every input.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_EXEC_BYTECODE_H
#define LAO_EXEC_BYTECODE_H

#include "ir/Function.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lao {

/// Bytecode operations. Branch-free frame access: register operands are
/// direct indices into the VM frame.
enum class BcOp : uint8_t {
  Input,    ///< Bind arguments: Pool[A..A+B) = dest regs.
  Make,     ///< A = Imm.
  Mov,      ///< A = B (counted as a dynamic move).
  CheckDef, ///< Error if A is undefined (identity copies still read).
  Add,      ///< A = B + C.
  Sub,      ///< A = B - C.
  Mul,      ///< A = B * C.
  And,      ///< A = B & C.
  Or,       ///< A = B | C.
  Xor,      ///< A = B ^ C.
  Shl,      ///< A = B << (C & 63).
  Shr,      ///< A = B >> (C & 63).
  CmpLT,    ///< A = (int64)B < (int64)C.
  CmpEQ,    ///< A = B == C.
  AddImm,   ///< A = B + Imm (AddI / AutoAdd / SpAdjust).
  More,     ///< A = B | (Imm & 0xFFFF) << 16.
  Load,     ///< A = Memory[B] (hash of address when unwritten).
  Store,    ///< Memory[A] = B.
  Call,     ///< A = builtinCall(Callees[Imm], Pool[B..B+C)).
  Psi,      ///< A = B != 0 ? C : Imm (Imm holds the fourth register).
  Output,   ///< Append A to the output trace.
  Ret,      ///< Return A.
  Jump,     ///< pc = A.
  Branch,   ///< pc = (A != 0) ? B : C.
  Error,    ///< Fail with Errors[Imm] (compiled-in dynamic error).
};

/// One bytecode instruction. Fixed-size; A/B/C are register indices or
/// instruction offsets depending on Op, Imm is an immediate, a pool/table
/// index, or a fourth register.
struct BcInstr {
  BcOp Op;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  int64_t Imm = 0;
};

/// A compiled function: flat code, operand pool for variable-arity
/// instructions, and side tables for diagnostics.
struct BytecodeFunction {
  std::string Name;
  std::vector<BcInstr> Code;
  std::vector<uint32_t> Pool;       ///< Operand lists (Input dests, Call args).
  std::vector<std::string> Callees; ///< Call target names.
  std::vector<uint64_t> CalleeSeeds; ///< builtinCallSeed per callee.
  std::vector<std::string> Errors;  ///< Messages for Error instructions.
  std::vector<std::string> RegNames; ///< Frame slot names (diagnostics).
  uint32_t NumRegs = 0;   ///< Frame size: numValues() + cycle temporaries.
  uint32_t NumParams = 0; ///< Arity expected by Input.

  /// Dense map from IR instruction table slots (`Function::instrRefLimit()`
  /// entries, indexed by `Instruction::selfRef()`) to the offset of the
  /// first bytecode instruction emitted for that IR instruction, or
  /// `~0u` for instructions that produced no code (phis: their moves
  /// live in predecessor edge stubs).
  std::vector<uint32_t> InstrPc;
};

/// Compiles \p F to bytecode in one pass over its blocks.
BytecodeFunction compileToBytecode(const Function &F);

/// Human-readable listing of \p BF, one instruction per line ("pc: op
/// operands"). For tests and debugging.
std::string printBytecode(const BytecodeFunction &BF);

} // namespace lao

#endif // LAO_EXEC_BYTECODE_H
