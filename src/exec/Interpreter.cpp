//===- Interpreter.cpp - Mini-LAI interpreter ----------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/StringUtils.h"

#include <unordered_map>

using namespace lao;

uint64_t lao::builtinCallSeed(const std::string &Callee) {
  // FNV-1a over the name; arguments are mixed in afterwards.
  uint64_t H = 0xCBF29CE484222325ULL;
  for (char C : Callee) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001B3ULL;
  }
  return H;
}

uint64_t lao::builtinCall(const std::string &Callee,
                          const std::vector<uint64_t> &Args) {
  uint64_t H = builtinCallSeed(Callee);
  for (uint64_t A : Args)
    H = builtinCallMix(H, A);
  return H;
}

namespace {

/// Machine state during interpretation.
struct Machine {
  const Function &F;
  std::vector<uint64_t> Regs;
  std::vector<bool> Defined;
  std::unordered_map<uint64_t, uint64_t> Memory;
  ExecResult Result;

  explicit Machine(const Function &F)
      : F(F), Regs(F.numValues(), 0), Defined(F.numValues(), false) {
    // SP starts at a fixed frame base; all other registers start
    // undefined so that clobbered-value bugs surface as errors.
    Regs[Target::SP] = 0x100000;
    Defined[Target::SP] = true;
  }

  bool fail(const std::string &Msg) {
    if (Result.ok())
      Result.Status = ExecStatus::Error;
    if (Result.Error.empty())
      Result.Error = Msg;
    return false;
  }

  void timeout() {
    if (Result.ok()) {
      Result.Status = ExecStatus::TimedOut;
      Result.Error = "step limit exceeded";
    }
  }

  bool read(RegId R, uint64_t &Out) {
    if (!Defined[R])
      return fail("read of undefined register %" + F.valueName(R));
    Out = Regs[R];
    return true;
  }

  void write(RegId R, uint64_t V) {
    Regs[R] = V;
    Defined[R] = true;
  }
};

} // namespace

ExecResult lao::interpret(const Function &F,
                          const std::vector<uint64_t> &Args,
                          uint64_t MaxSteps) {
  Machine M(F);
  M.Result.Status = ExecStatus::Ok;

  const BasicBlock *BB = &F.entry();
  const BasicBlock *PrevBB = nullptr;
  auto It = BB->instructions().begin();

  std::vector<uint64_t> Scratch;

  while (true) {
    if (It == BB->instructions().end()) {
      M.fail("fell off the end of block " + BB->name());
      break;
    }
    if (++M.Result.Steps > MaxSteps) {
      M.timeout();
      break;
    }
    const Instruction &I = *It;

    // Phi group: evaluate all phis of the block in parallel using the
    // values at the end of the predecessor we came from.
    if (I.isPhi()) {
      Scratch.clear();
      std::vector<const Instruction *> Phis;
      for (auto PIt = It; PIt != BB->instructions().end() && PIt->isPhi();
           ++PIt)
        Phis.push_back(&*PIt);
      bool Failed = false;
      for (const Instruction *P : Phis) {
        bool FoundPred = false;
        for (unsigned K = 0; K < P->numUses(); ++K) {
          if (P->incomingBlock(K) != PrevBB)
            continue;
          uint64_t V;
          if (!M.read(P->use(K), V)) {
            Failed = true;
            break;
          }
          Scratch.push_back(V);
          FoundPred = true;
          break;
        }
        if (Failed)
          break;
        if (!FoundPred) {
          M.fail(formatStr("phi in %s has no entry for predecessor %s",
                           BB->name().c_str(),
                           PrevBB ? PrevBB->name().c_str() : "<entry>"));
          Failed = true;
          break;
        }
      }
      if (Failed)
        break;
      for (size_t K = 0; K < Phis.size(); ++K)
        M.write(Phis[K]->def(0), Scratch[K]);
      for (size_t K = 0; K < Phis.size(); ++K)
        ++It;
      M.Result.Steps += Phis.size() - 1;
      continue;
    }

    bool Advance = true;
    switch (I.op()) {
    case Opcode::Input: {
      if (Args.size() != I.numDefs()) {
        M.fail(formatStr("input expects %u arguments, got %zu", I.numDefs(),
                         Args.size()));
        break;
      }
      for (unsigned K = 0; K < I.numDefs(); ++K)
        M.write(I.def(K), Args[K]);
      break;
    }
    case Opcode::Make:
      M.write(I.def(0), static_cast<uint64_t>(I.imm()));
      break;
    case Opcode::Mov: {
      uint64_t V;
      if (M.read(I.use(0), V)) {
        M.write(I.def(0), V);
        ++M.Result.DynMoves;
      }
      break;
    }
    case Opcode::ParCopy: {
      Scratch.clear();
      bool ReadOk = true;
      for (RegId U : I.uses()) {
        uint64_t V;
        ReadOk &= M.read(U, V);
        Scratch.push_back(V);
      }
      if (!ReadOk)
        break;
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        M.write(I.def(K), Scratch[K]);
        if (I.def(K) != I.use(K))
          ++M.Result.DynMoves;
      }
      break;
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpLT:
    case Opcode::CmpEQ: {
      uint64_t A, B;
      if (!M.read(I.use(0), A) || !M.read(I.use(1), B))
        break;
      uint64_t R = 0;
      switch (I.op()) {
      case Opcode::Add: R = A + B; break;
      case Opcode::Sub: R = A - B; break;
      case Opcode::Mul: R = A * B; break;
      case Opcode::And: R = A & B; break;
      case Opcode::Or:  R = A | B; break;
      case Opcode::Xor: R = A ^ B; break;
      case Opcode::Shl: R = A << (B & 63); break;
      case Opcode::Shr: R = A >> (B & 63); break;
      case Opcode::CmpLT:
        R = static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0;
        break;
      case Opcode::CmpEQ: R = A == B ? 1 : 0; break;
      default: break;
      }
      M.write(I.def(0), R);
      break;
    }
    case Opcode::AddI:
    case Opcode::AutoAdd:
    case Opcode::SpAdjust: {
      uint64_t A;
      if (M.read(I.use(0), A))
        M.write(I.def(0), A + static_cast<uint64_t>(I.imm()));
      break;
    }
    case Opcode::More: {
      uint64_t A;
      if (M.read(I.use(0), A))
        M.write(I.def(0),
                A | (static_cast<uint64_t>(I.imm()) & 0xFFFF) << 16);
      break;
    }
    case Opcode::Load: {
      uint64_t Addr;
      if (!M.read(I.use(0), Addr))
        break;
      auto Found = M.Memory.find(Addr);
      // Unwritten memory reads as a deterministic address hash, so load
      // results are stable without requiring initialized heaps.
      uint64_t V = Found != M.Memory.end()
                       ? Found->second
                       : (Addr * 0x9E3779B97F4A7C15ULL) ^ 0xA5A5A5A5ULL;
      M.write(I.def(0), V);
      break;
    }
    case Opcode::Store: {
      uint64_t Addr, V;
      if (M.read(I.use(0), Addr) && M.read(I.use(1), V))
        M.Memory[Addr] = V;
      break;
    }
    case Opcode::Call: {
      Scratch.clear();
      bool ReadOk = true;
      for (RegId U : I.uses()) {
        uint64_t V;
        ReadOk &= M.read(U, V);
        Scratch.push_back(V);
      }
      if (ReadOk)
        M.write(I.def(0), builtinCall(I.callee(), Scratch));
      break;
    }
    case Opcode::Psi: {
      uint64_t P, A, B;
      if (M.read(I.use(0), P) && M.read(I.use(1), A) && M.read(I.use(2), B))
        M.write(I.def(0), P != 0 ? A : B);
      break;
    }
    case Opcode::Output: {
      uint64_t V;
      if (M.read(I.use(0), V))
        M.Result.Outputs.push_back(V);
      break;
    }
    case Opcode::Ret: {
      uint64_t V;
      if (M.read(I.use(0), V))
        M.Result.RetValue = V;
      return M.Result;
    }
    case Opcode::Jump:
      PrevBB = BB;
      BB = I.target(0);
      It = BB->instructions().begin();
      Advance = false;
      break;
    case Opcode::Branch: {
      uint64_t C;
      if (!M.read(I.use(0), C))
        break;
      PrevBB = BB;
      BB = C != 0 ? I.target(0) : I.target(1);
      It = BB->instructions().begin();
      Advance = false;
      break;
    }
    case Opcode::Phi:
      break; // Handled above.
    }

    if (!M.Result.ok())
      break;
    if (Advance)
      ++It;
  }
  return M.Result;
}
