//===- VM.cpp - Threaded-dispatch bytecode VM ----------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/VM.h"

#include "ir/Target.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace lao;

// Computed goto keeps one indirect jump per instruction at each handler's
// tail (separate branch-predictor slots per opcode); the switch fallback
// funnels every dispatch through a single jump. Handler bodies are shared
// between the two via VM_CASE / VM_NEXT so they cannot diverge.
#if (defined(__GNUC__) || defined(__clang__)) && !defined(LAO_VM_FORCE_SWITCH)
#define LAO_VM_COMPUTED_GOTO 1
#else
#define LAO_VM_COMPUTED_GOTO 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define LAO_VM_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define LAO_VM_UNLIKELY(X) (X)
#endif

namespace {

/// Per-thread reusable frame storage. Allocating (and for large frames,
/// mmap-ing plus page-faulting) fresh Regs/Defined vectors every run
/// costs as much as executing a mid-sized function, so the frame
/// persists across runs and definedness is an epoch match instead of a
/// zeroed byte array: bumping the epoch undefines every slot in O(1).
/// thread_local keeps concurrent server workers independent.
struct alignas(16) VMSlot {
  uint64_t Val;
  uint32_t Epoch;
};

struct VMScratch {
  std::vector<VMSlot> Frame;
  uint32_t Epoch = 0;
};
thread_local VMScratch Scratch;

/// Cold error path for undefined-register reads. Kept out of line so the
/// hot handlers carry only a compare and a jump, not string assembly.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((cold, noinline))
#endif
void failUndef(ExecResult &R, const BytecodeFunction &BF, uint32_t Reg) {
  if (R.ok())
    R.Status = ExecStatus::Error;
  if (R.Error.empty())
    R.Error = "read of undefined register %" + BF.RegNames[Reg];
}

} // namespace

ExecResult lao::runBytecode(const BytecodeFunction &BF,
                            const std::vector<uint64_t> &Args,
                            uint64_t MaxSteps) {
  ExecResult R;
  R.Status = ExecStatus::Ok;

  VMScratch &S = Scratch;
  if (S.Frame.size() < BF.NumRegs)
    S.Frame.resize(BF.NumRegs, VMSlot{0, 0});
  if (++S.Epoch == 0) { // Epoch wrap: stale slots could look defined.
    for (VMSlot &SL : S.Frame)
      SL.Epoch = 0;
    S.Epoch = 1;
  }
  VMSlot *const Frame = S.Frame.data();
  const uint32_t Epoch = S.Epoch;
  // Same frame model as the interpreter: SP starts at a fixed frame base,
  // everything else starts undefined so clobbered-value bugs surface.
  if (Target::SP < BF.NumRegs)
    Frame[Target::SP] = VMSlot{0x100000, Epoch};
  std::unordered_map<uint64_t, uint64_t> Memory;

  const BcInstr *Code = BF.Code.data();
  const BcInstr *IP = Code;
  uint64_t Steps = 0;
  uint64_t DynMoves = 0;

  auto Fail = [&](std::string Msg) {
    if (R.ok())
      R.Status = ExecStatus::Error;
    if (R.Error.empty())
      R.Error = std::move(Msg);
  };

// The current instruction; IP moves by pointer so fetch needs no index
// scaling.
#define VM_I (*IP)
// Reads register RegExpr into Var, failing like the interpreter on a
// never-written slot.
#define VM_READ(RegExpr, Var)                                                \
  do {                                                                       \
    uint32_t R_ = (RegExpr);                                                 \
    if (LAO_VM_UNLIKELY(Frame[R_].Epoch != Epoch)) {                         \
      failUndef(R, BF, R_);                                                  \
      goto vm_done;                                                          \
    }                                                                        \
    (Var) = Frame[R_].Val;                                                   \
  } while (0)
#define VM_WRITE(RegExpr, Val)                                               \
  do {                                                                       \
    uint32_t W_ = (RegExpr);                                                 \
    Frame[W_] = VMSlot{static_cast<uint64_t>(Val), Epoch};                                        \
  } while (0)

#if LAO_VM_COMPUTED_GOTO
  // Must match the BcOp declaration order exactly.
  static const void *Table[] = {
      &&vm_Input, &&vm_Make,   &&vm_Mov,   &&vm_CheckDef, &&vm_Add,
      &&vm_Sub,   &&vm_Mul,    &&vm_And,   &&vm_Or,       &&vm_Xor,
      &&vm_Shl,   &&vm_Shr,    &&vm_CmpLT, &&vm_CmpEQ,    &&vm_AddImm,
      &&vm_More,  &&vm_Load,   &&vm_Store, &&vm_Call,     &&vm_Psi,
      &&vm_Output, &&vm_Ret,   &&vm_Jump,  &&vm_Branch,   &&vm_Error};
#define VM_CASE(Name) vm_##Name
#define VM_NEXT()                                                            \
  do {                                                                       \
    if (LAO_VM_UNLIKELY(++Steps > MaxSteps))                                 \
      goto vm_timeout;                                                       \
    goto *Table[static_cast<unsigned>(VM_I.Op)];                             \
  } while (0)

  VM_NEXT();
#else
#define VM_CASE(Name) case BcOp::Name
#define VM_NEXT() continue
  for (;;) {
    if (LAO_VM_UNLIKELY(++Steps > MaxSteps))
      goto vm_timeout;
    switch (VM_I.Op) {
#endif

  VM_CASE(Input) : {
    if (VM_I.B != Args.size()) {
      Fail(formatStr("input expects %u arguments, got %zu", VM_I.B,
                     Args.size()));
      goto vm_done;
    }
    for (uint32_t K = 0; K < VM_I.B; ++K)
      VM_WRITE(BF.Pool[VM_I.A + K], Args[K]);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Make) : {
    VM_WRITE(VM_I.A, static_cast<uint64_t>(VM_I.Imm));
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Mov) : {
    uint64_t V;
    VM_READ(VM_I.B, V);
    VM_WRITE(VM_I.A, V);
    ++DynMoves;
    ++IP;
    VM_NEXT();
  }
  VM_CASE(CheckDef) : {
    uint64_t V;
    VM_READ(VM_I.A, V);
    (void)V;
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Add) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A + B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Sub) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A - B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Mul) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A * B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(And) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A & B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Or) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A | B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Xor) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A ^ B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Shl) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A << (B & 63));
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Shr) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A >> (B & 63));
    ++IP;
    VM_NEXT();
  }
  VM_CASE(CmpLT) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A,
             static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(CmpEQ) : {
    uint64_t A, B;
    VM_READ(VM_I.B, A);
    VM_READ(VM_I.C, B);
    VM_WRITE(VM_I.A, A == B ? 1 : 0);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(AddImm) : {
    uint64_t A;
    VM_READ(VM_I.B, A);
    VM_WRITE(VM_I.A, A + static_cast<uint64_t>(VM_I.Imm));
    ++IP;
    VM_NEXT();
  }
  VM_CASE(More) : {
    uint64_t A;
    VM_READ(VM_I.B, A);
    VM_WRITE(VM_I.A,
             A | (static_cast<uint64_t>(VM_I.Imm) & 0xFFFF) << 16);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Load) : {
    uint64_t Addr;
    VM_READ(VM_I.B, Addr);
    auto Found = Memory.find(Addr);
    // Unwritten memory reads as the interpreter's deterministic address
    // hash, so traces stay stable without initialized heaps.
    uint64_t V = Found != Memory.end()
                     ? Found->second
                     : (Addr * 0x9E3779B97F4A7C15ULL) ^ 0xA5A5A5A5ULL;
    VM_WRITE(VM_I.A, V);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Store) : {
    uint64_t Addr, V;
    VM_READ(VM_I.A, Addr);
    VM_READ(VM_I.B, V);
    Memory[Addr] = V;
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Call) : {
    // The callee-name hash prefix was computed at compile time; only the
    // arguments get mixed here (same fold as builtinCall).
    uint64_t H = BF.CalleeSeeds[static_cast<size_t>(VM_I.Imm)];
    for (uint32_t K = 0; K < VM_I.C; ++K) {
      uint64_t V;
      VM_READ(BF.Pool[VM_I.B + K], V);
      H = builtinCallMix(H, V);
    }
    VM_WRITE(VM_I.A, H);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Psi) : {
    uint64_t P, A, B;
    VM_READ(VM_I.B, P);
    VM_READ(VM_I.C, A);
    VM_READ(static_cast<uint32_t>(VM_I.Imm), B);
    VM_WRITE(VM_I.A, P != 0 ? A : B);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Output) : {
    uint64_t V;
    VM_READ(VM_I.A, V);
    R.Outputs.push_back(V);
    ++IP;
    VM_NEXT();
  }
  VM_CASE(Ret) : {
    uint64_t V;
    VM_READ(VM_I.A, V);
    R.RetValue = V;
    goto vm_done;
  }
  VM_CASE(Jump) : {
    IP = Code + VM_I.A;
    VM_NEXT();
  }
  VM_CASE(Branch) : {
    uint64_t C;
    VM_READ(VM_I.A, C);
    IP = Code + (C != 0 ? VM_I.B : VM_I.C);
    VM_NEXT();
  }
  VM_CASE(Error) : {
    Fail(BF.Errors[static_cast<size_t>(VM_I.Imm)]);
    goto vm_done;
  }

#if !LAO_VM_COMPUTED_GOTO
    }
  }
#endif

vm_timeout:
  // The interpreter discovers control-flow errors ("fell off the end of
  // block ...") positionally, before charging a step — so a compiled-in
  // Error outranks the budget expiring at the same instruction.
  if (VM_I.Op == BcOp::Error) {
    Fail(BF.Errors[static_cast<size_t>(VM_I.Imm)]);
    goto vm_done;
  }
  if (R.ok()) {
    R.Status = ExecStatus::TimedOut;
    R.Error = "step limit exceeded";
  }

vm_done:
  R.Steps = Steps;
  R.DynMoves = DynMoves;
  LAO_STAT(exec, vm_runs) += 1;
  LAO_STAT(exec, dyn_instrs) += Steps;
  LAO_STAT(exec, dyn_moves) += DynMoves;
  return R;

#undef VM_I
#undef VM_READ
#undef VM_WRITE
#undef VM_CASE
#undef VM_NEXT
}

ExecResult lao::executeVM(const Function &F, const std::vector<uint64_t> &Args,
                          uint64_t MaxSteps) {
  return runBytecode(compileToBytecode(F), Args, MaxSteps);
}
