//===- Bytecode.cpp - Mini-LAI bytecode compiler -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Bytecode.h"

#include "exec/Interpreter.h"
#include "outofssa/LeungGeorge.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace lao;

namespace {

/// Which BcInstr field a pending branch-target fixup patches.
enum class PatchField : uint8_t { A, B, C };

struct Compiler {
  const Function &F;
  BytecodeFunction BF;

  /// Offset of each block's first non-phi instruction, by block id.
  std::vector<uint32_t> BlockBodyPc;
  struct Fixup {
    uint32_t Pc;
    PatchField Field;
    uint32_t BlockId;
  };
  std::vector<Fixup> Fixups;

  explicit Compiler(const Function &F) : F(F) {
    BF.Name = F.name();
    BF.NumRegs = static_cast<uint32_t>(F.numValues());
    BF.NumParams = F.numParams();
    BF.RegNames.reserve(BF.NumRegs);
    for (RegId R = 0; R < BF.NumRegs; ++R)
      BF.RegNames.push_back(F.valueName(R));
    BF.InstrPc.assign(F.instrRefLimit(), ~0u);
    BlockBodyPc.assign(F.numBlocks(), ~0u);
  }

  uint32_t pc() const { return static_cast<uint32_t>(BF.Code.size()); }

  uint32_t emit(BcOp Op, uint32_t A = 0, uint32_t B = 0, uint32_t C = 0,
                int64_t Imm = 0) {
    BF.Code.push_back({Op, A, B, C, Imm});
    return pc() - 1;
  }

  void addFixup(uint32_t At, PatchField Field, const BasicBlock *Target) {
    Fixups.push_back({At, Field, Target->id()});
  }

  /// Fresh frame slot for breaking copy cycles; never read before its
  /// write, so the name is diagnostic-only.
  RegId makeTemp() {
    RegId Tmp = BF.NumRegs++;
    BF.RegNames.push_back("bc.swap" + std::to_string(Tmp));
    return Tmp;
  }

  uint32_t internError(std::string Msg) {
    for (uint32_t K = 0; K < BF.Errors.size(); ++K)
      if (BF.Errors[K] == Msg)
        return K;
    BF.Errors.push_back(std::move(Msg));
    return static_cast<uint32_t>(BF.Errors.size() - 1);
  }

  uint32_t internCallee(const std::string &Name) {
    for (uint32_t K = 0; K < BF.Callees.size(); ++K)
      if (BF.Callees[K] == Name)
        return K;
    BF.Callees.push_back(Name);
    BF.CalleeSeeds.push_back(builtinCallSeed(Name));
    return static_cast<uint32_t>(BF.Callees.size() - 1);
  }

  /// Emits one parallel copy: CheckDef for identity entries (the
  /// interpreter still reads them, so an undefined source must keep
  /// failing), then the non-identity entries sequentialized through the
  /// same algorithm the IR lowering uses.
  void emitCopies(const std::vector<CopyPair> &Identity,
                  std::vector<CopyPair> Pairs) {
    for (const auto &[Dst, Src] : Identity) {
      (void)Dst;
      emit(BcOp::CheckDef, Src);
    }
    std::vector<CopyPair> Seq;
    sequentializeCopyPairs(std::move(Pairs), [this] { return makeTemp(); },
                           Seq);
    for (const auto &[Dst, Src] : Seq)
      emit(BcOp::Mov, Dst, Src);
  }

  /// Lowers the leading phis of \p Succ for the CFG edge \p Pred -> \p
  /// Succ. An edge with no matching phi entry compiles to the
  /// interpreter's dynamic error, preceded by CheckDefs for the sources
  /// the interpreter would have read first.
  void emitPhiMoves(const BasicBlock *Pred, const BasicBlock *Succ) {
    std::vector<CopyPair> Identity, Pairs;
    std::vector<RegId> ReadOrder;
    for (const Instruction &P : Succ->instructions()) {
      if (!P.isPhi())
        break;
      bool Found = false;
      for (unsigned K = 0; K < P.numUses(); ++K) {
        if (P.incomingBlock(K) != Pred)
          continue;
        RegId Src = P.use(K), Dst = P.def(0);
        ReadOrder.push_back(Src);
        if (Dst == Src)
          Identity.push_back({Dst, Src});
        else
          Pairs.push_back({Dst, Src});
        Found = true;
        break;
      }
      if (!Found) {
        for (RegId Src : ReadOrder)
          emit(BcOp::CheckDef, Src);
        emit(BcOp::Error, 0, 0, 0,
             internError(formatStr("phi in %s has no entry for predecessor %s",
                                   Succ->name().c_str(),
                                   Pred->name().c_str())));
        return;
      }
    }
    emitCopies(Identity, std::move(Pairs));
  }

  /// True when \p BB starts with a phi (its body pc then differs from its
  /// edge-entry semantics).
  static bool hasLeadingPhi(const BasicBlock *BB) {
    return !BB->instructions().empty() &&
           BB->instructions().begin()->isPhi();
  }

  /// Compiles the edge \p Pred -> \p Succ of the terminator at \p At,
  /// patching \p Field to the right entry pc. Phi-free edges jump
  /// straight to the successor body; edges with phis get an inline stub
  /// (copies + Jump).
  void wireEdge(uint32_t At, PatchField Field, const BasicBlock *Pred,
                const BasicBlock *Succ) {
    if (!hasLeadingPhi(Succ)) {
      addFixup(At, Field, Succ);
      return;
    }
    uint32_t Stub = pc();
    emitPhiMoves(Pred, Succ);
    addFixup(emit(BcOp::Jump), PatchField::A, Succ);
    patch(At, Field, Stub);
  }

  void patch(uint32_t At, PatchField Field, uint32_t Value) {
    BcInstr &I = BF.Code[At];
    (Field == PatchField::A ? I.A : Field == PatchField::B ? I.B : I.C) =
        Value;
  }

  void compileInstr(const BasicBlock *BB, const Instruction &I) {
    uint32_t Start = pc();
    switch (I.op()) {
    case Opcode::Phi:
      // Leading phis were skipped by the caller; a phi below the leading
      // group is structurally malformed (verifyStructure rejects it), so
      // any execution reaching one is an error.
      emit(BcOp::Error, 0, 0, 0,
           internError("phi below the leading phi group in block " +
                       BB->name()));
      break;
    case Opcode::Input: {
      uint32_t Off = static_cast<uint32_t>(BF.Pool.size());
      for (unsigned K = 0; K < I.numDefs(); ++K)
        BF.Pool.push_back(I.def(K));
      emit(BcOp::Input, Off, I.numDefs());
      break;
    }
    case Opcode::Make:
      emit(BcOp::Make, I.def(0), 0, 0, I.imm());
      break;
    case Opcode::Mov:
      emit(BcOp::Mov, I.def(0), I.use(0));
      break;
    case Opcode::ParCopy: {
      std::vector<CopyPair> Identity, Pairs;
      for (unsigned K = 0; K < I.numDefs(); ++K) {
        if (I.def(K) == I.use(K))
          Identity.push_back({I.def(K), I.use(K)});
        else
          Pairs.push_back({I.def(K), I.use(K)});
      }
      emitCopies(Identity, std::move(Pairs));
      break;
    }
    case Opcode::Add:
      emit(BcOp::Add, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::Sub:
      emit(BcOp::Sub, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::Mul:
      emit(BcOp::Mul, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::And:
      emit(BcOp::And, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::Or:
      emit(BcOp::Or, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::Xor:
      emit(BcOp::Xor, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::Shl:
      emit(BcOp::Shl, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::Shr:
      emit(BcOp::Shr, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::CmpLT:
      emit(BcOp::CmpLT, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::CmpEQ:
      emit(BcOp::CmpEQ, I.def(0), I.use(0), I.use(1));
      break;
    case Opcode::AddI:
    case Opcode::AutoAdd:
    case Opcode::SpAdjust:
      emit(BcOp::AddImm, I.def(0), I.use(0), 0, I.imm());
      break;
    case Opcode::More:
      emit(BcOp::More, I.def(0), I.use(0), 0, I.imm());
      break;
    case Opcode::Load:
      emit(BcOp::Load, I.def(0), I.use(0));
      break;
    case Opcode::Store:
      emit(BcOp::Store, I.use(0), I.use(1));
      break;
    case Opcode::Call: {
      uint32_t Off = static_cast<uint32_t>(BF.Pool.size());
      for (RegId U : I.uses())
        BF.Pool.push_back(U);
      emit(BcOp::Call, I.def(0), Off, I.numUses(), internCallee(I.callee()));
      break;
    }
    case Opcode::Psi:
      emit(BcOp::Psi, I.def(0), I.use(0), I.use(1),
           static_cast<int64_t>(I.use(2)));
      break;
    case Opcode::Output:
      emit(BcOp::Output, I.use(0));
      break;
    case Opcode::Ret:
      emit(BcOp::Ret, I.use(0));
      break;
    case Opcode::Jump:
      emitPhiMoves(BB, I.target(0));
      addFixup(emit(BcOp::Jump), PatchField::A, I.target(0));
      break;
    case Opcode::Branch: {
      const BasicBlock *T = I.target(0), *E = I.target(1);
      uint32_t Br = emit(BcOp::Branch, I.use(0));
      if (T == E && hasLeadingPhi(T)) {
        // Degenerate two-way branch to one block: a single shared stub
        // keeps the phi copies from being emitted twice.
        uint32_t Stub = pc();
        emitPhiMoves(BB, T);
        addFixup(emit(BcOp::Jump), PatchField::A, T);
        patch(Br, PatchField::B, Stub);
        patch(Br, PatchField::C, Stub);
        break;
      }
      wireEdge(Br, PatchField::B, BB, T);
      wireEdge(Br, PatchField::C, BB, E);
      break;
    }
    }
    if (pc() != Start)
      BF.InstrPc[I.selfRef()] = Start;
  }

  BytecodeFunction run() {
    // Initial entry into a block whose leading instruction is a phi is a
    // dynamic error in the interpreter (there is no predecessor edge to
    // select an incoming value); keep the same behavior from pc 0. Back
    // edges into the entry block go through their own stubs.
    if (hasLeadingPhi(&F.entry()))
      emit(BcOp::Error, 0, 0, 0,
           internError(formatStr("phi in %s has no entry for predecessor %s",
                                 F.entry().name().c_str(), "<entry>")));

    for (const auto &BBPtr : F.blocks()) {
      const BasicBlock *BB = BBPtr.get();
      auto It = BB->instructions().begin();
      while (It != BB->instructions().end() && It->isPhi())
        ++It;
      BlockBodyPc[BB->id()] = pc();
      for (; It != BB->instructions().end(); ++It)
        compileInstr(BB, *It);
      // Control that runs past the last instruction (empty body or a
      // missing terminator) fails exactly like the interpreter.
      if (!BB->hasTerminator())
        emit(BcOp::Error, 0, 0, 0,
             internError("fell off the end of block " + BB->name()));
    }

    for (const Fixup &Fx : Fixups) {
      assert(BlockBodyPc[Fx.BlockId] != ~0u && "unresolved branch target");
      patch(Fx.Pc, Fx.Field, BlockBodyPc[Fx.BlockId]);
    }
    return std::move(BF);
  }
};

} // namespace

BytecodeFunction lao::compileToBytecode(const Function &F) {
  Compiler C(F);
  BytecodeFunction BF = C.run();
  LAO_STAT(exec, bytecode_compiles) += 1;
  LAO_STAT(exec, bytecode_instrs) += BF.Code.size();
  return BF;
}

std::string lao::printBytecode(const BytecodeFunction &BF) {
  static const char *Names[] = {
      "input", "make",  "mov",  "checkdef", "add",    "sub",  "mul",
      "and",   "or",    "xor",  "shl",      "shr",    "cmplt", "cmpeq",
      "addimm", "more", "load", "store",    "call",   "psi",  "output",
      "ret",   "jump",  "branch", "error"};
  std::string Out = "func @" + BF.Name + " (" + std::to_string(BF.NumRegs) +
                    " regs, " + std::to_string(BF.NumParams) + " params)\n";
  for (uint32_t P = 0; P < BF.Code.size(); ++P) {
    const BcInstr &I = BF.Code[P];
    Out += formatStr("%4u: %-8s", P, Names[static_cast<unsigned>(I.Op)]);
    switch (I.Op) {
    case BcOp::Input:
      for (uint32_t K = 0; K < I.B; ++K)
        Out += " r" + std::to_string(BF.Pool[I.A + K]);
      break;
    case BcOp::Make:
      Out += formatStr(" r%u, %lld", I.A, static_cast<long long>(I.Imm));
      break;
    case BcOp::Mov:
    case BcOp::Load:
      Out += formatStr(" r%u, r%u", I.A, I.B);
      break;
    case BcOp::CheckDef:
    case BcOp::Output:
    case BcOp::Ret:
      Out += formatStr(" r%u", I.A);
      break;
    case BcOp::Store:
      Out += formatStr(" [r%u], r%u", I.A, I.B);
      break;
    case BcOp::AddImm:
    case BcOp::More:
      Out += formatStr(" r%u, r%u, %lld", I.A, I.B,
                       static_cast<long long>(I.Imm));
      break;
    case BcOp::Call: {
      Out += formatStr(" r%u, @%s(", I.A,
                       BF.Callees[static_cast<size_t>(I.Imm)].c_str());
      for (uint32_t K = 0; K < I.C; ++K)
        Out += (K ? ", r" : "r") + std::to_string(BF.Pool[I.B + K]);
      Out += ")";
      break;
    }
    case BcOp::Psi:
      Out += formatStr(" r%u, r%u ? r%u : r%u", I.A, I.B, I.C,
                       static_cast<uint32_t>(I.Imm));
      break;
    case BcOp::Jump:
      Out += formatStr(" %u", I.A);
      break;
    case BcOp::Branch:
      Out += formatStr(" r%u, %u, %u", I.A, I.B, I.C);
      break;
    case BcOp::Error:
      Out += " \"" + BF.Errors[static_cast<size_t>(I.Imm)] + "\"";
      break;
    default:
      Out += formatStr(" r%u, r%u, r%u", I.A, I.B, I.C);
      break;
    }
    Out += "\n";
  }
  return Out;
}
