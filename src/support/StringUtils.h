//===- StringUtils.h - Small string helpers ---------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and a few parsing helpers shared by
/// the IR printer/parser and the bench table writers.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_STRINGUTILS_H
#define LAO_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <string>
#include <vector>

namespace lao {

/// Returns a std::string produced by printf-style formatting.
std::string formatStr(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p Text on \p Sep, dropping empty pieces.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Returns \p Text with leading/trailing whitespace removed.
std::string trimString(const std::string &Text);

} // namespace lao

#endif // LAO_SUPPORT_STRINGUTILS_H
