//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a FIFO task queue, plus the
/// parallelFor shape the bench suite runner needs: N independent items,
/// work-stealing via an atomic index, caller blocks until every item is
/// done. Determinism note: parallelFor only parallelizes the *execution*
/// of items — any reduction over their results must happen afterwards in
/// index order (see bench/BenchUtil.h's runOnSuite), which makes the
/// parallel path's output bit-identical to the serial one.
///
/// A pool of one thread is legal and degrades to serial execution; the
/// pool never spawns more workers than requested even when parallelFor
/// is called with more items.
///
/// Exception safety: a task that throws does NOT take the process down
/// (a long-running daemon shares this pool with batch tools). The worker
/// loop captures the first escaped exception as a std::exception_ptr,
/// keeps the pool serving, and wait() rethrows it in the waiting thread.
/// parallelFor likewise rethrows the first exception thrown by Fn at the
/// call site, after all lanes have stopped: once an item throws, no new
/// items are claimed (items already running complete normally), so a
/// throwing sweep terminates promptly instead of deadlocking the
/// completion latch. An exception still pending when the pool is
/// destroyed is dropped (destructors cannot throw).
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_THREADPOOL_H
#define LAO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lao {

class ThreadPool {
public:
  /// Worker count for "use the machine": hardware concurrency, at least 1.
  static unsigned defaultConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  explicit ThreadPool(unsigned NumThreads = defaultConcurrency()) {
    if (NumThreads == 0)
      NumThreads = 1;
    Workers.reserve(NumThreads);
    for (unsigned K = 0; K < NumThreads; ++K)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> G(M);
      Stop = true;
    }
    WakeWorker.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task for execution on some worker.
  void async(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> G(M);
      Queue.push_back(std::move(Task));
    }
    WakeWorker.notify_one();
  }

  /// Blocks until the queue is empty and no task is running. If any task
  /// threw since the last wait(), rethrows the first captured exception
  /// (later ones are dropped) after the pool has drained.
  void wait() {
    std::unique_lock<std::mutex> L(M);
    Idle.wait(L, [this] { return Queue.empty() && Running == 0; });
    if (FirstError) {
      std::exception_ptr E = std::exchange(FirstError, nullptr);
      L.unlock();
      std::rethrow_exception(E);
    }
  }

  /// Runs Fn(0) .. Fn(N-1), each exactly once, on the pool's workers;
  /// returns when all are done. Items are claimed in ascending order but
  /// may complete in any order — reduce results by index afterwards.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
    if (N == 0)
      return;
    std::atomic<size_t> Next{0};
    size_t Lanes = std::min<size_t>(numThreads(), N);
    std::atomic<size_t> Remaining{Lanes};
    std::atomic<bool> Abort{false};
    std::mutex DoneM;
    std::condition_variable Done;
    std::exception_ptr ItemError; // Guarded by DoneM.
    for (size_t K = 0; K < Lanes; ++K)
      async([&] {
        for (size_t I;
             !Abort.load(std::memory_order_relaxed) &&
             (I = Next.fetch_add(1, std::memory_order_relaxed)) < N;) {
          try {
            Fn(I);
          } catch (...) {
            Abort.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> G(DoneM);
            if (!ItemError)
              ItemError = std::current_exception();
          }
        }
        if (Remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> G(DoneM);
          Done.notify_all();
        }
      });
    std::unique_lock<std::mutex> L(DoneM);
    Done.wait(L, [&] { return Remaining.load() == 0; });
    if (ItemError) {
      std::exception_ptr E = ItemError;
      L.unlock();
      std::rethrow_exception(E);
    }
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> L(M);
        WakeWorker.wait(L, [this] { return Stop || !Queue.empty(); });
        if (Stop && Queue.empty())
          return;
        Task = std::move(Queue.front());
        Queue.pop_front();
        ++Running;
      }
      try {
        Task();
      } catch (...) {
        std::lock_guard<std::mutex> G(M);
        if (!FirstError)
          FirstError = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> G(M);
        --Running;
        if (Queue.empty() && Running == 0)
          Idle.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex M;
  std::condition_variable WakeWorker;
  std::condition_variable Idle;
  unsigned Running = 0;
  bool Stop = false;
  std::exception_ptr FirstError; ///< First task exception; guarded by M.
};

} // namespace lao

#endif // LAO_SUPPORT_THREADPOOL_H
