//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a FIFO task queue, plus the
/// parallelFor shape the bench suite runner needs: N independent items,
/// work-stealing via an atomic index, caller blocks until every item is
/// done. Determinism note: parallelFor only parallelizes the *execution*
/// of items — any reduction over their results must happen afterwards in
/// index order (see bench/BenchUtil.h's runOnSuite), which makes the
/// parallel path's output bit-identical to the serial one.
///
/// A pool of one thread is legal and degrades to serial execution; the
/// pool never spawns more workers than requested even when parallelFor
/// is called with more items.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_THREADPOOL_H
#define LAO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lao {

class ThreadPool {
public:
  /// Worker count for "use the machine": hardware concurrency, at least 1.
  static unsigned defaultConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  explicit ThreadPool(unsigned NumThreads = defaultConcurrency()) {
    if (NumThreads == 0)
      NumThreads = 1;
    Workers.reserve(NumThreads);
    for (unsigned K = 0; K < NumThreads; ++K)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> G(M);
      Stop = true;
    }
    WakeWorker.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task for execution on some worker.
  void async(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> G(M);
      Queue.push_back(std::move(Task));
    }
    WakeWorker.notify_one();
  }

  /// Blocks until the queue is empty and no task is running.
  void wait() {
    std::unique_lock<std::mutex> L(M);
    Idle.wait(L, [this] { return Queue.empty() && Running == 0; });
  }

  /// Runs Fn(0) .. Fn(N-1), each exactly once, on the pool's workers;
  /// returns when all are done. Items are claimed in ascending order but
  /// may complete in any order — reduce results by index afterwards.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
    if (N == 0)
      return;
    std::atomic<size_t> Next{0};
    size_t Lanes = std::min<size_t>(numThreads(), N);
    std::atomic<size_t> Remaining{Lanes};
    std::mutex DoneM;
    std::condition_variable Done;
    for (size_t K = 0; K < Lanes; ++K)
      async([&] {
        for (size_t I; (I = Next.fetch_add(1, std::memory_order_relaxed)) < N;)
          Fn(I);
        if (Remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> G(DoneM);
          Done.notify_all();
        }
      });
    std::unique_lock<std::mutex> L(DoneM);
    Done.wait(L, [&] { return Remaining.load() == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> L(M);
        WakeWorker.wait(L, [this] { return Stop || !Queue.empty(); });
        if (Stop && Queue.empty())
          return;
        Task = std::move(Queue.front());
        Queue.pop_front();
        ++Running;
      }
      Task();
      {
        std::lock_guard<std::mutex> G(M);
        --Running;
        if (Queue.empty() && Running == 0)
          Idle.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex M;
  std::condition_variable WakeWorker;
  std::condition_variable Idle;
  unsigned Running = 0;
  bool Stop = false;
};

} // namespace lao

#endif // LAO_SUPPORT_THREADPOOL_H
