//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic RNG. Workload generation must be stable
/// across platforms and standard library versions, so we avoid <random>
/// distributions entirely.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_RNG_H
#define LAO_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace lao {

/// Deterministic 64-bit RNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniform in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Returns a value uniform in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace lao

#endif // LAO_SUPPORT_RNG_H
