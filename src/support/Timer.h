//===- Timer.h - RAII phase timing ------------------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-phase wall-clock timing, in the spirit of LLVM's `-time-passes`.
/// A TimerGroup accumulates named durations, preserving first-insertion
/// order (the pipeline's phase order) so reports and JSON stay stable.
/// A ScopedTimer adds the lifetime of a scope to one entry:
///
///   TimerGroup TG;
///   { ScopedTimer T(TG, "translate"); translateOutOfSSA(...); }
///   TG.seconds("translate");
///
/// TimerGroups are plain value types (copyable, summable) so
/// PipelineResult can carry one per run and a suite reduction can fold
/// them deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_TIMER_H
#define LAO_SUPPORT_TIMER_H

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lao {

/// Named accumulated durations in first-insertion order.
class TimerGroup {
public:
  /// Adds \p Seconds to the entry \p Name, creating it at the end if new.
  void add(std::string_view Name, double Seconds) {
    for (auto &[N, S] : Entries)
      if (N == Name) {
        S += Seconds;
        return;
      }
    Entries.emplace_back(std::string(Name), Seconds);
  }

  /// Folds every entry of \p Other into this group (entry order of the
  /// first operand wins; new names append in \p Other's order).
  void addAll(const TimerGroup &Other) {
    for (const auto &[N, S] : Other.Entries)
      add(N, S);
  }

  /// Accumulated seconds for \p Name; 0 when the phase never ran.
  double seconds(std::string_view Name) const {
    for (const auto &[N, S] : Entries)
      if (N == Name)
        return S;
    return 0.0;
  }

  double total() const {
    double Sum = 0.0;
    for (const auto &[N, S] : Entries)
      Sum += S;
    return Sum;
  }

  const std::vector<std::pair<std::string, double>> &entries() const {
    return Entries;
  }
  bool empty() const { return Entries.empty(); }

private:
  std::vector<std::pair<std::string, double>> Entries;
};

/// Adds the wall-clock lifetime of the object to one TimerGroup entry.
class ScopedTimer {
public:
  ScopedTimer(TimerGroup &Group, std::string Name)
      : Group(Group), Name(std::move(Name)),
        Start(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() {
    Group.add(Name, std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count());
  }

private:
  TimerGroup &Group;
  std::string Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace lao

#endif // LAO_SUPPORT_TIMER_H
