//===- UnionFind.h - Disjoint-set forest ------------------------*- C++ -*-===//
//
// Part of the lao project: reproduction of Rastello, de Ferriere & Guillon,
// "Optimizing Translation Out of SSA Using Renaming Constraints", CGO 2004.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small disjoint-set forest with union by size and path compression,
/// used to maintain resource classes during pinning-based coalescing.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_UNIONFIND_H
#define LAO_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace lao {

/// Disjoint-set forest over dense element ids [0, size).
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(size_t N) { grow(N); }

  /// Extends the universe so that ids below \p N are valid, each new id in
  /// its own singleton set.
  void grow(size_t N) {
    size_t Old = Parent.size();
    if (N <= Old)
      return;
    Parent.resize(N);
    Size.resize(N, 1);
    for (size_t I = Old; I < N; ++I)
      Parent[I] = static_cast<uint32_t>(I);
  }

  size_t size() const { return Parent.size(); }

  /// Returns the representative of \p X's set.
  uint32_t find(uint32_t X) const {
    assert(X < Parent.size() && "id out of range");
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression.
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  bool sameSet(uint32_t A, uint32_t B) const { return find(A) == find(B); }

  /// Merges the sets of \p A and \p B. Returns the representative of the
  /// merged set. If \p PreferA is true, A's root becomes the representative
  /// regardless of size (used to keep physical registers as class leaders).
  uint32_t merge(uint32_t A, uint32_t B, bool PreferA = false) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB)
      return RA;
    if (!PreferA && Size[RA] < Size[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    Size[RA] += Size[RB];
    return RA;
  }

private:
  mutable std::vector<uint32_t> Parent;
  std::vector<uint32_t> Size;
};

} // namespace lao

#endif // LAO_SUPPORT_UNIONFIND_H
