//===- Arena.cpp - Bump allocator with chunk recycling -----------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include "support/Stats.h"

#include <mutex>
#include <new>

using namespace lao;

namespace {

/// Process-wide cache of standard-size chunks, bounded in bytes.
/// Oversized chunks are never cached (they are workload-specific).
struct ChunkCache {
  std::mutex M;
  std::vector<char *> Free;
  size_t Limit = 32u << 20;

  char *pop() {
    std::lock_guard<std::mutex> G(M);
    if (Free.empty())
      return nullptr;
    char *Mem = Free.back();
    Free.pop_back();
    return Mem;
  }

  /// Takes ownership of \p Mem; frees it if the cache is full.
  void push(char *Mem) {
    {
      std::lock_guard<std::mutex> G(M);
      if (Free.size() * Arena::ChunkBytes < Limit) {
        Free.push_back(Mem);
        return;
      }
    }
    ::operator delete(Mem);
  }
};

ChunkCache &cache() {
  // Leaked holder: arenas with static storage duration (test fixtures,
  // benchmark workload tables) run their destructors during exit and must
  // still find the cache alive.
  static auto *C = new ChunkCache();
  return *C;
}

} // namespace

void Arena::setChunkCacheLimit(size_t Bytes) {
  ChunkCache &C = cache();
  std::lock_guard<std::mutex> G(C.M);
  C.Limit = Bytes;
  while (C.Free.size() * Arena::ChunkBytes > Bytes) {
    ::operator delete(C.Free.back());
    C.Free.pop_back();
  }
}

void *Arena::allocSlow(size_t Size, size_t Align) {
  assert(Align <= alignof(std::max_align_t) && "over-aligned arena request");
  // Advance through already-owned chunks first (after a reset()).
  while (CurIdx + 1 < Chunks.size()) {
    ++CurIdx;
    Cur = Chunks[CurIdx].Mem;
    End = Cur + Chunks[CurIdx].Size;
    uintptr_t P =
        (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    if (P + Size <= reinterpret_cast<uintptr_t>(End)) {
      Cur = reinterpret_cast<char *>(P + Size);
      Allocated += Size;
      return reinterpret_cast<void *>(P);
    }
  }
  // Need a new chunk: standard size unless the request is larger.
  // Standard chunks come from the thread's bound recycler first (the
  // worker's own just-released chunks, no lock), then the global cache.
  size_t ChunkSize = Size + Align <= ChunkBytes ? ChunkBytes : Size + Align;
  char *Mem = nullptr;
  if (ChunkSize == ChunkBytes) {
    if (ArenaRecycler *R = ArenaRecycler::active())
      if ((Mem = R->pop()))
        R->ReuseBytes += ChunkBytes;
    if (!Mem)
      Mem = cache().pop();
  }
  if (!Mem)
    Mem = static_cast<char *>(::operator new(ChunkSize));
  Chunks.push_back({Mem, ChunkSize});
  CurIdx = Chunks.size() - 1;
  Reserved += ChunkSize;
  LAO_STAT(ir, arena_bytes) += ChunkSize;
  Cur = Mem;
  End = Mem + ChunkSize;
  uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
  assert(P + Size <= reinterpret_cast<uintptr_t>(End) && "chunk sizing bug");
  Cur = reinterpret_cast<char *>(P + Size);
  Allocated += Size;
  return reinterpret_cast<void *>(P);
}

void Arena::reset() {
  if (Allocated > HighWaterMark)
    HighWaterMark = Allocated;
  Allocated = 0;
  CurIdx = 0;
  if (Chunks.empty()) {
    Cur = End = nullptr;
    return;
  }
  Cur = Chunks.front().Mem;
  End = Cur + Chunks.front().Size;
}

Arena::~Arena() {
  ArenaRecycler *R = ArenaRecycler::active();
  for (const Chunk &C : Chunks) {
    if (C.Size != ChunkBytes) {
      ::operator delete(C.Mem);
      continue;
    }
    if (R && R->push(C.Mem))
      continue;
    cache().push(C.Mem);
  }
}

char *ArenaRecycler::pop() {
  if (Free.empty())
    return nullptr;
  char *Mem = Free.back();
  Free.pop_back();
  return Mem;
}

bool ArenaRecycler::push(char *Mem) {
  if (Free.size() >= MaxChunks)
    return false;
  Free.push_back(Mem);
  return true;
}

ArenaRecycler::~ArenaRecycler() {
  // Parked chunks outlive the worker through the global cache.
  for (char *Mem : Free)
    cache().push(Mem);
}
