//===- Stats.cpp - Process-wide pass statistics registry ---------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <vector>

using namespace lao;

StatCounter::StatCounter(const char *Pass, const char *Name)
    : Pass(Pass), Name(Name) {
  StatsRegistry::instance().add(this);
}


StatsSnapshot StatsScope::snapshot() const {
  StatsSnapshot Snap;
  for (const auto &[C, V] : Local)
    if (V)
      Snap[std::string(C->pass()) + "." + C->name()] += V;
  return Snap;
}

StatsSnapshot StatsScope::takeAndReset() {
  StatsSnapshot Snap = snapshot();
  Local.clear();
  return Snap;
}

void lao::mergeSnapshot(StatsSnapshot &Into, const StatsSnapshot &From) {
  for (const auto &[Key, V] : From)
    Into[Key] += V;
}

StatsRegistry &StatsRegistry::instance() {
  static StatsRegistry Registry;
  return Registry;
}

void StatsRegistry::add(StatCounter *C) {
  C->Next = Head.load(std::memory_order_relaxed);
  while (!Head.compare_exchange_weak(C->Next, C, std::memory_order_release,
                                     std::memory_order_relaxed))
    ;
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot Snap;
  for (const StatCounter *C = Head.load(std::memory_order_acquire); C;
       C = C->Next)
    Snap[std::string(C->pass()) + "." + C->name()] += C->value();
  return Snap;
}

StatsSnapshot StatsRegistry::delta(const StatsSnapshot &Before,
                                   const StatsSnapshot &After) {
  StatsSnapshot D;
  for (const auto &[Key, V] : After) {
    auto It = Before.find(Key);
    uint64_t Base = It == Before.end() ? 0 : It->second;
    if (V != Base)
      D[Key] = V - Base;
  }
  return D;
}

void StatsRegistry::print(std::FILE *Out) const {
  StatsSnapshot Snap = snapshot();
  size_t Widest = 0;
  for (const auto &[Key, V] : Snap)
    if (V)
      Widest = std::max(Widest, Key.size());
  std::fprintf(Out, "=== lao statistics ===\n");
  for (const auto &[Key, V] : Snap)
    if (V)
      std::fprintf(Out, "%12llu  %-*s\n", static_cast<unsigned long long>(V),
                   static_cast<int>(Widest), Key.c_str());
}
