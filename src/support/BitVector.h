//===- BitVector.h - Dense bit vector ---------------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense resizable bit vector used for liveness sets. Minimal interface,
/// 64-bit word storage, with the bulk operations the dataflow solvers need.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_BITVECTOR_H
#define LAO_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lao {

/// Dense bit vector over [0, size).
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t N) : NumBits(N), Words((N + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  void resize(size_t N) {
    NumBits = N;
    Words.resize((N + 63) / 64, 0);
    clearPadding();
  }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// this |= Other. Returns true if any bit changed.
  bool orWith(const BitVector &Other) {
    assert(Other.NumBits == NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(Other.NumBits == NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  bool anyCommon(const BitVector &Other) const {
    assert(Other.NumBits == NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Calls \p Fn for each set bit index, in increasing order.
  template <typename Callable> void forEach(Callable Fn) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Calls \p Fn for each index set in both this and \p Other, in
  /// increasing order — one AND per word, so sparse intersections cost
  /// far less than testing every set bit of either side.
  template <typename Callable>
  void forEachCommon(const BitVector &Other, Callable Fn) const {
    assert(Other.NumBits == NumBits && "size mismatch");
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI] & Other.Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

private:
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace lao

#endif // LAO_SUPPORT_BITVECTOR_H
