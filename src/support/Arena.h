//===- Arena.h - Bump allocator with chunk recycling ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena backing the IR core: Function places its dense
/// instruction table, operand slabs and phi-incoming arrays here, so a
/// whole function's IR is a handful of large chunks instead of one heap
/// node per instruction/operand vector.
///
/// Chunks are recycled through a process-wide bounded cache: destroying
/// (or reset()-ing) an arena returns its standard-size chunks for the
/// next arena to reuse, which gives the compile service request-scoped
/// arena recycling for free — a worker's next parseFunction draws its
/// chunks from the cache instead of the system allocator.
///
/// Allocation and high-water statistics are kept per arena (see
/// Arena::stats) and aggregated into the ir.arena_* registry counters.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_ARENA_H
#define LAO_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lao {

/// Bump allocator over recycled chunks. Memory is never freed piecemeal;
/// reset() (or destruction) releases everything at once.
class Arena {
public:
  /// Standard chunk size. Oversized requests get a dedicated chunk.
  static constexpr size_t ChunkBytes = 1u << 16;

  Arena() = default;
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align (a power of two).
  void *alloc(size_t Size, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    if (P + Size > reinterpret_cast<uintptr_t>(End))
      return allocSlow(Size, Align);
    Cur = reinterpret_cast<char *>(P + Size);
    Allocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Typed array allocation (uninitialized storage).
  template <typename T> T *allocArray(size_t N) {
    return static_cast<T *>(alloc(N * sizeof(T), alignof(T)));
  }

  /// Releases all allocations but keeps the chunks for reuse by this
  /// arena. The compile service resets a worker's arena between
  /// requests instead of paying malloc/free per request.
  void reset();

  /// Per-arena allocation statistics.
  struct StatsInfo {
    size_t BytesAllocated = 0; ///< Bytes handed out since construction.
    size_t BytesReserved = 0;  ///< Sum of live chunk sizes.
    size_t HighWater = 0;      ///< Max BytesAllocated between resets.
    size_t NumChunks = 0;      ///< Live chunks.
  };
  StatsInfo stats() const {
    StatsInfo S;
    S.BytesAllocated = Allocated;
    S.BytesReserved = Reserved;
    S.HighWater = Allocated > HighWaterMark ? Allocated : HighWaterMark;
    S.NumChunks = Chunks.size();
    return S;
  }

  size_t bytesAllocated() const { return Allocated; }
  size_t bytesReserved() const { return Reserved; }

  /// Bounds the process-wide chunk cache (bytes); 0 disables recycling.
  /// Exposed for tests; the default (32 MiB) suits the compile service.
  static void setChunkCacheLimit(size_t Bytes);

private:
  struct Chunk {
    char *Mem;
    size_t Size;
  };

  void *allocSlow(size_t Size, size_t Align);

  std::vector<Chunk> Chunks;
  size_t CurIdx = 0; ///< Chunk currently bumped (when Chunks non-empty).
  char *Cur = nullptr;
  char *End = nullptr;
  size_t Allocated = 0;
  size_t Reserved = 0;
  size_t HighWaterMark = 0;
};

} // namespace lao

#endif // LAO_SUPPORT_ARENA_H
