//===- Arena.h - Bump allocator with chunk recycling ------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena backing the IR core: Function places its dense
/// instruction table, operand slabs and phi-incoming arrays here, so a
/// whole function's IR is a handful of large chunks instead of one heap
/// node per instruction/operand vector.
///
/// Chunks are recycled at two levels. A process-wide bounded cache is
/// the default: destroying an arena returns its standard-size chunks
/// for the next arena to reuse. On top of that, an ArenaRecycler can be
/// bound to a thread (ArenaRecycler::Bind): while bound, chunks of
/// destroyed arenas park in the recycler and new arenas draw from it
/// before consulting the global cache — no mutex, no sharing. The
/// compile service binds one recycler per WorkerContext around each
/// request, so a worker's next parseFunction bump-allocates into the
/// exact chunks the previous request on that worker just released
/// (request-scoped arena reuse, measured by server.arena_reuse_bytes).
///
/// Allocation and high-water statistics are kept per arena (see
/// Arena::stats) and aggregated into the ir.arena_* registry counters.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_ARENA_H
#define LAO_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lao {

/// Bump allocator over recycled chunks. Memory is never freed piecemeal;
/// reset() (or destruction) releases everything at once.
class Arena {
public:
  /// Standard chunk size. Oversized requests get a dedicated chunk.
  static constexpr size_t ChunkBytes = 1u << 16;

  Arena() = default;
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align (a power of two).
  void *alloc(size_t Size, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    if (P + Size > reinterpret_cast<uintptr_t>(End))
      return allocSlow(Size, Align);
    Cur = reinterpret_cast<char *>(P + Size);
    Allocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Typed array allocation (uninitialized storage).
  template <typename T> T *allocArray(size_t N) {
    return static_cast<T *>(alloc(N * sizeof(T), alignof(T)));
  }

  /// Releases all allocations but keeps the chunks for reuse by this
  /// arena. The compile service resets a worker's arena between
  /// requests instead of paying malloc/free per request.
  void reset();

  /// Per-arena allocation statistics.
  struct StatsInfo {
    size_t BytesAllocated = 0; ///< Bytes handed out since construction.
    size_t BytesReserved = 0;  ///< Sum of live chunk sizes.
    size_t HighWater = 0;      ///< Max BytesAllocated between resets.
    size_t NumChunks = 0;      ///< Live chunks.
  };
  StatsInfo stats() const {
    StatsInfo S;
    S.BytesAllocated = Allocated;
    S.BytesReserved = Reserved;
    S.HighWater = Allocated > HighWaterMark ? Allocated : HighWaterMark;
    S.NumChunks = Chunks.size();
    return S;
  }

  size_t bytesAllocated() const { return Allocated; }
  size_t bytesReserved() const { return Reserved; }

  /// Bounds the process-wide chunk cache (bytes); 0 disables recycling.
  /// Exposed for tests; the default (32 MiB) suits the compile service.
  static void setChunkCacheLimit(size_t Bytes);

private:
  friend class ArenaRecycler;

  struct Chunk {
    char *Mem;
    size_t Size;
  };

  void *allocSlow(size_t Size, size_t Align);

  std::vector<Chunk> Chunks;
  size_t CurIdx = 0; ///< Chunk currently bumped (when Chunks non-empty).
  char *Cur = nullptr;
  char *End = nullptr;
  size_t Allocated = 0;
  size_t Reserved = 0;
  size_t HighWaterMark = 0;
};

/// A private store of standard-size chunks for one worker. Not
/// thread-safe by design: a recycler is owned by exactly one
/// WorkerContext, and the server's slot discipline guarantees at most
/// one request uses a context at a time. While bound to the current
/// thread (Bind), every Arena on that thread destroys into and
/// allocates out of this recycler before touching the global mutexed
/// cache, which makes the warm path lock-free and keeps a worker's
/// chunks cache-hot on that worker.
class ArenaRecycler {
public:
  /// \p MaxChunks bounds the parked memory (default 64 chunks = 4 MiB
  /// at the standard chunk size); overflow spills to the global cache.
  explicit ArenaRecycler(size_t MaxChunks = 64) : MaxChunks(MaxChunks) {}
  ~ArenaRecycler();

  ArenaRecycler(const ArenaRecycler &) = delete;
  ArenaRecycler &operator=(const ArenaRecycler &) = delete;

  /// Chunks currently parked.
  size_t numChunks() const { return Free.size(); }

  /// Bytes handed to arenas from this recycler since the last call
  /// (the warm-path hit volume). The server flushes this into the
  /// server.arena_reuse_bytes counter *outside* any StatsScope, so
  /// per-request counter deltas stay scheduling-independent.
  uint64_t takeReuseBytes() {
    uint64_t B = ReuseBytes;
    ReuseBytes = 0;
    return B;
  }
  uint64_t reuseBytes() const { return ReuseBytes; }

  /// Binds \p R as the calling thread's active recycler for the scope's
  /// lifetime (nests by shadowing, like StatsScope).
  class Bind {
  public:
    explicit Bind(ArenaRecycler &R) : Prev(activeSlot()) { activeSlot() = &R; }
    ~Bind() { activeSlot() = Prev; }
    Bind(const Bind &) = delete;
    Bind &operator=(const Bind &) = delete;

  private:
    ArenaRecycler *Prev;
  };

  /// The recycler bound to the calling thread, or nullptr.
  static ArenaRecycler *active() { return activeSlot(); }

private:
  friend class Arena;

  /// Takes one parked chunk, or nullptr when empty.
  char *pop();
  /// Parks \p Mem; returns false (caller keeps ownership) when full.
  bool push(char *Mem);

  static ArenaRecycler *&activeSlot() {
    static thread_local ArenaRecycler *Active = nullptr;
    return Active;
  }

  std::vector<char *> Free;
  size_t MaxChunks;
  uint64_t ReuseBytes = 0;
};

} // namespace lao

#endif // LAO_SUPPORT_ARENA_H
