//===- StringUtils.cpp - Small string helpers -----------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace lao;

std::string lao::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Result.data(), Result.size(), Fmt, ArgsCopy);
    Result.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string> lao::splitString(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : Text) {
    if (C == Sep) {
      if (!Cur.empty())
        Parts.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur.push_back(C);
  }
  if (!Cur.empty())
    Parts.push_back(Cur);
  return Parts;
}

std::string lao::trimString(const std::string &Text) {
  size_t Begin = Text.find_first_not_of(" \t\r\n");
  if (Begin == std::string::npos)
    return std::string();
  size_t End = Text.find_last_not_of(" \t\r\n");
  return Text.substr(Begin, End - Begin + 1);
}
