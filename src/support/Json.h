//===- Json.h - Minimal dependency-free JSON writer -------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used by the bench binaries' `--json`
/// mode and `lao-opt --timing-json`. Writer-only on purpose: the
/// project never consumes JSON, it only emits machine-readable records,
/// and keeping this dependency-free means the bench binaries stay
/// buildable with nothing beyond the toolchain.
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("moves").value(uint64_t(42));
///   W.key("per_pass_seconds").beginObject();
///   W.key("translate").value(0.25);
///   W.endObject();
///   W.endObject();
///   std::string Text = W.take();
///
/// Commas and colons are inserted automatically; strings are escaped per
/// RFC 8259. Doubles print with %.9g (enough for stable millisecond
/// timings, and never produces exponent-less garbage); non-finite
/// doubles degrade to 0 since JSON cannot represent them.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_JSON_H
#define LAO_SUPPORT_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace lao {

class JsonWriter {
public:
  JsonWriter &beginObject() {
    prefix();
    Out += '{';
    Nesting.push_back(false);
    return *this;
  }
  JsonWriter &endObject() {
    Nesting.pop_back();
    Out += '}';
    return *this;
  }
  JsonWriter &beginArray() {
    prefix();
    Out += '[';
    Nesting.push_back(false);
    return *this;
  }
  JsonWriter &endArray() {
    Nesting.pop_back();
    Out += ']';
    return *this;
  }

  JsonWriter &key(std::string_view K) {
    separate();
    appendEscaped(K);
    Out += ':';
    AfterKey = true;
    return *this;
  }

  JsonWriter &value(std::string_view S) {
    prefix();
    appendEscaped(S);
    return *this;
  }
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(uint64_t V) {
    prefix();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(int64_t V) {
    prefix();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(double V) {
    prefix();
    if (!std::isfinite(V))
      V = 0.0;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
    Out += Buf;
    return *this;
  }
  JsonWriter &value(bool V) {
    prefix();
    Out += V ? "true" : "false";
    return *this;
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

  static std::string escape(std::string_view S) {
    std::string E;
    E.reserve(S.size() + 2);
    for (unsigned char C : S) {
      switch (C) {
      case '"':
        E += "\\\"";
        break;
      case '\\':
        E += "\\\\";
        break;
      case '\n':
        E += "\\n";
        break;
      case '\t':
        E += "\\t";
        break;
      case '\r':
        E += "\\r";
        break;
      case '\b':
        E += "\\b";
        break;
      case '\f':
        E += "\\f";
        break;
      default:
        if (C < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          E += Buf;
        } else {
          E += static_cast<char>(C);
        }
      }
    }
    return E;
  }

private:
  /// Emits the pending comma inside the enclosing container.
  void separate() {
    if (!Nesting.empty()) {
      if (Nesting.back())
        Out += ',';
      Nesting.back() = true;
    }
  }

  /// Comma handling for a value: suppressed right after a key (the colon
  /// already separates), applied inside arrays and at top level.
  void prefix() {
    if (AfterKey)
      AfterKey = false;
    else
      separate();
  }

  void appendEscaped(std::string_view S) {
    Out += '"';
    Out += escape(S);
    Out += '"';
  }

  std::string Out;
  std::vector<bool> Nesting; ///< Per level: has a previous element.
  bool AfterKey = false;
};

} // namespace lao

#endif // LAO_SUPPORT_JSON_H
