//===- Stats.h - Process-wide pass statistics registry ----------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, in the spirit of LLVM's
/// `-stats` machinery. A pass bumps a counter through the LAO_STAT macro:
///
///   LAO_STAT(coalesce, merges) += Stats.NumMerges;
///   ++LAO_STAT(liveness, analyses);
///
/// The macro expands to a function-local static StatCounter that
/// registers itself with the StatsRegistry singleton on first use, so a
/// counter costs one relaxed atomic add per bump and nothing when never
/// reached. Counters are monotonically increasing over the process
/// lifetime; consumers that want per-run numbers (the bench binaries'
/// `--json` mode, `lao-opt --timing-json`) take a snapshot before and
/// after the run and report the delta.
///
/// Counters are thread-safe: the bench suite runner executes pipelines
/// from a ThreadPool and the per-run deltas stay exact because integer
/// atomic adds commute.
///
/// Whole-process snapshot deltas are exact only when nothing else runs
/// concurrently — the blocker for a sharded compile *service*, where N
/// workers bump the same global counters at once. StatsScope solves the
/// attribution problem: while a scope is alive on a thread, every bump
/// made *by that thread* is additionally recorded into the scope, so a
/// server worker wraps each request in a scope and reads an exact
/// per-request delta no matter what the other workers are doing. The
/// global counters keep their monotonic process-lifetime semantics
/// untouched; per-request snapshots are merged into service totals with
/// mergeSnapshot.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_SUPPORT_STATS_H
#define LAO_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

namespace lao {

class StatCounter;
class StatsRegistry;

/// Point-in-time counter values, keyed "pass.name". std::map gives a
/// deterministic (sorted) iteration order, which the JSON emitters rely
/// on for schema-stable output.
using StatsSnapshot = std::map<std::string, uint64_t>;

/// Adds every entry of \p From into \p Into — the merge-on-report step
/// for per-worker / per-request snapshots.
void mergeSnapshot(StatsSnapshot &Into, const StatsSnapshot &From);

/// RAII per-thread recording of counter bumps. While the innermost scope
/// on a thread is alive, StatCounter::operator+= also accumulates the
/// delta into it (scopes nest by shadowing: only the innermost records).
/// Cost when no scope is active: one thread-local load and a predictable
/// branch per bump.
class StatsScope {
public:
  StatsScope() : Prev(activeSlot()) { activeSlot() = this; }
  ~StatsScope() { activeSlot() = Prev; }
  StatsScope(const StatsScope &) = delete;
  StatsScope &operator=(const StatsScope &) = delete;

  /// The scope recording bumps on the calling thread, or nullptr.
  static StatsScope *active() { return activeSlot(); }

  /// Called from StatCounter::operator+= on the owning thread.
  void record(const StatCounter *C, uint64_t Delta) { Local[C] += Delta; }

  /// Deltas recorded since construction (or the last takeAndReset),
  /// keyed "pass.name" like StatsRegistry snapshots; zero entries and
  /// entries from other threads never appear.
  StatsSnapshot snapshot() const;

  /// snapshot(), then clears the scope for the next request.
  StatsSnapshot takeAndReset();

private:
  /// The innermost scope on this thread. A function-local thread_local
  /// (rather than an extern class static): every TU then reaches it
  /// through the same inline wrapper, which sidesteps a GCC issue where
  /// cross-TU extern-TLS access trips -fsanitize=null.
  static StatsScope *&activeSlot() {
    static thread_local StatsScope *Active = nullptr;
    return Active;
  }

  std::unordered_map<const StatCounter *, uint64_t> Local;
  StatsScope *Prev;
};

/// One named statistic. Construct only through LAO_STAT (or as a static
/// with process lifetime): the registry keeps a pointer to it forever.
class StatCounter {
public:
  StatCounter(const char *Pass, const char *Name);

  StatCounter &operator+=(uint64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
    if (StatsScope *S = StatsScope::active())
      S->record(this, Delta);
    return *this;
  }
  StatCounter &operator++() { return *this += 1; }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const char *pass() const { return Pass; }
  const char *name() const { return Name; }

private:
  friend class StatsRegistry;
  const char *Pass;
  const char *Name;
  std::atomic<uint64_t> Value{0};
  StatCounter *Next = nullptr; ///< Intrusive registry list.
};

/// The process-wide counter list. Registration is lock-free (counters
/// are only ever added, never removed).
class StatsRegistry {
public:
  static StatsRegistry &instance();

  /// Current value of every registered counter.
  StatsSnapshot snapshot() const;

  /// Counter-wise After - Before, dropping entries that did not move.
  /// Counters born after Before was taken count from zero.
  static StatsSnapshot delta(const StatsSnapshot &Before,
                             const StatsSnapshot &After);

  /// Prints all non-zero counters, LLVM `-stats` style, aligned.
  void print(std::FILE *Out) const;

private:
  friend class StatCounter;
  void add(StatCounter *C);

  std::atomic<StatCounter *> Head{nullptr};
};

} // namespace lao

/// Returns a reference to the static counter for (PASS, NAME),
/// registering it on first execution.
#define LAO_STAT(PASS, NAME)                                                   \
  ([]() -> ::lao::StatCounter & {                                              \
    static ::lao::StatCounter LaoStatCounter(#PASS, #NAME);                    \
    return LaoStatCounter;                                                     \
  }())

#endif // LAO_SUPPORT_STATS_H
