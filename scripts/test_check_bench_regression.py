#!/usr/bin/env python3
"""Selftest for check_bench_regression.py's failure modes.

The checker is the CI gate that keeps the analysis-count baselines
honest, so its *failure* paths need their own regression test: a gate
that silently passes on malformed input is worse than no gate. Each case
runs the checker in-process on synthetic bench documents and asserts
both the exit status and that the offending key is named in the output.

Run directly (no arguments) or via ctest; stdlib only.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as cbr


def bench_doc(records):
    return {"records": records}


def record(suite="valcc", config="Lphi,ABI+C", counters=None, **fields):
    rec = {"suite": suite, "config": config, "moves": 10,
           "weighted_moves": 20.0}
    rec["counters"] = {"liveness.analyses": 5} if counters is None \
        else counters
    rec.update(fields)
    return rec


class CheckerHarness(unittest.TestCase):
    def run_checker(self, baseline, fresh, *extra_args):
        """Writes the two docs to temp files and runs main(). Returns
        (exit_status, captured_stdout)."""
        out = io.StringIO()
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            for path, doc in ((base_path, baseline), (fresh_path, fresh)):
                with open(path, "w") as f:
                    if isinstance(doc, str):
                        f.write(doc)
                    else:
                        json.dump(doc, f)
            with contextlib.redirect_stdout(out):
                status = cbr.main(["prog", *extra_args, base_path,
                                   fresh_path])
        return status, out.getvalue()

    def assert_fails_naming(self, baseline, fresh, *needles):
        status, out = self.run_checker(baseline, fresh)
        self.assertEqual(status, 1, out)
        self.assertIn("FAILED", out)
        for needle in needles:
            self.assertIn(needle, out)


class TestCleanPass(CheckerHarness):
    def test_identical_documents_pass(self):
        doc = bench_doc([record()])
        status, out = self.run_checker(doc, doc)
        self.assertEqual(status, 0, out)
        self.assertIn("passed", out)

    def test_counter_decrease_passes(self):
        base = bench_doc([record(counters={"liveness.analyses": 5})])
        fresh = bench_doc([record(counters={"liveness.analyses": 3})])
        status, out = self.run_checker(base, fresh)
        self.assertEqual(status, 0, out)

    def test_counter_absent_from_both_passes(self):
        # Not every record carries every checked counter (regpressure
        # records have no coalescer counters, say); absent on both
        # sides is not a regression.
        doc = bench_doc([record(counters={})])
        status, out = self.run_checker(doc, doc)
        self.assertEqual(status, 0, out)


class TestCounterFailures(CheckerHarness):
    def test_counter_increase_fails(self):
        base = bench_doc([record(counters={"liveness.analyses": 5})])
        fresh = bench_doc([record(counters={"liveness.analyses": 6})])
        self.assert_fails_naming(base, fresh, "liveness.analyses",
                                 "regressed 5 -> 6")

    def test_counter_missing_from_fresh_fails(self):
        # The bug this selftest exists for: a counter the baseline has
        # but the fresh run lost must fail by name, not default to 0
        # and slide through the decrease-only comparison.
        base = bench_doc([record(counters={"liveness.analyses": 5})])
        fresh = bench_doc([record(counters={})])
        self.assert_fails_naming(
            base, fresh, "liveness.analyses",
            "present in baseline but missing from fresh")

    def test_record_missing_from_fresh_fails(self):
        base = bench_doc([record(suite="valcc"), record(suite="spec")])
        fresh = bench_doc([record(suite="valcc")])
        self.assert_fails_naming(base, fresh,
                                 "record missing from fresh output",
                                 "spec")


class TestMeasurementFailures(CheckerHarness):
    def test_measurement_change_fails(self):
        base = bench_doc([record(moves=10)])
        fresh = bench_doc([record(moves=11)])
        self.assert_fails_naming(base, fresh, "moves",
                                 "must be bit-identical")

    def test_measurement_missing_from_fresh_fails(self):
        base = bench_doc([record()])
        fresh_rec = record()
        del fresh_rec["moves"]
        self.assert_fails_naming(base, bench_doc([fresh_rec]),
                                 "measurement moves missing from fresh")

    def test_measurement_missing_from_baseline_fails(self):
        base_rec = record()
        del base_rec["moves"]
        self.assert_fails_naming(
            bench_doc([base_rec]), bench_doc([record()]),
            "measurement moves missing from baseline")


class TestMalformedInput(CheckerHarness):
    def test_missing_records_key_fails_cleanly(self):
        self.assert_fails_naming({"suite": "valcc"}, bench_doc([record()]),
                                 "missing top-level 'records' key")

    def test_record_missing_suite_fails_cleanly(self):
        rec = record()
        del rec["suite"]
        self.assert_fails_naming(bench_doc([rec]), bench_doc([record()]),
                                 "missing required key 'suite'")

    def test_record_missing_config_fails_cleanly(self):
        rec = record()
        del rec["config"]
        self.assert_fails_naming(bench_doc([record()]), bench_doc([rec]),
                                 "missing required key 'config'")

    def test_invalid_json_fails_cleanly(self):
        status, out = self.run_checker("{not json", bench_doc([record()]))
        self.assertEqual(status, 1, out)
        self.assertIn("FAILED", out)

    def test_usage_error_is_distinct(self):
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            self.assertEqual(cbr.main(["prog", "only-one.json"]), 2)


class TestSecondsReport(CheckerHarness):
    def test_table_absent_without_flag(self):
        base = bench_doc([record(seconds=2.0)])
        fresh = bench_doc([record(seconds=1.0)])
        status, out = self.run_checker(base, fresh)
        self.assertEqual(status, 0, out)
        self.assertNotIn("Wall-clock", out)

    def test_report_never_gates(self):
        # A 10x wall-clock slowdown with identical counters must still
        # pass: timings are machine-dependent and informational only.
        base = bench_doc([record(seconds=1.0)])
        fresh = bench_doc([record(seconds=10.0)])
        status, out = self.run_checker(base, fresh, "--report-seconds")
        self.assertEqual(status, 0, out)
        self.assertIn("Wall-clock comparison (non-gating)", out)
        self.assertIn("valcc/Lphi,ABI+C", out)
        self.assertIn("0.10x", out)

    def test_per_pass_rows_ride_along(self):
        base = bench_doc([record(seconds=2.0,
                                 per_pass_seconds={"translate": 1.0})])
        fresh = bench_doc([record(seconds=1.0,
                                  per_pass_seconds={"translate": 0.5})])
        status, out = self.run_checker(base, fresh, "--report-seconds")
        self.assertEqual(status, 0, out)
        self.assertIn("| translate |", out)
        self.assertIn("2.00x", out)

    def test_records_without_seconds_are_skipped(self):
        status, out = self.run_checker(bench_doc([record()]),
                                       bench_doc([record()]),
                                       "--report-seconds")
        self.assertEqual(status, 0, out)
        self.assertNotIn("Wall-clock", out)


class TestRegpressureKeying(CheckerHarness):
    """The 5-tuple (suite, config, num_regs, allocator, spill_mode) key
    for register-pressure records, with pre-strategy-tier defaults."""

    def test_old_baseline_matches_explicit_default_combo(self):
        # A baseline written before the allocator strategy tier has no
        # allocator/spill_mode keys; the defaults must make it compare
        # against the fresh chaitin-briggs/spill-everywhere record —
        # bit-identically, so a spill change still fails.
        base = bench_doc([record(num_regs=8, spills=355, counters={})])
        fresh = bench_doc([record(num_regs=8, spills=355,
                                  allocator="chaitin-briggs",
                                  spill_mode="spill-everywhere",
                                  counters={})])
        status, out = self.run_checker(base, fresh)
        self.assertEqual(status, 0, out)

    def test_old_baseline_gates_default_combo_bit_identically(self):
        base = bench_doc([record(num_regs=8, spills=355, counters={})])
        fresh = bench_doc([record(num_regs=8, spills=354,
                                  allocator="chaitin-briggs",
                                  spill_mode="spill-everywhere",
                                  counters={})])
        self.assert_fails_naming(base, fresh, "spills",
                                 "must be bit-identical")

    def test_allocator_distinguishes_records(self):
        # Same (suite, config, num_regs) but a different allocator is a
        # different record: the chordal numbers must not be compared
        # against (or hide behind) the chaitin-briggs baseline.
        base = bench_doc([
            record(num_regs=8, spills=355, allocator="chaitin-briggs",
                   spill_mode="spill-everywhere", counters={}),
            record(num_regs=8, spills=340, allocator="chordal",
                   spill_mode="spill-everywhere", counters={}),
        ])
        status, out = self.run_checker(base, base)
        self.assertEqual(status, 0, out)
        # Dropping only the chordal record must fail and name it by its
        # full 5-tuple key.
        fresh = bench_doc([
            record(num_regs=8, spills=355, allocator="chaitin-briggs",
                   spill_mode="spill-everywhere", counters={}),
        ])
        self.assert_fails_naming(base, fresh,
                                 "record missing from fresh output",
                                 "valcc/Lphi,ABI+C/8/chordal")

    def test_spill_mode_distinguishes_records(self):
        base = bench_doc([
            record(num_regs=6, spill_accesses=1943,
                   allocator="chaitin-briggs",
                   spill_mode="spill-everywhere", counters={}),
            record(num_regs=6, spill_accesses=1500,
                   allocator="chaitin-briggs",
                   spill_mode="load-store-opt", counters={}),
        ])
        status, out = self.run_checker(base, base)
        self.assertEqual(status, 0, out)
        # A spill_accesses change on the load-store-opt record fails
        # under its own key, not the spill-everywhere one.
        fresh = bench_doc([
            record(num_regs=6, spill_accesses=1943,
                   allocator="chaitin-briggs",
                   spill_mode="spill-everywhere", counters={}),
            record(num_regs=6, spill_accesses=1600,
                   allocator="chaitin-briggs",
                   spill_mode="load-store-opt", counters={}),
        ])
        self.assert_fails_naming(
            base, fresh, "spill_accesses",
            "valcc/Lphi,ABI+C/6/chaitin-briggs/load-store-opt")

    def test_records_without_num_regs_ignore_allocator_keys(self):
        # Compile-time records have no num_regs; they keep the plain
        # (suite, config) key even if a stray allocator key appears.
        base = bench_doc([record(counters={})])
        fresh = bench_doc([record(allocator="chordal", counters={})])
        status, out = self.run_checker(base, fresh)
        self.assertEqual(status, 0, out)


class TestExecRecords(CheckerHarness):
    """BENCH_exec.json: dynamic execution tallies gate bit-identically,
    engine wall-clock never does."""

    def exec_record(self, **overrides):
        rec = {"suite": "VALcc1", "config": "Lphi,ABI+C", "functions": 22,
               "runs": 61, "errors": 0, "dyn_instrs": 24850,
               "dyn_moves": 5189, "outputs": 0x1234ABCD5678EF90,
               "vm_seconds": 0.002, "interp_seconds": 0.008,
               "speedup": 4.0}
        rec.update(overrides)
        return rec

    def test_identical_exec_records_pass(self):
        doc = bench_doc([self.exec_record()])
        status, out = self.run_checker(doc, doc)
        self.assertEqual(status, 0, out)

    def test_dyn_moves_change_fails(self):
        base = bench_doc([self.exec_record()])
        fresh = bench_doc([self.exec_record(dyn_moves=5190)])
        self.assert_fails_naming(base, fresh, "dyn_moves",
                                 "must be bit-identical")

    def test_dyn_instrs_change_fails(self):
        base = bench_doc([self.exec_record()])
        fresh = bench_doc([self.exec_record(dyn_instrs=24849)])
        self.assert_fails_naming(base, fresh, "dyn_instrs",
                                 "must be bit-identical")

    def test_output_digest_change_fails(self):
        # The digest folds every run's status, output trace and return
        # value; any behavioral drift in either engine lands here.
        base = bench_doc([self.exec_record()])
        fresh = bench_doc([self.exec_record(outputs=0x1234ABCD5678EF91)])
        self.assert_fails_naming(base, fresh, "outputs",
                                 "must be bit-identical")

    def test_engine_timings_never_gate(self):
        base = bench_doc([self.exec_record()])
        fresh = bench_doc([self.exec_record(vm_seconds=0.2,
                                            interp_seconds=0.1,
                                            speedup=0.5)])
        status, out = self.run_checker(base, fresh)
        self.assertEqual(status, 0, out)

    def test_scale_records_without_probe_counters_skip_sublinearity(self):
        # The exec sweep reuses the scale_n* suite names but carries no
        # classinterf counters; the sublinearity check must not engage.
        doc = bench_doc([
            self.exec_record(suite="scale_n40", config="ssa", counters={}),
            self.exec_record(suite="scale_n640", config="ssa", counters={}),
        ])
        status, out = self.run_checker(doc, doc)
        self.assertEqual(status, 0, out)
        self.assertIn("on 0 scale points", out)


class TestSublinearity(CheckerHarness):
    def test_lost_sublinearity_fails(self):
        def scale(n, probes, pair_cost):
            return record(suite="scale_n%d" % n,
                          counters={"classinterf.probes": probes,
                                    "classinterf.pair_cost": pair_cost})
        # Probes grow as fast as the pairwise bound: ratio never drops.
        fresh = bench_doc([scale(40, 100, 1000), scale(640, 1600, 16000)])
        base = fresh
        self.assert_fails_naming(base, fresh, "sublinearity lost")


if __name__ == "__main__":
    unittest.main(verbosity=2)
