#!/usr/bin/env python3
"""Execution-tier summary from BENCH_exec.json, as GitHub markdown.

Two tables, both read straight from the bench's committed/fresh JSON
(no re-execution here):

  * dynamic move cost — executed instructions and executed moves per
    named suite, coalescing on (Lphi,ABI+C) vs off (Lphi,ABI), with the
    executed-move savings the SSA-level coalescer buys at runtime. These
    fields are deterministic and separately gated by
    check_bench_regression.py; this table just renders them.
  * VM throughput — bytecode-VM vs tree-walk-interpreter wall-clock on
    the scale_n* sweep records, with the speedup ratio. Wall-clock is
    machine-dependent and never gates (exit 0 unless the file is
    unreadable); CI appends the output to the step summary.

Usage: report_exec_throughput.py <BENCH_exec.json>
"""

import json
import sys


def main(argv):
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
        records = doc["records"]
    except (OSError, json.JSONDecodeError, KeyError) as err:
        sys.stderr.write("cannot read %s: %s\n" % (argv[1], err))
        return 1

    by_key = {(r.get("suite"), r.get("config")): r for r in records}
    named = sorted({s for s, _ in by_key if s and not s.startswith("scale_n")})
    scale = sorted(
        ((int(s[len("scale_n"):]), s, c) for s, c in by_key
         if s and s.startswith("scale_n")))

    print("### Dynamic move cost (executed on the bytecode VM, gated)")
    print()
    print("| suite | runs | instrs (+C) | moves (+C) | instrs (no C) | "
          "moves (no C) | moves saved |")
    print("|---|---|---|---|---|---|---|")
    for suite in named:
        on = by_key.get((suite, "Lphi,ABI+C"))
        off = by_key.get((suite, "Lphi,ABI"))
        if not on or not off:
            continue
        print("| %s | %d | %d | %d | %d | %d | %d |" %
              (suite, on.get("runs", 0), on.get("dyn_instrs", 0),
               on.get("dyn_moves", 0), off.get("dyn_instrs", 0),
               off.get("dyn_moves", 0),
               off.get("dyn_moves", 0) - on.get("dyn_moves", 0)))
    print()
    print("### VM vs interpreter throughput (non-gating)")
    print()
    print("| sweep point | runs | vm s | interp s | speedup |")
    print("|---|---|---|---|---|")
    for _, suite, config in scale:
        r = by_key[(suite, config)]
        vm = r.get("vm_seconds", 0.0)
        interp = r.get("interp_seconds", 0.0)
        print("| %s | %d | %.4f | %.4f | %.2fx |" %
              (suite, r.get("runs", 0), vm, interp,
               interp / vm if vm > 0 else 0.0))
    print()
    print("Executed-instruction/move tallies and the output-trace digest "
          "are bit-identical run to run and gated by "
          "check_bench_regression.py; engine seconds are wall-clock and "
          "informational only.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
