#!/usr/bin/env python3
"""Analysis-count regression check for the bench JSON output.

Compares the per-(suite, config) records of a freshly generated
BENCH_compiletime.json against the committed baseline
(register-pressure records key on (suite, config, num_regs, allocator,
spill_mode), with the pre-strategy-tier defaults
chaitin-briggs/spill-everywhere filled in for old baselines). Three families of
checks, all pure counter/measurement diffs: independent of machine
speed, deterministic, and they fail the build whenever a change

  1. reintroduces a redundant analysis recomputation or interference
     work into the pipeline (decrease-only counters: dense liveness
     solves, interference-graph constructions, CFG/dominator builds,
     coalescer graph rebuilds and confirm scans, phi-coalescer pair
     queries, class-interference sweep probes);
  2. alters any pipeline *measurement* (moves, weighted moves,
     pre-coalesce moves, coalescer merges must be bit-identical — the
     class-interference engine is an exact replacement for the pairwise
     scan, so results never move, see docs/ANALYSIS.md);
  3. breaks the sweep engine's sublinearity: on the scale_n* suites the
     engine's liveness-probe count must keep shrinking relative to the
     pairwise bound (sum |A|*|B| per query) as functions grow.

Usage: check_bench_regression.py [--report-seconds] \
           <baseline.json> <fresh.json> \
           [<baseline2.json> <fresh2.json> ...]

Extra baseline/fresh pairs are checked with the same rules (CI passes
both BENCH_compiletime.json and BENCH_regpressure.json); the
sublinearity check only engages on files whose suites match scale_n*.

--report-seconds additionally prints a baseline-vs-fresh wall-clock
table (whole-pipeline 'seconds' per record, plus any per-pass
breakdown) as GitHub-flavored markdown. The table is informational
only — machine-dependent timings never gate — and CI uploads it as the
job's step summary. Records lacking a 'seconds' field are skipped.

A fresh count <= baseline passes (improvements update the committed
baseline on the next reference run). Everything that could hide a
regression fails loudly with the offending key named: a fresh count
above baseline, a measurement differing at all, a (suite, config)
record that exists in the baseline but not in the fresh output, a
checked counter or measurement field present on one side but missing
from the other, and bench files missing their top-level 'records' key
or per-record 'suite'/'config' keys (malformed input is a failure,
never a traceback). Exit status: 0 clean, 1 any failure, 2 usage.
Stdlib only.
"""

import json
import re
import sys

CHECKED_COUNTERS = (
    "liveness.analyses",
    "interference.graphs_built",
    "analysis.cfg_builds",
    "analysis.domtree_builds",
    "phicoalesce.pair_queries",
    "classinterf.probes",
    # The zero-rebuild coalescer: one gate scan and at most one graph
    # build per run; anything above the baseline means per-round
    # reconstruction crept back in.
    "coalesce.rebuilds",
    "coalesce.confirm_scans",
    # Out-of-SSA copy insertion: the replay emits repair/phi/pin copies
    # and nothing else; growth means elision (or the repair analysis)
    # regressed.
    "translate.inserts",
)

# Must match the baseline exactly: the tentpole engine work (and any
# future interference-path change) may only alter *how fast* verdicts
# are computed, never the verdicts — and these measurements are pure
# functions of the verdicts. Fields absent from both records (e.g. the
# spill fields on compile-time records) compare as equal.
IDENTICAL_FIELDS = (
    "moves",
    "weighted_moves",
    "moves_before_coalesce",
    "coalescer_merges",
    "spills",
    "spill_accesses",
    "failures",
    # Compile-service measurements (BENCH_server.json): the served IR is
    # deterministic, so framing counts and payload bytes are too.
    # Throughput lives in "seconds"/"functions_per_sec" and is never
    # gated; arena reuse is scheduling-dependent and likewise ungated.
    "frames",
    "batches",
    "functions",
    "bytes_in",
    "ir_bytes",
    "errors",
    # Execution-tier measurements (BENCH_exec.json): the bytecode VM and
    # the interpreter are deterministic, so executed-instruction and
    # executed-move tallies — and the digest of every run's output
    # trace — are bit-stable. vm_seconds/interp_seconds/speedup are
    # wall-clock and never gated.
    "runs",
    "dyn_instrs",
    "dyn_moves",
    "outputs",
)

# Sublinearity margin: the probes/pair_cost ratio of the largest scale_n*
# suite must be at most 1/SUBLINEAR_FACTOR of the smallest one's. The
# reference run measures a ~50x drop from scale_n40 to scale_n640; 4x
# leaves ample headroom for workload-generator drift.
SUBLINEAR_FACTOR = 4


class MalformedBench(Exception):
    """A bench JSON file that cannot even be keyed.

    Raised (and turned into a named failure by main) instead of letting
    a KeyError traceback escape: a truncated or restructured bench file
    must read as "this file is broken", never as "the check crashed".
    """


def records_by_key(doc, path):
    if not isinstance(doc, dict) or "records" not in doc:
        raise MalformedBench("%s: missing top-level 'records' key" % path)
    out = {}
    for idx, rec in enumerate(doc["records"]):
        for required in ("suite", "config"):
            if required not in rec:
                raise MalformedBench(
                    "%s: record #%d missing required key '%s'"
                    % (path, idx, required)
                )
        # Register-pressure records repeat each (suite, config) once per
        # simulated register count, allocator strategy, and spill model;
        # num_regs/allocator/spill_mode disambiguate them. The defaults
        # name the historical single-allocator records, so a baseline
        # from before the strategy tier keys identically to the fresh
        # chaitin-briggs/spill-everywhere records.
        key = (rec["suite"], rec["config"])
        if "num_regs" in rec:
            key += (
                rec["num_regs"],
                rec.get("allocator", "chaitin-briggs"),
                rec.get("spill_mode", "spill-everywhere"),
            )
        out[key] = rec
    return out


def key_str(key):
    return "/".join(str(part) for part in key)


def check_counters(baseline, fresh, failures):
    compared = 0
    for key, base_rec in sorted(baseline.items()):
        if key not in fresh:
            failures.append(
                "%s: record missing from fresh output" % key_str(key)
            )
            continue
        base_counters = base_rec.get("counters", {})
        fresh_counters = fresh[key].get("counters", {})
        for name in CHECKED_COUNTERS:
            compared += 1
            # A checked counter the baseline has but the fresh run lost
            # is itself a regression (a stat was renamed or its bump
            # deleted) — defaulting it to 0 would silently pass the
            # decrease-only comparison.
            if name in base_counters and name not in fresh_counters:
                failures.append(
                    "%s: counter %s present in baseline but missing "
                    "from fresh output" % (key_str(key), name)
                )
                continue
            base = base_counters.get(name, 0)
            new = fresh_counters.get(name, 0)
            if new > base:
                failures.append(
                    "%s: %s regressed %d -> %d"
                    % (key_str(key), name, base, new)
                )
        for name in IDENTICAL_FIELDS:
            compared += 1
            in_base = name in base_rec
            in_fresh = name in fresh[key]
            if in_base != in_fresh:
                failures.append(
                    "%s: measurement %s missing from %s output"
                    % (key_str(key), name,
                       "fresh" if in_base else "baseline")
                )
                continue
            base = base_rec.get(name)
            new = fresh[key].get(name)
            if base != new:
                failures.append(
                    "%s: measurement %s changed %r -> %r "
                    "(must be bit-identical)"
                    % (key_str(key), name, base, new)
                )
    return compared


def check_sublinearity(fresh, failures):
    """Engine probes must scale sublinearly in the pairwise bound."""
    points = []
    for key, rec in fresh.items():
        suite, config = key[0], key[1]
        m = re.match(r"scale_n(\d+)$", suite)
        if not m:
            continue
        counters = rec.get("counters", {})
        probes = counters.get("classinterf.probes", 0)
        pair_cost = counters.get("classinterf.pair_cost", 0)
        if probes and pair_cost:
            points.append((int(m.group(1)), suite, config, probes, pair_cost))
    if len(points) < 2:
        return 0
    points.sort()
    _, s_suite, s_config, s_probes, s_cost = points[0]
    _, l_suite, l_config, l_probes, l_cost = points[-1]
    # ratio(largest) * FACTOR <= ratio(smallest), cross-multiplied to
    # stay in integers.
    if l_probes * s_cost * SUBLINEAR_FACTOR > l_cost * s_probes:
        failures.append(
            "sweep sublinearity lost: %s/%s probes/pair_cost %d/%d vs "
            "%s/%s %d/%d (want a >= %dx ratio drop)"
            % (s_suite, s_config, s_probes, s_cost, l_suite, l_config,
               l_probes, l_cost, SUBLINEAR_FACTOR)
        )
    return len(points)


def seconds_report(baseline, fresh):
    """Markdown lines comparing wall-clock seconds, baseline vs fresh.

    Informational only: timings depend on the machine, so nothing here
    ever contributes a failure. Rows cover every (suite, config) with a
    'seconds' measurement on both sides; per-pass breakdowns ride along
    when both records carry matching per_pass_seconds entries.
    """
    lines = []
    for key, base_rec in sorted(baseline.items()):
        fresh_rec = fresh.get(key)
        if fresh_rec is None:
            continue
        base_s = base_rec.get("seconds")
        new_s = fresh_rec.get("seconds")
        if not isinstance(base_s, (int, float)) or \
                not isinstance(new_s, (int, float)) or new_s <= 0:
            continue
        lines.append(
            "| %s | total | %.4f | %.4f | %.2fx |"
            % (key_str(key), base_s, new_s, base_s / new_s)
        )
        base_pp = base_rec.get("per_pass_seconds", {})
        fresh_pp = fresh_rec.get("per_pass_seconds", {})
        if not isinstance(base_pp, dict) or not isinstance(fresh_pp, dict):
            continue
        for pname in sorted(base_pp):
            bp, fp = base_pp.get(pname), fresh_pp.get(pname)
            if not isinstance(bp, (int, float)) or \
                    not isinstance(fp, (int, float)) or fp <= 0:
                continue
            lines.append(
                "| %s | %s | %.4f | %.4f | %.2fx |"
                % (key_str(key), pname, bp, fp, bp / fp)
            )
    if not lines:
        return []
    header = [
        "### Wall-clock comparison (non-gating)",
        "",
        "| record | pass | baseline s | fresh s | speedup |",
        "|---|---|---|---|---|",
    ]
    return header + lines + [""]


def main(argv):
    args = list(argv[1:])
    report_seconds = "--report-seconds" in args
    if report_seconds:
        args.remove("--report-seconds")
    if len(args) < 2 or len(args) % 2 != 0:
        sys.stderr.write(__doc__)
        return 2

    failures = []
    report = []
    compared = records = scale_points = 0
    for i in range(0, len(args), 2):
        try:
            with open(args[i]) as f:
                baseline = records_by_key(json.load(f), args[i])
            with open(args[i + 1]) as f:
                fresh = records_by_key(json.load(f), args[i + 1])
        except (MalformedBench, json.JSONDecodeError, OSError) as err:
            failures.append(str(err))
            continue
        compared += check_counters(baseline, fresh, failures)
        scale_points += check_sublinearity(fresh, failures)
        records += len(baseline)
        if report_seconds:
            report.extend(seconds_report(baseline, fresh))

    if report:
        print("\n".join(report))
    if failures:
        print("bench regression check FAILED:")
        for line in failures:
            print("  " + line)
        return 1
    print(
        "bench regression check passed: %d counters/measurements across "
        "%d records, sweep sublinearity on %d scale points"
        % (compared, records, scale_points)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
