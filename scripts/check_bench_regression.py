#!/usr/bin/env python3
"""Analysis-count regression check for the bench JSON output.

Compares the per-(suite, config) analysis counters of a freshly
generated BENCH_compiletime.json against the committed baseline. The
checked counters count *computations* (dense liveness solves,
interference-graph constructions, CFG/dominator builds), so the check is
a pure counter diff: independent of machine speed, deterministic, and
it fails the build whenever a change reintroduces a redundant analysis
recomputation into the pipeline (see docs/ANALYSIS.md).

Usage: check_bench_regression.py <baseline.json> <fresh.json>

A fresh count <= baseline passes (improvements update the committed
baseline on the next reference run); a fresh count above baseline, or a
(suite, config) record that exists in the baseline but not in the fresh
output, fails. Stdlib only.
"""

import json
import sys

CHECKED_COUNTERS = (
    "liveness.analyses",
    "interference.graphs_built",
    "analysis.cfg_builds",
    "analysis.domtree_builds",
)


def records_by_key(doc):
    out = {}
    for rec in doc["records"]:
        out[(rec["suite"], rec["config"])] = rec.get("counters", {})
    return out


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1]) as f:
        baseline = records_by_key(json.load(f))
    with open(argv[2]) as f:
        fresh = records_by_key(json.load(f))

    failures = []
    compared = 0
    for key, base_counters in sorted(baseline.items()):
        if key not in fresh:
            failures.append("%s/%s: record missing from fresh output" % key)
            continue
        fresh_counters = fresh[key]
        for name in CHECKED_COUNTERS:
            base = base_counters.get(name, 0)
            new = fresh_counters.get(name, 0)
            compared += 1
            if new > base:
                failures.append(
                    "%s/%s: %s regressed %d -> %d"
                    % (key[0], key[1], name, base, new)
                )

    if failures:
        print("bench regression check FAILED:")
        for line in failures:
            print("  " + line)
        return 1
    print(
        "bench regression check passed: %d counters across %d records"
        % (compared, len(baseline))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
