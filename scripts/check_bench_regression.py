#!/usr/bin/env python3
"""Analysis-count regression check for the bench JSON output.

Compares the per-(suite, config) records of a freshly generated
BENCH_compiletime.json against the committed baseline. Three families of
checks, all pure counter/measurement diffs: independent of machine
speed, deterministic, and they fail the build whenever a change

  1. reintroduces a redundant analysis recomputation or interference
     work into the pipeline (decrease-only counters: dense liveness
     solves, interference-graph constructions, CFG/dominator builds,
     coalescer pair queries, class-interference sweep probes);
  2. alters any pipeline *measurement* (moves, weighted moves,
     pre-coalesce moves, coalescer merges must be bit-identical — the
     class-interference engine is an exact replacement for the pairwise
     scan, so results never move, see docs/ANALYSIS.md);
  3. breaks the sweep engine's sublinearity: on the scale_n* suites the
     engine's liveness-probe count must keep shrinking relative to the
     pairwise bound (sum |A|*|B| per query) as functions grow.

Usage: check_bench_regression.py <baseline.json> <fresh.json>

A fresh count <= baseline passes (improvements update the committed
baseline on the next reference run); a fresh count above baseline, a
measurement differing at all, or a (suite, config) record that exists in
the baseline but not in the fresh output, fails. Stdlib only.
"""

import json
import re
import sys

CHECKED_COUNTERS = (
    "liveness.analyses",
    "interference.graphs_built",
    "analysis.cfg_builds",
    "analysis.domtree_builds",
    "phicoalesce.pair_queries",
    "classinterf.probes",
)

# Must match the baseline exactly: the tentpole engine work (and any
# future interference-path change) may only alter *how fast* verdicts
# are computed, never the verdicts — and these measurements are pure
# functions of the verdicts.
IDENTICAL_FIELDS = (
    "moves",
    "weighted_moves",
    "moves_before_coalesce",
    "coalescer_merges",
)

# Sublinearity margin: the probes/pair_cost ratio of the largest scale_n*
# suite must be at most 1/SUBLINEAR_FACTOR of the smallest one's. The
# reference run measures a ~50x drop from scale_n40 to scale_n640; 4x
# leaves ample headroom for workload-generator drift.
SUBLINEAR_FACTOR = 4


def records_by_key(doc):
    out = {}
    for rec in doc["records"]:
        out[(rec["suite"], rec["config"])] = rec
    return out


def check_counters(baseline, fresh, failures):
    compared = 0
    for key, base_rec in sorted(baseline.items()):
        if key not in fresh:
            failures.append("%s/%s: record missing from fresh output" % key)
            continue
        base_counters = base_rec.get("counters", {})
        fresh_counters = fresh[key].get("counters", {})
        for name in CHECKED_COUNTERS:
            base = base_counters.get(name, 0)
            new = fresh_counters.get(name, 0)
            compared += 1
            if new > base:
                failures.append(
                    "%s/%s: %s regressed %d -> %d"
                    % (key[0], key[1], name, base, new)
                )
        for name in IDENTICAL_FIELDS:
            base = base_rec.get(name)
            new = fresh[key].get(name)
            compared += 1
            if base != new:
                failures.append(
                    "%s/%s: measurement %s changed %r -> %r "
                    "(must be bit-identical)"
                    % (key[0], key[1], name, base, new)
                )
    return compared


def check_sublinearity(fresh, failures):
    """Engine probes must scale sublinearly in the pairwise bound."""
    points = []
    for (suite, config), rec in fresh.items():
        m = re.match(r"scale_n(\d+)$", suite)
        if not m:
            continue
        counters = rec.get("counters", {})
        probes = counters.get("classinterf.probes", 0)
        pair_cost = counters.get("classinterf.pair_cost", 0)
        if probes and pair_cost:
            points.append((int(m.group(1)), suite, config, probes, pair_cost))
    if len(points) < 2:
        return 0
    points.sort()
    _, s_suite, s_config, s_probes, s_cost = points[0]
    _, l_suite, l_config, l_probes, l_cost = points[-1]
    # ratio(largest) * FACTOR <= ratio(smallest), cross-multiplied to
    # stay in integers.
    if l_probes * s_cost * SUBLINEAR_FACTOR > l_cost * s_probes:
        failures.append(
            "sweep sublinearity lost: %s/%s probes/pair_cost %d/%d vs "
            "%s/%s %d/%d (want a >= %dx ratio drop)"
            % (s_suite, s_config, s_probes, s_cost, l_suite, l_config,
               l_probes, l_cost, SUBLINEAR_FACTOR)
        )
    return len(points)


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1]) as f:
        baseline = records_by_key(json.load(f))
    with open(argv[2]) as f:
        fresh = records_by_key(json.load(f))

    failures = []
    compared = check_counters(baseline, fresh, failures)
    scale_points = check_sublinearity(fresh, failures)

    if failures:
        print("bench regression check FAILED:")
        for line in failures:
            print("  " + line)
        return 1
    print(
        "bench regression check passed: %d counters/measurements across "
        "%d records, sweep sublinearity on %d scale points"
        % (compared, len(baseline), scale_points)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
