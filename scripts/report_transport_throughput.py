#!/usr/bin/env python3
"""Client-level transport throughput: batched socket vs per-frame stdio.

Times two complete lao-client runs over the same jobs and prints a
GitHub-flavored markdown table plus the functions/sec ratio:

  * per-frame stdio — one LAO1 REQ per function through the spawned
    server's stdin/stdout pipes (the pre-socket transport);
  * batched socket — the same functions packed into LAO1 BAT frames
    over a Unix-domain socket.

Two workloads, because they bracket the service overhead from opposite
sides:

  * selftest — every suite function once (146 compiles, byte-identity
    checked against the one-shot pipeline). Compile-bound: the ratio
    hovers near 1x and that is the honest number for big functions.
  * tiny — one small function replayed N times (default 20000). The
    per-frame framing/record/reorder cost dominates, so this is where
    batching pays; the reference container measures >2x.

Timings are machine-dependent and never gate (exit 0 unless a client
run itself fails); CI appends the output to the step summary. Stdlib
only.

Usage: report_transport_throughput.py <build-dir>
           [--tiny-jobs=N] [--batch=N] [--reps=N] [--workers=N]
"""

import os
import statistics
import subprocess
import sys
import tempfile
import time

TINY_FUNC = """\
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, then, else
then:
  %x = addi %a, 1
  jump join
else:
  %y = addi %b, 2
  jump join
join:
  %z = phi [%x, then], [%y, else]
  ret %z
}
"""


def timed_run(cmd):
    t0 = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE)
    elapsed = time.monotonic() - t0
    if proc.returncode != 0:
        sys.stderr.write("FAILED: %s\n%s" %
                         (" ".join(cmd), proc.stderr.decode()))
        sys.exit(1)
    return elapsed


def median_secs(cmd, reps):
    return statistics.median(timed_run(cmd) for _ in range(reps))


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    build = argv[1]
    tiny_jobs, batch, reps, workers = 20000, 256, 3, 4
    for arg in argv[2:]:
        if arg.startswith("--tiny-jobs="):
            tiny_jobs = int(arg.split("=", 1)[1])
        elif arg.startswith("--batch="):
            batch = int(arg.split("=", 1)[1])
        elif arg.startswith("--reps="):
            reps = int(arg.split("=", 1)[1])
        elif arg.startswith("--workers="):
            workers = int(arg.split("=", 1)[1])
        else:
            sys.stderr.write("unknown option %r\n" % arg)
            return 2

    client = os.path.join(build, "tools", "lao-client")
    server = os.path.join(build, "tools", "lao-server")
    with tempfile.TemporaryDirectory() as tmp:
        tiny = os.path.join(tmp, "tiny.lai")
        with open(tiny, "w") as f:
            f.write(TINY_FUNC)
        sock = os.path.join(tmp, "throughput.sock")

        def stdio_cmd(jobs):
            return [client, "--server=%s --workers=%d" % (server, workers),
                    "--quiet"] + jobs

        def socket_cmd(jobs):
            return [client,
                    "--server=%s --workers=%d --listen-unix=%s"
                    % (server, workers, sock),
                    "--connect-unix=%s" % sock, "--batch=%d" % batch,
                    "--quiet"] + jobs

        rows = []
        for name, jobs, extra in (
                ("selftest (146 fn)", ["--selftest"], []),
                ("tiny x%d" % tiny_jobs, [tiny] * tiny_jobs, [])):
            n_fns = 146 if jobs == ["--selftest"] else tiny_jobs
            stdio_s = median_secs(stdio_cmd(jobs + extra), reps)
            sock_s = median_secs(socket_cmd(jobs + extra), reps)
            rows.append((name, n_fns, stdio_s, sock_s))

    print("### Transport throughput: batched socket vs per-frame stdio "
          "(non-gating)")
    print()
    print("%d workers, batch=%d, median of %d complete client runs "
          "(spawn + replay + shutdown)." % (workers, batch, reps))
    print()
    print("| workload | functions | per-frame stdio fn/s | "
          "batched socket fn/s | speedup |")
    print("|---|---|---|---|---|")
    for name, n_fns, stdio_s, sock_s in rows:
        print("| %s | %d | %.0f | %.0f | %.2fx |" %
              (name, n_fns, n_fns / stdio_s, n_fns / sock_s,
               stdio_s / sock_s))
    print()
    print("The selftest replay is compile-bound (framing is a small tax "
          "on big functions); the tiny workload isolates the per-frame "
          "overhead that batching amortizes.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
