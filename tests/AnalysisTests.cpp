//===- AnalysisTests.cpp - Dominators, loops, liveness tests ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

/// Diamond with a loop on one arm:
///   entry -> head; head -> body|tail; body -> head; tail: ret
std::unique_ptr<Function> makeLoopDiamond() {
  return parse(R"(
func @f {
entry:
  input %a
  %i = make 0
  jump head
head:
  %iv = phi [%i, entry], [%in, body]
  %c = cmplt %iv, %a
  branch %c, body, tail
body:
  %in = addi %iv, 1
  jump head
tail:
  ret %iv
}
)");
}

} // namespace

TEST(Dominators, LinearChain) {
  auto F = parse(R"(
func @f {
a:
  input %x
  jump b
b:
  jump c
c:
  ret %x
}
)");
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  BasicBlock *A = F->blockByName("a");
  BasicBlock *B = F->blockByName("b");
  BasicBlock *C = F->blockByName("c");
  EXPECT_EQ(DT.idom(A), nullptr);
  EXPECT_EQ(DT.idom(B), A);
  EXPECT_EQ(DT.idom(C), B);
  EXPECT_TRUE(DT.dominates(A, C));
  EXPECT_TRUE(DT.strictlyDominates(A, C));
  EXPECT_FALSE(DT.dominates(C, A));
  EXPECT_TRUE(DT.dominates(B, B));
  EXPECT_EQ(DT.depth(C), 2u);
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  auto F = parse(R"(
func @f {
entry:
  input %x
  branch %x, l, r
l:
  jump j
r:
  jump j
j:
  ret %x
}
)");
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  BasicBlock *E = F->blockByName("entry");
  BasicBlock *L = F->blockByName("l");
  BasicBlock *J = F->blockByName("j");
  EXPECT_EQ(DT.idom(J), E);
  EXPECT_FALSE(DT.dominates(L, J));
  EXPECT_TRUE(DT.dominates(E, J));
}

TEST(Dominators, FrontierOfDiamondArmsIsJoin) {
  auto F = parse(R"(
func @f {
entry:
  input %x
  branch %x, l, r
l:
  jump j
r:
  jump j
j:
  ret %x
}
)");
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  DominanceFrontier DF(Cfg, DT);
  BasicBlock *L = F->blockByName("l");
  BasicBlock *R = F->blockByName("r");
  BasicBlock *J = F->blockByName("j");
  ASSERT_EQ(DF.frontier(L).size(), 1u);
  EXPECT_EQ(DF.frontier(L)[0], J);
  ASSERT_EQ(DF.frontier(R).size(), 1u);
  EXPECT_EQ(DF.frontier(R)[0], J);
  EXPECT_TRUE(DF.frontier(J).empty());
}

TEST(Dominators, FrontierOfLoopBodyContainsHeader) {
  auto F = makeLoopDiamond();
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  DominanceFrontier DF(Cfg, DT);
  BasicBlock *Body = F->blockByName("body");
  BasicBlock *Head = F->blockByName("head");
  bool Found = false;
  for (BasicBlock *B : DF.frontier(Body))
    Found |= B == Head;
  EXPECT_TRUE(Found);
  // The header's own frontier also contains itself (it is in the loop).
  Found = false;
  for (BasicBlock *B : DF.frontier(Head))
    Found |= B == Head;
  EXPECT_TRUE(Found);
}

TEST(LoopInfo, SimpleLoopDepths) {
  auto F = makeLoopDiamond();
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  LoopInfo LI(Cfg, DT);
  EXPECT_EQ(LI.numLoops(), 1u);
  EXPECT_TRUE(LI.isHeader(F->blockByName("head")));
  EXPECT_EQ(LI.depth(F->blockByName("head")), 1u);
  EXPECT_EQ(LI.depth(F->blockByName("body")), 1u);
  EXPECT_EQ(LI.depth(F->blockByName("entry")), 0u);
  EXPECT_EQ(LI.depth(F->blockByName("tail")), 0u);
}

TEST(LoopInfo, NestedLoopDepths) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump oh
oh:
  %c1 = cmplt %a, %a
  branch %c1, ih, done
ih:
  %c2 = cmpeq %a, %a
  branch %c2, ib, ohlatch
ib:
  jump ih
ohlatch:
  jump oh
done:
  ret %a
}
)");
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  LoopInfo LI(Cfg, DT);
  EXPECT_EQ(LI.numLoops(), 2u);
  EXPECT_EQ(LI.depth(F->blockByName("oh")), 1u);
  EXPECT_EQ(LI.depth(F->blockByName("ih")), 2u);
  EXPECT_EQ(LI.depth(F->blockByName("ib")), 2u);
  EXPECT_EQ(LI.depth(F->blockByName("done")), 0u);
}

TEST(Liveness, PhiArgLiveOutOfPredNotLiveInOfBlock) {
  auto F = makeLoopDiamond();
  CFG Cfg(*F);
  Liveness LV(Cfg);
  BasicBlock *Entry = F->blockByName("entry");
  BasicBlock *Head = F->blockByName("head");
  RegId I = F->findValue("i");
  ASSERT_NE(I, InvalidReg);
  // %i flows into the phi: live-out of entry, but NOT live-in of head
  // (the phi use happens at the end of the predecessor — paper
  // Section 3.2 Class 2 semantics).
  EXPECT_TRUE(LV.isLiveOut(I, Entry));
  EXPECT_FALSE(LV.isLiveIn(I, Head));
}

TEST(Liveness, PhiResultLiveInDownstream) {
  auto F = makeLoopDiamond();
  CFG Cfg(*F);
  Liveness LV(Cfg);
  RegId Iv = F->findValue("iv");
  ASSERT_NE(Iv, InvalidReg);
  EXPECT_TRUE(LV.isLiveIn(Iv, F->blockByName("tail")));
  EXPECT_TRUE(LV.isLiveOut(Iv, F->blockByName("head")));
  // Not live-in at function entry.
  EXPECT_FALSE(LV.isLiveIn(Iv, F->blockByName("entry")));
}

TEST(Liveness, IsLiveAfterScansUsesAndDefs) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = add %a, %b
  %y = add %x, %a
  %z = add %y, %y
  ret %z
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  BasicBlock *E = &F->entry();
  RegId A = F->findValue("a");
  RegId X = F->findValue("x");
  auto It = E->instructions().begin(); // input
  ++It;                                // x = add a, b
  // After defining x: a is still used by y's def; x used by y.
  EXPECT_TRUE(LV.isLiveAfter(A, E, It));
  EXPECT_TRUE(LV.isLiveAfter(X, E, It));
  ++It; // y = add x, a
  // After y: neither a nor x is used again.
  EXPECT_FALSE(LV.isLiveAfter(A, E, It));
  EXPECT_FALSE(LV.isLiveAfter(X, E, It));
}

TEST(Liveness, IsLiveAroundCopy) {
  // A copy is an ordinary use: the source stays live up to (and through)
  // the move, and dies there when the move is its last use.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %b = mov %a
  %r = add %b, %b
  ret %r
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  BasicBlock *E = &F->entry();
  RegId A = F->findValue("a"), B = F->findValue("b");
  auto It = E->instructions().begin(); // input
  ++It;                                // b = mov a
  EXPECT_TRUE(LV.isLiveBefore(A, E, It));
  EXPECT_FALSE(LV.isLiveAfter(A, E, It)) << "copy source dead after move";
  EXPECT_FALSE(LV.isLiveBefore(B, E, It));
  EXPECT_TRUE(LV.isLiveAfter(B, E, It));
  ++It; // r = add b, b
  EXPECT_TRUE(LV.isLiveBefore(B, E, It));
  EXPECT_FALSE(LV.isLiveAfter(B, E, It));
}

TEST(Liveness, IsLiveAroundParallelCopy) {
  // parcopy %a = %b, %b = %a swaps: both sources are live before, both
  // destinations live after; the pre-swap values die at the parcopy.
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  parcopy %a = %b, %b = %a
  %r = add %a, %b
  ret %r
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  BasicBlock *E = &F->entry();
  RegId A = F->findValue("a"), B = F->findValue("b");
  auto It = E->instructions().begin(); // input
  ++It;                                // parcopy
  EXPECT_TRUE(LV.isLiveBefore(A, E, It));
  EXPECT_TRUE(LV.isLiveBefore(B, E, It));
  EXPECT_TRUE(LV.isLiveAfter(A, E, It));
  EXPECT_TRUE(LV.isLiveAfter(B, E, It));
  ++It; // r = add a, b -- last uses
  EXPECT_FALSE(LV.isLiveAfter(A, E, It));
  EXPECT_FALSE(LV.isLiveAfter(B, E, It));
  EXPECT_TRUE(LV.isLiveAfter(F->findValue("r"), E, It));
}

TEST(Liveness, IsLiveBeforeAtBlockBoundary) {
  // isLiveBefore at a block's first instruction must agree with live-in.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %c = cmplt %a, %a
  branch %c, left, right
left:
  %x = addi %a, 1
  ret %x
right:
  ret %a
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  BasicBlock *L = F->blockByName("left");
  RegId A = F->findValue("a");
  EXPECT_TRUE(LV.isLiveIn(A, L));
  EXPECT_TRUE(LV.isLiveBefore(A, L, L->instructions().begin()));
  EXPECT_FALSE(LV.isLiveBefore(F->findValue("x"), L,
                               L->instructions().begin()));
}

TEST(Liveness, NonSSAMultipleDefs) {
  // Non-SSA: v redefined; the first value dies at the redefinition.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %v = addi %a, 1
  %u = addi %v, 2
  %v = addi %a, 3
  %w = add %v, %u
  ret %w
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  BasicBlock *E = &F->entry();
  RegId V = F->findValue("v");
  auto It = E->instructions().begin();
  ++It; // first def of v
  EXPECT_TRUE(LV.isLiveAfter(V, E, It));
  ++It; // u = addi v, 2: v dead until redefined
  EXPECT_FALSE(LV.isLiveAfter(V, E, It));
}
