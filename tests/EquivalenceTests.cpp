//===- EquivalenceTests.cpp - Out-of-SSA semantic preservation -------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The central property suite: every out-of-SSA pipeline configuration
// must preserve the full observable trace (outputs + return value) of
// every program, across a sweep of generated programs and input vectors.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/Pipeline.h"
#include "ssa/SSAVerifier.h"
#include "workloads/Generator.h"
#include "workloads/PaperExamples.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

/// One sweep point: a generator seed plus a pipeline preset.
struct SweepPoint {
  uint64_t Seed;
  const char *Preset;
};

void printTo(std::ostream &OS, const SweepPoint &P) {
  OS << "seed" << P.Seed << "_" << P.Preset;
}

std::string sweepName(const testing::TestParamInfo<SweepPoint> &Info) {
  std::string S = "seed" + std::to_string(Info.param.Seed) + "_" +
                  Info.param.Preset;
  for (char &C : S)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

class PipelineEquivalence : public testing::TestWithParam<SweepPoint> {};

TEST_P(PipelineEquivalence, PreservesObservableBehaviour) {
  const SweepPoint &Point = GetParam();

  GeneratorParams P;
  P.Seed = Point.Seed;
  P.NumStatements = 16 + Point.Seed % 23;
  P.MaxNesting = 1 + Point.Seed % 3;
  P.NumParams = 1 + Point.Seed % 4;
  P.UseSP = Point.Seed % 3 == 0;
  P.UsePsi = Point.Seed % 5 == 2;
  P.ExtraCopies = Point.Seed % 4 == 3;

  auto F = generateProgram(P, "prog" + std::to_string(Point.Seed));
  normalizeToOptimizedSSA(*F);
  expectWellFormed(*F);
  for (const std::string &D : verifySSA(*F))
    FAIL() << D;

  auto Translated = cloneFunction(*F);
  PipelineConfig Config = pipelinePreset(Point.Preset);
  runPipeline(*Translated, Config);
  expectWellFormed(*Translated);

  // No phis (and no parallel copies) may survive the pipeline.
  for (const auto &BB : Translated->blocks())
    for (const Instruction &I : BB->instructions()) {
      EXPECT_FALSE(I.isPhi()) << "phi survived out-of-SSA";
      EXPECT_FALSE(I.isParCopy()) << "parcopy survived sequentialization";
    }

  for (uint64_t Set = 0; Set < 3; ++Set) {
    std::vector<uint64_t> Args;
    for (unsigned K = 0; K < P.NumParams; ++K)
      Args.push_back((Point.Seed * 131 + Set * 17 + K * 7) % 997);
    expectEquivalent(*F, *Translated, Args);
  }
}

std::vector<SweepPoint> sweepPoints() {
  // The Sreedhar-based configurations are excluded from SP-heavy seeds
  // below by the preset list used per seed class; the paper itself
  // reports Sreedhar+SP as incorrect on some codes.
  static const char *const AllPresets[] = {
      "Lphi+C", "C", "Lphi,ABI+C", "LABI+C", "C,naiveABI+C",
      "Lphi,ABI", "LABI"};
  static const char *const SreedharPresets[] = {"Sphi+C", "Sphi+LABI+C",
                                                "Sphi"};
  std::vector<SweepPoint> Points;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    for (const char *Preset : AllPresets)
      Points.push_back({Seed, Preset});
    if (Seed % 3 != 0) // Skip SP-frame seeds for Sreedhar configs.
      for (const char *Preset : SreedharPresets)
        Points.push_back({Seed, Preset});
  }
  return Points;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineEquivalence,
                         testing::ValuesIn(sweepPoints()), sweepName);

/// Interference-mode and heuristic variants must also be semantics
/// preserving (they may only change the number of moves).
struct VariantPoint {
  uint64_t Seed;
  InterferenceMode Mode;
  bool Depth;
};

class VariantEquivalence : public testing::TestWithParam<VariantPoint> {};

TEST_P(VariantEquivalence, PreservesObservableBehaviour) {
  const VariantPoint &Point = GetParam();
  GeneratorParams P;
  P.Seed = Point.Seed;
  P.NumStatements = 24;
  P.MaxNesting = 3;
  P.NumParams = 2;
  P.UseSP = Point.Seed % 2 == 0;

  auto F = generateProgram(P, "vprog" + std::to_string(Point.Seed));
  normalizeToOptimizedSSA(*F);

  auto Translated = cloneFunction(*F);
  PipelineConfig Config = pipelinePreset("Lphi,ABI+C");
  Config.Mode = Point.Mode;
  Config.PhiOpts.DepthConstrained = Point.Depth;
  runPipeline(*Translated, Config);

  for (uint64_t Set = 0; Set < 2; ++Set)
    expectEquivalent(*F, *Translated, {Point.Seed * 3 + Set, Set});
}

std::vector<VariantPoint> variantPoints() {
  std::vector<VariantPoint> Points;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Points.push_back({Seed, InterferenceMode::Precise, true});
    Points.push_back({Seed, InterferenceMode::Optimistic, false});
    Points.push_back({Seed, InterferenceMode::Pessimistic, false});
  }
  return Points;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariantEquivalence, testing::ValuesIn(variantPoints()),
    [](const testing::TestParamInfo<VariantPoint> &Info) {
      const char *Mode =
          Info.param.Mode == InterferenceMode::Precise
              ? "precise"
              : Info.param.Mode == InterferenceMode::Optimistic
                    ? "optimistic"
                    : "pessimistic";
      return "seed" + std::to_string(Info.param.Seed) + "_" + Mode +
             (Info.param.Depth ? "_depth" : "");
    });

/// The paper-figure programs must survive every applicable pipeline.
TEST(FigureEquivalence, AllFiguresAllPresets) {
  static const char *const Presets[] = {"Lphi+C", "C", "Lphi,ABI+C",
                                        "LABI+C", "C,naiveABI+C"};
  for (const Workload &W : makeExamplesSuite()) {
    for (const char *Preset : Presets) {
      auto Translated = cloneFunction(*W.F);
      runPipeline(*Translated, pipelinePreset(Preset));
      for (const auto &Args : W.Inputs) {
        SCOPED_TRACE(std::string(W.Name) + " / " + Preset);
        expectEquivalent(*W.F, *Translated, Args);
      }
    }
  }
}

} // namespace
