//===- SSATests.cpp - SSA construction and transform tests ------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ssa/SSAConstruction.h"
#include "ssa/SSAVerifier.h"
#include "ssa/Transforms.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

unsigned countPhis(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      if (I.isPhi())
        ++N;
  return N;
}

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Op)
        ++N;
  return N;
}

} // namespace

TEST(SSAConstruction, DiamondGetsOnePhi) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %v = make 0
  branch %a, t, e
t:
  %v = make 1
  jump j
e:
  %v = make 2
  jump j
j:
  output %v
  ret %v
}
)");
  SSAStats Stats = buildSSA(*F);
  EXPECT_EQ(Stats.NumPhisInserted, 1u);
  expectWellFormed(*F);
  for (const auto &D : verifySSA(*F))
    FAIL() << D;
  // Behaviour preserved.
  EXPECT_EQ(interpret(*F, {1}).RetValue, 1u);
  EXPECT_EQ(interpret(*F, {0}).RetValue, 2u);
}

TEST(SSAConstruction, PrunedSSASkipsDeadJoins) {
  // v is dead after the diamond: pruned SSA must not place a phi.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %v = make 0
  branch %a, t, e
t:
  %v = make 1
  jump j
e:
  %v = make 2
  jump j
j:
  ret %a
}
)");
  SSAStats Stats = buildSSA(*F);
  EXPECT_EQ(Stats.NumPhisInserted, 0u);
}

TEST(SSAConstruction, LoopVariableGetsHeaderPhi) {
  auto F = parse(R"(
func @f {
entry:
  input %n
  %i = make 0
  %acc = make 0
  jump head
head:
  %c = cmplt %i, %n
  branch %c, body, done
body:
  %acc = add %acc, %i
  %i = addi %i, 1
  jump head
done:
  ret %acc
}
)");
  auto Before = interpret(*F, {5});
  buildSSA(*F);
  expectWellFormed(*F);
  for (const auto &D : verifySSA(*F))
    FAIL() << D;
  BasicBlock *Head = F->blockByName("head");
  unsigned HeadPhis = 0;
  for (const Instruction &I : Head->instructions())
    if (I.isPhi())
      ++HeadPhis;
  EXPECT_EQ(HeadPhis, 2u) << "i and acc both need header phis";
  // 0+1+2+3+4 = 10.
  auto After = interpret(*F, {5});
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.RetValue, 10u);
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(SSAConstruction, GeneratedProgramsVerify) {
  for (uint64_t Seed = 100; Seed < 112; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 25;
    P.MaxNesting = 3;
    P.UseSP = Seed % 2 == 0;
    P.UsePsi = true;
    auto F = generateProgram(P, "g" + std::to_string(Seed));
    auto Before = interpret(*F, {1, 2});
    buildSSA(*F);
    expectWellFormed(*F);
    for (const auto &D : verifySSA(*F))
      FAIL() << "seed " << Seed << ": " << D;
    auto After = interpret(*F, {1, 2});
    EXPECT_TRUE(Before.sameObservable(After)) << "seed " << Seed;
  }
}

TEST(SSAVerifier, CatchesDoubleAssignment) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %x = make 1
  %x = make 2
  ret %x
}
)");
  auto Diags = verifySSA(*F);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("more than once"), std::string::npos);
}

TEST(SSAVerifier, CatchesNonDominatingDef) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, j
t:
  %x = make 1
  jump j
j:
  ret %x
}
)");
  auto Diags = verifySSA(*F);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("dominate"), std::string::npos);
}

TEST(SSAVerifier, PhiArgCheckedAtPredEnd) {
  // The back-edge phi argument is defined later in the block — legal,
  // since the use happens at the end of the predecessor.
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump head
head:
  %x = phi [%a, entry], [%y, head2]
  %y = addi %x, 1
  %c = cmplt %y, %a
  branch %c, head2, done
head2:
  jump head
done:
  ret %x
}
)");
  EXPECT_TRUE(verifySSA(*F).empty());
}

TEST(Transforms, CopyPropagationRemovesMovesAndTrivialPhis) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %b = mov %a
  %c = mov %b
  branch %a, t, e
t:
  jump j
e:
  jump j
j:
  %p = phi [%c, t], [%c, e]
  %r = add %p, %b
  ret %r
}
)");
  auto Before = interpret(*F, {21});
  unsigned Removed = propagateCopies(*F);
  EXPECT_EQ(Removed, 3u); // two movs + one trivial phi
  EXPECT_EQ(countOpcode(*F, Opcode::Mov), 0u);
  EXPECT_EQ(countPhis(*F), 0u);
  auto After = interpret(*F, {21});
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(Transforms, CopyPropagationKeepsPinnedCopies) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %b^R0 = mov %a
  ret %b^R0
}
)");
  EXPECT_EQ(propagateCopies(*F), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Mov), 1u);
}

TEST(Transforms, ValueNumberingRemovesRedundantComputation) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = add %a, %b
  %y = add %a, %b
  %z = add %x, %y
  ret %z
}
)");
  auto Before = interpret(*F, {3, 4});
  unsigned Removed = valueNumber(*F);
  EXPECT_EQ(Removed, 1u);
  auto After = interpret(*F, {3, 4});
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(Transforms, ValueNumberingIsDominatorScoped) {
  // The same expression in sibling branches must NOT be merged.
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  branch %a, t, e
t:
  %x = add %a, %b
  output %x
  jump j
e:
  %y = add %a, %b
  output %y
  jump j
j:
  ret %a
}
)");
  EXPECT_EQ(valueNumber(*F), 0u);
}

TEST(Transforms, ValueNumberingSkipsImpureOps) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %x = load %p
  %y = load %p
  %c1 = call @f(%p)
  %c2 = call @f(%p)
  %s = add %x, %y
  %t = add %c1, %c2
  %r = add %s, %t
  ret %r
}
)");
  EXPECT_EQ(valueNumber(*F), 0u);
}

TEST(Transforms, DeadCodeEliminationIsTransitive) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %d1 = addi %a, 1
  %d2 = addi %d1, 2
  %d3 = addi %d2, 3
  ret %a
}
)");
  EXPECT_EQ(eliminateDeadCode(*F), 3u);
  EXPECT_EQ(countOpcode(*F, Opcode::AddI), 0u);
}

TEST(Transforms, DeadCodeKeepsSideEffects) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %p = make 4096
  store %p, %a
  %r = call @f(%a)
  output %a
  ret %a
}
)");
  // The call's result is unused, but calls are effectful here; nothing
  // may be deleted.
  EXPECT_EQ(eliminateDeadCode(*F), 0u);
}

TEST(Transforms, NormalizationPreservesSemantics) {
  for (uint64_t Seed = 300; Seed < 308; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 22;
    P.MaxNesting = 2;
    P.ExtraCopies = true;
    auto F = generateProgram(P, "n" + std::to_string(Seed));
    auto Before = interpret(*F, {4, 5});
    buildSSA(*F);
    propagateCopies(*F);
    valueNumber(*F);
    propagateCopies(*F);
    eliminateDeadCode(*F);
    expectWellFormed(*F);
    for (const auto &D : verifySSA(*F))
      FAIL() << "seed " << Seed << ": " << D;
    auto After = interpret(*F, {4, 5});
    EXPECT_TRUE(Before.sameObservable(After)) << "seed " << Seed;
  }
}
