//===- SreedharTests.cpp - CSSA conversion tests ----------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/CFG.h"
#include "outofssa/MoveStats.h"
#include "outofssa/Pipeline.h"
#include "outofssa/Sreedhar.h"
#include "ssa/SSAVerifier.h"
#include "workloads/Generator.h"
#include "workloads/PaperExamples.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(Sreedhar, NoCopiesWhenWebIsInterferenceFree) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1 = make 1
  jump j
e:
  %x2 = make 2
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  ret %x
}
)");
  splitCriticalEdges(*F);
  SreedharStats Stats = convertToCSSA(*F);
  EXPECT_EQ(Stats.NumPhisProcessed, 1u);
  EXPECT_EQ(Stats.NumCopiesInserted, 0u);
}

TEST(Sreedhar, InsertsCopyForInterferingArg) {
  // Figure 5's shape: x1 and x2 interfere; one copy restores CSSA.
  auto F = makeFigure5();
  auto Before = cloneFunction(*F);
  splitCriticalEdges(*F);
  SreedharStats Stats = convertToCSSA(*F);
  EXPECT_GE(Stats.NumCopiesInserted, 1u);
  EXPECT_TRUE(verifySSA(*F).empty()) << "conversion preserves SSA";
  expectEquivalent(*Before, *F, {2, 5});
}

TEST(Sreedhar, LostCopyGetsResolved) {
  // The phi result is live out of the latch: without a copy the web
  // cannot be merged (the lost-copy situation).
  auto F = parse(R"(
func @f {
entry:
  input %n
  %x0 = make 0
  jump head
head:
  %x = phi [%x0, entry], [%x2, latch]
  %x2 = addi %x, 1
  %c = cmplt %x2, %n
  branch %c, latch, done
latch:
  jump head
done:
  output %x
  ret %x2
}
)");
  auto Before = cloneFunction(*F);
  splitCriticalEdges(*F);
  SreedharStats Stats = convertToCSSA(*F);
  EXPECT_GE(Stats.NumCopiesInserted, 1u);
  pinCSSAWebs(*F);

  auto Translated = cloneFunction(*Before);
  runPipeline(*Translated, pipelinePreset("Sphi+C"));
  expectEquivalent(*Before, *Translated, {4});
}

TEST(Sreedhar, SwapCostsMoreThanParallelCopies) {
  // Figure 10 ([CS2]): Sreedhar's variable splitting costs at least as
  // many moves as our parallel-copy-based translation.
  auto F = makeFigure10();
  auto Ours = cloneFunction(*F);
  auto Theirs = cloneFunction(*F);
  runPipeline(*Ours, pipelinePreset("Lphi+C"));
  runPipeline(*Theirs, pipelinePreset("Sphi+C"));
  EXPECT_LE(countMoves(*Ours), countMoves(*Theirs));
  expectEquivalent(*F, *Theirs, {4, 9});
}

TEST(Sreedhar, PinCSSAWebsUnifiesWholeWeb) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1 = make 1
  jump j
e:
  %x2 = make 2
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  ret %x
}
)");
  splitCriticalEdges(*F);
  convertToCSSA(*F);
  unsigned Pinned = pinCSSAWebs(*F);
  EXPECT_EQ(Pinned, 3u) << "x, x1 and x2 all pinned to one resource";
  RegId Pin = InvalidReg;
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      for (unsigned K = 0; K < I.numDefs(); ++K)
        if (I.defPin(K) != InvalidReg) {
          if (Pin == InvalidReg)
            Pin = I.defPin(K);
          EXPECT_EQ(I.defPin(K), Pin);
        }
}

TEST(Sreedhar, PhysicalRepClaimedByOneWebOnly) {
  // Two independent webs both containing an R0-pinned call result: only
  // one may use R0 as its representative (the other would strongly
  // interfere).
  auto F = parse(R"(
func @f {
entry:
  input %a^R0
  branch %a, t1, e1
t1:
  %u1^R0 = call @f1(%a^R0)
  jump j1
e1:
  %u2 = addi %a, 1
  jump j1
j1:
  %u = phi [%u1, t1], [%u2, e1]
  output %u
  branch %u, t2, e2
t2:
  %v1^R0 = call @f2(%u^R0)
  jump j2
e2:
  %v2 = addi %u, 2
  jump j2
j2:
  %v = phi [%v1, t2], [%v2, e2]
  ret %v^R0
}
)");
  auto Before = cloneFunction(*F);
  auto Translated = cloneFunction(*F);
  runPipeline(*Translated, pipelinePreset("Sphi+LABI+C"));
  expectEquivalent(*Before, *Translated, {1});
  expectEquivalent(*Before, *Translated, {0});
}

TEST(Sreedhar, ConvertedSuiteFunctionsStayValidSSA) {
  for (uint64_t Seed = 500; Seed < 506; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 20;
    P.MaxNesting = 2;
    auto F = generateProgram(P, "s" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    splitCriticalEdges(*F);
    convertToCSSA(*F);
    EXPECT_TRUE(verifySSA(*F).empty()) << "seed " << Seed;
    expectWellFormed(*F);
  }
}

TEST(Sreedhar, ConversionEstablishesCSSAProperty) {
  // The defining property: after conversion, no phi web contains two
  // interfering values — checked on the figures and random programs.
  for (const Workload &W : makeExamplesSuite()) {
    auto F = cloneFunction(*W.F);
    splitCriticalEdges(*F);
    convertToCSSA(*F);
    auto Violations = findCSSAViolations(*F);
    EXPECT_TRUE(Violations.empty())
        << W.Name << ": " << Violations.size() << " interfering pairs, "
        << "e.g. " << F->valueName(Violations.empty() ? 0
                                                      : Violations[0].first);
  }
  for (uint64_t Seed = 1400; Seed < 1412; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 22;
    P.MaxNesting = 2;
    auto F = generateProgram(P, "cssa" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    splitCriticalEdges(*F);
    convertToCSSA(*F);
    EXPECT_TRUE(findCSSAViolations(*F).empty()) << "seed " << Seed;
  }
}

TEST(Sreedhar, ViolationsDetectedBeforeConversion) {
  // Figure 5's web (x, x1, x2) interferes before conversion; the checker
  // must see it, and conversion must clear it.
  auto F = makeFigure5();
  splitCriticalEdges(*F);
  EXPECT_FALSE(findCSSAViolations(*F).empty());
  convertToCSSA(*F);
  EXPECT_TRUE(findCSSAViolations(*F).empty());
}
