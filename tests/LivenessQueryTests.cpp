//===- LivenessQueryTests.cpp - Fast-liveness vs dense oracle --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The contract the pinning analysis depends on: LivenessQuery answers
// every isLiveIn/isLiveOut/isLiveAfter/isLiveBefore query exactly as the
// dense Liveness fixpoint does. Cross-checks every workload suite (SSA
// form as the pipeline sees it, and raw generated programs as a non-SSA
// stress), every variable, every block, and every instruction position.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Liveness.h"
#include "analysis/LivenessQuery.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

/// Compares every query the two engines can answer on \p F. Block-level
/// queries are checked for all (variable, block) pairs; the positional
/// queries for all (variable, instruction) pairs of blocks small enough
/// to keep the product tractable.
void expectQueriesMatchDense(const Function &F, const char *Tag) {
  CFG Cfg(const_cast<Function &>(F));
  DominatorTree DT(Cfg);
  Liveness Dense(Cfg);
  LivenessQuery LQ(Cfg, DT);

  // Exhaustive on small functions; a fixed deterministic stride over the
  // variable set on big ones (every block is still covered per variable).
  size_t Product = F.numValues() * F.numBlocks();
  RegId Stride = static_cast<RegId>(Product > 60000 ? Product / 60000 + 1 : 1);
  for (RegId V = 0; V < F.numValues(); V += Stride)
    for (const auto &BB : F.blocks()) {
      ASSERT_EQ(Dense.isLiveIn(V, BB.get()), LQ.isLiveIn(V, BB.get()))
          << Tag << ": " << F.name() << " live-in of v" << V << " at block "
          << BB->id();
      ASSERT_EQ(Dense.isLiveOut(V, BB.get()), LQ.isLiveOut(V, BB.get()))
          << Tag << ": " << F.name() << " live-out of v" << V << " at block "
          << BB->id();
    }

  for (const auto &BB : F.blocks()) {
    if (BB->instructions().size() > 40)
      continue; // Bound the (vars x positions) product on huge blocks.
    for (auto It = BB->instructions().begin(); It != BB->instructions().end();
         ++It)
      for (RegId V = 0; V < F.numValues(); V += Stride) {
        ASSERT_EQ(Dense.isLiveAfter(V, BB.get(), It),
                  LQ.isLiveAfter(V, BB.get(), It))
            << Tag << ": " << F.name() << " live-after of v" << V
            << " in block " << BB->id();
        ASSERT_EQ(Dense.isLiveBefore(V, BB.get(), It),
                  LQ.isLiveBefore(V, BB.get(), It))
            << Tag << ": " << F.name() << " live-before of v" << V
            << " in block " << BB->id();
      }
  }
}

} // namespace

TEST(LivenessQuery, MatchesDenseOnEverySuite) {
  for (const SuiteSpec &Spec : allSuites()) {
    auto Suite = Spec.Make();
    for (const Workload &W : Suite)
      expectQueriesMatchDense(*W.F, Spec.Name);
  }
}

TEST(LivenessQuery, MatchesDenseOnRawGeneratedPrograms) {
  // The suites arrive in optimized pruned SSA; also stress the raw
  // generator output (multi-def variables, no phis) where the dominance
  // prefilter must disable itself.
  for (unsigned Seed = 1; Seed <= 6; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 24 + Seed * 6;
    P.MaxNesting = 3;
    auto F = generateProgram(P, "raw_" + std::to_string(Seed));
    expectQueriesMatchDense(*F, "raw-generated");
  }
}

TEST(LivenessQuery, UnreachableBlocksMatchDense) {
  // The dense fixpoint iterates the full rpo() order, which includes
  // unreachable blocks; the per-variable walk must agree there too.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %x = addi %a, 1
  jump join
dead:
  %y = addi %x, 2
  output %y
  jump join
join:
  %z = phi [%x, entry], [%x, dead]
  ret %z
}
)");
  ASSERT_TRUE(F);
  expectQueriesMatchDense(*F, "unreachable");
}
