//===- AnalysisManagerTests.cpp - Caching + invalidation contract ----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The AnalysisManager contract: getters cache (same reference back until
// invalidated), invalidate() honors the dependency cascade, and the
// debug verifier catches passes that lie about what they preserved.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/AnalysisManager.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

// Post-translation (non-SSA) code: the interference graph asserts on
// phis, and every analysis the manager serves is exercised after
// translation anyway.
std::unique_ptr<Function> makeDiamond() {
  return parse(R"(
func @f {
entry:
  input %a
  %ten = make 10
  %c = cmplt %a, %ten
  branch %c, t, e
t:
  %x = addi %a, 1
  %z = mov %x
  jump j
e:
  %y = addi %a, 2
  %z = mov %y
  jump j
j:
  output %z
  ret %z
}
)");
}

} // namespace

TEST(AnalysisManager, GettersCacheUntilInvalidated) {
  auto F = makeDiamond();
  AnalysisManager AM(*F);
  EXPECT_FALSE(AM.isCached(AnalysisKind::CFG));

  const CFG *Cfg = &AM.cfg();
  const DominatorTree *DT = &AM.domTree();
  const LoopInfo *LI = &AM.loopInfo();
  Liveness *LV = &AM.liveness();
  const LivenessQuery *LQ = &AM.livenessQuery();
  InterferenceGraph *IG = &AM.interference();
  for (AnalysisKind K :
       {AnalysisKind::CFG, AnalysisKind::DomTree, AnalysisKind::LoopInfo,
        AnalysisKind::Liveness, AnalysisKind::LivenessQuery,
        AnalysisKind::Interference})
    EXPECT_TRUE(AM.isCached(K));

  // Second request: the identical object, not a recomputation.
  EXPECT_EQ(Cfg, &AM.cfg());
  EXPECT_EQ(DT, &AM.domTree());
  EXPECT_EQ(LI, &AM.loopInfo());
  EXPECT_EQ(LV, &AM.liveness());
  EXPECT_EQ(LQ, &AM.livenessQuery());
  EXPECT_EQ(IG, &AM.interference());

  // preserve-all keeps every entry cached.
  AM.invalidate(PreservedAnalyses::all());
  for (AnalysisKind K :
       {AnalysisKind::CFG, AnalysisKind::Liveness, AnalysisKind::Interference})
    EXPECT_TRUE(AM.isCached(K));
}

TEST(AnalysisManager, LazinessComputesNothingUnrequested) {
  auto F = makeDiamond();
  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  AnalysisManager AM(*F);
  (void)AM.cfg();
  StatsSnapshot D =
      StatsRegistry::delta(Before, StatsRegistry::instance().snapshot());
  EXPECT_EQ(D.count("liveness.analyses"), 0u);
  EXPECT_EQ(D.count("interference.graphs_built"), 0u);
  EXPECT_FALSE(AM.isCached(AnalysisKind::Liveness));
  EXPECT_FALSE(AM.isCached(AnalysisKind::DomTree));
}

TEST(AnalysisManager, CfgOnlyDropsInstructionDerivedAnalyses) {
  auto F = makeDiamond();
  AnalysisManager AM(*F);
  (void)AM.interference();
  (void)AM.livenessQuery();
  (void)AM.loopInfo();

  AM.invalidate(PreservedAnalyses::cfgOnly());
  EXPECT_TRUE(AM.isCached(AnalysisKind::CFG));
  EXPECT_TRUE(AM.isCached(AnalysisKind::DomTree));
  EXPECT_TRUE(AM.isCached(AnalysisKind::LoopInfo));
  EXPECT_FALSE(AM.isCached(AnalysisKind::Liveness));
  EXPECT_FALSE(AM.isCached(AnalysisKind::LivenessQuery));
  EXPECT_FALSE(AM.isCached(AnalysisKind::Interference));
}

TEST(AnalysisManager, CascadeDropsDependents) {
  auto F = makeDiamond();

  // Dropping the CFG drops everything, even analyses the pass claimed to
  // preserve (their cached copies reference the dead CFG).
  {
    AnalysisManager AM(*F);
    (void)AM.interference();
    AM.invalidate(PreservedAnalyses::none().preserve(AnalysisKind::Liveness));
    EXPECT_FALSE(AM.isCached(AnalysisKind::CFG));
    EXPECT_FALSE(AM.isCached(AnalysisKind::Liveness));
    EXPECT_FALSE(AM.isCached(AnalysisKind::Interference));
  }

  // Dropping the dominator tree drops LoopInfo and LivenessQuery but
  // leaves the dense Liveness (CFG-derived only) and its dependent graph.
  {
    AnalysisManager AM(*F);
    (void)AM.interference();
    (void)AM.livenessQuery();
    (void)AM.loopInfo();
    AM.invalidate(PreservedAnalyses::none()
                      .preserve(AnalysisKind::CFG)
                      .preserve(AnalysisKind::Liveness)
                      .preserve(AnalysisKind::Interference));
    EXPECT_TRUE(AM.isCached(AnalysisKind::CFG));
    EXPECT_FALSE(AM.isCached(AnalysisKind::DomTree));
    EXPECT_FALSE(AM.isCached(AnalysisKind::LoopInfo));
    EXPECT_FALSE(AM.isCached(AnalysisKind::LivenessQuery));
    EXPECT_TRUE(AM.isCached(AnalysisKind::Liveness));
    EXPECT_TRUE(AM.isCached(AnalysisKind::Interference));
  }

  // Dropping Liveness drops the interference graph built from it.
  {
    AnalysisManager AM(*F);
    (void)AM.interference();
    AM.invalidate(PreservedAnalyses::cfgOnly()
                      .preserve(AnalysisKind::LivenessQuery));
    EXPECT_FALSE(AM.isCached(AnalysisKind::Liveness));
    EXPECT_FALSE(AM.isCached(AnalysisKind::Interference));
  }
}

TEST(AnalysisManager, VerifyPassesOnUntouchedFunction) {
  auto F = makeDiamond();
  AnalysisManager AM(*F);
  (void)AM.interference();
  (void)AM.livenessQuery();
  (void)AM.loopInfo();
  EXPECT_EQ(AM.verify(), "");
}

TEST(AnalysisManager, VerifyCatchesLyingPassInstructionEdit) {
  // A "pass" rewrites a use (changing liveness) but claims it preserved
  // everything. The cached Liveness is now wrong; verify() must say so.
  auto F = makeDiamond();
  AnalysisManager AM(*F);
  (void)AM.liveness();

  BasicBlock *T = F->blockByName("t");
  ASSERT_NE(T, nullptr);
  // %x = addi %a, 1  -->  %x = addi %c, 1: %a stops being live into t,
  // %c starts.
  Instruction &Add = T->front();
  ASSERT_EQ(Add.numUses(), 1u);
  Add.setUse(0, F->findValue("c"));

  std::string Diag = AM.verify();
  EXPECT_NE(Diag, "") << "stale cached liveness went undetected";
  EXPECT_NE(Diag.find("iveness"), std::string::npos) << Diag;
}

TEST(AnalysisManager, VerifyCatchesLyingPassCfgEdit) {
  // A "pass" retargets a branch but claims the CFG survived.
  auto F = makeDiamond();
  AnalysisManager AM(*F);
  (void)AM.cfg();

  BasicBlock *Entry = F->blockByName("entry");
  BasicBlock *J = F->blockByName("j");
  ASSERT_NE(Entry, nullptr);
  ASSERT_NE(J, nullptr);
  Entry->terminator().setTarget(1, J);

  EXPECT_NE(AM.verify(), "") << "stale cached CFG went undetected";
}

TEST(AnalysisManager, HonestPassKeepsVerifyClean) {
  // The coalescer-style contract: mutate, then report exactly what
  // changed. After an honest invalidate the survivors re-verify clean.
  auto F = makeDiamond();
  AnalysisManager AM(*F);
  (void)AM.liveness();
  (void)AM.loopInfo();

  BasicBlock *T = F->blockByName("t");
  ASSERT_NE(T, nullptr);
  Instruction &Add = T->front();
  Add.setUse(0, F->findValue("c"));

  // Honest: block structure survived, instruction-derived analyses did not.
  AM.invalidate(PreservedAnalyses::cfgOnly());
  EXPECT_EQ(AM.verify(), "");
  // And a fresh request just recomputes.
  (void)AM.liveness();
  EXPECT_EQ(AM.verify(), "");
}
