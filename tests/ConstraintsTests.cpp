//===- ConstraintsTests.cpp - Constraint collection tests -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/Constraints.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(Constraints, SPPinsAdjustChains) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %sp1 = spadjust %SP, -16
  %sp2 = spadjust %sp1, 16
  ret %a
}
)");
  unsigned Pinned = collectSPConstraints(*F);
  // sp1 def, sp2 def, sp2's use of sp1; the use of physical SP is not
  // pinned (it already names the register).
  EXPECT_EQ(Pinned, 3u);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::SpAdjust)
        EXPECT_EQ(I.defPin(0), static_cast<RegId>(Target::SP));
  EXPECT_TRUE(verifyPinning(*F).empty());
}

TEST(Constraints, SPCollectionIsIdempotent) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %sp1 = spadjust %SP, -8
  ret %a
}
)");
  EXPECT_EQ(collectSPConstraints(*F), 1u);
  EXPECT_EQ(collectSPConstraints(*F), 0u) << "already pinned";
}

TEST(Constraints, ABIPinsCallOperands) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b, %c, %d, %e
  %r = call @g(%a, %b, %c, %d, %e)
  ret %r
}
)");
  collectABIConstraints(*F);
  const Instruction &Input = F->entry().front();
  for (unsigned K = 0; K < 4; ++K)
    EXPECT_EQ(Input.defPin(K), Target::argReg(K));
  // The fifth parameter is stack-passed: unpinned.
  EXPECT_EQ(Input.defPin(4), InvalidReg);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions()) {
      if (I.op() == Opcode::Call) {
        EXPECT_EQ(I.defPin(0), static_cast<RegId>(Target::R0));
        for (unsigned K = 0; K < 4; ++K)
          EXPECT_EQ(I.usePin(K), Target::argReg(K));
        EXPECT_EQ(I.usePin(4), InvalidReg);
      }
      if (I.op() == Opcode::Ret)
        EXPECT_EQ(I.usePin(0), static_cast<RegId>(Target::R0));
    }
  EXPECT_TRUE(verifyPinning(*F).empty());
}

TEST(Constraints, TwoOperandTieUsesDefResource) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %k = more %a, 7
  %q = autoadd %k, 4
  ret %q
}
)");
  collectABIConstraints(*F);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.isTwoOperand() && I.op() != Opcode::SpAdjust)
        EXPECT_EQ(I.usePin(0), I.def(0))
            << "2-operand source pinned to its destination's resource";
}

TEST(Constraints, PsiElseOperandTied) {
  auto F = parse(R"(
func @f {
entry:
  input %p, %a, %b
  %x = psi %p, %a, %b
  ret %x
}
)");
  collectABIConstraints(*F);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::Psi) {
        EXPECT_EQ(I.usePin(0), InvalidReg) << "predicate unconstrained";
        EXPECT_EQ(I.usePin(1), InvalidReg) << "then-value unconstrained";
        EXPECT_EQ(I.usePin(2), I.def(0)) << "else-value tied to dest";
      }
}

TEST(Constraints, ABIRespectsExistingPins) {
  auto F = parse(R"(
func @f {
entry:
  input %a^R5
  ret %a^R5
}
)");
  EXPECT_EQ(collectABIConstraints(*F), 0u)
      << "explicit pins are never overwritten";
}

TEST(Constraints, PhysicalOperandsNeedNoPins) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %R0 = mov %a
  %r = call @g(%R0)
  ret %r
}
)");
  collectABIConstraints(*F);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::Call)
        EXPECT_EQ(I.usePin(0), InvalidReg)
            << "an operand already naming R0 is not pinned again";
}
