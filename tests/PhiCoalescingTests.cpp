//===- PhiCoalescingTests.cpp - Pinning-based coalescing tests --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/LeungGeorge.h"
#include "outofssa/MoveStats.h"
#include "outofssa/PhiCoalescing.h"
#include "outofssa/Pipeline.h"
#include "workloads/PaperExamples.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

/// Analyses bundle for running coalescing by hand.
struct Analyses {
  CFG Cfg;
  DominatorTree DT;
  LivenessQuery LV;
  LoopInfo LI;
  PinningContext Ctx;

  explicit Analyses(Function &F,
                 InterferenceMode Mode = InterferenceMode::Precise)
      : Cfg(F), DT(Cfg), LV(Cfg, DT), LI(Cfg, DT), Ctx(F, Cfg, DT, LV, Mode) {}
};

/// Split edges, pin SP+ABI, coalesce, translate, sequentialize; returns
/// the final move count.
unsigned fullTranslate(Function &F, PhiCoalescingStats *StatsOut = nullptr,
                       const PhiCoalescingOptions &Opts = {},
                       bool PinABI = false) {
  splitCriticalEdges(F);
  collectSPConstraints(F);
  if (PinABI)
    collectABIConstraints(F);
  Analyses S(F);
  PhiCoalescingStats Stats = coalescePhis(F, S.Ctx, S.Cfg, S.LI, Opts);
  if (StatsOut)
    *StatsOut = Stats;
  translateOutOfSSA(F, S.Ctx, S.Cfg);
  sequentializeParallelCopies(F);
  return countMoves(F);
}

} // namespace

TEST(PhiCoalescing, Figure5OneMoveNotTwo) {
  // x1 and x2 interfere; only one of them can share x's resource. The
  // paper's solution (c) costs exactly one move.
  auto F = makeFigure5();
  auto Before = cloneFunction(*F);
  PhiCoalescingStats Stats;
  unsigned Moves = fullTranslate(*F, &Stats);
  EXPECT_EQ(Stats.TotalGain, 1u) << "exactly one argument coalesced";
  EXPECT_EQ(Moves, 1u);
  expectEquivalent(*Before, *F, {3, 8});
  expectEquivalent(*Before, *F, {8, 3});
}

TEST(PhiCoalescing, NonInterferingWebCoalescesFully) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1 = make 1
  jump j
e:
  %x2 = make 2
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  output %x
  ret %x
}
)");
  auto Before = cloneFunction(*F);
  PhiCoalescingStats Stats;
  unsigned Moves = fullTranslate(*F, &Stats);
  EXPECT_EQ(Stats.TotalGain, 2u);
  EXPECT_EQ(Moves, 0u) << "both arguments coalesce with the result";
  expectEquivalent(*Before, *F, {1});
  expectEquivalent(*Before, *F, {0});
}

TEST(PhiCoalescing, Figure7TwoClassesEmerge) {
  auto F = makeFigure7();
  auto Before = cloneFunction(*F);

  splitCriticalEdges(*F);
  Analyses S(*F);
  PhiCoalescingStats Stats = coalescePhis(*F, S.Ctx, S.Cfg, S.LI);

  // X1 and X3 strongly interfere (same block) and must stay in distinct
  // classes; the shared argument x2 lands in exactly one of them.
  RegId X1 = F->findValue("X1"), X3 = F->findValue("X3");
  RegId X2v = F->findValue("x2");
  ASSERT_NE(X1, InvalidReg);
  ASSERT_NE(X3, InvalidReg);
  EXPECT_NE(S.Ctx.resourceOf(X1), S.Ctx.resourceOf(X3));
  RegId X2Res = S.Ctx.resourceOf(X2v);
  EXPECT_TRUE(X2Res == S.Ctx.resourceOf(X1) ||
              X2Res == S.Ctx.resourceOf(X3));
  EXPECT_GE(Stats.NumMerges, 2u);

  translateOutOfSSA(*F, S.Ctx, S.Cfg);
  sequentializeParallelCopies(*F);
  expectEquivalent(*Before, *F, {6});
  expectEquivalent(*Before, *F, {1});
}

TEST(PhiCoalescing, NoStrongInterferenceInAnyClass) {
  // Invariant: after coalescing, no class contains two strongly
  // interfering members (checked over the paper figures).
  for (auto Make : {makeFigure1, makeFigure3, makeFigure5, makeFigure7,
                    makeFigure9, makeFigure10, makeFigure11, makeFigure12}) {
    auto F = Make();
    splitCriticalEdges(*F);
    collectSPConstraints(*F);
    collectABIConstraints(*F);
    Analyses S(*F);
    coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
    for (RegId V = 0; V < S.Ctx.func().numValues(); ++V) {
      if (S.Ctx.resourceOf(V) != V)
        continue; // Only check class representatives once.
      const auto &Members = S.Ctx.members(V);
      for (size_t A = 0; A < Members.size(); ++A)
        for (size_t B = A + 1; B < Members.size(); ++B)
          EXPECT_FALSE(S.Ctx.stronglyInterfere(Members[A], Members[B]))
              << F->name() << ": " << F->valueName(Members[A]) << " vs "
              << F->valueName(Members[B]);
    }
  }
}

TEST(PhiCoalescing, Figure9BeatsOrMatchesSreedhar) {
  auto F9 = makeFigure9();
  auto Ours = cloneFunction(*F9);
  auto Theirs = cloneFunction(*F9);
  runPipeline(*Ours, pipelinePreset("Lphi+C"));
  runPipeline(*Theirs, pipelinePreset("Sphi+C"));
  EXPECT_LE(countMoves(*Ours), countMoves(*Theirs));
  EXPECT_LE(countMoves(*Ours), 1u) << "the joint optimization needs at "
                                      "most one move on Figure 9";
}

TEST(PhiCoalescing, Figure10SwapHandledByParallelCopies) {
  auto F = makeFigure10();
  auto Ours = cloneFunction(*F);
  auto Theirs = cloneFunction(*F);
  runPipeline(*Ours, pipelinePreset("Lphi,ABI+C"));
  runPipeline(*Theirs, pipelinePreset("Sphi+LABI+C"));
  EXPECT_LE(countMoves(*Ours), countMoves(*Theirs));
  for (const auto &Args : {std::vector<uint64_t>{1, 2}})
    expectEquivalent(*F, *Ours, Args);
}

TEST(PhiCoalescing, Figure11ABIAwareChoice) {
  auto F = makeFigure11();
  auto Ours = cloneFunction(*F);
  auto Theirs = cloneFunction(*F);
  runPipeline(*Ours, pipelinePreset("Lphi,ABI+C"));
  runPipeline(*Theirs, pipelinePreset("Sphi+LABI+C"));
  EXPECT_LE(countMoves(*Ours), countMoves(*Theirs));
  expectEquivalent(*F, *Ours, {5});
}

TEST(PhiCoalescing, GainReportedMatchesClasses) {
  auto F = makeFigure5();
  splitCriticalEdges(*F);
  Analyses S(*F);
  PhiCoalescingStats Stats = coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
  unsigned Gain = 0;
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions()) {
      if (!I.isPhi())
        break;
      for (unsigned K = 0; K < I.numUses(); ++K)
        Gain += S.Ctx.resourceOf(I.use(K)) == S.Ctx.resourceOf(I.def(0));
    }
  EXPECT_EQ(Stats.TotalGain, Gain);
}

TEST(PhiCoalescing, CoalescedDefsArePinnedInIR) {
  // PrunedGraph_pinning publishes the decision as def pins (visible in
  // the printed IR, as in the paper's Figure 7 walkthrough).
  auto F = makeFigure5();
  splitCriticalEdges(*F);
  Analyses S(*F);
  coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
  RegId X = F->findValue("x");
  RegId Rep = S.Ctx.resourceOf(X);
  unsigned PinnedDefs = 0;
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      for (unsigned K = 0; K < I.numDefs(); ++K)
        PinnedDefs += I.defPin(K) == Rep;
  EXPECT_GE(PinnedDefs, 2u) << "phi def and the chosen argument";
}

TEST(PhiCoalescing, DepthConstrainedVariantStaysCorrect) {
  auto F = makeFigure11();
  auto Before = cloneFunction(*F);
  PhiCoalescingOptions Opts;
  Opts.DepthConstrained = true;
  fullTranslate(*F, nullptr, Opts);
  expectEquivalent(*Before, *F, {9});
}

TEST(PhiCoalescing, FirstFoundHeuristicNeverBeatsWeighted) {
  // Sanity for the ablation: the paper's weighted pruning should match
  // or beat the arbitrary-order heuristic on the figure set.
  for (auto Make : {makeFigure5, makeFigure7, makeFigure9, makeFigure11}) {
    auto FW = Make();
    auto FF = Make();
    PhiCoalescingOptions W, FFOpts;
    FFOpts.Heuristic = PruneHeuristic::FirstFound;
    unsigned MW = fullTranslate(*FW, nullptr, W);
    unsigned MF = fullTranslate(*FF, nullptr, FFOpts);
    EXPECT_LE(MW, MF) << FW->name();
  }
}

TEST(PhiCoalescing, PhysicalRegisterLeadsItsComponent) {
  // When a component contains a physical resource, every member pins to
  // it (Figure 8 style).
  auto F = parse(R"(
func @f {
entry:
  input %a^R0
  branch %a, t, e
t:
  %z1^R0 = call @f1(%a^R0)
  jump j
e:
  %z2^R0 = call @f2(%a^R0)
  jump j
j:
  %z = phi [%z1, t], [%z2, e]
  ret %z^R0
}
)");
  splitCriticalEdges(*F);
  collectABIConstraints(*F);
  Analyses S(*F);
  coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
  RegId Z = F->findValue("z");
  // z is dead after the ret use and does not interfere with R0's class,
  // so it joins it; the class representative is the physical register.
  EXPECT_EQ(S.Ctx.resourceOf(Z), static_cast<RegId>(Target::R0));
}
