//===- VMTests.cpp - Bytecode compiler + VM vs interpreter -----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The execution-tier gate: the bytecode VM must produce the same
// ExecResult outcome (status class, output trace, return value) as the
// tree-walk interpreter on every program — unit semantics cases, every
// suite function under every pipeline preset, and the property-test
// generators (docs/EXEC.md).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "exec/Bytecode.h"
#include "exec/VM.h"
#include "outofssa/Pipeline.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include <map>

using namespace lao;
using namespace lao::test;

namespace {

/// Runs both engines on the same input and requires the equivalence
/// contract (ExecResult::sameOutcome) to hold. Both engines get the same
/// generous budget: step counts are engine-specific (lowered copies and
/// edge stubs), so differential runs must not sit near the limit.
void expectSameOutcome(const Function &F, const std::vector<uint64_t> &Args,
                       uint64_t MaxSteps = 1u << 24) {
  ExecResult I = interpret(F, Args, MaxSteps);
  ExecResult V = executeVM(F, Args, MaxSteps);
  EXPECT_TRUE(I.sameOutcome(V))
      << F.name() << ": engines diverge\n"
      << "  interp: status=" << static_cast<int>(I.Status) << " ret="
      << I.RetValue << " outputs=" << I.Outputs.size() << " error=\""
      << I.Error << "\"\n"
      << "  vm:     status=" << static_cast<int>(V.Status) << " ret="
      << V.RetValue << " outputs=" << V.Outputs.size() << " error=\""
      << V.Error << "\"\n--- ir ---\n"
      << printFunction(F) << "--- bytecode ---\n"
      << printBytecode(compileToBytecode(F));
}

TEST(VM, StraightLineArithmeticMatches) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %s = add %a, %b
  %d = sub %s, %b
  %m = mul %d, %s
  %k = addi %m, 7
  output %k
  ret %s
}
)");
  ExecResult V = executeVM(*F, {5, 6});
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_EQ(V.RetValue, 11u);
  ASSERT_EQ(V.Outputs.size(), 1u);
  EXPECT_EQ(V.Outputs[0], 5u * 11u + 7u);
  expectSameOutcome(*F, {5, 6});
  expectSameOutcome(*F, {0, 0});
}

TEST(VM, PhiLoopMatchesInterpreter) {
  auto F = parse(R"(
func @f {
entry:
  input %n
  %zero = make 0
  %one = make 1
  jump head
head:
  %i = phi [%zero, entry], [%in, body]
  %acc = phi [%zero, entry], [%accn, body]
  %c = cmplt %i, %n
  branch %c, body, exit
body:
  %accn = add %acc, %i
  %in = add %i, %one
  jump head
exit:
  output %acc
  ret %acc
}
)");
  ExecResult V = executeVM(*F, {10});
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_EQ(V.RetValue, 45u);
  expectSameOutcome(*F, {10});
  expectSameOutcome(*F, {0});
}

TEST(VM, CallsPsiMemoryAndTwoOperandMatch) {
  auto F = parse(R"(
func @f {
entry:
  input %p, %a
  %r = call @mix(%p, %a)
  %s = psi %p, %r, %a
  %k = more %s^k, 255
  store %k, %a
  %l = load %k
  %u = load %a
  output %l
  output %u
  ret %s
}
)");
  for (uint64_t P : {0ull, 1ull, 99ull}) {
    expectSameOutcome(*F, {P, 41});
    ExecResult V = executeVM(*F, {P, 41});
    ASSERT_TRUE(V.ok()) << V.Error;
    if (P)
      EXPECT_EQ(V.RetValue, builtinCall("mix", {P, 41}));
  }
}

TEST(VM, ParCopySwapCycleBreaksWithTemp) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  parcopy %a = %b, %b = %a
  output %a
  output %b
  ret %a
}
)");
  ExecResult V = executeVM(*F, {3, 9});
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_EQ(V.Outputs, (std::vector<uint64_t>{9, 3}));
  // The swap costs the VM three executed moves (cycle temporary), the
  // interpreter two (it applies the parallel copy directly): DynMoves is
  // engine-specific on code still containing parallel copies.
  EXPECT_EQ(V.DynMoves, 3u);
  EXPECT_EQ(interpret(*F, {3, 9}).DynMoves, 2u);
  expectSameOutcome(*F, {3, 9});
}

TEST(VM, UndefinedReadMatchesInterpreterMessage) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %r = add %a, %R3
  ret %r
}
)");
  ExecResult I = interpret(*F, {1});
  ExecResult V = executeVM(*F, {1});
  EXPECT_EQ(V.Status, ExecStatus::Error);
  EXPECT_EQ(V.Error, I.Error);
  EXPECT_EQ(V.Error, "read of undefined register %R3");
  expectSameOutcome(*F, {1});
}

TEST(VM, StepLimitIsTimedOutInBothEngines) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump spin
spin:
  jump spin
}
)");
  ExecResult I = interpret(*F, {0}, /*MaxSteps=*/500);
  ExecResult V = executeVM(*F, {0}, /*MaxSteps=*/500);
  EXPECT_TRUE(I.timedOut());
  EXPECT_TRUE(V.timedOut());
  EXPECT_TRUE(I.sameOutcome(V));
}

TEST(VM, WrongArityAndMissingPhiEntryMatch) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  ret %a
}
)");
  expectSameOutcome(*F, {1});
  expectSameOutcome(*F, {1, 2});

  auto G = parse(R"(
func @g {
entry:
  input %a
  branch %a, one, two
one:
  jump join
two:
  jump join
join:
  %x = phi [%a, one]
  ret %x
}
)");
  expectSameOutcome(*G, {1}); // Edge with a phi entry: runs clean.
  expectSameOutcome(*G, {0}); // Edge without: dynamic error in both.
  ExecResult V = executeVM(*G, {0});
  EXPECT_EQ(V.Status, ExecStatus::Error);
  EXPECT_NE(V.Error.find("no entry for predecessor"), std::string::npos)
      << V.Error;
}

TEST(VM, FallingOffABlockEndMatches) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  output %a
}
)");
  ExecResult I = interpret(*F, {7});
  ExecResult V = executeVM(*F, {7});
  EXPECT_EQ(V.Status, ExecStatus::Error);
  EXPECT_EQ(V.Error, I.Error);
  EXPECT_NE(V.Error.find("fell off the end"), std::string::npos);
  EXPECT_TRUE(I.sameOutcome(V)); // Including the partial output trace.
  EXPECT_EQ(V.Outputs, (std::vector<uint64_t>{7}));
}

TEST(VM, BytecodeSideTablesAreDense) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %b = addi %a, 1
  ret %b
}
)");
  BytecodeFunction BF = compileToBytecode(*F);
  EXPECT_GE(BF.NumRegs, static_cast<uint32_t>(F->numValues()));
  EXPECT_EQ(BF.NumParams, 1u);
  ASSERT_EQ(BF.InstrPc.size(), F->instrRefLimit());
  // Every executable instruction maps to its first emitted offset.
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions()) {
      ASSERT_LT(BF.InstrPc[I.selfRef()], BF.Code.size());
      if (I.op() == Opcode::Ret)
        EXPECT_EQ(BF.Code[BF.InstrPc[I.selfRef()]].Op, BcOp::Ret);
    }
  EXPECT_NE(printBytecode(BF).find("ret"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Differential sweep: every suite function under every pipeline preset
// (plus the SSA input itself), both engines, all shipped input vectors.
//===----------------------------------------------------------------------===//

/// Presets under differential test. "ssa" runs the engines on the suite's
/// SSA form directly (phi/psi handling); the rest run the full pipeline
/// first. Engines must agree even where a configuration is known to
/// miscompile (Sreedhar + SP): both execute the same translated code.
const char *const DiffPresets[] = {
    "ssa",       "Lphi+C",     "C",    "Lphi,ABI+C", "LABI+C",
    "C,naiveABI+C", "Lphi,ABI", "LABI", "Sphi+C",     "Sphi+LABI+C",
    "Sphi"};

struct DiffPoint {
  const char *Suite;
  const char *Preset;
};

std::string diffName(const testing::TestParamInfo<DiffPoint> &Info) {
  std::string S = std::string(Info.param.Suite) + "_" + Info.param.Preset;
  for (char &C : S)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

/// Suites are expensive to build; share one instance per suite across
/// all preset points.
const std::vector<Workload> &cachedSuite(const std::string &Name) {
  static std::map<std::string, std::vector<Workload>> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  for (const SuiteSpec &S : allSuites())
    if (Name == S.Name)
      return Cache.emplace(Name, S.Make()).first->second;
  ADD_FAILURE() << "unknown suite " << Name;
  static std::vector<Workload> Empty;
  return Empty;
}

class VMSuiteDifferential : public testing::TestWithParam<DiffPoint> {};

TEST_P(VMSuiteDifferential, EnginesAgreeOnEveryFunction) {
  const DiffPoint &Point = GetParam();
  for (const Workload &W : cachedSuite(Point.Suite)) {
    const Function *Subject = W.F.get();
    std::unique_ptr<Function> Translated;
    if (std::string(Point.Preset) != "ssa") {
      Translated = cloneFunction(*W.F);
      PipelineConfig Config = pipelinePreset(Point.Preset);
      runPipeline(*Translated, Config);
      Subject = Translated.get();
    }
    for (const auto &Args : W.Inputs)
      expectSameOutcome(*Subject, Args);
  }
}

std::vector<DiffPoint> diffPoints() {
  std::vector<DiffPoint> Points;
  for (const SuiteSpec &S : allSuites())
    for (const char *Preset : DiffPresets)
      Points.push_back({S.Name, Preset});
  return Points;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VMSuiteDifferential,
                         testing::ValuesIn(diffPoints()), diffName);

//===----------------------------------------------------------------------===//
// Generator property sweep: the engines must agree on freshly generated
// programs, both in optimized SSA and after translation.
//===----------------------------------------------------------------------===//

class VMGeneratorSweep : public testing::TestWithParam<uint64_t> {};

TEST_P(VMGeneratorSweep, EnginesAgree) {
  uint64_t Seed = GetParam();
  GeneratorParams P;
  P.Seed = Seed;
  P.NumStatements = 16 + Seed % 23;
  P.MaxNesting = 1 + Seed % 3;
  P.NumParams = 1 + Seed % 4;
  P.UseSP = Seed % 3 == 0;
  P.UsePsi = Seed % 5 == 2;
  P.ExtraCopies = Seed % 4 == 3;

  auto F = generateProgram(P, "vmprog" + std::to_string(Seed));
  normalizeToOptimizedSSA(*F);

  auto Translated = cloneFunction(*F);
  runPipeline(*Translated, pipelinePreset("Lphi,ABI+C"));

  for (uint64_t Set = 0; Set < 3; ++Set) {
    std::vector<uint64_t> Args;
    for (unsigned K = 0; K < P.NumParams; ++K)
      Args.push_back((Seed * 131 + Set * 17 + K * 7) % 997);
    expectSameOutcome(*F, Args);
    expectSameOutcome(*Translated, Args);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VMGeneratorSweep, testing::Range<uint64_t>(1, 26),
                         [](const testing::TestParamInfo<uint64_t> &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

} // namespace
