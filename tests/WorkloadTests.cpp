//===- WorkloadTests.cpp - Generator and suite tests ------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ssa/SSAVerifier.h"
#include "workloads/Generator.h"
#include "workloads/PaperExamples.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(Generator, Deterministic) {
  GeneratorParams P;
  P.Seed = 9;
  P.NumStatements = 30;
  auto A = generateProgram(P, "a");
  auto B = generateProgram(P, "a");
  EXPECT_EQ(printFunction(*A), printFunction(*B));
}

TEST(Generator, SeedsProduceDistinctPrograms) {
  GeneratorParams P;
  P.NumStatements = 30;
  P.Seed = 1;
  auto A = generateProgram(P, "a");
  P.Seed = 2;
  auto B = generateProgram(P, "a");
  EXPECT_NE(printFunction(*A), printFunction(*B));
}

TEST(Generator, ProgramsAreWellFormedAndRunnable) {
  for (uint64_t Seed = 700; Seed < 715; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 30;
    P.MaxNesting = 3;
    P.UseSP = Seed % 2 == 0;
    P.UsePsi = Seed % 3 == 0;
    P.ExtraCopies = Seed % 5 == 0;
    auto F = generateProgram(P, "w" + std::to_string(Seed));
    expectWellFormed(*F);
    ExecResult R = interpret(*F, {Seed, Seed + 1});
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Error;
    EXPECT_FALSE(R.Outputs.empty()) << "programs must be observable";
  }
}

TEST(Generator, ExtraCopiesStyleAddsMoves) {
  GeneratorParams P;
  P.Seed = 11;
  P.NumStatements = 40;
  P.ExtraCopies = false;
  auto Plain = generateProgram(P, "p");
  P.ExtraCopies = true;
  auto Copied = generateProgram(P, "p");
  unsigned PlainMovs = 0, CopiedMovs = 0;
  for (const auto &BB : Plain->blocks())
    for (const Instruction &I : BB->instructions())
      PlainMovs += I.isCopy();
  for (const auto &BB : Copied->blocks())
    for (const Instruction &I : BB->instructions())
      CopiedMovs += I.isCopy();
  EXPECT_GT(CopiedMovs, PlainMovs);
}

TEST(Suites, AllSuitesProduceValidOptimizedSSA) {
  for (const SuiteSpec &Spec : allSuites()) {
    std::vector<Workload> Suite = Spec.Make();
    EXPECT_FALSE(Suite.empty()) << Spec.Name;
    for (const Workload &W : Suite) {
      SCOPED_TRACE(std::string(Spec.Name) + "/" + W.Name);
      expectWellFormed(*W.F);
      for (const auto &D : verifySSA(*W.F))
        ADD_FAILURE() << D;
      ASSERT_FALSE(W.Inputs.empty());
      for (const auto &Args : W.Inputs) {
        ExecResult R = interpret(*W.F, Args);
        EXPECT_TRUE(R.ok()) << R.Error;
      }
    }
  }
}

TEST(Suites, ValccSizesMatchThePaperScale) {
  auto V1 = makeValccSuite(1);
  EXPECT_EQ(V1.size(), 40u) << "about 40 small functions";
  auto Ex = makeExamplesSuite();
  EXPECT_EQ(Ex.size(), 8u);
}

TEST(Suites, ValccVariantsShareKernelsButDifferInLowering) {
  auto V1 = makeValccSuite(1);
  auto V2 = makeValccSuite(2);
  ASSERT_EQ(V1.size(), V2.size());
  // Same generated seeds, different copy style: at least some members
  // must differ textually.
  unsigned Different = 0;
  for (size_t K = 0; K < V1.size(); ++K)
    Different += printFunction(*V1[K].F) != printFunction(*V2[K].F);
  EXPECT_GT(Different, V1.size() / 2);
}

TEST(Suites, LargeSuiteIsLarger) {
  auto V1 = makeValccSuite(1);
  auto Large = makeLargeSuite();
  size_t AvgSmall = 0, AvgLarge = 0;
  for (const auto &W : V1)
    for (const auto &BB : W.F->blocks())
      AvgSmall += BB->instructions().size();
  AvgSmall /= V1.size();
  for (const auto &W : Large)
    for (const auto &BB : W.F->blocks())
      AvgLarge += BB->instructions().size();
  AvgLarge /= Large.size();
  EXPECT_GT(AvgLarge, 3 * AvgSmall);
}

TEST(Suites, DeterministicAcrossCalls) {
  auto A = makeSpecLikeSuite();
  auto B = makeSpecLikeSuite();
  ASSERT_EQ(A.size(), B.size());
  for (size_t K = 0; K < A.size(); ++K)
    EXPECT_EQ(printFunction(*A[K].F), printFunction(*B[K].F));
}

TEST(PaperFigures, AllParseVerifyAndRun) {
  struct Entry {
    const char *Name;
    std::unique_ptr<Function> (*Make)();
    unsigned NumArgs;
  };
  const Entry Figures[] = {
      {"fig1", makeFigure1, 2},  {"fig2", makeFigure2, 1},
      {"fig3", makeFigure3, 2},  {"fig5", makeFigure5, 2},
      {"fig7", makeFigure7, 1},  {"fig8", makeFigure8, 1},
      {"fig9", makeFigure9, 1},  {"fig10", makeFigure10, 2},
      {"fig11", makeFigure11, 1}, {"fig12", makeFigure12, 1},
  };
  for (const Entry &E : Figures) {
    SCOPED_TRACE(E.Name);
    auto F = E.Make();
    ASSERT_TRUE(F);
    expectWellFormed(*F);
    for (const auto &D : verifySSA(*F))
      ADD_FAILURE() << D;
    std::vector<uint64_t> Args;
    for (unsigned K = 0; K < E.NumArgs; ++K)
      Args.push_back(3 + K);
    ExecResult R = interpret(*F, Args);
    EXPECT_TRUE(R.ok()) << R.Error;
  }
}

TEST(PaperFigures, Figure2IsTheOnlyIllegalPinning) {
  EXPECT_FALSE(verifyPinning(*makeFigure2()).empty());
  for (auto Make : {makeFigure1, makeFigure3, makeFigure5, makeFigure7,
                    makeFigure8, makeFigure9, makeFigure10, makeFigure11,
                    makeFigure12})
    EXPECT_TRUE(verifyPinning(*Make()).empty());
}
