//===- CoalescerTests.cpp - Chaitin coalescer and NaiveABI tests ------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/AnalysisManager.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "outofssa/Coalescer.h"
#include "outofssa/LeungGeorge.h"
#include "outofssa/MoveStats.h"
#include "outofssa/NaiveABI.h"
#include "outofssa/Pipeline.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(InterferenceGraph, DefInterferesWithLive) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %a = addi %p, 2
  %u = add %b, %a
  ret %u
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  InterferenceGraph IG(*F, LV);
  RegId A = F->findValue("a"), B = F->findValue("b");
  EXPECT_TRUE(IG.interfere(A, B));
  EXPECT_FALSE(IG.interfere(A, F->findValue("u")));
}

TEST(InterferenceGraph, MoveSourceExemption) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %a = mov %p
  %u = add %a, %a
  %v = add %u, %p
  ret %v
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  InterferenceGraph IG(*F, LV);
  RegId A = F->findValue("a"), P = F->findValue("p");
  // p is live past the move (used by v) but a = mov p does not make
  // them interfere by itself... unless a is redefined while p lives.
  EXPECT_FALSE(IG.interfere(A, P));
}

TEST(InterferenceGraph, MergePreservesNeighbors) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %a = addi %p, 2
  %u = add %b, %a
  ret %u
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  InterferenceGraph IG(*F, LV);
  RegId A = F->findValue("a"), B = F->findValue("b");
  RegId U = F->findValue("u");
  EXPECT_FALSE(IG.interfere(U, B));
  IG.mergeInto(U, A); // u absorbs a; a interfered with b.
  EXPECT_TRUE(IG.interfere(U, B));
  EXPECT_TRUE(IG.neighbors(A).empty());
}

TEST(InterferenceGraph, CopySourceDeadAfterMove) {
  // The move is the last use of its source: destination and source must
  // not interfere (that is the whole point of the Chaitin exemption),
  // and the coalescer must be able to merge them.
  auto F = parse(R"(
func @f {
entry:
  input %p
  %a = addi %p, 1
  %b = mov %a
  %r = add %b, %b
  ret %r
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  InterferenceGraph IG(*F, LV);
  RegId A = F->findValue("a"), B = F->findValue("b");
  EXPECT_FALSE(IG.interfere(A, B));
  // b does interfere with p? p is dead after the addi, so no.
  EXPECT_FALSE(IG.interfere(B, F->findValue("p")));
}

TEST(InterferenceGraph, ParCopyDestinationsInterferePairwise) {
  // Destinations of one parallel copy are written simultaneously: they
  // interfere pairwise even when the values themselves have disjoint
  // uses afterwards.
  auto F = parse(R"(
func @f {
entry:
  input %p, %q
  parcopy %x = %p, %y = %q
  %r = add %x, %y
  %s = add %r, %p
  ret %s
}
)");
  CFG Cfg(*F);
  Liveness LV(Cfg);
  InterferenceGraph IG(*F, LV);
  RegId X = F->findValue("x"), Y = F->findValue("y");
  RegId P = F->findValue("p"), Q = F->findValue("q");
  EXPECT_TRUE(IG.interfere(X, Y));
  // x is exempt from its own source p even though p stays live past the
  // parcopy, but y (written while p is live) does interfere with p.
  EXPECT_FALSE(IG.interfere(X, P));
  EXPECT_TRUE(IG.interfere(Y, P));
  // q dies at the parcopy: neither destination conflicts with it.
  EXPECT_FALSE(IG.interfere(Y, Q));
  EXPECT_FALSE(IG.interfere(X, Q));
}

TEST(Coalescer, RemovesNonInterferingMove) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %a = addi %p, 1
  %b = mov %a
  %r = add %b, %b
  ret %r
}
)");
  auto Before = cloneFunction(*F);
  CoalescerStats Stats = coalesceAggressively(*F);
  EXPECT_EQ(Stats.NumMovesRemoved, 1u);
  EXPECT_EQ(countMoves(*F), 0u);
  expectEquivalent(*Before, *F, {4});
}

TEST(Coalescer, KeepsInterferingMove) {
  // a is still used after b is redefined through it: they interfere.
  auto F = parse(R"(
func @f {
entry:
  input %p
  %a = addi %p, 1
  %b = mov %a
  %b = addi %b, 5
  %r = add %a, %b
  ret %r
}
)");
  auto Before = cloneFunction(*F);
  CoalescerStats Stats = coalesceAggressively(*F);
  EXPECT_EQ(Stats.NumMovesRemoved, 0u);
  EXPECT_EQ(countMoves(*F), 1u);
  expectEquivalent(*Before, *F, {4});
}

TEST(Coalescer, ChainsCascadeAcrossRounds) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %a = mov %p
  %b = mov %a
  %c = mov %b
  %r = add %c, %c
  ret %r
}
)");
  auto Before = cloneFunction(*F);
  CoalescerStats Stats = coalesceAggressively(*F);
  EXPECT_EQ(Stats.NumMovesRemoved, 3u);
  expectEquivalent(*Before, *F, {9});
}

TEST(Coalescer, PhysicalSurvivesAsName) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %R0 = mov %p
  %r = call @f(%R0)
  ret %r
}
)");
  auto Before = cloneFunction(*F);
  coalesceAggressively(*F);
  // p merged into R0: the call operand must still be R0.
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::Call)
        EXPECT_EQ(I.use(0), static_cast<RegId>(Target::R0));
  expectEquivalent(*Before, *F, {3});
}

TEST(Coalescer, NeverMergesTwoPhysicals) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %R0 = mov %p
  %R1 = mov %R0
  %r = call @f(%R0, %R1)
  ret %r
}
)");
  coalesceAggressively(*F);
  // The R1 = R0 move cannot be removed (two machine registers).
  EXPECT_GE(countMoves(*F), 1u);
}

TEST(Coalescer, AmortizedRebuildMatchesRebuildEveryRound) {
  // The worklist schedule builds the graph once and repairs it in place;
  // both schedules must reach the same fixpoint move count on every
  // workload, and the worklist side must never build more graphs.
  auto CheckSuite = [](const std::vector<Workload> &Suite,
                       const char *Preset) {
    for (const Workload &W : Suite) {
      auto A = cloneFunction(*W.F);
      runPipeline(*A, pipelinePreset(Preset));
      auto B = cloneFunction(*A);

      CoalescerStats Fast = coalesceAggressively(*A);
      CoalescerOptions Ref;
      Ref.RebuildEveryRound = true;
      CoalescerStats Slow = coalesceAggressively(*B, Ref);

      EXPECT_EQ(countMoves(*A), countMoves(*B)) << W.Name;
      EXPECT_EQ(Fast.NumMovesRemoved, Slow.NumMovesRemoved) << W.Name;
      EXPECT_LE(Fast.NumRebuilds, Slow.NumRebuilds)
          << W.Name << ": the amortized schedule must never rebuild more";
    }
  };
  // "Lphi,ABI" / "Sphi" leave residual moves without running the cleanup
  // coalescer themselves, so both schedules get real work.
  CheckSuite(makeExamplesSuite(), "Lphi,ABI");
  CheckSuite(makeValccSuite(1), "Sphi");
}

TEST(Coalescer, WorklistTraceMatchesRebuildEveryRoundOnEverySuite) {
  // The header's exactness claim, checked literally on every workload
  // suite: the zero-rebuild worklist schedule performs the *same merges
  // in the same order* as rebuilding the analyses after every sweep, and
  // both leave byte-identical IR — with at most one graph build and one
  // confirm scan on the worklist side.
  for (const SuiteSpec &Spec : allSuites()) {
    for (const Workload &W : Spec.Make()) {
      for (const char *Preset : {"Lphi,ABI", "Sphi"}) {
        auto A = cloneFunction(*W.F);
        runPipeline(*A, pipelinePreset(Preset));
        auto B = cloneFunction(*A);

        std::vector<std::pair<RegId, RegId>> FastTrace, RefTrace;
        CoalescerOptions FastOpts;
        FastOpts.TraceOut = &FastTrace;
        CoalescerStats Fast = coalesceAggressively(*A, FastOpts);
        CoalescerOptions RefOpts;
        RefOpts.RebuildEveryRound = true;
        RefOpts.TraceOut = &RefTrace;
        CoalescerStats Slow = coalesceAggressively(*B, RefOpts);

        EXPECT_EQ(FastTrace, RefTrace)
            << Spec.Name << "/" << W.Name << "/" << Preset
            << ": divergent merge trace";
        EXPECT_EQ(printFunction(*A), printFunction(*B))
            << Spec.Name << "/" << W.Name << "/" << Preset;
        EXPECT_EQ(Fast.NumMovesRemoved, Slow.NumMovesRemoved) << W.Name;
        EXPECT_EQ(Fast.NumMerges, Slow.NumMerges) << W.Name;
        EXPECT_LE(Fast.NumRebuilds, 1u)
            << W.Name << ": zero-rebuild means at most the initial build";
        EXPECT_EQ(Fast.NumConfirmScans, 1u)
            << W.Name << ": the confirm scan is a one-time gate now";
      }
    }
  }
}

namespace {

/// Adversarial input for the worklist schedule: \p Gadgets copies of the
/// exemption-switch pattern
///
///   s = ...; d = mov s; x = mov s; k = add x, d
///
/// where (x, d) interfere exactly until round 1 merges s into d and the
/// rewritten `x = mov d` falls under Chaitin's source exemption — every
/// gadget's second copy must be *re-enqueued* after the round boundary.
/// A long copy chain follows (merges cascade through mergeNodes within a
/// round, repeatedly victimizing the previous survivor), and a diamond
/// whose left leg carries the same deferred pattern across a branch.
std::unique_ptr<Function> makeRequeueForcer(unsigned Gadgets) {
  std::string Text = "func @adv {\nentry:\n  input %p\n";
  std::string Prev = "%p";
  for (unsigned G = 0; G < Gadgets; ++G) {
    std::string N = std::to_string(G);
    Text += "  %s" + N + " = addi " + Prev + ", 1\n";
    Text += "  %d" + N + " = mov %s" + N + "\n";
    Text += "  %x" + N + " = mov %s" + N + "\n";
    Text += "  %k" + N + " = add %x" + N + ", %d" + N + "\n";
    Prev = "%k" + N;
  }
  // Copy chain: all of it coalesces in one round, survivor after
  // survivor.
  Text += "  %c0 = mov " + Prev + "\n";
  for (unsigned C = 1; C < 6; ++C)
    Text += "  %c" + std::to_string(C) + " = mov %c" + std::to_string(C - 1) +
            "\n";
  // Diamond: the deferred pattern with the blocking liveness flowing
  // through a branch.
  Text += R"(  %ds = addi %c5, 1
  %dd = mov %ds
  %cond = cmplt %c5, %p
  branch %cond, left, right
left:
  %dx = mov %ds
  %m = add %dx, %dd
  jump join
right:
  %m = add %dd, %dd
  jump join
join:
  ret %m
}
)";
  return lao::test::parse(Text);
}

} // namespace

TEST(Coalescer, AdversarialRequeueForcerMatchesReference) {
  for (unsigned Gadgets : {1u, 4u, 16u}) {
    auto F = makeRequeueForcer(Gadgets);
    auto Before = cloneFunction(*F);
    auto Ref = cloneFunction(*F);

    std::vector<std::pair<RegId, RegId>> FastTrace, RefTrace;
    CoalescerOptions FastOpts;
    FastOpts.TraceOut = &FastTrace;
    CoalescerStats Fast = coalesceAggressively(*F, FastOpts);
    CoalescerOptions RefOpts;
    RefOpts.RebuildEveryRound = true;
    RefOpts.TraceOut = &RefTrace;
    coalesceAggressively(*Ref, RefOpts);

    EXPECT_EQ(FastTrace, RefTrace) << Gadgets << " gadgets";
    EXPECT_EQ(printFunction(*F), printFunction(*Ref)) << Gadgets;
    // Every gadget defers its second copy in round 1 and must wake it up
    // after the boundary repair — with exactly one graph build total.
    EXPECT_EQ(Fast.NumRebuilds, 1u) << Gadgets;
    EXPECT_GE(Fast.NumRequeues, Gadgets) << Gadgets;
    EXPECT_GE(Fast.NumRounds, 2u) << Gadgets;
    EXPECT_GE(Fast.NumStaleEdgesRemoved, Gadgets)
        << Gadgets << ": each exemption switch leaves a stale edge";
    // The merged program still computes the same thing.
    expectEquivalent(*Before, *F, {7});
    expectEquivalent(*Before, *F, {123});
  }
}

TEST(Coalescer, OracleModeRunsCleanly) {
  // LAO_COALESCE_ORACLE wiring: with the cross-check enabled, every
  // production call replays the rebuild-every-round reference in
  // lockstep and aborts on divergence — so merely finishing is the
  // assertion.
  setCoalescerCrossCheckOracle(true);
  for (const Workload &W : makeExamplesSuite()) {
    auto F = cloneFunction(*W.F);
    runPipeline(*F, pipelinePreset("Lphi,ABI+C"));
  }
  auto F = makeRequeueForcer(8);
  coalesceAggressively(*F);
  setCoalescerCrossCheckOracle(false);
}

TEST(Coalescer, MaintainsManagedLivenessExactly) {
  // The AnalysisManager contract of coalesceAggressively: on return the
  // manager's dense Liveness is still cached and exact (incrementally
  // maintained through every merge and copy deletion). When the confirm
  // scan fired and a graph was built, the repaired interference graph
  // stays cached too — boundary repair leaves it exact; otherwise no
  // graph was ever built. The liveness-query engine is always dropped.
  auto CheckSuite = [](const std::vector<Workload> &Suite,
                       const char *Preset) {
    for (const Workload &W : Suite) {
      auto F = cloneFunction(*W.F);
      runPipeline(*F, pipelinePreset(Preset));
      AnalysisManager AM(*F);
      (void)AM.liveness();
      CoalescerStats S = coalesceAggressively(*F, {}, &AM);
      EXPECT_TRUE(AM.isCached(AnalysisKind::Liveness)) << W.Name;
      EXPECT_EQ(AM.isCached(AnalysisKind::Interference), S.NumRebuilds > 0)
          << W.Name << ": graph cached iff the gate scan built one";
      EXPECT_FALSE(AM.isCached(AnalysisKind::LivenessQuery)) << W.Name;
      EXPECT_EQ(AM.verify(), "") << W.Name;
    }
  };
  CheckSuite(makeExamplesSuite(), "Lphi,ABI");
  CheckSuite(makeValccSuite(1), "Sphi");
}

TEST(InterferenceGraph, NeighborsSortedAndMatrixConsistent) {
  // The hybrid representation: adjacency lists are sorted ascending (a
  // deterministic iteration order for RegAlloc), and every list entry
  // agrees with the triangular bit matrix's interfere() answer — after
  // construction and after merges.
  auto CheckGraph = [](const InterferenceGraph &IG, size_t NumValues,
                       const char *When) {
    for (RegId A = 0; A < NumValues; ++A) {
      const std::vector<RegId> &N = IG.neighbors(A);
      for (size_t K = 0; K + 1 < N.size(); ++K)
        EXPECT_LT(N[K], N[K + 1]) << When << ": unsorted neighbors of " << A;
      for (RegId B : N)
        EXPECT_TRUE(IG.interfere(A, B)) << When << ": list/matrix disagree";
    }
  };
  for (const Workload &W : makeValccSuite(1)) {
    auto F = cloneFunction(*W.F);
    runPipeline(*F, pipelinePreset("Lphi,ABI"));
    CFG Cfg(*F);
    Liveness LV(Cfg);
    InterferenceGraph IG(*F, LV);
    CheckGraph(IG, F->numValues(), "fresh");
    // Merge a few non-interfering pairs and re-check the invariants.
    unsigned Merged = 0;
    for (RegId A = 0; A < F->numValues() && Merged < 4; ++A)
      for (RegId B = A + 1; B < F->numValues() && Merged < 4; ++B)
        if (!IG.interfere(A, B) && !F->isPhysical(B)) {
          IG.mergeInto(A, B);
          ++Merged;
          break;
        }
    CheckGraph(IG, F->numValues(), "post-merge");
  }
}

TEST(NaiveABI, InsertsMovesAroundCall) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %r = call @g(%a, %b)
  ret %r
}
)");
  auto Before = cloneFunction(*F);
  unsigned Moves = lowerABINaively(*F);
  sequentializeParallelCopies(*F);
  // input: 2 copies out of R0/R1; call: 2 copies in, 1 result copy out;
  // ret: 1 copy. Total 6.
  EXPECT_EQ(Moves, 6u);
  // The call now reads R0/R1 and writes R0.
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::Call) {
        EXPECT_EQ(I.use(0), static_cast<RegId>(Target::R0));
        EXPECT_EQ(I.use(1), static_cast<RegId>(Target::R1));
        EXPECT_EQ(I.def(0), static_cast<RegId>(Target::R0));
      }
  expectEquivalent(*Before, *F, {8, 9});
}

TEST(NaiveABI, TiesTwoOperandInstructions) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %k = more %a, 7
  %r = add %k, %a
  ret %r
}
)");
  auto Before = cloneFunction(*F);
  lowerABINaively(*F);
  sequentializeParallelCopies(*F);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::More)
        EXPECT_EQ(I.def(0), I.use(0));
  expectEquivalent(*Before, *F, {5});
}

TEST(NaiveABI, MostMovesCoalesceAway) {
  // The Table 3/4 story: naive ABI lowering inserts many moves, and the
  // aggressive coalescer removes most but not all of them.
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = add %a, %b
  %r = call @g(%x, %a)
  %s = call @h(%r, %b)
  ret %s
}
)");
  auto Before = cloneFunction(*F);
  unsigned Inserted = lowerABINaively(*F);
  sequentializeParallelCopies(*F);
  EXPECT_GE(Inserted, 8u);
  coalesceAggressively(*F);
  EXPECT_LT(countMoves(*F), Inserted);
  expectEquivalent(*Before, *F, {100, 200});
}

TEST(MoveStats, CountsMovsAndParCopyEntries) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = mov %a
  parcopy %a = %b, %b = %a
  ret %x
}
)");
  EXPECT_EQ(countMoves(*F), 3u);
}

TEST(MoveStats, WeightedCountUses5PowDepth) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %m0 = mov %a
  jump head
head:
  %c = cmplt %m0, %a
  branch %c, body, done
body:
  %m1 = mov %a
  jump head
done:
  ret %a
}
)");
  // One move at depth 0 (weight 1) + one at depth 1 (weight 5).
  EXPECT_EQ(weightedMoveCount(*F), 6u);
}
