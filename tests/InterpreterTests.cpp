//===- InterpreterTests.cpp - Mini-LAI interpreter tests --------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(Interpreter, ArithmeticAndReturn) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %s = add %a, %b
  %d = sub %s, %b
  %m = mul %d, %b
  ret %m
}
)");
  ExecResult R = interpret(*F, {7, 3});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.RetValue, 7u * 3u);
}

TEST(Interpreter, CompareAndBranch) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, less, geq
less:
  %one = make 1
  ret %one
geq:
  %zero = make 0
  ret %zero
}
)");
  EXPECT_EQ(interpret(*F, {1, 2}).RetValue, 1u);
  EXPECT_EQ(interpret(*F, {2, 1}).RetValue, 0u);
  EXPECT_EQ(interpret(*F, {2, 2}).RetValue, 0u);
}

TEST(Interpreter, SignedCompare) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  ret %c
}
)");
  // -1 < 1 under signed semantics.
  EXPECT_EQ(interpret(*F, {static_cast<uint64_t>(-1), 1}).RetValue, 1u);
}

TEST(Interpreter, PhiTakesValueFromIncomingEdge) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1 = make 10
  jump j
e:
  %x2 = make 20
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  ret %x
}
)");
  EXPECT_EQ(interpret(*F, {1}).RetValue, 10u);
  EXPECT_EQ(interpret(*F, {0}).RetValue, 20u);
}

TEST(Interpreter, PhiGroupIsParallel) {
  // The classic swap: both phis read the values from before the jump.
  auto F = parse(R"(
func @f {
entry:
  input %n
  %a0 = make 1
  %b0 = make 2
  %i0 = make 0
  jump loop
loop:
  %a = phi [%a0, entry], [%b, latch]
  %b = phi [%b0, entry], [%a, latch]
  %i = phi [%i0, entry], [%i2, latch]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  branch %c, latch, done
latch:
  jump loop
done:
  %r = shl %a, %b0
  %r2 = add %r, %b
  ret %r2
}
)");
  // After 1 iteration (n=2): a=2, b=1 -> r = 2<<2 = 8, r2 = 9.
  ExecResult R = interpret(*F, {2});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.RetValue, 9u);
}

TEST(Interpreter, ParCopyIsParallel) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  parcopy %a = %b, %b = %a
  %r = shl %a, %b
  ret %r
}
)");
  // Swap 3,1 -> a=1, b=3 -> 1<<3 = 8.
  EXPECT_EQ(interpret(*F, {3, 1}).RetValue, 8u);
}

TEST(Interpreter, MemoryRoundTrip) {
  auto F = parse(R"(
func @f {
entry:
  input %v
  %p = make 4096
  store %p, %v
  %l = load %p
  ret %l
}
)");
  EXPECT_EQ(interpret(*F, {123}).RetValue, 123u);
}

TEST(Interpreter, UnwrittenMemoryIsDeterministic) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %p = make 4096
  %l = load %p
  ret %l
}
)");
  EXPECT_EQ(interpret(*F, {0}).RetValue, interpret(*F, {0}).RetValue);
}

TEST(Interpreter, CallsAreDeterministicBuiltins) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %r = call @mix(%a, %b)
  ret %r
}
)");
  ExecResult R = interpret(*F, {5, 6});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.RetValue, builtinCall("mix", {5, 6}));
  // Different callee name yields a different value.
  EXPECT_NE(R.RetValue, builtinCall("max", {5, 6}));
}

TEST(Interpreter, PsiSelects) {
  auto F = parse(R"(
func @f {
entry:
  input %p, %a, %b
  %r = psi %p, %a, %b
  ret %r
}
)");
  EXPECT_EQ(interpret(*F, {1, 10, 20}).RetValue, 10u);
  EXPECT_EQ(interpret(*F, {0, 10, 20}).RetValue, 20u);
}

TEST(Interpreter, TwoOperandSemantics) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %k = more %a^k, 255
  %q = autoadd %k^q, 4
  ret %q
}
)");
  // more: a | (255 << 16); autoadd: +4.
  EXPECT_EQ(interpret(*F, {1}).RetValue, (1u | (255u << 16)) + 4u);
}

TEST(Interpreter, OutputsTraceInOrder) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  output %a
  %b = addi %a, 1
  output %b
  ret %b
}
)");
  ExecResult R = interpret(*F, {9});
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Outputs.size(), 2u);
  EXPECT_EQ(R.Outputs[0], 9u);
  EXPECT_EQ(R.Outputs[1], 10u);
}

TEST(Interpreter, UndefinedReadIsAnError) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %r = add %a, %R3
  ret %r
}
)");
  ExecResult R = interpret(*F, {1});
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undefined"), std::string::npos);
}

TEST(Interpreter, SPIsInitialized) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %sp1 = spadjust %SP, -16
  ret %sp1
}
)");
  ExecResult R = interpret(*F, {0});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.RetValue, 0x100000u - 16);
}

TEST(Interpreter, StepLimitStopsRunaways) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump spin
spin:
  jump spin
}
)");
  ExecResult R = interpret(*F, {0}, /*MaxSteps=*/1000);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(Interpreter, WrongArgCountIsAnError) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  ret %a
}
)");
  EXPECT_FALSE(interpret(*F, {1}).ok());
  EXPECT_TRUE(interpret(*F, {1, 2}).ok());
}

TEST(Interpreter, StepLimitIsADistinctTimedOutOutcome) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump spin
spin:
  jump spin
}
)");
  ExecResult R = interpret(*F, {0}, /*MaxSteps=*/1000);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.timedOut());
  EXPECT_EQ(R.Status, ExecStatus::TimedOut);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);

  // A genuine runtime error stays in the Error class, so "translation
  // clobbered a value" and "workload too big" are distinguishable.
  auto G = parse(R"(
func @g {
entry:
  input %a
  %r = add %a, %R3
  ret %r
}
)");
  ExecResult E = interpret(*G, {1});
  EXPECT_FALSE(E.ok());
  EXPECT_FALSE(E.timedOut());
  EXPECT_EQ(E.Status, ExecStatus::Error);
  EXPECT_FALSE(R.sameOutcome(E));
}

TEST(Interpreter, UndefinedReadNamesTheRegister) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %r = add %a, %R3
  ret %r
}
)");
  ExecResult R = interpret(*F, {1});
  EXPECT_EQ(R.Status, ExecStatus::Error);
  EXPECT_EQ(R.Error, "read of undefined register %R3");
}

TEST(Interpreter, ParallelCopySwapsAndCountsDynMoves) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b, %c
  parcopy %a = %b, %b = %c, %c = %a
  output %a
  output %b
  output %c
  ret %a
}
)");
  ExecResult R = interpret(*F, {1, 2, 3});
  ASSERT_TRUE(R.ok()) << R.Error;
  // All reads happen before any write: a 3-cycle rotates in parallel.
  EXPECT_EQ(R.Outputs, (std::vector<uint64_t>{2, 3, 1}));
  EXPECT_EQ(R.DynMoves, 3u);
}

TEST(Interpreter, ParallelCopyUndefinedSourceFailsWithFirstError) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  parcopy %x = %a, %y = %R5
  output %x
  ret %a
}
)");
  ExecResult R = interpret(*F, {4});
  EXPECT_EQ(R.Status, ExecStatus::Error);
  EXPECT_EQ(R.Error, "read of undefined register %R5");
  // The copy is all-or-nothing: nothing ran after the failure.
  EXPECT_TRUE(R.Outputs.empty());
}
