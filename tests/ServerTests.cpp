//===- ServerTests.cpp - Compile-service protocol and server tests -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The lao-server acceptance gates, in-process: framing round-trips,
// byte-identity of served IR against the one-shot pipeline, every
// graceful-degradation path (malformed body, unknown preset, oversized
// frame, deadline expiry) leaving the daemon serving, the one fatal
// path (unframeable stream), and the determinism of per-request stat
// attribution under a concurrent multi-worker pool.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/AnalysisManager.h"
#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "server/FdStream.h"
#include "server/Server.h"
#include "server/SocketTransport.h"
#include "support/Stats.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace lao;
using namespace lao::test;

namespace {

const char *SimpleFunc = R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, then, else
then:
  %x = addi %a, 1
  jump join
else:
  %y = addi %b, 2
  jump join
join:
  %z = phi [%x, then], [%y, else]
  ret %z
}
)";

/// Drives a fresh server over the concatenated request frames and
/// returns (exit code, responses in stream order).
int serveFrames(const ServerOptions &Opts, const std::string &Frames,
                std::vector<Response> &Responses, Server *Out = nullptr) {
  Server Local(Opts);
  Server &S = Out ? *Out : Local;
  std::istringstream In(Frames);
  std::ostringstream OutBytes;
  int Rc = S.serve(In, OutBytes);
  std::istringstream Rsp(OutBytes.str());
  // Response frames are read with the default (generous) limits: the
  // request-side limit under test must not throttle the readback.
  for (;;) {
    Response R;
    std::string Error;
    FrameStatus St = readResponse(Rsp, FrameLimits(), R, Error);
    if (St == FrameStatus::Eof)
      break;
    EXPECT_EQ(St, FrameStatus::Ok) << Error;
    if (St != FrameStatus::Ok)
      break;
    Responses.push_back(std::move(R));
  }
  return Rc;
}

/// The exact one-shot reference: what lao-opt would print for \p Text.
std::string oneShot(const std::string &Text,
                    const std::string &Preset = "Lphi,ABI+C") {
  auto F = parseFunction(Text);
  EXPECT_TRUE(F != nullptr);
  runPipeline(*F, pipelinePreset(Preset));
  return printFunction(*F);
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol framing
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, RequestRoundTrip) {
  Request R;
  R.Id = 42;
  R.Pipeline = "C,naiveABI+C";
  R.BuildSSA = true;
  R.DeadlineMs = 250;
  R.SleepMs = 3;
  R.Text = "func @f {\nentry:\n  input %a\n  ret %a\n}\n";
  std::istringstream In(encodeRequest(R));
  Request Back;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.Pipeline, R.Pipeline);
  EXPECT_EQ(Back.BuildSSA, R.BuildSSA);
  EXPECT_EQ(Back.DeadlineMs, R.DeadlineMs);
  EXPECT_EQ(Back.SleepMs, R.SleepMs);
  EXPECT_EQ(Back.Text, R.Text);
  // The stream is fully consumed: a second read is a clean EOF.
  EXPECT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Eof);
}

TEST(ServerProtocol, ResponseRoundTrip) {
  Response R;
  R.Id = 7;
  R.Ok = true;
  R.RecordJson = "{\"id\":7,\"ok\":true,\"outcome\":\"ok\"}";
  R.IR = "func @f {\nentry:\n  ret %R0\n}\n";
  std::istringstream In(encodeResponse(R));
  Response Back;
  std::string Error;
  ASSERT_EQ(readResponse(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_EQ(Back.Id, 7u);
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.RecordJson, R.RecordJson);
  EXPECT_EQ(Back.IR, R.IR);
}

TEST(ServerProtocol, UnknownOptionKeyIsBodyLevelError) {
  // A well-framed body with an option key the server does not know is a
  // per-request error (FrameStatus::Ok + non-empty ErrorOut naming the
  // key), never a protocol failure.
  std::string Body = "frobnicate: 1\n\nfunc @f {\nentry:\n  ret %a\n}\n";
  std::ostringstream Frame;
  Frame << "LAO1 REQ 9 " << Body.size() << "\n" << Body << "\n";
  std::istringstream In(Frame.str());
  Request R;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), R, Error), FrameStatus::Ok);
  EXPECT_EQ(R.Id, 9u);
  EXPECT_FALSE(Error.empty());
  EXPECT_NE(Error.find("frobnicate"), std::string::npos) << Error;
}

TEST(ServerProtocol, BadHeaderIsMalformed) {
  std::istringstream In("HELLO WORLD\n");
  Request R;
  std::string Error;
  EXPECT_EQ(readRequest(In, FrameLimits(), R, Error),
            FrameStatus::Malformed);
  EXPECT_FALSE(Error.empty());
}

TEST(ServerProtocol, TruncatedBodyIsMalformed) {
  std::istringstream In("LAO1 REQ 1 9999\n\nfunc @f");
  Request R;
  std::string Error;
  EXPECT_EQ(readRequest(In, FrameLimits(), R, Error),
            FrameStatus::Malformed);
}

TEST(ServerProtocol, OversizedBodyIsSkippedWithIdIntact) {
  // Large enough for the follow-up request's encoded body (option
  // block + one-byte function text), small enough to reject the blob.
  FrameLimits Limits;
  Limits.MaxBodyBytes = 32;
  std::string Body(64, 'x');
  std::ostringstream Frames;
  Frames << "LAO1 REQ 5 " << Body.size() << "\n" << Body << "\n";
  Request Good;
  Good.Id = 6;
  Good.Text = "t";
  Frames << encodeRequest(Good);
  std::istringstream In(Frames.str());
  Request R;
  std::string Error;
  EXPECT_EQ(readRequest(In, Limits, R, Error), FrameStatus::Oversized);
  EXPECT_EQ(R.Id, 5u);
  // The stream resynchronized: the next frame reads normally.
  EXPECT_EQ(readRequest(In, Limits, R, Error), FrameStatus::Ok);
  EXPECT_EQ(R.Id, 6u);
  EXPECT_EQ(R.Text, "t");
}

TEST(ServerProtocol, RegAllocOptionsRoundTrip) {
  Request R;
  R.Id = 11;
  R.RegAlloc = "chordal/load-store-opt";
  R.RegAllocRegs = 8;
  R.Text = "func @f {\nentry:\n  input %a\n  ret %a\n}\n";
  std::istringstream In(encodeRequest(R));
  Request Back;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.RegAlloc, R.RegAlloc);
  EXPECT_EQ(Back.RegAllocRegs, 8u);
  // A request without the keys decodes to the "no allocation" defaults
  // (the encoder omits empty/zero regalloc options entirely).
  Request Plain;
  Plain.Id = 12;
  Plain.Text = R.Text;
  std::string Encoded = encodeRequest(Plain);
  EXPECT_EQ(Encoded.find("regalloc"), std::string::npos) << Encoded;
  std::istringstream In2(Encoded);
  ASSERT_EQ(readRequest(In2, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_TRUE(Back.RegAlloc.empty());
  EXPECT_EQ(Back.RegAllocRegs, 0u);
}

TEST(ServerProtocol, BatchRegAllocOptionsRoundTrip) {
  BatchRequest B;
  B.Id = 21;
  B.RegAlloc = "chaitin-briggs";
  B.RegAllocRegs = 6;
  B.Texts = {"func @f {\nentry:\n  input %a\n  ret %a\n}\n"};
  std::istringstream In(encodeBatchRequest(B));
  FrameKind Kind;
  Request Single;
  BatchRequest Back;
  std::string Error;
  ASSERT_EQ(readRequestFrame(In, FrameLimits(), Kind, Single, Back, Error),
            FrameStatus::Ok);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Kind, FrameKind::Batch);
  EXPECT_EQ(Back.RegAlloc, B.RegAlloc);
  EXPECT_EQ(Back.RegAllocRegs, 6u);
  ASSERT_EQ(Back.Texts.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Serving
//===----------------------------------------------------------------------===//

TEST(Server, ServedIRMatchesOneShotPipeline) {
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  std::vector<Response> Responses;
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(R), Responses), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;
  EXPECT_EQ(Responses[0].IR, oneShot(SimpleFunc));
}

TEST(Server, RegAllocRequestAllocatesAndRecords) {
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  R.RegAlloc = "chordal/load-store-opt";
  R.RegAllocRegs = 8;
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(R), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;

  // Reference: the same pipeline with the same allocation, in-process.
  auto F = parseFunction(SimpleFunc);
  ASSERT_TRUE(F != nullptr);
  PipelineConfig Config = pipelinePreset("Lphi,ABI+C");
  Config.RegAlloc = regAllocPreset("chordal/load-store-opt");
  Config.RegAlloc->NumRegs = 8;
  runPipeline(*F, Config);
  EXPECT_EQ(Responses[0].IR, printFunction(*F));
  EXPECT_TRUE(collectVirtualRegs(*F).empty());

  ASSERT_EQ(S.records().size(), 1u);
  const RequestRecord &Rec = S.records()[0];
  EXPECT_TRUE(Rec.HasRegAlloc);
  EXPECT_EQ(Rec.Allocator, "chordal");
  EXPECT_EQ(Rec.SpillMode, "load-store-opt");
  EXPECT_NE(Responses[0].RecordJson.find("\"allocator\":\"chordal\""),
            std::string::npos)
      << Responses[0].RecordJson;
  EXPECT_NE(Responses[0].RecordJson.find("\"spill_mode\":\"load-store-opt\""),
            std::string::npos)
      << Responses[0].RecordJson;
}

TEST(Server, DefaultRegAllocAppliesAndRequestOverrides) {
  // The daemon-level default engages for requests carrying no regalloc
  // key; a request naming its own preset wins.
  Request Defaulted;
  Defaulted.Id = 1;
  Defaulted.Text = SimpleFunc;
  Request Explicit;
  Explicit.Id = 2;
  Explicit.Text = SimpleFunc;
  Explicit.RegAlloc = "chordal";
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Opts.DefaultRegAlloc = "chaitin-briggs";
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(Defaulted) +
                                  encodeRequest(Explicit),
                        Responses, &S),
            0);
  ASSERT_EQ(Responses.size(), 2u);
  ASSERT_EQ(S.records().size(), 2u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;
  EXPECT_TRUE(S.records()[0].HasRegAlloc);
  EXPECT_EQ(S.records()[0].Allocator, "chaitin-briggs");
  EXPECT_TRUE(Responses[1].Ok) << Responses[1].RecordJson;
  EXPECT_EQ(S.records()[1].Allocator, "chordal");
}

TEST(Server, UnknownRegAllocPresetIsPerRequestError) {
  Request Bad;
  Bad.Id = 1;
  Bad.Text = SimpleFunc;
  Bad.RegAlloc = "linear-scan";
  Request Good;
  Good.Id = 2;
  Good.Text = SimpleFunc;
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(Bad) + encodeRequest(Good),
                        Responses, &S),
            0);
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_FALSE(Responses[0].Ok);
  ASSERT_EQ(S.records().size(), 2u);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::UnknownPreset);
  EXPECT_NE(S.records()[0].Error.find("linear-scan"), std::string::npos)
      << S.records()[0].Error;
  // The daemon keeps serving; the follow-up request (no regalloc key,
  // no daemon default) compiles without allocation.
  EXPECT_TRUE(Responses[1].Ok) << Responses[1].RecordJson;
  EXPECT_FALSE(S.records()[1].HasRegAlloc);
  EXPECT_EQ(Responses[1].IR, oneShot(SimpleFunc));
}

TEST(Server, ErrorRequestsDegradeGracefully) {
  // Four requests: unknown preset, unparseable text, fine, timed out.
  // Each bad one yields its own error record; the good one compiles;
  // the daemon reaches clean EOF (exit 0).
  Request Bad1;
  Bad1.Id = 1;
  Bad1.Pipeline = "NotATable1Preset";
  Bad1.Text = SimpleFunc;
  Request Bad2;
  Bad2.Id = 2;
  Bad2.Text = "this is not a function";
  Request Good;
  Good.Id = 3;
  Good.Text = SimpleFunc;
  Request Slow;
  Slow.Id = 4;
  Slow.Text = SimpleFunc;
  Slow.SleepMs = 200;
  Slow.DeadlineMs = 20;
  std::string Frames = encodeRequest(Bad1) + encodeRequest(Bad2) +
                       encodeRequest(Good) + encodeRequest(Slow);

  ServerOptions Opts;
  Opts.NumWorkers = 4;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 4u);
  ASSERT_EQ(S.records().size(), 4u);

  EXPECT_FALSE(Responses[0].Ok);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::UnknownPreset);
  EXPECT_FALSE(Responses[1].Ok);
  EXPECT_EQ(S.records()[1].Outcome, RequestOutcome::ParseError);
  EXPECT_FALSE(S.records()[1].Error.empty());
  EXPECT_TRUE(Responses[2].Ok) << Responses[2].RecordJson;
  EXPECT_EQ(Responses[2].IR, oneShot(SimpleFunc));
  EXPECT_FALSE(Responses[3].Ok);
  EXPECT_EQ(S.records()[3].Outcome, RequestOutcome::Timeout);
  EXPECT_NE(Responses[3].RecordJson.find("\"outcome\":\"timeout\""),
            std::string::npos)
      << Responses[3].RecordJson;

  EXPECT_EQ(S.report().NumRequests, 4u);
  EXPECT_EQ(S.report().NumOk, 1u);
  EXPECT_EQ(S.report().NumErrors, 3u);
  EXPECT_EQ(S.report().NumTimeouts, 1u);
}

TEST(Server, OversizedFrameThenGoodFrame) {
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.Limits.MaxBodyBytes = 512;
  Opts.CollectRecords = true;
  std::string Big(4096, 'x');
  std::ostringstream Frames;
  Frames << "LAO1 REQ 1 " << Big.size() << "\n" << Big << "\n";
  Request Good;
  Good.Id = 2;
  Good.Text = SimpleFunc;
  Frames << encodeRequest(Good);

  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames.str(), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_FALSE(Responses[0].Ok);
  EXPECT_EQ(Responses[0].Id, 1u);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::Oversized);
  EXPECT_TRUE(Responses[1].Ok) << Responses[1].RecordJson;
  EXPECT_EQ(S.report().NumOversized, 1u);
}

TEST(Server, MalformedHeaderIsFatalWithFinalRecord) {
  Request Good;
  Good.Id = 1;
  Good.Text = SimpleFunc;
  std::string Frames = encodeRequest(Good) + "GARBAGE HEADER LINE\n";

  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 1);
  // The good request before the garbage was still answered, then the
  // fatal id-0 protocol record closed the stream.
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_TRUE(Responses[0].Ok);
  EXPECT_EQ(Responses[1].Id, 0u);
  EXPECT_FALSE(Responses[1].Ok);
  EXPECT_NE(Responses[1].RecordJson.find("\"outcome\":\"protocol_error\""),
            std::string::npos)
      << Responses[1].RecordJson;
}

TEST(Server, DeadlineAppliesDefaultFromOptions) {
  Request Slow;
  Slow.Id = 1;
  Slow.Text = SimpleFunc;
  Slow.SleepMs = 200; // no per-request deadline: the server default hits
  ServerOptions Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultDeadlineMs = 20;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(Slow), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::Timeout);
}

//===----------------------------------------------------------------------===//
// Determinism under concurrency
//===----------------------------------------------------------------------===//

TEST(Server, ConcurrentStressIsDeterministic) {
  // Every suite function, pipelined into a 4-worker server, must yield
  // byte-identical IR, identical outcomes, and *identical per-request
  // counter deltas* to a serial 1-worker run — the StatsScope exactness
  // gate. Response order must equal arrival order both times.
  std::vector<std::string> Texts;
  for (const SuiteSpec &Spec : allSuites())
    for (Workload &W : Spec.Make())
      Texts.push_back(printFunction(*W.F));
  ASSERT_GT(Texts.size(), 50u);

  std::string Frames;
  for (size_t K = 0; K < Texts.size(); ++K) {
    Request R;
    R.Id = K + 1;
    R.Text = Texts[K];
    Frames += encodeRequest(R);
  }

  auto Run = [&](unsigned Workers, std::vector<RequestRecord> &Records) {
    ServerOptions Opts;
    Opts.NumWorkers = Workers;
    Opts.CollectRecords = true;
    Server S(Opts);
    std::vector<Response> Responses;
    EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 0);
    EXPECT_EQ(Responses.size(), Texts.size());
    for (size_t K = 0; K < Responses.size(); ++K)
      EXPECT_EQ(Responses[K].Id, K + 1) << "response order broke";
    Records = S.records();
    EXPECT_EQ(S.report().NumOk, Texts.size());
  };

  std::vector<RequestRecord> Serial, Sharded;
  Run(1, Serial);
  Run(4, Sharded);
  ASSERT_EQ(Serial.size(), Sharded.size());
  for (size_t K = 0; K < Serial.size(); ++K) {
    EXPECT_EQ(Sharded[K].Id, Serial[K].Id);
    EXPECT_EQ(Sharded[K].Outcome, Serial[K].Outcome);
    EXPECT_EQ(Sharded[K].IR, Serial[K].IR) << "request " << Serial[K].Id;
    EXPECT_EQ(Sharded[K].Moves, Serial[K].Moves);
    EXPECT_EQ(Sharded[K].WeightedMoves, Serial[K].WeightedMoves);
    // The per-request counter snapshot is exact: no worker sees another
    // request's bumps, so 4-way sharding changes nothing.
    EXPECT_EQ(Sharded[K].Counters, Serial[K].Counters)
        << "per-request stat deltas diverged for request "
        << Serial[K].Id;
  }
}

TEST(Server, CompileRequestAttributesStatsPerRequest) {
  // Direct compileRequest: the record's counter snapshot must contain
  // pipeline work (nonzero deltas) and two identical requests through
  // the same reused worker context must report identical deltas — the
  // manager reset wipes cross-request cache state.
  WorkerContext Ctx;
  ServerOptions Opts;
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  auto Now = std::chrono::steady_clock::now();
  RequestRecord First = Server::compileRequest(R, Ctx, Now, Opts);
  ASSERT_TRUE(First.ok()) << First.Error;
  EXPECT_FALSE(First.Counters.empty());
  R.Id = 2;
  RequestRecord Second = Server::compileRequest(R, Ctx, Now, Opts);
  ASSERT_TRUE(Second.ok()) << Second.Error;
  EXPECT_EQ(First.Counters, Second.Counters)
      << "reused worker context leaked state between requests";
  EXPECT_EQ(First.IR, Second.IR);
}

//===----------------------------------------------------------------------===//
// Batch framing
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, BatchRequestRoundTrip) {
  BatchRequest B;
  B.Id = 11;
  B.Pipeline = "C,naiveABI+C";
  B.BuildSSA = true;
  B.DeadlineMs = 250;
  B.Texts = {"func @a {\nentry:\n  ret %a\n}\n", "", "x\ny\n"};
  std::istringstream In(encodeBatchRequest(B));
  FrameKind Kind = FrameKind::Single;
  Request R;
  BatchRequest Back;
  std::string Error;
  ASSERT_EQ(readRequestFrame(In, FrameLimits(), Kind, R, Back, Error),
            FrameStatus::Ok);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Kind, FrameKind::Batch);
  EXPECT_EQ(Back.Id, B.Id);
  EXPECT_EQ(Back.Pipeline, B.Pipeline);
  EXPECT_EQ(Back.BuildSSA, B.BuildSSA);
  EXPECT_EQ(Back.DeadlineMs, B.DeadlineMs);
  EXPECT_EQ(Back.Texts, B.Texts);
  EXPECT_EQ(readRequestFrame(In, FrameLimits(), Kind, R, Back, Error),
            FrameStatus::Eof);
}

TEST(ServerProtocol, BatchResponseRoundTrip) {
  BatchResponse B;
  B.Id = 4;
  B.Ok = true;
  B.SummaryJson = "{\"id\":4,\"ok\":true,\"outcome\":\"ok\",\"functions\":2}";
  Response I0;
  I0.Id = 4;
  I0.Ok = true;
  I0.RecordJson = "{\"id\":4,\"ok\":true,\"outcome\":\"ok\",\"item\":0}";
  I0.IR = "func @a {\nentry:\n  ret %R0\n}\n";
  Response I1;
  I1.Id = 4;
  I1.Ok = false;
  I1.RecordJson = "{\"id\":4,\"ok\":false,\"outcome\":\"parse_error\"}";
  B.Items = {I0, I1};
  std::istringstream In(encodeBatchResponse(B));
  FrameKind Kind = FrameKind::Single;
  Response R;
  BatchResponse Back;
  std::string Error;
  ASSERT_EQ(readResponseFrame(In, FrameLimits(), Kind, R, Back, Error),
            FrameStatus::Ok);
  EXPECT_EQ(Kind, FrameKind::Batch);
  EXPECT_EQ(Back.Id, 4u);
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.SummaryJson, B.SummaryJson);
  ASSERT_EQ(Back.Items.size(), 2u);
  EXPECT_TRUE(Back.Items[0].Ok);
  EXPECT_EQ(Back.Items[0].RecordJson, I0.RecordJson);
  EXPECT_EQ(Back.Items[0].IR, I0.IR);
  EXPECT_FALSE(Back.Items[1].Ok);
}

TEST(ServerProtocol, BatchWithoutCountIsBodyLevelError) {
  // "count" is what lets the reader validate the sub-framing; a BAT
  // body without it is a per-frame error, not a stream failure.
  std::string Body = "pipeline: Lphi,ABI+C\n\n2\nab\n";
  std::ostringstream Frame;
  Frame << "LAO1 BAT 3 " << Body.size() << "\n" << Body << "\n";
  std::istringstream In(Frame.str());
  FrameKind Kind = FrameKind::Single;
  Request R;
  BatchRequest Back;
  std::string Error;
  ASSERT_EQ(readRequestFrame(In, FrameLimits(), Kind, R, Back, Error),
            FrameStatus::Ok);
  EXPECT_EQ(Kind, FrameKind::Batch);
  EXPECT_EQ(Back.Id, 3u);
  EXPECT_NE(Error.find("count"), std::string::npos) << Error;
  EXPECT_TRUE(Back.Texts.empty());
}

TEST(ServerProtocol, BatchCountMismatchIsBodyLevelError) {
  BatchRequest B;
  B.Id = 8;
  B.Texts = {"aa", "bb"};
  std::string Frame = encodeBatchRequest(B);
  // Corrupt the declared count: "count: 2" -> "count: 3". The body
  // length stays valid, so the stream must resynchronize afterwards.
  size_t At = Frame.find("count: 2");
  ASSERT_NE(At, std::string::npos);
  Frame[At + std::strlen("count: ")] = '3';
  Request Single;
  Single.Id = 9;
  Single.Text = "t";
  std::istringstream In(Frame + encodeRequest(Single));
  FrameKind Kind = FrameKind::Single;
  Request R;
  BatchRequest Back;
  std::string Error;
  ASSERT_EQ(readRequestFrame(In, FrameLimits(), Kind, R, Back, Error),
            FrameStatus::Ok);
  EXPECT_EQ(Kind, FrameKind::Batch);
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(Back.Texts.empty()) << "a mismatched batch yields no items";
  Error.clear();
  ASSERT_EQ(readRequestFrame(In, FrameLimits(), Kind, R, Back, Error),
            FrameStatus::Ok)
      << Error;
  EXPECT_EQ(Kind, FrameKind::Single);
  EXPECT_EQ(R.Id, 9u);
}

namespace {

/// Reads every response frame (RSP and RSB) from \p Bytes.
struct AnyResponse {
  FrameKind Kind = FrameKind::Single;
  Response Single;
  BatchResponse Batch;
};
std::vector<AnyResponse> readAllResponses(const std::string &Bytes) {
  std::vector<AnyResponse> Out;
  std::istringstream In(Bytes);
  for (;;) {
    AnyResponse A;
    std::string Error;
    FrameStatus St = readResponseFrame(In, FrameLimits(), A.Kind, A.Single,
                                       A.Batch, Error);
    if (St == FrameStatus::Eof)
      break;
    EXPECT_EQ(St, FrameStatus::Ok) << Error;
    if (St != FrameStatus::Ok)
      break;
    Out.push_back(std::move(A));
  }
  return Out;
}

} // namespace

TEST(Server, BatchServedIRMatchesOneShot) {
  BatchRequest B;
  B.Id = 1;
  B.Texts = {SimpleFunc, SimpleFunc, SimpleFunc};
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::istringstream In(encodeBatchRequest(B));
  std::ostringstream OutBytes;
  EXPECT_EQ(S.serve(In, OutBytes), 0);

  auto Responses = readAllResponses(OutBytes.str());
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_EQ(Responses[0].Kind, FrameKind::Batch);
  const BatchResponse &R = Responses[0].Batch;
  EXPECT_TRUE(R.Ok) << R.SummaryJson;
  ASSERT_EQ(R.Items.size(), 3u);
  std::string Expected = oneShot(SimpleFunc);
  for (size_t K = 0; K < 3; ++K) {
    EXPECT_TRUE(R.Items[K].Ok) << R.Items[K].RecordJson;
    EXPECT_EQ(R.Items[K].IR, Expected) << "batch item " << K;
  }
  // One batch, three compiled functions, items tagged with positions.
  EXPECT_EQ(S.report().NumBatches, 1u);
  EXPECT_EQ(S.report().NumRequests, 3u);
  EXPECT_EQ(S.report().NumOk, 3u);
  ASSERT_EQ(S.records().size(), 3u);
  for (size_t K = 0; K < 3; ++K)
    EXPECT_EQ(S.records()[K].Item, static_cast<int64_t>(K));
}

TEST(Server, MalformedBatchDegradesAndKeepsServing) {
  // A BAT whose items overrun the body is answered with a summary-only
  // error RSB; the next frame still compiles; the daemon exits 0.
  std::string Body = "count: 2\n\n5\nab\n";
  std::ostringstream Frames;
  Frames << "LAO1 BAT 7 " << Body.size() << "\n" << Body << "\n";
  Request Good;
  Good.Id = 8;
  Good.Text = SimpleFunc;
  Frames << encodeRequest(Good);

  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::istringstream In(Frames.str());
  std::ostringstream OutBytes;
  EXPECT_EQ(S.serve(In, OutBytes), 0);

  auto Responses = readAllResponses(OutBytes.str());
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_EQ(Responses[0].Kind, FrameKind::Batch);
  EXPECT_FALSE(Responses[0].Batch.Ok);
  EXPECT_TRUE(Responses[0].Batch.Items.empty());
  EXPECT_NE(Responses[0].Batch.SummaryJson.find("\"outcome\":\"batch_error\""),
            std::string::npos)
      << Responses[0].Batch.SummaryJson;
  EXPECT_EQ(Responses[1].Kind, FrameKind::Single);
  EXPECT_TRUE(Responses[1].Single.Ok);
  EXPECT_EQ(S.report().NumBatchErrors, 1u);
  ASSERT_EQ(S.records().size(), 2u);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::BatchError);
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(Server, BackpressureWindowBoundsInFlight) {
  // With a 2-frame window, pipelining 24 requests into a 4-worker pool
  // must never have more than 2 dispatched-but-unflushed frames, and
  // every request is still answered in order.
  std::string Frames;
  for (uint64_t K = 1; K <= 24; ++K) {
    Request R;
    R.Id = K;
    R.Text = SimpleFunc;
    Frames += encodeRequest(R);
  }
  ServerOptions Opts;
  Opts.NumWorkers = 4;
  Opts.MaxInFlightFrames = 2;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 24u);
  for (size_t K = 0; K < Responses.size(); ++K) {
    EXPECT_EQ(Responses[K].Id, K + 1);
    EXPECT_TRUE(Responses[K].Ok);
  }
  EXPECT_GE(S.report().MaxInFlight, 1u);
  EXPECT_LE(S.report().MaxInFlight, 2u)
      << "the in-flight window leaked past its bound";
}

TEST(Server, ArenaReuseIsCountedOutsideRequestScopes) {
  // A single worker compiling several requests recycles its arena
  // chunks between them: the global server.arena_reuse_bytes counter
  // must grow, but it must never appear in a per-request counter
  // snapshot — reuse is a worker-lifetime effect, and charging it to
  // whichever request happened to run second would make per-request
  // deltas scheduling-dependent.
  std::string Frames;
  for (uint64_t K = 1; K <= 6; ++K) {
    Request R;
    R.Id = K;
    R.Text = SimpleFunc;
    Frames += encodeRequest(R);
  }
  ServerOptions Opts;
  Opts.NumWorkers = 1;
  Opts.CollectRecords = true;
  Server S(Opts);
  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 0);
  StatsSnapshot Delta =
      StatsRegistry::delta(Before, StatsRegistry::instance().snapshot());
  EXPECT_GT(Delta["server.arena_reuse_bytes"], 0u)
      << "the warm path never reissued a recycled chunk";
  ASSERT_EQ(S.records().size(), 6u);
  for (const RequestRecord &R : S.records())
    EXPECT_EQ(R.Counters.count("server.arena_reuse_bytes"), 0u)
        << "arena reuse leaked into a per-request snapshot";
}

//===----------------------------------------------------------------------===//
// Socket transport
//===----------------------------------------------------------------------===//

namespace {

bool writeBytes(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::string readToEof(int Fd) {
  std::string Bytes;
  char Buf[65536];
  for (ssize_t N; (N = read(Fd, Buf, sizeof(Buf))) > 0;)
    Bytes.append(Buf, static_cast<size_t>(N));
  return Bytes;
}

} // namespace

TEST(ServerSocket, LoopbackRoundTripMatchesOneShot) {
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Server S(Opts);
  std::atomic<bool> Stop{false};
  std::string Path =
      "/tmp/lao-servertests-" + std::to_string(getpid()) + "-rt.sock";
  std::string Error;
  int ListenFd = listenUnixSocket(Path, Error);
  ASSERT_GE(ListenFd, 0) << Error;
  std::thread Acceptor([&] { runSocketServer(S, ListenFd, Stop); });

  int Fd = connectUnixSocket(Path, Error);
  ASSERT_GE(Fd, 0) << Error;
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  BatchRequest B;
  B.Id = 2;
  B.Texts = {SimpleFunc, SimpleFunc};
  ASSERT_TRUE(writeBytes(Fd, encodeRequest(R) + encodeBatchRequest(B)));
  shutdown(Fd, SHUT_WR);
  auto Responses = readAllResponses(readToEof(Fd));
  close(Fd);
  Stop.store(true);
  Acceptor.join();
  close(ListenFd);
  unlink(Path.c_str());

  ASSERT_EQ(Responses.size(), 2u);
  std::string Expected = oneShot(SimpleFunc);
  EXPECT_EQ(Responses[0].Kind, FrameKind::Single);
  EXPECT_TRUE(Responses[0].Single.Ok) << Responses[0].Single.RecordJson;
  EXPECT_EQ(Responses[0].Single.IR, Expected);
  EXPECT_EQ(Responses[1].Kind, FrameKind::Batch);
  ASSERT_EQ(Responses[1].Batch.Items.size(), 2u);
  for (const Response &Item : Responses[1].Batch.Items)
    EXPECT_EQ(Item.IR, Expected);
}

TEST(ServerSocket, ConcurrentConnectionsStayDeterministic) {
  // Two connections share one 4-worker pool. Every response must be
  // byte-identical to a serial 1-worker stdio run of the same text,
  // and the per-request counter deltas must match too — concurrency
  // across *connections* may not bleed state any more than concurrency
  // across workers does.
  std::vector<std::string> Texts;
  for (const SuiteSpec &Spec : allSuites()) {
    for (Workload &W : Spec.Make()) {
      Texts.push_back(printFunction(*W.F));
      if (Texts.size() >= 24)
        break;
    }
    if (Texts.size() >= 24)
      break;
  }
  ASSERT_GE(Texts.size(), 8u);

  // Serial baseline: one worker, one stream, ids 1..N.
  std::string SerialFrames;
  for (size_t K = 0; K < Texts.size(); ++K) {
    Request R;
    R.Id = K + 1;
    R.Text = Texts[K];
    SerialFrames += encodeRequest(R);
  }
  ServerOptions SerialOpts;
  SerialOpts.NumWorkers = 1;
  SerialOpts.CollectRecords = true;
  Server Serial(SerialOpts);
  {
    std::istringstream In(SerialFrames);
    std::ostringstream Out;
    ASSERT_EQ(Serial.serve(In, Out), 0);
  }
  ASSERT_EQ(Serial.records().size(), Texts.size());

  ServerOptions Opts;
  Opts.NumWorkers = 4;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::atomic<bool> Stop{false};
  std::string Path =
      "/tmp/lao-servertests-" + std::to_string(getpid()) + "-cc.sock";
  std::string Error;
  int ListenFd = listenUnixSocket(Path, Error);
  ASSERT_GE(ListenFd, 0) << Error;
  std::thread Acceptor([&] { runSocketServer(S, ListenFd, Stop); });

  // Each connection submits every other text, both fully pipelined.
  auto Client = [&](size_t Parity, std::vector<AnyResponse> &Out) {
    std::string Err;
    int Fd = connectUnixSocket(Path, Err);
    ASSERT_GE(Fd, 0) << Err;
    std::string Frames;
    for (size_t K = Parity; K < Texts.size(); K += 2) {
      Request R;
      R.Id = K + 1; // Ids match the serial run's, so records align.
      R.Text = Texts[K];
      Frames += encodeRequest(R);
    }
    ASSERT_TRUE(writeBytes(Fd, Frames));
    shutdown(Fd, SHUT_WR);
    Out = readAllResponses(readToEof(Fd));
    close(Fd);
  };
  std::vector<AnyResponse> Even, Odd;
  std::thread C0([&] { Client(0, Even); });
  std::thread C1([&] { Client(1, Odd); });
  C0.join();
  C1.join();
  Stop.store(true);
  Acceptor.join();
  close(ListenFd);
  unlink(Path.c_str());

  // Responses arrive in per-connection submission order, byte-identical
  // to the serial run's IR for the same id.
  auto CheckStream = [&](const std::vector<AnyResponse> &Got,
                         size_t Parity) {
    ASSERT_EQ(Got.size(), (Texts.size() - Parity + 1) / 2)
        << "some requests went unanswered";
    size_t K = Parity;
    for (const AnyResponse &A : Got) {
      ASSERT_EQ(A.Kind, FrameKind::Single);
      EXPECT_EQ(A.Single.Id, K + 1) << "per-connection order broke";
      EXPECT_TRUE(A.Single.Ok) << A.Single.RecordJson;
      EXPECT_EQ(A.Single.IR, Serial.records()[K].IR)
          << "request " << K + 1;
      K += 2;
    }
  };
  ASSERT_EQ(Even.size() + Odd.size(), Texts.size());
  CheckStream(Even, 0);
  CheckStream(Odd, 1);

  // The shared report merged both connections; per-request counter
  // deltas are identical to the serial run's, matched by id.
  EXPECT_EQ(S.report().NumOk, Texts.size());
  ASSERT_EQ(S.records().size(), Texts.size());
  std::map<uint64_t, const RequestRecord *> ById;
  for (const RequestRecord &Rec : S.records())
    ById[Rec.Id] = &Rec;
  for (const RequestRecord &Ref : Serial.records()) {
    ASSERT_TRUE(ById.count(Ref.Id));
    const RequestRecord &Got = *ById[Ref.Id];
    EXPECT_EQ(Got.IR, Ref.IR);
    EXPECT_EQ(Got.Moves, Ref.Moves);
    EXPECT_EQ(Got.Counters, Ref.Counters)
        << "cross-connection stat bleed on request " << Ref.Id;
  }
}

TEST(ServerSocket, ShutdownDrainsInFlightFrames) {
  // Frames already buffered in the kernel when the stop flag rises must
  // still be answered: the stop-aware streambuf only reports EOF once
  // the fd is quiet, and serve() flushes its reorder buffer before
  // returning 0 — the graceful-shutdown contract of SIGTERM.
  int SV[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, SV), 0);
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Server S(Opts);
  std::atomic<bool> Stop{false};
  int Rc = -1;
  std::thread Serving([&] {
    FdStreamBuf InBuf(SV[0], &Stop);
    FdStreamBuf OutBuf(SV[0]);
    std::istream In(&InBuf);
    std::ostream Out(&OutBuf);
    Rc = S.serve(In, Out);
    Out.flush();
    shutdown(SV[0], SHUT_WR);
  });

  std::string Frames;
  for (uint64_t K = 1; K <= 6; ++K) {
    Request R;
    R.Id = K;
    R.Text = SimpleFunc;
    Frames += encodeRequest(R);
  }
  ASSERT_TRUE(writeBytes(SV[1], Frames));
  // No half-close on the client side: EOF can only come from the flag.
  Stop.store(true);
  auto Responses = readAllResponses(readToEof(SV[1]));
  Serving.join();
  close(SV[0]);
  close(SV[1]);

  EXPECT_EQ(Rc, 0) << "a drained shutdown is a clean exit";
  ASSERT_EQ(Responses.size(), 6u);
  for (size_t K = 0; K < Responses.size(); ++K) {
    EXPECT_EQ(Responses[K].Single.Id, K + 1);
    EXPECT_TRUE(Responses[K].Single.Ok) << Responses[K].Single.RecordJson;
  }
}

//===----------------------------------------------------------------------===//
// Execution requests (the "exec" key)
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, ExecOptionsRoundTrip) {
  Request R;
  R.Id = 31;
  R.Exec = "both";
  R.ExecArgs = {3, 4, 997};
  R.Text = "func @f {\nentry:\n  input %a\n  ret %a\n}\n";
  std::istringstream In(encodeRequest(R));
  Request Back;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.Exec, "both");
  EXPECT_EQ(Back.ExecArgs, R.ExecArgs);
  // Requests without the keys encode without them and decode to the
  // "no execution" defaults.
  Request Plain;
  Plain.Id = 32;
  Plain.Text = R.Text;
  std::string Encoded = encodeRequest(Plain);
  EXPECT_EQ(Encoded.find("exec"), std::string::npos) << Encoded;
  std::istringstream In2(Encoded);
  ASSERT_EQ(readRequest(In2, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_TRUE(Back.Exec.empty());
  EXPECT_TRUE(Back.ExecArgs.empty());
}

TEST(ServerProtocol, BadExecArgsIsBodyLevelError) {
  std::string Body = "exec: vm\nexec_args: 1,x,3\n\n"
                     "func @f {\nentry:\n  input %a\n  ret %a\n}\n";
  std::string Frame =
      "LAO1 REQ 33 " + std::to_string(Body.size()) + "\n" + Body + "\n";
  std::istringstream In(Frame);
  Request Back;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_EQ(Back.Id, 33u);
  EXPECT_NE(Error.find("exec_args"), std::string::npos) << Error;
}

TEST(Server, ExecVmRequestReportsDynCounters) {
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  R.Exec = "vm";
  R.ExecArgs = {3, 4};
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(R), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;
  // The compiled function still matches the one-shot pipeline byte for
  // byte: execution is observation, not transformation.
  EXPECT_EQ(Responses[0].IR, oneShot(SimpleFunc));

  ASSERT_EQ(S.records().size(), 1u);
  const RequestRecord &Rec = S.records()[0];
  EXPECT_TRUE(Rec.HasExec);
  EXPECT_EQ(Rec.ExecEngine, "vm");
  EXPECT_EQ(Rec.ExecStatus, "ok");
  // 3 < 4 takes the then-branch: ret (3 addi 1) = 4.
  EXPECT_EQ(Rec.ExecRet, 4u);
  EXPECT_GT(Rec.DynInstrs, 0u);
  EXPECT_NE(Responses[0].RecordJson.find("\"exec_engine\":\"vm\""),
            std::string::npos)
      << Responses[0].RecordJson;
  EXPECT_NE(Responses[0].RecordJson.find("\"exec_ret\":4"), std::string::npos)
      << Responses[0].RecordJson;
  EXPECT_NE(Responses[0].RecordJson.find("\"dyn_instrs\":"), std::string::npos)
      << Responses[0].RecordJson;
  // Single requests attribute the VM's counter bumps to the request:
  // the exec.* deltas land in the record's counters object.
  EXPECT_EQ(Rec.Counters.count("exec.vm_runs"), 1u);
  EXPECT_EQ(Rec.Counters.at("exec.vm_runs"), 1u);
  EXPECT_EQ(Rec.Counters.at("exec.dyn_instrs"), Rec.DynInstrs);
}

TEST(Server, ExecBothRunsTheInProcessDifferential) {
  Request R;
  R.Id = 7;
  R.Text = SimpleFunc;
  R.Exec = "both";
  R.ExecArgs = {9, 2};
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(R), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;
  ASSERT_EQ(S.records().size(), 1u);
  const RequestRecord &Rec = S.records()[0];
  EXPECT_TRUE(Rec.HasExec);
  EXPECT_EQ(Rec.ExecEngine, "both");
  EXPECT_EQ(Rec.ExecStatus, "ok");
  // 9 < 2 is false: ret (2 addi 2) = 4 via the else-branch.
  EXPECT_EQ(Rec.ExecRet, 4u);
}

TEST(Server, UnknownExecEngineIsPerRequestError) {
  Request Bad;
  Bad.Id = 1;
  Bad.Text = SimpleFunc;
  Bad.Exec = "jit";
  Request Good;
  Good.Id = 2;
  Good.Text = SimpleFunc;
  Good.Exec = "interp";
  Good.ExecArgs = {1, 2};
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(Bad) + encodeRequest(Good),
                        Responses),
            0);
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_FALSE(Responses[0].Ok);
  EXPECT_NE(Responses[0].RecordJson.find("unknown_preset"), std::string::npos)
      << Responses[0].RecordJson;
  EXPECT_NE(Responses[0].RecordJson.find("unknown exec engine"),
            std::string::npos)
      << Responses[0].RecordJson;
  EXPECT_TRUE(Responses[1].Ok) << Responses[1].RecordJson;
  EXPECT_NE(Responses[1].RecordJson.find("\"exec_engine\":\"interp\""),
            std::string::npos)
      << Responses[1].RecordJson;
}

TEST(Server, ExecTimeoutIsAResultNotARequestError) {
  // A spin loop exhausts the fixed step budget; the request still
  // succeeds — the timeout is recorded as the execution's status.
  const char *Spin = R"(
func @spin {
entry:
  input %a
  jump loop
loop:
  jump loop
}
)";
  Request R;
  R.Id = 1;
  R.Text = Spin;
  R.Exec = "both";
  R.ExecArgs = {1};
  ServerOptions Opts;
  Opts.NumWorkers = 1;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(R), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;
  ASSERT_EQ(S.records().size(), 1u);
  EXPECT_EQ(S.records()[0].ExecStatus, "timeout");
  EXPECT_NE(Responses[0].RecordJson.find("\"exec_status\":\"timeout\""),
            std::string::npos)
      << Responses[0].RecordJson;
}

TEST(Server, BatchItemsInheritExecOptions) {
  BatchRequest B;
  B.Id = 50;
  B.Exec = "both";
  B.ExecArgs = {5, 6};
  B.Texts = {SimpleFunc, SimpleFunc, SimpleFunc};
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::istringstream In(encodeBatchRequest(B));
  std::ostringstream OutBytes;
  EXPECT_EQ(S.serve(In, OutBytes), 0);
  std::istringstream Rsp(OutBytes.str());
  FrameKind Kind;
  Response Single;
  BatchResponse Back;
  std::string Error;
  ASSERT_EQ(readResponseFrame(Rsp, FrameLimits(), Kind, Single, Back, Error),
            FrameStatus::Ok);
  ASSERT_EQ(Kind, FrameKind::Batch);
  EXPECT_TRUE(Back.Ok) << Back.SummaryJson;
  ASSERT_EQ(Back.Items.size(), 3u);
  for (const Response &Item : Back.Items) {
    EXPECT_TRUE(Item.Ok) << Item.RecordJson;
    // 5 < 6: ret (5 addi 1) = 6 on every item.
    EXPECT_NE(Item.RecordJson.find("\"exec_ret\":6"), std::string::npos)
        << Item.RecordJson;
    EXPECT_NE(Item.RecordJson.find("\"exec_engine\":\"both\""),
              std::string::npos)
        << Item.RecordJson;
  }
  ASSERT_EQ(S.records().size(), 3u);
  for (const RequestRecord &Rec : S.records()) {
    EXPECT_TRUE(Rec.HasExec);
    EXPECT_EQ(Rec.ExecRet, 6u);
    // Batch items ride the lean path: dyn counters come from the record
    // fields, not a per-item StatsScope.
    EXPECT_TRUE(Rec.Counters.empty());
    EXPECT_GT(Rec.DynInstrs, 0u);
  }
}
