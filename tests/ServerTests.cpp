//===- ServerTests.cpp - Compile-service protocol and server tests -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The lao-server acceptance gates, in-process: framing round-trips,
// byte-identity of served IR against the one-shot pipeline, every
// graceful-degradation path (malformed body, unknown preset, oversized
// frame, deadline expiry) leaving the daemon serving, the one fatal
// path (unframeable stream), and the determinism of per-request stat
// attribution under a concurrent multi-worker pool.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/AnalysisManager.h"
#include "outofssa/Pipeline.h"
#include "server/Server.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace lao;
using namespace lao::test;

namespace {

const char *SimpleFunc = R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, then, else
then:
  %x = addi %a, 1
  jump join
else:
  %y = addi %b, 2
  jump join
join:
  %z = phi [%x, then], [%y, else]
  ret %z
}
)";

/// Drives a fresh server over the concatenated request frames and
/// returns (exit code, responses in stream order).
int serveFrames(const ServerOptions &Opts, const std::string &Frames,
                std::vector<Response> &Responses, Server *Out = nullptr) {
  Server Local(Opts);
  Server &S = Out ? *Out : Local;
  std::istringstream In(Frames);
  std::ostringstream OutBytes;
  int Rc = S.serve(In, OutBytes);
  std::istringstream Rsp(OutBytes.str());
  // Response frames are read with the default (generous) limits: the
  // request-side limit under test must not throttle the readback.
  for (;;) {
    Response R;
    std::string Error;
    FrameStatus St = readResponse(Rsp, FrameLimits(), R, Error);
    if (St == FrameStatus::Eof)
      break;
    EXPECT_EQ(St, FrameStatus::Ok) << Error;
    if (St != FrameStatus::Ok)
      break;
    Responses.push_back(std::move(R));
  }
  return Rc;
}

/// The exact one-shot reference: what lao-opt would print for \p Text.
std::string oneShot(const std::string &Text,
                    const std::string &Preset = "Lphi,ABI+C") {
  auto F = parseFunction(Text);
  EXPECT_TRUE(F != nullptr);
  runPipeline(*F, pipelinePreset(Preset));
  return printFunction(*F);
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol framing
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, RequestRoundTrip) {
  Request R;
  R.Id = 42;
  R.Pipeline = "C,naiveABI+C";
  R.BuildSSA = true;
  R.DeadlineMs = 250;
  R.SleepMs = 3;
  R.Text = "func @f {\nentry:\n  input %a\n  ret %a\n}\n";
  std::istringstream In(encodeRequest(R));
  Request Back;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.Pipeline, R.Pipeline);
  EXPECT_EQ(Back.BuildSSA, R.BuildSSA);
  EXPECT_EQ(Back.DeadlineMs, R.DeadlineMs);
  EXPECT_EQ(Back.SleepMs, R.SleepMs);
  EXPECT_EQ(Back.Text, R.Text);
  // The stream is fully consumed: a second read is a clean EOF.
  EXPECT_EQ(readRequest(In, FrameLimits(), Back, Error), FrameStatus::Eof);
}

TEST(ServerProtocol, ResponseRoundTrip) {
  Response R;
  R.Id = 7;
  R.Ok = true;
  R.RecordJson = "{\"id\":7,\"ok\":true,\"outcome\":\"ok\"}";
  R.IR = "func @f {\nentry:\n  ret %R0\n}\n";
  std::istringstream In(encodeResponse(R));
  Response Back;
  std::string Error;
  ASSERT_EQ(readResponse(In, FrameLimits(), Back, Error), FrameStatus::Ok);
  EXPECT_EQ(Back.Id, 7u);
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.RecordJson, R.RecordJson);
  EXPECT_EQ(Back.IR, R.IR);
}

TEST(ServerProtocol, UnknownOptionKeyIsBodyLevelError) {
  // A well-framed body with an option key the server does not know is a
  // per-request error (FrameStatus::Ok + non-empty ErrorOut naming the
  // key), never a protocol failure.
  std::string Body = "frobnicate: 1\n\nfunc @f {\nentry:\n  ret %a\n}\n";
  std::ostringstream Frame;
  Frame << "LAO1 REQ 9 " << Body.size() << "\n" << Body << "\n";
  std::istringstream In(Frame.str());
  Request R;
  std::string Error;
  ASSERT_EQ(readRequest(In, FrameLimits(), R, Error), FrameStatus::Ok);
  EXPECT_EQ(R.Id, 9u);
  EXPECT_FALSE(Error.empty());
  EXPECT_NE(Error.find("frobnicate"), std::string::npos) << Error;
}

TEST(ServerProtocol, BadHeaderIsMalformed) {
  std::istringstream In("HELLO WORLD\n");
  Request R;
  std::string Error;
  EXPECT_EQ(readRequest(In, FrameLimits(), R, Error),
            FrameStatus::Malformed);
  EXPECT_FALSE(Error.empty());
}

TEST(ServerProtocol, TruncatedBodyIsMalformed) {
  std::istringstream In("LAO1 REQ 1 9999\n\nfunc @f");
  Request R;
  std::string Error;
  EXPECT_EQ(readRequest(In, FrameLimits(), R, Error),
            FrameStatus::Malformed);
}

TEST(ServerProtocol, OversizedBodyIsSkippedWithIdIntact) {
  // Large enough for the follow-up request's encoded body (option
  // block + one-byte function text), small enough to reject the blob.
  FrameLimits Limits;
  Limits.MaxBodyBytes = 32;
  std::string Body(64, 'x');
  std::ostringstream Frames;
  Frames << "LAO1 REQ 5 " << Body.size() << "\n" << Body << "\n";
  Request Good;
  Good.Id = 6;
  Good.Text = "t";
  Frames << encodeRequest(Good);
  std::istringstream In(Frames.str());
  Request R;
  std::string Error;
  EXPECT_EQ(readRequest(In, Limits, R, Error), FrameStatus::Oversized);
  EXPECT_EQ(R.Id, 5u);
  // The stream resynchronized: the next frame reads normally.
  EXPECT_EQ(readRequest(In, Limits, R, Error), FrameStatus::Ok);
  EXPECT_EQ(R.Id, 6u);
  EXPECT_EQ(R.Text, "t");
}

//===----------------------------------------------------------------------===//
// Serving
//===----------------------------------------------------------------------===//

TEST(Server, ServedIRMatchesOneShotPipeline) {
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  std::vector<Response> Responses;
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(R), Responses), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].RecordJson;
  EXPECT_EQ(Responses[0].IR, oneShot(SimpleFunc));
}

TEST(Server, ErrorRequestsDegradeGracefully) {
  // Four requests: unknown preset, unparseable text, fine, timed out.
  // Each bad one yields its own error record; the good one compiles;
  // the daemon reaches clean EOF (exit 0).
  Request Bad1;
  Bad1.Id = 1;
  Bad1.Pipeline = "NotATable1Preset";
  Bad1.Text = SimpleFunc;
  Request Bad2;
  Bad2.Id = 2;
  Bad2.Text = "this is not a function";
  Request Good;
  Good.Id = 3;
  Good.Text = SimpleFunc;
  Request Slow;
  Slow.Id = 4;
  Slow.Text = SimpleFunc;
  Slow.SleepMs = 200;
  Slow.DeadlineMs = 20;
  std::string Frames = encodeRequest(Bad1) + encodeRequest(Bad2) +
                       encodeRequest(Good) + encodeRequest(Slow);

  ServerOptions Opts;
  Opts.NumWorkers = 4;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 4u);
  ASSERT_EQ(S.records().size(), 4u);

  EXPECT_FALSE(Responses[0].Ok);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::UnknownPreset);
  EXPECT_FALSE(Responses[1].Ok);
  EXPECT_EQ(S.records()[1].Outcome, RequestOutcome::ParseError);
  EXPECT_FALSE(S.records()[1].Error.empty());
  EXPECT_TRUE(Responses[2].Ok) << Responses[2].RecordJson;
  EXPECT_EQ(Responses[2].IR, oneShot(SimpleFunc));
  EXPECT_FALSE(Responses[3].Ok);
  EXPECT_EQ(S.records()[3].Outcome, RequestOutcome::Timeout);
  EXPECT_NE(Responses[3].RecordJson.find("\"outcome\":\"timeout\""),
            std::string::npos)
      << Responses[3].RecordJson;

  EXPECT_EQ(S.report().NumRequests, 4u);
  EXPECT_EQ(S.report().NumOk, 1u);
  EXPECT_EQ(S.report().NumErrors, 3u);
  EXPECT_EQ(S.report().NumTimeouts, 1u);
}

TEST(Server, OversizedFrameThenGoodFrame) {
  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.Limits.MaxBodyBytes = 512;
  Opts.CollectRecords = true;
  std::string Big(4096, 'x');
  std::ostringstream Frames;
  Frames << "LAO1 REQ 1 " << Big.size() << "\n" << Big << "\n";
  Request Good;
  Good.Id = 2;
  Good.Text = SimpleFunc;
  Frames << encodeRequest(Good);

  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames.str(), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_FALSE(Responses[0].Ok);
  EXPECT_EQ(Responses[0].Id, 1u);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::Oversized);
  EXPECT_TRUE(Responses[1].Ok) << Responses[1].RecordJson;
  EXPECT_EQ(S.report().NumOversized, 1u);
}

TEST(Server, MalformedHeaderIsFatalWithFinalRecord) {
  Request Good;
  Good.Id = 1;
  Good.Text = SimpleFunc;
  std::string Frames = encodeRequest(Good) + "GARBAGE HEADER LINE\n";

  ServerOptions Opts;
  Opts.NumWorkers = 2;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 1);
  // The good request before the garbage was still answered, then the
  // fatal id-0 protocol record closed the stream.
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_TRUE(Responses[0].Ok);
  EXPECT_EQ(Responses[1].Id, 0u);
  EXPECT_FALSE(Responses[1].Ok);
  EXPECT_NE(Responses[1].RecordJson.find("\"outcome\":\"protocol_error\""),
            std::string::npos)
      << Responses[1].RecordJson;
}

TEST(Server, DeadlineAppliesDefaultFromOptions) {
  Request Slow;
  Slow.Id = 1;
  Slow.Text = SimpleFunc;
  Slow.SleepMs = 200; // no per-request deadline: the server default hits
  ServerOptions Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultDeadlineMs = 20;
  Opts.CollectRecords = true;
  Server S(Opts);
  std::vector<Response> Responses;
  EXPECT_EQ(serveFrames(Opts, encodeRequest(Slow), Responses, &S), 0);
  ASSERT_EQ(Responses.size(), 1u);
  EXPECT_EQ(S.records()[0].Outcome, RequestOutcome::Timeout);
}

//===----------------------------------------------------------------------===//
// Determinism under concurrency
//===----------------------------------------------------------------------===//

TEST(Server, ConcurrentStressIsDeterministic) {
  // Every suite function, pipelined into a 4-worker server, must yield
  // byte-identical IR, identical outcomes, and *identical per-request
  // counter deltas* to a serial 1-worker run — the StatsScope exactness
  // gate. Response order must equal arrival order both times.
  std::vector<std::string> Texts;
  for (const SuiteSpec &Spec : allSuites())
    for (Workload &W : Spec.Make())
      Texts.push_back(printFunction(*W.F));
  ASSERT_GT(Texts.size(), 50u);

  std::string Frames;
  for (size_t K = 0; K < Texts.size(); ++K) {
    Request R;
    R.Id = K + 1;
    R.Text = Texts[K];
    Frames += encodeRequest(R);
  }

  auto Run = [&](unsigned Workers, std::vector<RequestRecord> &Records) {
    ServerOptions Opts;
    Opts.NumWorkers = Workers;
    Opts.CollectRecords = true;
    Server S(Opts);
    std::vector<Response> Responses;
    EXPECT_EQ(serveFrames(Opts, Frames, Responses, &S), 0);
    EXPECT_EQ(Responses.size(), Texts.size());
    for (size_t K = 0; K < Responses.size(); ++K)
      EXPECT_EQ(Responses[K].Id, K + 1) << "response order broke";
    Records = S.records();
    EXPECT_EQ(S.report().NumOk, Texts.size());
  };

  std::vector<RequestRecord> Serial, Sharded;
  Run(1, Serial);
  Run(4, Sharded);
  ASSERT_EQ(Serial.size(), Sharded.size());
  for (size_t K = 0; K < Serial.size(); ++K) {
    EXPECT_EQ(Sharded[K].Id, Serial[K].Id);
    EXPECT_EQ(Sharded[K].Outcome, Serial[K].Outcome);
    EXPECT_EQ(Sharded[K].IR, Serial[K].IR) << "request " << Serial[K].Id;
    EXPECT_EQ(Sharded[K].Moves, Serial[K].Moves);
    EXPECT_EQ(Sharded[K].WeightedMoves, Serial[K].WeightedMoves);
    // The per-request counter snapshot is exact: no worker sees another
    // request's bumps, so 4-way sharding changes nothing.
    EXPECT_EQ(Sharded[K].Counters, Serial[K].Counters)
        << "per-request stat deltas diverged for request "
        << Serial[K].Id;
  }
}

TEST(Server, CompileRequestAttributesStatsPerRequest) {
  // Direct compileRequest: the record's counter snapshot must contain
  // pipeline work (nonzero deltas) and two identical requests through
  // the same reused worker context must report identical deltas — the
  // manager reset wipes cross-request cache state.
  WorkerContext Ctx;
  ServerOptions Opts;
  Request R;
  R.Id = 1;
  R.Text = SimpleFunc;
  auto Now = std::chrono::steady_clock::now();
  RequestRecord First = Server::compileRequest(R, Ctx, Now, Opts);
  ASSERT_TRUE(First.ok()) << First.Error;
  EXPECT_FALSE(First.Counters.empty());
  R.Id = 2;
  RequestRecord Second = Server::compileRequest(R, Ctx, Now, Opts);
  ASSERT_TRUE(Second.ok()) << Second.Error;
  EXPECT_EQ(First.Counters, Second.Counters)
      << "reused worker context leaked state between requests";
  EXPECT_EQ(First.IR, Second.IR);
}
