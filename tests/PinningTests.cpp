//===- PinningTests.cpp - Pinning legality and interference tests -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Covers the paper's Figure 4 legality cases (verifyPinning), the
// Section 3.2 interference classes (Variable_kills, strong interference,
// Resource_interfere), the Algorithm 4 optimistic/pessimistic variants,
// and the Figure 2 over-pinning scenario.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/PinningContext.h"
#include "workloads/PaperExamples.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

struct Ctx {
  CFG Cfg;
  DominatorTree DT;
  LivenessQuery LV;
  PinningContext P;

  explicit Ctx(Function &F,
               InterferenceMode Mode = InterferenceMode::Precise)
      : Cfg(F), DT(Cfg), LV(Cfg, DT), P(F, Cfg, DT, LV, Mode) {}
};

} // namespace

//===----------------------------------------------------------------------===//
// Figure 4 legality cases
//===----------------------------------------------------------------------===//

TEST(PinningVerifier, Case1TwoDefsOneResource) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  Instruction Input(Opcode::Input);
  RegId X = F.makeVirtual("x");
  RegId Y = F.makeVirtual("y");
  Input.addDef(X);
  Input.addDef(Y);
  Input.pinDef(0, Target::R0);
  Input.pinDef(1, Target::R0);
  BB->append(std::move(Input));
  Instruction Ret(Opcode::Ret);
  Ret.addUse(X);
  BB->append(std::move(Ret));
  auto Diags = verifyPinning(F);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].find("case 1"), std::string::npos);
}

TEST(PinningVerifier, Case2TwoUsesOneResource) {
  auto F = parse(R"(
func @f {
entry:
  input %x, %y
  %r = call @f(%x^R0, %y^R0)
  ret %r
}
)");
  auto Diags = verifyPinning(*F);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].find("case 2"), std::string::npos);
}

TEST(PinningVerifier, Case2SameVariableIsLegal) {
  auto F = parse(R"(
func @f {
entry:
  input %x
  %r = add %x^R0, %x^R0
  ret %r
}
)");
  EXPECT_TRUE(verifyPinning(*F).empty());
}

TEST(PinningVerifier, Case3TwoPhiDefsOneResource) {
  auto F = makeFigure2();
  auto Diags = verifyPinning(*F);
  ASSERT_FALSE(Diags.empty());
  bool Found = false;
  for (const auto &D : Diags)
    Found |= D.find("case 3") != std::string::npos;
  EXPECT_TRUE(Found) << "Figure 2's SP over-pinning is a Case 3 error";
}

TEST(PinningVerifier, Case4DefUsePinnedTogetherIsLegal) {
  auto F = parse(R"(
func @f {
entry:
  input %y
  %x^r = addi %y^r, 1
  ret %x
}
)");
  EXPECT_TRUE(verifyPinning(*F).empty());
}

TEST(PinningVerifier, Case5PhiArgPinnedElsewhere) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %y = make 1
  jump j
e:
  %z = make 2
  jump j
j:
  %x^r = phi [%y^s, t], [%z, e]
  ret %x
}
)");
  auto Diags = verifyPinning(*F);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].find("case 5"), std::string::npos);
}

TEST(PinningVerifier, CleanFunctionHasNoDiagnostics) {
  auto F = makeFigure1();
  EXPECT_TRUE(verifyPinning(*F).empty());
  EXPECT_TRUE(verifyStructure(*F).empty());
}

//===----------------------------------------------------------------------===//
// Variable_kills — Class 1 and Class 2 (Section 3.2)
//===----------------------------------------------------------------------===//

TEST(VariableKills, Class1LiveAcrossDef) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %a = addi %p, 2
  %u = add %b, %a
  ret %u
}
)");
  Ctx C(*F);
  RegId A = F->findValue("a"), B = F->findValue("b");
  // b is live across a's definition: a kills b.
  EXPECT_TRUE(C.P.variableKills(A, B));
  // a is defined after b; b cannot kill a.
  EXPECT_FALSE(C.P.variableKills(B, A));
}

TEST(VariableKills, NoKillWhenValueDies) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %a = addi %b, 2
  ret %a
}
)");
  Ctx C(*F);
  RegId A = F->findValue("a"), B = F->findValue("b");
  // b dies at a's definition: pinning them together is free.
  EXPECT_FALSE(C.P.variableKills(A, B));
}

TEST(VariableKills, Class2PhiCopyClobbersLiveOut) {
  // x is live out of the latch; the parallel copy for phi y at the latch
  // end would clobber it: y kills x.
  auto F = parse(R"(
func @f {
entry:
  input %p
  %x = addi %p, 5
  jump head
head:
  %y = phi [%p, entry], [%z, latch]
  %z = addi %y, 1
  %c = cmplt %z, %x
  branch %c, latch, done
latch:
  jump head
done:
  %r = add %x, %y
  ret %r
}
)");
  Ctx C(*F);
  RegId X = F->findValue("x"), Y = F->findValue("y");
  EXPECT_TRUE(C.P.variableKills(Y, X));
}

TEST(VariableKills, SelfKillLostCopy) {
  // y is live out of the latch (used after the loop): the latch copy
  // overwrites it — y kills itself, seeding Resource_killed.
  auto F = parse(R"(
func @f {
entry:
  input %p
  jump head
head:
  %y = phi [%p, entry], [%z, head]
  %z = addi %y, 1
  %c = cmplt %z, %p
  branch %c, head, done
done:
  ret %y
}
)");
  Ctx C(*F);
  RegId Y = F->findValue("y");
  EXPECT_TRUE(C.P.variableKills(Y, Y));
  EXPECT_TRUE(C.P.isKilled(Y));
}

//===----------------------------------------------------------------------===//
// Algorithm 4 variants
//===----------------------------------------------------------------------===//

TEST(VariableKills, OptimisticMissesBlockLocalKill) {
  // b's last use is inside a's block after a's def, but b is NOT
  // live-out: precise sees the kill, optimistic does not.
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %a = addi %p, 2
  %u = add %b, %a
  ret %u
}
)");
  RegId A, B;
  {
    Ctx Precise(*F);
    A = F->findValue("a");
    B = F->findValue("b");
    EXPECT_TRUE(Precise.P.variableKills(A, B));
  }
  {
    Ctx Optimistic(*F, InterferenceMode::Optimistic);
    EXPECT_FALSE(Optimistic.P.variableKills(A, B));
  }
}

TEST(VariableKills, PessimisticReportsSameBlockSpuriously) {
  // b dies exactly at a's def; pessimistic still reports a kill because
  // the defs share a block.
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %a = addi %b, 2
  ret %a
}
)");
  RegId A, B;
  {
    Ctx Precise(*F);
    A = F->findValue("a");
    B = F->findValue("b");
    EXPECT_FALSE(Precise.P.variableKills(A, B));
  }
  {
    Ctx Pess(*F, InterferenceMode::Pessimistic);
    EXPECT_TRUE(Pess.P.variableKills(A, B));
  }
}

//===----------------------------------------------------------------------===//
// Strong interference and Resource_interfere
//===----------------------------------------------------------------------===//

TEST(StrongInterference, SameBlockPhis) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %u = make 1
  jump j
e:
  %v = make 2
  jump j
j:
  %x = phi [%u, t], [%v, e]
  %y = phi [%v, t], [%u, e]
  %r = add %x, %y
  ret %r
}
)");
  Ctx C(*F);
  RegId X = F->findValue("x"), Y = F->findValue("y");
  EXPECT_TRUE(C.P.stronglyInterfere(X, Y));
  EXPECT_TRUE(C.P.resourceInterfere(X, Y));
}

TEST(StrongInterference, Case3SharedPredDifferentArgs) {
  // Two phis in different blocks, sharing predecessor "shared" with
  // different flowing values: strongly interfere.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %u = addi %a, 1
  %v = addi %a, 2
  branch %a, shared, other
shared:
  branch %v, j1, j2
other:
  jump j1
j1:
  %x = phi [%u, shared], [%u, other]
  jump j2
j2:
  %y = phi [%v, shared], [%x, j1]
  ret %y
}
)");
  Ctx C(*F);
  RegId X = F->findValue("x"), Y = F->findValue("y");
  EXPECT_TRUE(C.P.stronglyInterfere(X, Y));
}

TEST(StrongInterference, Case3SameArgsIsWeak) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  %u = addi %a, 1
  branch %a, shared, other
shared:
  branch %u, j1, j2
other:
  jump j1
j1:
  %x = phi [%u, shared], [%u, other]
  jump j2
j2:
  %y = phi [%u, shared], [%x, j1]
  ret %y
}
)");
  Ctx C(*F);
  RegId X = F->findValue("x"), Y = F->findValue("y");
  EXPECT_FALSE(C.P.stronglyInterfere(X, Y));
}

TEST(StrongInterference, SameInstructionDefs) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  Instruction Input(Opcode::Input);
  RegId X = F.makeVirtual("x"), Y = F.makeVirtual("y");
  Input.addDef(X);
  Input.addDef(Y);
  BB->append(std::move(Input));
  Instruction Ret(Opcode::Ret);
  Ret.addUse(X);
  BB->append(std::move(Ret));
  Ctx C(F);
  EXPECT_TRUE(C.P.stronglyInterfere(X, Y));
}

TEST(ResourceInterfere, DistinctPhysicalsAlwaysInterfere) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  Instruction Ret(Opcode::Ret);
  Ret.addUse(Target::R0);
  BB->append(std::move(Ret));
  Ctx C(F);
  EXPECT_TRUE(C.P.resourceInterfere(Target::R0, Target::R1));
  EXPECT_FALSE(C.P.resourceInterfere(Target::R0, Target::R0));
}

TEST(ResourceInterfere, KilledMembersAreForgiven) {
  // Once a member is already killed inside its class, an additional
  // killer in the other class does not constitute a NEW interference.
  auto F = parse(R"(
func @f {
entry:
  input %p
  %b = addi %p, 1
  %k1^w = addi %p, 2
  %k2^w = addi %p, 3
  %u = add %b, %k1
  %u2 = add %u, %k2
  %a = addi %p, 4
  %r = add %u2, %b
  %r2 = add %r, %a
  ret %r2
}
)");
  Ctx C(*F);
  RegId B = F->findValue("b");
  RegId K1 = F->findValue("k1");
  RegId A = F->findValue("a");
  // k1 is killed inside its own class (k2 redefines w while k1 lives);
  // the mandatory pin records it in Resource_killed.
  EXPECT_TRUE(C.P.isKilled(K1));
  // b is live across a's def: classes {b} and {a} interfere.
  EXPECT_TRUE(C.P.resourceInterfere(A, B));
}

TEST(ResourceInterfere, MergeUnionsMembersAndKilled) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %x = addi %p, 1
  %y = addi %p, 2
  %z = add %x, %y
  ret %z
}
)");
  Ctx C(*F);
  RegId X = F->findValue("x"), Y = F->findValue("y");
  RegId Z = F->findValue("z");
  RegId Rep = C.P.pinTogether(X, Z);
  EXPECT_EQ(C.P.resourceOf(X), C.P.resourceOf(Z));
  EXPECT_EQ(C.P.members(Rep).size(), 2u);
  // Mandatory merge of interfering x and y records the kill.
  EXPECT_TRUE(C.P.variableKills(Y, X));
  C.P.pinTogether(X, Y);
  EXPECT_TRUE(C.P.isKilled(X));
}

TEST(ResourceInterfere, PhysicalKeepsRepresentative) {
  auto F = parse(R"(
func @f {
entry:
  input %p
  %x = addi %p, 1
  ret %x
}
)");
  Ctx C(*F);
  RegId X = F->findValue("x");
  RegId Rep = C.P.pinTogether(X, Target::R5);
  EXPECT_EQ(Rep, static_cast<RegId>(Target::R5));
  EXPECT_TRUE(C.P.hasPhysical(X));
}

TEST(ResourceInterfere, ABIClassesBuiltFromPins) {
  auto F = makeFigure1();
  Ctx C(*F);
  // C's definition is pinned to R0 by the figure.
  RegId CVar = F->findValue("C");
  EXPECT_EQ(C.P.resourceOf(CVar), static_cast<RegId>(Target::R0));
  RegId D = F->findValue("D");
  EXPECT_EQ(C.P.resourceOf(D), static_cast<RegId>(Target::R0));
  // K and L are tied by the more pin.
  RegId K = F->findValue("K"), L = F->findValue("L");
  (void)L;
  EXPECT_EQ(C.P.resourceOf(K), C.P.resourceOf(F->findValue("K")));
}
