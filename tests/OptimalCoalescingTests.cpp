//===- OptimalCoalescingTests.cpp - Heuristic vs exact gain -----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Measures the paper's greedy weighted pruning against the exact
// (exponential) block-local optimum. The paper's conclusion that "a
// global optimization scheme would bring very little improvement over
// our local approach" predicts a tiny gap; these tests pin that down.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/OptimalCoalescing.h"
#include "outofssa/PhiCoalescing.h"
#include "workloads/Generator.h"
#include "workloads/PaperExamples.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

struct GainPair {
  unsigned Optimal = 0;
  unsigned Achieved = 0;
  bool Exact = true;
};

/// Computes the exact block-local optimum and the heuristic's achieved
/// gain (new resource-equal phi operand pairs) on the same function.
GainPair measure(Function &F) {
  splitCriticalEdges(F);
  collectSPConstraints(F);
  collectABIConstraints(F);

  GainPair Result;
  {
    CFG Cfg(F);
    DominatorTree DT(Cfg);
    LivenessQuery LV(Cfg, DT);
    PinningContext Ctx(F, Cfg, DT, LV);
    OptimalGainResult Opt = optimalPhiGain(F, Ctx, Cfg);
    Result.Optimal = Opt.TotalGain;
    Result.Exact = Opt.Exact;
  }
  {
    CFG Cfg(F);
    DominatorTree DT(Cfg);
    LivenessQuery LV(Cfg, DT);
    LoopInfo LI(Cfg, DT);
    PinningContext Ctx(F, Cfg, DT, LV);
    // Pre-existing equal pairs do not count as achieved gain.
    unsigned PreGain = 0;
    for (const auto &BB : F.blocks())
      for (const Instruction &I : BB->instructions()) {
        if (!I.isPhi())
          break;
        for (unsigned K = 0; K < I.numUses(); ++K)
          PreGain += Ctx.resourceOf(I.use(K)) == Ctx.resourceOf(I.def(0));
      }
    // Compare the paper's literal algorithm: merge into physical
    // classes on any affinity (our default defers weak ones for the
    // benefit of the downstream coalescer, deliberately trading
    // block-local gain).
    PhiCoalescingOptions Opts;
    Opts.PhysMergeMinMult = 1;
    PhiCoalescingStats Stats = coalescePhis(F, Ctx, Cfg, LI, Opts);
    Result.Achieved = Stats.TotalGain - PreGain;
  }
  return Result;
}

} // namespace

TEST(OptimalCoalescing, Figure5OptimumIsOne) {
  auto F = makeFigure5();
  GainPair G = measure(*F);
  EXPECT_TRUE(G.Exact);
  EXPECT_EQ(G.Optimal, 1u) << "x1 and x2 interfere: only one can join x";
  EXPECT_EQ(G.Achieved, 1u) << "the heuristic reaches the optimum";
}

TEST(OptimalCoalescing, Figure9OptimumIsThree) {
  auto F = makeFigure9();
  GainPair G = measure(*F);
  EXPECT_TRUE(G.Exact);
  EXPECT_EQ(G.Optimal, 3u)
      << "of the four affinity pairs only the X/Y conflict over y costs";
  EXPECT_EQ(G.Achieved, G.Optimal);
}

TEST(OptimalCoalescing, HeuristicMatchesOptimumOnFigures) {
  for (auto Make : {makeFigure1, makeFigure3, makeFigure7, makeFigure10,
                    makeFigure11, makeFigure12}) {
    auto F = Make();
    GainPair G = measure(*F);
    SCOPED_TRACE(F->name());
    EXPECT_TRUE(G.Exact);
    EXPECT_EQ(G.Achieved, G.Optimal);
  }
}

TEST(OptimalCoalescing, HeuristicGapIsSmallOnRandomPrograms) {
  // The paper's claim quantified: across a population of generated
  // programs, the greedy pruning achieves nearly the exact block-local
  // optimum. (The heuristic intentionally defers weak-affinity merges
  // into physical classes, so a small per-function gap is expected.)
  unsigned SumOptimal = 0, SumAchieved = 0, Evaluated = 0;
  for (uint64_t Seed = 1100; Seed < 1130; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 20;
    P.MaxNesting = 2;
    auto F = generateProgram(P, "opt" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    GainPair G = measure(*F);
    if (!G.Exact)
      continue;
    ++Evaluated;
    SumOptimal += G.Optimal;
    SumAchieved += G.Achieved;
    EXPECT_LE(G.Achieved, G.Optimal + 1)
        << "seed " << Seed
        << ": achieved gain above the block-local optimum suggests an "
           "interference-model mismatch";
  }
  ASSERT_GT(Evaluated, 20u);
  EXPECT_GE(SumAchieved * 100, SumOptimal * 90)
      << "heuristic achieves >= 90% of the exact block-local optimum "
         "in aggregate (" << SumAchieved << "/" << SumOptimal << ")";
}
