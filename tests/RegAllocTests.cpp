//===- RegAllocTests.cpp - Register allocation tests ------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

/// Full pipeline to machine code: out-of-SSA then allocation.
RegAllocResult lowerAndAllocate(Function &F, unsigned NumRegs = 12,
                                const char *Preset = "Lphi,ABI+C") {
  runPipeline(F, pipelinePreset(Preset));
  RegAllocOptions Opts;
  Opts.NumRegs = NumRegs;
  return allocateRegisters(F, Opts);
}

} // namespace

TEST(RegAlloc, StraightLineNeedsNoSpills) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = add %a, %b
  %y = mul %x, %a
  %z = sub %y, %b
  ret %z
}
)");
  auto Before = cloneFunction(*F);
  RegAllocResult R = allocateRegisters(*F);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumSpilled, 0u);
  EXPECT_TRUE(collectVirtualRegs(*F).empty());
  expectEquivalent(*Before, *F, {6, 7});
}

TEST(RegAlloc, RespectsPrecoloredInterference) {
  // v lives across a call that clobbers R0: v must not get R0.
  auto F = parse(R"(
func @f {
entry:
  input %a
  %v = addi %a, 1
  %R0 = mov %a
  %R0 = call @f(%R0)
  %w = add %v, %R0
  ret %w
}
)");
  auto Before = cloneFunction(*F);
  RegAllocResult R = allocateRegisters(*F);
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEquivalent(*Before, *F, {5});
}

TEST(RegAlloc, PressureForcesSpills) {
  // Nine simultaneously live values in a 4-register machine.
  std::string Text = "func @f {\nentry:\n  input %a\n";
  for (int K = 0; K < 9; ++K)
    Text += "  %v" + std::to_string(K) + " = addi %a, " +
            std::to_string(K) + "\n";
  Text += "  %s0 = add %v0, %v1\n";
  for (int K = 2; K < 9; ++K)
    Text += "  %s" + std::to_string(K - 1) + " = add %s" +
            std::to_string(K - 2) + ", %v" + std::to_string(K) + "\n";
  Text += "  ret %s7\n}\n";
  auto F = parse(Text);
  auto Before = cloneFunction(*F);
  RegAllocOptions Opts;
  Opts.NumRegs = 4;
  RegAllocResult R = allocateRegisters(*F, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.NumSpilled, 0u);
  EXPECT_GT(R.NumSpillLoads, 0u);
  EXPECT_GT(R.FrameBytes, 0u);
  EXPECT_LE(R.NumRegsUsed, 4u);
  EXPECT_TRUE(collectVirtualRegs(*F).empty());
  expectEquivalent(*Before, *F, {10});
}

TEST(RegAlloc, LoopCarriedValuesSurviveSpilling) {
  auto F = parse(R"(
func @f {
entry:
  input %n
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  branch %c, body, done
body:
  %acc = add %acc, %i
  %i = addi %i, 1
  jump head
done:
  ret %acc
}
)");
  auto Before = cloneFunction(*F);
  RegAllocOptions Opts;
  Opts.NumRegs = 2;
  RegAllocResult R = allocateRegisters(*F, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEquivalent(*Before, *F, {5});
  expectEquivalent(*Before, *F, {0});
}

TEST(RegAlloc, TooFewRegistersFailsCleanly) {
  // A three-operand instruction cannot live in one register.
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = add %a, %b
  ret %x
}
)");
  RegAllocOptions Opts;
  Opts.NumRegs = 1;
  RegAllocResult R = allocateRegisters(*F, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(RegAlloc, BoundedRoundsFailCleanly) {
  // Ten simultaneously live values in a 2-register machine need several
  // spill rounds; with MaxRounds=1 the allocator must give up after the
  // single permitted round with a structured error naming the cap —
  // never hang or crash. The same input converges under the default cap.
  std::string Text = "func @f {\nentry:\n  input %a\n";
  for (int K = 0; K < 10; ++K)
    Text += "  %v" + std::to_string(K) + " = addi %a, " +
            std::to_string(K) + "\n";
  Text += "  %s0 = add %v0, %v1\n";
  for (int K = 2; K < 10; ++K)
    Text += "  %s" + std::to_string(K - 1) + " = add %s" +
            std::to_string(K - 2) + ", %v" + std::to_string(K) + "\n";
  Text += "  ret %s8\n}\n";

  auto Capped = parse(Text);
  RegAllocOptions Opts;
  Opts.NumRegs = 2;
  Opts.MaxRounds = 1;
  RegAllocResult R = allocateRegisters(*Capped, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.NumRounds, 1u);
  EXPECT_NE(R.Error.find("did not converge after 1 spill rounds"),
            std::string::npos)
      << R.Error;

  // MaxRounds=0 is normalized to one round, not an instant failure
  // with zero attempts.
  auto Zero = parse(Text);
  Opts.MaxRounds = 0;
  R = allocateRegisters(*Zero, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.NumRounds, 1u);

  auto Free = parse(Text);
  auto Before = cloneFunction(*Free);
  Opts.MaxRounds = 32;
  R = allocateRegisters(*Free, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.NumRounds, 1u);
  EXPECT_TRUE(collectVirtualRegs(*Free).empty());
  expectEquivalent(*Before, *Free, {3});
}

TEST(RegAlloc, AfterFullPipelineOnFigures) {
  for (const Workload &W : makeExamplesSuite()) {
    auto F = cloneFunction(*W.F);
    RegAllocResult R = lowerAndAllocate(*F);
    ASSERT_TRUE(R.Ok) << W.Name << ": " << R.Error;
    EXPECT_TRUE(collectVirtualRegs(*F).empty()) << W.Name;
    for (const auto &Args : W.Inputs) {
      SCOPED_TRACE(W.Name);
      expectEquivalent(*W.F, *F, Args);
    }
  }
}

TEST(RegAlloc, GeneratedProgramsUnderPressure) {
  for (uint64_t Seed = 900; Seed < 910; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 24;
    P.MaxNesting = 2;
    P.UseSP = Seed % 2 == 0;
    auto F = generateProgram(P, "ra" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    auto Before = cloneFunction(*F);
    auto Machine = cloneFunction(*F);
    RegAllocResult R =
        lowerAndAllocate(*Machine, /*NumRegs=*/Seed % 3 == 0 ? 6 : 12);
    ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
    EXPECT_TRUE(collectVirtualRegs(*Machine).empty());
    expectEquivalent(*Before, *Machine, {Seed, Seed + 1});
  }
}

TEST(RegAlloc, CoalescingReducesPressureOnAverage) {
  // The paper's [LIM4] observation made measurable: compare spill counts
  // of the pinned pipeline vs the naive one under pressure. Aggregate
  // over a suite so individual flukes wash out; the pinned pipeline must
  // not be substantially worse.
  auto Suite = makeValccSuite(1);
  unsigned PinnedSpills = 0, NaiveSpills = 0;
  for (const Workload &W : Suite) {
    auto A = cloneFunction(*W.F);
    runPipeline(*A, pipelinePreset("Lphi,ABI+C"));
    RegAllocOptions Opts;
    Opts.NumRegs = 6;
    RegAllocResult RA = allocateRegisters(*A, Opts);
    auto B = cloneFunction(*W.F);
    runPipeline(*B, pipelinePreset("C,naiveABI+C"));
    RegAllocResult RB = allocateRegisters(*B, Opts);
    if (RA.Ok && RB.Ok) {
      PinnedSpills += RA.NumSpilled;
      NaiveSpills += RB.NumSpilled;
    }
  }
  EXPECT_LE(PinnedSpills, NaiveSpills + NaiveSpills / 4)
      << "pinning-based coalescing should not blow up register pressure";
}
