//===- StressTests.cpp - Large-scale and adversarial runs -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/MoveStats.h"
#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "ssa/IfConversion.h"
#include "ssa/SSAVerifier.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(Stress, VeryLargeFunctionThroughFullPipeline) {
  GeneratorParams P;
  P.Seed = 424242;
  P.NumStatements = 400;
  P.MaxNesting = 4;
  P.NumParams = 4;
  P.UseSP = true;
  P.UsePsi = true;
  auto F = generateProgram(P, "huge");
  normalizeToOptimizedSSA(*F);
  EXPECT_TRUE(verifySSA(*F).empty());

  auto Translated = cloneFunction(*F);
  PipelineResult R = runPipeline(*Translated, pipelinePreset("Lphi,ABI+C"));
  EXPECT_GT(R.Translate.NumPhisRemoved, 20u)
      << "a 400-statement nest should carry a real phi population";
  expectWellFormed(*Translated);
  expectEquivalent(*F, *Translated, {1, 2, 3, 4});
}

TEST(Stress, DeepLoopNestWeights) {
  // Depth-4 nests exercise the 5^d weighting without overflow and the
  // inner-to-outer traversal ordering.
  GeneratorParams P;
  P.Seed = 515151;
  P.NumStatements = 60;
  P.MaxNesting = 4;
  auto F = generateProgram(P, "deep");
  normalizeToOptimizedSSA(*F);
  auto Translated = cloneFunction(*F);
  PipelineResult R = runPipeline(*Translated, pipelinePreset("Lphi,ABI"));
  EXPECT_GE(R.WeightedMoves, R.NumMoves);
  expectEquivalent(*F, *Translated, {9, 8});
}

TEST(Stress, RepeatedPipelineRunsAreIndependent) {
  // Running the pipeline on clones must not leak state across runs.
  GeneratorParams P;
  P.Seed = 606060;
  P.NumStatements = 40;
  auto F = generateProgram(P, "indep");
  normalizeToOptimizedSSA(*F);
  std::string FirstOutput;
  for (int K = 0; K < 3; ++K) {
    auto C = cloneFunction(*F);
    runPipeline(*C, pipelinePreset("Lphi,ABI+C"));
    std::string Out = printFunction(*C);
    if (K == 0)
      FirstOutput = Out;
    else
      EXPECT_EQ(Out, FirstOutput);
  }
}

TEST(Stress, IfConvertThenPipelineThenAllocate) {
  // The full extended stack: predication, out-of-SSA, allocation.
  for (uint64_t Seed : {777001u, 777002u, 777003u}) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 50;
    P.MaxNesting = 3;
    auto F = generateProgram(P, "stack" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    convertIfsToPsi(*F);
    ASSERT_TRUE(verifySSA(*F).empty());
    auto Machine = cloneFunction(*F);
    runPipeline(*Machine, pipelinePreset("Lphi,ABI+C"));
    RegAllocOptions Opts;
    Opts.NumRegs = 8;
    RegAllocResult R = allocateRegisters(*Machine, Opts);
    ASSERT_TRUE(R.Ok) << R.Error;
    expectEquivalent(*F, *Machine, {Seed, 3});
  }
}

TEST(Stress, AllPresetsOnLargeSuiteSample) {
  auto Suite = makeLargeSuite();
  ASSERT_GE(Suite.size(), 3u);
  static const char *const Presets[] = {"Lphi,ABI+C", "LABI+C",
                                        "C,naiveABI+C", "Lphi+C", "C"};
  for (size_t K = 0; K < 3; ++K) {
    const Workload &W = Suite[K];
    for (const char *Preset : Presets) {
      auto F = cloneFunction(*W.F);
      runPipeline(*F, pipelinePreset(Preset));
      SCOPED_TRACE(std::string(W.Name) + "/" + Preset);
      expectEquivalent(*W.F, *F, W.Inputs[0]);
    }
  }
}

TEST(Stress, MoveCountMonotonicUnderCoalescer) {
  // +C can only remove moves, never add them.
  auto Suite = makeValccSuite(2);
  for (size_t K = 0; K < 10 && K < Suite.size(); ++K) {
    auto A = cloneFunction(*Suite[K].F);
    PipelineResult R = runPipeline(*A, pipelinePreset("Lphi,ABI+C"));
    EXPECT_LE(R.NumMoves, R.MovesBeforeCoalesce) << Suite[K].Name;
  }
}
