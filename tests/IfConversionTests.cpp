//===- IfConversionTests.cpp - Predication (psi-SSA) tests ------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/Pipeline.h"
#include "ssa/IfConversion.h"
#include "ssa/SSAVerifier.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

unsigned countPsis(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      N += I.op() == Opcode::Psi;
  return N;
}

} // namespace

TEST(IfConversion, ConvertsSimpleDiamond) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, t, e
t:
  %x1 = addi %a, 10
  jump j
e:
  %x2 = addi %b, 20
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  output %x
  ret %x
}
)");
  auto Before = cloneFunction(*F);
  IfConversionStats Stats = convertIfsToPsi(*F);
  EXPECT_EQ(Stats.NumDiamondsConverted, 1u);
  EXPECT_EQ(Stats.NumPsisCreated, 1u);
  EXPECT_EQ(countPsis(*F), 1u);
  expectWellFormed(*F);
  EXPECT_TRUE(verifySSA(*F).empty());
  expectEquivalent(*Before, *F, {1, 2});
  expectEquivalent(*Before, *F, {2, 1});
}

TEST(IfConversion, ConvertsTriangle) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, t, j
t:
  %x1 = mul %a, %b
  jump j
j:
  %x = phi [%x1, t], [%a, entry]
  ret %x
}
)");
  auto Before = cloneFunction(*F);
  IfConversionStats Stats = convertIfsToPsi(*F);
  EXPECT_EQ(Stats.NumTrianglesConverted, 1u);
  EXPECT_EQ(countPsis(*F), 1u);
  EXPECT_TRUE(verifySSA(*F).empty());
  expectEquivalent(*Before, *F, {3, 9});
  expectEquivalent(*Before, *F, {9, 3});
}

TEST(IfConversion, MultiplePhisBecomeMultiplePsis) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %c = cmpeq %a, %b
  branch %c, t, e
t:
  %x1 = addi %a, 1
  %y1 = addi %a, 2
  jump j
e:
  %x2 = addi %b, 3
  %y2 = addi %b, 4
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  %y = phi [%y1, t], [%y2, e]
  %s = add %x, %y
  ret %s
}
)");
  auto Before = cloneFunction(*F);
  IfConversionStats Stats = convertIfsToPsi(*F);
  EXPECT_EQ(Stats.NumPsisCreated, 2u);
  expectEquivalent(*Before, *F, {5, 5});
  expectEquivalent(*Before, *F, {5, 6});
}

TEST(IfConversion, RefusesSideEffectingArms) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %p
  %c = cmplt %a, %p
  branch %c, t, e
t:
  %x1 = call @f(%a)
  jump j
e:
  %x2 = addi %a, 1
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  ret %x
}
)");
  IfConversionStats Stats = convertIfsToPsi(*F);
  EXPECT_EQ(Stats.NumDiamondsConverted, 0u);
  EXPECT_EQ(countPsis(*F), 0u);
}

TEST(IfConversion, RefusesLongArms) {
  std::string Text = R"(
func @f {
entry:
  input %a, %b
  %c = cmplt %a, %b
  branch %c, t, e
t:
)";
  for (int K = 0; K < 8; ++K)
    Text += "  %t" + std::to_string(K) + " = addi %a, " +
            std::to_string(K) + "\n";
  Text += R"(  jump j
e:
  %x2 = addi %b, 1
  jump j
j:
  %x = phi [%t7, t], [%x2, e]
  ret %x
}
)";
  auto F = parse(Text);
  EXPECT_EQ(convertIfsToPsi(*F, /*MaxArmInsts=*/4).NumDiamondsConverted,
            0u);
  EXPECT_EQ(convertIfsToPsi(*F, /*MaxArmInsts=*/8).NumDiamondsConverted,
            1u);
}

TEST(IfConversion, NestedDiamondsConverge) {
  // Inner diamond converts first, making the outer one convertible
  // (psi is itself speculation-safe).
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %c0 = cmplt %a, %b
  branch %c0, t0, e0
t0:
  %c1 = cmpeq %a, %b
  branch %c1, t1, e1
t1:
  %u1 = addi %a, 1
  jump j1
e1:
  %u2 = addi %a, 2
  jump j1
j1:
  %u = phi [%u1, t1], [%u2, e1]
  jump j0
e0:
  %v = addi %b, 3
  jump j0
j0:
  %x = phi [%u, j1], [%v, e0]
  ret %x
}
)");
  auto Before = cloneFunction(*F);
  IfConversionStats Stats = convertIfsToPsi(*F, /*MaxArmInsts=*/6);
  EXPECT_EQ(Stats.NumPsisCreated, 2u);
  EXPECT_EQ(countPsis(*F), 2u);
  expectEquivalent(*Before, *F, {4, 4});
  expectEquivalent(*Before, *F, {4, 5});
  expectEquivalent(*Before, *F, {5, 4});
}

TEST(IfConversion, ConvertedCodeSurvivesFullPipeline) {
  // If-converted (psi-carrying) programs must translate out of SSA with
  // the psi renaming constraint and stay equivalent.
  for (uint64_t Seed = 1200; Seed < 1212; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 20;
    P.MaxNesting = 2;
    auto F = generateProgram(P, "ifc" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    IfConversionStats Stats = convertIfsToPsi(*F);
    (void)Stats;
    expectWellFormed(*F);
    for (const auto &D : verifySSA(*F))
      FAIL() << "seed " << Seed << ": " << D;
    auto Before = cloneFunction(*F);
    auto Translated = cloneFunction(*F);
    runPipeline(*Translated, pipelinePreset("Lphi,ABI+C"));
    expectEquivalent(*Before, *Translated, {Seed, Seed % 7});
  }
}

TEST(IfConversion, ConversionIncreasesPsiConstraintCoverage) {
  // Statistical sanity: over a batch of generated programs, conversion
  // produces a meaningful number of psis.
  unsigned TotalPsis = 0;
  for (uint64_t Seed = 1300; Seed < 1320; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.NumStatements = 24;
    P.MaxNesting = 2;
    auto F = generateProgram(P, "cov" + std::to_string(Seed));
    normalizeToOptimizedSSA(*F);
    TotalPsis += convertIfsToPsi(*F).NumPsisCreated;
  }
  EXPECT_GE(TotalPsis, 5u);
}
