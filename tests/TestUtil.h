//===- TestUtil.h - Shared test helpers -------------------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef LAO_TESTS_TESTUTIL_H
#define LAO_TESTS_TESTUTIL_H

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace lao {
namespace test {

/// Parses \p Text, failing the test on parse errors.
inline std::unique_ptr<Function> parse(const std::string &Text) {
  std::string Error;
  auto F = parseFunction(Text, &Error);
  EXPECT_TRUE(F != nullptr) << "parse error: " << Error;
  return F;
}

/// Expects \p F to be structurally well-formed.
inline void expectWellFormed(const Function &F) {
  for (const std::string &D : verifyStructure(F))
    ADD_FAILURE() << F.name() << ": " << D;
}

/// Runs \p Before and \p After on the same inputs and expects identical
/// observable traces.
inline void expectEquivalent(const Function &Before, const Function &After,
                             const std::vector<uint64_t> &Args) {
  ExecResult RB = interpret(Before, Args);
  ExecResult RA = interpret(After, Args);
  ASSERT_TRUE(RB.ok()) << Before.name() << " (before): " << RB.Error;
  ASSERT_TRUE(RA.ok()) << After.name() << " (after): " << RA.Error
                     << "\n--- after code ---\n"
                     << printFunction(After);
  EXPECT_EQ(RB.RetValue, RA.RetValue)
      << "return values differ\n--- before ---\n"
      << printFunction(Before) << "--- after ---\n" << printFunction(After);
  EXPECT_EQ(RB.Outputs, RA.Outputs)
      << "output traces differ\n--- before ---\n"
      << printFunction(Before) << "--- after ---\n" << printFunction(After);
}

} // namespace test
} // namespace lao

#endif // LAO_TESTS_TESTUTIL_H
