//===- SupportTests.cpp - UnionFind/BitVector/Rng/String tests --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/BitVector.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

using namespace lao;

TEST(UnionFind, SingletonsAreTheirOwnRoots) {
  UnionFind UF(5);
  for (uint32_t I = 0; I < 5; ++I)
    EXPECT_EQ(UF.find(I), I);
}

TEST(UnionFind, MergeJoinsSets) {
  UnionFind UF(6);
  UF.merge(0, 1);
  UF.merge(2, 3);
  EXPECT_TRUE(UF.sameSet(0, 1));
  EXPECT_TRUE(UF.sameSet(2, 3));
  EXPECT_FALSE(UF.sameSet(1, 2));
  UF.merge(1, 2);
  EXPECT_TRUE(UF.sameSet(0, 3));
  EXPECT_FALSE(UF.sameSet(0, 4));
}

TEST(UnionFind, PreferAKeepsRepresentative) {
  UnionFind UF(10);
  // Grow set 5 large so size-based union would prefer it.
  for (uint32_t I = 6; I < 10; ++I)
    UF.merge(5, I);
  uint32_t Rep = UF.merge(0, 5, /*PreferA=*/true);
  EXPECT_EQ(Rep, 0u);
  EXPECT_EQ(UF.find(7), 0u);
}

TEST(UnionFind, GrowPreservesExistingSets) {
  UnionFind UF(3);
  UF.merge(0, 2);
  UF.grow(8);
  EXPECT_TRUE(UF.sameSet(0, 2));
  EXPECT_EQ(UF.find(7), 7u);
}

TEST(UnionFind, MergeIsIdempotent) {
  UnionFind UF(4);
  uint32_t R1 = UF.merge(1, 2);
  uint32_t R2 = UF.merge(1, 2);
  EXPECT_EQ(R1, R2);
}

TEST(BitVector, SetTestReset) {
  BitVector BV(130);
  EXPECT_FALSE(BV.test(0));
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(65));
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVector, OrWithReportsChange) {
  BitVector A(70), B(70);
  B.set(3);
  B.set(69);
  EXPECT_TRUE(A.orWith(B));
  EXPECT_FALSE(A.orWith(B)); // Second or changes nothing.
  EXPECT_TRUE(A.test(3));
  EXPECT_TRUE(A.test(69));
}

TEST(BitVector, SubtractAndAnyCommon) {
  BitVector A(64), B(64);
  A.set(1);
  A.set(2);
  B.set(2);
  EXPECT_TRUE(A.anyCommon(B));
  A.subtract(B);
  EXPECT_FALSE(A.anyCommon(B));
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
}

TEST(BitVector, ForEachVisitsAscending) {
  BitVector BV(200);
  std::vector<size_t> Expected = {0, 63, 64, 127, 199};
  for (size_t I : Expected)
    BV.set(I);
  std::vector<size_t> Seen;
  BV.forEach([&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, Expected);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector A(10), B(11);
  EXPECT_FALSE(A == B);
  BitVector C(10);
  EXPECT_TRUE(A == C);
  C.set(3);
  EXPECT_FALSE(A == C);
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, RangeIsInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all values of a small range should occur";
}

TEST(StringUtils, FormatStr) {
  EXPECT_EQ(formatStr("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatStr("empty"), "empty");
}

TEST(StringUtils, SplitDropsEmptyPieces) {
  auto Parts = splitString("a,,b,c,", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("z"), "z");
}

TEST(ThreadPool, AsyncExceptionRethrownFromWait) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.async([] { throw std::runtime_error("task boom"); });
  Pool.async([&] { ++Ran; });
  try {
    Pool.wait();
    FAIL() << "wait() should rethrow the task's exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "task boom");
  }
  EXPECT_EQ(Ran.load(), 1) << "a throwing task must not kill its sibling";
  // The pool survives the exception: it still runs work, and a wait()
  // with no new failure returns normally.
  Pool.async([&] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 2);
}

TEST(ThreadPool, CapturedExceptionIsConsumedByOneWait) {
  ThreadPool Pool(2);
  Pool.async([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The captured pointer was handed out exactly once; an idle wait()
  // afterwards is clean.
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPool, ParallelForExceptionRethrownAtCallSite) {
  ThreadPool Pool(4);
  std::atomic<size_t> Done{0};
  try {
    Pool.parallelFor(64, [&](size_t K) {
      if (K == 7)
        throw std::logic_error("item boom");
      ++Done;
    });
    FAIL() << "parallelFor should rethrow the item's exception";
  } catch (const std::logic_error &E) {
    EXPECT_STREQ(E.what(), "item boom");
  }
  // The abort flag stops claiming new items, so not all 63 others need
  // to have run; the pool itself stays usable.
  EXPECT_LE(Done.load(), 63u);
  std::atomic<size_t> Count{0};
  Pool.parallelFor(32, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 32u);
}

TEST(ArenaRecycler, BoundRecyclerCapturesAndReissuesChunks) {
  ArenaRecycler R;
  EXPECT_EQ(ArenaRecycler::active(), nullptr);
  {
    ArenaRecycler::Bind B(R);
    ASSERT_EQ(ArenaRecycler::active(), &R);
    { // Destroying an arena while bound parks its standard chunks.
      Arena A;
      A.alloc(1024, 8);
      EXPECT_EQ(A.stats().NumChunks, 1u);
    }
    EXPECT_EQ(R.numChunks(), 1u);
    EXPECT_EQ(R.reuseBytes(), 0u) << "parking a chunk is not a reuse";
    { // The next arena on this thread draws from the recycler.
      Arena A;
      A.alloc(1024, 8);
      EXPECT_EQ(R.numChunks(), 0u);
      EXPECT_EQ(R.reuseBytes(), Arena::ChunkBytes);
    }
    EXPECT_EQ(R.numChunks(), 1u) << "the reissued chunk parks again";
  }
  EXPECT_EQ(ArenaRecycler::active(), nullptr);
  EXPECT_EQ(R.takeReuseBytes(), Arena::ChunkBytes);
  EXPECT_EQ(R.takeReuseBytes(), 0u) << "takeReuseBytes drains the tally";
}

TEST(ArenaRecycler, BindShadowsAndRestoresLikeAScope) {
  ArenaRecycler Outer, Inner;
  ArenaRecycler::Bind B1(Outer);
  {
    ArenaRecycler::Bind B2(Inner);
    EXPECT_EQ(ArenaRecycler::active(), &Inner);
  }
  EXPECT_EQ(ArenaRecycler::active(), &Outer);
}

TEST(ArenaRecycler, OverflowSpillsToTheGlobalCacheNotTheFloor) {
  ArenaRecycler R(/*MaxChunks=*/1);
  ArenaRecycler::Bind B(R);
  {
    Arena A;
    // Force two standard chunks (oversized requests get dedicated
    // chunks that are never recycled, so stay under ChunkBytes).
    A.alloc(Arena::ChunkBytes / 2, 8);
    A.alloc(Arena::ChunkBytes / 2, 8);
    A.alloc(Arena::ChunkBytes / 2, 8);
    EXPECT_GE(A.stats().NumChunks, 2u);
  }
  // Only one fits in the recycler; the rest went to the global cache
  // (ownership transferred either way — ASan would catch a leak here).
  EXPECT_EQ(R.numChunks(), 1u);
}
