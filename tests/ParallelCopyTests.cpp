//===- ParallelCopyTests.cpp - Sequentialization tests ----------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Properties of sequentializeParallelCopies: semantics preservation for
// arbitrary permutations and duplicated sources (checked against the
// interpreter's parallel ParCopy semantics), identity elimination, and
// cycle breaking with a single temporary (the swap problem).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRBuilder.h"
#include "outofssa/LeungGeorge.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

unsigned countMovs(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      N += I.isCopy();
  return N;
}

/// Builds a function performing one ParCopy over N variables described
/// by \p SrcOf (dst index -> src index), then outputs all destinations.
std::unique_ptr<Function> makeParCopyFunction(
    const std::vector<unsigned> &SrcOf) {
  auto F = std::make_unique<Function>("pc");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  std::vector<RegId> Vars;
  Instruction Input(Opcode::Input);
  for (unsigned K = 0; K < SrcOf.size(); ++K) {
    RegId V = F->makeVirtual("v" + std::to_string(K));
    Input.addDef(V);
    Vars.push_back(V);
  }
  BB->append(std::move(Input));
  Instruction Par(Opcode::ParCopy);
  for (unsigned K = 0; K < SrcOf.size(); ++K) {
    Par.addDef(Vars[K]);
    Par.addUse(Vars[SrcOf[K]]);
  }
  BB->append(std::move(Par));
  for (RegId V : Vars)
    B.output(V);
  B.ret(Vars[0]);
  return F;
}

std::vector<uint64_t> argsFor(size_t N) {
  std::vector<uint64_t> Args;
  for (size_t K = 0; K < N; ++K)
    Args.push_back(100 + K);
  return Args;
}

} // namespace

TEST(ParallelCopy, SimpleShiftChain) {
  // v0 <- v1 <- v2: no cycle, two moves, no temp.
  auto F = makeParCopyFunction({1, 2, 2});
  auto Before = interpret(*F, argsFor(3));
  size_t ValuesBefore = F->numValues();
  unsigned Moves = sequentializeParallelCopies(*F);
  EXPECT_EQ(Moves, 2u);
  EXPECT_EQ(F->numValues(), ValuesBefore) << "no temp needed";
  auto After = interpret(*F, argsFor(3));
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(ParallelCopy, SwapNeedsOneTemp) {
  auto F = makeParCopyFunction({1, 0});
  auto Before = interpret(*F, argsFor(2));
  size_t ValuesBefore = F->numValues();
  unsigned Moves = sequentializeParallelCopies(*F);
  EXPECT_EQ(Moves, 3u) << "a 2-cycle costs three moves";
  EXPECT_EQ(F->numValues(), ValuesBefore + 1) << "exactly one temp";
  auto After = interpret(*F, argsFor(2));
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(ParallelCopy, ThreeCycle) {
  auto F = makeParCopyFunction({1, 2, 0});
  auto Before = interpret(*F, argsFor(3));
  unsigned Moves = sequentializeParallelCopies(*F);
  EXPECT_EQ(Moves, 4u) << "a 3-cycle costs four moves";
  auto After = interpret(*F, argsFor(3));
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(ParallelCopy, IdentitiesAreDropped) {
  auto F = makeParCopyFunction({0, 1, 2});
  unsigned Moves = sequentializeParallelCopies(*F);
  EXPECT_EQ(Moves, 0u);
  EXPECT_EQ(countMovs(*F), 0u);
}

TEST(ParallelCopy, DuplicatedSourceFanOut) {
  // v0, v1, v2 all read v2: fan-out plus one chain.
  auto F = makeParCopyFunction({2, 2, 2});
  auto Before = interpret(*F, argsFor(3));
  unsigned Moves = sequentializeParallelCopies(*F);
  EXPECT_EQ(Moves, 2u);
  auto After = interpret(*F, argsFor(3));
  EXPECT_TRUE(Before.sameObservable(After));
}

/// Property sweep: random permutations-with-repetition of varying size
/// must all be sequentialized correctly.
class ParallelCopySweep : public testing::TestWithParam<uint64_t> {};

TEST_P(ParallelCopySweep, RandomMappingPreserved) {
  Rng R(GetParam());
  unsigned N = 2 + static_cast<unsigned>(R.below(7));
  std::vector<unsigned> SrcOf;
  for (unsigned K = 0; K < N; ++K)
    SrcOf.push_back(static_cast<unsigned>(R.below(N)));
  auto F = makeParCopyFunction(SrcOf);
  auto Before = interpret(*F, argsFor(N));
  sequentializeParallelCopies(*F);
  expectWellFormed(*F);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      EXPECT_FALSE(I.isParCopy());
  auto After = interpret(*F, argsFor(N));
  EXPECT_TRUE(Before.sameObservable(After))
      << "mapping seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelCopySweep,
                         testing::Range<uint64_t>(1, 41));

TEST(ParallelCopy, PureRotationOfFour) {
  auto F = makeParCopyFunction({3, 0, 1, 2});
  auto Before = interpret(*F, argsFor(4));
  unsigned Moves = sequentializeParallelCopies(*F);
  EXPECT_EQ(Moves, 5u) << "a 4-cycle costs five moves";
  auto After = interpret(*F, argsFor(4));
  EXPECT_TRUE(Before.sameObservable(After));
}

TEST(ParallelCopy, MultipleParCopiesInOneBlock) {
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  parcopy %a = %b, %b = %a
  parcopy %a = %b, %b = %a
  %r = sub %a, %b
  ret %r
}
)");
  auto Before = interpret(*F, {9, 4});
  sequentializeParallelCopies(*F);
  auto After = interpret(*F, {9, 4});
  EXPECT_TRUE(Before.sameObservable(After));
}
