//===- PipelineTests.cpp - Experiment pipeline shape tests ------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Checks the comparative *shape* of the paper's tables on a sample of
// the suites: the full pinning-based pipeline (Lphi,ABI+C) never loses
// to the baselines in aggregate, and the naive configurations leave an
// order of magnitude more moves before coalescing (Table 4).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/MoveStats.h"
#include "outofssa/Pipeline.h"
#include "support/Stats.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace lao;
using namespace lao::test;

namespace {

/// Sums NumMoves of \p Preset over the whole suite.
unsigned totalMoves(const std::vector<Workload> &Suite,
                    const std::string &Preset, unsigned *BeforeCoalesce) {
  unsigned Total = 0;
  if (BeforeCoalesce)
    *BeforeCoalesce = 0;
  for (const Workload &W : Suite) {
    auto F = cloneFunction(*W.F);
    PipelineResult R = runPipeline(*F, pipelinePreset(Preset));
    Total += R.NumMoves;
    if (BeforeCoalesce)
      *BeforeCoalesce += R.MovesBeforeCoalesce;
  }
  return Total;
}

} // namespace

TEST(Pipeline, PresetsMatchTable1) {
  PipelineConfig C = pipelinePreset("Lphi,ABI+C");
  EXPECT_TRUE(C.PinSP && C.PinABI && C.PinPhi && C.Coalesce);
  EXPECT_FALSE(C.Sreedhar || C.NaiveABI);

  C = pipelinePreset("Sphi");
  EXPECT_TRUE(C.Sreedhar && C.NaiveABI && C.PinSP);
  EXPECT_FALSE(C.PinABI || C.PinPhi || C.Coalesce);

  C = pipelinePreset("C");
  EXPECT_TRUE(C.PinSP && C.Coalesce);
  EXPECT_FALSE(C.Sreedhar || C.PinABI || C.PinPhi || C.NaiveABI);
}

TEST(Pipeline, UnknownPresetReturnsNullopt) {
  EXPECT_FALSE(pipelinePresetOpt("no-such-preset").has_value());
  EXPECT_FALSE(pipelinePresetOpt("").has_value());
  ASSERT_TRUE(pipelinePresetOpt("Lphi,ABI+C").has_value());
  EXPECT_EQ(pipelinePresetOpt("Lphi,ABI+C")->Name, "Lphi,ABI+C");
}

TEST(PipelineDeathTest, UnknownPresetAbortsInEveryBuildType) {
  // The satellite bugfix: before, an unknown preset tripped an assert in
  // Debug but silently returned the default config wherever NDEBUG was
  // set. Now it must die loudly regardless of build type.
  EXPECT_DEATH(pipelinePreset("no-such-preset"), "unknown pipeline preset");
}

TEST(Pipeline, TimingsCoverThePhasesThatRan) {
  auto Suite = makeExamplesSuite();
  ASSERT_FALSE(Suite.empty());
  auto F = cloneFunction(*Suite.front().F);
  PipelineResult R = runPipeline(*F, pipelinePreset("Lphi,ABI+C"));
  // Lphi,ABI+C runs constraints, phi coalescing (with its analysis),
  // the Leung-George translation, sequentialization, and the cleanup
  // coalescer -- each must have a timer entry.
  EXPECT_FALSE(R.Timings.empty());
  for (const char *Phase :
       {"split-critical-edges", "constraints", "pin-analysis",
        "phi-coalescing", "translate", "sequentialize", "coalesce"}) {
    bool Found = false;
    for (const auto &[Name, Seconds] : R.Timings.entries())
      if (Name == Phase) {
        Found = true;
        EXPECT_GE(Seconds, 0.0) << Phase;
      }
    EXPECT_TRUE(Found) << "missing timer for phase " << Phase;
  }
  // Sreedhar and naive-ABI are off in this preset.
  for (const auto &[Name, Seconds] : R.Timings.entries())
    EXPECT_TRUE(Name != "sreedhar" && Name != "naive-abi") << Name;
  // The legacy CoalesceSeconds field is a view of the timer group.
  EXPECT_EQ(R.CoalesceSeconds, R.Timings.seconds("coalesce"));
  EXPECT_GE(R.Timings.total(), R.Timings.seconds("coalesce"));
}

TEST(Pipeline, Table2ShapeOnValcc) {
  // Without ABI constraints: Lphi+C <= C (the paper's Table 2 columns).
  auto Suite = makeValccSuite(1);
  unsigned Ours = totalMoves(Suite, "Lphi+C", nullptr);
  unsigned ChaitinOnly = totalMoves(Suite, "C", nullptr);
  EXPECT_LE(Ours, ChaitinOnly);
}

TEST(Pipeline, Table3ShapeOnValcc) {
  // With all renaming constraints: Lphi,ABI+C is the best column.
  auto Suite = makeValccSuite(1);
  unsigned Ours = totalMoves(Suite, "Lphi,ABI+C", nullptr);
  EXPECT_LE(Ours, totalMoves(Suite, "LABI+C", nullptr));
  EXPECT_LE(Ours, totalMoves(Suite, "C,naiveABI+C", nullptr));
}

TEST(Pipeline, Table4NaiveLeavesManyMovesForTheCoalescer) {
  // The cost proxy of Table 4: handling phis/ABI naively leaves far more
  // moves on the table before coalescing runs.
  auto Suite = makeValccSuite(1);
  unsigned PinnedResidual = totalMoves(Suite, "Lphi,ABI", nullptr);
  unsigned NaiveBefore = 0;
  totalMoves(Suite, "C,naiveABI+C", &NaiveBefore);
  EXPECT_GT(NaiveBefore, 2 * PinnedResidual)
      << "naive phi+ABI lowering must dwarf the pinned pipeline's "
         "residual moves";
}

TEST(Pipeline, CoalescerWorkloadShrinksUnderPinning) {
  // Point [CC3]: the more moves handled at the SSA level, the less work
  // (merges) remains for the repeated coalescer.
  auto Suite = makeValccSuite(2);
  unsigned MergesPinned = 0, MergesNaive = 0;
  for (const Workload &W : Suite) {
    auto A = cloneFunction(*W.F);
    MergesPinned += runPipeline(*A, pipelinePreset("Lphi,ABI+C"))
                        .Coalescer.NumMerges;
    auto B = cloneFunction(*W.F);
    MergesNaive += runPipeline(*B, pipelinePreset("C,naiveABI+C"))
                       .Coalescer.NumMerges;
  }
  EXPECT_LT(MergesPinned, MergesNaive);
}

TEST(Pipeline, WeightedCountsAvailableForTable5) {
  auto Suite = makeExamplesSuite();
  for (const Workload &W : Suite) {
    auto F = cloneFunction(*W.F);
    PipelineResult R = runPipeline(*F, pipelinePreset("Lphi,ABI+C"));
    EXPECT_GE(R.WeightedMoves, R.NumMoves)
        << "weights are at least 1 per move";
  }
}

TEST(Pipeline, PessimisticModeNeverBeatsPrecise) {
  // Table 5: pessimistic interferences blow up the move count; at
  // minimum they can never produce fewer moves than precise analysis on
  // aggregate.
  // Table 5 measures the variants WITHOUT the cleanup coalescer: the
  // pessimistic interference definition blocks phi merges, leaving phi
  // copies everywhere.
  auto Suite = makeValccSuite(1);
  uint64_t Precise = 0, Pessimistic = 0;
  for (const Workload &W : Suite) {
    auto A = cloneFunction(*W.F);
    PipelineConfig CA = pipelinePreset("Lphi,ABI");
    Precise += runPipeline(*A, CA).WeightedMoves;
    auto B = cloneFunction(*W.F);
    PipelineConfig CB = pipelinePreset("Lphi,ABI");
    CB.Mode = InterferenceMode::Pessimistic;
    Pessimistic += runPipeline(*B, CB).WeightedMoves;
  }
  EXPECT_LT(Precise, Pessimistic);
}

TEST(Pipeline, AnalysisBudgetOneDenseLivenessAndGraphPerRun) {
  // The acceptance criterion of the analysis-substrate overhaul: a
  // pipeline run performs at most one dense liveness analysis and at
  // most one interference-graph construction per function (down from
  // ~3x and ~2x when each consumer recomputed privately). Extra graph
  // rebuilds may only happen when the coalescer's confirm scan proves a
  // rebuild will merge something, which never exceeds one per run on
  // top of the budget... so assert the hard <= runs bound directly.
  if (const char *E = std::getenv("LAO_COALESCE_ORACLE"); E && *E && *E != '0')
    GTEST_SKIP() << "the coalescer oracle's rebuild-every-round reference "
                    "intentionally blows the analysis budget";
  auto Suite = makeValccSuite(1);
  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  uint64_t Runs = 0;
  for (const Workload &W : Suite)
    for (const char *Preset : {"Lphi,ABI+C", "C,naiveABI+C"}) {
      auto F = cloneFunction(*W.F);
      runPipeline(*F, pipelinePreset(Preset));
      ++Runs;
    }
  StatsSnapshot D =
      StatsRegistry::delta(Before, StatsRegistry::instance().snapshot());
  EXPECT_LE(D["liveness.analyses"], Runs);
  EXPECT_LE(D["interference.graphs_built"], Runs);
  EXPECT_LE(D["analysis.cfg_builds"], Runs);
  EXPECT_LE(D["analysis.domtree_builds"], Runs);
}

TEST(Pipeline, ResultsAreDeterministic) {
  auto Suite = makeExamplesSuite();
  for (const Workload &W : Suite) {
    auto A = cloneFunction(*W.F);
    auto B = cloneFunction(*W.F);
    runPipeline(*A, pipelinePreset("Lphi,ABI+C"));
    runPipeline(*B, pipelinePreset("Lphi,ABI+C"));
    EXPECT_EQ(printFunction(*A), printFunction(*B)) << W.Name;
  }
}
