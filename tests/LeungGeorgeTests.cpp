//===- LeungGeorgeTests.cpp - Out-of-pinned-SSA translation tests -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/LeungGeorge.h"
#include "outofssa/MoveStats.h"
#include "workloads/PaperExamples.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

/// Runs split + pinningSP + translate + sequentialize on \p F and
/// returns the translation stats.
OutOfSSAStats translate(Function &F,
                        InterferenceMode Mode = InterferenceMode::Precise) {
  splitCriticalEdges(F);
  collectSPConstraints(F);
  CFG Cfg(F);
  DominatorTree DT(Cfg);
  LivenessQuery LV(Cfg, DT);
  PinningContext Ctx(F, Cfg, DT, LV, Mode);
  OutOfSSAStats Stats = translateOutOfSSA(F, Ctx, Cfg);
  sequentializeParallelCopies(F);
  return Stats;
}

} // namespace

TEST(LeungGeorge, UnpinnedPhiBecomesPredCopies) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1 = make 1
  jump j
e:
  %x2 = make 2
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  output %x
  ret %x
}
)");
  auto Before = cloneFunction(*F);
  OutOfSSAStats Stats = translate(*F);
  EXPECT_EQ(Stats.NumPhisRemoved, 1u);
  EXPECT_EQ(Stats.NumPhiCopies, 2u) << "one copy per predecessor";
  EXPECT_EQ(Stats.NumRepairs, 0u);
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {1});
  expectEquivalent(*Before, *F, {0});
}

TEST(LeungGeorge, CoalescedPhiCostsNothing) {
  // All operands pre-pinned to one virtual resource: zero moves.
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1^w = make 1
  jump j
e:
  %x2^w = make 2
  jump j
j:
  %x^w = phi [%x1, t], [%x2, e]
  output %x
  ret %x
}
)");
  auto Before = cloneFunction(*F);
  OutOfSSAStats Stats = translate(*F);
  EXPECT_EQ(countMoves(*F), 0u);
  EXPECT_GE(Stats.NumElidedCopies, 2u);
  expectEquivalent(*Before, *F, {1});
  expectEquivalent(*Before, *F, {0});
}

TEST(LeungGeorge, Figure3RepairAndElision) {
  auto F = makeFigure3();
  auto Before = cloneFunction(*F);
  splitCriticalEdges(*F);
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  LivenessQuery LV(Cfg, DT);
  PinningContext Ctx(*F, Cfg, DT, LV);
  OutOfSSAStats Stats = translateOutOfSSA(*F, Ctx, Cfg);
  sequentializeParallelCopies(*F);

  // x2 is killed by the call result x4 (both in R0's class) and used at
  // the return: exactly one repair.
  EXPECT_EQ(Stats.NumRepairs, 1u);
  // The call's use of x2 pinned to R0 is elided (already in R0), as are
  // the phi copies whose values are produced in place.
  EXPECT_GE(Stats.NumElidedCopies, 1u);
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {5, 9});
  expectEquivalent(*Before, *F, {0, 1});
}

TEST(LeungGeorge, Figure8PartialCoalescingMechanism) {
  // Manually pin z's definition to R0 (what a Chaitin coalescer on final
  // code can never do): both phi copies vanish, one repair move appears.
  auto F = makeFigure8();
  auto Before = cloneFunction(*F);

  // Count moves when z stays unpinned: one copy per predecessor plus
  // the pinned call argument and the pinned return value.
  {
    auto Unpinned = cloneFunction(*F);
    translate(*Unpinned);
    EXPECT_EQ(countMoves(*Unpinned), 4u);
  }

  // Pin z to R0 on its definition (the phi def).
  for (const auto &BB : F->blocks())
    for (Instruction &I : BB->instructions())
      if (I.isPhi())
        I.pinDef(0, Target::R0);
  OutOfSSAStats Stats = translate(*F);
  EXPECT_EQ(Stats.NumRepairs, 1u) << "z killed by the f3 call result";
  EXPECT_EQ(countMoves(*F), 2u)
      << "partial coalescing trades two phi moves and the call-argument "
         "copy for one repair plus the return-value copy";
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {7});
}

TEST(LeungGeorge, Figure12PinnedUseReadsOwnResource) {
  // Our reconstruction refinement: the repeated R0-pinned use reads x
  // from x's own resource each iteration (one move per iteration), with
  // no repair chain — matching the figure's "optimal" column.
  auto F = makeFigure12();
  auto Before = cloneFunction(*F);
  OutOfSSAStats Stats = translate(*F);
  EXPECT_EQ(Stats.NumRepairs, 0u);
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {3});
}

TEST(LeungGeorge, UsePinInsertsCopyOnlyWhenNeeded) {
  auto F = parse(R"(
func @f {
entry:
  input %a^R0, %b^R1
  %r^R0 = call @f(%a^R0, %b^R1)
  %s^R0 = call @g(%r^R0, %b^R1)
  ret %s^R0
}
)");
  auto Before = cloneFunction(*F);
  OutOfSSAStats Stats = translate(*F);
  // Every pinned value is produced in its target register already:
  // a arrives in R0, r and s are defined there, b stays in R1.
  EXPECT_EQ(countMoves(*F), 0u);
  EXPECT_GE(Stats.NumElidedCopies, 5u);
  expectEquivalent(*Before, *F, {11, 22});
}

TEST(LeungGeorge, ArgShuffleUsesParallelCopy) {
  // Swapped argument registers at the second call force a parallel copy
  // (R0, R1) <- (R1, R0), sequentialized with a temp.
  auto F = parse(R"(
func @f {
entry:
  input %a^R0, %b^R1
  %r^R0 = call @f(%b^R0, %a^R1)
  ret %r^R0
}
)");
  auto Before = cloneFunction(*F);
  translate(*F);
  EXPECT_EQ(countMoves(*F), 3u) << "swap through a temporary";
  expectEquivalent(*Before, *F, {5, 6});
}

TEST(LeungGeorge, TwoOperandConstraintSatisfiedInPlace) {
  auto F = parse(R"(
func @f {
entry:
  input %a^R0
  %k = more %a^k, 7
  %q = autoadd %k^q, 4
  ret %q^R0
}
)");
  auto Before = cloneFunction(*F);
  collectABIConstraints(*F); // No-op here: pins already written.
  translate(*F);
  // a -> k needs one move (a is still live? no: a's last use is the
  // more). The chain then stays in place; only the final ret needs R0.
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {640});
}

TEST(LeungGeorge, SPChainStaysInSP) {
  auto F = parse(R"(
func @f {
entry:
  input %a^R0
  %sp1 = spadjust %SP, -16
  %sp2 = spadjust %sp1, 8
  %sp3 = spadjust %sp2, 8
  store %sp3, %a
  ret %a^R0
}
)");
  auto Before = cloneFunction(*F);
  translate(*F);
  EXPECT_EQ(countMoves(*F), 0u) << "the SP chain coalesces entirely";
  // All spadjusts now write SP itself.
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::SpAdjust) {
        EXPECT_EQ(I.def(0), static_cast<RegId>(Target::SP));
        EXPECT_EQ(I.use(0), static_cast<RegId>(Target::SP));
      }
  expectEquivalent(*Before, *F, {77});
}

TEST(LeungGeorge, LostCopyProblem) {
  // x's old value is used after the loop; the phi overwrites it at the
  // latch. A repair keeps the translation correct.
  auto F = parse(R"(
func @f {
entry:
  input %n
  %x0^w = make 0
  jump head
head:
  %x^w = phi [%x0, entry], [%x2, latch]
  %x2^w = addi %x, 1
  %c = cmplt %x2, %n
  branch %c, latch, done
latch:
  jump head
done:
  output %x
  ret %x2
}
)");
  auto Before = cloneFunction(*F);
  OutOfSSAStats Stats = translate(*F);
  EXPECT_GE(Stats.NumRepairs, 1u);
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {4});
  expectEquivalent(*Before, *F, {1});
}

TEST(LeungGeorge, SwapProblemThroughPhis) {
  auto F = parse(R"(
func @f {
entry:
  input %n
  %a0^u = make 1
  %b0^v = make 2
  %i0 = make 0
  jump head
head:
  %a^u = phi [%a0, entry], [%b, latch]
  %b^v = phi [%b0, entry], [%a, latch]
  %i = phi [%i0, entry], [%i2, latch]
  output %a
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  branch %c, latch, done
latch:
  jump head
done:
  ret %b
}
)");
  auto Before = cloneFunction(*F);
  translate(*F);
  expectWellFormed(*F);
  expectEquivalent(*Before, *F, {3});
}

TEST(LeungGeorge, OutputHasNoPinsLeft) {
  auto F = makeFigure1();
  translate(*F);
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions()) {
      for (unsigned K = 0; K < I.numDefs(); ++K)
        EXPECT_EQ(I.defPin(K), InvalidReg);
      for (unsigned K = 0; K < I.numUses(); ++K)
        EXPECT_EQ(I.usePin(K), InvalidReg);
    }
}

TEST(LeungGeorge, Figure1EndToEnd) {
  auto F = makeFigure1();
  auto Before = cloneFunction(*F);
  OutOfSSAStats Stats = translate(*F);
  (void)Stats;
  expectWellFormed(*F);
  // Every ABI-pinned operand now names its physical register.
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.op() == Opcode::Call) {
        EXPECT_EQ(I.use(0), static_cast<RegId>(Target::R0));
        EXPECT_EQ(I.use(1), static_cast<RegId>(Target::R1));
        EXPECT_EQ(I.def(0), static_cast<RegId>(Target::R0));
      }
  expectEquivalent(*Before, *F, {10, 2000});
}
