//===- ClassInterferenceTests.cpp - Sweep engine vs pairwise oracle ----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Randomized equivalence suite for the dominance-ordered class-interference
// engine (outofssa/ClassInterference.h): on every workload suite and on
// adversarial generator functions (large phi webs, physical-register
// classes), the engine must return the exact verdicts of the paper-literal
// pairwise scan — both per-query and as a whole coalescing run (identical
// merge traces, pins, and killed masks). Also covers the verdict cache
// (hits, post-merge eviction) and the unreachable-block fallback.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/PhiCoalescing.h"
#include "outofssa/PinningContext.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace lao;
using namespace lao::test;

namespace {

/// Saves and restores the process-wide engine/oracle flags, so a failing
/// test cannot leak its flag state into the rest of the binary.
struct FlagGuard {
  bool Engine = PinningContext::sweepEngineEnabled();
  bool Oracle = PinningContext::crossCheckOracle();
  ~FlagGuard() {
    PinningContext::setSweepEngineEnabled(Engine);
    PinningContext::setCrossCheckOracle(Oracle);
  }
};

/// Analyses bundle for driving PinningContext / coalescePhis by hand.
struct Analyses {
  CFG Cfg;
  DominatorTree DT;
  LivenessQuery LV;
  LoopInfo LI;
  PinningContext Ctx;

  explicit Analyses(Function &F,
                    InterferenceMode Mode = InterferenceMode::Precise)
      : Cfg(F), DT(Cfg), LV(Cfg, DT), LI(Cfg, DT), Ctx(F, Cfg, DT, LV, Mode) {}
};

/// Splits edges and pins SP/ABI so the function has both virtual and
/// physical-register classes, as the coalescer would see it.
void prepare(Function &F, bool PinABI = true) {
  splitCriticalEdges(F);
  collectSPConstraints(F);
  if (PinABI)
    collectABIConstraints(F);
}

/// Representatives worth querying: classes holding at least one defined
/// variable or a physical register (others are trivially non-interfering
/// on both paths).
std::vector<RegId> interestingReps(const PinningContext &Ctx,
                                   const Function &F) {
  std::vector<RegId> Reps;
  for (RegId V = 0; V < F.numValues(); ++V) {
    if (Ctx.resourceOf(V) != V)
      continue;
    bool Interesting = F.isPhysical(V);
    for (RegId M : Ctx.members(V))
      Interesting = Interesting || Ctx.defSite(M).Valid;
    if (Interesting)
      Reps.push_back(V);
  }
  return Reps;
}

/// Queries (a strided sample of) all representative pairs through one
/// engine-backed context and one pairwise-only context built over the same
/// function, expecting identical verdicts.
void expectVerdictEquality(Function &F, InterferenceMode Mode,
                           size_t MaxPairs = 6000) {
  FlagGuard G;
  PinningContext::setCrossCheckOracle(false);
  PinningContext::setSweepEngineEnabled(true);
  Analyses On(F, Mode);
  PinningContext::setSweepEngineEnabled(false);
  Analyses Off(F, Mode);

  std::vector<RegId> Reps = interestingReps(Off.Ctx, F);
  size_t NumPairs = Reps.empty() ? 0 : Reps.size() * (Reps.size() - 1) / 2;
  size_t Stride = NumPairs > MaxPairs ? NumPairs / MaxPairs + 1 : 1;
  size_t Index = 0;
  for (size_t I = 0; I < Reps.size(); ++I)
    for (size_t J = I + 1; J < Reps.size(); ++J) {
      if (Index++ % Stride != 0)
        continue;
      PinningContext::setSweepEngineEnabled(true);
      bool Engine = On.Ctx.resourceInterfere(Reps[I], Reps[J]);
      PinningContext::setSweepEngineEnabled(false);
      bool Pairwise = Off.Ctx.resourceInterfere(Reps[I], Reps[J]);
      ASSERT_EQ(Engine, Pairwise)
          << F.name() << ": verdict mismatch for classes "
          << F.valueName(Reps[I]) << " / " << F.valueName(Reps[J])
          << " in mode " << static_cast<int>(Mode);
    }
  PinningContext::setSweepEngineEnabled(true);
  EXPECT_TRUE(On.Ctx.interferenceReport().EngineUsed || Reps.size() < 2)
      << F.name();
}

/// Runs coalescePhis twice over clones of \p Orig — engine on and engine
/// off — and expects bit-identical merge traces: same statistics, same
/// resulting pins, same class partition, same killed mask.
void expectMergeTraceEquality(const Function &Orig, InterferenceMode Mode,
                              bool PinABI = true) {
  auto FOn = cloneFunction(Orig);
  auto FOff = cloneFunction(Orig);
  prepare(*FOn, PinABI);
  prepare(*FOff, PinABI);

  FlagGuard G;
  PinningContext::setCrossCheckOracle(false);
  PinningContext::setSweepEngineEnabled(true);
  Analyses On(*FOn, Mode);
  PhiCoalescingStats StOn = coalescePhis(*FOn, On.Ctx, On.Cfg, On.LI);
  PinningContext::setSweepEngineEnabled(false);
  Analyses Off(*FOff, Mode);
  PhiCoalescingStats StOff = coalescePhis(*FOff, Off.Ctx, Off.Cfg, Off.LI);

  EXPECT_EQ(StOn.NumAffinityEdges, StOff.NumAffinityEdges) << Orig.name();
  EXPECT_EQ(StOn.NumInitialPruned, StOff.NumInitialPruned) << Orig.name();
  EXPECT_EQ(StOn.NumWeightPruned, StOff.NumWeightPruned) << Orig.name();
  EXPECT_EQ(StOn.NumMerges, StOff.NumMerges) << Orig.name();
  EXPECT_EQ(StOn.NumUsePinMerges, StOff.NumUsePinMerges) << Orig.name();
  EXPECT_EQ(StOn.NumPhysDeferred, StOff.NumPhysDeferred) << Orig.name();
  EXPECT_EQ(StOn.NumSafetySkips, StOff.NumSafetySkips) << Orig.name();
  EXPECT_EQ(StOn.NumPairQueries, StOff.NumPairQueries) << Orig.name();
  EXPECT_EQ(StOn.TotalGain, StOff.TotalGain) << Orig.name();

  // Identical merge traces leave identical pins behind.
  EXPECT_EQ(printFunction(*FOn), printFunction(*FOff)) << Orig.name();
  ASSERT_EQ(FOn->numValues(), FOff->numValues());
  for (RegId V = 0; V < FOn->numValues(); ++V)
    if (On.Ctx.resourceOf(V) != Off.Ctx.resourceOf(V)) {
      ADD_FAILURE() << Orig.name() << ": class partition diverged at "
                    << FOn->valueName(V);
      break;
    }
  EXPECT_TRUE(On.Ctx.killedMask() == Off.Ctx.killedMask())
      << Orig.name() << ": killed masks diverged";
}

/// Adversarial generator configs. PhiWebs stresses deep nests of phis over
/// mutated variables (large classes after phi pinning); the other variant
/// stresses physical-register classes via many ABI-pinned call sites.
std::unique_ptr<Function> adversarial(uint64_t Seed, bool PhiWebs) {
  GeneratorParams P;
  P.Seed = Seed;
  P.NumParams = 4;
  if (PhiWebs) {
    P.NumStatements = 60;
    P.MaxNesting = 3;
    P.MutatePercent = 85;
    P.CallPercent = 5;
  } else {
    P.NumStatements = 40;
    P.MaxNesting = 2;
    P.CallPercent = 45;
    P.UseSP = true;
  }
  auto F = generateProgram(P, (PhiWebs ? "phiweb" : "physreg") +
                                  std::to_string(Seed));
  normalizeToOptimizedSSA(*F);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Workload suites
//===----------------------------------------------------------------------===//

TEST(ClassInterference, SuiteVerdictsMatchPairwise) {
  for (const SuiteSpec &S : allSuites())
    for (Workload &W : S.Make()) {
      prepare(*W.F);
      expectVerdictEquality(*W.F, InterferenceMode::Precise);
    }
}

TEST(ClassInterference, SuiteMergeTracesMatchPairwise) {
  for (const SuiteSpec &S : allSuites())
    for (Workload &W : S.Make())
      expectMergeTraceEquality(*W.F, InterferenceMode::Precise);
}

//===----------------------------------------------------------------------===//
// Adversarial generator functions
//===----------------------------------------------------------------------===//

TEST(ClassInterference, AdversarialPhiWebsAllModes) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed)
    for (InterferenceMode Mode :
         {InterferenceMode::Precise, InterferenceMode::Optimistic,
          InterferenceMode::Pessimistic}) {
      auto F = adversarial(Seed, /*PhiWebs=*/true);
      prepare(*F);
      expectVerdictEquality(*F, Mode);
    }
}

TEST(ClassInterference, AdversarialPhysicalClassesAllModes) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed)
    for (InterferenceMode Mode :
         {InterferenceMode::Precise, InterferenceMode::Optimistic,
          InterferenceMode::Pessimistic}) {
      auto F = adversarial(Seed, /*PhiWebs=*/false);
      prepare(*F);
      expectVerdictEquality(*F, Mode);
    }
}

TEST(ClassInterference, AdversarialMergeTraces) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    expectMergeTraceEquality(*adversarial(Seed, true),
                             InterferenceMode::Precise);
    expectMergeTraceEquality(*adversarial(Seed, false),
                             InterferenceMode::Precise);
    expectMergeTraceEquality(*adversarial(Seed, true),
                             InterferenceMode::Pessimistic);
  }
}

//===----------------------------------------------------------------------===//
// Verdict cache: hits, and eviction across pinTogether merges
//===----------------------------------------------------------------------===//

TEST(ClassInterference, CacheHitsOnRepeatedQueries) {
  auto F = adversarial(3, /*PhiWebs=*/true);
  prepare(*F);
  FlagGuard G;
  PinningContext::setCrossCheckOracle(false);
  PinningContext::setSweepEngineEnabled(true);
  Analyses S(*F);
  std::vector<RegId> Reps = interestingReps(S.Ctx, *F);
  // Physical-physical pairs short-circuit before the engine; cache
  // behavior only shows on pairs with a virtual side.
  Reps.erase(std::remove_if(Reps.begin(), Reps.end(),
                            [&](RegId R) { return F->isPhysical(R); }),
             Reps.end());
  ASSERT_GE(Reps.size(), 2u);

  bool First = S.Ctx.resourceInterfere(Reps[0], Reps[1]);
  auto R1 = S.Ctx.interferenceReport();
  bool Second = S.Ctx.resourceInterfere(Reps[0], Reps[1]);
  auto R2 = S.Ctx.interferenceReport();
  EXPECT_EQ(First, Second);
  EXPECT_EQ(R2.CacheHits, R1.CacheHits + 1) << "repeat query must hit";
  EXPECT_EQ(R2.Queries, R1.Queries) << "repeat query must not recompute";
  // Argument order and non-representative members resolve to the same
  // cache entry.
  S.Ctx.resourceInterfere(Reps[1], Reps[0]);
  EXPECT_EQ(S.Ctx.interferenceReport().CacheHits, R2.CacheHits + 1);
}

TEST(ClassInterference, CacheEvictedOnMergeStaysExact) {
  // Warm the cache over every pair, coalesce (merges must evict the stale
  // entries), then re-check every post-merge verdict against the pairwise
  // scan on the same merged context.
  GeneratorParams P;
  P.Seed = 9;
  P.NumStatements = 25;
  P.MaxNesting = 2;
  P.MutatePercent = 70;
  auto F = generateProgram(P, "evict9");
  normalizeToOptimizedSSA(*F);
  prepare(*F);

  FlagGuard G;
  PinningContext::setCrossCheckOracle(false);
  PinningContext::setSweepEngineEnabled(true);
  Analyses S(*F);
  std::vector<RegId> Before = interestingReps(S.Ctx, *F);
  for (size_t I = 0; I < Before.size(); ++I)
    for (size_t J = I + 1; J < Before.size(); ++J)
      S.Ctx.resourceInterfere(Before[I], Before[J]);

  PhiCoalescingStats St = coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
  auto R = S.Ctx.interferenceReport();
  if (St.NumMerges > 0) {
    EXPECT_GT(R.CacheEvictions, 0u)
        << "merging warmed classes must evict their cached verdicts";
  }

  std::vector<RegId> After = interestingReps(S.Ctx, *F);
  for (size_t I = 0; I < After.size(); ++I)
    for (size_t J = I + 1; J < After.size(); ++J) {
      PinningContext::setSweepEngineEnabled(true);
      bool Engine = S.Ctx.resourceInterfere(After[I], After[J]);
      PinningContext::setSweepEngineEnabled(false);
      bool Pairwise = S.Ctx.resourceInterfere(After[I], After[J]);
      ASSERT_EQ(Engine, Pairwise)
          << "post-merge verdict diverged for " << F->valueName(After[I])
          << " / " << F->valueName(After[J]);
    }
}

//===----------------------------------------------------------------------===//
// Fallback and diagnostics
//===----------------------------------------------------------------------===//

TEST(ClassInterference, UnreachableBlockFallsBackToPairwise) {
  // Class 2 of the pairwise scan has no dominance precondition on
  // unreachable code, so a function with a non-empty unreachable block
  // must be served wholesale by the pairwise path.
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  %x1 = make 1
  jump j
e:
  %x2 = make 2
  jump j
j:
  %x = phi [%x1, t], [%x2, e]
  output %x
  ret %x
dead:
  %d = make 7
  ret %d
}
)");
  prepare(*F, /*PinABI=*/false);
  FlagGuard G;
  PinningContext::setCrossCheckOracle(false);
  PinningContext::setSweepEngineEnabled(true);
  Analyses S(*F);
  std::vector<RegId> Reps = interestingReps(S.Ctx, *F);
  for (size_t I = 0; I < Reps.size(); ++I)
    for (size_t J = I + 1; J < Reps.size(); ++J) {
      PinningContext::setSweepEngineEnabled(true);
      bool WithFlag = S.Ctx.resourceInterfere(Reps[I], Reps[J]);
      PinningContext::setSweepEngineEnabled(false);
      bool Pairwise = S.Ctx.resourceInterfere(Reps[I], Reps[J]);
      EXPECT_EQ(WithFlag, Pairwise);
    }
  PinningContext::setSweepEngineEnabled(true);
  auto R = S.Ctx.interferenceReport();
  EXPECT_FALSE(R.EngineUsed);
  EXPECT_GT(R.PairwiseQueries, 0u);
}

TEST(ClassInterference, ReportHistogramCoversClasses) {
  auto F = adversarial(5, /*PhiWebs=*/true);
  prepare(*F);
  FlagGuard G;
  PinningContext::setCrossCheckOracle(false);
  PinningContext::setSweepEngineEnabled(true);
  Analyses S(*F);
  PhiCoalescingStats St = coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
  auto R = S.Ctx.interferenceReport();
  uint64_t Sum = 0;
  for (uint64_t Bucket : R.SizeHist)
    Sum += Bucket;
  EXPECT_EQ(Sum, R.NumClasses);
  EXPECT_GT(R.NumClasses, 0u);
  if (St.NumPairQueries > 0) {
    EXPECT_TRUE(R.EngineUsed);
    EXPECT_GT(R.Queries + R.CacheHits, 0u);
    EXPECT_GT(R.PairCost, 0u) << "swept queries must record their bound";
  }
}

TEST(ClassInterference, OracleCleanOnCoalescingRuns) {
  // With the cross-check oracle armed, every engine verdict issued during
  // a full coalescing run is compared against the pairwise scan and a
  // mismatch aborts — so merely finishing is the assertion.
  FlagGuard G;
  PinningContext::setSweepEngineEnabled(true);
  PinningContext::setCrossCheckOracle(true);
  for (uint64_t Seed : {11u, 12u}) {
    auto F = adversarial(Seed, Seed % 2 == 0);
    prepare(*F);
    Analyses S(*F);
    coalescePhis(*F, S.Ctx, S.Cfg, S.LI);
  }
  SUCCEED();
}
