//===- ObservabilityTests.cpp - Stats/Timer/Json/ThreadPool tests -----------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the support-layer observability pieces (stats registry,
// timer groups, JSON writer, thread pool) and the guard the bench
// machinery relies on: the parallel suite runner's measurement fields
// are bit-identical to the serial path's.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Json.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <vector>

using namespace lao;
using namespace lao::bench;

//===----------------------------------------------------------------------===//
// StatsRegistry
//===----------------------------------------------------------------------===//

TEST(Stats, CounterRegistersAndAccumulates) {
  StatCounter &C = LAO_STAT(testpass, bumps);
  uint64_t Start = C.value();
  ++C;
  C += 4;
  EXPECT_EQ(C.value(), Start + 5);

  // Executing the same LAO_STAT expression again returns the same static.
  auto Bump = [] { return &(++LAO_STAT(testpass, bumps)); };
  EXPECT_EQ(Bump(), Bump());

  // Different sites naming the same (pass, name) are distinct statics but
  // aggregate under one snapshot key.
  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  ++LAO_STAT(testpass, bumps);
  StatsSnapshot After = StatsRegistry::instance().snapshot();
  StatsSnapshot D = StatsRegistry::delta(Before, After);
  ASSERT_EQ(D.count("testpass.bumps"), 1u);
  EXPECT_EQ(D["testpass.bumps"], 1u);
}

TEST(Stats, DeltaDropsUnmovedCounters) {
  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  LAO_STAT(testpass, delta_only) += 7;
  StatsSnapshot After = StatsRegistry::instance().snapshot();
  StatsSnapshot D = StatsRegistry::delta(Before, After);
  ASSERT_EQ(D.count("testpass.delta_only"), 1u);
  EXPECT_EQ(D["testpass.delta_only"], 7u);
  // Counters that did not move between the snapshots are absent.
  for (const auto &[Key, V] : D) {
    EXPECT_GT(V, 0u) << Key;
    EXPECT_EQ(V, After[Key] - (Before.count(Key) ? Before[Key] : 0)) << Key;
  }
}

TEST(Stats, DeltaCountsNewCountersFromZero) {
  StatsSnapshot Before; // Pretend the counter did not exist yet.
  StatsSnapshot After;
  After["late.counter"] = 3;
  StatsSnapshot D = StatsRegistry::delta(Before, After);
  ASSERT_EQ(D.count("late.counter"), 1u);
  EXPECT_EQ(D["late.counter"], 3u);
}

//===----------------------------------------------------------------------===//
// TimerGroup / ScopedTimer
//===----------------------------------------------------------------------===//

TEST(Timer, GroupKeepsFirstInsertionOrderAndAccumulates) {
  TimerGroup TG;
  EXPECT_TRUE(TG.empty());
  TG.add("b", 1.0);
  TG.add("a", 2.0);
  TG.add("b", 0.5);
  ASSERT_EQ(TG.entries().size(), 2u);
  EXPECT_EQ(TG.entries()[0].first, "b");
  EXPECT_EQ(TG.entries()[1].first, "a");
  EXPECT_DOUBLE_EQ(TG.seconds("b"), 1.5);
  EXPECT_DOUBLE_EQ(TG.seconds("a"), 2.0);
  EXPECT_DOUBLE_EQ(TG.seconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(TG.total(), 3.5);
}

TEST(Timer, AddAllFoldsAndAppends) {
  TimerGroup A, B;
  A.add("x", 1.0);
  B.add("x", 2.0);
  B.add("y", 3.0);
  A.addAll(B);
  ASSERT_EQ(A.entries().size(), 2u);
  EXPECT_EQ(A.entries()[0].first, "x");
  EXPECT_DOUBLE_EQ(A.seconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(A.seconds("y"), 3.0);
}

TEST(Timer, ScopedTimerAddsNonNegativeElapsed) {
  TimerGroup TG;
  {
    ScopedTimer T(TG, "scope");
    volatile unsigned Sink = 0;
    for (unsigned K = 0; K < 1000; ++K)
      Sink = Sink + K;
    (void)Sink;
  }
  ASSERT_EQ(TG.entries().size(), 1u);
  EXPECT_GE(TG.seconds("scope"), 0.0);
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(Json, ObjectsArraysAndAutomaticCommas) {
  JsonWriter W;
  W.beginObject();
  W.key("a").value(uint64_t(1));
  W.key("b").beginArray();
  W.value(uint64_t(2)).value("x").value(true);
  W.endArray();
  W.key("c").beginObject();
  W.key("d").value(int64_t(-3));
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.str(), R"({"a":1,"b":[2,"x",true],"c":{"d":-3}})");
}

TEST(Json, EmptyContainers) {
  JsonWriter W;
  W.beginObject();
  W.key("arr").beginArray().endArray();
  W.key("obj").beginObject().endObject();
  W.endObject();
  EXPECT_EQ(W.str(), R"({"arr":[],"obj":{}})");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("nl\n"), "nl\\n");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");

  JsonWriter W;
  W.beginObject();
  W.key("k\"ey").value("v\nal");
  W.endObject();
  EXPECT_EQ(W.str(), "{\"k\\\"ey\":\"v\\nal\"}");
}

TEST(Json, Doubles) {
  JsonWriter W;
  W.beginArray();
  W.value(0.25);
  W.value(1.0);
  W.value(std::numeric_limits<double>::infinity()); // degrades to 0
  W.endArray();
  EXPECT_EQ(W.str(), "[0.25,1,0]");
}

TEST(Json, TakeMovesOutTheBuffer) {
  JsonWriter W;
  W.beginArray().value(uint64_t(7)).endArray();
  std::string S = W.take();
  EXPECT_EQ(S, "[7]");
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  const size_t N = 257;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << I;
  // N == 0 is a no-op, N < threads uses fewer lanes.
  Pool.parallelFor(0, [&](size_t) { FAIL(); });
  std::atomic<unsigned> Small{0};
  Pool.parallelFor(2, [&](size_t) { ++Small; });
  EXPECT_EQ(Small.load(), 2u);
}

TEST(ThreadPool, SingleThreadPoolDegradesToSerial) {
  ThreadPool Pool(1);
  std::vector<size_t> Order;
  // One worker claims indices in ascending order: execution is serial.
  Pool.parallelFor(8, [&](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), 8u);
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, AsyncAndWait) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Done{0};
  for (unsigned K = 0; K < 16; ++K)
    Pool.async([&] { ++Done; });
  Pool.wait();
  EXPECT_EQ(Done.load(), 16u);
}

//===----------------------------------------------------------------------===//
// Parallel suite runner determinism (the acceptance-criterion guard)
//===----------------------------------------------------------------------===//

TEST(SuiteRunner, ParallelTotalsBitIdenticalToSerial) {
  // runOnSuite's contract: with any pool, the deterministic measurement
  // fields equal the strictly serial path's. Wall-clock fields are
  // exempt (they can never be identical run to run).
  ThreadPool Pool(4);
  auto Suite = makeExamplesSuite();
  for (const char *Preset : {"Lphi,ABI+C", "C,naiveABI+C"}) {
    PipelineConfig Config = pipelinePreset(Preset);
    SuiteTotals Serial = runOnSuite(Suite, Config, /*Check=*/false, nullptr);
    SuiteTotals Parallel = runOnSuite(Suite, Config, /*Check=*/false, &Pool);
    EXPECT_EQ(Serial.Moves, Parallel.Moves) << Preset;
    EXPECT_EQ(Serial.WeightedMoves, Parallel.WeightedMoves) << Preset;
    EXPECT_EQ(Serial.MovesBeforeCoalesce, Parallel.MovesBeforeCoalesce)
        << Preset;
    EXPECT_EQ(Serial.CoalescerMerges, Parallel.CoalescerMerges) << Preset;
    EXPECT_EQ(Serial.Counters, Parallel.Counters) << Preset;
    // Phase order of the folded timers is the pipeline's phase order in
    // both modes (the reduction is index-ordered).
    ASSERT_EQ(Serial.PerPass.entries().size(),
              Parallel.PerPass.entries().size())
        << Preset;
    for (size_t K = 0; K < Serial.PerPass.entries().size(); ++K)
      EXPECT_EQ(Serial.PerPass.entries()[K].first,
                Parallel.PerPass.entries()[K].first)
          << Preset;
  }
}

TEST(SuiteRunner, JsonReportDeterministicAcrossRuns) {
  // Satellite guard for the analysis-substrate overhaul: running the same
  // suite through two independent BenchReports yields byte-identical JSON
  // once the wall-clock fields are excluded. This pins down determinism
  // of the whole stack — pipeline, sorted interference neighbors, stats
  // counters — not just of the headline move counts.
  auto Suite = makeExamplesSuite();
  auto Render = [&Suite] {
    BenchReport Report;
    for (const char *Preset : {"Lphi,ABI+C", "C,naiveABI+C"})
      Report.totals("examples", Suite, pipelinePreset(Preset));
    return Report.jsonString("determinism", /*IncludeTimings=*/false);
  };
  std::string First = Render();
  std::string Second = Render();
  EXPECT_EQ(First, Second);
  // Sanity: the deterministic rendering really did drop the clocks.
  EXPECT_EQ(First.find("seconds"), std::string::npos);
  EXPECT_NE(First.find("\"moves\""), std::string::npos);
}

TEST(SuiteRunner, JsonReportMatchesTableNumbers) {
  // The --json acceptance criterion: the BenchReport serves the printed
  // tables and the JSON from one cached record, so re-querying returns
  // the exact same totals object.
  BenchReport Report;
  auto Suite = makeExamplesSuite();
  PipelineConfig Config = pipelinePreset("Lphi,ABI+C");
  const SuiteTotals &First = Report.totals("examples", Suite, Config);
  const SuiteTotals &Second = Report.totals("examples", Suite, Config);
  EXPECT_EQ(&First, &Second) << "second query must hit the cache";
}
