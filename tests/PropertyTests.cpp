//===- PropertyTests.cpp - Cross-module property sweeps ---------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Differential and invariant properties checked over seeded random
// programs: printer/parser round trips, dominance vs brute-force path
// enumeration, liveness vs a path-based oracle on small graphs,
// PinningContext algebraic invariants, and end-to-end machine-code
// generation (out-of-SSA + register allocation) equivalence.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "ir/CFG.h"
#include "outofssa/Constraints.h"
#include "outofssa/PinningContext.h"
#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "ssa/SSAVerifier.h"
#include "workloads/Generator.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include <set>

using namespace lao;
using namespace lao::test;

namespace {

std::unique_ptr<Function> randomSSA(uint64_t Seed) {
  GeneratorParams P;
  P.Seed = Seed;
  P.NumStatements = 14 + Seed % 17;
  P.MaxNesting = 1 + Seed % 3;
  P.NumParams = 1 + Seed % 3;
  P.UseSP = Seed % 4 == 0;
  P.UsePsi = Seed % 5 == 0;
  auto F = generateProgram(P, "prop" + std::to_string(Seed));
  normalizeToOptimizedSSA(*F);
  return F;
}

/// Blocks reachable from the entry without passing through \p Excluded.
std::set<const BasicBlock *> reachableAvoiding(const Function &F,
                                               const BasicBlock *Excluded) {
  std::set<const BasicBlock *> Seen;
  std::vector<const BasicBlock *> Work;
  const BasicBlock *Entry = &F.entry();
  if (Entry == Excluded)
    return Seen;
  Seen.insert(Entry);
  Work.push_back(Entry);
  while (!Work.empty()) {
    const BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *S : BB->successors())
      if (S != Excluded && Seen.insert(S).second)
        Work.push_back(S);
  }
  return Seen;
}

} // namespace

class PropertySweep : public testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep, PrintParseRoundTrip) {
  auto F = randomSSA(GetParam());
  std::string P1 = printFunction(*F);
  std::string Error;
  auto F2 = parseFunction(P1, &Error);
  ASSERT_TRUE(F2) << Error;
  EXPECT_EQ(P1, printFunction(*F2));
  // The reparsed function must behave identically.
  std::vector<uint64_t> Args;
  for (unsigned K = 0; K < F->numParams(); ++K)
    Args.push_back(GetParam() + K);
  expectEquivalent(*F, *F2, Args);
}

TEST_P(PropertySweep, DominanceMatchesPathDefinition) {
  // A dominates B iff removing A makes B unreachable (for reachable B).
  auto F = randomSSA(GetParam());
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  for (const auto &A : F->blocks()) {
    if (!Cfg.isReachable(A.get()))
      continue;
    std::set<const BasicBlock *> Avoiding =
        reachableAvoiding(*F, A.get());
    for (const auto &B : F->blocks()) {
      if (!Cfg.isReachable(B.get()))
        continue;
      bool PathDom = A.get() == B.get() || !Avoiding.count(B.get());
      EXPECT_EQ(DT.dominates(A.get(), B.get()), PathDom)
          << A->name() << " vs " << B->name();
    }
  }
}

TEST_P(PropertySweep, LivenessIsConsistentAcrossEdges) {
  // For every CFG edge B -> S: liveIn(S) minus S's phi defs must be
  // contained in liveOut(B); phi args from B must be live out of B.
  auto F = randomSSA(GetParam());
  CFG Cfg(*F);
  Liveness LV(Cfg);
  for (const auto &B : F->blocks()) {
    for (BasicBlock *S : Cfg.succs(B.get())) {
      const BitVector &InS = LV.liveIn(S);
      InS.forEach([&](size_t V) {
        EXPECT_TRUE(LV.isLiveOut(static_cast<RegId>(V), B.get()))
            << "live-in of " << S->name() << " not live-out of "
            << B->name() << ": " << F->valueName(static_cast<RegId>(V));
      });
      for (const Instruction &I : S->instructions()) {
        if (!I.isPhi())
          break;
        for (unsigned K = 0; K < I.numUses(); ++K)
          if (I.incomingBlock(K) == B.get())
            EXPECT_TRUE(LV.isLiveOut(I.use(K), B.get()));
      }
    }
  }
}

TEST_P(PropertySweep, LivenessDefsDominateLiveInPoints) {
  // In SSA, any value live into a reachable block has a definition that
  // dominates the block.
  auto F = randomSSA(GetParam());
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  Liveness LV(Cfg);
  std::map<RegId, const BasicBlock *> DefBlock;
  for (const auto &BB : F->blocks())
    for (const Instruction &I : BB->instructions())
      for (RegId D : I.defs())
        if (!F->isPhysical(D))
          DefBlock[D] = BB.get();
  for (const auto &BB : F->blocks()) {
    if (!Cfg.isReachable(BB.get()))
      continue;
    LV.liveIn(BB.get()).forEach([&](size_t V) {
      if (F->isPhysical(static_cast<RegId>(V)))
        return;
      auto It = DefBlock.find(static_cast<RegId>(V));
      ASSERT_NE(It, DefBlock.end());
      EXPECT_TRUE(DT.dominates(It->second, BB.get()))
          << F->valueName(static_cast<RegId>(V)) << " live into "
          << BB->name();
    });
  }
}

TEST_P(PropertySweep, PinningContextInvariants) {
  auto F = randomSSA(GetParam());
  splitCriticalEdges(*F);
  collectSPConstraints(*F);
  collectABIConstraints(*F);
  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  LivenessQuery LV(Cfg, DT);
  PinningContext Ctx(*F, Cfg, DT, LV);

  std::set<RegId> SeenMembers;
  for (RegId V = 0; V < F->numValues(); ++V) {
    RegId Rep = Ctx.resourceOf(V);
    // resourceOf is idempotent.
    EXPECT_EQ(Ctx.resourceOf(Rep), Rep);
    // A class never interferes with itself.
    EXPECT_FALSE(Ctx.resourceInterfere(V, Rep));
    if (Rep != V)
      continue;
    const auto &Members = Ctx.members(V);
    for (RegId M : Members) {
      EXPECT_EQ(Ctx.resourceOf(M), Rep) << "member outside its class";
      EXPECT_TRUE(SeenMembers.insert(M).second)
          << "value in two classes: " << F->valueName(M);
    }
  }

  // Every killed bit of the flat mask marks a member of its own class.
  Ctx.killedMask().forEach([&](size_t Kd) {
    RegId V = static_cast<RegId>(Kd);
    const auto &M = Ctx.members(Ctx.resourceOf(V));
    EXPECT_NE(std::find(M.begin(), M.end(), V), M.end())
        << "killed value outside its class: " << F->valueName(V);
  });

  // Interference is symmetric over a sample of class pairs.
  std::vector<RegId> Reps;
  for (RegId V = 0; V < F->numValues() && Reps.size() < 24; ++V)
    if (Ctx.resourceOf(V) == V && Ctx.defSite(V).Valid)
      Reps.push_back(V);
  for (size_t A = 0; A < Reps.size(); ++A)
    for (size_t B = A + 1; B < Reps.size(); ++B)
      EXPECT_EQ(Ctx.resourceInterfere(Reps[A], Reps[B]),
                Ctx.resourceInterfere(Reps[B], Reps[A]));
}

TEST_P(PropertySweep, MachineCodeEndToEnd) {
  // SSA -> out-of-SSA -> register allocation, checked against the
  // original on several inputs; the final code must only use physical
  // registers.
  auto F = randomSSA(GetParam());
  auto Machine = cloneFunction(*F);
  runPipeline(*Machine, pipelinePreset("Lphi,ABI+C"));
  RegAllocResult R = allocateRegisters(*Machine);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(collectVirtualRegs(*Machine).empty());
  unsigned NumParams = F->numParams();
  for (uint64_t Set = 0; Set < 2; ++Set) {
    std::vector<uint64_t> Args;
    for (unsigned K = 0; K < NumParams; ++K)
      Args.push_back(GetParam() * 31 + Set * 7 + K);
    expectEquivalent(*F, *Machine, Args);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertySweep,
                         testing::Range<uint64_t>(1000, 1030));
