//===- IRTests.cpp - IR container, printer, parser, clone tests -------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/CFG.h"
#include "ir/DotExport.h"
#include "ir/IRBuilder.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

TEST(Function, PhysicalRegistersPreallocated) {
  Function F("f");
  EXPECT_EQ(F.numValues(), static_cast<size_t>(Target::NumPhysRegs));
  EXPECT_TRUE(F.isPhysical(Target::R0));
  EXPECT_TRUE(F.isPhysical(Target::SP));
  EXPECT_EQ(F.valueName(Target::SP), "SP");
  EXPECT_EQ(F.findValue("R3"), Target::R3);
}

TEST(Function, MakeVirtualDisambiguatesNames) {
  Function F("f");
  RegId A = F.makeVirtual("x");
  RegId B = F.makeVirtual("x");
  EXPECT_NE(A, B);
  EXPECT_NE(F.valueName(A), F.valueName(B));
  EXPECT_EQ(F.findValue(F.valueName(B)), B);
  EXPECT_FALSE(F.isPhysical(A));
}

TEST(Function, NumParamsComesFromEntryInput) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(BB);
  B.input({"a", "b", "c"});
  B.ret(Target::R0);
  EXPECT_EQ(F.numParams(), 3u);
}

TEST(BasicBlock, SuccessorsFollowTerminator) {
  Function F("f");
  BasicBlock *E = F.createBlock("entry");
  BasicBlock *T = F.createBlock("t");
  BasicBlock *U = F.createBlock("u");
  IRBuilder B(E);
  RegId C = B.make(1);
  B.branch(C, T, U);
  auto Succs = E->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], T);
  EXPECT_EQ(Succs[1], U);
  IRBuilder BT(T);
  BT.jump(U);
  EXPECT_EQ(T->successors().size(), 1u);
}

TEST(Printer, RendersPins) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(BB);
  auto P = B.input({"a"});
  BB->instructions().front().pinDef(0, Target::R0);
  Instruction Ret(Opcode::Ret);
  Ret.addUse(P[0]);
  Ret.pinUse(0, Target::R0);
  BB->append(std::move(Ret));
  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("input %a^R0"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ret %a^R0"), std::string::npos) << Text;
}

TEST(Parser, RoundTripsAllOpcodes) {
  const char *Text = R"(
func @all {
entry:
  input %a^R0, %b^R1
  %c = make -12
  %m = mov %a
  %s = add %a, %b
  %d = sub %s, %c
  %p = mul %d, %d
  %q = and %p, %a
  %r = or %q, %b
  %x = xor %r, %r
  %sl = shl %x, %a
  %sr = shr %sl, %b
  %ai = addi %sr, 5
  %lt = cmplt %ai, %a
  %eq = cmpeq %lt, %b
  %k = more %eq^k, 11258
  %au = autoadd %k^au, 4
  %sp1 = spadjust %SP, -16
  %ld = load %au
  store %au, %ld
  %cl = call @f(%a^R0, %b^R1)
  %ps = psi %lt, %a, %b
  output %ps
  branch %lt, next, fin
next:
  jump fin
fin:
  %ph = phi [%s, entry], [%d, next]
  parcopy %R0 = %ph, %R1 = %a
  ret %ph^R0
}
)";
  auto F = parse(Text);
  ASSERT_TRUE(F);
  expectWellFormed(*F);
  // Round trip: print, reparse, print again; the two prints must agree.
  std::string P1 = printFunction(*F);
  auto F2 = parse(P1);
  ASSERT_TRUE(F2);
  EXPECT_EQ(P1, printFunction(*F2));
}

TEST(Parser, RoundTripsAllSuitesByteIdentical) {
  // Print -> parse -> print must be byte-identical on every suite
  // function: the arena-backed core stores operands in slot runs, and
  // this pins down that no ordering or naming drifts through the
  // parser/printer pair.
  for (const SuiteSpec &Spec : allSuites()) {
    for (const Workload &W : Spec.Make()) {
      std::string P1 = printFunction(*W.F);
      std::string Error;
      auto F2 = parseFunction(P1, &Error);
      ASSERT_TRUE(F2) << Spec.Name << "/" << W.Name << ": " << Error;
      EXPECT_EQ(P1, printFunction(*F2)) << Spec.Name << "/" << W.Name;
    }
  }
}

TEST(Parser, ReportsErrors) {
  std::string Error;
  EXPECT_EQ(parseFunction("garbage", &Error), nullptr);
  EXPECT_FALSE(Error.empty());

  EXPECT_EQ(parseFunction("func @f {\nentry:\n  %x = bogus %y\n}", &Error),
            nullptr);
  EXPECT_NE(Error.find("bogus"), std::string::npos);

  EXPECT_EQ(parseFunction("func @f {\nentry:\n  jump nowhere\n}", &Error),
            nullptr);
  EXPECT_NE(Error.find("nowhere"), std::string::npos);
}

TEST(Parser, RejectsDuplicateLabels) {
  std::string Error;
  EXPECT_EQ(parseFunction("func @f {\na:\n  jump a\na:\n  jump a\n}", &Error),
            nullptr);
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(Clone, ProducesIdenticalText) {
  auto F = parse(R"(
func @c {
entry:
  input %a^R0
  %k = more %a^k, 9
  branch %k, one, two
one:
  jump three
two:
  jump three
three:
  %x = phi [%a, one], [%k, two]
  ret %x^R0
}
)");
  ASSERT_TRUE(F);
  auto C = cloneFunction(*F);
  EXPECT_EQ(printFunction(*F), printFunction(*C));
  // Mutating the clone must not affect the original.
  C->createBlock("extra");
  EXPECT_NE(F->numBlocks(), C->numBlocks());
}

TEST(Clone, MutatedCloneLeavesOriginalIntact) {
  auto F = parse(R"(
func @ind {
entry:
  input %a^R0, %b^R1
  %s = add %a, %b
  branch %s, one, two
one:
  jump three
two:
  jump three
three:
  %x = phi [%s, one], [%a, two]
  %y = mul %x, %b
  ret %y^R0
}
)");
  ASSERT_TRUE(F);
  const std::string Before = printFunction(*F);
  auto C = cloneFunction(*F);

  // Rewrite operands, pins, and immediates in the clone; erase an
  // instruction; append another. Record copies must not share slabs.
  for (const auto &BB : C->blocks())
    for (Instruction &I : BB->instructions()) {
      for (unsigned K = 0; K < I.numUses(); ++K)
        I.setUse(K, Target::R7);
      if (I.numDefs())
        I.pinDef(0, Target::R3);
      I.setImm(99);
    }
  auto &EntryInsts = C->entry().instructions();
  EntryInsts.erase(std::next(EntryInsts.begin()));

  EXPECT_EQ(printFunction(*F), Before);
  EXPECT_NE(printFunction(*C), Before);
}

TEST(Function, InstrRefsStableAcrossInsertEraseClone) {
  Function F("stab");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(BB);
  auto P = B.input({"a", "b"});
  RegId S = B.add(P[0], P[1]);
  B.ret(S);

  Instruction &Add = *std::next(BB->instructions().begin());
  ASSERT_EQ(Add.op(), Opcode::Add);
  const InstrRef AddRef = Add.selfRef();
  const Instruction *AddPtr = &Add;

  // Insert enough instructions to force new table chunks, erase one,
  // and clone the function: the record must not move and its ref must
  // keep resolving to it.
  auto RetIt = std::prev(BB->instructions().end());
  for (int I = 0; I < 1000; ++I) {
    Instruction Mv(Opcode::Mov);
    Mv.addDef(F.makeVirtual());
    Mv.addUse(S);
    BB->insert(RetIt, std::move(Mv));
  }
  BB->instructions().erase(std::next(BB->instructions().begin(), 2));
  auto C = cloneFunction(F);

  EXPECT_EQ(&F.instr(AddRef), AddPtr);
  EXPECT_EQ(AddPtr->op(), Opcode::Add);
  EXPECT_EQ(AddPtr->selfRef(), AddRef);
  EXPECT_EQ(AddPtr->def(0), S);
  // The clone's records are its own; same ref, different storage.
  EXPECT_NE(&C->instr(AddRef), AddPtr);
  EXPECT_EQ(C->instr(AddRef).op(), Opcode::Add);
}

TEST(Function, InlineOperandsNeverTouchSlabs) {
  // Every fixed-arity opcode (<= 2 defs, <= 3 uses) must fit the
  // record's inline slots: building a whole function out of them may
  // not allocate a single operand slab byte.
  Function F("inline");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(BB);
  auto P = B.input({"a", "b"});
  RegId V = P[0];
  for (int I = 0; I < 200; ++I)
    V = B.add(V, P[1]);
  B.ret(V);
  EXPECT_EQ(F.operandSlabBytes(), 0u);
  EXPECT_GT(F.arena().bytesAllocated(), 0u);

  // A wide parallel copy overflows by design — the slab accounting must
  // see it.
  Instruction Par(Opcode::ParCopy);
  for (int I = 0; I < 8; ++I) {
    Par.addDef(F.makeVirtual());
    Par.addUse(V);
  }
  BB->insert(std::prev(BB->instructions().end()), std::move(Par));
  EXPECT_GT(F.operandSlabBytes(), 0u);
}

TEST(Verifier, CatchesMissingTerminator) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(BB);
  B.make(1);
  auto Diags = verifyStructure(F);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesPhiAfterNonPhi) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump j
mid:
  jump j
j:
  %x = add %a, %a
  %p = phi [%a, entry], [%x, mid]
  ret %p
}
)");
  // Parsing succeeds; structure check flags the misplaced phi.
  ASSERT_TRUE(F);
  bool Found = false;
  for (const auto &D : verifyStructure(*F))
    Found |= D.find("phi after non-phi") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(Verifier, CatchesPhiPredMismatch) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  jump j
other:
  jump j
j:
  %p = phi [%a, entry]
  ret %p
}
)");
  ASSERT_TRUE(F);
  bool Found = false;
  for (const auto &D : verifyStructure(*F))
    Found |= D.find("incoming") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(CFG, ReversePostOrderStartsAtEntry) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, b1, b2
b1:
  jump b3
b2:
  jump b3
b3:
  ret %a
}
)");
  ASSERT_TRUE(F);
  CFG Cfg(*F);
  const auto &Rpo = Cfg.rpo();
  ASSERT_EQ(Rpo.size(), 4u);
  EXPECT_EQ(Rpo.front()->name(), "entry");
  EXPECT_EQ(Rpo.back()->name(), "b3");
  EXPECT_EQ(Cfg.preds(F->blockByName("b3")).size(), 2u);
}

TEST(CFG, SplitCriticalEdges) {
  // entry branches to {join, side}; side jumps to join: the edge
  // entry->join is critical.
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, join, side
side:
  %b = addi %a, 1
  jump join
join:
  %p = phi [%a, entry], [%b, side]
  ret %p
}
)");
  ASSERT_TRUE(F);
  unsigned NumSplit = splitCriticalEdges(*F);
  EXPECT_EQ(NumSplit, 1u);
  expectWellFormed(*F);
  // The phi's incoming block for the a-path must now be the edge block.
  BasicBlock *Join = F->blockByName("join");
  const Instruction &Phi = Join->front();
  ASSERT_TRUE(Phi.isPhi());
  for (unsigned K = 0; K < Phi.numUses(); ++K)
    EXPECT_NE(Phi.incomingBlock(K)->name(), "entry");
}

TEST(CFG, SplitNormalizesDegenerateBranch) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, only, only
only:
  ret %a
}
)");
  ASSERT_TRUE(F);
  splitCriticalEdges(*F);
  EXPECT_EQ(F->entry().terminator().op(), Opcode::Jump);
  expectWellFormed(*F);
}

TEST(CFG, SplitsMultiSuccEdgeToPhiBlock) {
  // side has a single predecessor but starts with a phi-bearing block
  // reached from a multi-successor block: the edge must still be split
  // so parallel copies cannot leak onto the sibling path.
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, left, right
left:
  jump merge
right:
  jump merge
merge:
  %p = phi [%a, left], [%a, right]
  branch %p, merge2, out
merge2:
  jump out
out:
  ret %p
}
)");
  ASSERT_TRUE(F);
  splitCriticalEdges(*F);
  expectWellFormed(*F);
  // Every phi-bearing block's preds must have exactly one successor.
  CFG Cfg(*F);
  for (const auto &BB : F->blocks()) {
    if (BB->empty() || !BB->front().isPhi())
      continue;
    for (BasicBlock *P : Cfg.preds(BB.get()))
      EXPECT_EQ(P->successors().size(), 1u);
  }
}

TEST(DotExport, RendersBlocksEdgesAndPhis) {
  auto F = parse(R"(
func @f {
entry:
  input %a
  branch %a, t, e
t:
  jump j
e:
  jump j
j:
  %x = phi [%a, t], [%a, e]
  ret %x
}
)");
  std::string Dot = exportDot(*F);
  EXPECT_NE(Dot.find("digraph \"f\""), std::string::npos);
  // Four block nodes and the branch/jump edges.
  EXPECT_NE(Dot.find("b0 -> b1"), std::string::npos);
  EXPECT_NE(Dot.find("b0 -> b2"), std::string::npos);
  EXPECT_NE(Dot.find("b1 -> b3"), std::string::npos);
  // Dashed phi data-flow edges labelled with the flowing value.
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"a\""), std::string::npos);
  // Instruction text appears inside the record labels.
  EXPECT_NE(Dot.find("phi [%a, t]"), std::string::npos);
  EXPECT_NE(Dot.find("ret %x"), std::string::npos);
}

TEST(DotExport, EscapesRecordMetacharacters) {
  // Braces and pipes in names would corrupt a record label.
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(BB);
  RegId V = F.makeVirtual("weird{|}name");
  B.movTo(V, B.make(1));
  B.ret(V);
  std::string Dot = exportDot(F);
  EXPECT_NE(Dot.find("weird\\{\\|\\}name"), std::string::npos) << Dot;
}
