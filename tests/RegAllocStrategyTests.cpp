//===- RegAllocStrategyTests.cpp - Allocator strategy tier cross-checks ------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Cross-checks for the allocator strategy tier (see docs/REGALLOC.md):
// the preset grammar, the suite x preset x allocator x spill-model
// matrix (no virtuals remain, interpreter equivalence against the
// unallocated function, load-store-opt never touching memory more often
// than spill-everywhere), chordal-vs-Chaitin-Briggs spill parity on the
// committed suites, and the deterministic frame-slot assignment
// regression test.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

using namespace lao;
using namespace lao::test;

namespace {

const RegAllocOptions AllCombos[] = {
    {AllocatorKind::ChaitinBriggs, SpillModelKind::SpillEverywhere},
    {AllocatorKind::ChaitinBriggs, SpillModelKind::LoadStoreOpt},
    {AllocatorKind::Chordal, SpillModelKind::SpillEverywhere},
    {AllocatorKind::Chordal, SpillModelKind::LoadStoreOpt},
};

std::string comboName(const RegAllocOptions &O) {
  return std::string(allocatorName(O.Allocator)) + "/" +
         spillModelName(O.SpillMode);
}

/// Runs every allocator x spill-model combination over one lowered
/// suite and cross-checks each function: all virtuals gone, interpreter
/// equivalence against the pre-allocation function, and per-suite
/// spill-access totals with load-store-opt never above
/// spill-everywhere for the same allocator.
///
/// \p MaxInputs bounds the interpreter runs per function (the larger
/// suites carry several input vectors; one suffices for a lowering
/// matrix that the small suites already exercise in full).
void checkMatrixOnSuite(const std::vector<Workload> &Suite,
                        const char *Preset, unsigned NumRegs,
                        size_t MaxInputs) {
  // Lower once per function, then clone per combo: the matrix varies
  // only the allocator, so the out-of-SSA cost is shared.
  struct Lowered {
    const Workload *W;
    std::unique_ptr<Function> F;
  };
  std::vector<Lowered> LoweredSuite;
  for (const Workload &W : Suite) {
    auto F = cloneFunction(*W.F);
    runPipeline(*F, pipelinePreset(Preset));
    LoweredSuite.push_back({&W, std::move(F)});
  }

  // SpillAccesses[allocator][spill-model], summed over the suite.
  uint64_t Accesses[2][2] = {};
  for (const RegAllocOptions &Combo : AllCombos) {
    RegAllocOptions Opts = Combo;
    Opts.NumRegs = NumRegs;
    uint64_t SuiteAccesses = 0;
    for (const Lowered &L : LoweredSuite) {
      SCOPED_TRACE(L.W->Name + " [" + comboName(Combo) + "] preset " +
                   Preset);
      auto F = cloneFunction(*L.F);
      RegAllocResult R = allocateRegisters(*F, Opts);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_TRUE(collectVirtualRegs(*F).empty());
      EXPECT_LE(R.NumRegsUsed, NumRegs);
      SuiteAccesses += R.NumSpillLoads + R.NumSpillStores;
      size_t Runs = 0;
      for (const auto &Args : L.W->Inputs) {
        if (Runs++ == MaxInputs)
          break;
        expectEquivalent(*L.F, *F, Args);
      }
    }
    Accesses[Combo.Allocator == AllocatorKind::Chordal]
            [Combo.SpillMode == SpillModelKind::LoadStoreOpt] =
        SuiteAccesses;
  }
  for (int A = 0; A < 2; ++A)
    EXPECT_LE(Accesses[A][1], Accesses[A][0])
        << "load-store-opt must not add spill accesses ("
        << (A ? "chordal" : "chaitin-briggs") << ", preset " << Preset
        << ")";
}

} // namespace

//===----------------------------------------------------------------------===//
// Preset grammar
//===----------------------------------------------------------------------===//

TEST(RegAllocPreset, AllocatorOnlyNamesDefaultSpillModel) {
  auto O = regAllocPresetOpt("chordal");
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(O->Allocator, AllocatorKind::Chordal);
  EXPECT_EQ(O->SpillMode, SpillModelKind::SpillEverywhere);

  O = regAllocPresetOpt("chaitin-briggs");
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(O->Allocator, AllocatorKind::ChaitinBriggs);
  EXPECT_EQ(O->SpillMode, SpillModelKind::SpillEverywhere);
}

TEST(RegAllocPreset, SlashSelectsSpillModel) {
  auto O = regAllocPresetOpt("chordal/load-store-opt");
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(O->Allocator, AllocatorKind::Chordal);
  EXPECT_EQ(O->SpillMode, SpillModelKind::LoadStoreOpt);

  O = regAllocPresetOpt("chaitin-briggs/spill-everywhere");
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(O->Allocator, AllocatorKind::ChaitinBriggs);
  EXPECT_EQ(O->SpillMode, SpillModelKind::SpillEverywhere);
}

TEST(RegAllocPreset, RejectsUnknownNames) {
  EXPECT_FALSE(regAllocPresetOpt("").has_value());
  EXPECT_FALSE(regAllocPresetOpt("linear-scan").has_value());
  EXPECT_FALSE(regAllocPresetOpt("chordal/never-spill").has_value());
  // A trailing slash names an empty spill model, not the default.
  EXPECT_FALSE(regAllocPresetOpt("chordal/").has_value());
  // Only the first slash splits; the rest must still name a model.
  EXPECT_FALSE(
      regAllocPresetOpt("chordal/load-store-opt/extra").has_value());
  // The spill model is not an allocator and vice versa.
  EXPECT_FALSE(regAllocPresetOpt("load-store-opt").has_value());
  EXPECT_FALSE(regAllocPresetOpt("spill-everywhere/chordal").has_value());
}

TEST(RegAllocPreset, NamesRoundTripThroughPresetGrammar) {
  for (const RegAllocOptions &Combo : AllCombos) {
    auto O = regAllocPresetOpt(comboName(Combo));
    ASSERT_TRUE(O.has_value()) << comboName(Combo);
    EXPECT_EQ(O->Allocator, Combo.Allocator);
    EXPECT_EQ(O->SpillMode, Combo.SpillMode);
  }
}

//===----------------------------------------------------------------------===//
// The suite x preset x allocator x spill-model matrix
//===----------------------------------------------------------------------===//

TEST(RegAllocStrategy, MatrixOnExamples) {
  auto Suite = makeExamplesSuite();
  for (const char *Preset : {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C"})
    checkMatrixOnSuite(Suite, Preset, /*NumRegs=*/8,
                       /*MaxInputs=*/~size_t(0));
}

TEST(RegAllocStrategy, MatrixOnValcc1) {
  auto Suite = makeValccSuite(1);
  for (const char *Preset : {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C"})
    checkMatrixOnSuite(Suite, Preset, /*NumRegs=*/8, /*MaxInputs=*/1);
}

TEST(RegAllocStrategy, MatrixOnValcc2) {
  auto Suite = makeValccSuite(2);
  for (const char *Preset : {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C"})
    checkMatrixOnSuite(Suite, Preset, /*NumRegs=*/8, /*MaxInputs=*/1);
}

TEST(RegAllocStrategy, MatrixOnLarge) {
  checkMatrixOnSuite(makeLargeSuite(), "Lphi,ABI+C", /*NumRegs=*/8,
                     /*MaxInputs=*/1);
}

TEST(RegAllocStrategy, MatrixOnSpecLike) {
  checkMatrixOnSuite(makeSpecLikeSuite(), "Lphi,ABI+C", /*NumRegs=*/8,
                     /*MaxInputs=*/1);
}

TEST(RegAllocStrategy, MatrixUnderStrongPressure) {
  // Six registers on the copy-heavy valcc variant: every combo still
  // terminates, stays equivalent, and load-store-opt still pays off.
  checkMatrixOnSuite(makeValccSuite(2), "C,naiveABI+C", /*NumRegs=*/6,
                     /*MaxInputs=*/1);
}

//===----------------------------------------------------------------------===//
// Chordal vs Chaitin-Briggs
//===----------------------------------------------------------------------===//

TEST(RegAllocStrategy, ChordalSpillsNoMoreThanChaitinBriggs) {
  // The acceptance bar: on the committed suites at num_regs >= 6 the
  // chordal allocator's suite-total spill count must not exceed
  // Chaitin-Briggs's (exceptions would have to be documented in
  // docs/REGALLOC.md; as of this test there are none).
  for (unsigned NumRegs : {6u, 8u}) {
    for (int Variant : {1, 2}) {
      auto Suite = makeValccSuite(Variant);
      uint64_t CBSpills = 0, ChordalSpills = 0;
      for (const Workload &W : Suite) {
        auto Lowered = cloneFunction(*W.F);
        runPipeline(*Lowered, pipelinePreset("Lphi,ABI+C"));
        for (AllocatorKind A :
             {AllocatorKind::ChaitinBriggs, AllocatorKind::Chordal}) {
          auto F = cloneFunction(*Lowered);
          RegAllocOptions Opts;
          Opts.Allocator = A;
          Opts.NumRegs = NumRegs;
          RegAllocResult R = allocateRegisters(*F, Opts);
          ASSERT_TRUE(R.Ok) << W.Name << ": " << R.Error;
          (A == AllocatorKind::Chordal ? ChordalSpills : CBSpills) +=
              R.NumSpilled;
        }
      }
      EXPECT_LE(ChordalSpills, CBSpills)
          << "VALcc" << Variant << " with " << NumRegs << " registers";
    }
  }
}

TEST(RegAllocStrategy, ChordalFailsCleanlyWhenStarved) {
  // Failure parity with Chaitin-Briggs: too few registers is a
  // structured error, never a hang or a crash.
  auto F = parse(R"(
func @f {
entry:
  input %a, %b
  %x = add %a, %b
  ret %x
}
)");
  RegAllocOptions Opts;
  Opts.Allocator = AllocatorKind::Chordal;
  Opts.NumRegs = 1;
  RegAllocResult R = allocateRegisters(*F, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Deterministic frame-slot assignment
//===----------------------------------------------------------------------===//

TEST(RegAllocStrategy, FrameSlotAssignmentIsDeterministic) {
  // Regression test for the hash-map-order frame layout bug: repeated
  // allocations of the same function must produce byte-identical
  // machine code (same slot addresses in the same spill sites) and the
  // same frame size, for every combo. Pressure forces enough spills
  // that an iteration-order-dependent assignment would scramble slots.
  std::string Text = "func @f {\nentry:\n  input %a\n";
  for (int K = 0; K < 12; ++K)
    Text += "  %v" + std::to_string(K) + " = addi %a, " +
            std::to_string(K) + "\n";
  Text += "  %s0 = add %v0, %v1\n";
  for (int K = 2; K < 12; ++K)
    Text += "  %s" + std::to_string(K - 1) + " = add %s" +
            std::to_string(K - 2) + ", %v" + std::to_string(K) + "\n";
  Text += "  ret %s10\n}\n";

  for (const RegAllocOptions &Combo : AllCombos) {
    SCOPED_TRACE(comboName(Combo));
    RegAllocOptions Opts = Combo;
    Opts.NumRegs = 4;
    std::string FirstIR;
    unsigned FirstFrame = 0;
    for (int Run = 0; Run < 3; ++Run) {
      auto F = parse(Text);
      RegAllocResult R = allocateRegisters(*F, Opts);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_GT(R.NumSpilled, 0u);
      std::string IR = printFunction(*F);
      if (Run == 0) {
        FirstIR = IR;
        FirstFrame = R.FrameBytes;
      } else {
        EXPECT_EQ(IR, FirstIR);
        EXPECT_EQ(R.FrameBytes, FirstFrame);
      }
    }
  }
}
